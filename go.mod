module lcp

go 1.24.0
