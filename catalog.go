package lcp

import (
	"fmt"
	"math"

	"lcp/internal/core"
	"lcp/internal/graph"
	"lcp/internal/graphalg"
	"lcp/internal/schemes"
)

// The experiment catalog: one entry per row of Table 1(a) and 1(b). Each
// entry can generate yes-instances (and, where meaningful, no-instances)
// of a target size, so the same table drives unit tests, the benchmark
// suite, and cmd/lcpbench's regeneration of the paper's table.

// Experiment is one catalogued row.
type Experiment struct {
	// ID is the DESIGN.md experiment id, e.g. "T1a-07".
	ID string
	// Row is the paper's row text, e.g. "bipartite graph".
	Row string
	// Family is the paper's graph family, e.g. "general".
	Family string
	// Bound is the paper's proof size, e.g. "Θ(1)".
	Bound string
	// Scheme is the implementation.
	Scheme Scheme
	// MakeYes generates a yes-instance with roughly n nodes.
	MakeYes func(n int, seed int64) *Instance
	// MakeNo generates a no-instance, or nil if the row has no natural
	// no-instances at this size.
	MakeNo func(n int, seed int64) *Instance
	// BoundBits evaluates the paper's bound numerically (bits per node,
	// up to the implementation's constant factor) for shape checks.
	BoundBits func(n int) float64
	// MinN is the smallest instance size the generators support.
	MinN int
}

func oddUp(n int) int {
	if n%2 == 0 {
		return n + 1
	}
	return n
}

func evenUp(n int) int {
	if n%2 == 1 {
		return n + 1
	}
	return n
}

// spiderOf returns an asymmetric tree on ≈n nodes: a center with at
// least three legs of pairwise distinct lengths (1, 2, 3, …; any
// leftover nodes extend the longest leg so lengths stay distinct). The
// smallest asymmetric tree has 7 nodes, so n is clamped up to 7.
func spiderOf(n int) *graph.Graph {
	if n < 7 {
		n = 7
	}
	// Choose m ≥ 3 full legs 1..m with 1+Σ ≤ n, leftover extends leg m.
	m := 3
	for 1+(m+1)*(m+2)/2 <= n {
		m++
	}
	legs := make([]int, m)
	total := 1
	for i := range legs {
		legs[i] = i + 1
		total += legs[i]
	}
	legs[m-1] += n - total
	b := graph.NewBuilder(graph.Undirected)
	center := 1
	b.AddNode(center)
	next := 2
	for _, length := range legs {
		prev := center
		for i := 0; i < length; i++ {
			b.AddEdge(prev, next)
			prev = next
			next++
		}
	}
	return b.Graph()
}

// oddWheelTail is a χ>3 graph on ≈n nodes: an odd wheel (χ = 4) with a
// path tail.
func oddWheelTail(n int) *graph.Graph {
	if n < 8 {
		n = 8
	}
	w := graph.Wheel(5) // 6 nodes, χ = 4
	b := graph.NewBuilder(graph.Undirected)
	for _, e := range w.Edges() {
		b.AddEdge(e.U, e.V)
	}
	prev := 2 // rim node
	for v := 7; v <= n; v++ {
		b.AddEdge(prev, v)
		prev = v
	}
	return b.Graph()
}

// greedyMISInstance marks a maximal independent set.
func greedyMISInstance(g *graph.Graph) *Instance {
	in := core.NewInstance(g)
	marked := map[int]bool{}
	blocked := map[int]bool{}
	for _, v := range g.Nodes() {
		if blocked[v] {
			continue
		}
		marked[v] = true
		in.SetNodeLabel(v, "1")
		blocked[v] = true
		for _, u := range g.Neighbors(v) {
			blocked[u] = true
		}
	}
	return in
}

// Catalog returns all Table 1 experiments.
func Catalog() []Experiment {
	// Θ(log n) rows: the implemented certificates (root id + parent id +
	// distance + width headers + up to two counters) cost a small
	// multiple of log n; growth-shape tests pin the slope, this bound
	// pins the constant.
	logn := func(n int) float64 { return 12*math.Log2(float64(n)+1) + 40 }
	constB := func(c float64) func(int) float64 { return func(int) float64 { return c } }

	var exps []Experiment

	// ---- Table 1(a): graph properties ----

	exps = append(exps, Experiment{
		ID: "T1a-01", Row: "Eulerian graph", Family: "connected", Bound: "0",
		Scheme: EulerianScheme(), MinN: 3,
		MakeYes:   func(n int, seed int64) *Instance { return NewInstance(Cycle(n)) },
		MakeNo:    func(n int, seed int64) *Instance { return NewInstance(Path(n)) },
		BoundBits: constB(0),
	})
	exps = append(exps, Experiment{
		ID: "T1a-02", Row: "line graph", Family: "general", Bound: "0",
		Scheme: LineGraphScheme(), MinN: 4,
		MakeYes: func(n int, seed int64) *Instance {
			return NewInstance(LineGraphOf(RandomTree(n+1, seed)))
		},
		MakeNo: func(n int, seed int64) *Instance {
			claw := Path(n).WithEdges([]Edge{{U: n / 2, V: n + 1}, {U: n / 2, V: n + 2}}, nil)
			return NewInstance(claw)
		},
		BoundBits: constB(0),
	})
	exps = append(exps, Experiment{
		ID: "T1a-03", Row: "s-t reachability", Family: "undirected", Bound: "Θ(1)",
		Scheme: ReachabilityScheme(), MinN: 4,
		MakeYes: func(n int, seed int64) *Instance {
			g := RandomConnected(n, 2.0/float64(n), seed)
			return NewInstance(g).SetNodeLabel(1, LabelS).SetNodeLabel(n, LabelT)
		},
		MakeNo: func(n int, seed int64) *Instance {
			g := DisjointUnion(RandomConnected(n/2, 0.3, seed), RandomConnected(n/2, 0.3, seed+1).ShiftIDs(n))
			return NewInstance(g).SetNodeLabel(1, LabelS).SetNodeLabel(n+1, LabelT)
		},
		BoundBits: constB(1),
	})
	exps = append(exps, Experiment{
		ID: "T1a-04", Row: "s-t unreachability", Family: "undirected", Bound: "Θ(1)",
		Scheme: UnreachabilityScheme(), MinN: 4,
		MakeYes: func(n int, seed int64) *Instance {
			g := DisjointUnion(RandomConnected(n/2, 0.3, seed), RandomConnected(n/2, 0.3, seed+1).ShiftIDs(n))
			return NewInstance(g).SetNodeLabel(1, LabelS).SetNodeLabel(n+1, LabelT)
		},
		MakeNo: func(n int, seed int64) *Instance {
			return NewInstance(RandomConnected(n, 0.2, seed)).SetNodeLabel(1, LabelS).SetNodeLabel(n, LabelT)
		},
		BoundBits: constB(1),
	})
	exps = append(exps, Experiment{
		ID: "T1a-05", Row: "s-t unreachability", Family: "directed", Bound: "Θ(1)",
		Scheme: UnreachabilityScheme(), MinN: 4,
		MakeYes: func(n int, seed int64) *Instance {
			// A directed path 1→2→…→n: n cannot reach 1.
			b := NewDirectedBuilder()
			for i := 1; i < n; i++ {
				b.AddEdge(i, i+1)
			}
			return NewInstance(b.Graph()).SetNodeLabel(n, LabelS).SetNodeLabel(1, LabelT)
		},
		MakeNo: func(n int, seed int64) *Instance {
			b := NewDirectedBuilder()
			for i := 1; i < n; i++ {
				b.AddEdge(i, i+1)
			}
			return NewInstance(b.Graph()).SetNodeLabel(1, LabelS).SetNodeLabel(n, LabelT)
		},
		BoundBits: constB(1),
	})
	exps = append(exps, Experiment{
		ID: "T1a-06", Row: "s-t connectivity = k", Family: "planar", Bound: "Θ(1)",
		Scheme: STConnectivityPlanarScheme(), MinN: 12,
		MakeYes: func(n int, seed int64) *Instance {
			cols := n / 4
			if cols < 3 {
				cols = 3
			}
			g := Grid(4, cols)
			in := NewInstance(g).SetNodeLabel(1, LabelS).SetNodeLabel(g.N(), LabelT)
			in.Global = Global{GlobalK: 2}
			return in
		},
		MakeNo: func(n int, seed int64) *Instance {
			cols := n / 4
			if cols < 3 {
				cols = 3
			}
			g := Grid(4, cols)
			in := NewInstance(g).SetNodeLabel(1, LabelS).SetNodeLabel(g.N(), LabelT)
			in.Global = Global{GlobalK: 3}
			return in
		},
		BoundBits: constB(16),
	})
	exps = append(exps, Experiment{
		ID: "T1a-07", Row: "bipartite graph", Family: "general", Bound: "Θ(1)",
		Scheme: BipartiteScheme(), MinN: 4,
		MakeYes: func(n int, seed int64) *Instance {
			return NewInstance(RandomBipartite(n/2, n-n/2, 0.3, seed))
		},
		MakeNo:    func(n int, seed int64) *Instance { return NewInstance(Cycle(oddUp(n))) },
		BoundBits: constB(1),
	})
	exps = append(exps, Experiment{
		ID: "T1a-08", Row: "even n(G)", Family: "cycles", Bound: "Θ(1)",
		Scheme: EvenCycleScheme(), MinN: 4,
		MakeYes:   func(n int, seed int64) *Instance { return NewInstance(Cycle(evenUp(n))) },
		MakeNo:    func(n int, seed int64) *Instance { return NewInstance(Cycle(oddUp(n))) },
		BoundBits: constB(1),
	})
	exps = append(exps, Experiment{
		ID: "T1a-09", Row: "s-t connectivity = k", Family: "general", Bound: "O(log k)",
		Scheme: STConnectivityScheme(), MinN: 9,
		MakeYes: func(n int, seed int64) *Instance {
			cols := n / 3
			if cols < 3 {
				cols = 3
			}
			g := Grid(3, cols)
			// Middle of first column to middle of last column: κ = 3.
			in := NewInstance(g).SetNodeLabel(cols+1, LabelS).SetNodeLabel(2*cols, LabelT)
			in.Global = Global{GlobalK: 3}
			return in
		},
		MakeNo: func(n int, seed int64) *Instance {
			cols := n / 3
			if cols < 3 {
				cols = 3
			}
			g := Grid(3, cols)
			in := NewInstance(g).SetNodeLabel(cols+1, LabelS).SetNodeLabel(2*cols, LabelT)
			in.Global = Global{GlobalK: 2}
			return in
		},
		BoundBits: constB(16),
	})
	exps = append(exps, Experiment{
		ID: "T1a-10", Row: "chromatic number ≤ k", Family: "general", Bound: "O(log k)",
		Scheme: ColorableScheme(), MinN: 4,
		MakeYes: func(n int, seed int64) *Instance {
			in := NewInstance(Cycle(oddUp(n))) // χ = 3
			in.Global = Global{GlobalK: 3}
			return in
		},
		MakeNo: func(n int, seed int64) *Instance {
			in := NewInstance(oddWheelTail(n)) // χ = 4
			in.Global = Global{GlobalK: 3}
			return in
		},
		BoundBits: constB(2),
	})
	exps = append(exps, Experiment{
		ID: "T1a-11", Row: "coLCP(0) properties", Family: "connected", Bound: "O(log n)",
		Scheme: ComplementScheme("eulerian", EulerianScheme().Verifier()), MinN: 3,
		MakeYes:   func(n int, seed int64) *Instance { return NewInstance(Path(n)) },
		MakeNo:    func(n int, seed int64) *Instance { return NewInstance(Cycle(n)) },
		BoundBits: logn,
	})
	exps = append(exps, Experiment{
		ID: "T1a-12", Row: "monadic Σ¹₁ properties", Family: "connected", Bound: "O(log n)",
		Scheme: schemes.ThreeColorableSigma11(func(g *graph.Graph) map[int]int {
			return graphalg.KColor(g, 3)
		}), MinN: 4,
		MakeYes:   func(n int, seed int64) *Instance { return NewInstance(Cycle(oddUp(n))) },
		MakeNo:    func(n int, seed int64) *Instance { return NewInstance(oddWheelTail(n)) },
		BoundBits: logn,
	})
	exps = append(exps, Experiment{
		ID: "T1a-13", Row: "odd n(G)", Family: "cycles", Bound: "Θ(log n)",
		Scheme: OddNScheme(), MinN: 3,
		MakeYes:   func(n int, seed int64) *Instance { return NewInstance(Cycle(oddUp(n))) },
		MakeNo:    func(n int, seed int64) *Instance { return NewInstance(Cycle(evenUp(n))) },
		BoundBits: logn,
	})
	exps = append(exps, Experiment{
		ID: "T1a-14", Row: "chromatic number > 2", Family: "connected", Bound: "Θ(log n)",
		Scheme: NonBipartiteScheme(), MinN: 3,
		MakeYes:   func(n int, seed int64) *Instance { return NewInstance(Cycle(oddUp(n))) },
		MakeNo:    func(n int, seed int64) *Instance { return NewInstance(Cycle(evenUp(n))) },
		BoundBits: logn,
	})
	exps = append(exps, Experiment{
		ID: "T1a-15", Row: "fixpoint-free symmetry", Family: "trees", Bound: "Θ(n)",
		Scheme: FixpointFreeScheme(), MinN: 4,
		MakeYes:   func(n int, seed int64) *Instance { return NewInstance(Path(evenUp(n))) },
		MakeNo:    func(n int, seed int64) *Instance { return NewInstance(spiderOf(n)) },
		BoundBits: func(n int) float64 { return float64(2*n) + 64 },
	})
	exps = append(exps, Experiment{
		ID: "T1a-16", Row: "symmetric graph", Family: "connected", Bound: "Θ(n²)",
		Scheme: SymmetricScheme(), MinN: 4,
		MakeYes:   func(n int, seed int64) *Instance { return NewInstance(Cycle(n)) },
		MakeNo:    func(n int, seed int64) *Instance { return NewInstance(spiderOf(n)) },
		BoundBits: func(n int) float64 { return float64(n*n) + 64*float64(n) + 128 },
	})
	exps = append(exps, Experiment{
		ID: "T1a-17", Row: "chromatic number > 3", Family: "connected", Bound: "Ω(n²/log n), O(n²)",
		Scheme: NonThreeColorableScheme(), MinN: 8,
		MakeYes:   func(n int, seed int64) *Instance { return NewInstance(oddWheelTail(n)) },
		MakeNo:    func(n int, seed int64) *Instance { return NewInstance(Cycle(oddUp(n))) },
		BoundBits: func(n int) float64 { return float64(n*n) + 64*float64(n) + 128 },
	})
	exps = append(exps, Experiment{
		ID: "T1a-18", Row: "computable properties", Family: "connected", Bound: "O(n²)",
		Scheme: UniversalScheme("even-m", func(g *Graph) bool { return g.M()%2 == 0 }), MinN: 4,
		MakeYes:   func(n int, seed int64) *Instance { return NewInstance(Cycle(evenUp(n))) },
		MakeNo:    func(n int, seed int64) *Instance { return NewInstance(Cycle(oddUp(n))) },
		BoundBits: func(n int) float64 { return float64(n*n) + 64*float64(n) + 128 },
	})

	// ---- Table 1(b): solutions of graph problems ----

	exps = append(exps, Experiment{
		ID: "T1b-01", Row: "maximal matching", Family: "general", Bound: "0",
		Scheme: MaximalMatchingScheme(), MinN: 4,
		MakeYes: func(n int, seed int64) *Instance {
			g := RandomConnected(n, 0.1, seed)
			in := NewInstance(g)
			for e := range graphalg.GreedyMaximalMatching(g) {
				in.MarkEdge(e.U, e.V)
			}
			return in
		},
		MakeNo: func(n int, seed int64) *Instance {
			return NewInstance(RandomConnected(n, 0.1, seed)) // empty matching is not maximal
		},
		BoundBits: constB(0),
	})
	exps = append(exps, Experiment{
		ID: "T1b-02", Row: "LCL problems (MIS)", Family: "general", Bound: "0",
		Scheme: schemes.MISLCL(), MinN: 4,
		MakeYes: func(n int, seed int64) *Instance {
			return greedyMISInstance(RandomConnected(n, 0.1, seed))
		},
		MakeNo: func(n int, seed int64) *Instance {
			return NewInstance(RandomConnected(n, 0.1, seed)) // empty set is not maximal
		},
		BoundBits: constB(0),
	})
	exps = append(exps, Experiment{
		ID: "T1b-03", Row: "LD problems (colouring)", Family: "connected", Bound: "0",
		Scheme: schemes.ColoringLCL(), MinN: 4,
		MakeYes: func(n int, seed int64) *Instance {
			g := RandomConnected(n, 0.1, seed)
			col, _ := graphalg.GreedyColoring(g)
			in := NewInstance(g)
			for v, c := range col {
				in.SetNodeLabel(v, fmt.Sprintf("c%d", c))
			}
			return in
		},
		BoundBits: constB(0),
	})
	exps = append(exps, Experiment{
		ID: "T1b-04", Row: "maximum matching", Family: "bipartite", Bound: "Θ(1)",
		Scheme: MaximumMatchingBipartiteScheme(), MinN: 4,
		MakeYes: func(n int, seed int64) *Instance {
			g := RandomBipartite(n/2, n-n/2, 0.3, seed)
			var left []int
			for v := 1; v <= n/2; v++ {
				left = append(left, v)
			}
			m, _ := graphalg.HopcroftKarp(g, left)
			in := NewInstance(g)
			for e := range m {
				in.MarkEdge(e.U, e.V)
			}
			return in
		},
		MakeNo: func(n int, seed int64) *Instance {
			return NewInstance(CompleteBipartite(n/2, n-n/2)) // empty matching not maximum
		},
		BoundBits: constB(1),
	})
	exps = append(exps, Experiment{
		ID: "T1b-05", Row: "max-weight matching", Family: "bipartite", Bound: "O(log W)",
		Scheme: MaxWeightMatchingScheme(), MinN: 4,
		MakeYes: func(n int, seed int64) *Instance {
			const W = 1000
			g := RandomBipartite(n/2, n-n/2, 0.4, seed)
			var left []int
			for v := 1; v <= n/2; v++ {
				left = append(left, v)
			}
			w := graphalg.Weights{}
			rng := seed
			for _, e := range g.Edges() {
				rng = rng*6364136223846793005 + 1442695040888963407
				w[e] = (rng >> 33) % (W + 1)
				if w[e] < 0 {
					w[e] = -w[e]
				}
			}
			m := graphalg.MaxWeightMatching(g, left, w)
			in := NewInstance(g)
			in.Weights = map[Edge]int64{}
			for e, wt := range w {
				in.Weights[e] = wt
			}
			for e := range m {
				in.MarkEdge(e.U, e.V)
			}
			in.Global = Global{GlobalW: W}
			return in
		},
		BoundBits: constB(11),
	})
	exps = append(exps, Experiment{
		ID: "T1b-06", Row: "coLCP(0) problems", Family: "connected", Bound: "O(log n)",
		Scheme: ComplementScheme("maximal-matching", MaximalMatchingScheme().Verifier()), MinN: 4,
		MakeYes: func(n int, seed int64) *Instance {
			// Empty matching on a connected graph: not maximal, so the
			// complement holds.
			return NewInstance(RandomConnected(n, 0.15, seed))
		},
		BoundBits: logn,
	})
	exps = append(exps, Experiment{
		ID: "T1b-07", Row: "leader election", Family: "connected", Bound: "Θ(log n)",
		Scheme: LeaderElectionScheme(), MinN: 3,
		MakeYes: func(n int, seed int64) *Instance {
			return NewInstance(RandomConnected(n, 0.1, seed)).SetNodeLabel(1+int(seed)%n, LabelLeader)
		},
		MakeNo: func(n int, seed int64) *Instance {
			return NewInstance(RandomConnected(n, 0.1, seed)).
				SetNodeLabel(1, LabelLeader).SetNodeLabel(2, LabelLeader)
		},
		BoundBits: logn,
	})
	exps = append(exps, Experiment{
		ID: "T1b-08", Row: "spanning tree", Family: "connected", Bound: "Θ(log n)",
		Scheme: SpanningTreeScheme(), MinN: 3,
		MakeYes: func(n int, seed int64) *Instance {
			g := RandomConnected(n, 0.15, seed)
			parent, _ := graphalg.SpanningTree(g, 1)
			in := NewInstance(g)
			for v, p := range parent {
				if v != p {
					in.MarkEdge(v, p)
				}
			}
			return in
		},
		MakeNo: func(n int, seed int64) *Instance {
			g := Cycle(n)
			in := NewInstance(g)
			for _, e := range g.Edges() {
				in.MarkEdge(e.U, e.V) // the full cycle is not a tree
			}
			return in
		},
		BoundBits: logn,
	})
	exps = append(exps, Experiment{
		ID: "T1b-09", Row: "maximum matching", Family: "cycles", Bound: "Θ(log n)",
		Scheme: MaxMatchingCycleScheme(), MinN: 4,
		MakeYes: func(n int, seed int64) *Instance {
			m := evenUp(n)
			g := Cycle(m)
			in := NewInstance(g)
			for i := 1; i+1 <= m; i += 2 {
				in.MarkEdge(i, i+1)
			}
			return in
		},
		MakeNo: func(n int, seed int64) *Instance {
			g := Cycle(evenUp(n))
			in := NewInstance(g)
			in.MarkEdge(1, 2)
			return in
		},
		BoundBits: logn,
	})
	exps = append(exps, Experiment{
		ID: "T1b-10", Row: "Hamiltonian cycle", Family: "connected", Bound: "Θ(log n)",
		Scheme: HamiltonianCycleScheme(), MinN: 3,
		MakeYes: func(n int, seed int64) *Instance {
			g := Cycle(n)
			in := NewInstance(g)
			for _, e := range g.Edges() {
				in.MarkEdge(e.U, e.V)
			}
			return in
		},
		MakeNo: func(n int, seed int64) *Instance {
			g := Cycle(n)
			in := NewInstance(g)
			in.MarkEdge(1, 2)
			return in
		},
		BoundBits: logn,
	})
	exps = append(exps, Experiment{
		ID: "T1b-11", Row: "NLD#n problems (universal)", Family: "connected", Bound: "unlimited (O(n²))",
		Scheme: UniversalScheme("connected", func(g *Graph) bool { return graphalg.Connected(g) }), MinN: 3,
		MakeYes:   func(n int, seed int64) *Instance { return NewInstance(RandomConnected(n, 0.1, seed)) },
		BoundBits: func(n int) float64 { return float64(n*n) + 64*float64(n) + 128 },
	})

	return exps
}
