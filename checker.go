package lcp

// The unified verification façade. The paper studies exactly one
// object — a constant-radius local verifier run on every node — but the
// library grew four ways to execute it: the sequential reference
// (core.Check), the message-passing LOCAL runtime (dist), the amortized
// cached-view engine, and the engine's halo-sharded distributed path.
// Checker is the one front door: NewChecker compiles functional options
// into the shared internal config.Config (the same object lcpserve
// flags and serve's HTTP request options resolve into), every backend
// answers with the same Report shape, and context cancellation behaves
// uniformly across all four paths.

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lcp/internal/config"
	"lcp/internal/core"
	"lcp/internal/dist"
	"lcp/internal/engine"
	"lcp/internal/obs"
	"lcp/internal/remote"
)

// Backend names accepted by WithBackend. Each selects one execution
// path; all four are property-tested verdict-identical.
const (
	// BackendCore: the sequential reference runner — one BFS view per
	// node per proof, no caching, no concurrency.
	BackendCore = string(config.BackendCore)
	// BackendDist: the message-passing LOCAL runtime — node automata
	// flood radius-r balls over ports; WithSharded/WithShards/
	// WithFreeRunning tune its scheduler.
	BackendDist = string(config.BackendDist)
	// BackendEngine: the amortized engine — radius-r view skeletons
	// cached per instance, checks served by a WithWorkers-bounded pool.
	// This is the default backend.
	BackendEngine = string(config.BackendEngine)
	// BackendEngineDist: the distributed engine — the instance is cut
	// into WithRuntimes radius-r halos (by WithPartitioner), each owned
	// by a reusable message-passing runtime.
	BackendEngineDist = string(config.BackendEngineDist)
	// BackendDistTCP: the multi-process scale-out — the instance is
	// partitioned across external lcpworker processes (WithWorkerAddrs),
	// each flooding its shard over TCP, with this process acting as the
	// fan-out coordinator. Requires WithScheme (the workers resolve the
	// scheme by name in their own registries; verifier code does not
	// travel).
	BackendDistTCP = string(config.BackendDistTCP)
)

// Checker is the unified verification interface over one instance and
// one verifier: construct it once with NewChecker, then fire proofs at
// it. Implementations are safe for concurrent use and amortize whatever
// their backend can (cached views, prewired runtimes) across calls.
//
// Context cancellation is uniform but backend-granular: the core
// backend aborts between nodes, the engine backend between proofs of a
// batch, and the message-passing backends between communication rounds
// (lockstep mode; free-running runtimes flood to completion). A
// verifier that panics is converted to an error on the message-passing
// backends; on the shared-memory backends it propagates to the caller
// of Check/CheckBatch and must be recovered around CheckStream's
// channel (internal/serve wraps untrusted verifiers accordingly).
type Checker interface {
	// Check verifies one proof on every node.
	Check(ctx context.Context, p Proof) (*Report, error)
	// CheckBatch verifies many proofs in order, one Report per proof.
	// On the distributed backends the proofs run concurrently on a
	// bounded pool. The first failure aborts the batch with a
	// *BatchError; no partial reports are returned.
	CheckBatch(ctx context.Context, proofs []Proof) ([]*Report, error)
	// CheckStream verifies one proof and streams per-node verdicts as
	// they are decided; the channel closes when every node has reported
	// or the context is cancelled. The shared-memory backends stream
	// while deciding (cancel on the first rejection to stop paying for
	// the rest of the graph); the message-passing backends complete
	// their round protocol first, then stream the verdicts.
	CheckStream(ctx context.Context, p Proof) (<-chan Verdict, error)
}

// Report is the unified result of a façade check, subsuming the legacy
// *Result (per-node outputs, accept/reject summary) and the engine's
// streamed Verdicts, plus timing and the backend that produced it.
type Report struct {
	// Backend is the execution path that produced the report.
	Backend string
	// Outputs is the per-node verdict map (the *Result surface).
	Outputs map[int]bool
	// Elapsed is the wall-clock time of the check.
	Elapsed time.Duration
	// Stages is the per-stage breakdown of Elapsed, in the order the
	// stages first ran. Which stages appear depends on the backend
	// ("core.check"; "dist.wire"/"dist.seed"/"dist.flood"/"dist.run";
	// "engine.views"/"engine.verify"; "engine.partition"/"engine.wire"/
	// "engine.run" plus the dist stages of every halo runtime). Stages
	// recorded by concurrent workers sum their wall time, so a stage's
	// Total can exceed Elapsed; Count says how many observations merged.
	Stages []Stage
}

// Stage is one named phase of a check with its accumulated wall time.
type Stage struct {
	// Name identifies the phase, prefixed by the layer that ran it
	// ("core.", "dist.", "engine.").
	Name string
	// Total is the accumulated wall time of every run of the stage.
	Total time.Duration
	// Count is how many observations were merged into Total.
	Count int64
}

// Nodes is the number of nodes that decided.
func (r *Report) Nodes() int { return len(r.Outputs) }

// Accepted reports whether every node output 1.
func (r *Report) Accepted() bool { return r.Result().Accepted() }

// Rejectors returns the nodes that output 0, sorted ascending.
func (r *Report) Rejectors() []int { return r.Result().Rejectors() }

// FirstReject returns the smallest-id rejecting node; ok is false when
// the proof was accepted everywhere.
func (r *Report) FirstReject() (node int, ok bool) {
	rej := r.Rejectors()
	if len(rej) == 0 {
		return 0, false
	}
	return rej[0], true
}

// Result views the report as the legacy result type.
func (r *Report) Result() *Result { return &Result{Outputs: r.Outputs} }

// Verdicts lists the per-node verdicts in ascending node order — the
// batch form of what CheckStream emits.
func (r *Report) Verdicts() []Verdict {
	out := make([]Verdict, 0, len(r.Outputs))
	for node, accept := range r.Outputs {
		out = append(out, Verdict{Node: node, Accept: accept})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// BatchError locates the first failing proof of a CheckBatch.
type BatchError struct {
	// Index is the position of the failing proof in the batch.
	Index int
	// Err is the underlying failure.
	Err error
}

func (e *BatchError) Error() string { return fmt.Sprintf("proofs[%d]: %v", e.Index, e.Err) }

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *BatchError) Unwrap() error { return e.Err }

// checkerConfig accumulates the functional options before NewChecker
// compiles them into a checker.
type checkerConfig struct {
	cfg        config.Config
	verifier   core.Verifier
	schemeName string
	engine     *engine.Engine
	err        error
}

func (cc *checkerConfig) fail(err error) {
	if cc.err == nil {
		cc.err = err
	}
}

// CheckerOption configures NewChecker.
type CheckerOption func(*checkerConfig)

// WithBackend selects the execution path: BackendCore, BackendDist,
// BackendEngine (the default), or BackendEngineDist.
func WithBackend(name string) CheckerOption {
	return func(cc *checkerConfig) {
		b, err := config.ParseBackend(name)
		if err != nil {
			cc.fail(fmt.Errorf("lcp: %v", err))
			return
		}
		cc.cfg.Backend = b
	}
}

// WithVerifier binds the local verifier the checker runs. Exactly one
// of WithVerifier and WithScheme is required.
func WithVerifier(v Verifier) CheckerOption {
	return func(cc *checkerConfig) { cc.verifier = v }
}

// WithScheme binds the scheme's verifier and records the scheme's name.
// On the in-process backends it is shorthand for
// WithVerifier(s.Verifier()); the dist-tcp backend requires it, because
// the workers resolve the scheme by name in their own registries.
func WithScheme(s Scheme) CheckerOption {
	return func(cc *checkerConfig) {
		cc.verifier = s.Verifier()
		cc.schemeName = s.Name()
	}
}

// WithWorkerAddrs lists the lcpworker control addresses (host:port) the
// dist-tcp backend fans out to, one shard per worker. The textual
// spelling is the "worker-addrs" option key (comma-separated), the same
// knob lcpserve flags and HTTP request options resolve.
func WithWorkerAddrs(addrs ...string) CheckerOption {
	return func(cc *checkerConfig) { cc.cfg.WorkerAddrs = addrs }
}

// WithWorkers bounds the engine backends' shared-memory worker pool
// (0 = GOMAXPROCS).
func WithWorkers(n int) CheckerOption {
	return func(cc *checkerConfig) { cc.cfg.Workers = n }
}

// WithRuntimes sets how many message-passing runtimes the engine-dist
// backend spans, each owning one partitioner group's radius-r halo
// (0 = 1).
func WithRuntimes(n int) CheckerOption {
	return func(cc *checkerConfig) { cc.cfg.Runtimes = n }
}

// WithSharded toggles the message-passing scheduler's sharded layout:
// node automata batched onto O(GOMAXPROCS) shard goroutines instead of
// one goroutine per node — the throughput layout once the node count
// dwarfs the core count.
func WithSharded(on bool) CheckerOption {
	return func(cc *checkerConfig) { cc.cfg.Dist.Sharded = on }
}

// WithShards sets the scheduler goroutine count per message-passing
// runtime and implies WithSharded(true) for n > 0 (0 = GOMAXPROCS).
func WithShards(n int) CheckerOption {
	return func(cc *checkerConfig) {
		cc.cfg.Dist.Shards = n
		if n > 0 {
			cc.cfg.Dist.Sharded = true
		}
	}
}

// WithFreeRunning disables the message-passing runtimes' global round
// barrier in favour of α-synchronization by per-port message counting.
// Note that free-running runs flood to completion — context
// cancellation between rounds needs the barrier.
func WithFreeRunning(on bool) CheckerOption {
	return func(cc *checkerConfig) { cc.cfg.Dist.FreeRunning = on }
}

// WithPartitioner sets the node→shard assignment policy, applied at
// both levels like lcpserve's -partitioner flag: the engine-dist halo
// cut and the sharded scheduler layout inside each runtime.
func WithPartitioner(p Partitioner) CheckerOption {
	return func(cc *checkerConfig) { cc.cfg.Partitioner = p }
}

// WithBatchColumns forces the engine backend's CheckBatch strategy: on
// routes every batch through the column-wise path (one ball walk per
// node feeding all k proofs, identical ball restrictions deduplicated),
// off always runs the per-proof loop. Without this option the checker
// auto-engages the columns path for batches of
// config.BatchColumnsAutoThreshold proofs or more. The textual spelling
// is config.Set("batch-columns", "auto"|"true"|"false"), the same knob
// lcpserve flags and /check/batch request options resolve.
func WithBatchColumns(on bool) CheckerOption {
	return func(cc *checkerConfig) {
		if on {
			cc.cfg.BatchColumns = config.BatchColumnsOn
		} else {
			cc.cfg.BatchColumns = config.BatchColumnsOff
		}
	}
}

// WithEngine backs the engine and engine-dist backends with an existing
// Engine instead of wiring a private one, so several checkers (one per
// scheme, say) share one set of cached views and runtimes. The engine
// must serve the same instance the checker is built for.
func WithEngine(e *Engine) CheckerOption {
	return func(cc *checkerConfig) { cc.engine = e }
}

// withDistOptions injects a full legacy dist.Options, preserving every
// scheduler knob (fan-out, port buffers, decide-only sets) for the
// deprecated CheckDistributedWith wrapper.
func withDistOptions(opt DistOptions) CheckerOption {
	return func(cc *checkerConfig) { cc.cfg.Dist = opt }
}

// checker is the façade implementation: one backend, one instance, one
// verifier, state amortized per backend (cached engine, prewired
// message-passing network).
type checker struct {
	in         *core.Instance
	v          core.Verifier
	cfg        config.Config
	schemeName string         // dist-tcp backend: resolved on the workers
	eng        *engine.Engine // engine backends

	mu    sync.Mutex
	net   *dist.Network       // dist backend, wired lazily on first check
	coord *remote.Coordinator // dist-tcp backend, dialed and registered lazily
}

// checkerSeq distinguishes concurrently-registered instances of this
// process on a shared worker fleet.
var checkerSeq atomic.Uint64

// NewChecker compiles the options into a Checker for the instance. The
// verifier is required (WithScheme or WithVerifier); everything else
// defaults: engine backend, GOMAXPROCS workers, one runtime, contiguous
// partitioner, goroutine-per-node lockstep scheduler.
func NewChecker(in *Instance, opts ...CheckerOption) (Checker, error) {
	if in == nil || in.G == nil {
		return nil, fmt.Errorf("lcp: nil instance")
	}
	cc := &checkerConfig{}
	for _, opt := range opts {
		opt(cc)
	}
	if cc.err != nil {
		return nil, cc.err
	}
	if cc.verifier == nil {
		return nil, fmt.Errorf("lcp: checker needs a verifier: pass WithScheme or WithVerifier")
	}
	c := &checker{in: in, v: cc.verifier, cfg: cc.cfg, schemeName: cc.schemeName}
	switch c.backend() {
	case config.BackendDistTCP:
		if cc.engine != nil {
			return nil, fmt.Errorf("lcp: WithEngine requires the engine or engine-dist backend, not %q", c.backend())
		}
		if len(c.cfg.WorkerAddrs) == 0 {
			return nil, fmt.Errorf("lcp: %v", c.cfg.Validate())
		}
		if c.schemeName == "" {
			return nil, fmt.Errorf("lcp: backend %q needs WithScheme (workers resolve the scheme by name; a bare WithVerifier cannot travel)", c.backend())
		}
	case config.BackendEngine, config.BackendEngineDist:
		if cc.engine != nil {
			if cc.engine.Instance() != in {
				return nil, fmt.Errorf("lcp: WithEngine: the engine serves a different instance")
			}
			c.eng = cc.engine
		} else {
			c.eng = engine.New(in, c.cfg.EngineOptions())
		}
	default:
		if cc.engine != nil {
			return nil, fmt.Errorf("lcp: WithEngine requires the engine or engine-dist backend, not %q", c.backend())
		}
	}
	return c, nil
}

func (c *checker) backend() config.Backend { return c.cfg.ResolvedBackend() }

// network wires the dist backend's reusable message-passing network on
// first use; construction is the expensive part of a run, so it is paid
// once per checker, not once per proof.
func (c *checker) network() (*dist.Network, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.net == nil {
		nw, err := dist.NewNetwork(c.in, c.cfg.DistOptions())
		if err != nil {
			return nil, err
		}
		c.net = nw
	}
	return c.net, nil
}

// coordinator dials the worker fleet and registers the instance on
// first use — the expensive part of the dist-tcp path (halo cutting,
// instance shipping), paid once per checker, not once per proof.
func (c *checker) coordinator(ctx context.Context) (*remote.Coordinator, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.coord != nil {
		return c.coord, nil
	}
	id := fmt.Sprintf("lcp-%d-%d", os.Getpid(), checkerSeq.Add(1))
	coord, err := remote.DialCoordinator(ctx, id, c.cfg.WorkerAddrs, remote.Options{Partitioner: c.cfg.Partitioner})
	if err != nil {
		return nil, err
	}
	if err := coord.Register(ctx, c.in, c.schemeName); err != nil {
		_ = coord.Close() // registration failed; the dial error above is what matters
		return nil, err
	}
	c.coord = coord
	return coord, nil
}

// close releases the dist backend's wirings back to the runtime's node
// pool and tells a dist-tcp worker fleet to forget the instance. Used
// by the one-shot legacy wrappers and CloseChecker; long-lived
// in-process checkers can simply be garbage collected.
func (c *checker) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.net != nil {
		c.net.Close()
		c.net = nil
	}
	if c.coord != nil {
		_ = c.coord.Close() // best effort: the fleet reaps abandoned instances
		c.coord = nil
	}
}

// CloseChecker releases a checker's amortized state eagerly: the dist
// backend's node wirings, and — on the dist-tcp backend — the worker
// fleet's registration and control connections. Safe on every Checker
// this package constructs and on every backend; a checker that holds no
// such state is a no-op. The checker must not be used afterwards.
func CloseChecker(c Checker) {
	if impl, ok := c.(*checker); ok {
		impl.close()
	}
}

func (c *checker) report(res *core.Result, start time.Time) *Report {
	return &Report{
		Backend: string(c.backend()),
		Outputs: res.Outputs,
		Elapsed: time.Since(start),
	}
}

func (c *checker) Check(ctx context.Context, p Proof) (*Report, error) {
	start := time.Now()
	// Every check gets its own timeline (shadowing any outer one), so the
	// reports of a batch carry per-proof breakdowns, not a shared blur.
	tl := obs.NewTimeline()
	ctx = obs.ContextWithTimeline(ctx, tl)
	var res *core.Result
	var err error
	switch c.backend() {
	case config.BackendCore:
		stop := tl.Start("core.check")
		res, err = core.CheckCtx(ctx, c.in, p, c.v)
		stop()
	case config.BackendDist:
		var nw *dist.Network
		stop := tl.Start("dist.wire")
		nw, err = c.network()
		stop()
		if err == nil {
			res, err = nw.CheckCtx(ctx, p, c.v)
		}
	case config.BackendEngine:
		res, err = c.eng.CheckProofCtx(ctx, p, c.v)
	case config.BackendEngineDist:
		res, err = c.eng.CheckDistributedCtx(ctx, p, c.v)
	case config.BackendDistTCP:
		var coord *remote.Coordinator
		coord, err = c.coordinator(ctx)
		if err == nil {
			res, _, err = coord.Check(ctx, p)
		}
	default:
		err = fmt.Errorf("lcp: unknown backend %q", c.backend())
	}
	c.record(tl, res, err)
	if err != nil {
		return nil, err
	}
	rep := c.report(res, start)
	for _, st := range tl.Snapshot() {
		rep.Stages = append(rep.Stages, Stage{Name: st.Name, Total: st.Total, Count: st.Count})
	}
	return rep, nil
}

// record publishes one check's outcome and stage times to the process
// metrics, labelled by backend — the scrapeable aggregate of what the
// per-check Report.Stages break down individually.
func (c *checker) record(tl *obs.Timeline, res *core.Result, err error) {
	c.recordOutcome(res, err)
	c.recordStages(tl)
}

// recordOutcome publishes one check's (or one batch column's) verdict
// to lcp_checker_checks_total.
func (c *checker) recordOutcome(res *core.Result, err error) {
	outcome := "accepted"
	switch {
	case err != nil:
		outcome = "error"
	case !res.Accepted():
		outcome = "rejected"
	}
	obs.Default().Counter("lcp_checker_checks_total",
		"Façade checks by backend and outcome.",
		obs.Label{Name: "backend", Value: string(c.backend())},
		obs.Label{Name: "outcome", Value: outcome}).Inc()
}

// recordStages publishes a timeline's stage times to
// lcp_checker_stage_seconds_total. A column-wise batch records its
// shared timeline once, not once per column.
func (c *checker) recordStages(tl *obs.Timeline) {
	backend := obs.Label{Name: "backend", Value: string(c.backend())}
	for _, st := range tl.Snapshot() {
		obs.Default().Counter("lcp_checker_stage_seconds_total",
			"Accumulated stage wall time of façade checks, by backend and stage.",
			backend, obs.Label{Name: "stage", Value: st.Name}).Add(st.Total.Seconds())
	}
}

func (c *checker) CheckBatch(ctx context.Context, proofs []Proof) ([]*Report, error) {
	switch c.backend() {
	case config.BackendDist, config.BackendEngineDist:
		// The round protocol leaves cores idle per proof; the runtimes
		// hand every concurrent caller its own wiring, so a batch
		// saturates the machine on a bounded pool instead of flooding
		// one proof at a time.
		return c.checkBatchConcurrent(ctx, proofs)
	case config.BackendEngine:
		if c.cfg.BatchColumns.Engaged(len(proofs)) {
			return c.checkBatchColumns(ctx, proofs)
		}
	}
	reports := make([]*Report, 0, len(proofs))
	for i, p := range proofs {
		rep, err := c.Check(ctx, p)
		if err != nil {
			return nil, &BatchError{Index: i, Err: err}
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// checkBatchColumns serves the batch through the engine's column-wise
// path: one walk over the cached skeletons feeds every proof, so the
// batch shares a single timeline and wall clock — each Report carries
// the batch's Elapsed and Stages, not a per-proof slice of them. The
// walk fails (or is cancelled) as a unit: no column has a complete
// verdict until it finishes, so the BatchError of a failed batch points
// at index 0, the first proof without a report.
func (c *checker) checkBatchColumns(ctx context.Context, proofs []Proof) ([]*Report, error) {
	start := time.Now()
	tl := obs.NewTimeline()
	ctx = obs.ContextWithTimeline(ctx, tl)
	results, err := c.eng.CheckBatchColumnsCtx(ctx, proofs, c.v)
	c.recordStages(tl)
	if err != nil {
		c.recordOutcome(nil, err)
		return nil, &BatchError{Index: 0, Err: err}
	}
	elapsed := time.Since(start)
	stages := make([]Stage, 0, 4)
	for _, st := range tl.Snapshot() {
		stages = append(stages, Stage{Name: st.Name, Total: st.Total, Count: st.Count})
	}
	reports := make([]*Report, len(results))
	for i, res := range results {
		c.recordOutcome(res, nil)
		reports[i] = &Report{
			Backend: string(c.backend()),
			Outputs: res.Outputs,
			Elapsed: elapsed,
			Stages:  stages,
		}
	}
	return reports, nil
}

// checkBatchConcurrent fans a batch out over a GOMAXPROCS-bounded
// worker pool. After the first error, idle workers stop picking up
// proofs; in-flight ones finish, and the smallest failing index wins.
func (c *checker) checkBatchConcurrent(ctx context.Context, proofs []Proof) ([]*Report, error) {
	reports := make([]*Report, len(proofs))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		errIdx   = -1
		batchErr error
		next     atomic.Int64
	)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(proofs) {
		workers = len(proofs)
	}
	wg.Add(workers)
	for range workers {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(proofs) {
					return
				}
				mu.Lock()
				failed := errIdx != -1
				mu.Unlock()
				if failed {
					return
				}
				rep, err := c.Check(ctx, proofs[i])
				if err != nil {
					mu.Lock()
					if errIdx == -1 || i < errIdx {
						errIdx, batchErr = i, err
					}
					mu.Unlock()
					return
				}
				reports[i] = rep
			}
		}()
	}
	wg.Wait()
	if batchErr != nil {
		return nil, &BatchError{Index: errIdx, Err: batchErr}
	}
	return reports, nil
}

func (c *checker) CheckStream(ctx context.Context, p Proof) (<-chan Verdict, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch c.backend() {
	case config.BackendEngine:
		return c.eng.CheckStream(ctx, p, c.v), nil
	case config.BackendCore:
		out := make(chan Verdict)
		go func() {
			defer close(out)
			radius := c.v.Radius()
			for _, node := range c.in.G.Nodes() {
				if ctx.Err() != nil {
					return
				}
				verdict := Verdict{Node: node, Accept: c.v.Verify(core.BuildView(c.in, p, node, radius))}
				select {
				case out <- verdict:
				case <-ctx.Done():
					return
				}
			}
		}()
		return out, nil
	default:
		// Message-passing backends: verdicts only exist once the round
		// protocol completes, so run it (cancellable between rounds) and
		// stream the result.
		rep, err := c.Check(ctx, p)
		if err != nil {
			return nil, err
		}
		out := make(chan Verdict)
		go func() {
			defer close(out)
			for _, v := range rep.Verdicts() {
				select {
				case out <- v:
				case <-ctx.Done():
					return
				}
			}
		}()
		return out, nil
	}
}
