package lcp_test

// The public-API golden test: the exported surface of package lcp,
// rendered from the parsed source, must match testdata/api.txt. An
// intentional API change regenerates the file with
//
//	go test -run TestPublicAPIGolden -update-api .
//
// and the diff lands in review; an accidental one (a renamed option, a
// changed signature, a dropped re-export) fails here first. The façade
// PR exists to make this surface deliberate — keep it that way.

import (
	"bytes"
	"flag"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update-api", false, "rewrite testdata/api.txt with the current public API")

func TestPublicAPIGolden(t *testing.T) {
	got := renderPublicAPI(t)
	const golden = "testdata/api.txt"
	if *updateAPI {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with -update-api)", err)
	}
	if got != string(want) {
		t.Fatalf("public API surface changed.\nIf intentional, regenerate with:\n\tgo test -run TestPublicAPIGolden -update-api .\n\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// renderPublicAPI parses every non-test file of the root package and
// renders each exported top-level declaration (functions, methods on
// exported types, and the exported specs of const/var/type blocks),
// sorted for stability.
func renderPublicAPI(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	var decls []string
	for _, file := range files {
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, file, nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", file, err)
		}
		for _, d := range f.Decls {
			for _, rendered := range renderDecl(t, fset, d) {
				decls = append(decls, rendered)
			}
		}
	}
	sort.Strings(decls)
	return strings.Join(decls, "\n") + "\n"
}

func renderDecl(t *testing.T, fset *token.FileSet, d ast.Decl) []string {
	t.Helper()
	switch d := d.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedRecv(d) {
			return nil
		}
		fn := *d
		fn.Doc = nil
		fn.Body = nil
		return []string{print(t, fset, &fn)}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			rendered := renderSpec(t, fset, d.Tok, spec)
			if rendered != "" {
				out = append(out, rendered)
			}
		}
		return out
	}
	return nil
}

// exportedRecv reports whether a method's receiver names an exported
// type (methods on unexported types are not API).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch u := typ.(type) {
		case *ast.StarExpr:
			typ = u.X
		case *ast.IndexExpr:
			typ = u.X
		case *ast.Ident:
			return u.IsExported()
		default:
			return false
		}
	}
}

// renderSpec renders one exported const/var/type spec as a standalone
// declaration line.
func renderSpec(t *testing.T, fset *token.FileSet, tok token.Token, spec ast.Spec) string {
	t.Helper()
	switch s := spec.(type) {
	case *ast.TypeSpec:
		if !s.Name.IsExported() {
			return ""
		}
		cp := *s
		cp.Doc, cp.Comment = nil, nil
		return tok.String() + " " + print(t, fset, &cp)
	case *ast.ValueSpec:
		cp := *s
		cp.Doc, cp.Comment = nil, nil
		var names []*ast.Ident
		var values []ast.Expr
		for i, name := range s.Names {
			if !name.IsExported() {
				continue
			}
			names = append(names, name)
			if i < len(s.Values) {
				values = append(values, s.Values[i])
			}
		}
		if len(names) == 0 {
			return ""
		}
		cp.Names = names
		if len(values) == len(names) {
			cp.Values = values
		}
		return tok.String() + " " + print(t, fset, &cp)
	}
	return ""
}

func print(t *testing.T, fset *token.FileSet, node any) string {
	t.Helper()
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.UseSpaces, Tabwidth: 8}
	if err := cfg.Fprint(&buf, fset, node); err != nil {
		t.Fatal(err)
	}
	// Collapse the declaration onto one logical record: inner newlines
	// become "; " so the golden file diffs line-per-symbol.
	out := strings.Join(strings.Fields(buf.String()), " ")
	return out
}
