GO ?= go

.PHONY: check build vet test test-short race bench bench-smoke

check: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run=NONE -bench='BenchmarkAblationViewConstruction|BenchmarkDistributedRuntime|BenchmarkEngineAmortized' -benchmem .
	$(GO) test -run=NONE -bench=. -benchmem ./internal/dist/

# bench-smoke runs every benchmark exactly once so CI catches benches
# that no longer compile or fail their own assertions, without paying
# for a real measurement.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...
