GO ?= go

.PHONY: check build vet lint doclint test test-short race bench bench-smoke bench-diff load-smoke obs-smoke fuzz-smoke scale-smoke transport-smoke sweep

check: build vet lint test fuzz-smoke scale-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the repo's own static-analysis suite (internal/lint via
# cmd/lcplint): lockheld, poolput, ctxflow, errignored, doccomment — each
# pins an invariant one of the historical concurrency/API bugs violated
# (see docs/ARCHITECTURE.md, "Static-analysis layer"). It complements
# `go vet`, it does not replace it. TestLintCleanRepo asserts the same
# zero-diagnostics property from inside the test suite.
lint:
	$(GO) run ./cmd/lcplint $$($(GO) list -f '{{.Dir}}' ./...)

# doclint is the old doc-comment-only pass, kept as a deprecated wrapper
# over the doccomment analyzer; `make lint` (and through it `make check`)
# covers it.
doclint:
	$(GO) run ./cmd/doclint $$($(GO) list -f '{{.Dir}}' ./...)

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run=NONE -bench='BenchmarkAblationViewConstruction|BenchmarkDistributedRuntime|BenchmarkEngineAmortized' -benchmem .
	$(GO) test -run=NONE -bench=. -benchmem ./internal/dist/
	$(GO) test -run=NONE -bench=. -benchmem ./internal/partition/

# bench-smoke runs every benchmark exactly once — including the sharded
# scheduler benches (BenchmarkSchedulerSharded, the message-passing-
# sharded ablation) and the partition-quality benches
# (BenchmarkPartitioners, whose cut-edge metrics feed
# BENCH_partition.json) — so CI catches benches that no longer compile
# or fail their own assertions, without paying for a real measurement.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# load-smoke fires a short burst of real HTTP traffic at an in-process
# lcpserve (cmd/lcpload with no -url): a few seconds of /check and
# /check/batch at modest concurrency, one run per backend family. It
# exists to catch a service stack that no longer survives concurrent
# load (lcpload exits non-zero on any failed request), not to measure —
# `lcpload -duration 10s -concurrency 16` against a real daemon does
# that.
load-smoke:
	$(GO) run ./cmd/lcpload -duration 2s -concurrency 4 -nodes 64 -batch 8
	$(GO) run ./cmd/lcpload -duration 2s -concurrency 4 -nodes 64 -batch 8 -backend engine-dist -partitioner bfs

# fuzz-smoke runs every native fuzz target for a short budget (one
# target per invocation — the go tool's rule). The seed corpora under
# testdata/fuzz/ run as plain tests in `make test` already; this step
# buys a little fresh exploration on every check, so a parser panic or
# a columns/core divergence surfaces in CI, not in production traffic.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzTextioRoundTrip -fuzztime=10s ./internal/textio/
	$(GO) test -run=NONE -fuzz=FuzzBatchColumnsEquivalence -fuzztime=10s ./internal/engine/

# scale-smoke runs one n=10^5 sweep cell per backend through cmd/lcpsweep
# — the full generate -> textio write -> parse -> prove -> check pipeline
# on a power-law instance — so "the hot paths hold up at scale" is
# re-proved on every check, not only in the recorded BENCH_sweep.json.
# Seconds per cell; the full grid (plus the n=10^6 tier) is `make sweep`.
scale-smoke:
	$(GO) run ./cmd/lcpsweep -n 100000 -families power-law -backends core,engine,dist,engine-dist

# transport-smoke is the multi-process scale-out check: cmd/lcpfleet
# spawns two real worker subprocesses (its own binary in -as-worker
# mode), registers every catalog scheme's instance over the dist-tcp
# control plane, floods the shards over actual TCP sockets, asserts
# verdict equality with the sequential reference, and SIGTERMs the
# fleet insisting on clean exits. The built binary is used (not `go
# run`) because the harness re-executes os.Executable() to spawn its
# workers.
transport-smoke:
	$(GO) build -o bin/lcpfleet ./cmd/lcpfleet
	./bin/lcpfleet -workers 2

# sweep reproduces BENCH_sweep.json: the full n=10^5 grid over family x
# backend x partitioner x shards, plus the n=10^6 tier on the
# shared-memory backends (the message-passing backends are capped by
# -max-dist-n). Minutes, not seconds.
sweep:
	$(GO) run ./cmd/lcpsweep -n 100000,1000000 -partitioners contiguous,bfs -shards 0,4 -out BENCH_sweep.json

# bench-diff re-runs the benchmarks each BENCH_*.json baseline records
# and prints fresh/baseline ratios, flagging anything 1.20x over. The
# ledger comparison every perf-relevant PR owes — measured, not eyeballed.
bench-diff:
	$(GO) run ./cmd/lcpsweep -bench-diff

# obs-smoke exercises the observability contract end to end: a short
# lcpload burst per backend family scrapes /metrics before and after the
# window and exits non-zero if the Prometheus exposition fails to parse
# or any counter moves backwards, on top of the package-level tests for
# trace-ID propagation and exposition well-formedness.
obs-smoke:
	$(GO) test -run 'TestServeTrace|TestServeMetrics|TestServeRequestLogging' ./internal/serve/
	$(GO) test -run 'TestWriteProm|TestTrace' ./internal/obs/
	$(GO) run ./cmd/lcpload -duration 1s -concurrency 4 -nodes 64 -batch 8 -backend dist
	$(GO) run ./cmd/lcpload -duration 1s -concurrency 4 -nodes 64 -batch 8 -backend engine-dist -partitioner bfs
