GO ?= go

.PHONY: check build vet doclint test test-short race bench bench-smoke

check: build vet doclint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# doclint fails on packages without a package comment: the package
# comments are the paper-to-code map (see docs/ARCHITECTURE.md), so a
# missing one is a documentation regression, not a style nit.
doclint:
	$(GO) run ./cmd/doclint $$($(GO) list -f '{{.Dir}}' ./...)

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run=NONE -bench='BenchmarkAblationViewConstruction|BenchmarkDistributedRuntime|BenchmarkEngineAmortized' -benchmem .
	$(GO) test -run=NONE -bench=. -benchmem ./internal/dist/
	$(GO) test -run=NONE -bench=. -benchmem ./internal/partition/

# bench-smoke runs every benchmark exactly once — including the sharded
# scheduler benches (BenchmarkSchedulerSharded, the message-passing-
# sharded ablation) and the partition-quality benches
# (BenchmarkPartitioners, whose cut-edge metrics feed
# BENCH_partition.json) — so CI catches benches that no longer compile
# or fail their own assertions, without paying for a real measurement.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...
