GO ?= go

.PHONY: check build vet test test-short race bench

check: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run=NONE -bench='BenchmarkAblationViewConstruction|BenchmarkDistributedRuntime' -benchmem .
	$(GO) test -run=NONE -bench=. -benchmem ./internal/dist/
