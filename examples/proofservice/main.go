// Proofservice drives the lcpserve HTTP daemon end to end, in process:
// it starts the service on a loopback port, registers a bipartite
// instance in the textio format, asks the server to prove it, verifies
// the certificate over POST /check and a 32-proof POST /check/batch,
// then tampers with one bit and watches the streaming NDJSON endpoint
// raise the alarm and exit early.
//
// This is exactly the amortized workload the engine behind the server
// is built for: one instance registration, many proofs, the radius-r
// views constructed once.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	"lcp"
	"lcp/internal/config"
	"lcp/internal/serve"
	"lcp/internal/textio"
)

func main() {
	// Start lcpserve's handler on an ephemeral loopback port — the same
	// http.Handler the daemon serves, minus the process boundary.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: serve.New(lcp.BuiltinSchemes(), config.Config{Runtimes: 2})}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("lcpserve listening on", base)

	// 1. Register a C16 instance for the bipartite scheme. The server
	// wires a long-lived engine for it; every later check reuses it.
	in := lcp.NewInstance(lcp.Cycle(16))
	var doc bytes.Buffer
	if err := textio.Write(&doc, &textio.Document{Instance: in, SchemeName: "bipartite"}); err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/instances", "text/plain", &doc)
	if err != nil {
		log.Fatal(err)
	}
	var reg struct {
		ID    string `json:"id"`
		Nodes int    `json:"nodes"`
	}
	mustDecode(resp, &reg)
	fmt.Printf("registered instance %s (n=%d, scheme=bipartite)\n", reg.ID, reg.Nodes)

	// 2. Ask the server for a certificate: a proper 2-colouring, one
	// bit per node.
	var proved struct {
		Proof       map[string]string `json:"proof"`
		BitsPerNode int               `json:"bits_per_node"`
	}
	mustDecode(postJSON(base+"/prove", map[string]any{"instance": reg.ID}), &proved)
	fmt.Printf("server proved it with %d bit(s) per node\n", proved.BitsPerNode)

	// 3. Verify the honest certificate.
	var verdict struct {
		Accepted  bool  `json:"accepted"`
		Rejectors []int `json:"rejectors"`
	}
	mustDecode(postJSON(base+"/check", map[string]any{
		"instance": reg.ID, "proof": proved.Proof,
	}), &verdict)
	fmt.Printf("POST /check: accepted=%v\n", verdict.Accepted)

	// 4. A batch: the honest proof plus 31 single-bit corruptions. The
	// engine behind the instance checks all 32 on the cached views.
	proofs := []map[string]string{proved.Proof}
	for node := 1; node <= 31; node++ {
		key := fmt.Sprint((node % reg.Nodes) + 1)
		tampered := make(map[string]string, len(proved.Proof))
		for k, v := range proved.Proof {
			tampered[k] = v
		}
		tampered[key] = flipBits(tampered[key])
		proofs = append(proofs, tampered)
	}
	var batch struct {
		Accepted int `json:"accepted"`
		Checked  int `json:"checked"`
	}
	mustDecode(postJSON(base+"/check/batch", map[string]any{
		"instance": reg.ID, "proofs": proofs,
	}), &batch)
	fmt.Printf("POST /check/batch: %d/%d proofs accepted (only the honest one survives)\n",
		batch.Accepted, batch.Checked)

	// 5. Tamper one bit and stream verdicts with stop_on_reject: the
	// server cancels the remaining work the moment a node rejects.
	tampered := make(map[string]string, len(proved.Proof))
	for k, v := range proved.Proof {
		tampered[k] = v
	}
	tampered["5"] = flipBits(tampered["5"])
	resp = postJSON(base+"/check/stream", map[string]any{
		"instance": reg.ID, "proof": tampered, "stop_on_reject": true,
	})
	defer resp.Body.Close()
	fmt.Println("POST /check/stream with a flipped bit at node 5:")
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println("  ", line)
		if strings.Contains(line, `"done":true`) {
			var summary struct {
				Checked      int  `json:"checked"`
				Nodes        int  `json:"nodes"`
				StoppedEarly bool `json:"stopped_early"`
			}
			if err := json.Unmarshal([]byte(line), &summary); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("early exit: %d of %d verdicts streamed before the alarm (stopped_early=%v)\n",
				summary.Checked, summary.Nodes, summary.StoppedEarly)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

func postJSON(url string, body any) *http.Response {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	return resp
}

func mustDecode(resp *http.Response, v any) {
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("%s: unexpected status %d", resp.Request.URL, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}

// flipBits inverts every bit of a proof string, guaranteeing the
// 2-colouring constraint breaks at the node's boundary.
func flipBits(bits string) string {
	out := []byte(bits)
	for i, b := range out {
		if b == '0' {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
