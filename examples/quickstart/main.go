// Quickstart: prove that a graph is bipartite with a 1-bit-per-node
// locally checkable proof, verify it distributedly, and watch soundness
// in action on an odd cycle.
package main

import (
	"fmt"
	"log"

	"lcp"
	"lcp/internal/core"
)

func main() {
	// An 8-cycle is bipartite. The proof is a proper 2-colouring: one
	// bit per node.
	even := lcp.NewInstance(lcp.Cycle(8))
	scheme := lcp.BipartiteScheme()

	proof, res, err := lcp.ProveAndCheck(even, scheme)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C8: %s with %d bit(s) per node\n", res, proof.Size())

	// Verify on the LOCAL-model runtime: one goroutine per node, views
	// flooded for radius rounds.
	dres, err := lcp.CheckDistributed(even, proof, scheme.Verifier())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C8 (distributed): %s\n", dres)

	// A 9-cycle is not bipartite: the prover refuses…
	odd := lcp.NewInstance(lcp.Cycle(9))
	if _, err := lcp.Prove(scheme, odd); err != nil {
		fmt.Printf("C9: prover says: %v\n", err)
	}

	// …and no proof exists at all, which we can certify exhaustively at
	// this size: all 2^9 one-bit assignments are rejected somewhere.
	sound, _ := core.CertifySoundness(odd, scheme.Verifier(), 1)
	fmt.Printf("C9: exhaustive search over all 1-bit proofs: every one rejected = %v\n", sound)

	// Tampering with a valid proof trips the verifier.
	tampered := core.FlipBit(proof, 1)
	res2 := lcp.Check(even, tampered, scheme.Verifier())
	fmt.Printf("C8 with a flipped bit: %s (alarms at %v)\n", res2, res2.Rejectors())
}
