// Quickstart: prove that a graph is bipartite with a 1-bit-per-node
// locally checkable proof, verify it distributedly, and watch soundness
// in action on an odd cycle.
package main

import (
	"context"
	"fmt"
	"log"

	"lcp"
	"lcp/internal/core"
)

func main() {
	// An 8-cycle is bipartite. The proof is a proper 2-colouring: one
	// bit per node.
	even := lcp.NewInstance(lcp.Cycle(8))
	scheme := lcp.BipartiteScheme()

	proof, res, err := lcp.ProveAndCheck(even, scheme)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C8: %s with %d bit(s) per node\n", res, proof.Size())

	// Verify on the LOCAL-model runtime through the unified façade:
	// one goroutine per node, views flooded for radius rounds. The same
	// NewChecker call with a different WithBackend selects the
	// sequential reference or the cached-view engine instead.
	chk, err := lcp.NewChecker(even, lcp.WithScheme(scheme), lcp.WithBackend(lcp.BackendDist))
	if err != nil {
		log.Fatal(err)
	}
	dres, err := chk.Check(context.Background(), proof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C8 (distributed): %s\n", dres.Result())

	// A 9-cycle is not bipartite: the prover refuses…
	odd := lcp.NewInstance(lcp.Cycle(9))
	if _, err := lcp.Prove(scheme, odd); err != nil {
		fmt.Printf("C9: prover says: %v\n", err)
	}

	// …and no proof exists at all, which we can certify exhaustively at
	// this size: all 2^9 one-bit assignments are rejected somewhere.
	sound, _ := core.CertifySoundness(odd, scheme.Verifier(), 1)
	fmt.Printf("C9: exhaustive search over all 1-bit proofs: every one rejected = %v\n", sound)

	// Tampering with a valid proof trips the verifier; the checker
	// reuses its wiring from the honest check above.
	tampered := core.FlipBit(proof, 1)
	res2, err := chk.Check(context.Background(), tampered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C8 with a flipped bit: %s (alarms at %v)\n", res2.Result(), res2.Rejectors())
}
