// Port numbering: locally checkable proofs WITHOUT unique identifiers.
//
// §7.1 of Göös–Suomela shows LogLCP is the same class in two different
// models: M1 (nodes have unique IDs) and M2 (nodes are anonymous, only a
// port numbering and a single distinguished leader exist). The
// translation packs a spanning tree — encoded purely as "my parent is my
// port #3" — plus DFS discovery/finishing times into the certificate;
// the interval-nesting discipline forces the times to be globally
// distinct, giving every node a verified virtual identity.
//
// This example runs the odd-n counting scheme in the M2 model and then
// demonstrates the punchline: re-assigning every real identifier (order-
// preservingly, so the port structure is untouched) leaves the SAME
// certificate valid — the proof genuinely never reads the identifiers.
// The raw M1 certificate breaks immediately under the same renaming.
package main

import (
	"fmt"
	"log"

	"lcp"
	"lcp/internal/ports"
)

func main() {
	// An anonymous sensor ring of 33 nodes with one gateway (the leader).
	ring := lcp.Cycle(33)
	in := lcp.NewInstance(ring).SetNodeLabel(17, lcp.LabelLeader)

	m2 := ports.M2Scheme{Inner: lcp.OddNScheme()}
	cert, res, err := lcp.ProveAndCheck(in, m2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("M2 certificate for \"n is odd\" on an anonymous 33-ring: %d bits/node, %s\n",
		cert.Size(), res)

	m1 := lcp.OddNScheme()
	rawCert, _, err := lcp.ProveAndCheck(in, m1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("M1 certificate (uses identifiers):                      %d bits/node\n\n", rawCert.Size())

	// The hardware is re-flashed: every node gets a new serial number.
	// Relative order is preserved, so each node's ports still point at
	// the same neighbours.
	renaming := ports.OrderPreservingRelabel(ring, 13, 1000)
	in2 := in.Relabel(renaming)

	fmt.Println("After re-assigning all identifiers (order-preserving):")
	if lcp.Check(in2, cert.Relabel(renaming), m2.Verifier()).Accepted() {
		fmt.Println("  M2 certificate: STILL VALID — it never read the identifiers")
	} else {
		log.Fatal("  M2 certificate broke; §7.1 translation is faulty")
	}
	if !lcp.Check(in2, rawCert.Relabel(renaming), m1.Verifier()).Accepted() {
		fmt.Println("  M1 certificate: INVALID — its tree labels embed the old identifiers")
	} else {
		log.Fatal("  M1 certificate survived renaming?!")
	}

	fmt.Println()
	fmt.Println("A forged anonymous certificate still cannot claim the wrong parity:")
	even := lcp.NewInstance(lcp.Cycle(34)).SetNodeLabel(17, lcp.LabelLeader)
	if _, err := m2.Prove(even); err != nil {
		fmt.Printf("  prover on a 34-ring: %v\n", err)
	}
}
