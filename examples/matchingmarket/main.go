// Matching market: verifiable optimality via LP duality (§2.3).
//
// A platform assigns workers to jobs to maximize total value. Workers do
// not trust the platform — so alongside the assignment, the platform
// publishes an O(log W)-bit dual certificate y_v per participant. Each
// participant checks only its own neighbourhood:
//
//   - y_me + y_job ≥ value(me, job) for every job I could take
//     (no blocking pair is undervalued), and
//   - y_me + y_match = value(me, match) on my actual assignment
//     (my potential is fully backed by real value), and
//   - if y_me > 0 then I am matched (no phantom potentials).
//
// If every participant accepts, complementary slackness forces the
// assignment to be a maximum-weight matching — certified optimality with
// constant-radius checks.
package main

import (
	"fmt"
	"log"

	"lcp"
	"lcp/internal/core"
	"lcp/internal/graphalg"
)

func main() {
	// 6 workers (1..6), 7 jobs (7..13); values are synthetic skill fits.
	const workers, jobs = 6, 7
	g := lcp.RandomBipartite(workers, jobs, 0.7, 2026)
	values := graphalg.Weights{}
	const W = 100
	rng := int64(99)
	for _, e := range g.Edges() {
		rng = rng*6364136223846793005 + 1442695040888963407
		values[e] = (rng >> 40) % (W + 1)
		if values[e] < 0 {
			values[e] = -values[e]
		}
	}

	// The platform computes the optimal assignment (Hungarian) and its
	// integral dual certificate.
	var left []int
	for v := 1; v <= workers; v++ {
		left = append(left, v)
	}
	assignment := graphalg.MaxWeightMatching(g, left, values)
	fmt.Printf("market: %d workers, %d jobs, %d offers\n", workers, jobs, g.M())
	fmt.Printf("optimal assignment: %d pairs, total value %d\n",
		len(assignment), graphalg.MatchingWeight(assignment, values))

	in := lcp.NewInstance(g)
	in.Weights = map[lcp.Edge]int64{}
	for e, w := range values {
		in.Weights[e] = w
	}
	for e := range assignment {
		in.MarkEdge(e.U, e.V)
	}
	in.Global = lcp.Global{lcp.GlobalW: W}

	scheme := lcp.MaxWeightMatchingScheme()
	cert, res, err := lcp.ProveAndCheck(in, scheme)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dual certificate: %d bits per participant (W = %d → ⌈log₂(W+1)⌉ = %d)\n",
		cert.Size(), W, cert.Size())
	fmt.Printf("all participants verified their own neighbourhood: %s\n\n", res)

	// A worker suspects underpayment and swaps to a "better" job by
	// force — the local checks catch the now-suboptimal assignment.
	fmt.Println("attack: delete one matched pair (making the assignment suboptimal)…")
	tampered := in.Clone()
	for e := range assignment {
		delete(tampered.EdgeLabel, e)
		fmt.Printf("  removed pair %d–%d (value %d)\n", e.U, e.V, values[e])
		break
	}
	if _, err := scheme.Prove(tampered); err != nil {
		fmt.Printf("  platform cannot certify it: %v\n", err)
	}
	res = lcp.Check(tampered, cert, scheme.Verifier())
	fmt.Printf("  old certificate on tampered assignment: %s (alarms: %v)\n\n",
		res, res.Rejectors())

	// The platform cannot cheat with inflated duals either: tampered
	// certificates break tightness somewhere.
	fmt.Println("attack: platform inflates a dual value to hide a bad assignment…")
	forged := core.FlipBit(cert, 5)
	res = lcp.Check(in, forged, scheme.Verifier())
	fmt.Printf("  forged certificate: %s (alarms: %v)\n", res, res.Rejectors())
}
