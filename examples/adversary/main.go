// Adversary: reproduce Figure 1 of the paper interactively.
//
// A constant-size proof cannot certify "this cycle has an odd number of
// nodes": the adversary builds all n² cycles C(a,b) of the paper, colours
// the complete bipartite graph K_{n,n} by the proofs visible near a and
// b, finds a monochromatic 4-cycle, and glues two odd cycles into one
// even cycle that inherits the proofs — every node's view is *literally
// identical* to a view of a valid odd cycle, so the verifier accepts a
// false statement. Running the same adversary against the real Θ(log n)
// counting scheme fails: the log-size proofs shatter the colour classes.
package main

import (
	"fmt"
	"log"

	"lcp/internal/lowerbound"
)

func main() {
	fmt.Println("=== Figure 1: the cycle-gluing adversary (Göös–Suomela §5.3) ===")
	fmt.Println()

	fmt.Println("Target 1: the strongest O(1)-bit scheme for \"n(G) is odd\"")
	fmt.Println("(a 2-colouring with one seam; 2 bits per node).")
	rep, err := lowerbound.RunGluing(lowerbound.OddNTarget(), 15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
	fmt.Println()
	if rep.Fooled {
		fmt.Println("The verifier accepted an even cycle as odd. The paper's point:")
		fmt.Println("no o(log n)-bit scheme can avoid this — the signature space is")
		fmt.Println("too small for n² cycle instances, so collisions are inevitable")
		fmt.Println("(Bondy–Simonovits guarantees the monochromatic C4).")
	}
	fmt.Println()

	fmt.Println("Target 2: the real Θ(log n) scheme (spanning tree + counters).")
	srep, err := lowerbound.RunGluing(lowerbound.StrongOddNTarget(), 15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(srep)
	fmt.Println()
	if !srep.FoundCycle {
		fmt.Printf("With %d-bit proofs the %d pairs produced %d distinct signatures —\n",
			srep.ProofBits, srep.Pairs, srep.Signatures)
		fmt.Println("far beyond the n^{1/3} colour budget the pigeonhole needs. The")
		fmt.Println("adversary cannot even begin to glue: Θ(log n) is exactly enough.")
	}

	fmt.Println()
	fmt.Println("=== §5.4: the same adversary against every weak scheme ===")
	for _, target := range lowerbound.WeakTargets() {
		r := target.Scheme.Verifier().Radius()
		n := 4*r + 10
		if target.OddLength {
			n++
		}
		rep, err := lowerbound.RunGluing(target, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rep)
	}
}
