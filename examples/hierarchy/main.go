// Hierarchy tour: walk the LCP complexity hierarchy of Göös & Suomela,
// measuring real proof sizes at each level on live instances:
//
//	LCP(0)       — Eulerian graphs: the empty proof
//	LCP(O(1))    — bipartiteness: 1 bit
//	LCP(O(log k))— χ ≤ k: ⌈log₂ k⌉ bits
//	LogLCP       — leader election: Θ(log n) bits
//	LCP(Θ(n))    — fixpoint-free tree symmetry: ≈2n bits
//	LCP(Θ(n²))   — symmetric graphs: ≈n²/2 bits
//
// The same constant-radius verification model spans fifteen orders of
// proof-size magnitude; only the certificates grow.
package main

import (
	"fmt"
	"log"

	"lcp"
)

type level struct {
	class string
	make  func(n int) (*lcp.Instance, lcp.Scheme)
}

func main() {
	levels := []level{
		{"LCP(0)", func(n int) (*lcp.Instance, lcp.Scheme) {
			return lcp.NewInstance(lcp.Cycle(n)), lcp.EulerianScheme()
		}},
		{"LCP(O(1))", func(n int) (*lcp.Instance, lcp.Scheme) {
			return lcp.NewInstance(lcp.Cycle(2 * (n / 2))), lcp.BipartiteScheme()
		}},
		{"LCP(O(log k)), k=8", func(n int) (*lcp.Instance, lcp.Scheme) {
			in := lcp.NewInstance(lcp.Cycle(n | 1))
			in.Global = lcp.Global{lcp.GlobalK: 8}
			return in, lcp.ColorableScheme()
		}},
		{"LogLCP", func(n int) (*lcp.Instance, lcp.Scheme) {
			g := lcp.RandomConnected(n, 0.1, int64(n))
			return lcp.NewInstance(g).SetNodeLabel(1, lcp.LabelLeader), lcp.LeaderElectionScheme()
		}},
		{"LCP(Θ(n))", func(n int) (*lcp.Instance, lcp.Scheme) {
			return lcp.NewInstance(lcp.Path(2 * (n / 2))), lcp.FixpointFreeScheme()
		}},
		{"LCP(Θ(n²))", func(n int) (*lcp.Instance, lcp.Scheme) {
			return lcp.NewInstance(lcp.Cycle(n)), lcp.SymmetricScheme()
		}},
	}

	sizes := []int{16, 32, 64}
	fmt.Printf("%-22s %-24s", "class", "scheme")
	for _, n := range sizes {
		fmt.Printf(" %10s", fmt.Sprintf("bits@n=%d", n))
	}
	fmt.Println()
	for _, lv := range levels {
		var schemeName string
		var row []int
		for _, n := range sizes {
			in, scheme := lv.make(n)
			schemeName = scheme.Name()
			proof, res, err := lcp.ProveAndCheck(in, scheme)
			if err != nil {
				log.Fatalf("%s: %v", lv.class, err)
			}
			if !res.Accepted() {
				log.Fatalf("%s: rejected", lv.class)
			}
			row = append(row, proof.Size())
		}
		fmt.Printf("%-22s %-24s", lv.class, schemeName)
		for _, bits := range row {
			fmt.Printf(" %10d", bits)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Every level uses the same model: a constant-radius distributed")
	fmt.Println("verifier that must accept everywhere on yes-instances and raise")
	fmt.Println("an alarm somewhere for every proof on no-instances.")
}
