// Network audit: a self-certifying network configuration.
//
// A management plane computes a spanning tree (the forwarding backbone)
// and elects a coordinator for a datacenter fabric. Rather than trusting
// the controller, every switch holds a locally checkable certificate —
// Θ(log n) bits — and the fabric continuously re-verifies itself with a
// constant-radius distributed check (Göös–Suomela §5.1). Any
// misconfiguration, fault or forgery triggers an alarm at some switch,
// no matter what the adversary writes into the certificates.
package main

import (
	"context"
	"fmt"
	"log"

	"lcp"
	"lcp/internal/core"
)

func main() {
	// The fabric: a 6×8 grid of switches with a few long-haul shortcuts.
	fabric := lcp.Grid(6, 8).WithEdges([]lcp.Edge{
		{U: 1, V: 48}, {U: 8, V: 41}, {U: 4, V: 44},
	}, nil)
	fmt.Printf("fabric: %v\n", fabric)

	// The controller picks a coordinator and a spanning tree (BFS from
	// the coordinator), then certifies both.
	const coordinator = 20
	cfg := lcp.NewInstance(fabric).SetNodeLabel(coordinator, lcp.LabelLeader)

	leaderScheme := lcp.LeaderElectionScheme()
	leaderProof, res, err := lcp.ProveAndCheck(cfg, leaderScheme)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coordinator certificate: %d bits/switch, %s\n", leaderProof.Size(), res)

	// The backbone: mark the certificate's spanning tree as the
	// forwarding configuration and verify it as a solution.
	tree := lcp.NewInstance(fabric)
	parentOf := bfsTree(fabric, coordinator)
	for v, p := range parentOf {
		if v != p {
			tree.MarkEdge(v, p)
		}
	}
	treeScheme := lcp.SpanningTreeScheme()
	treeProof, res, err := lcp.ProveAndCheck(tree, treeScheme)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backbone certificate:    %d bits/switch, %s\n", treeProof.Size(), res)

	// Continuous distributed audit: every switch re-checks its radius-1
	// view each round (here once, on the goroutine-per-node runtime,
	// through the unified façade).
	ctx := context.Background()
	audit, err := lcp.NewChecker(tree, lcp.WithScheme(treeScheme), lcp.WithBackend(lcp.BackendDist))
	if err != nil {
		log.Fatal(err)
	}
	dres, err := audit.Check(ctx, treeProof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed audit:       %s\n\n", dres.Result())

	// Fault injection 1: a link on the backbone is silently dropped from
	// the forwarding config (the tree becomes a forest).
	broken := tree.Clone()
	for e := range broken.EdgeLabel {
		delete(broken.EdgeLabel, e)
		fmt.Printf("fault: dropped backbone link %d–%d\n", e.U, e.V)
		break
	}
	brokenChk, err := lcp.NewChecker(broken, lcp.WithScheme(treeScheme), lcp.WithBackend(lcp.BackendCore))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := brokenChk.Check(ctx, treeProof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit after link drop:   %s (alarms: %v)\n", rep.Result(), rep.Rejectors())

	// Fault injection 2: a rogue controller certifies a second
	// coordinator. No certificate can make this pass. One engine-backed
	// checker verifies all three forgeries on the same cached views.
	rogue := cfg.Clone().SetNodeLabel(41, lcp.LabelLeader)
	if _, err := leaderScheme.Prove(rogue); err != nil {
		fmt.Printf("rogue coordinator:       prover refuses (%v)\n", err)
	}
	rogueChk, err := lcp.NewChecker(rogue, lcp.WithScheme(leaderScheme))
	if err != nil {
		log.Fatal(err)
	}
	for seed := int64(0); seed < 3; seed++ {
		forged := core.RandomProof(rogue, 32, seed)
		frep, err := rogueChk.Check(ctx, forged)
		if err != nil {
			log.Fatal(err)
		}
		if frep.Accepted() {
			log.Fatal("forged certificate accepted — soundness violated!")
		}
	}
	fmt.Println("rogue coordinator:       3 forged certificates, all rejected")

	// Fault injection 3: bit rot in a stored certificate, caught by the
	// same audit checker (its wiring is already warm).
	rotten := core.FlipBit(treeProof, 42)
	rep, err = audit.Check(ctx, rotten)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit after bit rot:     %s (alarms: %v)\n", rep.Result(), rep.Rejectors())
}

// bfsTree returns parent pointers of a BFS tree rooted at root.
func bfsTree(g *lcp.Graph, root int) map[int]int {
	parent := map[int]int{root: root}
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if _, ok := parent[v]; !ok {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return parent
}
