package schemes

import (
	"testing"

	"lcp/internal/core"
	"lcp/internal/graph"
)

// Tightness experiments: for tiny instances we can afford to quantify
// over ALL proofs up to a size bound, certifying condition (ii) of §2.2
// exactly and measuring the minimum proof size our verifiers require.
// These are per-verifier statements (the paper's lower bounds quantify
// over all verifiers — that side lives in internal/lowerbound), but they
// pin the implemented constants exactly.

func TestBipartiteTightness(t *testing.T) {
	v := Bipartite{}.Verifier()
	// C4: minimum proof size is exactly 1 bit.
	if got := core.MinProofSize(core.NewInstance(graph.Cycle(4)), v, 2); got != 1 {
		t.Errorf("C4 min proof size = %d, want 1", got)
	}
	// C3 and C5: no proof of ≤ 2 bits is accepted anywhere — exhaustive.
	for _, n := range []int{3, 5} {
		sound, fooling := core.CertifySoundness(core.NewInstance(graph.Cycle(n)), v, 2)
		if !sound {
			t.Errorf("C%d fooled the bipartite verifier with %v", n, fooling)
		}
	}
}

func TestReachabilityTightness(t *testing.T) {
	v := Reachability{}.Verifier()
	in := stInstance(graph.Path(3), 1, 3)
	if got := core.MinProofSize(in, v, 2); got != 1 {
		t.Errorf("P3 reachability min proof size = %d, want 1", got)
	}
	// Disconnected s–t: exhaustively unprovable at ≤ 2 bits.
	apart := stInstance(graph.DisjointUnion(graph.Path(2), graph.Path(2).ShiftIDs(10)), 1, 11)
	sound, fooling := core.CertifySoundness(apart, v, 2)
	if !sound {
		t.Errorf("disconnected s–t fooled reachability with %v", fooling)
	}
}

func TestUnreachabilityTightness(t *testing.T) {
	v := Unreachability{}.Verifier()
	apart := stInstance(graph.DisjointUnion(graph.Path(2), graph.Path(2).ShiftIDs(10)), 1, 11)
	if got := core.MinProofSize(apart, v, 2); got != 1 {
		t.Errorf("unreachability min proof size = %d, want 1", got)
	}
	connected := stInstance(graph.Path(4), 1, 4)
	sound, fooling := core.CertifySoundness(connected, v, 1)
	if !sound {
		t.Errorf("reachable pair fooled unreachability with %v", fooling)
	}
}

func TestEvenCycleTightness(t *testing.T) {
	v := EvenCycle{}.Verifier()
	if got := core.MinProofSize(core.NewInstance(graph.Cycle(4)), v, 2); got != 1 {
		t.Errorf("C4 even-cycle min proof size = %d, want 1", got)
	}
	sound, _ := core.CertifySoundness(core.NewInstance(graph.Cycle(5)), v, 2)
	if !sound {
		t.Error("odd cycle certified even (≤2-bit exhaustive)")
	}
}

func TestMaximalMatchingTightness(t *testing.T) {
	v := MaximalMatching{}.Verifier()
	in := markedInstance(graph.Path(4), graph.NormEdge(2, 3))
	if got := core.MinProofSize(in, v, 1); got != 0 {
		t.Errorf("maximal matching min proof size = %d, want 0 (LCP(0))", got)
	}
	// Non-maximal marked set: no ≤1-bit proof saves it.
	bad := markedInstance(graph.Path(5), graph.NormEdge(2, 3))
	sound, _ := core.CertifySoundness(bad, v, 1)
	if !sound {
		t.Error("non-maximal matching certified by some small proof")
	}
}

func TestLeaderElectionNeedsMoreThanConstantBitsOnTinyCycles(t *testing.T) {
	// Our leader-election verifier decodes a structured certificate; on a
	// no-leader C4 NO proof of ≤ 3 bits may pass (exhaustive: 15⁴
	// proofs). This is a per-verifier statement, but it matches the
	// Ω(log n) intuition: tiny certificates cannot even be well-formed.
	in := core.NewInstance(graph.Cycle(4)) // no leader labelled
	sound, fooling := core.CertifySoundness(in, LeaderElection{}.Verifier(), 3)
	if !sound {
		t.Errorf("no-leader C4 fooled leader election with %v", fooling)
	}
}
