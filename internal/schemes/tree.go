package schemes

import (
	"fmt"

	"lcp/internal/core"
	"lcp/internal/graphalg"
)

// Θ(log n) schemes built on the rooted-spanning-tree certificate (§5.1).
// Family: connected graphs.

// SpanningTree verifies that the marked edges form a spanning tree
// (Table 1b; Korman–Kutten–Peleg). The certificate is the §5.1 rooted
// tree over exactly the marked edges: every marked edge must be a parent
// edge, so marked edges = tree edges.
type SpanningTree struct{}

// Name implements core.Scheme.
func (SpanningTree) Name() string { return "spanning-tree" }

// Verifier implements core.Scheme.
func (SpanningTree) Verifier() core.Verifier {
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		me := w.Center
		l, ok := checkTreeLabel(w, treeOpts{})
		if !ok {
			return false
		}
		// The parent edge must be marked.
		if l.Dist > 0 && !w.EdgeMarked(me, l.Parent) {
			return false
		}
		// Every marked incident edge is a parent edge of one endpoint.
		for _, u := range w.Neighbors(me) {
			if !w.EdgeMarked(me, u) {
				continue
			}
			lu, _, okU := labelOf(w, u)
			if !okU {
				return false
			}
			if l.Parent != u && lu.Parent != me {
				return false
			}
		}
		return true
	}}
}

// Prove implements core.Scheme.
func (SpanningTree) Prove(in *core.Instance) (core.Proof, error) {
	if !graphalg.Connected(in.G) {
		return nil, fmt.Errorf("%w: spanning-tree requires a connected graph", core.ErrNotInProperty)
	}
	marked := in.MarkedEdges()
	if len(marked) != in.G.N()-1 {
		return nil, core.ErrNotInProperty
	}
	// The marked edges must themselves form a connected spanning tree.
	b := make(map[int][]int)
	for _, e := range marked {
		if !in.G.HasEdge(e.U, e.V) {
			return nil, core.ErrNotInProperty
		}
		b[e.U] = append(b[e.U], e.V)
		b[e.V] = append(b[e.V], e.U)
	}
	root := in.G.Nodes()[0]
	// BFS over marked edges only.
	parent := map[int]int{root: root}
	depth := map[int]int{root: 0}
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range b[u] {
			if _, ok := parent[v]; !ok {
				parent[v] = u
				depth[v] = depth[u] + 1
				queue = append(queue, v)
			}
		}
	}
	if len(parent) != in.G.N() {
		return nil, core.ErrNotInProperty
	}
	p := make(core.Proof, in.G.N())
	for v, par := range parent {
		p[v] = treeLabel{Root: root, Parent: par, Dist: uint64(depth[v])}.encode()
	}
	return p, nil
}

var _ core.Scheme = SpanningTree{}

// LeaderElection verifies that exactly one node carries the leader label
// (Table 1b, §5.1): the certificate is a spanning tree rooted at the
// leader, so "I am the leader iff I am the root".
type LeaderElection struct{}

// Name implements core.Scheme.
func (LeaderElection) Name() string { return "leader-election" }

// Verifier implements core.Scheme.
func (LeaderElection) Verifier() core.Verifier {
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		l, ok := checkTreeLabel(w, treeOpts{})
		if !ok {
			return false
		}
		isLeader := w.Label(w.Center) == core.LabelLeader
		return isLeader == (l.Dist == 0)
	}}
}

// Prove implements core.Scheme.
func (LeaderElection) Prove(in *core.Instance) (core.Proof, error) {
	if !graphalg.Connected(in.G) {
		return nil, fmt.Errorf("%w: leader-election requires a connected graph", core.ErrNotInProperty)
	}
	leaders := in.FindLabel(core.LabelLeader)
	if len(leaders) != 1 {
		return nil, core.ErrNotInProperty
	}
	return buildTreeProof(in, leaders[0], false, nil, false, nil, nil), nil
}

var _ core.Scheme = LeaderElection{}

// Forest is the LogLCP scheme for "G is acyclic" (§5.1: "Spanning trees
// can be used to prove that the graph is acyclic: we simply show that
// each component is a tree"). Certificate: per component, a rooted tree
// in which every incident edge must be a parent edge of one endpoint.
// Works on disconnected inputs because root agreement is only ever
// checked between neighbours.
type Forest struct{}

// Name implements core.Scheme.
func (Forest) Name() string { return "forest" }

// Verifier implements core.Scheme.
func (Forest) Verifier() core.Verifier {
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		me := w.Center
		l, ok := checkTreeLabel(w, treeOpts{})
		if !ok {
			return false
		}
		// Every incident edge is a tree edge: me's parent edge or the
		// parent edge of the other endpoint. An extra (cycle-closing)
		// edge fails at both endpoints.
		for _, u := range w.Neighbors(me) {
			lu, _, okU := labelOf(w, u)
			if !okU {
				return false
			}
			if l.Parent != u && lu.Parent != me {
				return false
			}
		}
		return true
	}}
}

// Prove implements core.Scheme.
func (Forest) Prove(in *core.Instance) (core.Proof, error) {
	if !graphalg.IsForest(in.G) {
		return nil, core.ErrNotInProperty
	}
	p := make(core.Proof, in.G.N())
	for _, comp := range graphalg.Components(in.G) {
		root := comp[0]
		parent, depth, _ := spanningTreeOf(in, root)
		for _, v := range comp {
			p[v] = treeLabel{Root: root, Parent: parent[v], Dist: uint64(depth[v])}.encode()
		}
	}
	return p, nil
}

var _ core.Scheme = Forest{}

// ParityCount is the LogLCP counting scheme of §5.1: a spanning tree with
// subtree counters convinces the root of n(G); the root then checks
// n mod 2. WantOdd selects the property ("odd n(G)" vs "even n(G)").
// Family: connected graphs (the paper's Table 1a row uses cycles, a
// subfamily).
type ParityCount struct {
	WantOdd bool
}

// Name implements core.Scheme.
func (s ParityCount) Name() string {
	if s.WantOdd {
		return "odd-n"
	}
	return "even-n"
}

// Verifier implements core.Scheme.
func (s ParityCount) Verifier() core.Verifier {
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		_, ok := checkTreeLabel(w, treeOpts{
			needC1: true,
			rootCheck: func(_ *core.View, l treeLabel) bool {
				return (l.Count1%2 == 1) == s.WantOdd
			},
		})
		return ok
	}}
}

// Prove implements core.Scheme.
func (s ParityCount) Prove(in *core.Instance) (core.Proof, error) {
	if !graphalg.Connected(in.G) {
		return nil, fmt.Errorf("%w: counting requires a connected graph", core.ErrNotInProperty)
	}
	if (in.G.N()%2 == 1) != s.WantOdd {
		return nil, core.ErrNotInProperty
	}
	root := in.G.Nodes()[0]
	return buildTreeProof(in, root, true, nil, false, nil, nil), nil
}

var _ core.Scheme = ParityCount{}
