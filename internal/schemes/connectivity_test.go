package schemes

import (
	"testing"

	"lcp/internal/bitstr"
	"lcp/internal/core"
	"lcp/internal/graph"
)

func connInstance(g *graph.Graph, s, t int, k int64) *core.Instance {
	return withK(stInstance(g, s, t), k)
}

func TestSTConnectivityScheme(t *testing.T) {
	grid := graph.Grid(4, 5)
	runSchemeCase(t, schemeCase{
		name:                  "st-connectivity",
		skipRelabelProofReuse: true,
		scheme:                STConnectivity{},
		yes: []*core.Instance{
			connInstance(grid, 1, 20, 2),                         // opposite grid corners: κ = 2
			connInstance(graph.CompleteBipartite(3, 3), 1, 2, 3), // same-side nodes: κ = 3
			connInstance(graph.Petersen(), 1, 3, 3),
			connInstance(graph.Hypercube(3), 1, 8, 3),
			connInstance(graph.Path(6), 1, 6, 1),
			connInstance(graph.DisjointUnion(graph.Cycle(4), graph.Cycle(4).ShiftIDs(10)), 1, 11, 0),
		},
		no: []*core.Instance{
			connInstance(grid, 1, 20, 3), // κ = 2, claimed 3
			connInstance(grid, 1, 20, 1), // κ = 2, claimed 1
			connInstance(graph.Petersen(), 1, 3, 2),
		},
	})
}

func TestSTConnectivityPlanarCompression(t *testing.T) {
	runSchemeCase(t, schemeCase{
		name:                  "st-connectivity-planar",
		skipRelabelProofReuse: true,
		scheme:                STConnectivity{CompressIndices: true},
		yes: []*core.Instance{
			connInstance(graph.Grid(4, 5), 1, 20, 2),
			connInstance(graph.Grid(5, 5), 3, 23, 3), // middle of top row to middle of bottom row
		},
		no: []*core.Instance{
			connInstance(graph.Grid(4, 5), 1, 20, 4),
		},
	})
}

// TestSTConnectivityPlanarLabelSizeConstant verifies the §4.2 planar
// claim empirically: with index compression the label size stays O(1) as
// the grid (and k) grow, while the uncompressed scheme's labels grow with
// log k.
func TestSTConnectivityPlanarLabelSizeConstant(t *testing.T) {
	sizes := []int{3, 5, 7, 9}
	var compressed []int
	for _, rows := range sizes {
		g := graph.Grid(rows, 6)
		// s = middle of left column, t = middle of right column; κ = rows
		// is too aggressive — corner-free mid nodes give κ = min(deg)…
		// use top-left to bottom-right: κ = 2 always. For growing k use
		// complete bipartite below instead; grids here pin the constant.
		in := connInstance(g, 1, g.N(), 2)
		p, _, err := core.ProveAndCheck(in, STConnectivity{CompressIndices: true})
		if err != nil {
			t.Fatalf("grid %d: %v", rows, err)
		}
		compressed = append(compressed, p.Size())
	}
	for i := 1; i < len(compressed); i++ {
		if compressed[i] != compressed[0] {
			t.Errorf("compressed label size varies: %v", compressed)
		}
	}
}

// TestSTConnectivityLabelGrowsWithK confirms the O(log k) scaling of the
// general scheme on K_{k,k} (connectivity between two same-side nodes is
// k... between opposite-corner nodes of K_{a,a} minus the direct edge).
func TestSTConnectivityLabelGrowsWithK(t *testing.T) {
	var sizes []int
	ks := []int{2, 4, 8, 16}
	for _, k := range ks {
		g := graph.CompleteBipartite(k, k)
		in := connInstance(g, 1, 2, int64(k)) // nodes 1,2 on the left side
		p, _, err := core.ProveAndCheck(in, STConnectivity{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		sizes = append(sizes, p.Size())
	}
	// Sizes must be monotone and grow ~log k: doubling k adds O(1) bits.
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < sizes[i-1] {
			t.Errorf("label sizes not monotone in k: %v", sizes)
		}
		if sizes[i] > sizes[i-1]+4 {
			t.Errorf("label sizes grow faster than log k: %v", sizes)
		}
	}
}

// TestSTConnectivityTamperedProofs flips bits of honest §4.2 proofs; no
// tampered variant may upgrade a no-instance, and verdict flips on
// yes-instances may only go accept→reject (another valid proof is
// acceptable, silent acceptance of garbage is not verified here — the
// runSchemeCase random-proof checks cover no-instances).
func TestSTConnectivityTamperedProofs(t *testing.T) {
	in := connInstance(graph.Grid(4, 5), 1, 20, 2)
	p, _, err := core.ProveAndCheck(in, STConnectivity{})
	if err != nil {
		t.Fatal(err)
	}
	v := STConnectivity{}.Verifier()
	rejected := 0
	for seed := int64(0); seed < 20; seed++ {
		q := core.FlipBit(p, seed)
		if !core.Check(in, q, v).Accepted() {
			rejected++
		}
	}
	if rejected == 0 {
		t.Error("no single-bit tamper was ever detected; verifier is too lax")
	}
}

// TestSTConnectivityProofRejectsWrongKEncoding: feeding the yes-proof of
// k=2 into an instance claiming k=3 must fail at s/t.
func TestSTConnectivityProofCrossK(t *testing.T) {
	in2 := connInstance(graph.Grid(4, 5), 1, 20, 2)
	p, _, err := core.ProveAndCheck(in2, STConnectivity{})
	if err != nil {
		t.Fatal(err)
	}
	in3 := connInstance(graph.Grid(4, 5), 1, 20, 3)
	if core.Check(in3, p, STConnectivity{}.Verifier()).Accepted() {
		t.Error("k=2 proof accepted on k=3 instance")
	}
}

func TestConnLabelRoundTrip(t *testing.T) {
	labels := []connLabel{
		{Region: regionS},
		{Region: regionT},
		{Region: regionC, OnPath: true, Index: 5, Mod3: 2},
		{Region: regionS, OnPath: true, Index: 1, Mod3: 0},
	}
	for _, l := range labels {
		got, ok := decodeConnLabel(l.encode())
		if !ok {
			t.Fatalf("decode failed for %+v", l)
		}
		if got != l {
			t.Errorf("round trip %+v -> %+v", l, got)
		}
	}
	if _, ok := decodeConnLabel(bitstr.Parse("1")); ok {
		t.Error("garbage decoded")
	}
}
