package schemes

import (
	"fmt"

	"lcp/internal/bitstr"
	"lcp/internal/core"
	"lcp/internal/graphalg"
)

// NonBipartite is the Θ(log n) scheme for "χ(G) > 2" on connected graphs
// (§5.1): the certificate is a spanning tree rooted at a node a of an odd
// cycle, plus a position counter propagated around the cycle, "starting
// and ending at a", which convinces the root it lies on an odd closed
// walk. An odd closed walk exists iff the graph is non-bipartite.
//
// Per-node label: tree certificate ++ onCycle flag ++ (cycle length L,
// position pos, successor id). The verifier checks at each cycle node
// that the successor is a neighbour at position pos+1 (or the root when
// pos = L−1), and at the root that L is odd. Fake cycle marks elsewhere
// cannot close: positions strictly increase and only the unique root
// (identifier = tree root) may carry position 0.
type NonBipartite struct{}

// Name implements core.Scheme.
func (NonBipartite) Name() string { return "non-bipartite" }

type cycleFields struct {
	OnCycle bool
	Len     uint64
	Pos     uint64
	Succ    int
}

func appendCycleFields(w *bitstr.Writer, c cycleFields) {
	w.WriteBit(c.OnCycle)
	if !c.OnCycle {
		return
	}
	lw := bitstr.WidthFor(c.Len)
	w.WriteUint(uint64(lw), widthField)
	w.WriteUint(c.Len, lw)
	w.WriteUint(c.Pos, lw)
	sw := bitstr.WidthFor(uint64(c.Succ))
	w.WriteUint(uint64(sw), widthField)
	w.WriteUint(uint64(c.Succ), sw)
}

func readCycleFields(r *bitstr.Reader) (cycleFields, bool) {
	var c cycleFields
	c.OnCycle = r.ReadBit()
	if c.OnCycle {
		lw := int(r.ReadUint(widthField))
		c.Len = r.ReadUint(lw)
		c.Pos = r.ReadUint(lw)
		sw := int(r.ReadUint(widthField))
		c.Succ = int(r.ReadUint(sw))
	}
	if r.Err() || !r.AtEnd() {
		return cycleFields{}, false
	}
	return c, true
}

// Verifier implements core.Scheme.
func (NonBipartite) Verifier() core.Verifier {
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		me := w.Center
		l, ok := checkTreeLabel(w, treeOpts{trailing: true})
		if !ok {
			return false
		}
		_, r, _ := labelOf(w, me)
		c, ok := readCycleFields(r)
		if !ok {
			return false
		}
		isRoot := l.Dist == 0
		if isRoot && !c.OnCycle {
			return false // the root must lie on the odd cycle
		}
		if !c.OnCycle {
			return true
		}
		if c.Pos >= c.Len || c.Len < 3 {
			return false
		}
		if (c.Pos == 0) != isRoot {
			return false // only the root is position 0
		}
		if isRoot && c.Len%2 == 0 {
			return false // the closed walk must be odd
		}
		// Successor checks.
		if !w.G.HasEdge(me, c.Succ) {
			return false
		}
		lu, ru, okU := labelOf(w, c.Succ)
		if !okU {
			return false
		}
		cu, okU := readCycleFields(ru)
		if !okU || !cu.OnCycle || cu.Len != c.Len {
			return false
		}
		if c.Pos == c.Len-1 {
			// Wrap-around: successor is the root.
			return lu.Dist == 0 && cu.Pos == 0
		}
		return cu.Pos == c.Pos+1
	}}
}

// Prove implements core.Scheme.
func (NonBipartite) Prove(in *core.Instance) (core.Proof, error) {
	if !graphalg.Connected(in.G) {
		return nil, fmt.Errorf("%w: non-bipartite scheme requires a connected graph", core.ErrNotInProperty)
	}
	walk := graphalg.OddCycle(in.G)
	if walk == nil {
		return nil, core.ErrNotInProperty
	}
	// walk = v0 v1 ... v_{L-1} v0 with L odd.
	L := len(walk) - 1
	root := walk[0]
	pos := make(map[int]uint64, L)
	succ := make(map[int]int, L)
	for i := 0; i < L; i++ {
		pos[walk[i]] = uint64(i)
		succ[walk[i]] = walk[i+1]
	}
	return buildTreeProof(in, root, false, nil, false, nil, func(v int, w *bitstr.Writer) {
		p, on := pos[v]
		appendCycleFields(w, cycleFields{OnCycle: on, Len: uint64(L), Pos: p, Succ: succ[v]})
	}), nil
}

var _ core.Scheme = NonBipartite{}
