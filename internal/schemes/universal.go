package schemes

import (
	"fmt"
	"sort"

	"lcp/internal/bitstr"
	"lcp/internal/core"
	"lcp/internal/graph"
	"lcp/internal/graphalg"
)

// §6: the universal O(n²)-bit scheme for any computable pure graph
// property of connected graphs, and its instantiations — symmetric
// graphs (Θ(n²)), non-3-colourability (Ω(n²/log n)), and the witnessed
// symmetric variant with a polynomial-time verifier.
//
// The certificate at every node is the same string: a canonical encoding
// of (V(G), E(G)) with the true identifiers. Each node checks that
//
//   - its own encoding decodes;
//   - all neighbours carry the identical string (agreement propagates
//     over the connected graph);
//   - the encoding lists exactly its own neighbourhood for its own
//     identifier (each node audits its own row);
//
// so the decoded graph must equal the real graph, and each node then
// decides the property on the decoded graph by local computation, which
// the LOCAL model does not charge for.

// Universal wraps any computable predicate into an O(n²) scheme.
type Universal struct {
	PropertyName string
	Holds        func(*graph.Graph) bool
}

// Name implements core.Scheme.
func (u Universal) Name() string { return "universal-" + u.PropertyName }

// Verifier implements core.Scheme.
func (u Universal) Verifier() core.Verifier {
	return universalVerifier(func(g *graph.Graph, _ *core.View) bool {
		return u.Holds(g)
	})
}

// universalVerifier builds the shared certificate checker with a custom
// decision on the decoded graph.
func universalVerifier(decide func(decoded *graph.Graph, w *core.View) bool) core.Verifier {
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		me := w.Center
		mine := w.ProofOf(me)
		decoded, err := decodeUniversalPayload(mine)
		if err != nil {
			return false
		}
		for _, u := range w.Neighbors(me) {
			if !w.ProofOf(u).Equal(mine) {
				return false
			}
		}
		// Audit my own row: the encoding's neighbourhood of me is
		// exactly my real neighbourhood.
		if !decoded.Has(me) {
			return false
		}
		enc := decoded.Neighbors(me)
		real := w.Neighbors(me)
		if len(enc) != len(real) {
			return false
		}
		for i := range enc {
			if enc[i] != real[i] {
				return false
			}
		}
		return decide(decoded, w)
	}}
}

// universalPayload wraps graph.Encode with an optional witness suffix;
// decodeUniversalPayload tolerates the suffix by re-encoding.
func decodeUniversalPayload(s bitstr.String) (*graph.Graph, error) {
	// graph.Decode demands exact length, so parse the header to find the
	// graph prefix... simpler: encode length-prefixed.
	r := bitstr.NewReader(s)
	glen := int(r.ReadUint(32))
	if r.Err() || glen < 0 || glen > s.Len()-32 {
		return nil, fmt.Errorf("lcp: malformed universal certificate")
	}
	var w bitstr.Writer
	for i := 0; i < glen; i++ {
		w.WriteBit(r.ReadBit())
	}
	if r.Err() {
		return nil, fmt.Errorf("lcp: truncated universal certificate")
	}
	return graph.Decode(w.String())
}

// encodeUniversalPayload length-prefixes the graph encoding and appends a
// witness (possibly empty).
func encodeUniversalPayload(g *graph.Graph, witness bitstr.String) bitstr.String {
	enc := graph.Encode(g)
	var w bitstr.Writer
	w.WriteUint(uint64(enc.Len()), 32)
	w.WriteBitString(enc)
	w.WriteBitString(witness)
	return w.String()
}

// witnessSuffix returns the bits after the encoded graph.
func witnessSuffix(s bitstr.String) (bitstr.String, error) {
	r := bitstr.NewReader(s)
	glen := int(r.ReadUint(32))
	if r.Err() || glen < 0 || glen > s.Len()-32 {
		return bitstr.Empty, fmt.Errorf("lcp: malformed universal certificate")
	}
	var skip bitstr.Writer
	for i := 0; i < glen; i++ {
		skip.WriteBit(r.ReadBit())
	}
	var out bitstr.Writer
	for r.Remaining() > 0 {
		out.WriteBit(r.ReadBit())
	}
	if r.Err() {
		return bitstr.Empty, fmt.Errorf("lcp: truncated universal certificate")
	}
	return out.String(), nil
}

// Prove implements core.Scheme.
func (u Universal) Prove(in *core.Instance) (core.Proof, error) {
	if !graphalg.Connected(in.G) {
		return nil, fmt.Errorf("%w: universal scheme requires a connected graph", core.ErrNotInProperty)
	}
	if !u.Holds(in.G) {
		return nil, core.ErrNotInProperty
	}
	cert := encodeUniversalPayload(in.G, bitstr.Empty)
	p := make(core.Proof, in.G.N())
	for _, v := range in.G.Nodes() {
		p[v] = cert
	}
	return p, nil
}

var _ core.Scheme = Universal{}

// Symmetric is the Θ(n²) scheme for "G has a non-trivial automorphism"
// (§6.1), with an explicit automorphism witness appended to the
// certificate so that verification is polynomial-time (the witness costs
// O(n log n) extra bits, within the O(n²) budget).
type Symmetric struct{}

// Name implements core.Scheme.
func (Symmetric) Name() string { return "symmetric" }

// Verifier implements core.Scheme.
func (Symmetric) Verifier() core.Verifier {
	return universalVerifier(func(decoded *graph.Graph, w *core.View) bool {
		suffix, err := witnessSuffix(w.ProofOf(w.Center))
		if err != nil {
			return false
		}
		perm, err := decodePermutation(decoded, suffix)
		if err != nil {
			return false
		}
		if !graphalg.IsAutomorphism(decoded, perm) {
			return false
		}
		for v, u := range perm {
			if v != u {
				return true // non-trivial
			}
		}
		return false
	})
}

// Prove implements core.Scheme.
func (Symmetric) Prove(in *core.Instance) (core.Proof, error) {
	if !graphalg.Connected(in.G) {
		return nil, fmt.Errorf("%w: symmetric scheme requires a connected graph", core.ErrNotInProperty)
	}
	aut := graphalg.NontrivialAutomorphism(in.G)
	if aut == nil {
		return nil, core.ErrNotInProperty
	}
	cert := encodeUniversalPayload(in.G, encodePermutation(in.G, aut))
	p := make(core.Proof, in.G.N())
	for _, v := range in.G.Nodes() {
		p[v] = cert
	}
	return p, nil
}

var _ core.Scheme = Symmetric{}

// encodePermutation writes a node permutation as images in node order.
func encodePermutation(g *graph.Graph, perm map[int]int) bitstr.String {
	idW := bitstr.WidthFor(uint64(g.MaxID()))
	var w bitstr.Writer
	w.WriteUint(uint64(idW), widthField)
	for _, v := range g.Nodes() {
		w.WriteUint(uint64(perm[v]), idW)
	}
	return w.String()
}

func decodePermutation(g *graph.Graph, s bitstr.String) (map[int]int, error) {
	r := bitstr.NewReader(s)
	idW := int(r.ReadUint(widthField))
	perm := make(map[int]int, g.N())
	for _, v := range g.Nodes() {
		perm[v] = int(r.ReadUint(idW))
	}
	if r.Err() || !r.AtEnd() {
		return nil, fmt.Errorf("lcp: malformed permutation witness")
	}
	return perm, nil
}

// NonThreeColorable is the O(n²) scheme for "χ(G) > 3" (§6.3). The
// verifier decides by exact 3-colouring search on the decoded graph;
// §6.3's lower bound shows no scheme can do better than Ω(n²/log n), so
// brute force is essentially optimal here.
func NonThreeColorable() Universal {
	return Universal{
		PropertyName: "non-3-colorable",
		Holds: func(g *graph.Graph) bool {
			return graphalg.KColor(g, 3) == nil
		},
	}
}

// SymmetricUnwitnessed is the plain universal scheme for symmetry; used
// by experiments to compare certificate sizes with the witnessed variant.
func SymmetricUnwitnessed() Universal {
	return Universal{
		PropertyName: "symmetric",
		Holds: func(g *graph.Graph) bool {
			return graphalg.NontrivialAutomorphism(g) != nil
		},
	}
}

// FixpointFree is the Θ(n) scheme for "the tree G has a fixpoint-free
// automorphism" (§6.2). On trees the structure certificate shrinks to
// Θ(n): a balanced-parentheses walk shared by all nodes plus each node's
// own preorder index (Θ(log n) bits). Each node checks that its
// neighbours' indices are exactly the decoded tree's neighbours of its
// own index; the index map is then a covering map of the decoded tree,
// and connected covers of trees are isomorphisms. The fixpoint-free
// decision runs on the decoded tree (unbounded local computation; no
// witness would fit in Θ(n) bits).
type FixpointFree struct{}

// Name implements core.Scheme.
func (FixpointFree) Name() string { return "fixpoint-free-tree" }

// Verifier implements core.Scheme.
func (FixpointFree) Verifier() core.Verifier {
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		me := w.Center
		shape, myIdx, err := decodeTreeCert(w.ProofOf(me))
		if err != nil {
			return false
		}
		children, err := graph.DecodeTreeShape(shape)
		if err != nil {
			return false
		}
		n := len(children)
		if myIdx >= n {
			return false
		}
		nbrs := graph.TreeShapeNeighbors(children)
		// My neighbours' indices must be exactly my decoded neighbours,
		// with no duplicates, and all must share the identical shape.
		var got []int
		seen := map[int]bool{}
		for _, u := range w.Neighbors(me) {
			shapeU, idxU, errU := decodeTreeCert(w.ProofOf(u))
			if errU != nil || !shapeU.Equal(shape) {
				return false
			}
			if seen[idxU] {
				return false
			}
			seen[idxU] = true
			got = append(got, idxU)
		}
		sort.Ints(got)
		want := nbrs[myIdx]
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		// Decide on the decoded tree.
		return treeShapeHasFixpointFreeAutomorphism(children)
	}}
}

// decodeTreeCert splits a §6.2 certificate into shape and index.
func decodeTreeCert(s bitstr.String) (bitstr.String, int, error) {
	r := bitstr.NewReader(s)
	shapeLen := int(r.ReadUint(32))
	if r.Err() || shapeLen < 0 || shapeLen > s.Len() {
		return bitstr.Empty, 0, fmt.Errorf("lcp: malformed tree certificate")
	}
	var shape bitstr.Writer
	for i := 0; i < shapeLen; i++ {
		shape.WriteBit(r.ReadBit())
	}
	idxW := int(r.ReadUint(widthField))
	idx := int(r.ReadUint(idxW))
	if r.Err() || !r.AtEnd() {
		return bitstr.Empty, 0, fmt.Errorf("lcp: malformed tree certificate")
	}
	return shape.String(), idx, nil
}

func encodeTreeCert(shape bitstr.String, idx, n int) bitstr.String {
	var w bitstr.Writer
	w.WriteUint(uint64(shape.Len()), 32)
	w.WriteBitString(shape)
	idxW := bitstr.WidthFor(uint64(n))
	w.WriteUint(uint64(idxW), widthField)
	w.WriteUint(uint64(idx), idxW)
	return w.String()
}

// treeShapeHasFixpointFreeAutomorphism rebuilds the abstract tree on
// indices 1..n and searches for a fixpoint-free automorphism.
func treeShapeHasFixpointFreeAutomorphism(children [][]int) bool {
	b := graph.NewBuilder(graph.Undirected)
	for i := range children {
		b.AddNode(i + 1)
		for _, c := range children[i] {
			b.AddEdge(i+1, c+1)
		}
	}
	return graphalg.FixpointFreeAutomorphism(b.Graph()) != nil
}

// Prove implements core.Scheme.
func (FixpointFree) Prove(in *core.Instance) (core.Proof, error) {
	if !graphalg.IsTree(in.G) {
		return nil, fmt.Errorf("%w: fixpoint-free scheme requires the tree family", core.ErrNotInProperty)
	}
	if graphalg.FixpointFreeAutomorphism(in.G) == nil {
		return nil, core.ErrNotInProperty
	}
	enc := graph.EncodeTree(in.G, in.G.Nodes()[0])
	p := make(core.Proof, in.G.N())
	for _, v := range in.G.Nodes() {
		p[v] = encodeTreeCert(enc.Shape, enc.Preorder[v], in.G.N())
	}
	return p, nil
}

var _ core.Scheme = FixpointFree{}
