package schemes

import (
	"fmt"

	"lcp/internal/core"
	"lcp/internal/graphalg"
)

// LCP(0) schemes — properties and problems verifiable with the empty
// proof (Table 1a rows "Eulerian", "line graph"; Table 1b rows "maximal
// matching", "LCL problems", "LD problems").

// emptyProver returns ε for yes-instances and ErrNotInProperty otherwise.
func emptyProver(in *core.Instance, holds bool) (core.Proof, error) {
	if !holds {
		return nil, core.ErrNotInProperty
	}
	return core.Proof{}, nil
}

// Eulerian is the LCP(0) scheme for "G is Eulerian" on connected graphs
// (§1.1): each node accepts iff its degree is even.
type Eulerian struct{}

// Name implements core.Scheme.
func (Eulerian) Name() string { return "eulerian" }

// Verifier implements core.Scheme; radius 1 (a node sees its incident
// edges).
func (Eulerian) Verifier() core.Verifier {
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		return w.Degree(w.Center)%2 == 0
	}}
}

// Prove implements core.Scheme.
func (Eulerian) Prove(in *core.Instance) (core.Proof, error) {
	return emptyProver(in, graphalg.IsEulerian(in.G))
}

var _ core.Scheme = Eulerian{}

// LineGraph is the LCP(0) scheme for "G is a line graph" (§1.1): by
// Beineke's characterisation, G is a line graph iff it has no forbidden
// induced subgraph on ≤ 6 vertices; every such subgraph containing v lies
// within distance 5 of v, so a radius-5 verifier checks all connected
// ≤6-vertex induced subgraphs through itself.
type LineGraph struct{}

// Name implements core.Scheme.
func (LineGraph) Name() string { return "line-graph" }

// Verifier implements core.Scheme; radius 5 = BeinekeBound − 1.
func (LineGraph) Verifier() core.Verifier {
	return core.VerifierFunc{R: graphalg.BeinekeBound - 1, F: func(w *core.View) bool {
		return graphalg.LineGraphLocalCheck(w.G, w.Center)
	}}
}

// Prove implements core.Scheme.
func (LineGraph) Prove(in *core.Instance) (core.Proof, error) {
	return emptyProver(in, graphalg.IsLineGraph(in.G))
}

var _ core.Scheme = LineGraph{}

// MaximalMatching is the LCP(0) scheme for verifying that the marked
// edges form a maximal matching (§2.3): a node checks that it has at most
// one marked incident edge, and that if it is unmatched, every neighbour
// is matched. The radius is 2: deciding whether a neighbour u is matched
// requires u's incident edges, whose far endpoints sit at distance 2.
type MaximalMatching struct{}

// Name implements core.Scheme.
func (MaximalMatching) Name() string { return "maximal-matching" }

// Verifier implements core.Scheme.
func (MaximalMatching) Verifier() core.Verifier {
	return core.VerifierFunc{R: 2, F: func(w *core.View) bool {
		me := w.Center
		if countMarked(w, me) > 1 {
			return false
		}
		if countMarked(w, me) == 1 {
			return true
		}
		// Unmatched: every neighbour must be matched (maximality), and
		// each neighbour's incident edges are fully visible at radius 2.
		for _, u := range w.Neighbors(me) {
			if countMarked(w, u) == 0 {
				return false
			}
			if countMarked(w, u) > 1 {
				return false
			}
		}
		return true
	}}
}

func countMarked(w *core.View, v int) int {
	c := 0
	for _, u := range w.Neighbors(v) {
		if w.EdgeMarked(v, u) {
			c++
		}
	}
	return c
}

// Prove implements core.Scheme.
func (MaximalMatching) Prove(in *core.Instance) (core.Proof, error) {
	m := markedMatching(in)
	return emptyProver(in, graphalg.IsMaximalMatching(in.G, m))
}

func markedMatching(in *core.Instance) graphalg.Matching {
	m := make(graphalg.Matching)
	for _, e := range in.MarkedEdges() {
		m[e] = true
	}
	return m
}

var _ core.Scheme = MaximalMatching{}

// LCL wraps an arbitrary locally checkable labelling problem (Naor &
// Stockmeyer; §3 of the paper: "if we generalise the class LCL ... we
// arrive at the class LCP(0)"). The labels live in the instance's input
// (NodeLabel / EdgeLabel); Check is the local constraint.
type LCL struct {
	ProblemName string
	R           int
	Check       func(*core.View) bool
}

// Name implements core.Scheme.
func (l LCL) Name() string { return "lcl-" + l.ProblemName }

// Verifier implements core.Scheme.
func (l LCL) Verifier() core.Verifier {
	return core.VerifierFunc{R: l.R, F: l.Check}
}

// Prove implements core.Scheme: the empty proof iff the labelling is
// locally valid everywhere.
func (l LCL) Prove(in *core.Instance) (core.Proof, error) {
	res := core.Check(in, core.Proof{}, l.Verifier())
	if !res.Accepted() {
		return nil, fmt.Errorf("%w: LCL %q violated at %v", core.ErrNotInProperty, l.ProblemName, res.Rejectors())
	}
	return core.Proof{}, nil
}

var _ core.Scheme = LCL{}

// NodeInSet reports whether v carries the set-membership label "1" used
// by the LCL examples below.
const setLabel = "1"

// MISLCL returns the LCL scheme verifying that the nodes labelled "1"
// form a maximal independent set: no two adjacent, every unlabelled node
// has a labelled neighbour.
func MISLCL() LCL {
	return LCL{
		ProblemName: "mis",
		R:           1,
		Check: func(w *core.View) bool {
			me := w.Center
			inSet := w.Label(me) == setLabel
			if inSet {
				for _, u := range w.Neighbors(me) {
					if w.Label(u) == setLabel {
						return false // not independent
					}
				}
				return true
			}
			for _, u := range w.Neighbors(me) {
				if w.Label(u) == setLabel {
					return true // dominated
				}
			}
			return false // not dominated (incl. isolated unlabelled nodes): not maximal
		},
	}
}

// ColoringLCL returns the LCL scheme verifying that node labels form a
// proper colouring (labels are arbitrary strings; adjacent nodes must
// differ and every node must be labelled).
func ColoringLCL() LCL {
	return LCL{
		ProblemName: "coloring",
		R:           1,
		Check: func(w *core.View) bool {
			me := w.Center
			if w.Label(me) == "" {
				return false
			}
			for _, u := range w.Neighbors(me) {
				if w.Label(u) == w.Label(me) {
					return false
				}
			}
			return true
		},
	}
}
