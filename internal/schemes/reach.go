package schemes

import (
	"fmt"

	"lcp/internal/bitstr"
	"lcp/internal/core"
	"lcp/internal/graphalg"
)

// Reachability schemes of §4.1. Instances carry exactly one node labelled
// core.LabelS and one labelled core.LabelT (the paper's promise).

// findST extracts the s and t nodes, enforcing the promise.
func findST(in *core.Instance) (s, t int, err error) {
	ss, ts := in.FindLabel(core.LabelS), in.FindLabel(core.LabelT)
	if len(ss) != 1 || len(ts) != 1 {
		return 0, 0, fmt.Errorf("lcp: instance must label exactly one s and one t (got %d, %d)", len(ss), len(ts))
	}
	return ss[0], ts[0], nil
}

// Reachability is the LCP(1) scheme for undirected s–t reachability
// (§4.1): the proof marks the nodes of one shortest s–t path with a
// single bit; the verifier checks that s and t are marked with exactly
// one marked neighbour each, and that every other marked node has exactly
// two marked neighbours. Marked components are then paths or cycles, and
// the component containing s must be a path ending at t.
type Reachability struct{}

// Name implements core.Scheme.
func (Reachability) Name() string { return "st-reachability" }

// Verifier implements core.Scheme.
func (Reachability) Verifier() core.Verifier {
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		me := w.Center
		marked := func(v int) bool {
			p := w.ProofOf(v)
			return p.Len() == 1 && p.Bit(0)
		}
		wellFormed := func(v int) bool { return w.ProofOf(v).Len() == 1 }
		if !wellFormed(me) {
			return false
		}
		markedNbrs := 0
		for _, u := range w.Neighbors(me) {
			if !wellFormed(u) {
				return false
			}
			if marked(u) {
				markedNbrs++
			}
		}
		switch w.Label(me) {
		case core.LabelS, core.LabelT:
			// (i) s, t ∈ U; (ii) unique marked neighbour.
			return marked(me) && markedNbrs == 1
		default:
			if !marked(me) {
				return true
			}
			// (iii) interior path nodes have exactly two marked
			// neighbours.
			return markedNbrs == 2
		}
	}}
}

// Prove implements core.Scheme.
func (Reachability) Prove(in *core.Instance) (core.Proof, error) {
	s, t, err := findST(in)
	if err != nil {
		return nil, err
	}
	// Shortest path via BFS parents.
	parent, _, _ := spanningTreeOf(in, s)
	if _, ok := parent[t]; !ok {
		return nil, core.ErrNotInProperty
	}
	onPath := map[int]bool{}
	for v := t; ; v = parent[v] {
		onPath[v] = true
		if v == s {
			break
		}
	}
	p := make(core.Proof, in.G.N())
	for _, v := range in.G.Nodes() {
		p[v] = bitstr.FromBools(onPath[v])
	}
	return p, nil
}

var _ core.Scheme = Reachability{}

// Unreachability is the LCP(1) scheme for s–t unreachability (§4.1),
// valid on both undirected and directed graphs: the proof marks the set S
// of nodes reachable from s; the verifier checks s ∈ S, t ∉ S, and that
// no (directed) edge leaves S.
type Unreachability struct{}

// Name implements core.Scheme.
func (Unreachability) Name() string { return "st-unreachability" }

// Verifier implements core.Scheme.
func (Unreachability) Verifier() core.Verifier {
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		me := w.Center
		inS := func(v int) bool {
			p := w.ProofOf(v)
			return p.Len() == 1 && p.Bit(0)
		}
		if w.ProofOf(me).Len() != 1 {
			return false
		}
		if w.Label(me) == core.LabelS && !inS(me) {
			return false
		}
		if w.Label(me) == core.LabelT && inS(me) {
			return false
		}
		if inS(me) {
			// No edge from S may leave S. For undirected graphs all
			// incident edges count; for directed graphs only out-edges.
			for _, u := range w.G.Neighbors(me) {
				if w.ProofOf(u).Len() != 1 {
					return false
				}
				if !inS(u) {
					return false
				}
			}
		}
		return true
	}}
}

// Prove implements core.Scheme.
func (Unreachability) Prove(in *core.Instance) (core.Proof, error) {
	s, t, err := findST(in)
	if err != nil {
		return nil, err
	}
	reach := graphalg.BFS(in.G, s) // follows out-edges in directed graphs
	if _, reached := reach[t]; reached {
		return nil, core.ErrNotInProperty
	}
	p := make(core.Proof, in.G.N())
	for _, v := range in.G.Nodes() {
		_, inS := reach[v]
		p[v] = bitstr.FromBools(inS)
	}
	return p, nil
}

var _ core.Scheme = Unreachability{}
