package schemes

import (
	"fmt"

	"lcp/internal/bitstr"
	"lcp/internal/core"
	"lcp/internal/graph"
	"lcp/internal/graphalg"
)

// Matching certificates of §2.3 and §5: maximum matching in bipartite
// graphs (Θ(1), König), maximum-weight matching in bipartite graphs
// (O(log W), LP duality), and maximum matching on cycles (Θ(log n),
// counting).

// matchingLocallyValid checks at the view's center that marked edges form
// a matching around it.
func matchingLocallyValid(w *core.View) bool {
	return countMarked(w, w.Center) <= 1
}

// MaximumMatchingBipartite is the LCP(1) scheme verifying that the marked
// edges form a maximum matching of a bipartite graph. The certificate is
// a minimum vertex cover C (1 bit: v ∈ C), and the verifier checks König
// complementary slackness:
//
//   - marked edges form a matching;
//   - every edge has an endpoint in C (cover);
//   - every marked edge has exactly one endpoint in C;
//   - every node of C is matched.
//
// Together: |C| = |M| with C a cover, so M is maximum (weak duality).
type MaximumMatchingBipartite struct{}

// Name implements core.Scheme.
func (MaximumMatchingBipartite) Name() string { return "max-matching-bipartite" }

// Verifier implements core.Scheme.
func (MaximumMatchingBipartite) Verifier() core.Verifier {
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		me := w.Center
		inCover := func(v int) bool {
			p := w.ProofOf(v)
			return p.Len() == 1 && p.Bit(0)
		}
		if w.ProofOf(me).Len() != 1 {
			return false
		}
		if !matchingLocallyValid(w) {
			return false
		}
		matched := 0
		for _, u := range w.Neighbors(me) {
			if w.ProofOf(u).Len() != 1 {
				return false
			}
			isMarked := w.EdgeMarked(me, u)
			if isMarked {
				matched++
				// Exactly one endpoint of a matched edge is in C.
				if inCover(me) == inCover(u) {
					return false
				}
			}
			// Cover condition on every edge.
			if !inCover(me) && !inCover(u) {
				return false
			}
		}
		// Every cover node is matched.
		if inCover(me) && matched == 0 {
			return false
		}
		return true
	}}
}

// Prove implements core.Scheme.
func (MaximumMatchingBipartite) Prove(in *core.Instance) (core.Proof, error) {
	side, _, ok := graphalg.Bipartition(in.G)
	if !ok {
		return nil, fmt.Errorf("%w: graph is not bipartite", core.ErrNotInProperty)
	}
	var left []int
	for _, v := range in.G.Nodes() {
		if !side[v] {
			left = append(left, v)
		}
	}
	marked := markedMatching(in)
	if !graphalg.IsMatching(in.G, marked) {
		return nil, core.ErrNotInProperty
	}
	best, _ := graphalg.HopcroftKarp(in.G, left)
	if len(marked) != len(best) {
		return nil, fmt.Errorf("%w: matching has %d edges, maximum is %d", core.ErrNotInProperty, len(marked), len(best))
	}
	// König's construction must run relative to the GIVEN maximum
	// matching (the cover's per-edge slackness conditions reference it),
	// not the one Hopcroft–Karp happened to find.
	cover := coverForMatching(in.G, left, marked)
	p := make(core.Proof, in.G.N())
	for _, v := range in.G.Nodes() {
		p[v] = bitstr.FromBools(cover[v])
	}
	return p, nil
}

// coverForMatching runs the König construction using the provided maximum
// matching: Z = nodes reachable from free left nodes by alternating
// paths; C = (L \ Z) ∪ (R ∩ Z).
func coverForMatching(g *graph.Graph, left []int, m graphalg.Matching) map[int]bool {
	matchL := map[int]int{}
	for _, v := range left {
		matchL[v] = m.MatchedWith(v)
	}
	return graphalg.KonigCover(g, left, matchL)
}

var _ core.Scheme = MaximumMatchingBipartite{}

// MaxWeightMatching is the O(log W) scheme verifying that marked edges
// form a maximum-weight matching of an edge-weighted bipartite graph
// (§2.3). The certificate is an integral optimal dual y_v ∈ {0..W}; the
// verifier checks complementary slackness locally:
//
//   - marked edges form a matching;
//   - y_u + y_v ≥ w_e for every incident edge;
//   - y_u + y_v = w_e for the marked incident edge;
//   - y_me > 0 requires me to be matched.
type MaxWeightMatching struct{}

// GlobalW is the Global key holding the weight bound W.
const GlobalW = "W"

// Name implements core.Scheme.
func (MaxWeightMatching) Name() string { return "max-weight-matching" }

// dualWidth is the label width for weight bound W.
func dualWidth(W int64) int {
	if W < 1 {
		return 1
	}
	return bitstr.UintWidth(uint64(W))
}

// Verifier implements core.Scheme.
func (MaxWeightMatching) Verifier() core.Verifier {
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		W := w.Global[GlobalW]
		if W < 0 {
			return false
		}
		width := dualWidth(W)
		me := w.Center
		dual := func(v int) (int64, bool) {
			p := w.ProofOf(v)
			if p.Len() != width {
				return 0, false
			}
			y := int64(bitstr.NewReader(p).ReadUint(width))
			if y > W {
				return 0, false
			}
			return y, true
		}
		yMe, ok := dual(me)
		if !ok {
			return false
		}
		if !matchingLocallyValid(w) {
			return false
		}
		matched := false
		for _, u := range w.Neighbors(me) {
			yU, okU := dual(u)
			if !okU {
				return false
			}
			we := w.Weight(me, u)
			if yMe+yU < we {
				return false // dual infeasible
			}
			if w.EdgeMarked(me, u) {
				matched = true
				if yMe+yU != we {
					return false // slackness violated on matched edge
				}
			}
		}
		if yMe > 0 && !matched {
			return false
		}
		return true
	}}
}

// Prove implements core.Scheme.
func (MaxWeightMatching) Prove(in *core.Instance) (core.Proof, error) {
	side, _, ok := graphalg.Bipartition(in.G)
	if !ok {
		return nil, fmt.Errorf("%w: graph is not bipartite", core.ErrNotInProperty)
	}
	var left []int
	for _, v := range in.G.Nodes() {
		if !side[v] {
			left = append(left, v)
		}
	}
	weights := graphalg.Weights{}
	for e, wt := range in.Weights {
		weights[e] = wt
	}
	marked := markedMatching(in)
	if !graphalg.IsMatching(in.G, marked) {
		return nil, core.ErrNotInProperty
	}
	y, err := graphalg.OptimalDuals(in.G, left, marked, weights)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrNotInProperty, err)
	}
	W := in.Global[GlobalW]
	if mx := weights.MaxWeight(); mx > W {
		return nil, fmt.Errorf("lcp: weights exceed declared bound W=%d", W)
	}
	width := dualWidth(W)
	p := make(core.Proof, in.G.N())
	for _, v := range in.G.Nodes() {
		p[v] = bitstr.FromUint(uint64(y[v]), width)
	}
	return p, nil
}

var _ core.Scheme = MaxWeightMatching{}

// MaxMatchingCycle is the Θ(log n) scheme verifying that marked edges
// form a maximum matching of a cycle (§5, Table 1b): a spanning tree with
// two counters totals n and |M| at the root, which checks |M| = ⌊n/2⌋.
// Each marked edge is counted at its higher-identifier endpoint.
type MaxMatchingCycle struct{}

// Name implements core.Scheme.
func (MaxMatchingCycle) Name() string { return "max-matching-cycle" }

// matchedEdgeContribution counts marked incident edges owned by v (v is
// the larger endpoint).
func matchedEdgeContribution(w *core.View, v int) uint64 {
	var c uint64
	for _, u := range w.Neighbors(v) {
		if w.EdgeMarked(v, u) && v > u {
			c++
		}
	}
	return c
}

// Verifier implements core.Scheme.
func (MaxMatchingCycle) Verifier() core.Verifier {
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		if w.Degree(w.Center) != 2 {
			return false // family promise: cycles
		}
		if !matchingLocallyValid(w) {
			return false
		}
		_, ok := checkTreeLabel(w, treeOpts{
			needC1:   true,
			needC2:   true,
			contrib2: matchedEdgeContribution,
			rootCheck: func(_ *core.View, l treeLabel) bool {
				return l.Count2 == l.Count1/2
			},
		})
		return ok
	}}
}

// Prove implements core.Scheme.
func (MaxMatchingCycle) Prove(in *core.Instance) (core.Proof, error) {
	if !graphalg.IsCycleGraph(in.G) {
		return nil, fmt.Errorf("%w: max-matching-cycle requires the cycle family", core.ErrNotInProperty)
	}
	marked := markedMatching(in)
	if !graphalg.IsMatching(in.G, marked) {
		return nil, core.ErrNotInProperty
	}
	if len(marked) != in.G.N()/2 {
		return nil, fmt.Errorf("%w: matching has %d edges, maximum is %d", core.ErrNotInProperty, len(marked), in.G.N()/2)
	}
	root := in.G.Nodes()[0]
	ownedBy := func(v int) uint64 {
		var c uint64
		for _, u := range in.G.Neighbors(v) {
			if marked[graph.NormEdge(v, u)] && v > u {
				c++
			}
		}
		return c
	}
	return buildTreeProof(in, root, true, nil, true, ownedBy, nil), nil
}

var _ core.Scheme = MaxMatchingCycle{}
