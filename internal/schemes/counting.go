package schemes

import (
	"fmt"

	"lcp/internal/core"
	"lcp/internal/graphalg"
)

// CountPredicate generalizes the §5.1 counting certificate to ANY
// computable predicate of n(G): the spanning-tree counters convince the
// root of the exact node count, and the root evaluates the predicate by
// unbounded local computation. This is the §7.4 observation that LogLCP
// escapes NP: "the verifier can solve arbitrarily hard computable
// problems concerning the integer n(G)". Proof size stays Θ(log n)
// regardless of the predicate's time complexity.
type CountPredicate struct {
	PropertyName string
	Pred         func(n uint64) bool
}

// Name implements core.Scheme.
func (s CountPredicate) Name() string { return "n-" + s.PropertyName }

// Verifier implements core.Scheme.
func (s CountPredicate) Verifier() core.Verifier {
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		_, ok := checkTreeLabel(w, treeOpts{
			needC1: true,
			rootCheck: func(_ *core.View, l treeLabel) bool {
				return s.Pred(l.Count1)
			},
		})
		return ok
	}}
}

// Prove implements core.Scheme.
func (s CountPredicate) Prove(in *core.Instance) (core.Proof, error) {
	if !graphalg.Connected(in.G) {
		return nil, fmt.Errorf("%w: counting requires a connected graph", core.ErrNotInProperty)
	}
	if !s.Pred(uint64(in.G.N())) {
		return nil, core.ErrNotInProperty
	}
	return buildTreeProof(in, in.G.Nodes()[0], true, nil, false, nil, nil), nil
}

var _ core.Scheme = CountPredicate{}

// PrimeN is the flagship §7.4 instance: "n(G) is prime" in LogLCP with a
// trial-division root check — a property with no obvious NP certificate
// structure on the graph itself, decided by counting.
func PrimeN() CountPredicate {
	return CountPredicate{
		PropertyName: "prime",
		Pred: func(n uint64) bool {
			if n < 2 {
				return false
			}
			for d := uint64(2); d*d <= n; d++ {
				if n%d == 0 {
					return false
				}
			}
			return true
		},
	}
}

// PerfectSquareN: "n(G) is a perfect square" — another §7.4 example.
func PerfectSquareN() CountPredicate {
	return CountPredicate{
		PropertyName: "perfect-square",
		Pred: func(n uint64) bool {
			for r := uint64(0); r*r <= n; r++ {
				if r*r == n {
					return true
				}
			}
			return false
		},
	}
}
