package schemes

import (
	"testing"

	"lcp/internal/core"
	"lcp/internal/graph"
	"lcp/internal/graphalg"
)

// §7.2: weak vs strong proof labelling schemes. In a STRONG scheme the
// adversary picks both the instance and the solution, and a certificate
// must still exist. The tests below enumerate EVERY feasible solution of
// small instances and certify each one — establishing empirically that
// our problem schemes are strong, exactly as the paper claims for its
// constructions ("we can take any spanning tree and augment it with a
// proof of size O(log n)").

// spanningTreesOf enumerates all spanning trees of g (by brute force over
// edge subsets of size n−1).
func spanningTreesOf(g *graph.Graph) [][]graph.Edge {
	edges := g.Edges()
	n := g.N()
	var out [][]graph.Edge
	var pick func(start int, cur []graph.Edge)
	pick = func(start int, cur []graph.Edge) {
		if len(cur) == n-1 {
			b := graph.NewBuilder(graph.Undirected)
			for _, v := range g.Nodes() {
				b.AddNode(v)
			}
			for _, e := range cur {
				b.AddEdge(e.U, e.V)
			}
			if graphalg.IsTree(b.Graph()) {
				out = append(out, append([]graph.Edge{}, cur...))
			}
			return
		}
		if start >= len(edges) || len(edges)-start < n-1-len(cur) {
			return
		}
		pick(start+1, append(cur, edges[start]))
		pick(start+1, cur)
	}
	pick(0, nil)
	return out
}

func TestSpanningTreeSchemeIsStrong(t *testing.T) {
	// K4 has 16 spanning trees; every single one must be certifiable.
	g := graph.Complete(4)
	trees := spanningTreesOf(g)
	if len(trees) != 16 {
		t.Fatalf("K4 has %d spanning trees, want 16 (Cayley)", len(trees))
	}
	for i, tree := range trees {
		in := core.NewInstance(g)
		for _, e := range tree {
			in.MarkEdge(e.U, e.V)
		}
		if _, _, err := core.ProveAndCheck(in, SpanningTree{}); err != nil {
			t.Errorf("spanning tree %d (%v) not certifiable: %v", i, tree, err)
		}
	}
}

func TestLeaderElectionSchemeIsStrong(t *testing.T) {
	// Every node of a graph can be the adversary's chosen leader.
	g := graph.Petersen()
	for _, leader := range g.Nodes() {
		in := core.NewInstance(g).SetNodeLabel(leader, core.LabelLeader)
		if _, _, err := core.ProveAndCheck(in, LeaderElection{}); err != nil {
			t.Errorf("leader %d not certifiable: %v", leader, err)
		}
	}
}

func TestMaximumMatchingBipartiteSchemeIsStrong(t *testing.T) {
	// Enumerate ALL maximum matchings of a small bipartite graph; each
	// must get a König certificate relative to itself.
	g := graph.CompleteBipartite(3, 3)
	maxSize := graphalg.MaximumMatchingSize(g) // 3
	var all []graphalg.Matching
	edges := g.Edges()
	var rec func(start int, cur graphalg.Matching, used map[int]bool)
	rec = func(start int, cur graphalg.Matching, used map[int]bool) {
		if len(cur) == maxSize {
			cp := graphalg.Matching{}
			for e := range cur {
				cp[e] = true
			}
			all = append(all, cp)
			return
		}
		for i := start; i < len(edges); i++ {
			e := edges[i]
			if used[e.U] || used[e.V] {
				continue
			}
			cur[e] = true
			used[e.U], used[e.V] = true, true
			rec(i+1, cur, used)
			delete(cur, e)
			delete(used, e.U)
			delete(used, e.V)
		}
	}
	rec(0, graphalg.Matching{}, map[int]bool{})
	if len(all) != 6 {
		t.Fatalf("K33 has %d perfect matchings, want 6 (3!)", len(all))
	}
	for i, m := range all {
		in := core.NewInstance(g)
		for e := range m {
			in.MarkEdge(e.U, e.V)
		}
		if _, _, err := core.ProveAndCheck(in, MaximumMatchingBipartite{}); err != nil {
			t.Errorf("maximum matching %d not certifiable: %v", i, err)
		}
	}
}

func TestHamiltonianCycleSchemeIsStrong(t *testing.T) {
	// All Hamiltonian cycles of K5 ((5−1)!/2 = 12 of them) certify.
	g := graph.Complete(5)
	count := 0
	perm := []int{2, 3, 4, 5}
	var rec func(i int)
	rec = func(i int) {
		if i == len(perm) {
			cycle := append([]int{1}, perm...)
			// Dedup reversals: require perm[0] < perm[last].
			if perm[0] > perm[len(perm)-1] {
				return
			}
			in := core.NewInstance(g)
			for j := range cycle {
				in.MarkEdge(cycle[j], cycle[(j+1)%len(cycle)])
			}
			if _, _, err := core.ProveAndCheck(in, HamiltonianCycleCheck{}); err != nil {
				t.Errorf("cycle %v not certifiable: %v", cycle, err)
			}
			count++
			return
		}
		for j := i; j < len(perm); j++ {
			perm[i], perm[j] = perm[j], perm[i]
			rec(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	rec(0)
	if count != 12 {
		t.Fatalf("certified %d Hamiltonian cycles of K5, want 12", count)
	}
}

// TestWeakSchemeExists demonstrates the weak side of §7.2: the
// Hamiltonian PROPERTY scheme is inherently weak — the prover chooses
// which cycle to embed in the proof — yet that freedom does not reduce
// the proof size class (it is still Θ(log n), as the lower bound binds
// weak schemes too; see internal/lowerbound).
func TestWeakSchemeExists(t *testing.T) {
	in := core.NewInstance(graph.Complete(6))
	p, _, err := core.ProveAndCheck(in, HamiltonianProperty{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() == 0 {
		t.Fatal("property certificate unexpectedly empty")
	}
}
