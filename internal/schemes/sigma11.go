package schemes

import (
	"lcp/internal/bitstr"
	"lcp/internal/core"
	"lcp/internal/graph"
	"lcp/internal/logic"
)

// Sigma11 is the §7.5 scheme: every monadic Σ¹₁ property (in
// Schwentick–Barthelmann local normal form ∃X₁…∃X_k ∃x ∀y φ) of
// connected graphs admits O(log n) locally checkable proofs. The
// certificate is a spanning tree rooted at the witness x (O(log n) bits)
// plus each node's k relation-membership bits; every node evaluates φ on
// its radius-r view.
type Sigma11 struct {
	PropertyName string
	S            logic.Sentence
	// FindWitness supplies (witness, relations) for yes-instances. If
	// nil, Prove falls back to exhaustive search, feasible only for tiny
	// k·n.
	FindWitness func(in *core.Instance) (witness int, rel []map[int]bool, ok bool)
	// BruteForceLimit caps k·n for the exhaustive fallback (default 24).
	BruteForceLimit int
}

// Name implements core.Scheme.
func (s Sigma11) Name() string { return "sigma11-" + s.PropertyName }

// Verifier implements core.Scheme.
func (s Sigma11) Verifier() core.Verifier {
	r := s.S.Radius()
	if r < 1 {
		r = 1 // the tree certificate needs radius 1
	}
	k := s.S.K
	return core.VerifierFunc{R: r, F: func(w *core.View) bool {
		l, ok := checkTreeLabel(w, treeOpts{trailing: true})
		if !ok {
			return false
		}
		// Decode relation bits of every node in the view.
		rel := make([]map[int]bool, k)
		for i := range rel {
			rel[i] = map[int]bool{}
		}
		for _, v := range w.G.Nodes() {
			lv, rv, okV := labelOf(w, v)
			if !okV || lv.Root != l.Root {
				return false
			}
			for i := 0; i < k; i++ {
				if rv.ReadBit() {
					rel[i][v] = true
				}
			}
			if rv.Err() || !rv.AtEnd() {
				return false
			}
		}
		m := &logic.Model{View: w, Rel: rel, Witness: l.Root}
		return s.S.EvalAt(m)
	}}
}

// Prove implements core.Scheme.
func (s Sigma11) Prove(in *core.Instance) (core.Proof, error) {
	witness, rel, ok := s.witnessFor(in)
	if !ok {
		return nil, core.ErrNotInProperty
	}
	return buildTreeProof(in, witness, false, nil, false, nil, func(v int, w *bitstr.Writer) {
		for i := 0; i < s.S.K; i++ {
			w.WriteBit(rel[i][v])
		}
	}), nil
}

func (s Sigma11) witnessFor(in *core.Instance) (int, []map[int]bool, bool) {
	if s.FindWitness != nil {
		return s.FindWitness(in)
	}
	limit := s.BruteForceLimit
	if limit == 0 {
		limit = 24
	}
	n := in.G.N()
	if s.S.K*n > limit {
		return 0, nil, false
	}
	nodes := in.G.Nodes()
	total := uint64(1) << uint(s.S.K*n)
	for mask := uint64(0); mask < total; mask++ {
		rel := make([]map[int]bool, s.S.K)
		bit := 0
		for i := range rel {
			rel[i] = map[int]bool{}
			for _, v := range nodes {
				if mask>>uint(bit)&1 == 1 {
					rel[i][v] = true
				}
				bit++
			}
		}
		for _, witness := range nodes {
			if s.holdsEverywhere(in, witness, rel) {
				return witness, rel, true
			}
		}
	}
	return 0, nil, false
}

// holdsEverywhere checks ∀y φ with the given witness and relations, using
// full radius-r views (the prover is centralized, so it can afford this).
func (s Sigma11) holdsEverywhere(in *core.Instance, witness int, rel []map[int]bool) bool {
	r := s.S.Radius()
	for _, y := range in.G.Nodes() {
		w := core.BuildView(in, core.Proof{}, y, r)
		m := &logic.Model{View: w, Rel: rel, Witness: witness}
		if !s.S.EvalAt(m) {
			return false
		}
	}
	return true
}

var _ core.Scheme = Sigma11{}

// ThreeColorableSigma11 expresses 3-colourability as a monadic Σ¹₁
// sentence: ∃X₀∃X₁∃X₂ ∀y (y in exactly one class ∧ no neighbour shares
// y's class). The FindWitness prover reuses the exact colouring solver.
func ThreeColorableSigma11(solve func(g *graph.Graph) map[int]int) Sigma11 {
	exactlyOne := logic.Or(
		logic.And(logic.X(0, logic.Y), logic.Not(logic.X(1, logic.Y)), logic.Not(logic.X(2, logic.Y))),
		logic.And(logic.Not(logic.X(0, logic.Y)), logic.X(1, logic.Y), logic.Not(logic.X(2, logic.Y))),
		logic.And(logic.Not(logic.X(0, logic.Y)), logic.Not(logic.X(1, logic.Y)), logic.X(2, logic.Y)),
	)
	properEdge := logic.ForallNear("z", 1, logic.Implies(
		logic.Adj(logic.Y, "z"),
		logic.And(
			logic.Not(logic.And(logic.X(0, logic.Y), logic.X(0, "z"))),
			logic.Not(logic.And(logic.X(1, logic.Y), logic.X(1, "z"))),
			logic.Not(logic.And(logic.X(2, logic.Y), logic.X(2, "z"))),
		),
	))
	return Sigma11{
		PropertyName: "3-colorable",
		S:            logic.Sentence{K: 3, Phi: logic.And(exactlyOne, properEdge)},
		FindWitness: func(in *core.Instance) (int, []map[int]bool, bool) {
			col := solve(in.G)
			if col == nil {
				return 0, nil, false
			}
			rel := []map[int]bool{{}, {}, {}}
			for v, c := range col {
				rel[c][v] = true
			}
			return in.G.Nodes()[0], rel, true
		},
	}
}

// DominatingWitnessSigma11 expresses "G has a node adjacent to every
// other node within distance 1" (radius ≤ 1): ∃x ∀y dist(y, x) ≤ 1.
func DominatingWitnessSigma11() Sigma11 {
	return Sigma11{
		PropertyName: "radius-1-witness",
		S:            logic.Sentence{K: 0, Phi: logic.WitnessWithin(1)},
		FindWitness: func(in *core.Instance) (int, []map[int]bool, bool) {
			for _, v := range in.G.Nodes() {
				if in.G.Degree(v) == in.G.N()-1 {
					return v, nil, true
				}
			}
			return 0, nil, false
		},
	}
}

// IndependentSetOfTrianglesSigma11 expresses "the nodes marked X₀ form a
// non-empty independent set containing the witness": a small synthetic
// property exercising both relations and the witness machinery.
func IndependentSetOfTrianglesSigma11() Sigma11 {
	phi := logic.And(
		// If y is in X₀, none of its neighbours is.
		logic.Implies(logic.X(0, logic.Y),
			logic.ForallNear("z", 1, logic.Implies(logic.Adj(logic.Y, "z"), logic.Not(logic.X(0, "z"))))),
		// The witness is in X₀ (evaluated where y = x).
		logic.Implies(logic.Witness(logic.Y), logic.X(0, logic.Y)),
	)
	return Sigma11{
		PropertyName: "nonempty-independent-set",
		S:            logic.Sentence{K: 1, Phi: phi},
		FindWitness: func(in *core.Instance) (int, []map[int]bool, bool) {
			if in.G.N() == 0 {
				return 0, nil, false
			}
			// Any single node is an independent set.
			v := in.G.Nodes()[0]
			return v, []map[int]bool{{v: true}}, true
		},
	}
}
