// Package schemes implements every proof labelling scheme catalogued in
// Table 1 of Göös & Suomela (PODC 2011), one construction per row, plus
// the generic wrappers the paper describes (complement of LCP(0), the
// universal O(n²) scheme, LCL verification, monadic Σ¹₁).
//
// Each scheme bundles a centralized prover (the paper's f) with a
// constant-radius local verifier (the paper's A). Verifiers never trust
// the prover: every label is decoded defensively and all structural
// claims are re-checked within the local horizon.
package schemes

import (
	"lcp/internal/bitstr"
	"lcp/internal/core"
)

// treeLabel is the locally checkable rooted-spanning-tree certificate of
// Korman–Kutten–Peleg (§5.1): the root's identity plus the distance to
// the root, here extended with an explicit parent pointer and up to two
// subtree counters (§5.1: "node counters along the paths towards the
// root"). It is the workhorse of the LogLCP upper bounds: leader
// election, spanning trees, counting n(G), odd cycles, coLCP(0), Σ¹₁.
type treeLabel struct {
	Root   int
	Parent int
	Dist   uint64
	// Counters; width 0 means absent.
	Count1, Count2 uint64
	HasC1, HasC2   bool
}

// Field widths are part of the label so that the verifier can decode
// without knowing n; consistency of widths across neighbours is checked
// explicitly (and propagates globally on connected graphs).
const widthField = 6 // bits used to encode a width (values 0..63)

func (l treeLabel) encode() bitstr.String {
	var w bitstr.Writer
	idW := bitstr.WidthFor(uint64(maxInt(l.Root, l.Parent)))
	distW := bitstr.WidthFor(l.Dist)
	w.WriteUint(uint64(idW), widthField)
	w.WriteUint(uint64(l.Root), idW)
	w.WriteUint(uint64(l.Parent), idW)
	w.WriteUint(uint64(distW), widthField)
	w.WriteUint(l.Dist, distW)
	w.WriteBit(l.HasC1)
	if l.HasC1 {
		cw := bitstr.WidthFor(l.Count1)
		w.WriteUint(uint64(cw), widthField)
		w.WriteUint(l.Count1, cw)
	}
	w.WriteBit(l.HasC2)
	if l.HasC2 {
		cw := bitstr.WidthFor(l.Count2)
		w.WriteUint(uint64(cw), widthField)
		w.WriteUint(l.Count2, cw)
	}
	return w.String()
}

// decodeTreeLabel reads a treeLabel from the beginning of s, returning the
// remaining reader so schemes can append their own fields after the tree
// certificate. ok is false on any malformed input.
func decodeTreeLabel(s bitstr.String) (l treeLabel, r *bitstr.Reader, ok bool) {
	r = bitstr.NewReader(s)
	idW := int(r.ReadUint(widthField))
	l.Root = int(r.ReadUint(idW))
	l.Parent = int(r.ReadUint(idW))
	distW := int(r.ReadUint(widthField))
	l.Dist = r.ReadUint(distW)
	l.HasC1 = r.ReadBit()
	if l.HasC1 {
		cw := int(r.ReadUint(widthField))
		l.Count1 = r.ReadUint(cw)
	}
	l.HasC2 = r.ReadBit()
	if l.HasC2 {
		cw := int(r.ReadUint(widthField))
		l.Count2 = r.ReadUint(cw)
	}
	if r.Err() || l.Root <= 0 || l.Parent <= 0 {
		return treeLabel{}, r, false
	}
	return l, r, true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// treeOpts configures checkTreeLabel.
type treeOpts struct {
	// needC1/needC2 require the counters to be present and consistent:
	// Count = own contribution + Σ over children (neighbours whose Parent
	// is the center).
	needC1, needC2 bool
	// contribution functions per counter; nil means "count 1 per node"
	// (the n(G) counter of §5.1).
	contrib1, contrib2 func(w *core.View, v int) uint64
	// rootCheck runs at the root node only (after structure checks).
	rootCheck func(w *core.View, l treeLabel) bool
	// trailing decides whether bits after the tree label are allowed
	// (schemes appending their own fields set this).
	trailing bool
}

// labelOf decodes the tree label of node v inside the view.
func labelOf(w *core.View, v int) (treeLabel, *bitstr.Reader, bool) {
	return decodeTreeLabel(w.ProofOf(v))
}

// checkTreeLabel is the radius-1 verifier for the rooted-spanning-tree
// certificate, shared by all LogLCP schemes. It validates, at the view's
// center:
//
//   - the label decodes (and, unless opts.trailing, has no excess bits);
//   - every neighbour agrees on the root identity;
//   - the parent pointer names a neighbour whose distance is one less
//     (or the node itself at distance 0, in which case its identifier
//     must equal the claimed root — the step that pins down a unique
//     root, because identifiers are unique);
//   - requested counters satisfy Count = contrib(center) + Σ_children.
//
// Soundness (paper §5.1): distances strictly decrease along parent
// pointers, so every node's parent chain terminates at a node of distance
// 0, which must be the unique node whose identifier equals the agreed
// root. Hence the parent edges form a tree spanning the (connected)
// graph, and the counter fields force Count(v) to be the exact subtree
// aggregate, so the root learns the true global total.
func checkTreeLabel(w *core.View, opts treeOpts) (treeLabel, bool) {
	me := w.Center
	l, r, ok := labelOf(w, me)
	if !ok {
		return treeLabel{}, false
	}
	if !opts.trailing && !r.AtEnd() {
		return treeLabel{}, false
	}
	if opts.needC1 && !l.HasC1 {
		return treeLabel{}, false
	}
	if opts.needC2 && !l.HasC2 {
		return treeLabel{}, false
	}
	// Root agreement with every neighbour.
	for _, u := range w.Neighbors(me) {
		lu, _, okU := labelOf(w, u)
		if !okU || lu.Root != l.Root {
			return treeLabel{}, false
		}
	}
	// Parent structure.
	if l.Dist == 0 {
		if l.Parent != me || l.Root != me {
			return treeLabel{}, false
		}
	} else {
		if l.Parent == me || !w.G.HasEdge(me, l.Parent) {
			return treeLabel{}, false
		}
		lp, _, okP := labelOf(w, l.Parent)
		if !okP || lp.Dist != l.Dist-1 {
			return treeLabel{}, false
		}
	}
	// Counters over children.
	if opts.needC1 || opts.needC2 {
		var sum1, sum2 uint64
		for _, u := range w.Neighbors(me) {
			lu, _, okU := labelOf(w, u)
			if !okU {
				return treeLabel{}, false
			}
			if lu.Parent == me && lu.Dist == l.Dist+1 {
				sum1 += lu.Count1
				sum2 += lu.Count2
			} else if lu.Parent == me {
				// Claims me as parent but distance is wrong.
				return treeLabel{}, false
			}
		}
		if opts.needC1 {
			c := uint64(1)
			if opts.contrib1 != nil {
				c = opts.contrib1(w, me)
			}
			if l.Count1 != c+sum1 {
				return treeLabel{}, false
			}
		}
		if opts.needC2 {
			c := uint64(0)
			if opts.contrib2 != nil {
				c = opts.contrib2(w, me)
			}
			if l.Count2 != c+sum2 {
				return treeLabel{}, false
			}
		}
	}
	if l.Dist == 0 && opts.rootCheck != nil && !opts.rootCheck(w, l) {
		return treeLabel{}, false
	}
	return l, true
}

// buildTreeProof constructs the spanning-tree certificate rooted at root,
// optionally with subtree counters. decorate (if non-nil) appends
// scheme-specific bits to each node's label.
func buildTreeProof(in *core.Instance, root int,
	withC1 bool, contrib1 func(v int) uint64,
	withC2 bool, contrib2 func(v int) uint64,
	decorate func(v int, w *bitstr.Writer)) core.Proof {

	parent, depth, order := spanningTreeOf(in, root)
	// Subtree aggregation in reverse-BFS order (children before
	// parents, since BFS order is non-decreasing in depth).
	counts1 := map[int]uint64{}
	counts2 := map[int]uint64{}
	if withC1 || withC2 {
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			if withC1 {
				c := uint64(1)
				if contrib1 != nil {
					c = contrib1(v)
				}
				counts1[v] += c
			}
			if withC2 {
				c := uint64(0)
				if contrib2 != nil {
					c = contrib2(v)
				}
				counts2[v] += c
			}
			if p := parent[v]; p != v {
				counts1[p] += counts1[v]
				counts2[p] += counts2[v]
			}
		}
	}
	proof := make(core.Proof, in.G.N())
	for v, p := range parent {
		l := treeLabel{
			Root: root, Parent: p, Dist: uint64(depth[v]),
			HasC1: withC1, Count1: counts1[v],
			HasC2: withC2, Count2: counts2[v],
		}
		var w bitstr.Writer
		w.WriteBitString(l.encode())
		if decorate != nil {
			decorate(v, &w)
		}
		proof[v] = w.String()
	}
	return proof
}

// spanningTreeOf BFS-builds the spanning tree rooted at root. The
// returned order is the BFS visit order — non-decreasing depth — which
// is exactly what reverse-order subtree aggregation needs; a former
// insertion sort by depth here was quadratic and would not survive the
// n=10^6 scale tier. Maps are presized to the node count so tree
// construction costs no rehash at scale.
func spanningTreeOf(in *core.Instance, root int) (parent, depth map[int]int, order []int) {
	n := in.G.N()
	parent = make(map[int]int, n)
	depth = make(map[int]int, n)
	order = make([]int, 0, n)
	parent[root] = root
	depth[root] = 0
	order = append(order, root)
	for i := 0; i < len(order); i++ {
		u := order[i]
		du := depth[u]
		for _, v := range in.G.Neighbors(u) {
			if _, ok := parent[v]; !ok {
				parent[v] = u
				depth[v] = du + 1
				order = append(order, v)
			}
		}
	}
	return parent, depth, order
}
