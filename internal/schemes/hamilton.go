package schemes

import (
	"fmt"

	"lcp/internal/bitstr"
	"lcp/internal/core"
	"lcp/internal/graphalg"
)

// Hamiltonian cycle schemes (§5.1: "Hamiltonian cycles and Hamiltonian
// paths can be verified by using the same technique" — a Hamiltonian
// path is a spanning tree). The certificate assigns every node its
// position along the cycle, with the root (position 0) pinned by its
// identifier. Position chains force a single cycle through all nodes:
// positions strictly increase along successors, only the unique root may
// carry 0, and the wrap-around edge returns to the root, so every node
// that accepts is on the root's chain.
//
// HamiltonianCycleCheck verifies a solution given as marked edges
// (Table 1b row "Hamiltonian cycle", Θ(log n)); HamiltonianProperty is
// the weak scheme for the pure property "G is Hamiltonian", embedding
// the chosen cycle's neighbour identifiers in the proof.

// hamLabel is the per-node certificate.
type hamLabel struct {
	Root int
	Pos  uint64
	// Property variant only: explicit cycle neighbours.
	Pred, Succ int
	HasPtrs    bool
}

func (l hamLabel) encode() bitstr.String {
	var w bitstr.Writer
	idW := bitstr.WidthFor(uint64(maxInt(l.Root, maxInt(l.Pred, l.Succ))))
	w.WriteUint(uint64(idW), widthField)
	w.WriteUint(uint64(l.Root), idW)
	posW := bitstr.WidthFor(l.Pos)
	w.WriteUint(uint64(posW), widthField)
	w.WriteUint(l.Pos, posW)
	w.WriteBit(l.HasPtrs)
	if l.HasPtrs {
		w.WriteUint(uint64(l.Pred), idW)
		w.WriteUint(uint64(l.Succ), idW)
	}
	return w.String()
}

func decodeHamLabel(s bitstr.String) (hamLabel, bool) {
	r := bitstr.NewReader(s)
	var l hamLabel
	idW := int(r.ReadUint(widthField))
	l.Root = int(r.ReadUint(idW))
	posW := int(r.ReadUint(widthField))
	l.Pos = r.ReadUint(posW)
	l.HasPtrs = r.ReadBit()
	if l.HasPtrs {
		l.Pred = int(r.ReadUint(idW))
		l.Succ = int(r.ReadUint(idW))
	}
	if r.Err() || !r.AtEnd() || l.Root <= 0 {
		return hamLabel{}, false
	}
	return l, true
}

// HamiltonianCycleCheck verifies that the marked edges form a Hamiltonian
// cycle.
type HamiltonianCycleCheck struct{}

// Name implements core.Scheme.
func (HamiltonianCycleCheck) Name() string { return "hamiltonian-cycle" }

// Verifier implements core.Scheme.
func (HamiltonianCycleCheck) Verifier() core.Verifier {
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		me := w.Center
		l, ok := decodeHamLabel(w.ProofOf(me))
		if !ok || l.HasPtrs {
			return false
		}
		// Root agreement with every neighbour — not only marked ones.
		// Connectivity (family promise) then forces a single global
		// root, so two disjoint marked cycles cannot certify themselves
		// separately.
		var marked []int
		for _, u := range w.Neighbors(me) {
			lu, okU := decodeHamLabel(w.ProofOf(u))
			if !okU || lu.Root != l.Root || lu.HasPtrs {
				return false
			}
			if w.EdgeMarked(me, u) {
				marked = append(marked, u)
			}
		}
		if len(marked) != 2 {
			return false
		}
		var labels [2]hamLabel
		for i, u := range marked {
			labels[i], _ = decodeHamLabel(w.ProofOf(u))
		}
		return checkHamPositions(me, l, marked, labels)
	}}
}

// checkHamPositions implements the position rules shared by both
// variants: me at position p with cycle neighbours a, b.
func checkHamPositions(me int, l hamLabel, nbrs []int, labels [2]hamLabel) bool {
	p := l.Pos
	pa, pb := labels[0].Pos, labels[1].Pos
	if p == 0 {
		// Root: identifier must equal the claimed root; neighbours at
		// positions 1 and ≥ 2 (the final node).
		if me != l.Root {
			return false
		}
		return (pa == 1 && pb >= 2) || (pb == 1 && pa >= 2)
	}
	if nbrs[0] == nbrs[1] {
		return false
	}
	// Interior: one neighbour at p−1; the other at p+1, or the root
	// (position 0, with p ≥ 2) closing the cycle.
	closes := func(nb int, pn uint64) bool {
		return pn == p+1 || (pn == 0 && nb == l.Root && p >= 2)
	}
	if pa == p-1 && closes(nbrs[1], pb) {
		return true
	}
	if pb == p-1 && closes(nbrs[0], pa) {
		return true
	}
	return false
}

// Prove implements core.Scheme.
func (HamiltonianCycleCheck) Prove(in *core.Instance) (core.Proof, error) {
	edges := make(map[int][]int) // marked adjacency
	for _, e := range in.MarkedEdges() {
		edges[e.U] = append(edges[e.U], e.V)
		edges[e.V] = append(edges[e.V], e.U)
	}
	n := in.G.N()
	for _, v := range in.G.Nodes() {
		if len(edges[v]) != 2 {
			return nil, core.ErrNotInProperty
		}
	}
	// Walk the marked cycle from the smallest node.
	root := in.G.Nodes()[0]
	order := []int{root}
	prev, cur := root, edges[root][0]
	for cur != root {
		order = append(order, cur)
		next := edges[cur][0]
		if next == prev {
			next = edges[cur][1]
		}
		prev, cur = cur, next
		if len(order) > n {
			return nil, core.ErrNotInProperty
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("%w: marked edges form %d-cycle ≠ n=%d", core.ErrNotInProperty, len(order), n)
	}
	p := make(core.Proof, n)
	for i, v := range order {
		p[v] = hamLabel{Root: root, Pos: uint64(i)}.encode()
	}
	return p, nil
}

var _ core.Scheme = HamiltonianCycleCheck{}

// HamiltonianProperty is the weak scheme for the pure property "G has a
// Hamiltonian cycle": the prover finds a cycle (exponential search — the
// prover may be all-powerful) and writes each node's two cycle
// neighbours into its label.
type HamiltonianProperty struct{}

// Name implements core.Scheme.
func (HamiltonianProperty) Name() string { return "hamiltonian-property" }

// Verifier implements core.Scheme.
func (HamiltonianProperty) Verifier() core.Verifier {
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		me := w.Center
		l, ok := decodeHamLabel(w.ProofOf(me))
		if !ok || !l.HasPtrs {
			return false
		}
		// Root agreement with every neighbour (see the marked variant).
		for _, u := range w.Neighbors(me) {
			lu, okU := decodeHamLabel(w.ProofOf(u))
			if !okU || lu.Root != l.Root || !lu.HasPtrs {
				return false
			}
		}
		// Claimed cycle neighbours must be real, distinct neighbours.
		if l.Pred == l.Succ || !w.G.HasEdge(me, l.Pred) || !w.G.HasEdge(me, l.Succ) {
			return false
		}
		lp, _ := decodeHamLabel(w.ProofOf(l.Pred))
		ls, _ := decodeHamLabel(w.ProofOf(l.Succ))
		// Pointer symmetry: pred's succ is me, succ's pred is me.
		if lp.Succ != me || ls.Pred != me {
			return false
		}
		return checkHamPositions(me, l, []int{l.Pred, l.Succ}, [2]hamLabel{lp, ls})
	}}
}

// Prove implements core.Scheme.
func (HamiltonianProperty) Prove(in *core.Instance) (core.Proof, error) {
	cyc := graphalg.HamiltonianCycle(in.G)
	if cyc == nil {
		return nil, core.ErrNotInProperty
	}
	n := len(cyc)
	root := cyc[0]
	p := make(core.Proof, n)
	for i, v := range cyc {
		p[v] = hamLabel{
			Root:    root,
			Pos:     uint64(i),
			Pred:    cyc[(i+n-1)%n],
			Succ:    cyc[(i+1)%n],
			HasPtrs: true,
		}.encode()
	}
	return p, nil
}

var _ core.Scheme = HamiltonianProperty{}
