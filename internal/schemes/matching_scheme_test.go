package schemes

import (
	"math/rand"
	"testing"

	"lcp/internal/core"
	"lcp/internal/graph"
	"lcp/internal/graphalg"
)

func TestMaximumMatchingBipartiteScheme(t *testing.T) {
	k33 := graph.CompleteBipartite(3, 3)
	perfect := []graph.Edge{graph.NormEdge(1, 4), graph.NormEdge(2, 5), graph.NormEdge(3, 6)}
	short := []graph.Edge{graph.NormEdge(1, 4), graph.NormEdge(2, 5)}
	p6 := graph.Path(6)
	p6max := []graph.Edge{graph.NormEdge(1, 2), graph.NormEdge(3, 4), graph.NormEdge(5, 6)}
	p6mid := []graph.Edge{graph.NormEdge(2, 3), graph.NormEdge(4, 5)} // maximal but not maximum
	runSchemeCase(t, schemeCase{
		name:   "max-matching-bipartite",
		scheme: MaximumMatchingBipartite{},
		yes: []*core.Instance{
			markedInstance(k33, perfect...),
			markedInstance(p6, p6max...),
			markedInstance(graph.Star(4), graph.NormEdge(1, 3)),
		},
		no: []*core.Instance{
			markedInstance(k33, short...),
			markedInstance(p6, p6mid...),
			markedInstance(p6),
		},
		maxBits: func(*core.Instance) int { return 1 },
	})
}

func TestMaximumMatchingBipartiteRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	scheme := MaximumMatchingBipartite{}
	for i := 0; i < 20; i++ {
		a, b := 2+rng.Intn(5), 2+rng.Intn(5)
		g := graph.RandomBipartite(a, b, 0.5, rng.Int63())
		var left []int
		for v := 1; v <= a; v++ {
			left = append(left, v)
		}
		m, _ := graphalg.HopcroftKarp(g, left)
		in := core.NewInstance(g)
		for e := range m {
			in.MarkEdge(e.U, e.V)
		}
		if _, _, err := core.ProveAndCheck(in, scheme); err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		// Remove one matched edge: no longer maximum (if any were
		// matched); prover must refuse.
		if len(m) > 0 {
			smaller := in.Clone()
			var dropped graph.Edge
			for e := range m {
				dropped = e
				break
			}
			delete(smaller.EdgeLabel, dropped)
			if _, err := scheme.Prove(smaller); err == nil {
				t.Fatalf("trial %d: accepted sub-maximum matching", i)
			}
		}
	}
}

func weightedInstance(g *graph.Graph, w graphalg.Weights, marked graphalg.Matching, W int64) *core.Instance {
	in := core.NewInstance(g)
	in.Weights = map[graph.Edge]int64{}
	for e, wt := range w {
		in.Weights[e] = wt
	}
	for e := range marked {
		in.MarkEdge(e.U, e.V)
	}
	in.Global = core.Global{GlobalW: W}
	return in
}

func TestMaxWeightMatchingScheme(t *testing.T) {
	// K_{2,2} with one heavy pairing.
	g := graph.CompleteBipartite(2, 2)
	w := graphalg.Weights{
		graph.NormEdge(1, 3): 5, graph.NormEdge(2, 4): 5,
		graph.NormEdge(1, 4): 3, graph.NormEdge(2, 3): 3,
	}
	best := graphalg.Matching{graph.NormEdge(1, 3): true, graph.NormEdge(2, 4): true}
	worse := graphalg.Matching{graph.NormEdge(1, 4): true, graph.NormEdge(2, 3): true}
	runSchemeCase(t, schemeCase{
		name:   "max-weight-matching",
		scheme: MaxWeightMatching{},
		yes: []*core.Instance{
			weightedInstance(g, w, best, 5),
		},
		no: []*core.Instance{
			weightedInstance(g, w, worse, 5),
			weightedInstance(g, w, graphalg.Matching{}, 5),
		},
		maxBits: func(in *core.Instance) int { return log2ceil(int(in.Global[GlobalW]) + 1) },
	})
}

func TestMaxWeightMatchingRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	scheme := MaxWeightMatching{}
	for i := 0; i < 15; i++ {
		a, b := 2+rng.Intn(4), 2+rng.Intn(4)
		g := graph.RandomBipartite(a, b, 0.6, rng.Int63())
		var left []int
		for v := 1; v <= a; v++ {
			left = append(left, v)
		}
		w := graphalg.Weights{}
		var W int64 = 12
		for _, e := range g.Edges() {
			w[e] = rng.Int63n(W + 1)
		}
		m := graphalg.MaxWeightMatching(g, left, w)
		in := weightedInstance(g, w, m, W)
		p, _, err := core.ProveAndCheck(in, scheme)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if p.Size() > log2ceil(int(W)+1) {
			t.Fatalf("trial %d: proof size %d exceeds O(log W) bound", i, p.Size())
		}
	}
}

func TestMaxWeightMatchingProofSizeScalesWithW(t *testing.T) {
	// Fixed K_{3,3}, growing W: proof must scale with log W, independent
	// of n (which is constant here).
	g := graph.CompleteBipartite(3, 3)
	var left = []int{1, 2, 3}
	var sizes []int
	for _, W := range []int64{1, 15, 255, 65535} {
		w := graphalg.Weights{}
		for _, e := range g.Edges() {
			w[e] = W // uniform weights: any perfect matching is optimal
		}
		m := graphalg.MaxWeightMatching(g, left, w)
		in := weightedInstance(g, w, m, W)
		p, _, err := core.ProveAndCheck(in, MaxWeightMatching{})
		if err != nil {
			t.Fatalf("W=%d: %v", W, err)
		}
		sizes = append(sizes, p.Size())
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Errorf("dual label sizes should grow with W: %v", sizes)
		}
	}
}
