package schemes

import (
	"testing"

	"lcp/internal/core"
	"lcp/internal/graph"
	"lcp/internal/graphalg"
)

func TestUniversalSchemeArbitraryPredicate(t *testing.T) {
	// "G has an even number of edges" — silly, global, computable.
	evenEdges := Universal{
		PropertyName: "even-m",
		Holds:        func(g *graph.Graph) bool { return g.M()%2 == 0 },
	}
	runSchemeCase(t, schemeCase{
		name:                  "universal-even-m",
		skipRelabelProofReuse: true,
		scheme:                evenEdges,
		yes: []*core.Instance{
			core.NewInstance(graph.Cycle(8)),
			core.NewInstance(graph.Path(5)),
		},
		no: []*core.Instance{
			core.NewInstance(graph.Cycle(9)),
			core.NewInstance(graph.Path(4)),
		},
		maxBits: func(in *core.Instance) int {
			n := in.G.N()
			return n*n + 64*n + 128 // O(n²) certificate with headers
		},
	})
}

func TestSymmetricScheme(t *testing.T) {
	asym := graph.NewBuilder(graph.Undirected).
		AddPath(1, 2).AddPath(3, 4, 2).AddPath(5, 6, 7, 2).Graph() // spider(1,2,3)
	runSchemeCase(t, schemeCase{
		name:                  "symmetric",
		skipRelabelProofReuse: true,
		scheme:                Symmetric{},
		yes: []*core.Instance{
			core.NewInstance(graph.Cycle(7)),
			core.NewInstance(graph.Petersen()),
			core.NewInstance(graph.Star(3)),
		},
		no: []*core.Instance{
			core.NewInstance(asym),
		},
	})
}

func TestSymmetricSchemeAgreesWithUnwitnessed(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Cycle(5), graph.Star(4), graph.Grid(2, 3)} {
		in := core.NewInstance(g)
		_, errW := Symmetric{}.Prove(in)
		_, errU := SymmetricUnwitnessed().Prove(in)
		if (errW == nil) != (errU == nil) {
			t.Errorf("%v: witnessed %v vs unwitnessed %v", g, errW, errU)
		}
	}
}

func TestSymmetricCertificateTamperedGraphEncoding(t *testing.T) {
	// The Θ(n²) certificate encodes the whole graph; swapping in the
	// encoding of a DIFFERENT (symmetric) graph must be caught by the
	// row-audit even though the automorphism witness is internally valid.
	in := core.NewInstance(graph.Path(3)) // P3 is symmetric (flip)
	if _, _, err := core.ProveAndCheck(in, Symmetric{}); err != nil {
		t.Fatal(err)
	}
	// Transplant the certificate of C4 (also symmetric, different graph).
	other := core.NewInstance(graph.Cycle(4))
	q, _, err := core.ProveAndCheck(other, Symmetric{})
	if err != nil {
		t.Fatal(err)
	}
	cross := core.Proof{}
	for _, v := range in.G.Nodes() {
		cross[v] = q[other.G.Nodes()[0]]
	}
	if core.Check(in, cross, Symmetric{}.Verifier()).Accepted() {
		t.Error("foreign certificate accepted: row audit failed")
	}
}

func TestNonThreeColorableScheme(t *testing.T) {
	// Moser spindle would be nice; K4 and W5 are simpler χ>3 graphs.
	runSchemeCase(t, schemeCase{
		name:                  "universal-non-3-colorable",
		skipRelabelProofReuse: true,
		scheme:                NonThreeColorable(),
		yes: []*core.Instance{
			core.NewInstance(graph.Complete(4)),
			core.NewInstance(graph.Wheel(5)),
			core.NewInstance(graph.Complete(5)),
		},
		no: []*core.Instance{
			core.NewInstance(graph.Petersen()),
			core.NewInstance(graph.Cycle(7)),
		},
	})
}

func TestFixpointFreeScheme(t *testing.T) {
	// Yes: even path (end-to-end flip is fixpoint-free), the ⊙ of two
	// equal asymmetric trees.
	spider := func(base int) *graph.Graph {
		return graph.NewBuilder(graph.Undirected).
			AddPath(base+1, base+2).AddPath(base+3, base+4, base+2).
			AddPath(base+5, base+6, base+7, base+2).Graph()
	}
	twin := graph.DisjointUnion(spider(0), spider(100))
	twinJoined := twin.WithEdges([]graph.Edge{{U: 1, V: 101}}, nil)
	runSchemeCase(t, schemeCase{
		name:                  "fixpoint-free-tree",
		skipRelabelProofReuse: true,
		scheme:                FixpointFree{},
		yes: []*core.Instance{
			core.NewInstance(graph.Path(2)),
			core.NewInstance(graph.Path(6)),
			core.NewInstance(twinJoined),
		},
		no: []*core.Instance{
			core.NewInstance(graph.Path(5)), // odd path: center fixed
			core.NewInstance(graph.Star(3)), // center fixed
			core.NewInstance(spider(0)),     // asymmetric
		},
	})
}

func TestFixpointFreeProofSizeLinear(t *testing.T) {
	// Θ(n): certificate ≈ 2n + O(log n) bits; check the constant stays
	// small across sizes.
	for _, half := range []int{4, 8, 16, 32} {
		n := 2 * half
		g := graph.Path(n)
		p, _, err := core.ProveAndCheck(core.NewInstance(g), FixpointFree{})
		if err != nil {
			t.Fatalf("P%d: %v", n, err)
		}
		if p.Size() > 2*n+64 {
			t.Errorf("P%d: proof size %d exceeds 2n+64", n, p.Size())
		}
		if p.Size() < 2*n {
			t.Errorf("P%d: proof size %d below the 2n parentheses walk?", n, p.Size())
		}
	}
}

func TestFixpointFreeRejectsCoveringAttack(t *testing.T) {
	// Classic covering-map attack: give every node of C6 the certificate
	// of a 3-path... trees can't be covered by larger connected graphs,
	// but the verifier must also reject when the instance is NOT a tree
	// (family promise violated adversarially). C6 covers P3? No — but C6
	// maps onto the path graph by folding; folding is not a local
	// isomorphism at the fold points, so some node must reject.
	c6 := core.NewInstance(graph.Cycle(6))
	// Build the certificate of P2 (single edge, fixpoint-free flip) and
	// try to fool C6 nodes by alternating indices 0,1.
	p2 := graph.Path(2)
	enc := graph.EncodeTree(p2, 1)
	proof := core.Proof{}
	for i, v := range c6.G.Nodes() {
		proof[v] = encodeTreeCert(enc.Shape, i%2, 2)
	}
	if core.Check(c6, proof, FixpointFree{}.Verifier()).Accepted() {
		t.Error("C6 disguised as P2 accepted: covering detection failed")
	}
}

func TestGraphalgChromaticMatchesScheme(t *testing.T) {
	// Cross-validation: NonThreeColorable agrees with exact χ on a batch
	// of small graphs.
	graphs := []*graph.Graph{
		graph.Complete(4), graph.Petersen(), graph.Wheel(5), graph.Wheel(6),
		graph.Cycle(5), graph.Grid(3, 3),
	}
	for _, g := range graphs {
		_, err := NonThreeColorable().Prove(core.NewInstance(g))
		want := graphalg.ChromaticNumber(g) > 3
		if (err == nil) != want {
			t.Errorf("%v: scheme says %v, χ says %v", g, err == nil, want)
		}
	}
}
