package schemes

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"lcp/internal/core"
	"lcp/internal/dist"
	"lcp/internal/graph"
)

// schemeCase drives the generic conformance harness. Every scheme in the
// package gets: completeness on yes-instances, prover refusal and
// random-proof soundness on no-instances, identifier-relabeling
// invariance, advertised size bounds, and sequential ≡ distributed
// verdicts.
type schemeCase struct {
	name   string
	scheme core.Scheme
	yes    []*core.Instance
	no     []*core.Instance
	// maxBits bounds the proof size on yes-instances; nil = no bound
	// asserted.
	maxBits func(in *core.Instance) int
	// skipRelabel disables the invariance check for schemes whose proofs
	// embed identifiers in ways the generic relabeler cannot rewrite
	// (the proof must be regenerated instead — still checked, just via
	// fresh Prove on the relabelled instance).
	skipRelabelProofReuse bool
}

func runSchemeCase(t *testing.T, c schemeCase) {
	t.Helper()
	v := c.scheme.Verifier()
	for i, in := range c.yes {
		p, res, err := core.ProveAndCheck(in, c.scheme)
		if err != nil {
			t.Fatalf("%s yes[%d]: %v", c.name, i, err)
		}
		_ = res
		if c.maxBits != nil {
			if got, want := p.Size(), c.maxBits(in); got > want {
				t.Errorf("%s yes[%d]: proof size %d bits > bound %d", c.name, i, got, want)
			}
		}
		// Distributed run agrees.
		dres, err := dist.Check(in, p, v)
		if err != nil {
			t.Fatalf("%s yes[%d]: dist: %v", c.name, i, err)
		}
		if !dres.Accepted() {
			t.Errorf("%s yes[%d]: distributed verifier rejected at %v", c.name, i, dres.Rejectors())
		}
		// Relabeling invariance: fresh identifiers, regenerated or
		// relabelled proof must be accepted.
		m := relabelMap(in.G, int64(i)+1)
		in2 := in.Relabel(m)
		if c.skipRelabelProofReuse {
			p2, err := c.scheme.Prove(in2)
			if err != nil {
				t.Fatalf("%s yes[%d]: prove after relabel: %v", c.name, i, err)
			}
			if !core.Check(in2, p2, v).Accepted() {
				t.Errorf("%s yes[%d]: rejected after relabel+reprove", c.name, i)
			}
		} else {
			if !core.Check(in2, p.Relabel(m), v).Accepted() {
				t.Errorf("%s yes[%d]: rejected after relabel", c.name, i)
			}
		}
	}
	for i, in := range c.no {
		if _, err := c.scheme.Prove(in); err == nil {
			t.Errorf("%s no[%d]: prover produced a proof for a no-instance", c.name, i)
		} else if !errors.Is(err, core.ErrNotInProperty) {
			// Provers may also fail for malformed instances; surface
			// unexpected errors to keep the table honest.
			t.Logf("%s no[%d]: prover error (not ErrNotInProperty): %v", c.name, i, err)
		}
		// Adversarial proofs must be rejected. Empty, small random, and
		// larger random proofs.
		for _, bits := range []int{0, 1, 8, 32} {
			for seed := int64(0); seed < 3; seed++ {
				p := core.RandomProof(in, bits, seed*31+int64(bits))
				if core.Check(in, p, v).Accepted() {
					t.Errorf("%s no[%d]: accepted a random %d-bit proof (seed %d)", c.name, i, bits, seed)
				}
			}
		}
	}
}

// relabelMap gives fresh ids: v -> 2v + 5 shuffled within a bounded
// space, keeping determinism per seed.
func relabelMap(g *graph.Graph, seed int64) map[int]int {
	rng := rand.New(rand.NewSource(seed))
	n := g.N()
	space := 3*g.MaxID() + 7
	perm := rng.Perm(space)
	m := make(map[int]int, n)
	for i, v := range g.Nodes() {
		m[v] = perm[i] + 1
	}
	return m
}

// --- Instance builders ---

func stInstance(g *graph.Graph, s, t int) *core.Instance {
	return core.NewInstance(g).SetNodeLabel(s, core.LabelS).SetNodeLabel(t, core.LabelT)
}

func leaderInstance(g *graph.Graph, leaders ...int) *core.Instance {
	in := core.NewInstance(g)
	for _, l := range leaders {
		in.SetNodeLabel(l, core.LabelLeader)
	}
	return in
}

func markedInstance(g *graph.Graph, edges ...graph.Edge) *core.Instance {
	in := core.NewInstance(g)
	for _, e := range edges {
		in.MarkEdge(e.U, e.V)
	}
	return in
}

func withK(in *core.Instance, k int64) *core.Instance {
	if in.Global == nil {
		in.Global = core.Global{}
	}
	in.Global[GlobalK] = k
	return in
}

func log2ceil(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}

// pathEdges marks consecutive edges of a node sequence.
func pathEdges(ids ...int) []graph.Edge {
	var es []graph.Edge
	for i := 1; i < len(ids); i++ {
		es = append(es, graph.NormEdge(ids[i-1], ids[i]))
	}
	return es
}

func TestSchemesSequentialEqualsDistributedOnVerdicts(t *testing.T) {
	// One paranoid cross-check on a scheme with a bigger radius: line
	// graph (radius 5) on mid-sized graphs, including rejected runs.
	lg := LineGraph{}
	v := lg.Verifier()
	for _, g := range []*graph.Graph{
		graph.LineGraphOf(graph.RandomTree(8, 3)),
		graph.Star(3), // claw: rejects
		graph.Cycle(11),
	} {
		in := core.NewInstance(g)
		seq := core.Check(in, core.Proof{}, v)
		dst, err := dist.Check(in, core.Proof{}, v)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.Outputs, dst.Outputs) {
			t.Errorf("%v: sequential and distributed verdicts differ", g)
		}
	}
}
