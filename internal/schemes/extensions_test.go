package schemes

import (
	"testing"

	"lcp/internal/core"
	"lcp/internal/graph"
)

// Tests for the paper's remark-level schemes: directed reachability with
// edge pointers (§4.1), Hamiltonian paths (§5.1), and computable
// predicates of n (§7.4).

// randomDAGish builds a directed graph on 1..n with forward chords plus
// some back edges (so that undirected path-marking would be fooled).
func randomDAGish(n int, seed int64) *graph.Graph {
	b := graph.NewBuilder(graph.Directed)
	for i := 1; i < n; i++ {
		b.AddEdge(i, i+1)
	}
	rng := seed
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			if i == j {
				continue
			}
			rng = rng*6364136223846793005 + 1442695040888963407
			if (rng>>40)%13 == 0 {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Graph()
}

func TestDirectedReachabilityScheme(t *testing.T) {
	chain := func(n int) *graph.Graph {
		b := graph.NewBuilder(graph.Directed)
		for i := 1; i < n; i++ {
			b.AddEdge(i, i+1)
		}
		return b.Graph()
	}
	// A graph with a back edge that would fool undirected path-marking:
	// s → a → t exists, but also t → s.
	backEdge := graph.NewBuilder(graph.Directed).
		AddEdge(1, 2).AddEdge(2, 3).AddEdge(3, 1).Graph()
	runSchemeCase(t, schemeCase{
		name:                  "st-reachability-directed",
		skipRelabelProofReuse: true, // pointer indices depend on neighbour order
		scheme:                DirectedReachability{},
		yes: []*core.Instance{
			stInstance(chain(8), 1, 8),
			stInstance(backEdge, 1, 3),
			stInstance(randomDAGish(14, 5), 1, 14),
		},
		no: []*core.Instance{
			stInstance(chain(8), 8, 1), // against the arrows
			stInstance(graph.NewBuilder(graph.Directed).AddEdge(1, 2).AddEdge(4, 3).Graph(), 1, 3),
		},
	})
}

func TestDirectedReachabilityPointerCycleAttack(t *testing.T) {
	// Adversary marks a pointer cycle avoiding t plus marks on s and t:
	// the in-degree discipline must catch it. Graph: s=1 → 2 → 3 → 2 …,
	// t=4 reachable only via 3 → 4? Make t unreachable: no edge to 4
	// from the cycle; s–t disconnected in the directed sense.
	g := graph.NewBuilder(graph.Directed).
		AddEdge(1, 2).AddEdge(2, 3).AddEdge(3, 2).AddEdge(4, 1).Graph()
	in := stInstance(g, 1, 4) // 4 unreachable from 1
	if _, err := (DirectedReachability{}).Prove(in); err == nil {
		t.Fatal("prover found a path to an unreachable node")
	}
	// Hand-crafted adversarial proof: mark everything, point 1→2, 2→3,
	// 3→2, t has no pointer.
	p := core.Proof{
		1: dirReachLabel{OnPath: true, HasNext: true, NextIdx: 0}.encode(), // 1 → 2
		2: dirReachLabel{OnPath: true, HasNext: true, NextIdx: 0}.encode(), // 2 → 3
		3: dirReachLabel{OnPath: true, HasNext: true, NextIdx: 0}.encode(), // 3 → 2
		4: dirReachLabel{OnPath: true}.encode(),
	}
	res := core.Check(in, p, DirectedReachability{}.Verifier())
	if res.Accepted() {
		t.Fatal("pointer-cycle proof accepted: in-degree discipline failed")
	}
}

func TestDirectedReachabilityProofSizeLogDelta(t *testing.T) {
	// Proof size grows with log Δ, not with n: compare a long chain
	// (Δ=1ish) against a high-out-degree hub.
	chain := graph.NewBuilder(graph.Directed)
	for i := 1; i < 200; i++ {
		chain.AddEdge(i, i+1)
	}
	inChain := stInstance(chain.Graph(), 1, 200)
	pChain, _, err := core.ProveAndCheck(inChain, DirectedReachability{})
	if err != nil {
		t.Fatal(err)
	}
	hub := graph.NewBuilder(graph.Directed)
	for i := 2; i <= 65; i++ {
		hub.AddEdge(1, i) // out-degree 64 at s
	}
	inHub := stInstance(hub.Graph(), 1, 65)
	pHub, _, err := core.ProveAndCheck(inHub, DirectedReachability{})
	if err != nil {
		t.Fatal(err)
	}
	if pChain.Size() > 10 {
		t.Errorf("chain proof %d bits; should be O(log Δ) = O(1) here", pChain.Size())
	}
	if pHub.Size() <= pChain.Size() {
		t.Errorf("hub proof %d ≤ chain proof %d; pointer width should grow with out-degree",
			pHub.Size(), pChain.Size())
	}
}

func TestHamiltonianPathScheme(t *testing.T) {
	k5 := graph.Complete(5)
	path := pathEdges(2, 4, 1, 3, 5)
	short := pathEdges(2, 4, 1)
	twoPaths := append(pathEdges(1, 2), pathEdges(3, 4, 5)...)
	cyc := pathEdges(1, 2, 3, 4, 5, 1)
	runSchemeCase(t, schemeCase{
		name:                  "hamiltonian-path",
		skipRelabelProofReuse: true,
		scheme:                HamiltonianPathCheck{},
		yes: []*core.Instance{
			markedInstance(k5, path...),
			markedInstance(graph.Path(9), pathEdges(1, 2, 3, 4, 5, 6, 7, 8, 9)...),
			markedInstance(graph.Grid(3, 4), pathEdges(1, 2, 3, 4, 8, 7, 6, 5, 9, 10, 11, 12)...),
		},
		no: []*core.Instance{
			markedInstance(k5, short...),    // covers 3 of 5 nodes
			markedInstance(k5, twoPaths...), // two disjoint paths
			markedInstance(k5, cyc...),      // a cycle, not a path
			markedInstance(k5),              // nothing marked
		},
	})
}

func TestCountPredicateSchemes(t *testing.T) {
	prime := PrimeN()
	square := PerfectSquareN()
	runSchemeCase(t, schemeCase{
		name:                  "n-prime",
		skipRelabelProofReuse: true,
		scheme:                prime,
		yes: []*core.Instance{
			core.NewInstance(graph.Cycle(7)),
			core.NewInstance(graph.Cycle(13)),
			core.NewInstance(graph.RandomConnected(23, 0.2, 3)),
		},
		no: []*core.Instance{
			core.NewInstance(graph.Cycle(9)),
			core.NewInstance(graph.RandomConnected(24, 0.2, 3)),
		},
	})
	runSchemeCase(t, schemeCase{
		name:                  "n-perfect-square",
		skipRelabelProofReuse: true,
		scheme:                square,
		yes: []*core.Instance{
			core.NewInstance(graph.Cycle(9)),
			core.NewInstance(graph.Cycle(16)),
		},
		no: []*core.Instance{
			core.NewInstance(graph.Cycle(10)),
		},
	})
}

func TestCountPredicateProofSizeLogN(t *testing.T) {
	// The predicate's difficulty does not change the proof size: prime
	// and square schemes produce identical certificate sizes per n.
	for _, n := range []int{9, 16, 25, 49} {
		in := core.NewInstance(graph.Cycle(n))
		pSquare, _, err := core.ProveAndCheck(in, PerfectSquareN())
		if err != nil {
			t.Fatal(err)
		}
		even := CountPredicate{PropertyName: "any", Pred: func(uint64) bool { return true }}
		pAny, _, err := core.ProveAndCheck(in, even)
		if err != nil {
			t.Fatal(err)
		}
		if pSquare.Size() != pAny.Size() {
			t.Errorf("n=%d: predicate changed certificate size: %d vs %d",
				n, pSquare.Size(), pAny.Size())
		}
	}
}
