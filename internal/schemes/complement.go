package schemes

import (
	"fmt"

	"lcp/internal/core"
	"lcp/internal/graphalg"
)

// Complement is the §7.3 construction: on connected graphs, the
// complement of any LCP(0) property admits O(log n) proofs. If G is a
// no-instance of the inner property, some node a rejects; the certificate
// is a spanning tree rooted at a, and the root re-runs the inner verifier
// on its own (empty-proof) view and demands rejection.
//
// coLCP(0) ⊆ LogLCP, made executable.
type Complement struct {
	// Inner is the LCP(0) verifier whose decision is being reversed. It
	// must accept/reject with the empty proof.
	Inner core.Verifier
	// InnerName labels the resulting scheme.
	InnerName string
}

// Name implements core.Scheme.
func (c Complement) Name() string { return "co-" + c.InnerName }

// Verifier implements core.Scheme. Radius: max(1, inner radius) — the
// tree certificate needs radius 1, and the root simulates the inner
// verifier on its inner-radius sub-view.
func (c Complement) Verifier() core.Verifier {
	r := c.Inner.Radius()
	if r < 1 {
		r = 1
	}
	return core.VerifierFunc{R: r, F: func(w *core.View) bool {
		l, ok := checkTreeLabel(w, treeOpts{})
		if !ok {
			return false
		}
		if l.Dist > 0 {
			return true
		}
		// I am the root: the inner verifier must reject here on the
		// original, proof-less instance.
		inner := w.Restrict(c.Inner.Radius(), core.Proof{})
		return !c.Inner.Verify(inner)
	}}
}

// Prove implements core.Scheme.
func (c Complement) Prove(in *core.Instance) (core.Proof, error) {
	if !graphalg.Connected(in.G) {
		return nil, fmt.Errorf("%w: complement scheme requires a connected graph", core.ErrNotInProperty)
	}
	res := core.Check(in, core.Proof{}, c.Inner)
	rejectors := res.Rejectors()
	if len(rejectors) == 0 {
		// All nodes accept the inner property, so G is a yes-instance of
		// the inner property and a no-instance of its complement.
		return nil, core.ErrNotInProperty
	}
	return buildTreeProof(in, rejectors[0], false, nil, false, nil, nil), nil
}

var _ core.Scheme = Complement{}
