package schemes

import (
	"fmt"

	"lcp/internal/bitstr"
	"lcp/internal/core"
	"lcp/internal/graphalg"
)

// Constant-size schemes from §1.2 and §2.2: bipartiteness (1 bit), even
// cycles (1 bit), and chromatic number ≤ k (⌈log₂ k⌉ bits).

// Bipartite is the LCP(1) scheme for "G is bipartite" (§1.2): the proof
// is a proper 2-colouring, one bit per node.
type Bipartite struct{}

// Name implements core.Scheme.
func (Bipartite) Name() string { return "bipartite" }

// Verifier implements core.Scheme.
func (Bipartite) Verifier() core.Verifier {
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		my := w.ProofOf(w.Center)
		if my.Len() != 1 {
			return false
		}
		for _, u := range w.Neighbors(w.Center) {
			p := w.ProofOf(u)
			if p.Len() != 1 || p.Bit(0) == my.Bit(0) {
				return false
			}
		}
		return true
	}}
}

// Prove implements core.Scheme.
func (Bipartite) Prove(in *core.Instance) (core.Proof, error) {
	side, _, ok := graphalg.Bipartition(in.G)
	if !ok {
		return nil, core.ErrNotInProperty
	}
	p := make(core.Proof, in.G.N())
	for _, v := range in.G.Nodes() {
		p[v] = bitstr.FromBools(side[v])
	}
	return p, nil
}

var _ core.Scheme = Bipartite{}

// EvenCycle is the Θ(1) scheme for "n(G) is even" on the family of
// cycles (Table 1a): a cycle has a proper 2-colouring iff its length is
// even, so the bipartiteness certificate doubles as a parity certificate.
// The verifier additionally checks 2-regularity — the family promise
// keeps soundness honest, but the check is free.
type EvenCycle struct{}

// Name implements core.Scheme.
func (EvenCycle) Name() string { return "even-cycle" }

// Verifier implements core.Scheme.
func (EvenCycle) Verifier() core.Verifier {
	inner := Bipartite{}.Verifier()
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		return w.Degree(w.Center) == 2 && inner.Verify(w)
	}}
}

// Prove implements core.Scheme.
func (EvenCycle) Prove(in *core.Instance) (core.Proof, error) {
	if !graphalg.IsCycleGraph(in.G) {
		return nil, fmt.Errorf("%w: even-cycle requires the cycle family", core.ErrNotInProperty)
	}
	if in.G.N()%2 != 0 {
		return nil, core.ErrNotInProperty
	}
	return Bipartite{}.Prove(in)
}

var _ core.Scheme = EvenCycle{}

// Colorable is the LCP(O(log k)) scheme for "χ(G) ≤ k" (§2.2): the proof
// is a proper k-colouring with ⌈log₂ k⌉ bits per node. The bound k is
// global input (in.Global["k"]).
type Colorable struct{}

// GlobalK is the Global key holding k.
const GlobalK = "k"

// Name implements core.Scheme.
func (Colorable) Name() string { return "chromatic-le-k" }

// colorWidth is the label width for palette size k.
func colorWidth(k int64) int {
	if k <= 1 {
		return 1
	}
	return bitstr.UintWidth(uint64(k - 1))
}

// Verifier implements core.Scheme.
func (Colorable) Verifier() core.Verifier {
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		k := w.Global[GlobalK]
		if k <= 0 {
			return false
		}
		width := colorWidth(k)
		my := w.ProofOf(w.Center)
		if my.Len() != width {
			return false
		}
		myColor := bitstr.NewReader(my).ReadUint(width)
		if myColor >= uint64(k) {
			return false
		}
		for _, u := range w.Neighbors(w.Center) {
			p := w.ProofOf(u)
			if p.Len() != width {
				return false
			}
			c := bitstr.NewReader(p).ReadUint(width)
			if c >= uint64(k) || c == myColor {
				return false
			}
		}
		return true
	}}
}

// Prove implements core.Scheme.
func (Colorable) Prove(in *core.Instance) (core.Proof, error) {
	k := in.Global[GlobalK]
	if k <= 0 {
		return nil, fmt.Errorf("lcp: chromatic-le-k requires Global[%q] > 0", GlobalK)
	}
	col := graphalg.KColor(in.G, int(k))
	if col == nil {
		return nil, core.ErrNotInProperty
	}
	width := colorWidth(k)
	p := make(core.Proof, in.G.N())
	for v, c := range col {
		p[v] = bitstr.FromUint(uint64(c), width)
	}
	return p, nil
}

var _ core.Scheme = Colorable{}
