package schemes

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"lcp/internal/core"
	"lcp/internal/dist"
	"lcp/internal/graph"
)

// Property-based tests: quick-checked invariants over randomly generated
// instances. Each property mirrors one clause of the §2.2 definition or
// one promise of the runtime.

// quickCfg bounds the instance sizes so each check stays fast.
var quickCfg = &quick.Config{MaxCount: 40}

// TestQuickBipartiteCompleteness: every random bipartite graph proves and
// verifies, with exactly one bit per node.
func TestQuickBipartiteCompleteness(t *testing.T) {
	f := func(seed int64, a8, b8 uint8) bool {
		a, b := 1+int(a8%10), 1+int(b8%10)
		g := graph.RandomBipartite(a, b, 0.4, seed)
		p, res, err := core.ProveAndCheck(core.NewInstance(g), Bipartite{})
		return err == nil && res.Accepted() && p.Size() <= 1
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickOddCyclesNeverCertifyBipartite: random proofs on random odd
// cycles are always rejected somewhere.
func TestQuickOddCyclesNeverCertifyBipartite(t *testing.T) {
	f := func(seed int64, n8 uint8, bits uint8) bool {
		n := 3 + 2*int(n8%10) // odd, 3..21
		in := core.NewInstance(graph.Cycle(n))
		p := core.RandomProof(in, int(bits%6), seed)
		return !core.Check(in, p, Bipartite{}.Verifier()).Accepted()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickTreeSchemesOnRandomConnected: the Θ(log n) tree certificate
// proves every connected instance and survives the distributed runtime.
func TestQuickTreeSchemesOnRandomConnected(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := 3 + int(n8%20)
		g := graph.RandomConnected(n, 0.15, seed)
		in := core.NewInstance(g)
		scheme := ParityCount{WantOdd: n%2 == 1}
		p, res, err := core.ProveAndCheck(in, scheme)
		if err != nil || !res.Accepted() {
			return false
		}
		dres, derr := dist.Check(in, p, scheme.Verifier())
		return derr == nil && reflect.DeepEqual(res.Outputs, dres.Outputs)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickWrongParityAlwaysRejected: the counting verifier never accepts
// the wrong parity, whatever random proof it is fed.
func TestQuickWrongParityAlwaysRejected(t *testing.T) {
	f := func(seed int64, n8 uint8, bits uint8) bool {
		n := 3 + int(n8%20)
		g := graph.RandomConnected(n, 0.15, seed)
		in := core.NewInstance(g)
		wrong := ParityCount{WantOdd: n%2 == 0} // deliberately wrong
		p := core.RandomProof(in, int(bits%40), seed+1)
		if core.Check(in, p, wrong.Verifier()).Accepted() {
			return false
		}
		// The honest proof of the RIGHT parity scheme must also fail on
		// the wrong verifier (it certifies the opposite parity).
		right := ParityCount{WantOdd: n%2 == 1}
		hp, err := right.Prove(in)
		if err != nil {
			return false
		}
		return !core.Check(in, hp, wrong.Verifier()).Accepted()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickTamperedTreeProofsNeverChangeTheClaim: flipping bits of a
// leader certificate can only cause rejection, never acceptance of a
// different leader set.
func TestQuickTamperedLeaderProofs(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := 4 + int(n8%16)
		g := graph.RandomConnected(n, 0.2, seed)
		leader := g.Nodes()[int(uint(seed)%uint(n))]
		in := core.NewInstance(g).SetNodeLabel(leader, core.LabelLeader)
		p, _, err := core.ProveAndCheck(in, LeaderElection{})
		if err != nil {
			return false
		}
		// Tamper 5 times; each result must be accept (rare: flip was
		// immaterial... our certificate has no slack, so any flip that
		// changes semantics rejects) or reject — never a crash, and the
		// ORIGINAL instance must keep verifying.
		for i := int64(0); i < 5; i++ {
			q := core.FlipBit(p, seed+i)
			_ = core.Check(in, q, LeaderElection{}.Verifier())
		}
		return core.Check(in, p, LeaderElection{}.Verifier()).Accepted()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickProofTransplantAcrossInstances: a valid proof for one instance
// never certifies a DIFFERENT no-instance (transplant attack) for the
// counting scheme.
func TestQuickProofTransplant(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := 3 + 2*int(n8%8) // odd
		odd := core.NewInstance(graph.Cycle(n))
		p, _, err := core.ProveAndCheck(odd, ParityCount{WantOdd: true})
		if err != nil {
			return false
		}
		// Transplant onto an even cycle with one more node: ids 1..n
		// carry the old labels, node n+1 carries ε.
		even := core.NewInstance(graph.Cycle(n + 1))
		return !core.Check(even, p, ParityCount{WantOdd: true}.Verifier()).Accepted()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickRandomGraphHamiltonianPropertyAgreesWithSearch: on small
// random graphs the property scheme agrees with exhaustive search.
func TestQuickHamiltonianPropertyAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 25; i++ {
		n := 4 + rng.Intn(5)
		g := graph.RandomGNP(n, 0.5, rng.Int63())
		_, err := (HamiltonianProperty{}).Prove(core.NewInstance(g))
		has := hamiltonianBySearch(g)
		if (err == nil) != has {
			t.Fatalf("graph %v: scheme %v, search %v", g, err == nil, has)
		}
	}
}

func hamiltonianBySearch(g *graph.Graph) bool {
	n := g.N()
	if n < 3 {
		return false
	}
	nodes := g.Nodes()
	perm := append([]int{}, nodes[1:]...)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(perm) {
			full := append([]int{nodes[0]}, perm...)
			for j := range full {
				if !g.HasEdge(full[j], full[(j+1)%len(full)]) {
					return false
				}
			}
			return true
		}
		for j := i; j < len(perm); j++ {
			perm[i], perm[j] = perm[j], perm[i]
			if rec(i + 1) {
				perm[i], perm[j] = perm[j], perm[i]
				return true
			}
			perm[i], perm[j] = perm[j], perm[i]
		}
		return false
	}
	return rec(0)
}
