package schemes

import (
	"lcp/internal/core"
)

// HamiltonianPathCheck verifies that the marked edges form a Hamiltonian
// path (§5.1: "a Hamiltonian path can be interpreted as a spanning
// tree"). The certificate assigns positions 0..n−1 along the path with
// the position-0 endpoint pinned by its identifier; unlike the cycle
// variant there is no wrap-around edge, and the far endpoint simply has
// a single marked edge.
type HamiltonianPathCheck struct{}

// Name implements core.Scheme.
func (HamiltonianPathCheck) Name() string { return "hamiltonian-path" }

// Verifier implements core.Scheme.
func (HamiltonianPathCheck) Verifier() core.Verifier {
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		me := w.Center
		l, ok := decodeHamLabel(w.ProofOf(me))
		if !ok || l.HasPtrs {
			return false
		}
		// Root agreement across every neighbour (connected family), so a
		// second marked path cannot certify itself with its own root.
		var marked []int
		for _, u := range w.Neighbors(me) {
			lu, okU := decodeHamLabel(w.ProofOf(u))
			if !okU || lu.Root != l.Root || lu.HasPtrs {
				return false
			}
			if w.EdgeMarked(me, u) {
				marked = append(marked, u)
			}
		}
		positions := make([]uint64, len(marked))
		for i, u := range marked {
			lu, _ := decodeHamLabel(w.ProofOf(u))
			positions[i] = lu.Pos
		}
		if l.Pos == 0 {
			// First endpoint: identifier pins the root; exactly one
			// marked edge, to position 1.
			return me == l.Root && len(marked) == 1 && positions[0] == 1
		}
		switch len(marked) {
		case 1:
			// Far endpoint: its single marked edge goes to pos−1.
			return positions[0] == l.Pos-1
		case 2:
			a, b := positions[0], positions[1]
			return (a == l.Pos-1 && b == l.Pos+1) || (b == l.Pos-1 && a == l.Pos+1)
		default:
			return false
		}
	}}
}

// Prove implements core.Scheme.
func (HamiltonianPathCheck) Prove(in *core.Instance) (core.Proof, error) {
	// Marked edges must form one simple path covering all nodes.
	adj := map[int][]int{}
	for _, e := range in.MarkedEdges() {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	n := in.G.N()
	var endpoints []int
	for _, v := range in.G.Nodes() {
		switch len(adj[v]) {
		case 1:
			endpoints = append(endpoints, v)
		case 2:
		default:
			return nil, core.ErrNotInProperty
		}
	}
	if len(endpoints) != 2 || len(in.MarkedEdges()) != n-1 {
		return nil, core.ErrNotInProperty
	}
	// Walk from the smaller endpoint.
	root := endpoints[0]
	if endpoints[1] < root {
		root = endpoints[1]
	}
	order := []int{root}
	prev, cur := 0, root
	for len(order) < n {
		nbrs := adj[cur]
		next := 0
		for _, u := range nbrs {
			if u != prev {
				next = u
				break
			}
		}
		if next == 0 {
			return nil, core.ErrNotInProperty // path shorter than n
		}
		order = append(order, next)
		prev, cur = cur, next
	}
	p := make(core.Proof, n)
	for i, v := range order {
		p[v] = hamLabel{Root: root, Pos: uint64(i)}.encode()
	}
	return p, nil
}

var _ core.Scheme = HamiltonianPathCheck{}
