package schemes

import (
	"fmt"
	"sort"

	"lcp/internal/bitstr"
	"lcp/internal/core"
	"lcp/internal/graph"
	"lcp/internal/graphalg"
)

// STConnectivity is the §4.2 scheme proving that the s–t vertex
// connectivity equals k (k is global input). The proof encodes, per node:
//
//   - a region tag S, C or T, where S ∪ C ∪ T partitions V, s ∈ S, t ∈ T,
//     |C| = k, and no edge joins S and T;
//   - for nodes on one of the k vertex-disjoint s–t paths: the path
//     index i and the distance from s along the path modulo 3, which
//     orients the path locally.
//
// Paths are made locally minimal (no chords) so that "the unique
// same-index neighbour with my position ±1 (mod 3)" is well defined.
//
// With CompressIndices (the planar adaptation at the end of §4.2), path
// indices are reused across non-adjacent paths: the conflict graph of the
// paths is greedily coloured and colours replace indices. On planar
// inputs the conflict graph is a minor of a planar graph, so a handful of
// colours always suffice and the label size is Θ(1) instead of Θ(log k).
type STConnectivity struct {
	// CompressIndices enables the planar-style index reuse.
	CompressIndices bool
}

// Name implements core.Scheme.
func (s STConnectivity) Name() string {
	if s.CompressIndices {
		return "st-connectivity-planar"
	}
	return "st-connectivity"
}

// Region tags.
const (
	regionS = 0
	regionC = 1
	regionT = 2
)

// connLabel is the per-node §4.2 certificate.
type connLabel struct {
	Region int // S, C or T
	OnPath bool
	Index  uint64 // path index (or compressed colour)
	Mod3   uint64 // distance from s along the path, mod 3
}

func (l connLabel) encode() bitstr.String {
	var w bitstr.Writer
	w.WriteUint(uint64(l.Region), 2)
	w.WriteBit(l.OnPath)
	if l.OnPath {
		idxW := bitstr.WidthFor(l.Index)
		w.WriteUint(uint64(idxW), widthField)
		w.WriteUint(l.Index, idxW)
		w.WriteUint(l.Mod3, 2)
	}
	return w.String()
}

func decodeConnLabel(s bitstr.String) (connLabel, bool) {
	r := bitstr.NewReader(s)
	var l connLabel
	l.Region = int(r.ReadUint(2))
	l.OnPath = r.ReadBit()
	if l.OnPath {
		idxW := int(r.ReadUint(widthField))
		l.Index = r.ReadUint(idxW)
		l.Mod3 = r.ReadUint(2)
	}
	if r.Err() || !r.AtEnd() || l.Region > regionT || (l.OnPath && l.Mod3 > 2) {
		return connLabel{}, false
	}
	return l, true
}

// Verifier implements core.Scheme. The checks are (i)–(iv) of §4.2; see
// the soundness discussion in the package tests.
func (s STConnectivity) Verifier() core.Verifier {
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		k := w.Global[GlobalK]
		if k < 0 {
			return false
		}
		me := w.Center
		myLabel := w.Label(me)
		isS, isT := myLabel == core.LabelS, myLabel == core.LabelT

		if isS || isT {
			// (i) s and t: exactly k incident path starts/ends. A start
			// (next to s) has Mod3 == 1; an end (next to t) can have any
			// Mod3 but must not also have a +1 successor — that is
			// checked at the path node itself; here we count onPath
			// neighbours pointing at us.
			count := 0
			for _, u := range w.Neighbors(me) {
				lu, okU := decodeConnLabel(w.ProofOf(u))
				if !okU {
					return false
				}
				if !lu.OnPath {
					continue
				}
				if isS && lu.Mod3 != 1 {
					// Path nodes adjacent to s must be position 1:
					// otherwise the prover's paths were not locally
					// minimal, or the proof is adversarial.
					return false
				}
				count++
			}
			if count != int(k) {
				return false
			}
			// s sits in S, t in T by fiat; no label needed. Check no
			// S–T edge from here: neighbours of s must not be in T,
			// neighbours of t not in S.
			for _, u := range w.Neighbors(me) {
				lu, _ := decodeConnLabel(w.ProofOf(u))
				if isS && lu.Region == regionT {
					return false
				}
				if isT && lu.Region == regionS {
					return false
				}
			}
			return true
		}

		l, ok := decodeConnLabel(w.ProofOf(me))
		if !ok {
			return false
		}
		// (iii) No S–T edges.
		for _, u := range w.Neighbors(me) {
			if w.Label(u) == core.LabelS || w.Label(u) == core.LabelT {
				continue
			}
			lu, okU := decodeConnLabel(w.ProofOf(u))
			if !okU {
				return false
			}
			if (l.Region == regionS && lu.Region == regionT) ||
				(l.Region == regionT && lu.Region == regionS) {
				return false
			}
		}
		if l.Region == regionC && !l.OnPath {
			// (iv) Every separator node lies on a path.
			return false
		}
		if !l.OnPath {
			return true
		}

		// (ii) Path structure: exactly one predecessor and one successor.
		var preds, succs []int
		sNbr, tNbr := 0, 0
		for _, u := range w.Neighbors(me) {
			switch w.Label(u) {
			case core.LabelS:
				sNbr = u
				continue
			case core.LabelT:
				tNbr = u
				continue
			}
			lu, okU := decodeConnLabel(w.ProofOf(u))
			if !okU {
				return false
			}
			if !lu.OnPath || lu.Index != l.Index {
				continue
			}
			if lu.Mod3 == (l.Mod3+2)%3 {
				preds = append(preds, u)
			}
			if lu.Mod3 == (l.Mod3+1)%3 {
				succs = append(succs, u)
			}
		}
		if sNbr != 0 && l.Mod3 == 1 {
			preds = append(preds, sNbr)
		}
		if tNbr != 0 {
			succs = append(succs, tNbr)
		}
		if len(preds) != 1 || len(succs) != 1 {
			return false
		}
		// (iv) Separator nodes: predecessor on the S side, successor on
		// the T side.
		if l.Region == regionC {
			if preds[0] != sNbr {
				lp, _ := decodeConnLabel(w.ProofOf(preds[0]))
				if lp.Region != regionS {
					return false
				}
			}
			if succs[0] != tNbr {
				ls, _ := decodeConnLabel(w.ProofOf(succs[0]))
				if ls.Region != regionT {
					return false
				}
			}
		}
		// Crossing discipline: an S-side path node's successor must not
		// be in T (it may be S or C); symmetric for T-side predecessors.
		// This is implied by the no-S–T-edge rule, already checked.
		return true
	}}
}

// Prove implements core.Scheme: compute the Menger structure, optionally
// compress indices, and emit labels.
func (s STConnectivity) Prove(in *core.Instance) (core.Proof, error) {
	src, dst, err := findST(in)
	if err != nil {
		return nil, err
	}
	k := in.Global[GlobalK]
	res, err := graphalg.DisjointPaths(in.G, src, dst)
	if err != nil {
		return nil, err
	}
	if int64(res.Connectivity()) != k {
		return nil, fmt.Errorf("%w: connectivity is %d, not %d", core.ErrNotInProperty, res.Connectivity(), k)
	}

	indices := make([]uint64, len(res.Paths))
	for i := range indices {
		indices[i] = uint64(i + 1)
	}
	if s.CompressIndices {
		indices = compressPathIndices(in.G, res.Paths)
	}

	labels := make(map[int]connLabel, in.G.N())
	for _, v := range in.G.Nodes() {
		region := regionT
		if res.S[v] {
			region = regionS
		} else if inCutSlice(res.Cut, v) {
			region = regionC
		}
		labels[v] = connLabel{Region: region}
	}
	for pi, path := range res.Paths {
		for pos := 1; pos < len(path)-1; pos++ {
			v := path[pos]
			l := labels[v]
			l.OnPath = true
			l.Index = indices[pi]
			l.Mod3 = uint64(pos % 3)
			labels[v] = l
		}
	}
	p := make(core.Proof, in.G.N())
	for v, l := range labels {
		if v == src || v == dst {
			p[v] = bitstr.Empty
			continue
		}
		p[v] = l.encode()
	}
	return p, nil
}

func inCutSlice(cut []int, v int) bool {
	i := sort.SearchInts(cut, v)
	return i < len(cut) && cut[i] == v
}

// compressPathIndices greedily colours the path conflict graph (two paths
// conflict if any edge of G joins their interior nodes) and returns a
// colour per path, 1-based. On planar graphs the conflict graph is a
// minor of G, so few colours suffice — this is the §4.2 planar trick.
func compressPathIndices(g *graph.Graph, paths [][]int) []uint64 {
	owner := map[int]int{}
	for pi, path := range paths {
		for _, v := range path[1 : len(path)-1] {
			owner[v] = pi + 1
		}
	}
	conflicts := make([]map[int]bool, len(paths))
	for i := range conflicts {
		conflicts[i] = map[int]bool{}
	}
	for _, e := range g.Edges() {
		a, b := owner[e.U], owner[e.V]
		if a != 0 && b != 0 && a != b {
			conflicts[a-1][b-1] = true
			conflicts[b-1][a-1] = true
		}
	}
	colors := make([]uint64, len(paths))
	for i := range paths {
		taken := map[uint64]bool{}
		for j := range conflicts[i] {
			if colors[j] != 0 {
				taken[colors[j]] = true
			}
		}
		c := uint64(1)
		for taken[c] {
			c++
		}
		colors[i] = c
	}
	return colors
}

var _ core.Scheme = STConnectivity{}
