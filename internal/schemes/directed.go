package schemes

import (
	"sort"

	"lcp/internal/bitstr"
	"lcp/internal/core"
	"lcp/internal/graphalg"
)

// DirectedReachability is the §4.1 remark made concrete: undirected path
// marking breaks in directed graphs because of back-edges, but "one can
// still give an easy upper bound of O(log Δ) by using edge pointers in
// the proof labelling to describe a path from s to t". (Whether directed
// s–t reachability is in LCP(O(1)) for general graphs is open; cf. Ajtai
// & Fagin.)
//
// Certificate per path node: a next-hop pointer, stored as the index of
// the successor in the node's own out-neighbour list — ⌈log₂ deg⁺(v)⌉
// bits, hence O(log Δ). Soundness comes from in-degree discipline: every
// marked node other than s has exactly one marked in-pointer, and s has
// none, so the marked pointer structure is a disjoint union of one
// s-path plus harmless cycles; the s-path cannot stop before t (every
// non-t marked node must point onward) and cannot enter a cycle (cycle
// nodes already have their one in-pointer).
type DirectedReachability struct{}

// Name implements core.Scheme.
func (DirectedReachability) Name() string { return "st-reachability-directed" }

type dirReachLabel struct {
	OnPath  bool
	HasNext bool
	NextIdx uint64 // index into the node's sorted out-neighbour list
}

func (l dirReachLabel) encode() bitstr.String {
	var w bitstr.Writer
	w.WriteBit(l.OnPath)
	if l.OnPath {
		w.WriteBit(l.HasNext)
		if l.HasNext {
			iw := bitstr.WidthFor(l.NextIdx)
			w.WriteUint(uint64(iw), widthField)
			w.WriteUint(l.NextIdx, iw)
		}
	}
	return w.String()
}

func decodeDirReachLabel(s bitstr.String) (dirReachLabel, bool) {
	r := bitstr.NewReader(s)
	var l dirReachLabel
	l.OnPath = r.ReadBit()
	if l.OnPath {
		l.HasNext = r.ReadBit()
		if l.HasNext {
			iw := int(r.ReadUint(widthField))
			l.NextIdx = r.ReadUint(iw)
		}
	}
	if r.Err() || !r.AtEnd() {
		return dirReachLabel{}, false
	}
	return l, true
}

// nextHopOf resolves a node's pointer inside a view (nil if invalid). The
// out-neighbour list must be fully visible, which holds for nodes at
// distance < radius.
func nextHopOf(w *core.View, v int, l dirReachLabel) (int, bool) {
	if !l.HasNext {
		return 0, false
	}
	outs := w.G.Neighbors(v)
	if int(l.NextIdx) >= len(outs) {
		return 0, false
	}
	return outs[int(l.NextIdx)], true
}

// Verifier implements core.Scheme. Radius 2: resolving an in-neighbour's
// pointer index needs that neighbour's full out-list.
func (DirectedReachability) Verifier() core.Verifier {
	return core.VerifierFunc{R: 2, F: func(w *core.View) bool {
		me := w.Center
		l, ok := decodeDirReachLabel(w.ProofOf(me))
		if !ok {
			return false
		}
		isS, isT := w.Label(me) == core.LabelS, w.Label(me) == core.LabelT
		if (isS || isT) && !l.OnPath {
			return false
		}
		if !l.OnPath {
			return true
		}
		// Out-pointer: t has none; everyone else points to a marked
		// out-neighbour.
		if isT {
			if l.HasNext {
				return false
			}
		} else {
			next, ok := nextHopOf(w, me, l)
			if !ok {
				return false
			}
			ln, okN := decodeDirReachLabel(w.ProofOf(next))
			if !okN || !ln.OnPath {
				return false
			}
		}
		// In-pointer discipline: count marked in-neighbours whose pointer
		// resolves to me.
		inPtrs := 0
		for _, u := range w.G.InNeighbors(me) {
			lu, okU := decodeDirReachLabel(w.ProofOf(u))
			if !okU {
				return false
			}
			if !lu.OnPath {
				continue
			}
			if tgt, okT := nextHopOf(w, u, lu); okT && tgt == me {
				inPtrs++
			}
		}
		if isS {
			return inPtrs == 0
		}
		return inPtrs == 1
	}}
}

// Prove implements core.Scheme.
func (DirectedReachability) Prove(in *core.Instance) (core.Proof, error) {
	s, t, err := findST(in)
	if err != nil {
		return nil, err
	}
	dist := graphalg.BFS(in.G, s) // directed BFS (out-edges)
	if _, ok := dist[t]; !ok {
		return nil, core.ErrNotInProperty
	}
	// Reconstruct one shortest path s → t.
	path := []int{t}
	cur := t
	for cur != s {
		found := false
		for _, u := range in.G.Nodes() {
			if dist[u] == dist[cur]-1 && in.G.HasEdge(u, cur) {
				path = append(path, u)
				cur = u
				found = true
				break
			}
		}
		if !found {
			return nil, core.ErrNotInProperty
		}
	}
	// path is t…s; reverse to s…t.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	p := make(core.Proof, in.G.N())
	for _, v := range in.G.Nodes() {
		p[v] = dirReachLabel{}.encode()
	}
	for i, v := range path {
		l := dirReachLabel{OnPath: true}
		if i < len(path)-1 {
			outs := in.G.Neighbors(v)
			idx := sort.SearchInts(outs, path[i+1])
			l.HasNext = true
			l.NextIdx = uint64(idx)
		}
		p[v] = l.encode()
	}
	return p, nil
}

var _ core.Scheme = DirectedReachability{}
