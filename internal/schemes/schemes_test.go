package schemes

import (
	"testing"

	"lcp/internal/core"
	"lcp/internal/graph"
	"lcp/internal/graphalg"
)

// Table 1a rows as conformance cases (the poly(n) rows have their own
// test files).

func TestEulerianScheme(t *testing.T) {
	runSchemeCase(t, schemeCase{
		name:   "eulerian",
		scheme: Eulerian{},
		yes: []*core.Instance{
			core.NewInstance(graph.Cycle(7)),
			core.NewInstance(graph.Complete(5)),
			core.NewInstance(graph.Grid(1, 1)),
		},
		no: []*core.Instance{
			core.NewInstance(graph.Path(4)),
			core.NewInstance(graph.Petersen()),
		},
		maxBits: func(*core.Instance) int { return 0 },
	})
}

func TestLineGraphScheme(t *testing.T) {
	runSchemeCase(t, schemeCase{
		name:   "line-graph",
		scheme: LineGraph{},
		yes: []*core.Instance{
			core.NewInstance(graph.LineGraphOf(graph.Star(4))),
			core.NewInstance(graph.Cycle(9)),
			core.NewInstance(graph.LineGraphOf(graph.Petersen())),
		},
		no: []*core.Instance{
			core.NewInstance(graph.Star(3)),
			core.NewInstance(graph.CompleteBipartite(2, 3)),
		},
		maxBits: func(*core.Instance) int { return 0 },
	})
}

func TestBipartiteScheme(t *testing.T) {
	runSchemeCase(t, schemeCase{
		name:   "bipartite",
		scheme: Bipartite{},
		yes: []*core.Instance{
			core.NewInstance(graph.Cycle(8)),
			core.NewInstance(graph.CompleteBipartite(3, 4)),
			core.NewInstance(graph.Hypercube(4)),
			core.NewInstance(graph.RandomTree(20, 5)),
		},
		no: []*core.Instance{
			core.NewInstance(graph.Cycle(9)),
			core.NewInstance(graph.Petersen()),
			core.NewInstance(graph.Complete(4)),
		},
		maxBits: func(*core.Instance) int { return 1 },
	})
}

func TestEvenCycleScheme(t *testing.T) {
	runSchemeCase(t, schemeCase{
		name:   "even-cycle",
		scheme: EvenCycle{},
		yes: []*core.Instance{
			core.NewInstance(graph.Cycle(8)),
			core.NewInstance(graph.Cycle(14)),
		},
		no: []*core.Instance{
			core.NewInstance(graph.Cycle(9)),
			core.NewInstance(graph.Cycle(3)),
		},
		maxBits: func(*core.Instance) int { return 1 },
	})
}

func TestColorableScheme(t *testing.T) {
	runSchemeCase(t, schemeCase{
		name:   "chromatic-le-k",
		scheme: Colorable{},
		yes: []*core.Instance{
			withK(core.NewInstance(graph.Petersen()), 3),
			withK(core.NewInstance(graph.Complete(5)), 5),
			withK(core.NewInstance(graph.Cycle(7)), 3),
			withK(core.NewInstance(graph.Grid(3, 4)), 2),
		},
		no: []*core.Instance{
			withK(core.NewInstance(graph.Petersen()), 2),
			withK(core.NewInstance(graph.Complete(5)), 4),
			withK(core.NewInstance(graph.Wheel(5)), 3),
		},
		maxBits: func(in *core.Instance) int { return log2ceil(int(in.Global[GlobalK])) + 1 },
	})
}

func TestReachabilityScheme(t *testing.T) {
	grid := graph.Grid(4, 4)
	runSchemeCase(t, schemeCase{
		name:   "st-reachability",
		scheme: Reachability{},
		yes: []*core.Instance{
			stInstance(graph.Path(9), 1, 9),
			stInstance(grid, 1, 16),
			stInstance(graph.Cycle(10), 2, 7),
		},
		no: []*core.Instance{
			stInstance(graph.DisjointUnion(graph.Path(4), graph.Path(4).ShiftIDs(10)), 1, 11),
			stInstance(graph.DisjointUnion(graph.Cycle(5), graph.Cycle(5).ShiftIDs(10)), 3, 13),
		},
		maxBits: func(*core.Instance) int { return 1 },
	})
}

func TestUnreachabilitySchemeUndirected(t *testing.T) {
	runSchemeCase(t, schemeCase{
		name:   "st-unreachability-undirected",
		scheme: Unreachability{},
		yes: []*core.Instance{
			stInstance(graph.DisjointUnion(graph.Path(4), graph.Path(4).ShiftIDs(10)), 1, 11),
			stInstance(graph.DisjointUnion(graph.Cycle(5), graph.Star(3).ShiftIDs(10)), 3, 12),
		},
		no: []*core.Instance{
			stInstance(graph.Path(9), 1, 9),
			stInstance(graph.Cycle(10), 2, 7),
		},
		maxBits: func(*core.Instance) int { return 1 },
	})
}

func TestUnreachabilitySchemeDirected(t *testing.T) {
	// 1 -> 2 -> 3 and separately 4 -> 2: t=1 unreachable from s=4? 4->2->3...
	g := graph.NewBuilder(graph.Directed).
		AddEdge(1, 2).AddEdge(2, 3).AddEdge(4, 2).Graph()
	yes := stInstance(g, 3, 1) // from 3 nothing is reachable
	no := stInstance(g, 1, 3)  // 1 -> 2 -> 3
	runSchemeCase(t, schemeCase{
		name:    "st-unreachability-directed",
		scheme:  Unreachability{},
		yes:     []*core.Instance{yes},
		no:      []*core.Instance{no},
		maxBits: func(*core.Instance) int { return 1 },
	})
}

func TestUnreachabilityDirectedBackEdgeSubtlety(t *testing.T) {
	// The §4.1 remark: undirected path marking breaks in directed graphs,
	// but the S-partition works. Build a digraph where t can reach s but
	// not vice versa.
	g := graph.NewBuilder(graph.Directed).
		AddEdge(3, 2).AddEdge(2, 1).AddEdge(1, 4).Graph()
	in := stInstance(g, 4, 3) // 4 reaches nothing; 3 reaches everything
	p, _, err := core.ProveAndCheck(in, Unreachability{})
	if err != nil {
		t.Fatalf("directed unreachability: %v", err)
	}
	if p.Size() != 1 {
		t.Errorf("proof size %d, want 1", p.Size())
	}
}

func TestSpanningTreeScheme(t *testing.T) {
	g := graph.Cycle(8)
	tree := pathEdges(1, 2, 3, 4, 5, 6, 7, 8) // path = spanning tree of C8
	nonTree := pathEdges(1, 2, 3, 4, 5, 6, 7, 8, 1)
	twoComp := append(pathEdges(1, 2, 3, 4), pathEdges(5, 6, 7, 8)...)
	grid := graph.Grid(3, 3)
	gridTree := pathEdges(1, 2, 3, 6, 9, 8, 7, 4) // snake missing node 5
	gridTree = append(gridTree, graph.NormEdge(4, 5))
	runSchemeCase(t, schemeCase{
		name:                  "spanning-tree",
		skipRelabelProofReuse: true,
		scheme:                SpanningTree{},
		yes: []*core.Instance{
			markedInstance(g, tree...),
			markedInstance(grid, gridTree...),
		},
		no: []*core.Instance{
			markedInstance(g, nonTree...), // full cycle: not acyclic
			markedInstance(g, twoComp...), // two paths: not spanning
			markedInstance(g),             // nothing marked
		},
	})
}

func TestLeaderElectionScheme(t *testing.T) {
	runSchemeCase(t, schemeCase{
		name:                  "leader-election",
		skipRelabelProofReuse: true,
		scheme:                LeaderElection{},
		yes: []*core.Instance{
			leaderInstance(graph.Cycle(9), 4),
			leaderInstance(graph.RandomConnected(15, 0.2, 3), 11),
		},
		no: []*core.Instance{
			leaderInstance(graph.Cycle(9)),       // no leader
			leaderInstance(graph.Cycle(9), 2, 7), // two leaders
		},
	})
}

func TestForestScheme(t *testing.T) {
	runSchemeCase(t, schemeCase{
		name:                  "forest",
		skipRelabelProofReuse: true,
		scheme:                Forest{},
		yes: []*core.Instance{
			core.NewInstance(graph.RandomTree(12, 9)),
			core.NewInstance(graph.DisjointUnion(graph.Path(5), graph.Star(4).ShiftIDs(20))),
			core.NewInstance(graph.Path(1)),
		},
		no: []*core.Instance{
			core.NewInstance(graph.Cycle(6)),
			core.NewInstance(graph.DisjointUnion(graph.Path(5), graph.Cycle(3).ShiftIDs(20))),
		},
	})
}

func TestParityCountSchemes(t *testing.T) {
	runSchemeCase(t, schemeCase{
		name:                  "odd-n",
		skipRelabelProofReuse: true,
		scheme:                ParityCount{WantOdd: true},
		yes: []*core.Instance{
			core.NewInstance(graph.Cycle(9)),
			core.NewInstance(graph.RandomConnected(15, 0.2, 1)),
		},
		no: []*core.Instance{
			core.NewInstance(graph.Cycle(8)),
			core.NewInstance(graph.RandomConnected(16, 0.2, 2)),
		},
	})
	runSchemeCase(t, schemeCase{
		name:                  "even-n",
		skipRelabelProofReuse: true,
		scheme:                ParityCount{WantOdd: false},
		yes:                   []*core.Instance{core.NewInstance(graph.Cycle(8))},
		no:                    []*core.Instance{core.NewInstance(graph.Cycle(9))},
	})
}

func TestNonBipartiteScheme(t *testing.T) {
	runSchemeCase(t, schemeCase{
		name:                  "non-bipartite",
		skipRelabelProofReuse: true,
		scheme:                NonBipartite{},
		yes: []*core.Instance{
			core.NewInstance(graph.Cycle(9)),
			core.NewInstance(graph.Petersen()),
			core.NewInstance(graph.Complete(4)),
			core.NewInstance(graph.Wheel(6)),
		},
		no: []*core.Instance{
			core.NewInstance(graph.Cycle(8)),
			core.NewInstance(graph.CompleteBipartite(3, 3)),
			core.NewInstance(graph.RandomTree(10, 2)),
		},
	})
}

func TestMaximalMatchingScheme(t *testing.T) {
	g := graph.Path(6)
	runSchemeCase(t, schemeCase{
		name:   "maximal-matching",
		scheme: MaximalMatching{},
		yes: []*core.Instance{
			markedInstance(g, graph.NormEdge(2, 3), graph.NormEdge(4, 5)),
			markedInstance(graph.Cycle(7), graph.NormEdge(1, 2), graph.NormEdge(3, 4), graph.NormEdge(5, 6)),
		},
		no: []*core.Instance{
			markedInstance(g, graph.NormEdge(2, 3)),                       // 5-6 extendable
			markedInstance(g, graph.NormEdge(1, 2), graph.NormEdge(2, 3)), // not a matching
			markedInstance(g), // empty: extendable
		},
		maxBits: func(*core.Instance) int { return 0 },
	})
}

func TestLCLSchemes(t *testing.T) {
	g := graph.Cycle(6)
	mis := core.NewInstance(g)
	mis.SetNodeLabel(1, setLabel).SetNodeLabel(4, setLabel)
	badMIS := core.NewInstance(g)
	badMIS.SetNodeLabel(1, setLabel).SetNodeLabel(2, setLabel).SetNodeLabel(4, setLabel)
	sparseMIS := core.NewInstance(g)
	sparseMIS.SetNodeLabel(1, setLabel) // 3,4,5 undominated... 3 and 5? nbrs of 4: 3,5 unlabelled -> 4 undominated
	runSchemeCase(t, schemeCase{
		name:    "lcl-mis",
		scheme:  MISLCL(),
		yes:     []*core.Instance{mis},
		no:      []*core.Instance{badMIS, sparseMIS},
		maxBits: func(*core.Instance) int { return 0 },
	})

	col := core.NewInstance(graph.Cycle(4))
	col.SetNodeLabel(1, "a").SetNodeLabel(2, "b").SetNodeLabel(3, "a").SetNodeLabel(4, "b")
	badCol := core.NewInstance(graph.Cycle(4))
	badCol.SetNodeLabel(1, "a").SetNodeLabel(2, "a").SetNodeLabel(3, "b").SetNodeLabel(4, "b")
	runSchemeCase(t, schemeCase{
		name:    "lcl-coloring",
		scheme:  ColoringLCL(),
		yes:     []*core.Instance{col},
		no:      []*core.Instance{badCol},
		maxBits: func(*core.Instance) int { return 0 },
	})
}

func TestHamiltonianCycleCheckScheme(t *testing.T) {
	k5 := graph.Complete(5)
	ham := pathEdges(1, 2, 3, 4, 5, 1)
	twoCycles := append(pathEdges(1, 2, 3, 1), pathEdges(4, 5)...)
	k6 := graph.Complete(6)
	twoTriangles := append(pathEdges(1, 2, 3, 1), pathEdges(4, 5, 6, 4)...)
	runSchemeCase(t, schemeCase{
		name:                  "hamiltonian-cycle",
		skipRelabelProofReuse: true,
		scheme:                HamiltonianCycleCheck{},
		yes: []*core.Instance{
			markedInstance(k5, ham...),
			markedInstance(graph.Cycle(8), pathEdges(1, 2, 3, 4, 5, 6, 7, 8, 1)...),
		},
		no: []*core.Instance{
			markedInstance(k5, twoCycles...),
			markedInstance(k6, twoTriangles...), // the critical disjoint-cycles attack
			markedInstance(k5, pathEdges(1, 2, 3, 4, 5)...),
		},
	})
}

func TestHamiltonianPropertyScheme(t *testing.T) {
	runSchemeCase(t, schemeCase{
		name:                  "hamiltonian-property",
		skipRelabelProofReuse: true,
		scheme:                HamiltonianProperty{},
		yes: []*core.Instance{
			core.NewInstance(graph.Cycle(7)),
			core.NewInstance(graph.Complete(5)),
			core.NewInstance(graph.Hypercube(3)),
		},
		no: []*core.Instance{
			core.NewInstance(graph.Petersen()),
			core.NewInstance(graph.Star(4)),
			core.NewInstance(graph.Grid(3, 3)),
		},
	})
}

func TestMaxMatchingCycleScheme(t *testing.T) {
	c8max := pathEdges(1, 2)
	c8max = append(c8max, graph.NormEdge(3, 4), graph.NormEdge(5, 6), graph.NormEdge(7, 8))
	c9max := []graph.Edge{graph.NormEdge(1, 2), graph.NormEdge(3, 4), graph.NormEdge(5, 6), graph.NormEdge(7, 8)}
	c9small := []graph.Edge{graph.NormEdge(1, 2), graph.NormEdge(4, 5)}
	runSchemeCase(t, schemeCase{
		name:                  "max-matching-cycle",
		skipRelabelProofReuse: true,
		scheme:                MaxMatchingCycle{},
		yes: []*core.Instance{
			markedInstance(graph.Cycle(8), c8max...),
			markedInstance(graph.Cycle(9), c9max...),
		},
		no: []*core.Instance{
			markedInstance(graph.Cycle(9), c9small...), // 2 < 4 edges
			markedInstance(graph.Cycle(8)),             // empty
		},
	})
}

func TestComplementScheme(t *testing.T) {
	// co-Eulerian: "some node has odd degree", on connected graphs.
	co := Complement{Inner: Eulerian{}.Verifier(), InnerName: "eulerian"}
	runSchemeCase(t, schemeCase{
		name:                  "co-eulerian",
		skipRelabelProofReuse: true,
		scheme:                co,
		yes: []*core.Instance{
			core.NewInstance(graph.Path(5)),
			core.NewInstance(graph.Petersen()),
		},
		no: []*core.Instance{
			core.NewInstance(graph.Cycle(6)),
			core.NewInstance(graph.Complete(5)),
		},
	})
}

func TestSigma11Schemes(t *testing.T) {
	threeCol := ThreeColorableSigma11(func(g *graph.Graph) map[int]int {
		return graphalg.KColor(g, 3)
	})
	runSchemeCase(t, schemeCase{
		name:                  "sigma11-3col",
		skipRelabelProofReuse: true,
		scheme:                threeCol,
		yes: []*core.Instance{
			core.NewInstance(graph.Petersen()),
			core.NewInstance(graph.Cycle(7)),
		},
		no: []*core.Instance{
			core.NewInstance(graph.Complete(4)),
			core.NewInstance(graph.Wheel(5)),
		},
	})
	runSchemeCase(t, schemeCase{
		name:                  "sigma11-radius1",
		skipRelabelProofReuse: true,
		scheme:                DominatingWitnessSigma11(),
		yes: []*core.Instance{
			core.NewInstance(graph.Star(5)),
			core.NewInstance(graph.Wheel(6)),
			core.NewInstance(graph.Complete(4)),
		},
		no: []*core.Instance{
			core.NewInstance(graph.Cycle(6)),
			core.NewInstance(graph.Path(4)),
		},
	})
	runSchemeCase(t, schemeCase{
		name:                  "sigma11-independent",
		skipRelabelProofReuse: true,
		scheme:                IndependentSetOfTrianglesSigma11(),
		yes: []*core.Instance{
			core.NewInstance(graph.Cycle(5)),
			core.NewInstance(graph.Complete(3)),
		},
		// Property is satisfiable on every non-empty graph, so there are
		// no no-instances; the conformance value is completeness +
		// adversarial rejection of malformed proofs, which the yes-side
		// random-tamper checks below cover.
	})
}

func TestSigma11BruteForceProverAgrees(t *testing.T) {
	// The exhaustive fallback must find the same yes/no answers as the
	// targeted prover on tiny instances.
	targeted := ThreeColorableSigma11(func(g *graph.Graph) map[int]int {
		return graphalg.KColor(g, 3)
	})
	brute := targeted
	brute.FindWitness = nil
	brute.BruteForceLimit = 15
	for _, g := range []*graph.Graph{graph.Cycle(4), graph.Complete(4), graph.Path(5)} {
		in := core.NewInstance(g)
		_, errT := targeted.Prove(in)
		_, errB := brute.Prove(in)
		if (errT == nil) != (errB == nil) {
			t.Errorf("%v: targeted err=%v, brute err=%v", g, errT, errB)
		}
	}
}
