package graph

import "lcp/internal/bitstr"

// Test-only bridges to the bitstr package, keeping the main tests free of
// extra imports.

func FromBitsHelper(bits []byte) bitstr.String { return bitstr.FromBits(bits) }

func ParseHelper(s string) bitstr.String { return bitstr.Parse(s) }
