package graph

import (
	"fmt"
	"slices"
)

// Trusted bulk constructors for the scale tier. Builder pays a node map
// and an edge map per graph to dedup untrusted input; at n=10^5–10^6
// that dominates construction. Generators and loaders that can vouch for
// their edges (or accept a single sort+dedup pass over a flat slice)
// build the CSR arrays directly through these instead.

// FromSortedEdges assembles a graph from a trusted edge list: sorted by
// (U, V), deduplicated, self-loop-free, with positive identifiers, and
// normalized U < V for undirected kinds. ids, when non-nil, is the
// strictly ascending node identifier list and must cover every endpoint
// (extra entries add isolated nodes); when nil, the identifier list is
// derived from the endpoints. The Graph takes ownership of both slices.
// Invariants are the caller's responsibility — use FromEdges for input
// that still needs normalizing, Builder for incremental construction.
func FromSortedEdges(kind Kind, ids []int, edges []Edge) *Graph {
	if ids == nil {
		ids = endpointIDs(edges)
	}
	return assemble(kind, ids, edges)
}

// FromEdges assembles a graph from an edge list in any order, possibly
// with duplicates: it normalizes (for undirected kinds), sorts, and
// dedups the slice in place, then builds the CSR arrays directly — one
// O(m log m) pass instead of Builder's per-edge map insertions. Node
// identifiers must be positive and edges self-loop-free (it panics
// otherwise, like Builder); nodes lists extra identifiers to include as
// isolated nodes (nil is fine, duplicates are allowed). The Graph takes
// ownership of both slices.
func FromEdges(kind Kind, nodes []int, edges []Edge) *Graph {
	if kind != Directed {
		kind = Undirected
	}
	for i, e := range edges {
		if e.U == e.V {
			panic(fmt.Sprintf("graph: self-loop at node %d", e.U))
		}
		if e.U <= 0 || e.V <= 0 {
			panic(fmt.Sprintf("graph: node identifier %d is not positive", min(e.U, e.V)))
		}
		if kind != Directed {
			edges[i] = NormEdge(e.U, e.V)
		}
	}
	sortEdges(edges)
	edges = slices.Compact(edges)
	ids := endpointIDs(edges)
	if len(nodes) > 0 {
		for _, id := range nodes {
			if id <= 0 {
				panic(fmt.Sprintf("graph: node identifier %d is not positive", id))
			}
		}
		ids = append(ids, nodes...)
		slices.Sort(ids)
		ids = slices.Compact(ids)
	}
	return assemble(kind, ids, edges)
}

// endpointIDs derives the sorted, deduplicated identifier list from the
// edge endpoints.
func endpointIDs(edges []Edge) []int {
	ids := make([]int, 0, 2*len(edges))
	for _, e := range edges {
		ids = append(ids, e.U, e.V)
	}
	slices.Sort(ids)
	return slices.Compact(ids)
}

// FromCSR assembles a graph over the dense identifiers 1..n directly
// from its compressed-sparse-row adjacency: targets[offsets[i]:
// offsets[i+1]] are the neighbour identifiers of node i+1, each row
// ascending. For undirected kinds every edge must appear in both
// endpoint rows (so len(targets) is 2m); for directed kinds targets is
// the out-adjacency and the in-adjacency is derived by a counting
// transpose. This is the zero-copy trusted constructor: the Graph takes
// ownership of offsets and targets and performs no validation beyond
// shape checks.
func FromCSR(kind Kind, n int, offsets []int32, targets []int) *Graph {
	if kind != Directed {
		kind = Undirected
	}
	if len(offsets) != n+1 {
		panic(fmt.Sprintf("graph: FromCSR needs %d offsets, got %d", n+1, len(offsets)))
	}
	if n > 0 && int(offsets[n]) != len(targets) {
		panic(fmt.Sprintf("graph: FromCSR offsets end at %d, targets has %d", offsets[n], len(targets)))
	}
	checkCSRBounds(len(targets))
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i + 1
	}
	g := &Graph{kind: kind, ids: ids, off: offsets, adj: targets}
	g.dense = n > 0
	if kind != Directed {
		g.m = len(targets) / 2
		return g
	}
	g.m = len(targets)
	g.inOff = make([]int32, n+1)
	for _, v := range targets {
		g.inOff[v]++ // v's index is v-1; count into slot v = (v-1)+1
	}
	for i := 0; i < n; i++ {
		g.inOff[i+1] += g.inOff[i]
	}
	g.inAdj = make([]int, len(targets))
	cur := make([]int32, n)
	for i := 0; i < n; i++ {
		u := i + 1
		for _, v := range g.row(i) {
			iv := v - 1
			g.inAdj[g.inOff[iv]+cur[iv]] = u
			cur[iv]++
		}
	}
	return g
}
