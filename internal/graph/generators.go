package graph

import (
	"fmt"
	"math/rand"
)

// Generators for the graph families used throughout the paper's catalogue:
// cycles, paths, trees, bipartite graphs, planar grids, and random graphs.
// All generators are deterministic given their arguments (random ones take
// an explicit seed), so experiments are reproducible.

// Path returns the path 1–2–…–n.
func Path(n int) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("graph: Path(%d)", n))
	}
	b := NewBuilder(Undirected)
	b.AddNode(1)
	for i := 2; i <= n; i++ {
		b.AddEdge(i-1, i)
	}
	return b.Graph()
}

// Cycle returns the cycle 1–2–…–n–1. It requires n ≥ 3 (simple graphs).
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: Cycle(%d): need n ≥ 3", n))
	}
	b := NewBuilder(Undirected)
	for i := 1; i <= n; i++ {
		b.AddEdge(i, i%n+1)
	}
	return b.Graph()
}

// CycleOf returns the cycle visiting the given identifiers in order.
func CycleOf(ids ...int) *Graph {
	if len(ids) < 3 {
		panic("graph: CycleOf needs ≥ 3 nodes")
	}
	b := NewBuilder(Undirected)
	for i := range ids {
		b.AddEdge(ids[i], ids[(i+1)%len(ids)])
	}
	return b.Graph()
}

// Complete returns the complete graph K_n on identifiers 1..n.
func Complete(n int) *Graph {
	b := NewBuilder(Undirected)
	for i := 1; i <= n; i++ {
		b.AddNode(i)
		for j := i + 1; j <= n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Graph()
}

// CompleteBipartite returns K_{a,b} with left part 1..a and right part
// a+1..a+b.
func CompleteBipartite(a, b int) *Graph {
	bld := NewBuilder(Undirected)
	for i := 1; i <= a; i++ {
		bld.AddNode(i)
	}
	for j := a + 1; j <= a+b; j++ {
		bld.AddNode(j)
	}
	for i := 1; i <= a; i++ {
		for j := a + 1; j <= a+b; j++ {
			bld.AddEdge(i, j)
		}
	}
	return bld.Graph()
}

// Star returns the star K_{1,n}: center 1 with leaves 2..n+1.
func Star(n int) *Graph {
	b := NewBuilder(Undirected)
	b.AddNode(1)
	for i := 2; i <= n+1; i++ {
		b.AddEdge(1, i)
	}
	return b.Graph()
}

// Wheel returns the wheel W_n: an n-cycle 2..n+1 plus a hub 1 adjacent to
// every cycle node. Requires n ≥ 3.
func Wheel(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: Wheel(%d)", n))
	}
	b := NewBuilder(Undirected)
	for i := 0; i < n; i++ {
		u := 2 + i
		v := 2 + (i+1)%n
		b.AddEdge(u, v)
		b.AddEdge(1, u)
	}
	return b.Graph()
}

// Grid returns the rows×cols planar grid; node (r, c) has identifier
// r*cols + c + 1 for 0-based r, c. Grids are our stand-in planar family
// for the planar connectivity scheme (§4.2).
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("graph: Grid(%d,%d)", rows, cols))
	}
	b := NewBuilder(Undirected)
	id := func(r, c int) int { return r*cols + c + 1 }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddNode(id(r, c))
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
		}
	}
	return b.Graph()
}

// Hypercube returns the d-dimensional hypercube Q_d on 2^d nodes with
// identifiers 1..2^d (node i+1 corresponds to bit pattern i).
func Hypercube(d int) *Graph {
	if d < 0 || d > 20 {
		panic(fmt.Sprintf("graph: Hypercube(%d)", d))
	}
	b := NewBuilder(Undirected)
	n := 1 << uint(d)
	b.AddNode(1)
	for i := 0; i < n; i++ {
		for bit := 0; bit < d; bit++ {
			j := i ^ (1 << uint(bit))
			if i < j {
				b.AddEdge(i+1, j+1)
			}
		}
	}
	return b.Graph()
}

// Petersen returns the Petersen graph (outer cycle 1..5, inner pentagram
// 6..10). It is 3-regular, non-planar, non-bipartite and symmetric — a
// useful all-purpose test subject.
func Petersen() *Graph {
	b := NewBuilder(Undirected)
	for i := 0; i < 5; i++ {
		b.AddEdge(1+i, 1+(i+1)%5) // outer cycle
		b.AddEdge(6+i, 6+(i+2)%5) // inner pentagram
		b.AddEdge(1+i, 6+i)       // spokes
	}
	return b.Graph()
}

// RandomTree returns a uniformly random labelled tree on 1..n via a random
// Prüfer sequence.
func RandomTree(n int, seed int64) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("graph: RandomTree(%d)", n))
	}
	b := NewBuilder(Undirected)
	if n == 1 {
		b.AddNode(1)
		return b.Graph()
	}
	if n == 2 {
		b.AddEdge(1, 2)
		return b.Graph()
	}
	rng := rand.New(rand.NewSource(seed))
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = rng.Intn(n) + 1
	}
	degree := make([]int, n+1)
	for i := 1; i <= n; i++ {
		degree[i] = 1
	}
	for _, v := range prufer {
		degree[v]++
	}
	// Standard Prüfer decoding with a pointer-and-leaf scan.
	ptr := 1
	for degree[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, v := range prufer {
		b.AddEdge(leaf, v)
		degree[v]--
		if degree[v] == 1 && v < ptr {
			leaf = v
		} else {
			ptr++
			for degree[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	b.AddEdge(leaf, n)
	return b.Graph()
}

// RandomGNP returns an Erdős–Rényi G(n, p) graph on 1..n.
func RandomGNP(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(Undirected)
	for i := 1; i <= n; i++ {
		b.AddNode(i)
	}
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			if rng.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Graph()
}

// RandomConnected returns a connected random graph on 1..n: a random
// spanning tree plus each remaining edge independently with probability p.
func RandomConnected(n int, p float64, seed int64) *Graph {
	tree := RandomTree(n, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	b := NewBuilder(Undirected)
	for _, id := range tree.Nodes() {
		b.AddNode(id)
	}
	for _, e := range tree.Edges() {
		b.AddEdge(e.U, e.V)
	}
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			if !tree.HasEdge(i, j) && rng.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Graph()
}

// RandomBipartite returns a random bipartite graph with left part 1..a,
// right part a+1..a+b, and each cross edge present with probability p.
func RandomBipartite(a, b int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	bld := NewBuilder(Undirected)
	for i := 1; i <= a+b; i++ {
		bld.AddNode(i)
	}
	for i := 1; i <= a; i++ {
		for j := a + 1; j <= a+b; j++ {
			if rng.Float64() < p {
				bld.AddEdge(i, j)
			}
		}
	}
	return bld.Graph()
}

// LineGraphOf returns the line graph L(g): one node per edge of g, with
// two nodes adjacent iff the corresponding edges share an endpoint. Node
// identifiers are 1..m in the order of g.Edges().
func LineGraphOf(g *Graph) *Graph {
	edges := g.Edges()
	b := NewBuilder(Undirected)
	for i := range edges {
		b.AddNode(i + 1)
	}
	for i := range edges {
		for j := i + 1; j < len(edges); j++ {
			a, c := edges[i], edges[j]
			if a.U == c.U || a.U == c.V || a.V == c.U || a.V == c.V {
				b.AddEdge(i+1, j+1)
			}
		}
	}
	return b.Graph()
}

// RandomPermutationIDs returns a relabeling of g by a random permutation
// of fresh identifiers in 1..max(4n, maxID). Used by isomorphism-
// invariance property tests.
func RandomPermutationIDs(g *Graph, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	space := 4 * g.N()
	if g.MaxID() > space {
		space = g.MaxID()
	}
	perm := rng.Perm(space)
	m := make(map[int]int, g.N())
	for i, id := range g.Nodes() {
		m[id] = perm[i] + 1
	}
	return g.Relabel(m)
}
