package graph

import (
	"fmt"
	"math/rand"
)

// Generators for the graph families used throughout the paper's catalogue:
// cycles, paths, trees, bipartite graphs, planar grids, and random graphs.
// All generators are deterministic given their arguments (random ones take
// an explicit seed), so experiments are reproducible. Degenerate sizes
// (n = 0, 1, 2) degrade gracefully — the empty graph, a single node, a
// single edge — instead of panicking, so sweeps over size grids need no
// special-casing at the bottom. Families with a hard structural minimum
// document what the degenerate result is.
//
// The bulk generators assemble a flat edge slice and freeze it through
// FromEdges/FromSortedEdges instead of a Builder, skipping the node and
// edge maps entirely; see scale.go for the n=10^5–10^6 tier.

// denseIDs returns the identifier list 1..n.
func denseIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i + 1
	}
	return ids
}

// Path returns the path 1–2–…–n. Path(0) is the empty graph.
func Path(n int) *Graph {
	if n <= 0 {
		return &Graph{}
	}
	edges := make([]Edge, 0, n-1)
	for i := 2; i <= n; i++ {
		edges = append(edges, Edge{U: i - 1, V: i})
	}
	return FromSortedEdges(Undirected, denseIDs(n), edges)
}

// Cycle returns the cycle 1–2–…–n–1 for n ≥ 3. Smaller sizes degrade to
// Path(n): simple graphs have no 1- or 2-cycles.
func Cycle(n int) *Graph {
	if n < 3 {
		return Path(n)
	}
	edges := make([]Edge, 0, n)
	edges = append(edges, Edge{U: 1, V: 2}, Edge{U: 1, V: n})
	for i := 2; i < n; i++ {
		edges = append(edges, Edge{U: i, V: i + 1})
	}
	return FromSortedEdges(Undirected, denseIDs(n), edges)
}

// CycleOf returns the cycle visiting the given identifiers in order.
// Fewer than 3 identifiers degrade to the path over them.
func CycleOf(ids ...int) *Graph {
	b := NewBuilder(Undirected)
	if len(ids) == 0 {
		return b.Graph()
	}
	if len(ids) <= 2 {
		b.AddNode(ids[0])
		if len(ids) == 2 {
			b.AddEdge(ids[0], ids[1])
		}
		return b.Graph()
	}
	for i := range ids {
		b.AddEdge(ids[i], ids[(i+1)%len(ids)])
	}
	return b.Graph()
}

// Complete returns the complete graph K_n on identifiers 1..n.
func Complete(n int) *Graph {
	if n <= 0 {
		return &Graph{}
	}
	edges := make([]Edge, 0, n*(n-1)/2)
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			edges = append(edges, Edge{U: i, V: j})
		}
	}
	return FromSortedEdges(Undirected, denseIDs(n), edges)
}

// CompleteBipartite returns K_{a,b} with left part 1..a and right part
// a+1..a+b.
func CompleteBipartite(a, b int) *Graph {
	if a < 0 {
		a = 0
	}
	if b < 0 {
		b = 0
	}
	if a+b == 0 {
		return &Graph{}
	}
	edges := make([]Edge, 0, a*b)
	for i := 1; i <= a; i++ {
		for j := a + 1; j <= a+b; j++ {
			edges = append(edges, Edge{U: i, V: j})
		}
	}
	return FromSortedEdges(Undirected, denseIDs(a+b), edges)
}

// Star returns the star K_{1,n}: center 1 with leaves 2..n+1.
func Star(n int) *Graph {
	if n < 0 {
		n = 0
	}
	edges := make([]Edge, 0, n)
	for i := 2; i <= n+1; i++ {
		edges = append(edges, Edge{U: 1, V: i})
	}
	return FromSortedEdges(Undirected, denseIDs(n+1), edges)
}

// Wheel returns the wheel W_n for n ≥ 3: an n-cycle 2..n+1 plus a hub 1
// adjacent to every cycle node. Smaller n degrade to Star(n) — a rim of
// fewer than 3 nodes has no simple cycle.
func Wheel(n int) *Graph {
	if n < 3 {
		return Star(n)
	}
	b := NewBuilder(Undirected)
	for i := 0; i < n; i++ {
		u := 2 + i
		v := 2 + (i+1)%n
		b.AddEdge(u, v)
		b.AddEdge(1, u)
	}
	return b.Graph()
}

// Grid returns the rows×cols planar grid; node (r, c) has identifier
// r*cols + c + 1 for 0-based r, c. Grids are our stand-in planar family
// for the planar connectivity scheme (§4.2). A non-positive dimension
// yields the empty graph.
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		return &Graph{}
	}
	id := func(r, c int) int { return r*cols + c + 1 }
	edges := make([]Edge, 0, 2*rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, Edge{U: id(r, c), V: id(r+1, c)})
			}
		}
	}
	return FromSortedEdges(Undirected, denseIDs(rows*cols), edges)
}

// Hypercube returns the d-dimensional hypercube Q_d on 2^d nodes with
// identifiers 1..2^d (node i+1 corresponds to bit pattern i). Negative d
// yields the empty graph.
func Hypercube(d int) *Graph {
	if d < 0 {
		return &Graph{}
	}
	if d > 20 {
		panic(fmt.Sprintf("graph: Hypercube(%d)", d))
	}
	n := 1 << uint(d)
	edges := make([]Edge, 0, n*d/2)
	for i := 0; i < n; i++ {
		for bit := 0; bit < d; bit++ {
			j := i ^ (1 << uint(bit))
			if i < j {
				edges = append(edges, Edge{U: i + 1, V: j + 1})
			}
		}
	}
	return FromEdges(Undirected, denseIDs(n), edges)
}

// Petersen returns the Petersen graph (outer cycle 1..5, inner pentagram
// 6..10). It is 3-regular, non-planar, non-bipartite and symmetric — a
// useful all-purpose test subject.
func Petersen() *Graph {
	b := NewBuilder(Undirected)
	for i := 0; i < 5; i++ {
		b.AddEdge(1+i, 1+(i+1)%5) // outer cycle
		b.AddEdge(6+i, 6+(i+2)%5) // inner pentagram
		b.AddEdge(1+i, 6+i)       // spokes
	}
	return b.Graph()
}

// RandomTree returns a uniformly random labelled tree on 1..n via a random
// Prüfer sequence. RandomTree(0) is the empty graph.
func RandomTree(n int, seed int64) *Graph {
	if n <= 0 {
		return &Graph{}
	}
	if n == 1 {
		return FromSortedEdges(Undirected, denseIDs(1), nil)
	}
	if n == 2 {
		return FromSortedEdges(Undirected, denseIDs(2), []Edge{{U: 1, V: 2}})
	}
	rng := rand.New(rand.NewSource(seed))
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = rng.Intn(n) + 1
	}
	degree := make([]int, n+1)
	for i := 1; i <= n; i++ {
		degree[i] = 1
	}
	for _, v := range prufer {
		degree[v]++
	}
	edges := make([]Edge, 0, n-1)
	// Standard Prüfer decoding with a pointer-and-leaf scan.
	ptr := 1
	for degree[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, v := range prufer {
		edges = append(edges, NormEdge(leaf, v))
		degree[v]--
		if degree[v] == 1 && v < ptr {
			leaf = v
		} else {
			ptr++
			for degree[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	edges = append(edges, NormEdge(leaf, n))
	return FromEdges(Undirected, denseIDs(n), edges)
}

// RandomGNP returns an Erdős–Rényi G(n, p) graph on 1..n.
func RandomGNP(n int, p float64, seed int64) *Graph {
	if n <= 0 {
		return &Graph{}
	}
	rng := rand.New(rand.NewSource(seed))
	var edges []Edge
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			if rng.Float64() < p {
				edges = append(edges, Edge{U: i, V: j})
			}
		}
	}
	return FromSortedEdges(Undirected, denseIDs(n), edges)
}

// RandomConnected returns a connected random graph on 1..n: a random
// spanning tree plus each remaining edge independently with probability p.
func RandomConnected(n int, p float64, seed int64) *Graph {
	tree := RandomTree(n, seed)
	if n <= 1 {
		return tree
	}
	rng := rand.New(rand.NewSource(seed + 1))
	edges := tree.Edges()
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			if !tree.HasEdge(i, j) && rng.Float64() < p {
				edges = append(edges, Edge{U: i, V: j})
			}
		}
	}
	return FromEdges(Undirected, denseIDs(n), edges)
}

// RandomBipartite returns a random bipartite graph with left part 1..a,
// right part a+1..a+b, and each cross edge present with probability p.
func RandomBipartite(a, b int, p float64, seed int64) *Graph {
	if a < 0 {
		a = 0
	}
	if b < 0 {
		b = 0
	}
	if a+b == 0 {
		return &Graph{}
	}
	rng := rand.New(rand.NewSource(seed))
	var edges []Edge
	for i := 1; i <= a; i++ {
		for j := a + 1; j <= a+b; j++ {
			if rng.Float64() < p {
				edges = append(edges, Edge{U: i, V: j})
			}
		}
	}
	return FromSortedEdges(Undirected, denseIDs(a+b), edges)
}

// LineGraphOf returns the line graph L(g): one node per edge of g, with
// two nodes adjacent iff the corresponding edges share an endpoint. Node
// identifiers are 1..m in the order of g.Edges().
func LineGraphOf(g *Graph) *Graph {
	edges := g.Edges()
	var ledges []Edge
	for i := range edges {
		for j := i + 1; j < len(edges); j++ {
			a, c := edges[i], edges[j]
			if a.U == c.U || a.U == c.V || a.V == c.U || a.V == c.V {
				ledges = append(ledges, Edge{U: i + 1, V: j + 1})
			}
		}
	}
	return FromSortedEdges(Undirected, denseIDs(len(edges)), ledges)
}

// RandomPermutationIDs returns a relabeling of g by a random permutation
// of fresh identifiers in 1..max(4n, maxID). Used by isomorphism-
// invariance property tests.
func RandomPermutationIDs(g *Graph, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	space := 4 * g.N()
	if g.MaxID() > space {
		space = g.MaxID()
	}
	perm := rng.Perm(space)
	m := make(map[int]int, g.N())
	for i, id := range g.Nodes() {
		m[id] = perm[i] + 1
	}
	return g.Relabel(m)
}
