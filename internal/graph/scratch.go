package graph

import (
	"fmt"
	"slices"
	"sync"
)

// The ball/view hot paths (one BFS per node per view construction) used
// to allocate a fresh map[int]int per call. At the scale tier (n=10^5 to
// 10^6 nodes) that map churn dominates the runtime, so the BFS
// bookkeeping now lives in a pooled, epoch-stamped scratch: flat []int32
// distance and stamp arrays indexed by node position, where an entry is
// visited iff its stamp equals the scratch's current epoch. Reusing a
// scratch costs one epoch increment instead of O(n) clearing, and the
// pool makes every ball construction allocation-free except for the
// result itself.

// scratch is the reusable BFS workspace. All arrays are indexed by node
// position (Graph.Index order); queue doubles as the output order.
type scratch struct {
	stamp []uint32 // visited iff stamp[i] == epoch
	dist  []int32  // BFS distance, valid iff stamped
	queue []int32  // BFS queue of node positions, in visit order
	epoch uint32
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// getScratch draws a scratch sized for n nodes and opens a fresh epoch.
func getScratch(n int) *scratch {
	//lint:ignore poolput ownership transfer: the caller returns the scratch via putScratch (deferred at every call site)
	s := scratchPool.Get().(*scratch)
	if cap(s.stamp) < n {
		s.stamp = make([]uint32, n)
		s.dist = make([]int32, n)
		s.epoch = 0
	} else {
		s.stamp = s.stamp[:n]
		s.dist = s.dist[:n]
	}
	s.epoch++
	if s.epoch == 0 {
		// Epoch wrapped around: older stamps could now collide, so pay
		// the one-off clear and restart at 1.
		clear(s.stamp)
		s.epoch = 1
	}
	s.queue = s.queue[:0]
	return s
}

func putScratch(s *scratch) { scratchPool.Put(s) }

// ballBFS floods outward from node position ci up to the given radius,
// stamping every reached position and recording its distance. On return
// s.queue holds the ball's positions in BFS order. Distances follow
// undirected reachability even in directed graphs, because the LOCAL
// model's communication graph is the underlying undirected graph.
func (g *Graph) ballBFS(ci int, radius int, s *scratch) {
	s.stamp[ci] = s.epoch
	s.dist[ci] = 0
	s.queue = append(s.queue, int32(ci))
	if radius <= 0 {
		return
	}
	visit := func(v int, d int32) {
		if i, ok := g.lookup(v); ok && s.stamp[i] != s.epoch {
			s.stamp[i] = s.epoch
			s.dist[i] = d
			s.queue = append(s.queue, int32(i))
		}
	}
	for head := 0; head < len(s.queue); head++ {
		ui := int(s.queue[head])
		d := s.dist[ui]
		if int(d) >= radius {
			// BFS visits in distance order; once the frontier reaches
			// the radius every later entry is at the radius too.
			break
		}
		for _, v := range g.row(ui) {
			visit(v, d+1)
		}
		if g.kind == Directed {
			for _, v := range g.inRow(ui) {
				visit(v, d+1)
			}
		}
	}
}

// BallAround returns the set of nodes within distance radius of center
// (V[v,r] in the paper) along with their distances from the center.
// Distances follow undirected reachability even in directed graphs. The
// BFS runs on the pooled epoch scratch; the only allocations are the
// returned slice and the exactly-sized distance map.
func (g *Graph) BallAround(center int, radius int) (nodes []int, dist map[int]int) {
	s := getScratch(len(g.ids))
	defer putScratch(s)
	g.ballBFS(g.mustIndex(center), radius, s)
	nodes = make([]int, len(s.queue))
	dist = make(map[int]int, len(s.queue))
	for j, i := range s.queue {
		id := g.ids[i]
		nodes[j] = id
		dist[id] = int(s.dist[i])
	}
	slices.Sort(nodes)
	return nodes, dist
}

// AppendBallIDs appends the identifiers within distance radius of center
// to dst and returns the extended slice, sorted ascending. It is the
// map-free variant of BallAround for callers that only need the
// membership — with a reused dst, repeated calls do not allocate beyond
// slice growth.
func (g *Graph) AppendBallIDs(dst []int, center, radius int) []int {
	s := getScratch(len(g.ids))
	defer putScratch(s)
	g.ballBFS(g.mustIndex(center), radius, s)
	base := len(dst)
	for _, i := range s.queue {
		dst = append(dst, g.ids[i])
	}
	slices.Sort(dst[base:])
	return dst
}

// InducedBall builds the radius-r ball around center together with its
// induced subgraph G[v,r] in one pass: the BFS and the subgraph assembly
// share the same stamped scratch, so constructing a view costs two scans
// of the ball's adjacency rows and no intermediate maps. nodes is sorted
// ascending and aliases ball.Nodes(); dist carries the distance of every
// ball member from center.
//
// This is what core.BuildView (and through it the engine's skeleton
// builder) runs per node; BallAround followed by Induced gives the same
// ball and graph at roughly twice the traversal cost plus the map churn.
func (g *Graph) InducedBall(center, radius int) (ball *Graph, nodes []int, dist map[int]int) {
	s := getScratch(len(g.ids))
	defer putScratch(s)
	g.ballBFS(g.mustIndex(center), radius, s)
	idxs := s.queue
	slices.Sort(idxs)
	nodes = make([]int, len(idxs))
	dist = make(map[int]int, len(idxs))
	for j, i := range idxs {
		id := g.ids[i]
		nodes[j] = id
		dist[id] = int(s.dist[i])
	}
	ball = g.inducedFromStamped(nodes, idxs, s)
	return ball, nodes, dist
}

// checkCSRBounds guards the int32 offset representation: a graph would
// need more than 2^31-1 adjacency slots to overflow it, far past the
// scale tier's footprint, but trusted constructors still refuse rather
// than corrupt.
func checkCSRBounds(slots int) {
	if slots > int(int32(^uint32(0)>>1)) {
		panic(fmt.Sprintf("graph: adjacency of %d slots overflows the CSR offsets", slots))
	}
}
