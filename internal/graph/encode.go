package graph

import (
	"fmt"
	"sort"

	"lcp/internal/bitstr"
)

// Binary encodings of whole graphs. The O(n²)-bit certificate of §6 ("we
// can encode the structure of G and the unique node identifiers in O(n²)
// bits") and the Θ(n)-bit tree certificate of §6.2 are implemented here.

const (
	encN       = 24 // bits for the node count
	encIDWidth = 6  // bits holding the per-identifier width
)

// Encode serializes g — identifiers and structure — into a bit string of
// O(n² + n·log(maxID)) bits. The encoding is canonical for labelled
// graphs: Equal graphs encode identically.
func Encode(g *Graph) bitstr.String {
	var w bitstr.Writer
	n := g.N()
	w.WriteBit(g.Directed())
	w.WriteUint(uint64(n), encN)
	idw := bitstr.WidthFor(uint64(g.MaxID()))
	w.WriteUint(uint64(idw), encIDWidth)
	for _, id := range g.Nodes() {
		w.WriteUint(uint64(id), idw)
	}
	nodes := g.Nodes()
	if g.Directed() {
		for _, u := range nodes {
			for _, v := range nodes {
				w.WriteBit(u != v && g.HasEdge(u, v))
			}
		}
	} else {
		for i, u := range nodes {
			for _, v := range nodes[i+1:] {
				w.WriteBit(g.HasEdge(u, v))
			}
		}
	}
	return w.String()
}

// Decode reverses Encode. It returns an error on any malformed input:
// verifiers must reject adversarial certificates gracefully.
func Decode(s bitstr.String) (*Graph, error) {
	r := bitstr.NewReader(s)
	directed := r.ReadBit()
	n := int(r.ReadUint(encN))
	idw := int(r.ReadUint(encIDWidth))
	if r.Err() || idw > 64 {
		return nil, fmt.Errorf("graph: malformed encoding header")
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = int(r.ReadUint(idw))
	}
	if r.Err() {
		return nil, fmt.Errorf("graph: truncated identifier table")
	}
	kind := Undirected
	if directed {
		kind = Directed
	}
	b := NewBuilder(kind)
	for i, id := range ids {
		if id <= 0 {
			return nil, fmt.Errorf("graph: non-positive identifier %d in encoding", id)
		}
		if i > 0 && ids[i-1] >= id {
			return nil, fmt.Errorf("graph: identifier table not strictly ascending")
		}
		b.AddNode(id)
	}
	if directed {
		for _, u := range ids {
			for _, v := range ids {
				bit := r.ReadBit()
				if bit && u == v {
					return nil, fmt.Errorf("graph: self-loop bit set for node %d", u)
				}
				if bit {
					b.AddEdge(u, v)
				}
			}
		}
	} else {
		for i, u := range ids {
			for _, v := range ids[i+1:] {
				if r.ReadBit() {
					b.AddEdge(u, v)
				}
			}
		}
	}
	if r.Err() {
		return nil, fmt.Errorf("graph: truncated adjacency matrix")
	}
	if !r.AtEnd() {
		return nil, fmt.Errorf("graph: %d trailing bits in encoding", r.Remaining())
	}
	return b.Graph(), nil
}

// TreeEncoding is the Θ(n)-bit structural certificate of a rooted tree
// used by the fixpoint-free symmetry scheme (§6.2). Shape holds a balanced
// parentheses walk (2n bits); Preorder maps each node identifier to its
// DFS preorder index, which is how individual proof labels point into the
// shared structure.
type TreeEncoding struct {
	Shape    bitstr.String
	Preorder map[int]int
}

// EncodeTree serializes the tree g rooted at root. Children are visited in
// ascending identifier order, so the encoding is deterministic. It panics
// if g is not a tree containing root (callers validate with graphalg).
func EncodeTree(g *Graph, root int) TreeEncoding {
	if g.M() != g.N()-1 {
		panic(fmt.Sprintf("graph: EncodeTree on non-tree (n=%d, m=%d)", g.N(), g.M()))
	}
	var w bitstr.Writer
	pre := make(map[int]int, g.N())
	next := 0
	var dfs func(v, parent int)
	dfs = func(v, parent int) {
		pre[v] = next
		next++
		w.WriteBit(true) // open
		for _, u := range g.Neighbors(v) {
			if u != parent {
				dfs(u, v)
			}
		}
		w.WriteBit(false) // close
	}
	dfs(root, 0)
	if next != g.N() {
		panic("graph: EncodeTree on disconnected forest")
	}
	return TreeEncoding{Shape: w.String(), Preorder: pre}
}

// DecodeTreeShape rebuilds an abstract tree from a balanced-parentheses
// walk. The result maps each preorder index to the preorder indices of its
// children; index 0 is the root. It returns an error on malformed walks.
func DecodeTreeShape(shape bitstr.String) (children [][]int, err error) {
	r := bitstr.NewReader(shape)
	if shape.Len() == 0 || shape.Len()%2 != 0 {
		return nil, fmt.Errorf("graph: parentheses walk of odd or zero length %d", shape.Len())
	}
	n := shape.Len() / 2
	children = make([][]int, n)
	var stack []int
	next := 0
	for i := 0; i < shape.Len(); i++ {
		if r.ReadBit() {
			if next >= n {
				return nil, fmt.Errorf("graph: too many opens in parentheses walk")
			}
			if len(stack) > 0 {
				p := stack[len(stack)-1]
				children[p] = append(children[p], next)
			} else if next != 0 {
				return nil, fmt.Errorf("graph: forest walk (second root at %d)", next)
			}
			stack = append(stack, next)
			next++
		} else {
			if len(stack) == 0 {
				return nil, fmt.Errorf("graph: unbalanced close at bit %d", i)
			}
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("graph: %d unclosed parentheses", len(stack))
	}
	if next != n {
		return nil, fmt.Errorf("graph: walk encodes %d nodes, want %d", next, n)
	}
	return children, nil
}

// TreeShapeNeighbors converts a DecodeTreeShape result into, for each
// preorder index, the sorted set of neighbouring preorder indices
// (parent and children). Local verifiers compare this against the indices
// claimed by their actual neighbours.
func TreeShapeNeighbors(children [][]int) [][]int {
	nbrs := make([][]int, len(children))
	for p, cs := range children {
		for _, c := range cs {
			nbrs[p] = append(nbrs[p], c)
			nbrs[c] = append(nbrs[c], p)
		}
	}
	for i := range nbrs {
		sort.Ints(nbrs[i])
	}
	return nbrs
}
