package graph

import (
	"fmt"
	"slices"
	"sort"
)

// Kind distinguishes undirected from directed graphs.
type Kind int

const (
	// Undirected graphs are the default throughout the paper.
	Undirected Kind = iota + 1
	// Directed graphs appear in the s–t unreachability scheme (§4.1).
	Directed
)

// Edge is a graph edge. For undirected graphs it is normalized so that
// U < V; for directed graphs it is the ordered pair (U, V).
type Edge struct {
	U, V int
}

// NormEdge returns the normalized undirected edge key for (u, v).
func NormEdge(u, v int) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// sortEdges orders edges by (U, V) — the canonical order of Edges() and
// the order every CSR assembly step expects.
func sortEdges(edges []Edge) {
	slices.SortFunc(edges, func(a, b Edge) int {
		if a.U != b.U {
			return a.U - b.U
		}
		return a.V - b.V
	})
}

// idxMapThreshold is the node count above which a non-dense graph builds
// an id→index hash map. Below it, Index/Lookup binary-search the sorted
// identifier list: for the small ball graphs the verification hot paths
// construct per node, the search is faster than paying a map allocation
// at construction time.
const idxMapThreshold = 64

// Graph is an immutable simple graph in compressed-sparse-row form: one
// flat adjacency array plus per-node row offsets, instead of a slice per
// node. The zero value is an empty undirected graph.
//
// Identifier lookup has three tiers: contiguous identifiers 1..n resolve
// arithmetically (the dense fast path — every generator and FromCSR graph
// takes it), small graphs binary-search the sorted identifier list, and
// large sparse identifier sets fall back to a hash map.
type Graph struct {
	kind  Kind
	ids   []int       // node identifiers, ascending
	dense bool        // ids are exactly 1..n: Index(id) = id-1, no map
	idx   map[int]int // identifier -> position; nil when dense or small
	off   []int32     // row offsets into adj, len n+1
	adj   []int       // flat out-adjacency (identifiers), each row ascending
	inOff []int32     // directed only: row offsets into inAdj
	inAdj []int       // directed only: flat in-adjacency
	m     int         // number of edges
}

// row returns the out-adjacency row of node index i.
func (g *Graph) row(i int) []int { return g.adj[g.off[i]:g.off[i+1]] }

// inRow returns the in-adjacency row of node index i (directed graphs).
func (g *Graph) inRow(i int) []int { return g.inAdj[g.inOff[i]:g.inOff[i+1]] }

// lookup resolves an identifier to its position in ids, through whichever
// of the three lookup tiers the graph uses.
func (g *Graph) lookup(id int) (int, bool) {
	if g.dense {
		if id >= 1 && id <= len(g.ids) {
			return id - 1, true
		}
		return 0, false
	}
	if g.idx != nil {
		i, ok := g.idx[id]
		return i, ok
	}
	i := sort.SearchInts(g.ids, id)
	if i < len(g.ids) && g.ids[i] == id {
		return i, true
	}
	return 0, false
}

// initLookup decides the lookup tier for a frozen identifier list.
func (g *Graph) initLookup() {
	n := len(g.ids)
	g.dense = n > 0 && g.ids[0] == 1 && g.ids[n-1] == n
	if g.dense || n < idxMapThreshold {
		return
	}
	g.idx = make(map[int]int, n)
	for i, id := range g.ids {
		g.idx[id] = i
	}
}

// assemble freezes validated parts into a CSR graph. ids must be strictly
// ascending and cover every edge endpoint; edges must be sorted by (U, V),
// deduplicated, and normalized (U < V) for undirected kinds. Sorted edge
// input is what keeps every adjacency row ascending without a per-row
// sort: row v first receives the partners u < v (edges (u, v) arrive in
// ascending u) and then the partners w > v (edges (v, w) arrive in
// ascending w).
func assemble(kind Kind, ids []int, edges []Edge) *Graph {
	if kind != Directed {
		kind = Undirected
	}
	g := &Graph{kind: kind, ids: ids, m: len(edges)}
	g.initLookup()
	n := len(ids)
	slots := len(edges)
	if kind != Directed {
		slots *= 2
	}
	checkCSRBounds(slots)
	g.off = make([]int32, n+1)
	g.adj = make([]int, slots)
	if kind == Directed {
		g.inOff = make([]int32, n+1)
		g.inAdj = make([]int, len(edges))
	}
	for _, e := range edges {
		g.off[g.mustIndex(e.U)+1]++
		if kind == Directed {
			g.inOff[g.mustIndex(e.V)+1]++
		} else {
			g.off[g.mustIndex(e.V)+1]++
		}
	}
	for i := 0; i < n; i++ {
		g.off[i+1] += g.off[i]
	}
	cur := make([]int32, n)
	if kind == Directed {
		for i := 0; i < n; i++ {
			g.inOff[i+1] += g.inOff[i]
		}
		inCur := make([]int32, n)
		for _, e := range edges {
			iu, iv := g.mustIndex(e.U), g.mustIndex(e.V)
			g.adj[g.off[iu]+cur[iu]] = e.V
			cur[iu]++
			g.inAdj[g.inOff[iv]+inCur[iv]] = e.U
			inCur[iv]++
		}
		return g
	}
	for _, e := range edges {
		iu, iv := g.mustIndex(e.U), g.mustIndex(e.V)
		g.adj[g.off[iu]+cur[iu]] = e.V
		cur[iu]++
		g.adj[g.off[iv]+cur[iv]] = e.U
		cur[iv]++
	}
	return g
}

func (g *Graph) mustIndex(id int) int {
	i, ok := g.lookup(id)
	if !ok {
		panic(fmt.Sprintf("graph: unknown node %d", id))
	}
	return i
}

// Builder accumulates a graph. The zero value builds an undirected graph;
// use NewBuilder to choose the kind. Builders are not safe for concurrent
// use.
type Builder struct {
	kind  Kind
	nodes map[int]bool
	edges map[Edge]bool
}

// NewBuilder returns a Builder for a graph of the given kind.
func NewBuilder(kind Kind) *Builder {
	if kind != Directed {
		kind = Undirected
	}
	return &Builder{kind: kind, nodes: make(map[int]bool), edges: make(map[Edge]bool)}
}

// AddNode ensures node id exists. Identifiers must be positive: the paper
// identifies nodes with small natural numbers.
func (b *Builder) AddNode(id int) *Builder {
	if id <= 0 {
		panic(fmt.Sprintf("graph: node identifier %d is not positive", id))
	}
	if b.nodes == nil {
		b.nodes = make(map[int]bool)
		b.edges = make(map[Edge]bool)
	}
	b.nodes[id] = true
	return b
}

// AddEdge adds an edge (adding missing endpoints). Self-loops are
// rejected: the paper's graphs are simple. Duplicate edges are idempotent.
func (b *Builder) AddEdge(u, v int) *Builder {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	b.AddNode(u)
	b.AddNode(v)
	e := Edge{U: u, V: v}
	if b.kind != Directed {
		e = NormEdge(u, v)
	}
	b.edges[e] = true
	return b
}

// AddPath adds edges along the given node sequence.
func (b *Builder) AddPath(ids ...int) *Builder {
	for i := 1; i < len(ids); i++ {
		b.AddEdge(ids[i-1], ids[i])
	}
	return b
}

// Graph freezes the builder into an immutable Graph. The builder may be
// reused afterwards; the Graph does not alias its storage.
func (b *Builder) Graph() *Graph {
	ids := make([]int, 0, len(b.nodes))
	for id := range b.nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	edges := make([]Edge, 0, len(b.edges))
	for e := range b.edges {
		edges = append(edges, e)
	}
	sortEdges(edges)
	return assemble(b.kind, ids, edges)
}

// FromParts assembles a frozen Graph directly from its parts: a strictly
// ascending node identifier list and a deduplicated edge list whose
// endpoints all appear in ids (normalized U < V for undirected graphs,
// the ordered arc for directed ones). It skips Builder's node and edge
// maps entirely, which makes it the allocation-lean constructor behind
// the dist runtime's incremental view assembly — one call per node per
// run on the hottest path in the repository. The Graph takes ownership
// of ids and edges (the edge slice is sorted in place); the caller must
// not modify either afterwards, and must uphold the invariants itself.
// Use Builder when the input is untrusted, unordered, or still needed.
func FromParts(kind Kind, ids []int, edges []Edge) *Graph {
	sortEdges(edges)
	return assemble(kind, ids, edges)
}

// Kind returns whether the graph is directed or undirected.
func (g *Graph) Kind() Kind {
	if g.kind == 0 {
		return Undirected
	}
	return g.kind
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.kind == Directed }

// N returns the number of nodes, n(G).
func (g *Graph) N() int { return len(g.ids) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Nodes returns the node identifiers in ascending order. The caller must
// not modify the returned slice.
func (g *Graph) Nodes() []int { return g.ids }

// Has reports whether node id exists.
func (g *Graph) Has(id int) bool {
	_, ok := g.lookup(id)
	return ok
}

// Neighbors returns the neighbours of id in ascending order (out-neighbours
// for directed graphs). The caller must not modify the returned slice: it
// aliases the graph's flat adjacency array.
func (g *Graph) Neighbors(id int) []int {
	return g.row(g.mustIndex(id))
}

// InNeighbors returns the in-neighbours of id for a directed graph, and
// Neighbors(id) for an undirected one.
func (g *Graph) InNeighbors(id int) []int {
	if g.kind != Directed {
		return g.Neighbors(id)
	}
	return g.inRow(g.mustIndex(id))
}

// Degree returns the degree of id (out-degree for directed graphs).
func (g *Graph) Degree(id int) int { return len(g.Neighbors(id)) }

// UndirectedNeighbors returns the neighbours of id in the underlying
// undirected graph: Neighbors(id) as-is for undirected graphs, the
// sorted union of out- and in-neighbours for directed ones (a single
// merge of the two ascending rows — no map, no sort). This is the
// adjacency of the LOCAL model's communication graph (§2.1: views and
// message passing follow undirected reachability even on directed
// instances); BallAround, the dist runtime's port wiring, and the
// engine's shard halos all derive from it.
func (g *Graph) UndirectedNeighbors(id int) []int {
	if g.kind != Directed {
		return g.Neighbors(id)
	}
	i := g.mustIndex(id)
	a, b := g.row(i), g.inRow(i)
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]int, 0, len(a)+len(b))
	x, y := 0, 0
	for x < len(a) && y < len(b) {
		switch {
		case a[x] < b[y]:
			out = append(out, a[x])
			x++
		case a[x] > b[y]:
			out = append(out, b[y])
			y++
		default:
			out = append(out, a[x])
			x++
			y++
		}
	}
	out = append(out, a[x:]...)
	out = append(out, b[y:]...)
	return out
}

// HasEdge reports whether the edge (u, v) exists. For undirected graphs
// the order of u and v is irrelevant. Unknown endpoints simply yield
// false: verifiers probe views with arbitrary identifiers.
func (g *Graph) HasEdge(u, v int) bool {
	i, ok := g.lookup(u)
	if !ok {
		return false
	}
	adj := g.row(i)
	j := sort.SearchInts(adj, v)
	return j < len(adj) && adj[j] == v
}

// Edges returns all edges. For undirected graphs each edge appears once,
// normalized; for directed graphs each arc appears once. The result is
// sorted: the CSR rows are ascending and scanned in ascending node order,
// so the edges fall out sorted without a final sort pass.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	for i, u := range g.ids {
		for _, v := range g.row(i) {
			if g.kind == Directed || u < v {
				edges = append(edges, Edge{U: u, V: v})
			}
		}
	}
	return edges
}

// MaxID returns the largest node identifier, or 0 for the empty graph.
func (g *Graph) MaxID() int {
	if len(g.ids) == 0 {
		return 0
	}
	return g.ids[len(g.ids)-1]
}

// Index returns the position of id in Nodes(), for dense indexing.
func (g *Graph) Index(id int) int { return g.mustIndex(id) }

// Lookup returns the position of id in Nodes() and whether the node
// exists — the non-panicking Index used by array-backed structures
// (core.FlatProof) that are probed with arbitrary identifiers.
func (g *Graph) Lookup(id int) (int, bool) { return g.lookup(id) }

// Induced returns the subgraph induced by keep: its nodes are the known
// identifiers in keep and its edges are all edges of g with both endpoints
// kept. This is the G[v,r] operation of §2.1 when keep is a ball. The
// membership test runs on a pooled epoch-stamped scratch and the result
// is assembled row-filter by row-filter into CSR form, so no Builder maps
// are built.
func (g *Graph) Induced(keep []int) *Graph {
	s := getScratch(len(g.ids))
	defer putScratch(s)
	idxs := make([]int32, 0, len(keep))
	for _, id := range keep {
		if i, ok := g.lookup(id); ok && s.stamp[i] != s.epoch {
			s.stamp[i] = s.epoch
			idxs = append(idxs, int32(i))
		}
	}
	slices.Sort(idxs)
	ids := make([]int, len(idxs))
	for j, i := range idxs {
		ids[j] = g.ids[i]
	}
	return g.inducedFromStamped(ids, idxs, s)
}

// inducedFromStamped builds the subgraph over the stamped node set: ids
// is the sorted kept identifiers, idxs the matching sorted positions in
// g, and s the scratch whose current epoch marks membership. Two passes
// over the kept rows — an exact count, then the fill — produce the CSR
// arrays with no per-row slices and no overshoot.
func (g *Graph) inducedFromStamped(ids []int, idxs []int32, s *scratch) *Graph {
	n := len(ids)
	sub := &Graph{kind: g.Kind(), ids: ids}
	sub.initLookup()
	sub.off = make([]int32, n+1)
	directed := g.kind == Directed
	if directed {
		sub.inOff = make([]int32, n+1)
	}
	kept := func(v int) bool {
		i, ok := g.lookup(v)
		return ok && s.stamp[i] == s.epoch
	}
	for j, i := range idxs {
		for _, v := range g.row(int(i)) {
			if kept(v) {
				sub.off[j+1]++
			}
		}
		if directed {
			for _, v := range g.inRow(int(i)) {
				if kept(v) {
					sub.inOff[j+1]++
				}
			}
		}
	}
	for j := 0; j < n; j++ {
		sub.off[j+1] += sub.off[j]
	}
	sub.adj = make([]int, sub.off[n])
	if directed {
		for j := 0; j < n; j++ {
			sub.inOff[j+1] += sub.inOff[j]
		}
		sub.inAdj = make([]int, sub.inOff[n])
	}
	for j, i := range idxs {
		w := sub.off[j]
		for _, v := range g.row(int(i)) {
			if kept(v) {
				sub.adj[w] = v
				w++
			}
		}
		if directed {
			w = sub.inOff[j]
			for _, v := range g.inRow(int(i)) {
				if kept(v) {
					sub.inAdj[w] = v
					w++
				}
			}
		}
	}
	if directed {
		sub.m = len(sub.adj)
	} else {
		sub.m = len(sub.adj) / 2
	}
	return sub
}

// Relabel returns a copy of g with every node id replaced by m[id]. The
// mapping must be defined and injective on V(G), with positive images.
// Relabeling realizes the paper's notion that properties are closed under
// re-assigning identifiers.
func (g *Graph) Relabel(m map[int]int) *Graph {
	ids := make([]int, len(g.ids))
	for i, id := range g.ids {
		nid, ok := m[id]
		if !ok {
			panic(fmt.Sprintf("graph: relabel mapping missing node %d", id))
		}
		if nid <= 0 {
			panic(fmt.Sprintf("graph: node identifier %d is not positive", nid))
		}
		ids[i] = nid
	}
	sorted := slices.Clone(ids)
	slices.Sort(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			panic(fmt.Sprintf("graph: relabel mapping not injective at %d", sorted[i]))
		}
	}
	edges := make([]Edge, 0, g.m)
	for i, u := range g.ids {
		nu := ids[i]
		for _, v := range g.row(i) {
			if g.kind == Directed {
				edges = append(edges, Edge{U: nu, V: m[v]})
			} else if u < v {
				edges = append(edges, NormEdge(nu, m[v]))
			}
		}
	}
	sortEdges(edges)
	return assemble(g.Kind(), sorted, edges)
}

// ShiftIDs returns a copy of g with every identifier increased by delta.
// This is the C(G, i) "shifted identifiers" operation of §6.1.
func (g *Graph) ShiftIDs(delta int) *Graph {
	m := make(map[int]int, len(g.ids))
	for _, id := range g.ids {
		m[id] = id + delta
	}
	return g.Relabel(m)
}

// DisjointUnion returns the disjoint union of g and h. Node identifier
// sets must already be disjoint; the paper's constructions always arrange
// this explicitly (e.g. via ShiftIDs).
func DisjointUnion(g, h *Graph) *Graph {
	if g.Kind() != h.Kind() {
		panic("graph: disjoint union of mixed kinds")
	}
	b := NewBuilder(g.Kind())
	for _, id := range g.Nodes() {
		b.AddNode(id)
	}
	for _, id := range h.Nodes() {
		if g.Has(id) {
			panic(fmt.Sprintf("graph: identifier %d present in both union operands", id))
		}
		b.AddNode(id)
	}
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V)
	}
	for _, e := range h.Edges() {
		b.AddEdge(e.U, e.V)
	}
	return b.Graph()
}

// WithEdges returns a copy of g with the given extra edges added and the
// given edges removed (removals applied after additions). It is used by
// gluing constructions that cut and re-join cycles.
func (g *Graph) WithEdges(add []Edge, remove []Edge) *Graph {
	b := NewBuilder(g.Kind())
	for _, id := range g.Nodes() {
		b.AddNode(id)
	}
	removed := make(map[Edge]bool, len(remove))
	for _, e := range remove {
		if g.kind != Directed {
			e = NormEdge(e.U, e.V)
		}
		removed[e] = true
	}
	for _, e := range g.Edges() {
		if !removed[e] {
			b.AddEdge(e.U, e.V)
		}
	}
	for _, e := range add {
		key := e
		if g.kind != Directed {
			key = NormEdge(e.U, e.V)
		}
		if !removed[key] {
			b.AddEdge(e.U, e.V)
		}
	}
	return b.Graph()
}

// Equal reports whether g and h are identical labelled graphs: same kind,
// same identifier set, same edge set. (Not isomorphism; see graphalg.)
func Equal(g, h *Graph) bool {
	if g.Kind() != h.Kind() || g.N() != h.N() || g.M() != h.M() {
		return false
	}
	for i, id := range g.ids {
		if h.ids[i] != id {
			return false
		}
	}
	for i := range g.ids {
		adj, hadj := g.row(i), h.row(i)
		if len(adj) != len(hadj) {
			return false
		}
		for j := range adj {
			if adj[j] != hadj[j] {
				return false
			}
		}
	}
	return true
}

// String renders a compact description, e.g. "undirected n=4 m=3".
func (g *Graph) String() string {
	kind := "undirected"
	if g.kind == Directed {
		kind = "directed"
	}
	return fmt.Sprintf("%s n=%d m=%d", kind, g.N(), g.M())
}
