package graph

import (
	"fmt"
	"sort"
)

// Kind distinguishes undirected from directed graphs.
type Kind int

const (
	// Undirected graphs are the default throughout the paper.
	Undirected Kind = iota + 1
	// Directed graphs appear in the s–t unreachability scheme (§4.1).
	Directed
)

// Edge is a graph edge. For undirected graphs it is normalized so that
// U < V; for directed graphs it is the ordered pair (U, V).
type Edge struct {
	U, V int
}

// NormEdge returns the normalized undirected edge key for (u, v).
func NormEdge(u, v int) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// Graph is an immutable simple graph. The zero value is an empty
// undirected graph.
type Graph struct {
	kind Kind
	ids  []int       // node identifiers, ascending
	idx  map[int]int // identifier -> position in ids
	out  [][]int     // out[i] = identifiers adjacent from ids[i], ascending
	in   [][]int     // directed only: in[i] = identifiers adjacent to ids[i]
	m    int         // number of edges
}

// Builder accumulates a graph. The zero value builds an undirected graph;
// use NewBuilder to choose the kind. Builders are not safe for concurrent
// use.
type Builder struct {
	kind  Kind
	nodes map[int]bool
	edges map[Edge]bool
}

// NewBuilder returns a Builder for a graph of the given kind.
func NewBuilder(kind Kind) *Builder {
	if kind != Directed {
		kind = Undirected
	}
	return &Builder{kind: kind, nodes: make(map[int]bool), edges: make(map[Edge]bool)}
}

// AddNode ensures node id exists. Identifiers must be positive: the paper
// identifies nodes with small natural numbers.
func (b *Builder) AddNode(id int) *Builder {
	if id <= 0 {
		panic(fmt.Sprintf("graph: node identifier %d is not positive", id))
	}
	if b.nodes == nil {
		b.nodes = make(map[int]bool)
		b.edges = make(map[Edge]bool)
	}
	b.nodes[id] = true
	return b
}

// AddEdge adds an edge (adding missing endpoints). Self-loops are
// rejected: the paper's graphs are simple. Duplicate edges are idempotent.
func (b *Builder) AddEdge(u, v int) *Builder {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	b.AddNode(u)
	b.AddNode(v)
	e := Edge{U: u, V: v}
	if b.kind != Directed {
		e = NormEdge(u, v)
	}
	b.edges[e] = true
	return b
}

// AddPath adds edges along the given node sequence.
func (b *Builder) AddPath(ids ...int) *Builder {
	for i := 1; i < len(ids); i++ {
		b.AddEdge(ids[i-1], ids[i])
	}
	return b
}

// Graph freezes the builder into an immutable Graph. The builder may be
// reused afterwards; the Graph does not alias its storage.
func (b *Builder) Graph() *Graph {
	kind := b.kind
	if kind != Directed {
		kind = Undirected
	}
	ids := make([]int, 0, len(b.nodes))
	for id := range b.nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	idx := make(map[int]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	out := make([][]int, len(ids))
	var in [][]int
	if kind == Directed {
		in = make([][]int, len(ids))
	}
	for e := range b.edges {
		out[idx[e.U]] = append(out[idx[e.U]], e.V)
		if kind == Directed {
			in[idx[e.V]] = append(in[idx[e.V]], e.U)
		} else {
			out[idx[e.V]] = append(out[idx[e.V]], e.U)
		}
	}
	for i := range out {
		sort.Ints(out[i])
	}
	for i := range in {
		sort.Ints(in[i])
	}
	return &Graph{kind: kind, ids: ids, idx: idx, out: out, in: in, m: len(b.edges)}
}

// FromParts assembles a frozen Graph directly from its parts: a strictly
// ascending node identifier list and a deduplicated edge list whose
// endpoints all appear in ids (normalized U < V for undirected graphs,
// the ordered arc for directed ones). It skips Builder's node and edge
// maps entirely, which makes it the allocation-lean constructor behind
// the dist runtime's incremental view assembly — one call per node per
// run on the hottest path in the repository. The Graph takes ownership
// of ids; the caller must not modify it afterwards, and must uphold the
// invariants itself. Use Builder when the input is untrusted, unordered,
// or still needed.
func FromParts(kind Kind, ids []int, edges []Edge) *Graph {
	if kind != Directed {
		kind = Undirected
	}
	idx := make(map[int]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	out := make([][]int, len(ids))
	var in [][]int
	if kind == Directed {
		in = make([][]int, len(ids))
	}
	for _, e := range edges {
		out[idx[e.U]] = append(out[idx[e.U]], e.V)
		if kind == Directed {
			in[idx[e.V]] = append(in[idx[e.V]], e.U)
		} else {
			out[idx[e.V]] = append(out[idx[e.V]], e.U)
		}
	}
	for i := range out {
		sort.Ints(out[i])
	}
	for i := range in {
		sort.Ints(in[i])
	}
	return &Graph{kind: kind, ids: ids, idx: idx, out: out, in: in, m: len(edges)}
}

// Kind returns whether the graph is directed or undirected.
func (g *Graph) Kind() Kind {
	if g.kind == 0 {
		return Undirected
	}
	return g.kind
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.kind == Directed }

// N returns the number of nodes, n(G).
func (g *Graph) N() int { return len(g.ids) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Nodes returns the node identifiers in ascending order. The caller must
// not modify the returned slice.
func (g *Graph) Nodes() []int { return g.ids }

// Has reports whether node id exists.
func (g *Graph) Has(id int) bool {
	_, ok := g.idx[id]
	return ok
}

// Neighbors returns the neighbours of id in ascending order (out-neighbours
// for directed graphs). The caller must not modify the returned slice.
func (g *Graph) Neighbors(id int) []int {
	i, ok := g.idx[id]
	if !ok {
		panic(fmt.Sprintf("graph: unknown node %d", id))
	}
	return g.out[i]
}

// InNeighbors returns the in-neighbours of id for a directed graph, and
// Neighbors(id) for an undirected one.
func (g *Graph) InNeighbors(id int) []int {
	if g.kind != Directed {
		return g.Neighbors(id)
	}
	i, ok := g.idx[id]
	if !ok {
		panic(fmt.Sprintf("graph: unknown node %d", id))
	}
	return g.in[i]
}

// Degree returns the degree of id (out-degree for directed graphs).
func (g *Graph) Degree(id int) int { return len(g.Neighbors(id)) }

// UndirectedNeighbors returns the neighbours of id in the underlying
// undirected graph: Neighbors(id) as-is for undirected graphs, the
// sorted union of out- and in-neighbours for directed ones. This is the
// adjacency of the LOCAL model's communication graph (§2.1: views and
// message passing follow undirected reachability even on directed
// instances); BallAround, the dist runtime's port wiring, and the
// engine's shard halos all derive from it.
func (g *Graph) UndirectedNeighbors(id int) []int {
	if g.kind != Directed {
		return g.Neighbors(id)
	}
	seen := make(map[int]bool)
	var out []int
	for _, w := range g.Neighbors(id) {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	for _, w := range g.InNeighbors(id) {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}

// HasEdge reports whether the edge (u, v) exists. For undirected graphs
// the order of u and v is irrelevant. Unknown endpoints simply yield
// false: verifiers probe views with arbitrary identifiers.
func (g *Graph) HasEdge(u, v int) bool {
	i, ok := g.idx[u]
	if !ok {
		return false
	}
	adj := g.out[i]
	j := sort.SearchInts(adj, v)
	return j < len(adj) && adj[j] == v
}

// Edges returns all edges. For undirected graphs each edge appears once,
// normalized; for directed graphs each arc appears once. The result is
// sorted for determinism.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	for i, u := range g.ids {
		for _, v := range g.out[i] {
			if g.kind == Directed || u < v {
				edges = append(edges, Edge{U: u, V: v})
			}
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].U != edges[b].U {
			return edges[a].U < edges[b].U
		}
		return edges[a].V < edges[b].V
	})
	return edges
}

// MaxID returns the largest node identifier, or 0 for the empty graph.
func (g *Graph) MaxID() int {
	if len(g.ids) == 0 {
		return 0
	}
	return g.ids[len(g.ids)-1]
}

// Index returns the position of id in Nodes(), for dense indexing.
func (g *Graph) Index(id int) int {
	i, ok := g.idx[id]
	if !ok {
		panic(fmt.Sprintf("graph: unknown node %d", id))
	}
	return i
}

// Lookup returns the position of id in Nodes() and whether the node
// exists — the non-panicking Index used by array-backed structures
// (core.FlatProof) that are probed with arbitrary identifiers.
func (g *Graph) Lookup(id int) (int, bool) {
	i, ok := g.idx[id]
	return i, ok
}

// Induced returns the subgraph induced by keep: its nodes are the known
// identifiers in keep and its edges are all edges of g with both endpoints
// kept. This is the G[v,r] operation of §2.1 when keep is a ball.
func (g *Graph) Induced(keep []int) *Graph {
	b := NewBuilder(g.Kind())
	in := make(map[int]bool, len(keep))
	for _, id := range keep {
		if g.Has(id) {
			in[id] = true
			b.AddNode(id)
		}
	}
	for id := range in {
		for _, v := range g.Neighbors(id) {
			if in[v] {
				b.AddEdge(id, v)
			}
		}
	}
	return b.Graph()
}

// BallAround returns the set of nodes within distance radius of center
// (V[v,r] in the paper) along with their distances from the center.
// Distances follow undirected reachability even in directed graphs,
// because the LOCAL model's communication graph is the underlying
// undirected graph.
func (g *Graph) BallAround(center int, radius int) (nodes []int, dist map[int]int) {
	if !g.Has(center) {
		panic(fmt.Sprintf("graph: unknown node %d", center))
	}
	dist = map[int]int{center: 0}
	frontier := []int{center}
	nodes = []int{center}
	for d := 1; d <= radius && len(frontier) > 0; d++ {
		var next []int
		visit := func(v int) {
			if _, seen := dist[v]; !seen {
				dist[v] = d
				next = append(next, v)
				nodes = append(nodes, v)
			}
		}
		// Iterate out- and in-adjacency directly instead of going
		// through UndirectedNeighbors: the dist map already dedupes, and
		// this BFS runs once per node per view construction — the
		// per-call map+sort of UndirectedNeighbors is measurable there.
		for _, u := range frontier {
			for _, v := range g.Neighbors(u) {
				visit(v)
			}
			if g.kind == Directed {
				for _, v := range g.InNeighbors(u) {
					visit(v)
				}
			}
		}
		frontier = next
	}
	sort.Ints(nodes)
	return nodes, dist
}

// Relabel returns a copy of g with every node id replaced by m[id]. The
// mapping must be defined and injective on V(G), with positive images.
// Relabeling realizes the paper's notion that properties are closed under
// re-assigning identifiers.
func (g *Graph) Relabel(m map[int]int) *Graph {
	b := NewBuilder(g.Kind())
	seen := make(map[int]bool, len(g.ids))
	for _, id := range g.ids {
		nid, ok := m[id]
		if !ok {
			panic(fmt.Sprintf("graph: relabel mapping missing node %d", id))
		}
		if seen[nid] {
			panic(fmt.Sprintf("graph: relabel mapping not injective at %d", nid))
		}
		seen[nid] = true
		b.AddNode(nid)
	}
	for _, e := range g.Edges() {
		b.AddEdge(m[e.U], m[e.V])
	}
	return b.Graph()
}

// ShiftIDs returns a copy of g with every identifier increased by delta.
// This is the C(G, i) "shifted identifiers" operation of §6.1.
func (g *Graph) ShiftIDs(delta int) *Graph {
	m := make(map[int]int, len(g.ids))
	for _, id := range g.ids {
		m[id] = id + delta
	}
	return g.Relabel(m)
}

// DisjointUnion returns the disjoint union of g and h. Node identifier
// sets must already be disjoint; the paper's constructions always arrange
// this explicitly (e.g. via ShiftIDs).
func DisjointUnion(g, h *Graph) *Graph {
	if g.Kind() != h.Kind() {
		panic("graph: disjoint union of mixed kinds")
	}
	b := NewBuilder(g.Kind())
	for _, id := range g.Nodes() {
		b.AddNode(id)
	}
	for _, id := range h.Nodes() {
		if g.Has(id) {
			panic(fmt.Sprintf("graph: identifier %d present in both union operands", id))
		}
		b.AddNode(id)
	}
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V)
	}
	for _, e := range h.Edges() {
		b.AddEdge(e.U, e.V)
	}
	return b.Graph()
}

// WithEdges returns a copy of g with the given extra edges added and the
// given edges removed (removals applied after additions). It is used by
// gluing constructions that cut and re-join cycles.
func (g *Graph) WithEdges(add []Edge, remove []Edge) *Graph {
	b := NewBuilder(g.Kind())
	for _, id := range g.Nodes() {
		b.AddNode(id)
	}
	removed := make(map[Edge]bool, len(remove))
	for _, e := range remove {
		if g.kind != Directed {
			e = NormEdge(e.U, e.V)
		}
		removed[e] = true
	}
	for _, e := range g.Edges() {
		if !removed[e] {
			b.AddEdge(e.U, e.V)
		}
	}
	for _, e := range add {
		key := e
		if g.kind != Directed {
			key = NormEdge(e.U, e.V)
		}
		if !removed[key] {
			b.AddEdge(e.U, e.V)
		}
	}
	return b.Graph()
}

// Equal reports whether g and h are identical labelled graphs: same kind,
// same identifier set, same edge set. (Not isomorphism; see graphalg.)
func Equal(g, h *Graph) bool {
	if g.Kind() != h.Kind() || g.N() != h.N() || g.M() != h.M() {
		return false
	}
	for i, id := range g.ids {
		if h.ids[i] != id {
			return false
		}
	}
	for i, adj := range g.out {
		hadj := h.out[h.idx[g.ids[i]]]
		if len(adj) != len(hadj) {
			return false
		}
		for j := range adj {
			if adj[j] != hadj[j] {
				return false
			}
		}
	}
	return true
}

// String renders a compact description, e.g. "undirected n=4 m=3".
func (g *Graph) String() string {
	kind := "undirected"
	if g.kind == Directed {
		kind = "directed"
	}
	return fmt.Sprintf("%s n=%d m=%d", kind, g.N(), g.M())
}
