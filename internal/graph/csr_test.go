package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// Tests for the CSR backing introduced by the scale PR: the trusted
// constructors must agree with the Builder on every observable surface,
// the pooled-scratch ball construction must agree with (and vastly
// out-allocate) the historical map-based BFS, and the scale-tier
// generators must be deterministic and degrade gracefully at tiny n.

// ballAroundMapBaseline is the pre-CSR implementation of BallAround —
// map-based visited/dist, slice queue — kept verbatim as the semantic
// and allocation baseline.
func ballAroundMapBaseline(g *Graph, center, radius int) ([]int, map[int]int) {
	dist := map[int]int{center: 0}
	queue := []int{center}
	nodes := []int{center}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if dist[v] >= radius {
			continue
		}
		for _, u := range g.UndirectedNeighbors(v) {
			if _, seen := dist[u]; !seen {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
				nodes = append(nodes, u)
			}
		}
	}
	return nodes, dist
}

// rebuildWithBuilder reconstructs g through the Builder path, the
// reference implementation the trusted constructors must match.
func rebuildWithBuilder(g *Graph) *Graph {
	b := NewBuilder(g.Kind())
	for _, v := range g.Nodes() {
		b.AddNode(v)
	}
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V)
	}
	return b.Graph()
}

// testGraphs is a representative spread: regular lattice, hub-heavy
// power law, sparse random, a directed graph, isolated nodes, and
// non-dense identifiers.
func testGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	sparse := NewBuilder(Undirected).AddNode(10).AddNode(20).AddEdge(500, 7).AddEdge(7, 42).Graph()
	dirB := NewBuilder(Directed)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 120; i++ {
		u, v := rng.Intn(40)+1, rng.Intn(40)+1
		if u != v {
			dirB.AddEdge(u, v)
		}
	}
	return map[string]*Graph{
		"grid":      Grid(7, 9),
		"power-law": PowerLaw(200, 3, 11),
		"gnp":       RandomGNP(60, 0.08, 3),
		"sparse":    sparse,
		"directed":  dirB.Graph(),
		"empty":     {},
		"single":    Star(0),
	}
}

func sameGraphSurface(t *testing.T, name string, got, want *Graph) {
	t.Helper()
	if !Equal(got, want) {
		t.Fatalf("%s: graphs not Equal", name)
	}
	if !reflect.DeepEqual(got.Nodes(), want.Nodes()) {
		t.Fatalf("%s: Nodes %v != %v", name, got.Nodes(), want.Nodes())
	}
	if !reflect.DeepEqual(got.Edges(), want.Edges()) {
		t.Fatalf("%s: Edges differ", name)
	}
	for _, v := range want.Nodes() {
		if !reflect.DeepEqual(got.Neighbors(v), want.Neighbors(v)) {
			t.Fatalf("%s: Neighbors(%d) %v != %v", name, v, got.Neighbors(v), want.Neighbors(v))
		}
		if !reflect.DeepEqual(got.UndirectedNeighbors(v), want.UndirectedNeighbors(v)) {
			t.Fatalf("%s: UndirectedNeighbors(%d) differ", name, v)
		}
		if want.Directed() && !reflect.DeepEqual(got.InNeighbors(v), want.InNeighbors(v)) {
			t.Fatalf("%s: InNeighbors(%d) differ", name, v)
		}
		if got.Degree(v) != want.Degree(v) {
			t.Fatalf("%s: Degree(%d) %d != %d", name, v, got.Degree(v), want.Degree(v))
		}
	}
}

// TestFromEdgesMatchesBuilder: FromEdges on a shuffled, duplicated edge
// list reproduces exactly what the Builder produces.
func TestFromEdgesMatchesBuilder(t *testing.T) {
	for name, g := range testGraphs(t) {
		want := rebuildWithBuilder(g)
		edges := append([]Edge(nil), g.Edges()...)
		edges = append(edges, g.Edges()...) // duplicates must dedup
		rand.New(rand.NewSource(1)).Shuffle(len(edges), func(i, j int) {
			edges[i], edges[j] = edges[j], edges[i]
		})
		got := FromEdges(g.Kind(), g.Nodes(), edges)
		sameGraphSurface(t, name, got, want)
	}
}

// TestFromSortedEdgesMatchesBuilder: the no-validation fast path agrees
// with the Builder when fed what it demands (sorted, deduped edges).
func TestFromSortedEdgesMatchesBuilder(t *testing.T) {
	for name, g := range testGraphs(t) {
		want := rebuildWithBuilder(g)
		got := FromSortedEdges(g.Kind(), append([]int(nil), g.Nodes()...), append([]Edge(nil), g.Edges()...))
		sameGraphSurface(t, name, got, want)
	}
}

// TestFromCSRMatchesBuilder: a raw offsets/targets pair round-trips into
// the same graph the Builder produces, for both kinds.
func TestFromCSRMatchesBuilder(t *testing.T) {
	for _, kind := range []Kind{Undirected, Directed} {
		b := NewBuilder(kind)
		rng := rand.New(rand.NewSource(9))
		n := 30
		for i := 0; i < 80; i++ {
			u, v := rng.Intn(n)+1, rng.Intn(n)+1
			if u != v {
				b.AddEdge(u, v)
			}
		}
		for i := 1; i <= n; i++ {
			b.AddNode(i) // dense 1..n, FromCSR's contract
		}
		want := b.Graph()
		offsets := make([]int32, 1, n+1)
		var targets []int
		for i := 1; i <= n; i++ {
			targets = append(targets, want.Neighbors(i)...)
			offsets = append(offsets, int32(len(targets)))
		}
		got := FromCSR(kind, n, offsets, targets)
		name := "undirected"
		if kind == Directed {
			name = "directed"
		}
		sameGraphSurface(t, name, got, want)
	}
}

func TestFromCSRPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("short offsets", func() { FromCSR(Undirected, 2, []int32{0, 1}, []int{2}) })
	mustPanic("target mismatch", func() { FromCSR(Undirected, 1, []int32{0, 2}, []int{1}) })
}

func TestFromEdgesValidates(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("self-loop", func() { FromEdges(Undirected, nil, []Edge{{U: 3, V: 3}}) })
	mustPanic("non-positive endpoint", func() { FromEdges(Undirected, nil, []Edge{{U: 0, V: 2}}) })
	mustPanic("non-positive node", func() { FromEdges(Undirected, []int{-1}, nil) })
}

// TestBallAroundMatchesMapBaseline: the pooled-scratch BFS and the
// historical map BFS agree on membership and distances across families,
// radii, and every center.
func TestBallAroundMatchesMapBaseline(t *testing.T) {
	for name, g := range testGraphs(t) {
		for radius := 0; radius <= 4; radius++ {
			for _, v := range g.Nodes() {
				wantNodes, wantDist := ballAroundMapBaseline(g, v, radius)
				gotNodes, gotDist := g.BallAround(v, radius)
				if !sameIntSet(gotNodes, wantNodes) {
					t.Fatalf("%s r=%d center=%d: nodes %v != %v", name, radius, v, gotNodes, wantNodes)
				}
				if !reflect.DeepEqual(gotDist, wantDist) {
					t.Fatalf("%s r=%d center=%d: dist %v != %v", name, radius, v, gotDist, wantDist)
				}
				ids := g.AppendBallIDs(nil, v, radius)
				if !sameIntSet(ids, wantNodes) {
					t.Fatalf("%s r=%d center=%d: AppendBallIDs %v != %v", name, radius, v, ids, wantNodes)
				}
			}
		}
	}
}

// TestInducedBallMatchesInduced: the fused InducedBall equals the
// two-step BallAround + Induced it replaced in core.BuildView.
func TestInducedBallMatchesInduced(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, v := range g.Nodes() {
			for radius := 0; radius <= 3; radius++ {
				nodes, dist := g.BallAround(v, radius)
				want := g.Induced(nodes)
				ball, gotNodes, gotDist := g.InducedBall(v, radius)
				if !Equal(ball, want) {
					t.Fatalf("%s center=%d r=%d: induced ball differs", name, v, radius)
				}
				if !sameIntSet(gotNodes, nodes) || !reflect.DeepEqual(gotDist, dist) {
					t.Fatalf("%s center=%d r=%d: membership differs", name, v, radius)
				}
			}
		}
	}
}

func sameIntSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[int]bool, len(a))
	for _, v := range a {
		seen[v] = true
	}
	for _, v := range b {
		if !seen[v] {
			return false
		}
	}
	return true
}

// TestGeneratorsDegenerateSizes: every family survives n = 0, 1, 2 (and
// negative where the signature allows it) without panicking, with the
// documented degradation.
func TestGeneratorsDegenerateSizes(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		n, m int
	}{
		{"Path(0)", Path(0), 0, 0},
		{"Path(1)", Path(1), 1, 0},
		{"Path(2)", Path(2), 2, 1},
		{"Cycle(0)", Cycle(0), 0, 0},
		{"Cycle(1)", Cycle(1), 1, 0},
		{"Cycle(2)", Cycle(2), 2, 1},
		{"CycleOf()", CycleOf(), 0, 0},
		{"CycleOf(5)", CycleOf(5), 1, 0},
		{"CycleOf(5,9)", CycleOf(5, 9), 2, 1},
		{"Complete(0)", Complete(0), 0, 0},
		{"Complete(1)", Complete(1), 1, 0},
		{"Complete(2)", Complete(2), 2, 1},
		{"CompleteBipartite(0,0)", CompleteBipartite(0, 0), 0, 0},
		{"CompleteBipartite(1,0)", CompleteBipartite(1, 0), 1, 0},
		{"CompleteBipartite(1,1)", CompleteBipartite(1, 1), 2, 1},
		{"Star(-1)", Star(-1), 1, 0},
		{"Star(0)", Star(0), 1, 0},
		{"Star(1)", Star(1), 2, 1},
		{"Wheel(0)", Wheel(0), 1, 0},
		{"Wheel(1)", Wheel(1), 2, 1},
		{"Wheel(2)", Wheel(2), 3, 2},
		{"Grid(0,5)", Grid(0, 5), 0, 0},
		{"Grid(1,1)", Grid(1, 1), 1, 0},
		{"Grid(1,2)", Grid(1, 2), 2, 1},
		{"Hypercube(-1)", Hypercube(-1), 0, 0},
		{"Hypercube(0)", Hypercube(0), 1, 0},
		{"Hypercube(1)", Hypercube(1), 2, 1},
		{"RandomTree(0)", RandomTree(0, 1), 0, 0},
		{"RandomTree(1)", RandomTree(1, 1), 1, 0},
		{"RandomTree(2)", RandomTree(2, 1), 2, 1},
		{"RandomGNP(0)", RandomGNP(0, 1, 1), 0, 0},
		{"RandomGNP(1)", RandomGNP(1, 1, 1), 1, 0},
		{"RandomGNP(2,p=1)", RandomGNP(2, 1, 1), 2, 1},
		{"RandomConnected(0)", RandomConnected(0, 0.5, 1), 0, 0},
		{"RandomConnected(1)", RandomConnected(1, 0.5, 1), 1, 0},
		{"RandomConnected(2)", RandomConnected(2, 0.5, 1), 2, 1},
		{"RandomBipartite(0,0)", RandomBipartite(0, 0, 1, 1), 0, 0},
		{"RandomBipartite(1,1,p=1)", RandomBipartite(1, 1, 1, 1), 2, 1},
		{"PowerLaw(0)", PowerLaw(0, 3, 1), 0, 0},
		{"PowerLaw(1)", PowerLaw(1, 3, 1), 1, 0},
		{"PowerLaw(2)", PowerLaw(2, 3, 1), 2, 1},
		{"RandomRegular(0)", RandomRegular(0, 3, 1), 0, 0},
		{"RandomRegular(1)", RandomRegular(1, 3, 1), 1, 0},
		{"RandomRegular(2)", RandomRegular(2, 3, 1), 2, 1},
		{"RoadNetwork(0,5)", RoadNetwork(0, 5, 3, 1), 0, 0},
		{"RoadNetwork(1,1)", RoadNetwork(1, 1, 3, 1), 1, 0},
		{"RoadNetwork(1,2)", RoadNetwork(1, 2, 3, 1), 2, 1},
	}
	for _, c := range cases {
		if c.g.N() != c.n || c.g.M() != c.m {
			t.Errorf("%s: N=%d M=%d, want N=%d M=%d", c.name, c.g.N(), c.g.M(), c.n, c.m)
		}
	}
}

// connectedBFS is a local connectivity check (graphalg would import-cycle
// back into this package).
func connectedBFS(g *Graph) bool {
	if g.N() == 0 {
		return true
	}
	start := g.Nodes()[0]
	ids := g.AppendBallIDs(nil, start, g.N())
	return len(ids) == g.N()
}

// TestScaleGeneratorsDeterministic: a fixed seed pins the exact graph;
// different seeds give different graphs.
func TestScaleGeneratorsDeterministic(t *testing.T) {
	type gen struct {
		name string
		make func(seed int64) *Graph
	}
	gens := []gen{
		{"PowerLaw", func(s int64) *Graph { return PowerLaw(400, 3, s) }},
		{"RandomRegular", func(s int64) *Graph { return RandomRegular(400, 4, s) }},
		{"RoadNetwork", func(s int64) *Graph { return RoadNetwork(20, 20, 30, s) }},
	}
	for _, g := range gens {
		if !Equal(g.make(7), g.make(7)) {
			t.Errorf("%s: same seed, different graphs", g.name)
		}
		if Equal(g.make(7), g.make(8)) {
			t.Errorf("%s: different seeds, same graph", g.name)
		}
	}
}

func TestPowerLawShape(t *testing.T) {
	n, m := 2000, 4
	g := PowerLaw(n, m, 1)
	if g.N() != n {
		t.Fatalf("N = %d", g.N())
	}
	wantM := (m+1)*m/2 + (n-m-1)*m
	if g.M() != wantM {
		t.Errorf("M = %d, want %d", g.M(), wantM)
	}
	if !connectedBFS(g) {
		t.Error("not connected")
	}
	maxDeg := 0
	for _, v := range g.Nodes() {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	// Preferential attachment grows hubs: the maximum degree should be
	// far above the mean (2m ≈ 8). The exact value is seed-pinned.
	if maxDeg < 4*m {
		t.Errorf("max degree %d: no hub formed", maxDeg)
	}
}

func TestRandomRegularShape(t *testing.T) {
	n, d := 1001, 4 // odd n, even d: cycles only
	g := RandomRegular(n, d, 2)
	if g.N() != n {
		t.Fatalf("N = %d", g.N())
	}
	if !connectedBFS(g) {
		t.Error("not connected")
	}
	atTarget := 0
	for _, v := range g.Nodes() {
		deg := g.Degree(v)
		if deg > d {
			t.Fatalf("Degree(%d) = %d > %d", v, deg, d)
		}
		if deg == d {
			atTarget++
		}
	}
	if atTarget < n*9/10 {
		t.Errorf("only %d/%d nodes reach degree %d", atTarget, n, d)
	}
}

func TestRoadNetworkShape(t *testing.T) {
	g := RoadNetwork(15, 20, 25, 3)
	if g.N() != 15*20 {
		t.Fatalf("N = %d", g.N())
	}
	lattice := Grid(15, 20)
	for _, e := range lattice.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("lattice edge %v missing", e)
		}
	}
	extra := g.M() - lattice.M()
	if extra < 1 || extra > 25 {
		t.Errorf("shortcut count %d outside (0, 25]", extra)
	}
	if !connectedBFS(g) {
		t.Error("not connected")
	}
}

// TestBallConstructionAllocs pins the tentpole's allocation win: the
// pooled-scratch ball walk allocates at least 5x less than the
// historical map-based BFS on Grid(100,100). AppendBallIDs with a
// reused destination is the hot-loop form (steady-state zero allocs);
// the compat BallAround still allocates its result map but nothing else.
func TestBallConstructionAllocs(t *testing.T) {
	g := Grid(100, 100)
	center, radius := 50*100+50+1, 8

	baseline := testing.AllocsPerRun(50, func() {
		ballAroundMapBaseline(g, center, radius)
	})
	var dst []int
	scratch := testing.AllocsPerRun(50, func() {
		dst = g.AppendBallIDs(dst[:0], center, radius)
	})
	compat := testing.AllocsPerRun(50, func() {
		g.BallAround(center, radius)
	})

	t.Logf("allocs/op: map-baseline %.0f, AppendBallIDs %.0f, BallAround %.0f", baseline, scratch, compat)
	if scratch*5 > baseline {
		t.Errorf("AppendBallIDs %.0f allocs/op, want <= %.0f (5x under the %.0f baseline)", scratch, baseline/5, baseline)
	}
	if compat >= baseline {
		t.Errorf("BallAround %.0f allocs/op, baseline %.0f: compat wrapper should still win", compat, baseline)
	}
}

// BenchmarkBallConstruction compares ball construction on Grid(100,100):
// the historical map-based BFS, the compat BallAround (pooled scratch,
// map only at the result boundary), and the hot-loop AppendBallIDs form.
// Baselined in BENCH_graph.json.
func BenchmarkBallConstruction(b *testing.B) {
	g := Grid(100, 100)
	center, radius := 50*100+50+1, 8
	b.Run("map-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ballAroundMapBaseline(g, center, radius)
		}
	})
	b.Run("ball-around", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.BallAround(center, radius)
		}
	})
	b.Run("append-ball-ids", func(b *testing.B) {
		b.ReportAllocs()
		var dst []int
		for i := 0; i < b.N; i++ {
			dst = g.AppendBallIDs(dst[:0], center, radius)
		}
	})
}

// BenchmarkCSRConstruction compares graph assembly paths at generator
// scale: Builder (map dedup) vs FromEdges (sort+compact) vs
// FromSortedEdges (trusted). Baselined in BENCH_graph.json.
func BenchmarkCSRConstruction(b *testing.B) {
	proto := Grid(100, 100)
	nodes := proto.Nodes()
	edges := proto.Edges()
	b.Run("builder", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bld := NewBuilder(Undirected)
			for _, v := range nodes {
				bld.AddNode(v)
			}
			for _, e := range edges {
				bld.AddEdge(e.U, e.V)
			}
			bld.Graph()
		}
	})
	b.Run("from-edges", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]Edge, len(edges))
		for i := 0; i < b.N; i++ {
			copy(buf, edges)
			FromEdges(Undirected, nodes, buf)
		}
	})
	b.Run("from-sorted-edges", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			FromSortedEdges(Undirected, nodes, edges)
		}
	})
}
