// Package graph implements the simple graphs on which locally checkable
// proofs operate (Göös & Suomela, PODC 2011, §2).
//
// Graphs are immutable once built: a Builder accumulates nodes and edges
// and Graph() freezes them into a sorted-adjacency representation. Nodes
// are identified with small natural numbers, V(G) ⊆ {1, 2, ..., poly(n)},
// exactly as the paper assumes; the identifier space being larger than n
// is essential for several constructions (e.g. the cycles C(a,b) of §5.3
// use identifiers up to ~2n²). Immutability makes graphs safe to share
// across the verifier runtimes of internal/dist — goroutine-per-node or
// sharded — without locks.
//
// The paper's view operations map onto this package directly:
//
//   - BallAround is V[v,r]: the radius-r ball of §2.1, following
//     undirected reachability even on directed instances because the
//     LOCAL model's communication graph is the underlying undirected
//     graph (UndirectedNeighbors exposes exactly that adjacency);
//   - Induced is the G[v,r] operation: the subgraph induced by a ball;
//   - Relabel/ShiftIDs realize the closure of properties under
//     identifier re-assignment used throughout §5–§6;
//   - DisjointUnion and WithEdges back the lower-bound gluing
//     constructions that cut and re-join cycles.
//
// Two constructors freeze graphs. Builder is the safe general-purpose
// path: it deduplicates edges, rejects self-loops, and accepts input in
// any order. FromParts is the trusted fast path used by the message
// -passing runtime's incremental view assembly (internal/dist), which
// already holds a sorted node list and a deduplicated induced edge list
// when a node's flooding finishes and must not pay Builder's maps again
// for every node of every run.
package graph
