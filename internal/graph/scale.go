package graph

import "math/rand"

// Scale-tier generators: graph families meant for n=10^5–10^6 instances,
// where verification cost should scale with ball size rather than n
// (the whole point of the paper's local schemes). All three build a flat
// edge slice and freeze it through FromEdges — no Builder maps — so
// generating a million-node instance costs one sort over the edge list.
// Each family stresses a different ball shape:
//
//   - PowerLaw: preferential attachment; a few hubs with enormous
//     radius-1 balls, most nodes with tiny ones.
//   - RandomRegular: near-uniform degree, expander-like; balls grow
//     exponentially with the radius.
//   - RoadNetwork: a planar lattice with a sprinkling of long-range
//     shortcuts; balls grow polynomially, like real road graphs.
//
// All are deterministic for a fixed seed (pinned by tests) and degrade
// gracefully at n = 0, 1, 2.

// PowerLaw returns a preferential-attachment (Barabási–Albert) graph on
// 1..n: starting from a complete seed graph on m+1 nodes, every new node
// attaches to m distinct existing nodes chosen with probability
// proportional to their current degree. The result is connected with a
// power-law degree tail. n ≤ m+1 degrades to Complete(n); m < 1 is
// treated as 1.
func PowerLaw(n, m int, seed int64) *Graph {
	if m < 1 {
		m = 1
	}
	if n <= m+1 {
		return Complete(n)
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, (m+1)*m/2+(n-m-1)*m)
	// Repeat-endpoint list: each edge contributes both endpoints, so a
	// uniform draw from it is a degree-proportional draw over nodes.
	endpoints := make([]int32, 0, 2*cap(edges))
	addEdge := func(u, v int) {
		edges = append(edges, NormEdge(u, v))
		endpoints = append(endpoints, int32(u), int32(v))
	}
	for i := 1; i <= m+1; i++ {
		for j := i + 1; j <= m+1; j++ {
			addEdge(i, j)
		}
	}
	targets := make([]int, 0, m)
	for t := m + 2; t <= n; t++ {
		targets = targets[:0]
		for len(targets) < m {
			c := int(endpoints[rng.Intn(len(endpoints))])
			fresh := true
			for _, prev := range targets {
				if prev == c {
					fresh = false
					break
				}
			}
			if fresh {
				targets = append(targets, c)
			}
		}
		for _, c := range targets {
			addEdge(c, t)
		}
	}
	return FromEdges(Undirected, denseIDs(n), edges)
}

// RandomRegular returns a random (near-)d-regular graph on 1..n: the
// union of ⌊d/2⌋ random Hamiltonian cycles plus, for odd d, a random
// perfect matching. The first cycle keeps the graph connected for d ≥ 2,
// and the cycle union is an expander with high probability. Collisions
// between layers (vanishingly likely at scale) are deduplicated, so a
// few degrees can dip below d; when n·d is odd the matching leaves one
// node a degree short. d ≥ n is clamped to n-1; d < 1 yields n isolated
// nodes.
func RandomRegular(n, d int, seed int64) *Graph {
	if n <= 0 {
		return &Graph{}
	}
	if d >= n {
		d = n - 1
	}
	if d < 1 || n == 1 {
		return FromSortedEdges(Undirected, denseIDs(n), nil)
	}
	if n == 2 {
		return FromSortedEdges(Undirected, denseIDs(2), []Edge{{U: 1, V: 2}})
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, n*d/2+n)
	for layer := 0; layer < d/2; layer++ {
		perm := rng.Perm(n)
		for i := range perm {
			edges = append(edges, NormEdge(perm[i]+1, perm[(i+1)%n]+1))
		}
	}
	if d%2 == 1 {
		perm := rng.Perm(n)
		for i := 0; i+1 < len(perm); i += 2 {
			edges = append(edges, NormEdge(perm[i]+1, perm[i+1]+1))
		}
	}
	return FromEdges(Undirected, denseIDs(n), edges)
}

// RoadNetwork returns a rows×cols lattice (same identifier scheme as
// Grid) augmented with the given number of random long-range shortcut
// edges — a stand-in for real road graphs: overwhelmingly planar and
// low-degree, with the occasional highway. Shortcut endpoints are drawn
// uniformly; self-pairs and duplicates are dropped, so the shortcut
// count is an upper bound. Non-positive dimensions yield the empty
// graph.
func RoadNetwork(rows, cols, shortcuts int, seed int64) *Graph {
	if rows < 1 || cols < 1 {
		return &Graph{}
	}
	n := rows * cols
	id := func(r, c int) int { return r*cols + c + 1 }
	edges := make([]Edge, 0, 2*n+shortcuts)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, Edge{U: id(r, c), V: id(r+1, c)})
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < shortcuts; s++ {
		u, v := rng.Intn(n)+1, rng.Intn(n)+1
		if u != v {
			edges = append(edges, NormEdge(u, v))
		}
	}
	return FromEdges(Undirected, denseIDs(n), edges)
}
