package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestBuilderBasics(t *testing.T) {
	g := NewBuilder(Undirected).AddEdge(1, 2).AddEdge(2, 3).AddNode(7).Graph()
	if g.N() != 4 {
		t.Errorf("N = %d, want 4", g.N())
	}
	if g.M() != 2 {
		t.Errorf("M = %d, want 2", g.M())
	}
	if !g.HasEdge(2, 1) {
		t.Error("undirected edge (2,1) missing")
	}
	if g.HasEdge(1, 3) {
		t.Error("phantom edge (1,3)")
	}
	if g.Degree(7) != 0 {
		t.Errorf("Degree(7) = %d", g.Degree(7))
	}
	if got := g.Nodes(); !reflect.DeepEqual(got, []int{1, 2, 3, 7}) {
		t.Errorf("Nodes = %v", got)
	}
}

func TestBuilderDuplicateEdgeIdempotent(t *testing.T) {
	g := NewBuilder(Undirected).AddEdge(1, 2).AddEdge(2, 1).AddEdge(1, 2).Graph()
	if g.M() != 1 {
		t.Errorf("M = %d, want 1", g.M())
	}
	if len(g.Neighbors(1)) != 1 {
		t.Errorf("Neighbors(1) = %v", g.Neighbors(1))
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddEdge(3,3) did not panic")
		}
	}()
	NewBuilder(Undirected).AddEdge(3, 3)
}

func TestNonPositiveIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddNode(0) did not panic")
		}
	}()
	NewBuilder(Undirected).AddNode(0)
}

func TestDirectedEdges(t *testing.T) {
	g := NewBuilder(Directed).AddEdge(1, 2).AddEdge(3, 2).Graph()
	if !g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Error("directed edge orientation wrong")
	}
	if got := g.InNeighbors(2); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Errorf("InNeighbors(2) = %v", got)
	}
	if got := g.Neighbors(2); len(got) != 0 {
		t.Errorf("out-Neighbors(2) = %v", got)
	}
}

func TestEdgesSortedAndNormalized(t *testing.T) {
	g := NewBuilder(Undirected).AddEdge(5, 2).AddEdge(3, 1).Graph()
	want := []Edge{{1, 3}, {2, 5}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Errorf("Edges = %v, want %v", got, want)
	}
}

func TestInduced(t *testing.T) {
	g := Cycle(6)
	h := g.Induced([]int{1, 2, 3, 5})
	if h.N() != 4 || h.M() != 2 {
		t.Errorf("induced: n=%d m=%d, want 4, 2", h.N(), h.M())
	}
	if !h.HasEdge(1, 2) || !h.HasEdge(2, 3) || h.HasEdge(3, 5) {
		t.Error("induced edges wrong")
	}
	// Unknown ids in keep are ignored.
	h2 := g.Induced([]int{1, 99})
	if h2.N() != 1 {
		t.Errorf("induced with unknown id: n=%d", h2.N())
	}
}

func TestBallAround(t *testing.T) {
	g := Path(7) // 1-2-3-4-5-6-7
	nodes, dist := g.BallAround(4, 2)
	if !reflect.DeepEqual(nodes, []int{2, 3, 4, 5, 6}) {
		t.Errorf("ball nodes = %v", nodes)
	}
	if dist[4] != 0 || dist[3] != 1 || dist[2] != 2 {
		t.Errorf("dist = %v", dist)
	}
	nodes, _ = g.BallAround(1, 0)
	if !reflect.DeepEqual(nodes, []int{1}) {
		t.Errorf("radius-0 ball = %v", nodes)
	}
}

func TestBallAroundDirectedUsesUnderlyingGraph(t *testing.T) {
	// 1 -> 2 -> 3: the ball around 3 must still include 1 at distance 2,
	// because LOCAL-model communication is bidirectional.
	g := NewBuilder(Directed).AddEdge(1, 2).AddEdge(2, 3).Graph()
	nodes, dist := g.BallAround(3, 2)
	if !reflect.DeepEqual(nodes, []int{1, 2, 3}) {
		t.Errorf("ball = %v", nodes)
	}
	if dist[1] != 2 {
		t.Errorf("dist[1] = %d", dist[1])
	}
}

func TestRelabelAndShift(t *testing.T) {
	g := Cycle(4)
	h := g.ShiftIDs(10)
	if !reflect.DeepEqual(h.Nodes(), []int{11, 12, 13, 14}) {
		t.Errorf("shifted nodes = %v", h.Nodes())
	}
	if !h.HasEdge(11, 14) {
		t.Error("shifted edge (11,14) missing")
	}
	// Relabel with a non-injective map panics.
	defer func() {
		if recover() == nil {
			t.Error("non-injective relabel did not panic")
		}
	}()
	g.Relabel(map[int]int{1: 5, 2: 5, 3: 6, 4: 7})
}

func TestDisjointUnion(t *testing.T) {
	g := Cycle(3)
	h := Cycle(3).ShiftIDs(10)
	u := DisjointUnion(g, h)
	if u.N() != 6 || u.M() != 6 {
		t.Errorf("union: n=%d m=%d", u.N(), u.M())
	}
	defer func() {
		if recover() == nil {
			t.Error("overlapping union did not panic")
		}
	}()
	DisjointUnion(g, Cycle(3))
}

func TestWithEdges(t *testing.T) {
	g := Cycle(4) // 1-2-3-4-1
	h := g.WithEdges([]Edge{{1, 3}}, []Edge{{4, 1}})
	if h.HasEdge(1, 4) {
		t.Error("removed edge still present")
	}
	if !h.HasEdge(1, 3) {
		t.Error("added edge missing")
	}
	if h.N() != 4 || h.M() != 4 {
		t.Errorf("n=%d m=%d", h.N(), h.M())
	}
}

func TestEqual(t *testing.T) {
	if !Equal(Cycle(5), Cycle(5)) {
		t.Error("identical cycles not Equal")
	}
	if Equal(Cycle(5), Path(5)) {
		t.Error("cycle Equal path")
	}
	if Equal(Cycle(5), Cycle(5).ShiftIDs(1)) {
		t.Error("shifted cycle Equal original")
	}
}

func TestGenerators(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		n, m int
	}{
		{"Path(5)", Path(5), 5, 4},
		{"Path(1)", Path(1), 1, 0},
		{"Cycle(3)", Cycle(3), 3, 3},
		{"Cycle(8)", Cycle(8), 8, 8},
		{"Complete(5)", Complete(5), 5, 10},
		{"CompleteBipartite(3,4)", CompleteBipartite(3, 4), 7, 12},
		{"Star(6)", Star(6), 7, 6},
		{"Wheel(5)", Wheel(5), 6, 10},
		{"Grid(3,4)", Grid(3, 4), 12, 17},
		{"Hypercube(3)", Hypercube(3), 8, 12},
		{"Petersen", Petersen(), 10, 15},
	}
	for _, c := range cases {
		if c.g.N() != c.n || c.g.M() != c.m {
			t.Errorf("%s: n=%d m=%d, want n=%d m=%d", c.name, c.g.N(), c.g.M(), c.n, c.m)
		}
	}
}

func TestPetersenIsCubic(t *testing.T) {
	g := Petersen()
	for _, v := range g.Nodes() {
		if g.Degree(v) != 3 {
			t.Errorf("Petersen degree(%d) = %d", v, g.Degree(v))
		}
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		for _, n := range []int{1, 2, 3, 7, 20, 50} {
			g := RandomTree(n, seed)
			if g.N() != n || g.M() != n-1 {
				t.Fatalf("RandomTree(%d, %d): n=%d m=%d", n, seed, g.N(), g.M())
			}
			// Connectivity: ball of radius n covers everything.
			nodes, _ := g.BallAround(1, n)
			if len(nodes) != n {
				t.Fatalf("RandomTree(%d, %d) disconnected", n, seed)
			}
		}
	}
}

func TestRandomConnectedIsConnected(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := RandomConnected(30, 0.05, seed)
		nodes, _ := g.BallAround(1, 30)
		if len(nodes) != 30 {
			t.Fatalf("seed %d: disconnected", seed)
		}
	}
}

func TestRandomBipartiteHasNoOddCycles(t *testing.T) {
	g := RandomBipartite(8, 9, 0.5, 3)
	for i := 1; i <= 8; i++ {
		for j := i + 1; j <= 8; j++ {
			if g.HasEdge(i, j) {
				t.Fatalf("left-left edge (%d,%d)", i, j)
			}
		}
	}
}

func TestLineGraphOf(t *testing.T) {
	// L(K_{1,3}) = K_3.
	lg := LineGraphOf(Star(3))
	if lg.N() != 3 || lg.M() != 3 {
		t.Errorf("L(K_{1,3}): n=%d m=%d, want 3,3", lg.N(), lg.M())
	}
	// L(P_4) = P_3.
	lp := LineGraphOf(Path(4))
	if lp.N() != 3 || lp.M() != 2 {
		t.Errorf("L(P_4): n=%d m=%d, want 3,2", lp.N(), lp.M())
	}
	// L(C_n) = C_n.
	lc := LineGraphOf(Cycle(7))
	if lc.N() != 7 || lc.M() != 7 {
		t.Errorf("L(C_7): n=%d m=%d, want 7,7", lc.N(), lc.M())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	graphs := []*Graph{
		Path(1),
		Cycle(5),
		Petersen(),
		Grid(3, 3),
		RandomGNP(12, 0.3, 7),
		Cycle(4).ShiftIDs(100),
		NewBuilder(Directed).AddEdge(1, 2).AddEdge(2, 3).AddEdge(3, 1).Graph(),
	}
	for _, g := range graphs {
		enc := Encode(g)
		h, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%v): %v", g, err)
		}
		if !Equal(g, h) {
			t.Errorf("round trip changed %v into %v", g, h)
		}
	}
}

func TestEncodeIsCanonical(t *testing.T) {
	a := NewBuilder(Undirected).AddEdge(1, 2).AddEdge(2, 3).Graph()
	b := NewBuilder(Undirected).AddEdge(3, 2).AddEdge(2, 1).Graph()
	if !Encode(a).Equal(Encode(b)) {
		t.Error("identical graphs encode differently")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	enc := Encode(Cycle(5))
	// Truncations must error, not crash.
	for _, n := range []int{0, 1, 10, enc.Len() - 1} {
		if _, err := Decode(enc.Truncate(n)); err == nil {
			t.Errorf("Decode of %d-bit truncation succeeded", n)
		}
	}
	// Trailing garbage must error.
	padded := enc.Concat(FromBitsHelper([]byte{1}))
	if _, err := Decode(padded); err == nil {
		t.Error("Decode with trailing bits succeeded")
	}
}

func TestEncodeDecodeQuickRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 30; i++ {
		n := 1 + rng.Intn(15)
		g := RandomGNP(n, rng.Float64(), rng.Int63())
		h, err := Decode(Encode(g))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !Equal(g, h) {
			t.Fatalf("round trip failed for %v", g)
		}
	}
}

func TestEncodeTreeAndShape(t *testing.T) {
	g := NewBuilder(Undirected).AddEdge(1, 2).AddEdge(1, 3).AddEdge(3, 4).AddEdge(3, 5).Graph()
	enc := EncodeTree(g, 1)
	if enc.Shape.Len() != 2*g.N() {
		t.Errorf("shape length %d, want %d", enc.Shape.Len(), 2*g.N())
	}
	if enc.Preorder[1] != 0 {
		t.Errorf("root preorder = %d", enc.Preorder[1])
	}
	children, err := DecodeTreeShape(enc.Shape)
	if err != nil {
		t.Fatalf("DecodeTreeShape: %v", err)
	}
	nbrs := TreeShapeNeighbors(children)
	// Verify decoded neighbourhood structure matches the tree under the
	// preorder mapping.
	for _, v := range g.Nodes() {
		var want []int
		for _, u := range g.Neighbors(v) {
			want = append(want, enc.Preorder[u])
		}
		sort.Ints(want)
		got := nbrs[enc.Preorder[v]]
		if !reflect.DeepEqual(got, want) {
			t.Errorf("node %d: decoded nbrs %v, want %v", v, got, want)
		}
	}
}

func TestDecodeTreeShapeRejectsMalformed(t *testing.T) {
	bad := []string{"", "1", "10 10", "0", "01", "1101"}
	for _, s := range bad {
		if _, err := DecodeTreeShape(ParseHelper(s)); err == nil {
			t.Errorf("DecodeTreeShape(%q) succeeded", s)
		}
	}
	// A valid single-node walk.
	if _, err := DecodeTreeShape(ParseHelper("10")); err != nil {
		t.Errorf("DecodeTreeShape(\"10\"): %v", err)
	}
}

func TestRandomPermutationIDsPreservesStructure(t *testing.T) {
	g := Petersen()
	h := RandomPermutationIDs(g, 5)
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatalf("permutation changed size: %v vs %v", h, g)
	}
	for _, v := range h.Nodes() {
		if h.Degree(v) != 3 {
			t.Errorf("degree(%d) = %d after relabel", v, h.Degree(v))
		}
	}
}
