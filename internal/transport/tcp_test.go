package transport

// The TCP transport over real loopback sockets: exchanged deliveries
// match what was staged, stats count actual wire bytes, a dead peer
// surfaces as a bounded-time error (not a hang), and the handshake
// helpers route a Hello both ways.

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"
)

// tcpPair builds two connected transports over a real loopback socket.
func tcpPair(t *testing.T, timeout time.Duration) (a, b *TCP) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer func() { _ = ln.Close() }()
	type res struct {
		conn net.Conn
		err  error
	}
	accepted := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		accepted <- res{c, err}
	}()
	dialed, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	r := <-accepted
	if r.err != nil {
		t.Fatalf("accept: %v", r.err)
	}
	a = NewTCP(0, 1, map[int]net.Conn{1: dialed}, timeout)
	b = NewTCP(1, 1, map[int]net.Conn{0: r.conn}, timeout)
	t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
	return a, b
}

func TestTCPExchangeRoundTrip(t *testing.T) {
	a, b := tcpPair(t, 5*time.Second)
	ctx := context.Background()
	var wg sync.WaitGroup
	var aDels, bDels []Delivery
	var aErr, bErr error
	a.Send(1, 42, Batch{{ID: 7, HasLabel: true, Label: "x"}})
	wg.Add(2)
	go func() { defer wg.Done(); aDels, aErr = a.Exchange(ctx, 1) }()
	go func() { defer wg.Done(); bDels, bErr = b.Exchange(ctx, 1) }()
	wg.Wait()
	if aErr != nil || bErr != nil {
		t.Fatalf("exchange: a=%v b=%v", aErr, bErr)
	}
	if len(aDels) != 0 {
		t.Fatalf("a received %+v, staged nothing for it", aDels)
	}
	if len(bDels) != 1 || bDels[0].Dst != 42 || bDels[0].Recs[0].ID != 7 || bDels[0].Recs[0].Label != "x" {
		t.Fatalf("b received %+v", bDels)
	}
	if st := a.Stats(); st.BytesOut == 0 || st.FramesOut != 1 || st.Rounds != 1 {
		t.Fatalf("a stats: %+v", st)
	}
	if err := a.Barrier(ctx, 1); err != nil {
		t.Fatalf("barrier: %v", err)
	}
}

// TestTCPPeerDeathBoundedError: the peer's sockets close mid-round;
// Exchange must fail within the round timeout and stay poisoned.
func TestTCPPeerDeathBoundedError(t *testing.T) {
	a, b := tcpPair(t, 10*time.Second)
	_ = b.Close()
	start := time.Now()
	_, err := a.Exchange(context.Background(), 1)
	if err == nil {
		t.Fatal("exchange against a dead peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("error took %v, want bounded well under the timeout", elapsed)
	}
	if _, err := a.Exchange(context.Background(), 2); err == nil {
		t.Fatal("poisoned transport accepted another round")
	}
}

// TestTCPContextCancelInterruptsRound: neither side of the pair is
// answering; cancelling the context must yank the blocked read.
func TestTCPContextCancelInterruptsRound(t *testing.T) {
	a, _ := tcpPair(t, time.Hour) // timeout alone must not be the bound
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Exchange(ctx, 1)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled exchange succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Exchange ignored cancellation")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer func() { _ = ln.Close() }()
	got := make(chan Hello, 1)
	errc := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			errc <- err
			return
		}
		defer func() { _ = c.Close() }()
		h, err := ReadHello(c, 5*time.Second)
		if err != nil {
			errc <- err
			return
		}
		got <- h
	}()
	conn, err := DialData(context.Background(), ln.Addr().String(),
		Hello{Instance: "i1", Seq: 4, Src: 2}, 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() { _ = conn.Close() }()
	select {
	case h := <-got:
		want := Hello{Proto: ProtoVersion, Role: RoleData, Instance: "i1", Seq: 4, Src: 2}
		if h != want {
			t.Fatalf("hello round-trip: got %+v want %+v", h, want)
		}
	case err := <-errc:
		t.Fatalf("accept side: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("hello never arrived")
	}
}
