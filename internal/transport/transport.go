// Package transport abstracts the shard-to-shard edge of the
// message-passing runtime: per-round batched record delivery plus the
// round synchronization that keeps the flooding protocol in lockstep.
//
// The dist scheduler's sharded layout always had this edge — cur
// batches handed over cross-shard channel ports, rounds aligned by a
// barrier — but it was welded to one process. Transport names the edge
// so two implementations can stand behind it: InProc (shared-memory
// mailboxes and gates, the zero-serialization default) and TCP
// (length-prefixed binary frames between worker processes, one
// connection per shard pair, per-round batch coalescing). The paper's
// message complexity — every cut edge carries one batch per round —
// becomes measured bytes on the wire without the round semantics
// changing, which is what keeps verdicts identical to core.Check.
//
// A round over a Transport has exactly the shape of the in-process
// scheduler's four phases (see dist/shard.go): freeze and stage the
// outgoing batches (Send), exchange one coalesced frame with every
// peer (Exchange — the delivery barrier), merge, then close the round
// (Barrier — the reuse barrier that licenses buffer rewinding). TCP
// needs no explicit barrier: frames are copied at staging time and
// per-peer message counting bounds round skew by one, exactly the
// α-synchronization argument of the free-running scheduler.
package transport

import (
	"context"
	"errors"
	"fmt"

	"lcp/internal/bitstr"
	"lcp/internal/graph"
)

// Record is the unit of knowledge flooded through the network:
// everything a single node knows at round 0 — its identifier, proof
// string, input label, and incident edges with their labels and
// weights. Records are immutable once built and self-contained, so
// multi-hop forwarding ships them unchanged across any number of shard
// boundaries.
type Record struct {
	// ID is the node the record describes.
	ID int
	// Proof is the node's proof string; meaningful iff HasProof.
	Proof bitstr.String
	// HasProof distinguishes the empty proof ε from no proof at all.
	HasProof bool
	// Label is the node's input label; meaningful iff HasLabel.
	Label string
	// HasLabel reports whether the node carries an input label.
	HasLabel bool
	// Edges lists every edge incident to ID, as ID sees them.
	Edges []EdgeRec
}

// EdgeRec is one incident edge as the owning node sees it: the edge key
// exactly as the frozen graph stores it (normalized for undirected
// graphs, the ordered arc for directed ones) plus its input labelling.
type EdgeRec struct {
	// E is the edge key.
	E graph.Edge
	// Label is the edge's input label; meaningful iff HasLabel.
	Label string
	// HasLabel reports whether the edge carries an input label.
	HasLabel bool
	// Weight is the edge's weight; meaningful iff HasWeight.
	Weight int64
	// HasWeight reports whether the edge carries a weight.
	HasWeight bool
}

// Batch is the per-round payload for one destination node: the records
// the sender learned in the previous round. An empty batch is still
// delivered — message counting is what keeps the rounds synchronized.
type Batch []Record

// Delivery is one destination node's share of a round's incoming
// traffic, already demultiplexed from the per-peer frames.
type Delivery struct {
	// Dst is the receiving node (owned by this transport's shard).
	Dst int
	// Recs is the batch addressed to Dst.
	Recs Batch
}

// Stats counts a transport's traffic since construction. Bytes and
// frames are zero on the in-process implementation — nothing is
// serialized — which is exactly the baseline the TCP numbers are
// measured against.
type Stats struct {
	// BytesIn / BytesOut count wire bytes received and sent.
	BytesIn, BytesOut uint64
	// FramesIn / FramesOut count data frames received and sent.
	FramesIn, FramesOut uint64
	// Rounds counts completed Exchange rounds.
	Rounds uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.BytesIn += other.BytesIn
	s.BytesOut += other.BytesOut
	s.FramesIn += other.FramesIn
	s.FramesOut += other.FramesOut
	s.Rounds += other.Rounds
}

// Transport is one shard's handle on the shard-to-shard edge. A
// transport belongs to exactly one shard of one check; it is not safe
// for concurrent use by multiple goroutines (the shard runner is
// single-threaded), but its Close may race an in-flight Exchange —
// that is how a cancelled or crashed peer unblocks everyone else.
//
// The per-round contract, in call order:
//
//  1. Send stages records for a destination node owned by a peer
//     shard. Staging never blocks and never fails; errors surface at
//     Exchange.
//  2. Exchange flushes the staged traffic as one coalesced frame per
//     peer (empty frames included), collects exactly one frame per
//     peer for the same round, and returns the demultiplexed
//     deliveries. It is the delivery synchronization point: after
//     Exchange returns, every peer has handed over its round-r
//     traffic.
//  3. Barrier closes the round. In-process it is the reuse barrier —
//     no shard starts round r+1 before every shard has merged round r,
//     which is what licenses the zero-copy handover of cur buffers.
//     Over TCP it is a no-op: frames are copied at staging time.
type Transport interface {
	// Name identifies the implementation ("inproc", "tcp") for
	// metrics and error messages.
	Name() string
	// Shard is the index this transport speaks for.
	Shard() int
	// Peers lists the other shard indices, ascending.
	Peers() []int
	// Send stages recs for delivery to node dst on shard peer in the
	// current round.
	Send(peer, dst int, recs Batch)
	// Exchange flushes staged traffic and gathers every peer's frame
	// for the given round. It honours ctx: cancellation aborts the
	// wait and poisons the transport.
	Exchange(ctx context.Context, round int) ([]Delivery, error)
	// Barrier closes the round (see the interface comment). It honours
	// ctx like Exchange.
	Barrier(ctx context.Context, round int) error
	// Stats reports traffic totals since construction.
	Stats() Stats
	// Close releases the transport and unblocks any peer still waiting
	// on it. Closing twice is allowed.
	Close() error
}

// ErrClosed is returned by Exchange and Barrier after the transport —
// or, in-process, any member of its group — has been closed.
var ErrClosed = errors.New("transport: closed")

// Error wraps a transport failure with the implementation name and the
// round it happened in, so a coordinator can report "tcp: round 3:
// connection reset" instead of a bare I/O error.
type Error struct {
	// Transport is the implementation name.
	Transport string
	// Round is the round the failure surfaced in (0 = setup).
	Round int
	// Err is the underlying failure.
	Err error
}

// Error renders the failure with its transport and round context.
func (e *Error) Error() string {
	return fmt.Sprintf("transport %s: round %d: %v", e.Transport, e.Round, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }
