package transport

// The TCP implementation: one connection per shard pair, one coalesced
// data frame per peer per round in each direction. Per-peer message
// counting is the round synchronization (a shard can only read its
// round-r frame from a peer that reached round r, and can only start
// round r+1 after draining every round-r frame), so adjacent shards
// skew by at most one round — the α-synchronization argument of the
// free-running scheduler — and Barrier is a no-op: unlike in-process
// zero-copy handover, frames are copied at Exchange time, so there is
// no shared buffer to protect.
//
// Failure is bounded, never hanging: every round's reads and writes
// run under a deadline, a cancelled context yanks the deadlines to
// now, and the first error poisons the transport — later rounds fail
// fast instead of desynchronizing the frame stream.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// DefaultRoundTimeout bounds one round's network wait when the caller
// passes no explicit timeout.
const DefaultRoundTimeout = 10 * time.Second

// TCP is one shard's transport over established peer connections. The
// handshake that produces the connections (dial, accept, Hello
// routing) lives with the caller — internal/remote — because routing
// needs the listener; TCP owns everything after: framing, coalescing,
// deadlines, teardown.
type TCP struct {
	me      int
	seq     uint64
	peers   []int
	conns   map[int]net.Conn
	writers map[int]*bufio.Writer
	readers map[int]*bufio.Reader
	staged  map[int][]Delivery
	timeout time.Duration

	mu     sync.Mutex // guards stats and broken across Exchange workers
	stats  Stats
	broken error
	closed sync.Once
}

// NewTCP wraps established per-peer connections (keyed by peer shard
// index) as the transport of shard me for check sequence seq. A
// non-positive timeout selects DefaultRoundTimeout.
func NewTCP(me int, seq uint64, conns map[int]net.Conn, timeout time.Duration) *TCP {
	if timeout <= 0 {
		timeout = DefaultRoundTimeout
	}
	t := &TCP{
		me:      me,
		seq:     seq,
		conns:   conns,
		writers: make(map[int]*bufio.Writer, len(conns)),
		readers: make(map[int]*bufio.Reader, len(conns)),
		staged:  make(map[int][]Delivery, len(conns)),
		timeout: timeout,
	}
	for p, c := range conns {
		t.peers = append(t.peers, p)
		t.writers[p] = bufio.NewWriter(c)
		t.readers[p] = bufio.NewReader(c)
	}
	sort.Ints(t.peers)
	return t
}

// Name identifies the implementation.
func (t *TCP) Name() string { return "tcp" }

// Shard is the index this transport speaks for.
func (t *TCP) Shard() int { return t.me }

// Peers lists the connected peer shard indices, ascending.
func (t *TCP) Peers() []int { return t.peers }

// Send stages recs for node dst on shard peer. The records are
// serialized at Exchange time, so unlike the in-process transport the
// caller's buffers are free again as soon as Exchange returns.
func (t *TCP) Send(peer, dst int, recs Batch) {
	t.staged[peer] = append(t.staged[peer], Delivery{Dst: dst, Recs: recs})
}

// Exchange writes one coalesced frame per peer (empty ones included —
// they carry the round synchronization), reads one frame per peer, and
// returns the decoded deliveries. A cancelled ctx interrupts the
// round's I/O by pulling every connection's deadline to now.
func (t *TCP) Exchange(ctx context.Context, round int) ([]Delivery, error) {
	t.mu.Lock()
	broken := t.broken
	t.mu.Unlock()
	if broken != nil {
		return nil, &Error{Transport: t.Name(), Round: round, Err: broken}
	}
	before := t.Stats()
	defer t.publishDelta(before)
	// Serialize before any I/O: staging is single-threaded, the frame
	// workers below are not.
	payloads := make(map[int][]byte, len(t.peers))
	for _, p := range t.peers {
		payloads[p] = AppendData(nil, DataHeader{Seq: t.seq, Round: round, Src: t.me}, t.staged[p])
		t.staged[p] = nil
	}
	deadline := time.Now().Add(t.timeout)
	stop := context.AfterFunc(ctx, func() {
		now := time.Now()
		for _, c := range t.conns {
			_ = c.SetDeadline(now) // best effort: the point is to interrupt blocked I/O
		}
	})
	defer stop()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		dels     []Delivery
	)
	report := func(err error) {
		mu.Lock()
		if firstErr == nil && err != nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for _, p := range t.peers {
		wg.Add(2)
		go func(p int) {
			defer wg.Done()
			if err := t.conns[p].SetWriteDeadline(deadline); err != nil {
				report(fmt.Errorf("peer %d: %w", p, err))
				return
			}
			n, err := WriteFrame(t.writers[p], FrameData, payloads[p])
			if err == nil {
				err = t.writers[p].Flush()
			}
			t.mu.Lock()
			t.stats.BytesOut += uint64(n)
			t.stats.FramesOut++
			t.mu.Unlock()
			if err != nil {
				report(fmt.Errorf("send to peer %d: %w", p, err))
			}
		}(p)
		go func(p int) {
			defer wg.Done()
			if err := t.conns[p].SetReadDeadline(deadline); err != nil {
				report(fmt.Errorf("peer %d: %w", p, err))
				return
			}
			typ, payload, n, err := ReadFrame(t.readers[p])
			t.mu.Lock()
			t.stats.BytesIn += uint64(n)
			t.stats.FramesIn++
			t.mu.Unlock()
			if err != nil {
				report(fmt.Errorf("recv from peer %d: %w", p, err))
				return
			}
			if typ != FrameData {
				report(fmt.Errorf("recv from peer %d: unexpected frame type %d", p, typ))
				return
			}
			hdr, pd, err := DecodeData(payload)
			if err != nil {
				report(fmt.Errorf("recv from peer %d: %w", p, err))
				return
			}
			if hdr.Seq != t.seq || hdr.Round != round || hdr.Src != p {
				report(fmt.Errorf("recv from peer %d: frame for seq %d round %d src %d, want seq %d round %d",
					p, hdr.Seq, hdr.Round, hdr.Src, t.seq, round))
				return
			}
			mu.Lock()
			dels = append(dels, pd...)
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil && firstErr != nil {
		// The deadline yank manufactured the I/O error; report the cause.
		firstErr = err
	}
	if firstErr != nil {
		t.mu.Lock()
		t.broken = firstErr
		t.mu.Unlock()
		return nil, &Error{Transport: t.Name(), Round: round, Err: firstErr}
	}
	t.mu.Lock()
	t.stats.Rounds++
	t.mu.Unlock()
	metricRounds(t.Name()).Inc()
	return dels, nil
}

// publishDelta pushes one round's traffic growth over the before
// snapshot to the process metrics.
func (t *TCP) publishDelta(before Stats) {
	after := t.Stats()
	metricBytes(t.Name(), "in").Add(float64(after.BytesIn - before.BytesIn))
	metricBytes(t.Name(), "out").Add(float64(after.BytesOut - before.BytesOut))
	metricFrames(t.Name(), "in").Add(float64(after.FramesIn - before.FramesIn))
	metricFrames(t.Name(), "out").Add(float64(after.FramesOut - before.FramesOut))
}

// Barrier is a no-op over TCP: Exchange copies at staging time and
// message counting already bounds round skew. Only a context that died
// since the round's Exchange is surfaced.
func (t *TCP) Barrier(ctx context.Context, round int) error {
	if err := ctx.Err(); err != nil {
		return &Error{Transport: t.Name(), Round: round, Err: err}
	}
	return nil
}

// Stats reports traffic totals since construction.
func (t *TCP) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.stats
	return s
}

// Close closes every peer connection. Safe to call twice and
// concurrently with an in-flight Exchange, whose reads and writes fail
// promptly on the closed sockets.
func (t *TCP) Close() error {
	var errs []error
	t.closed.Do(func() {
		for _, p := range t.peers {
			if err := t.conns[p].Close(); err != nil {
				errs = append(errs, err)
			}
		}
	})
	return errors.Join(errs...)
}

// ProtoVersion is the handshake protocol version in Hello frames.
const ProtoVersion = 1

// Connection roles named in Hello frames.
const (
	// RoleControl marks a coordinator's control-plane connection.
	RoleControl = "control"
	// RoleData marks a shard-pair data connection for one check.
	RoleData = "data"
)

// Hello is the JSON payload of the handshake frame that opens every
// connection, telling the accepting side what the connection is for: a
// coordinator's control plane, or one check's data edge from shard Src.
type Hello struct {
	// Proto is the protocol version (ProtoVersion).
	Proto int `json:"proto"`
	// Role is RoleControl or RoleData.
	Role string `json:"role"`
	// Instance names the registered instance (data connections).
	Instance string `json:"instance,omitempty"`
	// Seq is the check sequence the data connection serves.
	Seq uint64 `json:"seq,omitempty"`
	// Src is the dialing shard (data connections).
	Src int `json:"src,omitempty"`
}

// WriteHello sends a handshake frame under the timeout.
func WriteHello(conn net.Conn, h Hello, timeout time.Duration) error {
	payload, err := json.Marshal(h)
	if err != nil {
		return err
	}
	if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	defer clearDeadline(conn)
	_, err = WriteFrame(conn, FrameHello, payload)
	return err
}

// ReadHello reads and validates a handshake frame under the timeout.
func ReadHello(conn net.Conn, timeout time.Duration) (Hello, error) {
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return Hello{}, err
	}
	defer clearDeadline(conn)
	typ, payload, _, err := ReadFrame(conn)
	if err != nil {
		return Hello{}, err
	}
	if typ != FrameHello {
		return Hello{}, fmt.Errorf("transport: expected hello frame, got type %d", typ)
	}
	var h Hello
	if err := json.Unmarshal(payload, &h); err != nil {
		return Hello{}, fmt.Errorf("transport: bad hello: %w", err)
	}
	if h.Proto != ProtoVersion {
		return Hello{}, fmt.Errorf("transport: protocol version %d, want %d", h.Proto, ProtoVersion)
	}
	return h, nil
}

// DialData dials a peer's listener and opens a data connection for one
// check session. The context bounds the dial; the timeout bounds the
// handshake write.
func DialData(ctx context.Context, addr string, h Hello, timeout time.Duration) (net.Conn, error) {
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	h.Proto = ProtoVersion
	h.Role = RoleData
	if err := WriteHello(conn, h, timeout); err != nil {
		_ = conn.Close() // the handshake failure is the error worth reporting
		return nil, err
	}
	return conn, nil
}

// clearDeadline removes a connection deadline set for one handshake
// step, so it cannot fire inside a later round's I/O.
func clearDeadline(conn net.Conn) {
	_ = conn.SetDeadline(time.Time{}) // best effort on an already-working conn
}
