package transport

// Wire-format coverage: the data payload codec round-trips every field
// combination, the frame layer enforces its length discipline, and
// corrupt input fails with an error instead of a panic — the same
// adversarial posture textio.Parse takes, since both parse bytes that
// crossed a trust boundary.

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"lcp/internal/bitstr"
	"lcp/internal/graph"
)

func sampleDeliveries() []Delivery {
	return []Delivery{
		{Dst: 7, Recs: Batch{
			{ID: 1, HasProof: true, Proof: bitstr.Parse("10110"), Edges: []EdgeRec{
				{E: graph.Edge{U: 1, V: 2}},
				{E: graph.Edge{U: 1, V: 9}, HasLabel: true, Label: "M", HasWeight: true, Weight: -42},
			}},
			{ID: 2, HasProof: true, Proof: bitstr.Empty, HasLabel: true, Label: "s"},
		}},
		{Dst: 9, Recs: Batch{
			{ID: 3, Edges: []EdgeRec{{E: graph.Edge{U: 3, V: 4}, HasWeight: true, Weight: 1 << 40}}},
		}},
		{Dst: 11}, // empty batch still travels: it carries the round sync
	}
}

func TestDataRoundTrip(t *testing.T) {
	hdr := DataHeader{Seq: 3, Round: 5, Src: 2}
	payload := AppendData(nil, hdr, sampleDeliveries())
	gotHdr, gotDels, err := DecodeData(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if gotHdr != hdr {
		t.Fatalf("header round-trip: got %+v want %+v", gotHdr, hdr)
	}
	if !reflect.DeepEqual(gotDels, sampleDeliveries()) {
		t.Fatalf("deliveries round-trip:\n got %+v\nwant %+v", gotDels, sampleDeliveries())
	}
}

func TestDataRoundTripEmpty(t *testing.T) {
	payload := AppendData(nil, DataHeader{Seq: 1, Round: 1, Src: 0}, nil)
	hdr, dels, err := DecodeData(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if hdr.Round != 1 || len(dels) != 0 {
		t.Fatalf("empty frame decoded to %+v, %v", hdr, dels)
	}
}

// TestProofBitsRoundTrip pins the MSB-first bit packing across widths
// that straddle byte boundaries, including the ε-vs-absent distinction.
func TestProofBitsRoundTrip(t *testing.T) {
	for _, bits := range []string{"", "1", "0", "10110101", "101101011", "1111111100000000101"} {
		rec := Record{ID: 1, HasProof: true, Proof: bitstr.Parse(bits)}
		payload := AppendData(nil, DataHeader{}, []Delivery{{Dst: 1, Recs: Batch{rec}}})
		_, dels, err := DecodeData(payload)
		if err != nil {
			t.Fatalf("%q: decode: %v", bits, err)
		}
		got := dels[0].Recs[0]
		if !got.HasProof || !got.Proof.Equal(bitstr.Parse(bits)) {
			t.Fatalf("%q: round-tripped to hasProof=%v %q", bits, got.HasProof, got.Proof.String())
		}
	}
}

func TestDecodeDataCorrupt(t *testing.T) {
	payload := AppendData(nil, DataHeader{Seq: 9, Round: 2, Src: 1}, sampleDeliveries())
	// Every strict prefix must fail cleanly, never panic.
	for i := 0; i < len(payload); i++ {
		if _, _, err := DecodeData(payload[:i]); err == nil {
			t.Fatalf("prefix of %d bytes decoded without error", i)
		}
	}
	// Trailing garbage is rejected too.
	if _, _, err := DecodeData(append(append([]byte{}, payload...), 0xff)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	wrote, err := WriteFrame(&buf, FrameData, []byte("hello"))
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	typ, payload, read, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if typ != FrameData || string(payload) != "hello" || wrote != read {
		t.Fatalf("round-trip: typ=%d payload=%q wrote=%d read=%d", typ, payload, wrote, read)
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, FrameData})
	if _, _, _, err := ReadFrame(&buf); err == nil || !strings.Contains(err.Error(), "frame length") {
		t.Fatalf("oversized frame: err=%v", err)
	}
	if _, err := WriteFrame(&bytes.Buffer{}, FrameData, make([]byte, MaxFrame)); err == nil {
		t.Fatal("oversized write accepted")
	}
}
