package transport

// The wire format. Every message — handshake, control-plane JSON, and
// per-round data — travels as a length-prefixed frame:
//
//	u32 big-endian length (of everything after itself)
//	u8  frame type
//	payload (length-1 bytes)
//
// Data frames (FrameData) carry one round's coalesced traffic from one
// shard to one peer. The payload is varint-packed binary — the hot
// path — while the control plane (FrameHello, FrameRequest,
// FrameResponse) carries JSON, where a few extra bytes buy
// debuggability:
//
//	data payload := uvarint seq | uvarint round | uvarint src
//	              | uvarint #deliveries | delivery...
//	delivery     := uvarint dst | uvarint #records | record...
//	record       := uvarint id | u8 flags(hasProof|hasLabel)
//	              | [bits proof] | [string label]
//	              | uvarint #edges | edge...
//	edge         := uvarint u | uvarint v | u8 flags(hasLabel|hasWeight)
//	              | [string label] | [varint weight]
//	bits         := uvarint bit-length | MSB-first packed bytes
//	string       := uvarint byte-length | bytes
//
// Records are self-contained (the same property the in-process
// scheduler relies on for multi-hop forwarding), so decoding never
// needs the instance — only the automata that merge the records do.

import (
	"encoding/binary"
	"fmt"
	"io"

	"lcp/internal/bitstr"
	"lcp/internal/graph"
)

// Frame types.
const (
	// FrameHello opens a connection: a JSON Hello payload naming the
	// connection's role (control or data) and, for data, its session.
	FrameHello byte = 1
	// FrameData carries one round's coalesced record traffic.
	FrameData byte = 2
	// FrameRequest carries one JSON control-plane request.
	FrameRequest byte = 3
	// FrameResponse carries one JSON control-plane response.
	FrameResponse byte = 4
)

// MaxFrame bounds a single frame; a peer announcing more is treated as
// corrupt rather than allocated for.
const MaxFrame = 1 << 26 // 64 MiB

// WriteFrame writes one frame and reports the bytes put on the wire.
func WriteFrame(w io.Writer, typ byte, payload []byte) (int, error) {
	if len(payload)+1 > MaxFrame {
		return 0, fmt.Errorf("transport: frame of %d bytes exceeds MaxFrame", len(payload)+1)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return len(hdr), err
	}
	return len(hdr) + len(payload), nil
}

// ReadFrame reads one frame and reports the bytes taken off the wire.
func ReadFrame(r io.Reader) (typ byte, payload []byte, n int, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, 0, err
	}
	size := binary.BigEndian.Uint32(hdr[:4])
	if size == 0 || size > MaxFrame {
		return 0, nil, 0, fmt.Errorf("transport: bad frame length %d", size)
	}
	payload = make([]byte, size-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, 0, fmt.Errorf("transport: short frame: %w", err)
	}
	return hdr[4], payload, len(hdr) + len(payload), nil
}

// DataHeader is the fixed prefix of a data frame payload.
type DataHeader struct {
	// Seq is the check sequence number the traffic belongs to.
	Seq uint64
	// Round is the flooding round the frame closes.
	Round int
	// Src is the sending shard.
	Src int
}

// AppendData encodes a data payload: header plus deliveries.
func AppendData(buf []byte, hdr DataHeader, dels []Delivery) []byte {
	buf = binary.AppendUvarint(buf, hdr.Seq)
	buf = binary.AppendUvarint(buf, uint64(hdr.Round))
	buf = binary.AppendUvarint(buf, uint64(hdr.Src))
	buf = binary.AppendUvarint(buf, uint64(len(dels)))
	for _, d := range dels {
		buf = binary.AppendUvarint(buf, uint64(d.Dst))
		buf = binary.AppendUvarint(buf, uint64(len(d.Recs)))
		for _, rec := range d.Recs {
			buf = appendRecord(buf, rec)
		}
	}
	return buf
}

func appendRecord(buf []byte, rec Record) []byte {
	buf = binary.AppendUvarint(buf, uint64(rec.ID))
	var flags byte
	if rec.HasProof {
		flags |= 1
	}
	if rec.HasLabel {
		flags |= 2
	}
	buf = append(buf, flags)
	if rec.HasProof {
		buf = appendBits(buf, rec.Proof)
	}
	if rec.HasLabel {
		buf = appendString(buf, rec.Label)
	}
	buf = binary.AppendUvarint(buf, uint64(len(rec.Edges)))
	for _, er := range rec.Edges {
		buf = binary.AppendUvarint(buf, uint64(er.E.U))
		buf = binary.AppendUvarint(buf, uint64(er.E.V))
		var ef byte
		if er.HasLabel {
			ef |= 1
		}
		if er.HasWeight {
			ef |= 2
		}
		buf = append(buf, ef)
		if er.HasLabel {
			buf = appendString(buf, er.Label)
		}
		if er.HasWeight {
			buf = binary.AppendVarint(buf, er.Weight)
		}
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendBits encodes a bit string as its bit length followed by the
// bits packed MSB-first, the same layout bitstr uses internally.
func appendBits(buf []byte, s bitstr.String) []byte {
	n := s.Len()
	buf = binary.AppendUvarint(buf, uint64(n))
	var cur byte
	for i := 0; i < n; i++ {
		if s.Bit(i) {
			cur |= 1 << (7 - i%8)
		}
		if i%8 == 7 {
			buf = append(buf, cur)
			cur = 0
		}
	}
	if n%8 != 0 {
		buf = append(buf, cur)
	}
	return buf
}

// DecodeData decodes a data payload produced by AppendData.
func DecodeData(payload []byte) (DataHeader, []Delivery, error) {
	c := &cursor{buf: payload}
	var hdr DataHeader
	hdr.Seq = c.uvarint()
	hdr.Round = c.count("round")
	hdr.Src = c.count("src")
	nd := c.count("delivery count")
	var dels []Delivery
	if nd > 0 {
		dels = make([]Delivery, 0, nd)
	}
	for i := 0; i < nd && c.err == nil; i++ {
		var d Delivery
		d.Dst = c.count("dst")
		nr := c.count("record count")
		if nr > 0 {
			d.Recs = make(Batch, 0, nr)
		}
		for j := 0; j < nr && c.err == nil; j++ {
			d.Recs = append(d.Recs, c.record())
		}
		dels = append(dels, d)
	}
	if c.err == nil && c.off != len(payload) {
		c.err = fmt.Errorf("transport: %d trailing bytes in data frame", len(payload)-c.off)
	}
	if c.err != nil {
		return DataHeader{}, nil, c.err
	}
	return hdr, dels, nil
}

// cursor is a fail-sticky decoder over one payload: the first error
// latches and every later read returns zero values, so decode paths
// check c.err once at the end instead of threading errors through
// every field.
type cursor struct {
	buf []byte
	off int
	err error
}

func (c *cursor) fail(what string) {
	if c.err == nil {
		c.err = fmt.Errorf("transport: truncated or corrupt frame at %s (offset %d)", what, c.off)
	}
}

func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.buf[c.off:])
	if n <= 0 {
		c.fail("uvarint")
		return 0
	}
	c.off += n
	return v
}

// count reads a uvarint that must fit an int and stay sane as a
// collection size or identifier.
func (c *cursor) count(what string) int {
	v := c.uvarint()
	if c.err == nil && v > uint64(MaxFrame) {
		c.fail(what)
		return 0
	}
	return int(v)
}

func (c *cursor) varint() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.buf[c.off:])
	if n <= 0 {
		c.fail("varint")
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) byte() byte {
	if c.err != nil {
		return 0
	}
	if c.off >= len(c.buf) {
		c.fail("flags")
		return 0
	}
	b := c.buf[c.off]
	c.off++
	return b
}

func (c *cursor) string(what string) string {
	n := c.count(what)
	if c.err != nil {
		return ""
	}
	if c.off+n > len(c.buf) {
		c.fail(what)
		return ""
	}
	s := string(c.buf[c.off : c.off+n])
	c.off += n
	return s
}

func (c *cursor) bits() bitstr.String {
	n := c.count("proof bits")
	if c.err != nil || n == 0 {
		// ε decodes to the canonical Empty so DeepEqual-style
		// comparisons see one representation of the empty string.
		return bitstr.Empty
	}
	nbytes := (n + 7) / 8
	if c.off+nbytes > len(c.buf) {
		c.fail("proof bits")
		return bitstr.Empty
	}
	var w bitstr.Writer
	for i := 0; i < n; i++ {
		w.WriteBit(c.buf[c.off+i/8]&(1<<(7-i%8)) != 0)
	}
	c.off += nbytes
	return w.String()
}

func (c *cursor) record() Record {
	var rec Record
	rec.ID = c.count("record id")
	flags := c.byte()
	if flags&1 != 0 {
		rec.HasProof = true
		rec.Proof = c.bits()
	}
	if flags&2 != 0 {
		rec.HasLabel = true
		rec.Label = c.string("node label")
	}
	ne := c.count("edge count")
	if ne > 0 && c.err == nil {
		rec.Edges = make([]EdgeRec, 0, ne)
	}
	for i := 0; i < ne && c.err == nil; i++ {
		var er EdgeRec
		er.E = graph.Edge{U: c.count("edge u"), V: c.count("edge v")}
		ef := c.byte()
		if ef&1 != 0 {
			er.HasLabel = true
			er.Label = c.string("edge label")
		}
		if ef&2 != 0 {
			er.HasWeight = true
			er.Weight = c.varint()
		}
		rec.Edges = append(rec.Edges, er)
	}
	return rec
}
