package transport

// The in-process implementation: shared-memory mailboxes plus
// channel-based round gates. It is the transport the equivalence tests
// pin against TCP, and the reference for the round contract.
//
// Zero-copy is the point and the hazard: Send stages the caller's
// batch slice by reference, and the receiving shard's merge reads it
// in place. Two gates per round make that safe, mirroring the phase
// argument of dist's floodShard:
//
//   - the Exchange gate (all shards have published round r's frames)
//     orders every publish before any read;
//   - the Barrier gate (all shards have merged round r) orders every
//     read before any round-r+1 rewind of the same buffers.
//
// The gates cannot use sync.Cond — a cancelled context must be able to
// interrupt the wait — so they are one-shot channels closed by the
// last arriver, with an aborted channel racing them. A close or cancel
// poisons the whole group: every waiter (current and future) returns
// ErrClosed or the context error instead of deadlocking on a peer that
// quit. The poison dies with the group — a fresh check builds a fresh
// group — so one aborted check can never wedge the next.

import (
	"context"
	"sync"
)

// InProc is one shard's handle on an in-process transport group built
// by NewInProcGroup.
type InProc struct {
	hub    *inprocHub
	me     int
	peers  []int
	staged map[int][]Delivery // peer -> deliveries staged this round
	stats  Stats
}

// NewInProcGroup builds a group of n in-process transports sharing one
// hub, one per shard. Closing any member unblocks every other.
func NewInProcGroup(n int) []*InProc {
	hub := &inprocHub{
		n:       n,
		boxes:   make([][]Delivery, n*n),
		gates:   make(map[int64]*gate),
		aborted: make(chan struct{}),
	}
	group := make([]*InProc, n)
	for i := range group {
		peers := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				peers = append(peers, j)
			}
		}
		group[i] = &InProc{hub: hub, me: i, peers: peers, staged: make(map[int][]Delivery)}
	}
	return group
}

// Name identifies the implementation.
func (t *InProc) Name() string { return "inproc" }

// Shard is the index this transport speaks for.
func (t *InProc) Shard() int { return t.me }

// Peers lists the other shard indices, ascending.
func (t *InProc) Peers() []int { return t.peers }

// Send stages recs for node dst on shard peer. The slice is staged by
// reference; the caller must keep it frozen until Barrier returns for
// the current round (the same contract the channel scheduler's cur
// buffers live by).
func (t *InProc) Send(peer, dst int, recs Batch) {
	t.staged[peer] = append(t.staged[peer], Delivery{Dst: dst, Recs: recs})
}

// Exchange publishes this shard's staged traffic, waits until every
// shard has published round's traffic, and collects the deliveries
// addressed here.
func (t *InProc) Exchange(ctx context.Context, round int) ([]Delivery, error) {
	h := t.hub
	h.mu.Lock()
	for _, p := range t.peers {
		t.stats.FramesOut++
		h.boxes[t.me*h.n+p] = t.staged[p]
		t.staged[p] = nil
	}
	h.mu.Unlock()
	if err := h.gate(ctx, gateKey(round, 0)); err != nil {
		return nil, &Error{Transport: t.Name(), Round: round, Err: err}
	}
	var dels []Delivery
	h.mu.Lock()
	for _, p := range t.peers {
		t.stats.FramesIn++
		dels = append(dels, h.boxes[p*h.n+t.me]...)
		h.boxes[p*h.n+t.me] = nil
	}
	h.mu.Unlock()
	t.stats.Rounds++
	metricRounds(t.Name()).Inc()
	metricFrames(t.Name(), "in").Add(float64(len(t.peers)))
	metricFrames(t.Name(), "out").Add(float64(len(t.peers)))
	return dels, nil
}

// Barrier waits until every shard has merged the round's deliveries,
// licensing the next round's buffer rewinds.
func (t *InProc) Barrier(ctx context.Context, round int) error {
	if err := t.hub.gate(ctx, gateKey(round, 1)); err != nil {
		return &Error{Transport: t.Name(), Round: round, Err: err}
	}
	return nil
}

// Stats reports traffic totals since construction. Bytes stay zero:
// nothing is serialized in process.
func (t *InProc) Stats() Stats { return t.stats }

// Close poisons the group, unblocking every member still waiting at a
// gate. Closing after a completed run is a no-op for the peers — they
// are all past their last gate.
func (t *InProc) Close() error {
	t.hub.abort()
	return nil
}

// inprocHub is the state shared by one transport group: the mailbox
// matrix, the round gates, and the poison channel.
type inprocHub struct {
	n       int
	mu      sync.Mutex
	boxes   [][]Delivery // [src*n+dst] staged deliveries
	gates   map[int64]*gate
	aborted chan struct{}
	abort1  sync.Once
}

func (h *inprocHub) abort() {
	h.abort1.Do(func() { close(h.aborted) })
}

func gateKey(round, phase int) int64 { return int64(round)<<1 | int64(phase) }

// gate blocks until all n members have arrived at the keyed gate, the
// hub is aborted, or ctx is cancelled (which aborts the hub so the
// poison reaches every other member).
func (h *inprocHub) gate(ctx context.Context, key int64) error {
	h.mu.Lock()
	g := h.gates[key]
	if g == nil {
		g = &gate{done: make(chan struct{})}
		h.gates[key] = g
	}
	g.arrived++
	if g.arrived == h.n {
		close(g.done)
		delete(h.gates, key)
	}
	h.mu.Unlock()
	select {
	case <-g.done:
		return nil
	case <-h.aborted:
		// The gate may have opened in the same instant the poison
		// landed; a completed rendezvous wins over a stale abort.
		select {
		case <-g.done:
			return nil
		default:
			return ErrClosed
		}
	case <-ctx.Done():
		h.abort()
		select {
		case <-g.done:
			return nil
		default:
			return ctx.Err()
		}
	}
}

// gate is a one-shot n-party rendezvous: the last arriver opens it for
// everyone.
type gate struct {
	arrived int
	done    chan struct{}
}
