package transport

// Process-level traffic metrics, exposed through the shared obs
// registry as lcp_transport_{bytes,frames,rounds}_total — the
// scrapeable aggregate of what each transport's Stats() reports per
// check. Bytes and frames are labelled by direction, everything by
// transport implementation, so a coordinator's /metrics shows the
// paper's message complexity as wire traffic per backend.

import "lcp/internal/obs"

func metricBytes(transport, dir string) *obs.Counter {
	return obs.Default().Counter("lcp_transport_bytes_total",
		"Wire bytes moved by shard transports, by implementation and direction.",
		obs.Label{Name: "transport", Value: transport},
		obs.Label{Name: "dir", Value: dir})
}

func metricFrames(transport, dir string) *obs.Counter {
	return obs.Default().Counter("lcp_transport_frames_total",
		"Data frames moved by shard transports, by implementation and direction.",
		obs.Label{Name: "transport", Value: transport},
		obs.Label{Name: "dir", Value: dir})
}

func metricRounds(transport string) *obs.Counter {
	return obs.Default().Counter("lcp_transport_rounds_total",
		"Completed exchange rounds, by transport implementation.",
		obs.Label{Name: "transport", Value: transport})
}
