package transport

// The in-process transport's synchronization contract: deliveries
// demultiplex per destination, rounds stay lockstep across shards, and
// poisoning (Close or a cancelled context) unblocks every member
// instead of deadlocking the group.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestInProcExchangeDelivers floods one record ring-wise across three
// shards for two rounds and checks every delivery lands at the right
// destination in the right round.
func TestInProcExchangeDelivers(t *testing.T) {
	const n = 3
	group := NewInProcGroup(n)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, n)
	got := make([][][]Delivery, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := group[i]
			defer func() { _ = tr.Close() }()
			for round := 1; round <= 2; round++ {
				next := (i + 1) % n
				tr.Send(next, 100+next, Batch{{ID: 10*i + round}})
				dels, err := tr.Exchange(ctx, round)
				if err != nil {
					errs[i] = err
					return
				}
				got[i] = append(got[i], dels)
				if err := tr.Barrier(ctx, round); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		prev := (i + n - 1) % n
		for round := 1; round <= 2; round++ {
			dels := got[i][round-1]
			if len(dels) != 1 || dels[0].Dst != 100+i {
				t.Fatalf("shard %d round %d: deliveries %+v", i, round, dels)
			}
			if want := 10*prev + round; dels[0].Recs[0].ID != want {
				t.Fatalf("shard %d round %d: record %d, want %d", i, round, dels[0].Recs[0].ID, want)
			}
		}
		st := group[i].Stats()
		if st.Rounds != 2 || st.BytesOut != 0 {
			t.Fatalf("shard %d stats: %+v", i, st)
		}
	}
}

// TestInProcCloseUnblocksPeers: one member never shows up; closing its
// transport must release the waiter with ErrClosed, bounded in time.
func TestInProcCloseUnblocksPeers(t *testing.T) {
	group := NewInProcGroup(2)
	done := make(chan error, 1)
	go func() {
		_, err := group[0].Exchange(context.Background(), 1)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := group[1].Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Exchange still blocked after peer closed")
	}
}

// TestInProcContextCancelPoisonsGroup: a cancelled waiter returns the
// context error and poisons the hub, so the other member's next gate
// fails fast instead of hanging.
func TestInProcContextCancelPoisonsGroup(t *testing.T) {
	group := NewInProcGroup(2)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := group[0].Exchange(ctx, 1)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Exchange ignored cancellation")
	}
	if err := group[1].Barrier(context.Background(), 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("poison did not reach the peer: %v", err)
	}
}
