package core

import (
	"lcp/internal/bitstr"

	"lcp/internal/graph"
)

// ProofColumns is a node-major, struct-of-arrays table holding k proofs
// for one graph at once: the entry of proof j at node index i lives at
// slot i*k+j, so all k proof strings for one node are adjacent in
// memory. It is the batch counterpart of FlatProof — where a FlatProof
// lets one check walk the cached skeletons without per-node map
// restriction, a ProofColumns lets one ball walk feed k verdicts: the
// engine visits node i once and evaluates every column against the same
// skeleton before moving on, comparing the k adjacent entries to
// deduplicate identical ball restrictions.
//
// Each column is addressable as a strided *FlatProof (see Column), so
// verifiers consume a column through the exact same View accessors as a
// dense table; no verifier knows whether it is reading a batch.
//
// Like FlatProof, a ProofColumns is mutable via Load and owned by a
// single batch check at a time (internal/engine recycles them through a
// pool); column views must not outlive the batch.
type ProofColumns struct {
	g    *graph.Graph
	k    int
	bits []bitstr.String
	has  []bool
	cols []FlatProof
}

// NewProofColumns returns an empty table for graph g; Load sizes it.
func NewProofColumns(g *graph.Graph) *ProofColumns {
	return &ProofColumns{g: g}
}

// K reports the number of loaded columns (proofs).
func (pc *ProofColumns) K() int { return pc.k }

// Load replaces the table contents with the given proofs, one column
// per proof in order, clearing previous entries. Proof entries
// addressing nodes outside the graph are ignored, exactly as
// FlatProof.Load ignores them. Column views handed out by a previous
// Load are invalidated.
func (pc *ProofColumns) Load(proofs []Proof) {
	n := pc.g.N()
	pc.k = len(proofs)
	need := n * pc.k
	if cap(pc.bits) < need {
		pc.bits = make([]bitstr.String, need)
		pc.has = make([]bool, need)
	} else {
		pc.bits = pc.bits[:need]
		pc.has = pc.has[:need]
		clear(pc.bits)
		clear(pc.has)
	}
	for j, p := range proofs {
		for id, s := range p {
			if i, ok := pc.g.Lookup(id); ok {
				pc.bits[i*pc.k+j] = s
				pc.has[i*pc.k+j] = true
			}
		}
	}
	if cap(pc.cols) < pc.k {
		pc.cols = make([]FlatProof, pc.k)
	} else {
		pc.cols = pc.cols[:pc.k]
	}
	for j := range pc.cols {
		pc.cols[j] = FlatProof{g: pc.g, bits: pc.bits, has: pc.has, stride: pc.k, off: j}
	}
}

// Column returns proof j as a strided FlatProof sharing the table's
// storage. The returned view is read-only (Load on it panics) and valid
// until the next Load on the table.
func (pc *ProofColumns) Column(j int) *FlatProof { return &pc.cols[j] }

// SameAt reports whether columns j and l agree at node index i: same
// presence flag and, bit for bit, the same string. Together with the
// locality of verifiers — the verdict at v is a function of the radius-r
// view alone — agreement at every ball member means the two columns
// must receive the same verdict at v, which is what lets the engine
// verify one representative per group of identical ball restrictions.
func (pc *ProofColumns) SameAt(i, j, l int) bool {
	a := i * pc.k
	return pc.has[a+j] == pc.has[a+l] && pc.bits[a+j].Equal(pc.bits[a+l])
}
