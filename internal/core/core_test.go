package core

import (
	"testing"

	"lcp/internal/bitstr"
	"lcp/internal/graph"
)

// evenDegreeVerifier is the Eulerian LCP(0) verifier: accept iff my degree
// is even. Radius 1 suffices to see incident edges.
var evenDegreeVerifier = VerifierFunc{R: 1, F: func(w *View) bool {
	return w.Degree(w.Center)%2 == 0
}}

// twoColorVerifier is the bipartiteness LCP(1) verifier.
var twoColorVerifier = VerifierFunc{R: 1, F: func(w *View) bool {
	my := w.ProofOf(w.Center)
	if my.Len() != 1 {
		return false
	}
	for _, u := range w.Neighbors(w.Center) {
		p := w.ProofOf(u)
		if p.Len() != 1 || p.Bit(0) == my.Bit(0) {
			return false
		}
	}
	return true
}}

func TestBuildViewBall(t *testing.T) {
	in := NewInstance(graph.Path(9))
	w := BuildView(in, nil, 5, 2)
	if w.G.N() != 5 {
		t.Fatalf("ball size %d, want 5", w.G.N())
	}
	if w.Dist[3] != 2 || w.Dist[5] != 0 {
		t.Errorf("distances wrong: %v", w.Dist)
	}
	if !w.KnowsFully(4) || w.KnowsFully(3) {
		t.Error("KnowsFully boundary wrong")
	}
}

func TestBuildViewIncludesBoundaryEdges(t *testing.T) {
	// In C4 with radius 1 from node 1, nodes 2 and 4 are both at distance
	// 1; the induced view contains no 2–4 edge (there is none), but in C3
	// radius 1 from node 1 includes edge 2–3.
	w := BuildView(NewInstance(graph.Cycle(3)), nil, 1, 1)
	if !w.G.HasEdge(2, 3) {
		t.Error("induced boundary edge 2–3 missing")
	}
}

func TestCheckEulerianStyle(t *testing.T) {
	if res := Check(NewInstance(graph.Cycle(6)), nil, evenDegreeVerifier); !res.Accepted() {
		t.Errorf("cycle rejected: %s", res)
	}
	res := Check(NewInstance(graph.Path(4)), nil, evenDegreeVerifier)
	if res.Accepted() {
		t.Error("path accepted")
	}
	rej := res.Rejectors()
	if len(rej) != 2 || rej[0] != 1 || rej[1] != 4 {
		t.Errorf("rejectors = %v, want [1 4]", rej)
	}
}

func TestProofSizeAccounting(t *testing.T) {
	p := Proof{1: bitstr.Parse("101"), 2: bitstr.Parse(""), 3: bitstr.Parse("1")}
	if p.Size() != 3 {
		t.Errorf("Size = %d, want 3", p.Size())
	}
	if p.TotalBits() != 4 {
		t.Errorf("TotalBits = %d, want 4", p.TotalBits())
	}
	tr := p.Truncated(1)
	if tr.Size() != 1 {
		t.Errorf("truncated Size = %d", tr.Size())
	}
	if !p[1].Equal(bitstr.Parse("101")) {
		t.Error("Truncated mutated the original")
	}
}

func TestInstanceLabelsAndClone(t *testing.T) {
	in := NewInstance(graph.Path(3)).SetNodeLabel(1, LabelS).SetNodeLabel(3, LabelT).MarkEdge(2, 1)
	if got := in.FindLabel(LabelS); len(got) != 1 || got[0] != 1 {
		t.Errorf("FindLabel(s) = %v", got)
	}
	if es := in.MarkedEdges(); len(es) != 1 || es[0] != graph.NormEdge(1, 2) {
		t.Errorf("MarkedEdges = %v", es)
	}
	cp := in.Clone()
	cp.SetNodeLabel(2, "x")
	if _, ok := in.NodeLabel[2]; ok {
		t.Error("Clone shares NodeLabel map")
	}
}

func TestInstanceRelabel(t *testing.T) {
	in := NewInstance(graph.Path(3)).SetNodeLabel(1, LabelS).MarkEdge(1, 2)
	in.Weights = map[graph.Edge]int64{graph.NormEdge(2, 3): 7}
	m := map[int]int{1: 10, 2: 20, 3: 30}
	out := in.Relabel(m)
	if out.NodeLabel[10] != LabelS {
		t.Error("node label not relabelled")
	}
	if out.EdgeLabel[graph.NormEdge(10, 20)] != EdgeInSolution {
		t.Error("edge label not relabelled")
	}
	if out.Weights[graph.NormEdge(20, 30)] != 7 {
		t.Error("weight not relabelled")
	}
}

func TestProofRelabelAndVerdictInvariance(t *testing.T) {
	// Bipartiteness on C6: verdict must be invariant under relabeling.
	in := NewInstance(graph.Cycle(6))
	p := Proof{}
	for i := 1; i <= 6; i++ {
		p[i] = bitstr.FromUint(uint64(i%2), 1)
	}
	if !Check(in, p, twoColorVerifier).Accepted() {
		t.Fatal("2-colouring rejected")
	}
	m := map[int]int{1: 42, 2: 17, 3: 99, 4: 3, 5: 55, 6: 28}
	in2 := in.Relabel(m)
	p2 := p.Relabel(m)
	if !Check(in2, p2, twoColorVerifier).Accepted() {
		t.Error("relabelled 2-colouring rejected")
	}
}

func TestCheckOddCycleNoValidProof(t *testing.T) {
	in := NewInstance(graph.Cycle(5))
	// Exhaustive: no 1-bit proof 2-colours an odd cycle.
	sound, fooling := CertifySoundness(in, twoColorVerifier, 1)
	if !sound {
		t.Errorf("odd cycle fooled the 2-colouring verifier with %v", fooling)
	}
	// Even cycle: a valid proof exists and is found.
	even := NewInstance(graph.Cycle(4))
	if FindValidProof(even, twoColorVerifier, 1) == nil {
		t.Error("no proof found for even cycle")
	}
	if got := MinProofSize(even, twoColorVerifier, 2); got != 1 {
		t.Errorf("MinProofSize = %d, want 1", got)
	}
}

func TestRandomProofAndFlipBit(t *testing.T) {
	in := NewInstance(graph.Cycle(5))
	p := RandomProof(in, 8, 3)
	if p.Size() != 8 || len(p) != 5 {
		t.Fatalf("RandomProof shape wrong: size %d, nodes %d", p.Size(), len(p))
	}
	q := FlipBit(p, 7)
	diff := 0
	for v := range p {
		if !p[v].Equal(q[v]) {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("FlipBit changed %d labels, want 1", diff)
	}
}

func TestResultReporting(t *testing.T) {
	r := &Result{Outputs: map[int]bool{1: true, 2: false, 3: true}}
	if r.Accepted() {
		t.Error("rejecting result Accepted")
	}
	if got := r.Rejectors(); len(got) != 1 || got[0] != 2 {
		t.Errorf("Rejectors = %v", got)
	}
}

// failingScheme is a deliberately broken scheme for ProveAndCheck's
// completeness guard.
type failingScheme struct{}

func (failingScheme) Name() string { return "broken" }
func (failingScheme) Verifier() Verifier {
	return VerifierFunc{R: 0, F: func(*View) bool { return false }}
}
func (failingScheme) Prove(*Instance) (Proof, error) {
	return Proof{}, nil
}

func TestProveAndCheckFlagsCompletenessViolation(t *testing.T) {
	_, _, err := ProveAndCheck(NewInstance(graph.Path(2)), failingScheme{})
	if err == nil {
		t.Error("broken scheme passed ProveAndCheck")
	}
}
