package core

import (
	"strings"
	"testing"

	"lcp/internal/bitstr"
	"lcp/internal/graph"
)

func TestViewRestrictMatchesDirectBuild(t *testing.T) {
	g := graph.RandomConnected(20, 0.15, 9)
	in := NewInstance(g).SetNodeLabel(3, "x").MarkEdge(g.Edges()[0].U, g.Edges()[0].V)
	in.Weights = map[graph.Edge]int64{g.Edges()[1]: 5}
	p := RandomProof(in, 6, 4)
	for _, center := range []int{1, 7, 20} {
		big := BuildView(in, p, center, 3)
		for r := 0; r <= 3; r++ {
			sub := big.Restrict(r, p)
			direct := BuildView(in, p, center, r)
			if !graph.Equal(sub.G, direct.G) {
				t.Fatalf("center %d r=%d: restricted ball differs", center, r)
			}
			for _, v := range direct.G.Nodes() {
				if !sub.ProofOf(v).Equal(direct.ProofOf(v)) {
					t.Fatalf("center %d r=%d: proof of %d differs", center, r, v)
				}
				if sub.Label(v) != direct.Label(v) {
					t.Fatalf("center %d r=%d: label of %d differs", center, r, v)
				}
				if sub.Dist[v] != direct.Dist[v] {
					t.Fatalf("center %d r=%d: dist of %d differs", center, r, v)
				}
			}
			for _, e := range direct.G.Edges() {
				if sub.EdgeMarked(e.U, e.V) != direct.EdgeMarked(e.U, e.V) {
					t.Fatalf("center %d r=%d: mark of %v differs", center, r, e)
				}
				if sub.Weight(e.U, e.V) != direct.Weight(e.U, e.V) {
					t.Fatalf("center %d r=%d: weight of %v differs", center, r, e)
				}
			}
		}
	}
}

func TestViewRestrictSubstitutesProof(t *testing.T) {
	in := NewInstance(graph.Path(5))
	p := RandomProof(in, 4, 1)
	big := BuildView(in, p, 3, 2)
	empty := big.Restrict(1, Proof{})
	for _, v := range empty.G.Nodes() {
		if empty.ProofOf(v).Len() != 0 {
			t.Fatalf("node %d kept proof bits after substitution", v)
		}
	}
}

func TestViewHelpers(t *testing.T) {
	in := NewInstance(graph.Cycle(5)).MarkEdge(1, 2)
	in.Weights = map[graph.Edge]int64{graph.NormEdge(2, 3): 7}
	w := BuildView(in, Proof{1: bitstr.Parse("01")}, 2, 1)
	if !w.EdgeMarked(2, 1) {
		t.Error("EdgeMarked direction sensitivity")
	}
	if w.Weight(3, 2) != 7 {
		t.Error("Weight direction sensitivity")
	}
	if w.Degree(2) != 2 {
		t.Errorf("Degree = %d", w.Degree(2))
	}
	if got := w.ProofOf(99); got.Len() != 0 {
		t.Error("unknown node proof not ε")
	}
}

func TestResultString(t *testing.T) {
	ok := &Result{Outputs: map[int]bool{1: true}}
	if !strings.Contains(ok.String(), "accepted") {
		t.Errorf("String = %q", ok.String())
	}
	bad := &Result{Outputs: map[int]bool{1: false, 2: true}}
	if !strings.Contains(bad.String(), "rejected by 1 of 2") {
		t.Errorf("String = %q", bad.String())
	}
}

func TestProofCloneIndependence(t *testing.T) {
	p := Proof{1: bitstr.Parse("101")}
	q := p.Clone()
	q[1] = bitstr.Parse("000")
	if !p[1].Equal(bitstr.Parse("101")) {
		t.Error("Clone shares storage")
	}
}

func TestInstanceCloneNilMaps(t *testing.T) {
	in := NewInstance(graph.Path(2))
	cp := in.Clone()
	if cp.NodeLabel != nil || cp.EdgeLabel != nil || cp.Weights != nil || cp.Global != nil {
		t.Error("Clone materialized nil maps")
	}
	in2 := NewInstance(graph.Path(2))
	in2.Global = Global{"k": 1}
	cp2 := in2.Clone()
	cp2.Global["k"] = 9
	if in2.Global["k"] != 1 {
		t.Error("Clone shares Global map")
	}
}

func TestFindValidProofReturnsAcceptedProof(t *testing.T) {
	// The search result, when non-nil, must itself verify.
	in := NewInstance(graph.Cycle(4))
	v := VerifierFunc{R: 1, F: func(w *View) bool {
		my := w.ProofOf(w.Center)
		if my.Len() != 1 {
			return false
		}
		for _, u := range w.Neighbors(w.Center) {
			p := w.ProofOf(u)
			if p.Len() != 1 || p.Bit(0) == my.Bit(0) {
				return false
			}
		}
		return true
	}}
	p := FindValidProof(in, v, 1)
	if p == nil {
		t.Fatal("no proof found")
	}
	if !Check(in, p, v).Accepted() {
		t.Fatal("returned proof does not verify")
	}
}

func TestMinProofSizeUnreachable(t *testing.T) {
	// A verifier that always rejects: MinProofSize reports -1.
	in := NewInstance(graph.Path(2))
	never := VerifierFunc{R: 0, F: func(*View) bool { return false }}
	if got := MinProofSize(in, never, 2); got != -1 {
		t.Errorf("MinProofSize = %d, want -1", got)
	}
}

func TestFlipBitOnEmptyProof(t *testing.T) {
	p := Proof{1: bitstr.Empty, 2: bitstr.Empty}
	q := FlipBit(p, 3)
	for v := range p {
		if !q[v].Equal(p[v]) {
			t.Error("FlipBit invented bits on empty labels")
		}
	}
}

func TestBuildViewRadiusZero(t *testing.T) {
	in := NewInstance(graph.Cycle(5)).SetNodeLabel(2, "z")
	w := BuildView(in, Proof{2: bitstr.Parse("1")}, 2, 0)
	if w.G.N() != 1 || w.G.M() != 0 {
		t.Errorf("radius-0 view: %v", w.G)
	}
	if w.Label(2) != "z" || w.ProofOf(2).Len() != 1 {
		t.Error("radius-0 view lost center data")
	}
}
