// Package core implements the definitions of Göös & Suomela (PODC 2011,
// §2): proofs, local verifiers, and locally checkable proof (LCP) schemes.
//
// A Proof P: V(G) → {0,1}* assigns a bit string to every node; its size is
// the maximum number of bits on any node. A Verifier is a computable map
// (G, P, v) → {0,1} that is local: its output at v depends only on the
// radius-r view (G[v,r], P[v,r], v) for a constant r. A Scheme bundles a
// verifier with a prover f such that (f, A) is a proof labelling scheme:
//
//	(i)  G ∈ P ⇒ A(G, f(G), v) = 1 for every node v;
//	(ii) G ∉ P ⇒ for every proof P some node v has A(G, P, v) = 0.
//
// The package provides the sequential reference runner (package dist runs
// the same verifiers on a goroutine-per-node message-passing runtime),
// proof-size accounting, adversarial proof manipulation for soundness
// experiments, and exhaustive minimum-proof-size search on tiny instances.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"lcp/internal/bitstr"
	"lcp/internal/graph"
)

// Node input labels used across the built-in schemes. Labels model the
// paper's "auxiliary information" (§2): distinguished nodes s and t for
// reachability problems, solution encodings for graph problems, etc.
const (
	LabelS      = "s"      // the distinguished source node
	LabelT      = "t"      // the distinguished target node
	LabelLeader = "leader" // leader-election solution marker
)

// Edge labels encoding solutions of graph problems (§2.3).
const (
	EdgeInSolution = "sol" // edge selected by the solution (matching, tree, cycle, …)
)

// Global holds input known to every node regardless of locality, such as
// the connectivity target k of §4.2 ("we assume that k is given as input
// to all nodes") or the weight bound W of §2.3.
type Global map[string]int64

// Instance is a graph together with its input labelling.
type Instance struct {
	G         *graph.Graph
	NodeLabel map[int]string
	EdgeLabel map[graph.Edge]string
	Weights   map[graph.Edge]int64
	Global    Global
}

// NewInstance wraps a bare graph as an instance with no labels.
func NewInstance(g *graph.Graph) *Instance {
	return &Instance{G: g}
}

// Clone returns a deep copy of the instance (the immutable graph is
// shared).
func (in *Instance) Clone() *Instance {
	cp := &Instance{G: in.G}
	if in.NodeLabel != nil {
		cp.NodeLabel = make(map[int]string, len(in.NodeLabel))
		for k, v := range in.NodeLabel {
			cp.NodeLabel[k] = v
		}
	}
	if in.EdgeLabel != nil {
		cp.EdgeLabel = make(map[graph.Edge]string, len(in.EdgeLabel))
		for k, v := range in.EdgeLabel {
			cp.EdgeLabel[k] = v
		}
	}
	if in.Weights != nil {
		cp.Weights = make(map[graph.Edge]int64, len(in.Weights))
		for k, v := range in.Weights {
			cp.Weights[k] = v
		}
	}
	if in.Global != nil {
		cp.Global = make(Global, len(in.Global))
		for k, v := range in.Global {
			cp.Global[k] = v
		}
	}
	return cp
}

// SetNodeLabel labels a node, allocating the map on first use.
func (in *Instance) SetNodeLabel(v int, label string) *Instance {
	if in.NodeLabel == nil {
		in.NodeLabel = make(map[int]string)
	}
	in.NodeLabel[v] = label
	return in
}

// MarkEdge marks an undirected edge as part of the solution.
func (in *Instance) MarkEdge(u, v int) *Instance {
	if in.EdgeLabel == nil {
		in.EdgeLabel = make(map[graph.Edge]string)
	}
	in.EdgeLabel[graph.NormEdge(u, v)] = EdgeInSolution
	return in
}

// MarkedEdges returns the solution edges, sorted.
func (in *Instance) MarkedEdges() []graph.Edge {
	var es []graph.Edge
	for e, l := range in.EdgeLabel {
		if l == EdgeInSolution {
			es = append(es, e)
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

// FindLabel returns the nodes carrying the given label, sorted.
func (in *Instance) FindLabel(label string) []int {
	var out []int
	for v, l := range in.NodeLabel {
		if l == label {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// Relabel applies an identifier mapping to the instance (graph, labels,
// weights). Proofs must be relabelled separately via Proof.Relabel. This
// realizes the paper's closure of properties under identifier
// re-assignment, used by isomorphism-invariance tests.
func (in *Instance) Relabel(m map[int]int) *Instance {
	out := &Instance{G: in.G.Relabel(m)}
	if in.NodeLabel != nil {
		out.NodeLabel = make(map[int]string, len(in.NodeLabel))
		for v, l := range in.NodeLabel {
			out.NodeLabel[m[v]] = l
		}
	}
	if in.EdgeLabel != nil {
		out.EdgeLabel = make(map[graph.Edge]string, len(in.EdgeLabel))
		for e, l := range in.EdgeLabel {
			out.EdgeLabel[graph.NormEdge(m[e.U], m[e.V])] = l
		}
	}
	if in.Weights != nil {
		out.Weights = make(map[graph.Edge]int64, len(in.Weights))
		for e, w := range in.Weights {
			out.Weights[graph.NormEdge(m[e.U], m[e.V])] = w
		}
	}
	if in.Global != nil {
		out.Global = make(Global, len(in.Global))
		for k, v := range in.Global {
			out.Global[k] = v
		}
	}
	return out
}

// Proof assigns a bit string to each node (§2.1). Nodes without an entry
// carry the empty string ε.
type Proof map[int]bitstr.String

// Size returns |P|: the maximum number of bits at any node.
func (p Proof) Size() int {
	max := 0
	for _, s := range p {
		if s.Len() > max {
			max = s.Len()
		}
	}
	return max
}

// TotalBits returns the sum of bits over all nodes.
func (p Proof) TotalBits() int {
	total := 0
	for _, s := range p {
		total += s.Len()
	}
	return total
}

// Clone returns a copy of the proof.
func (p Proof) Clone() Proof {
	cp := make(Proof, len(p))
	for k, v := range p {
		cp[k] = v
	}
	return cp
}

// Relabel re-addresses the proof under an identifier mapping.
func (p Proof) Relabel(m map[int]int) Proof {
	out := make(Proof, len(p))
	for v, s := range p {
		out[m[v]] = s
	}
	return out
}

// Truncated returns the proof with every label truncated to at most bits
// bits — the adversarial "too-small proof" used by lower-bound
// experiments.
func (p Proof) Truncated(bits int) Proof {
	out := make(Proof, len(p))
	for v, s := range p {
		out[v] = s.Truncate(bits)
	}
	return out
}

// View is the radius-r neighbourhood (G[v,r], P[v,r], v) a verifier sees.
//
// Verifiers must read proof bits through ProofOf (or BallProof when the
// restriction is needed as a whole) — never the Proof field directly:
// the field is nil on the engine's cached flat-proof views, where the
// restriction lives in Flat instead, and a direct read silently sees an
// empty proof there. The two accessors are identical under both
// representations; the raw fields are exported for runtimes and tests
// that construct views, not for verifier logic.
type View struct {
	Center    int
	Radius    int
	G         *graph.Graph // the induced subgraph G[v,r]
	Dist      map[int]int  // distance from Center within the ball
	Proof     Proof        // restricted to the ball; nil when Flat is set — use ProofOf/BallProof
	NodeLabel map[int]string
	EdgeLabel map[graph.Edge]string
	Weights   map[graph.Edge]int64
	Global    Global
	// Flat, when non-nil, is an array-backed proof table for the WHOLE
	// instance, shared read-only by every view of one check; ProofOf
	// restricts it to the ball through Dist. Exactly one of Proof and
	// Flat is set. The engine's cached-skeleton path uses Flat so that
	// no per-ball proof map is built per node per proof; one-shot views
	// (BuildView, dist.Collect) carry the restricted map.
	Flat *FlatProof
}

// ProofOf returns the proof string of a node in the view (ε if the node
// carries no proof or lies outside the ball).
func (w *View) ProofOf(v int) bitstr.String {
	if w.Flat != nil {
		if _, inBall := w.Dist[v]; inBall {
			return w.Flat.At(v)
		}
		return bitstr.String{}
	}
	return w.Proof[v]
}

// BallProof returns the view's proof restriction as a map-backed Proof,
// whichever representation the view carries, entry-for-entry identical
// to what BuildView materializes (explicit ε entries included).
// Verifiers that need the restriction as a value — to re-address it, or
// to hand it to Restrict for an inner verifier (the §7.1 M2 translation
// does both) — must use this instead of reading the Proof field, which
// is nil on the engine's flat-proof views. The result must be treated
// as read-only: on the map path it aliases the view's own restriction.
func (w *View) BallProof() Proof {
	if w.Flat == nil {
		return w.Proof
	}
	p := make(Proof, len(w.Dist))
	for v := range w.Dist {
		if s, ok := w.Flat.Entry(v); ok {
			p[v] = s
		}
	}
	return p
}

// Label returns the input label of a node in the view.
func (w *View) Label(v int) string { return w.NodeLabel[v] }

// EdgeMarked reports whether the (undirected) edge is part of the solution.
func (w *View) EdgeMarked(u, v int) bool {
	return w.EdgeLabel[graph.NormEdge(u, v)] == EdgeInSolution
}

// Weight returns the weight of edge (u, v) in the view.
func (w *View) Weight(u, v int) int64 { return w.Weights[graph.NormEdge(u, v)] }

// KnowsFully reports whether the full neighbourhood of node v is visible
// in the view: true iff dist(center, v) < radius. Verifiers must only
// reason about the complete adjacency of such nodes.
func (w *View) KnowsFully(v int) bool { return w.Dist[v] < w.Radius }

// Neighbors lists v's neighbours within the view.
func (w *View) Neighbors(v int) []int { return w.G.Neighbors(v) }

// Degree returns v's degree within the view (its true degree iff
// KnowsFully(v)).
func (w *View) Degree(v int) int { return w.G.Degree(v) }

// BuildView extracts the radius-r view of center from an instance and
// proof. This is the sequential reference implementation; dist.Collect
// produces identical views via message passing (a property test asserts
// agreement).
func BuildView(in *Instance, p Proof, center, radius int) *View {
	// One fused pass: the BFS and the induced-subgraph assembly share a
	// pooled epoch-stamped scratch (graph.InducedBall), so the only maps
	// built here are the ones the View API itself carries.
	ball, nodes, dist := in.G.InducedBall(center, radius)
	w := &View{
		Center: center,
		Radius: radius,
		G:      ball,
		Dist:   dist,
		Proof:  make(Proof, len(nodes)),
		Global: in.Global,
	}
	for _, v := range nodes {
		if s, ok := p[v]; ok {
			w.Proof[v] = s
		}
	}
	if in.NodeLabel != nil {
		w.NodeLabel = make(map[int]string)
		for _, v := range nodes {
			if l, ok := in.NodeLabel[v]; ok {
				w.NodeLabel[v] = l
			}
		}
	}
	if in.EdgeLabel != nil || in.Weights != nil {
		w.EdgeLabel = make(map[graph.Edge]string)
		w.Weights = make(map[graph.Edge]int64)
		for _, e := range ball.Edges() {
			if l, ok := in.EdgeLabel[e]; ok {
				w.EdgeLabel[e] = l
			}
			if wt, ok := in.Weights[e]; ok {
				w.Weights[e] = wt
			}
		}
	}
	return w
}

// Restrict returns the sub-view of radius r ≤ w.Radius around the same
// center. Because balls nest, the result equals the radius-r view built
// directly from the full instance; wrappers use it to simulate an inner
// verifier with a smaller horizon (§7.3). The proof is NOT inherited:
// pass the proof the inner verifier should see.
func (w *View) Restrict(r int, proof Proof) *View {
	var keep []int
	dist := make(map[int]int)
	for v, d := range w.Dist {
		if d <= r {
			keep = append(keep, v)
			dist[v] = d
		}
	}
	sort.Ints(keep)
	sub := &View{
		Center: w.Center,
		Radius: r,
		G:      w.G.Induced(keep),
		Dist:   dist,
		Proof:  make(Proof),
		Global: w.Global,
	}
	for _, v := range keep {
		if s, ok := proof[v]; ok {
			sub.Proof[v] = s
		}
	}
	if w.NodeLabel != nil {
		sub.NodeLabel = make(map[int]string)
		for _, v := range keep {
			if l, ok := w.NodeLabel[v]; ok {
				sub.NodeLabel[v] = l
			}
		}
	}
	if w.EdgeLabel != nil || w.Weights != nil {
		sub.EdgeLabel = make(map[graph.Edge]string)
		sub.Weights = make(map[graph.Edge]int64)
		for _, e := range sub.G.Edges() {
			if l, ok := w.EdgeLabel[e]; ok {
				sub.EdgeLabel[e] = l
			}
			if wt, ok := w.Weights[e]; ok {
				sub.Weights[e] = wt
			}
		}
	}
	return sub
}

// Verifier is a local verifier: Radius is its local horizon r, and Verify
// computes the output of View.Center from the view alone.
type Verifier interface {
	Radius() int
	Verify(*View) bool
}

// VerifierFunc adapts a function to the Verifier interface.
type VerifierFunc struct {
	R int
	F func(*View) bool
}

// Radius returns the local horizon.
func (v VerifierFunc) Radius() int { return v.R }

// Verify runs the wrapped function.
func (v VerifierFunc) Verify(w *View) bool { return v.F(w) }

var _ Verifier = VerifierFunc{}

// ErrNotInProperty is returned by provers when the instance is a
// no-instance: no proof exists, by design.
var ErrNotInProperty = errors.New("lcp: instance does not satisfy the property; no proof exists")

// Scheme is a proof labelling scheme (f, A): a prover constructing proofs
// for yes-instances plus a local verifier.
type Scheme interface {
	// Name identifies the scheme, e.g. "bipartite".
	Name() string
	// Verifier returns the local verifier A.
	Verifier() Verifier
	// Prove computes f(G): a proof accepted everywhere, or
	// ErrNotInProperty for no-instances.
	Prove(*Instance) (Proof, error)
}

// SizeBound describes the advertised proof size s(n) of a scheme, used by
// the experiment harness to check measured sizes against the paper's
// bounds.
type SizeBound func(in *Instance) int

// Result is the outcome of running a verifier on every node.
type Result struct {
	// Output per node; missing entries did not run.
	Outputs map[int]bool
}

// Accepted reports whether all nodes output 1 (the yes-verdict of the
// distributed decision model).
func (r *Result) Accepted() bool {
	for _, b := range r.Outputs {
		if !b {
			return false
		}
	}
	return true
}

// Rejectors returns the nodes that output 0, sorted.
func (r *Result) Rejectors() []int {
	var out []int
	for v, b := range r.Outputs {
		if !b {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// String summarizes the result.
func (r *Result) String() string {
	if r.Accepted() {
		return fmt.Sprintf("accepted by all %d nodes", len(r.Outputs))
	}
	return fmt.Sprintf("rejected by %d of %d nodes", len(r.Rejectors()), len(r.Outputs))
}

// Check runs the verifier on every node sequentially and collects outputs.
func Check(in *Instance, p Proof, v Verifier) *Result {
	//lint:ignore ctxflow ctx-less Check is the documented uncancellable entry point; CheckCtx is the threaded variant
	res, _ := CheckCtx(context.Background(), in, p, v)
	return res
}

// CheckCtx is Check with context cancellation: the sequential sweep
// aborts between nodes once the context is done and returns the partial
// result together with ctx.Err(). One node's view construction and
// verifier call is the unit of work. A background context adds no
// per-node cost (its Done channel is nil and the check is skipped).
func CheckCtx(ctx context.Context, in *Instance, p Proof, v Verifier) (*Result, error) {
	res := &Result{Outputs: make(map[int]bool, in.G.N())}
	radius := v.Radius()
	done := ctx.Done()
	for _, node := range in.G.Nodes() {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return res, err
			}
		}
		res.Outputs[node] = v.Verify(BuildView(in, p, node, radius))
	}
	return res, nil
}

// ProveAndCheck is the end-to-end happy path: prove, then verify
// everywhere. It returns an error if the prover fails or any node rejects
// (which would mean the scheme violates completeness).
func ProveAndCheck(in *Instance, s Scheme) (Proof, *Result, error) {
	p, err := s.Prove(in)
	if err != nil {
		return nil, nil, err
	}
	res := Check(in, p, s.Verifier())
	if !res.Accepted() {
		return p, res, fmt.Errorf("lcp: scheme %q: completeness violated: %s (rejectors %v)",
			s.Name(), res, res.Rejectors())
	}
	return p, res, nil
}
