package core

import (
	"math/rand"

	"lcp/internal/bitstr"
)

// Adversarial proof machinery for soundness experiments: random proofs,
// bit-flips, label transplants, and the exhaustive search that certifies
// condition (ii) of §2.2 exactly on tiny instances.

// RandomProof assigns every node an independent random string of exactly
// bits bits.
func RandomProof(in *Instance, bits int, seed int64) Proof {
	rng := rand.New(rand.NewSource(seed))
	p := make(Proof, in.G.N())
	for _, v := range in.G.Nodes() {
		var w bitstr.Writer
		for i := 0; i < bits; i++ {
			w.WriteBit(rng.Intn(2) == 1)
		}
		p[v] = w.String()
	}
	return p
}

// FlipBit returns a copy of the proof with one pseudo-random bit flipped
// (choosing among nodes with non-empty labels). It returns the proof
// unchanged if every label is empty.
func FlipBit(p Proof, seed int64) Proof {
	rng := rand.New(rand.NewSource(seed))
	var nodes []int
	for v, s := range p {
		if s.Len() > 0 {
			nodes = append(nodes, v)
		}
	}
	if len(nodes) == 0 {
		return p.Clone()
	}
	// Deterministic order for reproducibility.
	sortInts(nodes)
	v := nodes[rng.Intn(len(nodes))]
	s := p[v]
	pos := rng.Intn(s.Len())
	var w bitstr.Writer
	for i := 0; i < s.Len(); i++ {
		b := s.Bit(i)
		if i == pos {
			b = !b
		}
		w.WriteBit(b)
	}
	out := p.Clone()
	out[v] = w.String()
	return out
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// enumerateProofs iterates over all proofs that assign each node of nodes
// a string of length ≤ maxBits, invoking fn for each; fn returning true
// stops the enumeration (and makes enumerateProofs return true).
// The number of proofs is (2^{maxBits+1} − 1)^len(nodes): strictly for
// tiny instances.
func enumerateProofs(nodes []int, maxBits int, fn func(Proof) bool) bool {
	// All candidate strings of length 0..maxBits.
	var candidates []bitstr.String
	for l := 0; l <= maxBits; l++ {
		for v := 0; v < 1<<uint(l); v++ {
			candidates = append(candidates, bitstr.FromUint(uint64(v), l))
		}
	}
	choice := make([]int, len(nodes))
	p := make(Proof, len(nodes))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(nodes) {
			return fn(p)
		}
		for c := range candidates {
			choice[i] = c
			p[nodes[i]] = candidates[c]
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

// FindValidProof exhaustively searches for a proof of size ≤ maxBits that
// the verifier accepts on every node. It returns the first one found, or
// nil. Exponential: use only on tiny instances.
func FindValidProof(in *Instance, v Verifier, maxBits int) Proof {
	var found Proof
	enumerateProofs(in.G.Nodes(), maxBits, func(p Proof) bool {
		if Check(in, p, v).Accepted() {
			found = p.Clone()
			return true
		}
		return false
	})
	return found
}

// MinProofSize returns the smallest s ≤ maxBits such that some proof of
// size ≤ s is accepted everywhere, or -1 if none exists up to maxBits.
// Combined with a scheme's prover this measures tightness: for
// yes-instances it is the exact minimum proof size for this verifier.
func MinProofSize(in *Instance, v Verifier, maxBits int) int {
	for s := 0; s <= maxBits; s++ {
		if FindValidProof(in, v, s) != nil {
			return s
		}
	}
	return -1
}

// CertifySoundness verifies condition (ii) of §2.2 exhaustively on a
// no-instance: no proof of size ≤ maxBits is accepted by all nodes. It
// returns false (and the offending proof) if the verifier can be fooled.
func CertifySoundness(in *Instance, v Verifier, maxBits int) (bool, Proof) {
	var fooling Proof
	fooled := enumerateProofs(in.G.Nodes(), maxBits, func(p Proof) bool {
		if Check(in, p, v).Accepted() {
			fooling = p.Clone()
			return true
		}
		return false
	})
	return !fooled, fooling
}
