package core

import (
	"lcp/internal/bitstr"

	"lcp/internal/graph"
)

// FlatProof is a dense, array-backed proof representation: the bit
// string of node id lives at position g.Index(id) of a flat slice,
// aligned with g.Nodes().
//
// The map-backed Proof is the right shape for provers and adversaries
// (sparse edits, relabelling, splicing), but the engine's hot path — one
// proof checked at every node of a cached skeleton — used to restrict
// the map into a fresh per-ball map for every node of every proof:
// O(Σ|ball(v)|) allocations and map inserts per check. A FlatProof is
// loaded once per check in O(n) and then shared read-only by every
// node's view; the per-node restriction disappears entirely, with ball
// membership enforced by View.ProofOf against the view's distance map.
//
// Presence is tracked separately from the bits so that an explicit ε
// entry (a node assigned the empty string) survives the representation
// change: View.BallProof must reproduce exactly the map BuildView would
// have built, entry-for-entry, not just string-for-string.
//
// A FlatProof is mutable via Load and therefore owned by a single check
// at a time (internal/engine recycles them through a pool); the Views it
// is attached to must not outlive the check.
type FlatProof struct {
	g    *graph.Graph
	bits []bitstr.String
	has  []bool
}

// NewFlatProof allocates an empty flat table aligned with g.Nodes().
func NewFlatProof(g *graph.Graph) *FlatProof {
	return &FlatProof{g: g, bits: make([]bitstr.String, g.N()), has: make([]bool, g.N())}
}

// Load replaces the table contents with p, clearing previous entries.
// Proof entries addressing nodes outside the graph are ignored, exactly
// as BuildView ignores them when restricting a map-backed proof.
func (fp *FlatProof) Load(p Proof) {
	clear(fp.bits)
	clear(fp.has)
	for id, s := range p {
		if i, ok := fp.g.Lookup(id); ok {
			fp.bits[i] = s
			fp.has[i] = true
		}
	}
}

// At returns the proof string of node id (ε for nodes without an entry
// or outside the graph).
func (fp *FlatProof) At(id int) bitstr.String {
	if i, ok := fp.g.Lookup(id); ok {
		return fp.bits[i]
	}
	return bitstr.String{}
}

// Entry returns the proof string of node id and whether the proof
// explicitly assigns one — the flat analogue of a map lookup's comma-ok,
// distinguishing "assigned ε" from "no entry".
func (fp *FlatProof) Entry(id int) (bitstr.String, bool) {
	if i, ok := fp.g.Lookup(id); ok && fp.has[i] {
		return fp.bits[i], true
	}
	return bitstr.String{}, false
}
