package core

import (
	"lcp/internal/bitstr"

	"lcp/internal/graph"
)

// FlatProof is a dense, array-backed proof representation: the bit
// string of node id lives at position g.Index(id) of a flat slice,
// aligned with g.Nodes().
//
// The map-backed Proof is the right shape for provers and adversaries
// (sparse edits, relabelling, splicing), but the engine's hot path — one
// proof checked at every node of a cached skeleton — used to restrict
// the map into a fresh per-ball map for every node of every proof:
// O(Σ|ball(v)|) allocations and map inserts per check. A FlatProof is
// loaded once per check in O(n) and then shared read-only by every
// node's view; the per-node restriction disappears entirely, with ball
// membership enforced by View.ProofOf against the view's distance map.
//
// Presence is tracked separately from the bits so that an explicit ε
// entry (a node assigned the empty string) survives the representation
// change: View.BallProof must reproduce exactly the map BuildView would
// have built, entry-for-entry, not just string-for-string.
//
// A FlatProof is mutable via Load and therefore owned by a single check
// at a time (internal/engine recycles them through a pool); the Views it
// is attached to must not outlive the check.
//
// A FlatProof may also be a strided column view into a ProofColumns
// table: stride > 1 means node index i lives at slot i*stride+off of a
// node-major k-wide table shared with the other k-1 columns. The
// zero-stride form (the common case) keeps the plain i indexing.
type FlatProof struct {
	g    *graph.Graph
	bits []bitstr.String
	has  []bool

	// stride/off make the table a column of a ProofColumns batch:
	// slot(i) = i*stride + off. stride <= 1 means the table is dense
	// and off is ignored.
	stride int
	off    int
}

// slot maps a graph node index to its position in the backing arrays,
// honouring the column stride when the table is a ProofColumns view.
func (fp *FlatProof) slot(i int) int {
	if fp.stride > 1 {
		return i*fp.stride + fp.off
	}
	return i
}

// NewFlatProof allocates an empty flat table aligned with g.Nodes().
func NewFlatProof(g *graph.Graph) *FlatProof {
	return &FlatProof{g: g, bits: make([]bitstr.String, g.N()), has: make([]bool, g.N())}
}

// Load replaces the table contents with p, clearing previous entries.
// Proof entries addressing nodes outside the graph are ignored, exactly
// as BuildView ignores them when restricting a map-backed proof.
func (fp *FlatProof) Load(p Proof) {
	if fp.stride > 1 {
		panic("core: Load on a ProofColumns column view; load the ProofColumns instead")
	}
	clear(fp.bits)
	clear(fp.has)
	for id, s := range p {
		if i, ok := fp.g.Lookup(id); ok {
			fp.bits[i] = s
			fp.has[i] = true
		}
	}
}

// At returns the proof string of node id (ε for nodes without an entry
// or outside the graph).
func (fp *FlatProof) At(id int) bitstr.String {
	if i, ok := fp.g.Lookup(id); ok {
		return fp.bits[fp.slot(i)]
	}
	return bitstr.String{}
}

// Entry returns the proof string of node id and whether the proof
// explicitly assigns one — the flat analogue of a map lookup's comma-ok,
// distinguishing "assigned ε" from "no entry".
func (fp *FlatProof) Entry(id int) (bitstr.String, bool) {
	if i, ok := fp.g.Lookup(id); ok && fp.has[fp.slot(i)] {
		return fp.bits[fp.slot(i)], true
	}
	return bitstr.String{}, false
}
