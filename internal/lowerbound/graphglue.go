package lowerbound

import (
	"fmt"
	"sort"
	"strings"

	"lcp/internal/core"
	"lcp/internal/graph"
	"lcp/internal/graphalg"
)

// §6.1/§6.2: the G₁⊙G₂ construction and its fooling experiment.
//
// G₁⊙G₂ consists of C(G₁, k) (the canonical form of G₁ with identifiers
// shifted to k+1..2k), C(G₂, 2k) (identifiers 2k+1..3k) and the path
// (k+1, 1, 2, …, k, 2k+1). For asymmetric G₁, G₂: G₁⊙G₂ is symmetric iff
// G₁ ≅ G₂. Since log |F_k| = Θ(k²) for asymmetric connected graphs but a
// proof of size b leaves only b·(2r+1) bits in the window U = {1..2r+1},
// two distinct graphs must eventually collide; splicing their proofs
// yields an asymmetric graph in which every view is identical to a view
// of a symmetric yes-instance.

// Odot builds G₁⊙G₂ with block size k = n(G₁) = n(G₂).
func Odot(g1, g2 *graph.Graph) *graph.Graph {
	if g1.N() != g2.N() {
		panic("lowerbound: Odot requires equal orders")
	}
	k := g1.N()
	c1 := graphalg.CanonicalForm(g1).ShiftIDs(k)
	c2 := graphalg.CanonicalForm(g2).ShiftIDs(2 * k)
	b := graph.NewBuilder(graph.Undirected)
	for _, e := range c1.Edges() {
		b.AddEdge(e.U, e.V)
	}
	for _, e := range c2.Edges() {
		b.AddEdge(e.U, e.V)
	}
	// Path (k+1, 1, 2, …, k, 2k+1).
	b.AddEdge(k+1, 1)
	for i := 1; i < k; i++ {
		b.AddEdge(i, i+1)
	}
	b.AddEdge(k, 2*k+1)
	return b.Graph()
}

// GraphGluingReport is the outcome of the §6.1/§6.2 experiment.
type GraphGluingReport struct {
	Kind           string // "symmetric" (§6.1) or "fixpoint-free" (§6.2)
	K              int    // block size
	FamilySize     int    // |F_k|
	FamilyBitsLog2 int    // ⌈log₂|F_k|⌉ — the information a window must carry
	WindowNodes    int    // |U| = 2r+1
	BudgetBits     int    // adversarial per-node proof budget b
	WindowCapacity int    // b·|U| — pigeonhole capacity of the window
	HonestBits     int    // honest scheme proof size (per node)
	HonestDistinct bool   // honest windows distinct across the family
	CollisionFound bool   // truncated windows collided
	Pair           [2]int // indices into the family of the colliding pair
	ViewsIdentical bool   // all views of the fooling instance covered
	FooledIsYes    bool   // ground truth on the fooling instance (must be false)
}

// String renders the report.
func (r *GraphGluingReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph-gluing %s: k=%d |F_k|=%d (log₂≈%d bits) window=%d budget=%db capacity=%db\n",
		r.Kind, r.K, r.FamilySize, r.FamilyBitsLog2, r.WindowNodes, r.BudgetBits, r.WindowCapacity)
	fmt.Fprintf(&b, "  honest proofs: %d bits/node, windows distinct: %v\n", r.HonestBits, r.HonestDistinct)
	if !r.CollisionFound {
		fmt.Fprintf(&b, "  no truncated collision found (capacity %d ≥ log|F_k| %d?)", r.WindowCapacity, r.FamilyBitsLog2)
		return b.String()
	}
	fmt.Fprintf(&b, "  collision: family[%d] vs family[%d]; fooling views identical: %v; fooling instance is yes: %v",
		r.Pair[0], r.Pair[1], r.ViewsIdentical, r.FooledIsYes)
	return b.String()
}

// EnumerateAsymmetricConnected returns one representative (canonical
// form) per isomorphism class of asymmetric connected graphs on k nodes.
// Exponential in k²; intended for k ≤ 7.
func EnumerateAsymmetricConnected(k int) []*graph.Graph {
	var out []*graph.Graph
	seen := map[string]bool{}
	enumerateConnectedGraphsK(k, func(g *graph.Graph) {
		c := graphalg.CanonicalForm(g)
		key := canonKey(c)
		if seen[key] {
			return
		}
		seen[key] = true
		if graphalg.IsAsymmetric(c) {
			out = append(out, c)
		}
	})
	return out
}

func canonKey(c *graph.Graph) string {
	var b strings.Builder
	for _, e := range c.Edges() {
		fmt.Fprintf(&b, "%d-%d;", e.U, e.V)
	}
	return b.String()
}

func enumerateConnectedGraphsK(n int, fn func(*graph.Graph)) {
	var pool []graph.Edge
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			pool = append(pool, graph.Edge{U: i, V: j})
		}
	}
	total := 1 << uint(len(pool))
	for mask := 0; mask < total; mask++ {
		b := graph.NewBuilder(graph.Undirected)
		for i := 1; i <= n; i++ {
			b.AddNode(i)
		}
		for i, e := range pool {
			if mask&(1<<uint(i)) != 0 {
				b.AddEdge(e.U, e.V)
			}
		}
		g := b.Graph()
		if graphalg.Connected(g) {
			fn(g)
		}
	}
}

// RunGraphGluing executes the §6.1 experiment: family F_k of asymmetric
// connected graphs, honest proofs from the given scheme on each G⊙G,
// window distinctness of the honest proofs, then the pigeonhole collision
// under a per-node budget of budgetBits and the resulting fooling
// construction G₁⊙G₂.
//
// isYes is ground truth on the fooling instance (symmetric / has
// fixpoint-free symmetry). kind labels the report.
func RunGraphGluing(kind string, scheme core.Scheme, family []*graph.Graph,
	isYes func(*graph.Graph) bool, radius, budgetBits int) (*GraphGluingReport, error) {

	if len(family) < 2 {
		return nil, fmt.Errorf("lowerbound: family too small (%d)", len(family))
	}
	k := family[0].N()
	window := 2*radius + 1
	if k < 3*radius+2 {
		return nil, fmt.Errorf("lowerbound: k=%d too small for radius %d (need ≥ 3r+2)", k, radius)
	}
	report := &GraphGluingReport{
		Kind: kind, K: k, FamilySize: len(family),
		FamilyBitsLog2: log2Ceil(len(family)),
		WindowNodes:    window, BudgetBits: budgetBits,
		WindowCapacity: budgetBits * window,
	}

	// Honest proofs on every G⊙G.
	type run struct {
		g     *graph.Graph // the family member
		in    *core.Instance
		proof core.Proof
	}
	runs := make([]run, len(family))
	honestWindows := map[string]bool{}
	for i, g := range family {
		gg := Odot(g, g)
		in := core.NewInstance(gg)
		proof, err := scheme.Prove(in)
		if err != nil {
			return nil, fmt.Errorf("lowerbound: prover failed on family[%d]⊙itself: %w", i, err)
		}
		runs[i] = run{g: g, in: in, proof: proof}
		if proof.Size() > report.HonestBits {
			report.HonestBits = proof.Size()
		}
		honestWindows[windowKey(proof, window)] = true
	}
	report.HonestDistinct = len(honestWindows) == len(family)

	// Truncate to the budget and look for a window collision.
	truncWindows := map[string]int{}
	pair := [2]int{-1, -1}
	for i := range runs {
		key := windowKey(runs[i].proof.Truncated(budgetBits), window)
		if j, ok := truncWindows[key]; ok {
			pair = [2]int{j, i}
			break
		}
		truncWindows[key] = i
	}
	if pair[0] < 0 {
		return report, nil
	}
	report.CollisionFound = true
	report.Pair = pair

	// Build the fooling instance G₁⊙G₂ with spliced truncated proofs.
	r1, r2 := runs[pair[0]], runs[pair[1]]
	fool := core.NewInstance(Odot(r1.g, r2.g))
	p1 := r1.proof.Truncated(budgetBits)
	p2 := r2.proof.Truncated(budgetBits)
	spliced := core.Proof{}
	for _, v := range fool.G.Nodes() {
		switch {
		case v >= k+1 && v <= 2*k:
			spliced[v] = p1[v] // the G₁ copy
		case v <= window:
			spliced[v] = p1[v] // common window (equals p2[v] by collision)
		default:
			spliced[v] = p2[v] // rest of the path and the G₂ copy
		}
	}
	report.ViewsIdentical = allViewsCovered(fool, spliced,
		[]yesRun{{r1.in, p1}, {r2.in, p2}}, radius)
	report.FooledIsYes = isYes(fool.G)
	return report, nil
}

// windowKey serializes the proof labels of nodes 1..window.
func windowKey(p core.Proof, window int) string {
	var b strings.Builder
	for v := 1; v <= window; v++ {
		b.WriteString(p[v].Key())
		b.WriteByte('/')
	}
	return b.String()
}

func log2Ceil(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}

// EnumerateRootedTrees returns one representative per isomorphism class
// of rooted trees on k nodes, each given as an unrooted graph whose
// canonical attachment node is identifier 1 (trees are re-labelled so
// that the root is the node the ⊙ path attaches to). Counts follow OEIS
// A000081.
func EnumerateRootedTrees(k int) []*graph.Graph {
	if k == 1 {
		return []*graph.Graph{graph.Path(1)}
	}
	seen := map[string]bool{}
	var out []*graph.Graph
	// Enumerate labelled trees via Prüfer sequences, then all root
	// choices, dedup by rooted canonical string.
	seq := make([]int, k-2)
	var rec func(pos int)
	rec = func(pos int) {
		if pos == len(seq) {
			tree := treeFromPrufer(seq, k)
			for root := 1; root <= k; root++ {
				key := rootedCanonString(tree, root, 0)
				if seen[key] {
					continue
				}
				seen[key] = true
				out = append(out, rerootTree(tree, root))
			}
			return
		}
		for v := 1; v <= k; v++ {
			seq[pos] = v
			rec(pos + 1)
		}
	}
	rec(0)
	return out
}

// treeFromPrufer decodes a Prüfer sequence over 1..k.
func treeFromPrufer(seq []int, k int) *graph.Graph {
	degree := make([]int, k+1)
	for i := 1; i <= k; i++ {
		degree[i] = 1
	}
	for _, v := range seq {
		degree[v]++
	}
	b := graph.NewBuilder(graph.Undirected)
	ptr := 1
	for degree[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, v := range seq {
		b.AddEdge(leaf, v)
		degree[v]--
		if degree[v] == 1 && v < ptr {
			leaf = v
		} else {
			ptr++
			for ptr <= k && degree[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	b.AddEdge(leaf, k)
	return b.Graph()
}

// rootedCanonString computes the classic sorted-subtree canonical string.
func rootedCanonString(t *graph.Graph, v, parent int) string {
	var subs []string
	for _, u := range t.Neighbors(v) {
		if u != parent {
			subs = append(subs, rootedCanonString(t, u, v))
		}
	}
	sort.Strings(subs)
	return "(" + strings.Join(subs, "") + ")"
}

// rerootTree relabels t so that root becomes identifier 1 and the rest
// follow in BFS order — the canonical representative used by Odot.
func rerootTree(t *graph.Graph, root int) *graph.Graph {
	m := map[int]int{root: 1}
	next := 2
	queue := []int{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range t.Neighbors(v) {
			if _, ok := m[u]; !ok {
				m[u] = next
				next++
				queue = append(queue, u)
			}
		}
	}
	return t.Relabel(m)
}

// OdotTrees is the §6.2 variant: two rooted trees joined by the path,
// with the path attaching at each tree's root (identifier 1 of the
// representative). Unlike Odot it does NOT canonicalize — the family
// representatives are already in root-first form, and re-canonicalizing
// would forget the root.
func OdotTrees(t1, t2 *graph.Graph) *graph.Graph {
	if t1.N() != t2.N() {
		panic("lowerbound: OdotTrees requires equal orders")
	}
	k := t1.N()
	c1 := t1.ShiftIDs(k)     // root at k+1
	c2 := t2.ShiftIDs(2 * k) // root at 2k+1
	b := graph.NewBuilder(graph.Undirected)
	for _, e := range c1.Edges() {
		b.AddEdge(e.U, e.V)
	}
	for _, e := range c2.Edges() {
		b.AddEdge(e.U, e.V)
	}
	b.AddEdge(k+1, 1)
	for i := 1; i < k; i++ {
		b.AddEdge(i, i+1)
	}
	b.AddEdge(k, 2*k+1)
	return b.Graph()
}

// RunTreeGluing is the §6.2 experiment: rooted trees, the fixpoint-free
// scheme, Θ(k) honest certificates, o(k) budgets collide.
func RunTreeGluing(scheme core.Scheme, family []*graph.Graph, radius, budgetBits int,
	isYes func(*graph.Graph) bool) (*GraphGluingReport, error) {

	if len(family) < 2 {
		return nil, fmt.Errorf("lowerbound: family too small (%d)", len(family))
	}
	k := family[0].N()
	if k%2 != 0 {
		return nil, fmt.Errorf("lowerbound: §6.2 needs even k (the path flip must be fixpoint-free)")
	}
	window := 2*radius + 1
	if k < 3*radius+2 {
		return nil, fmt.Errorf("lowerbound: k=%d too small for radius %d", k, radius)
	}
	report := &GraphGluingReport{
		Kind: "fixpoint-free", K: k, FamilySize: len(family),
		FamilyBitsLog2: log2Ceil(len(family)),
		WindowNodes:    window, BudgetBits: budgetBits,
		WindowCapacity: budgetBits * window,
	}
	type run struct {
		g     *graph.Graph
		in    *core.Instance
		proof core.Proof
	}
	runs := make([]run, len(family))
	honestWindows := map[string]bool{}
	for i, g := range family {
		in := core.NewInstance(OdotTrees(g, g))
		proof, err := scheme.Prove(in)
		if err != nil {
			return nil, fmt.Errorf("lowerbound: prover failed on tree[%d]⊙itself: %w", i, err)
		}
		runs[i] = run{g: g, in: in, proof: proof}
		if proof.Size() > report.HonestBits {
			report.HonestBits = proof.Size()
		}
		honestWindows[windowKey(proof, window)] = true
	}
	report.HonestDistinct = len(honestWindows) == len(family)

	truncWindows := map[string]int{}
	pair := [2]int{-1, -1}
	for i := range runs {
		key := windowKey(runs[i].proof.Truncated(budgetBits), window)
		if j, ok := truncWindows[key]; ok {
			pair = [2]int{j, i}
			break
		}
		truncWindows[key] = i
	}
	if pair[0] < 0 {
		return report, nil
	}
	report.CollisionFound = true
	report.Pair = pair

	r1, r2 := runs[pair[0]], runs[pair[1]]
	fool := core.NewInstance(OdotTrees(r1.g, r2.g))
	p1 := r1.proof.Truncated(budgetBits)
	p2 := r2.proof.Truncated(budgetBits)
	spliced := core.Proof{}
	for _, v := range fool.G.Nodes() {
		switch {
		case v >= k+1 && v <= 2*k:
			spliced[v] = p1[v]
		case v <= window:
			spliced[v] = p1[v]
		default:
			spliced[v] = p2[v]
		}
	}
	report.ViewsIdentical = allViewsCovered(fool, spliced,
		[]yesRun{{r1.in, p1}, {r2.in, p2}}, radius)
	report.FooledIsYes = isYes(fool.G)
	return report, nil
}
