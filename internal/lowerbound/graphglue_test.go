package lowerbound

import (
	"math/big"
	"testing"

	"lcp/internal/graph"
	"lcp/internal/graphalg"
	"lcp/internal/schemes"
)

func TestOdotSymmetryCriterion(t *testing.T) {
	// §6.1: for asymmetric G₁, G₂ of equal order, G₁⊙G₂ is symmetric iff
	// G₁ ≅ G₂.
	family := EnumerateAsymmetricConnected(6)
	if len(family) < 2 {
		t.Fatalf("only %d asymmetric connected graphs on 6 nodes", len(family))
	}
	g1, g2 := family[0], family[1]
	if aut := graphalg.NontrivialAutomorphism(Odot(g1, g1)); aut == nil {
		t.Error("G⊙G is not symmetric")
	}
	if aut := graphalg.NontrivialAutomorphism(Odot(g1, g2)); aut != nil {
		t.Error("G₁⊙G₂ symmetric for non-isomorphic asymmetric parts")
	}
	// Structure: 3k nodes, path joining the copies.
	gg := Odot(g1, g2)
	if gg.N() != 18 {
		t.Errorf("odot size %d, want 18", gg.N())
	}
	if !graphalg.Connected(gg) {
		t.Error("odot disconnected")
	}
}

func TestEnumerateAsymmetricCounts(t *testing.T) {
	// Known values: the smallest asymmetric graphs have 6 nodes; there
	// are exactly 8 of them (connected; Erdős–Rényi 1963).
	counts := map[int]int{1: 1, 2: 0, 3: 0, 4: 0, 5: 0, 6: 8}
	for k, want := range counts {
		if got := CountAsymmetricConnected(k); got != want {
			t.Errorf("asymmetric connected graphs on %d nodes: %d, want %d", k, got, want)
		}
	}
}

func TestRootedTreeCountsA000081(t *testing.T) {
	want := []int64{1, 1, 2, 4, 9, 20, 48, 115, 286, 719}
	got := RootedTreeCounts(len(want))
	for i, w := range want {
		if got[i].Cmp(big.NewInt(w)) != 0 {
			t.Errorf("A000081(%d) = %v, want %d", i+1, got[i], w)
		}
	}
}

func TestEnumerateRootedTreesMatchesRecurrence(t *testing.T) {
	for k := 1; k <= 7; k++ {
		enum := len(EnumerateRootedTrees(k))
		rec := RootedTreeCounts(k)[k-1].Int64()
		if int64(enum) != rec {
			t.Errorf("rooted trees on %d nodes: enumerated %d, recurrence %d", k, enum, rec)
		}
	}
}

func TestOdotTreesFixpointFreeCriterion(t *testing.T) {
	// §6.2: for rooted trees of even order k, T₁⊙T₂ has a fixpoint-free
	// automorphism iff T₁ = T₂ (as rooted trees).
	family := EnumerateRootedTrees(4)
	if len(family) != 4 {
		t.Fatalf("|rooted trees on 4 nodes| = %d, want 4", len(family))
	}
	for i, t1 := range family {
		for j, t2 := range family {
			gg := OdotTrees(t1, t2)
			if !graphalg.IsTree(gg) {
				t.Fatalf("odot of trees is not a tree")
			}
			got := graphalg.FixpointFreeAutomorphism(gg) != nil
			want := i == j
			if got != want {
				t.Errorf("trees %d,%d: fixpoint-free = %v, want %v", i, j, got, want)
			}
		}
	}
}

// TestGraphGluingSymmetric is experiment LB-sym: honest Θ(n²) proofs keep
// all windows distinct; a small budget forces a collision whose splice is
// an asymmetric graph with all views covered by symmetric yes-instances.
func TestGraphGluingSymmetric(t *testing.T) {
	family := EnumerateAsymmetricConnected(6)
	rep, err := RunGraphGluing("symmetric", schemes.Symmetric{}, family,
		func(g *graph.Graph) bool { return graphalg.NontrivialAutomorphism(g) != nil },
		1, 8)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", rep)
	if !rep.HonestDistinct {
		t.Error("honest Θ(n²) windows collide — the certificate is weaker than expected")
	}
	if !rep.CollisionFound {
		t.Fatal("no collision under an 8-bit budget across 8 graphs")
	}
	if !rep.ViewsIdentical {
		t.Error("fooling views not identical to yes-instance views")
	}
	if rep.FooledIsYes {
		t.Error("fooling instance is symmetric — not a no-instance")
	}
}

// TestGraphGluingFixpointFree is experiment LB-fpf (§6.2) on rooted trees
// of even order.
func TestGraphGluingFixpointFree(t *testing.T) {
	family := EnumerateRootedTrees(6) // 20 rooted trees, k even
	rep, err := RunTreeGluing(schemes.FixpointFree{}, family, 1, 2,
		func(g *graph.Graph) bool { return graphalg.FixpointFreeAutomorphism(g) != nil })
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", rep)
	if !rep.HonestDistinct {
		t.Error("honest Θ(n) windows collide")
	}
	if !rep.CollisionFound {
		t.Fatal("no collision under a 2-bit budget across 20 trees")
	}
	if !rep.ViewsIdentical {
		t.Error("fooling views not identical")
	}
	if rep.FooledIsYes {
		t.Error("fooling tree has a fixpoint-free symmetry — not a no-instance")
	}
}

// TestGrowthRates: log₂|F_k|/k² roughly stabilizes for asymmetric graphs
// (Θ(k²) information) while log₂ A000081(k)/k converges near the
// asymptotic constant (≈ log₂ 2.9558 ≈ 1.56) — the quantitative heart of
// §6.1 vs §6.2.
func TestGrowthRates(t *testing.T) {
	trees := RootedTreeGrowth(24)
	last := trees.PerK[len(trees.PerK)-1]
	if last < 1.0 || last > 1.7 {
		t.Errorf("rooted-tree log growth per node = %.3f, want ≈1.2–1.6", last)
	}
	// Asymmetric graphs: count grows super-exponentially; check the
	// ratio count(7)/count(6) is enormous (Θ(k²) bits).
	c6 := CountAsymmetricConnected(6)
	if testing.Short() {
		t.Skipf("skipping k=7 exhaustive enumeration in -short mode (c6=%d)", c6)
	}
	c7 := CountAsymmetricConnected(7)
	// Known values: 8 on six nodes, 144 on seven (18× growth — the
	// doubly-exponential 2^Θ(k²) regime getting started).
	if c7 != 144 {
		t.Errorf("asymmetric connected graphs on 7 nodes: %d, want 144", c7)
	}
	t.Logf("asymmetric connected: c6=%d c7=%d", c6, c7)
}

// TestUnionFooling is experiment X-conn: the universal connectivity
// verifier accepts a disconnected union with spliced certificates, so
// connectivity of general graphs has no LCP of any size.
func TestUnionFooling(t *testing.T) {
	rep, err := RunUnionFooling(ConnectedUniversal(), graph.Cycle(6), graph.Cycle(7).ShiftIDs(10))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", rep)
	if !rep.ViewsIdentical {
		t.Error("union views differ from component views")
	}
	if rep.UnionConnected {
		t.Error("union is connected?")
	}
	if !rep.Accepted {
		t.Error("verifier rejected the union — the experiment should demonstrate acceptance")
	}
	if !rep.Fooled {
		t.Error("connectivity verifier was not fooled")
	}
}

func TestUnionFoolingRejectsOverlappingIDs(t *testing.T) {
	if _, err := RunUnionFooling(ConnectedUniversal(), graph.Cycle(5), graph.Cycle(5)); err == nil {
		t.Error("overlapping identifier sets accepted")
	}
}

// TestThreeColFooling is experiment LB-3col (§6.3).
func TestThreeColFooling(t *testing.T) {
	rep, err := RunThreeColFooling(schemes.NonThreeColorable(), 1, 2, 48)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", rep)
	if !rep.HonestDistinct {
		t.Error("honest wire windows collide — certificates should encode the whole graph")
	}
	if !rep.CollisionFound {
		t.Fatal("no collision under a 48-bit budget (header bits should collide across sets)")
	}
	if !rep.ViewsIdentical {
		t.Error("spliced views not identical to yes-instance views")
	}
	if !rep.FooledColorable {
		t.Error("spliced G_{A,B̄} is not 3-colourable — the swap should produce a no-instance of χ>3")
	}
}

// TestBondyProbe: the extremal machinery behind §5.3, empirically. Few
// colours ⇒ monochromatic C4 always; a matching-based colouring with n
// colours has none.
func TestBondyProbe(t *testing.T) {
	rep := RunBondyProbe(12, 5, 3)
	t.Logf("%s", rep)
	if len(rep.Probes) == 0 {
		t.Fatal("no probes")
	}
	if rep.Probes[0].Fraction != 1.0 {
		t.Errorf("2 colours on K_{12,12}: P[mono C4] = %v, want 1.0", rep.Probes[0].Fraction)
	}
	if rep.Threshold < rep.CubeRootN {
		t.Errorf("random threshold %d below the worst-case budget %d?!", rep.Threshold, rep.CubeRootN)
	}
	colors, c4free := AdversarialColoringWithoutC4(12)
	if !c4free {
		t.Error("matching colouring contains a monochromatic C4")
	}
	if len(colors) != 144 {
		t.Errorf("colouring covers %d edges, want 144", len(colors))
	}
}
