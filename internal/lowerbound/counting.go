package lowerbound

import (
	"math"
	"math/big"
)

// Counting experiments behind §6: the lower bounds rest on |F_k| growing
// faster than the window capacity. For §6.1, F_k is the family of
// asymmetric connected graphs (log |F_k| = Θ(k²), Erdős–Rényi: almost all
// graphs are asymmetric and connected); for §6.2 it is rooted trees
// (log |F_k| = Θ(k), OEIS A000081).

// CountAsymmetricConnected counts isomorphism classes of asymmetric
// connected graphs on k nodes by exhaustive enumeration (k ≤ 7 is
// practical).
func CountAsymmetricConnected(k int) int {
	return len(EnumerateAsymmetricConnected(k))
}

// RootedTreeCounts returns A000081[1..n]: the number of rooted trees
// with k nodes, via the classic Euler-transform recurrence
//
//	a(n+1) = (1/n) Σ_{k=1..n} ( Σ_{d|k} d·a(d) ) a(n-k+1).
func RootedTreeCounts(n int) []*big.Int {
	if n < 1 {
		return nil
	}
	a := make([]*big.Int, n+1)
	a[0] = big.NewInt(0) // unused
	if n >= 1 {
		a[1] = big.NewInt(1)
	}
	// s[k] = Σ_{d|k} d·a(d)
	s := make([]*big.Int, n+1)
	for k := 1; k <= n; k++ {
		s[k] = big.NewInt(0)
	}
	for m := 1; m < n; m++ {
		// incorporate a(m) into s[k] for all multiples k of m ≤ n.
		dm := new(big.Int).Mul(big.NewInt(int64(m)), a[m])
		for k := m; k <= n; k += m {
			s[k].Add(s[k], dm)
		}
		// a(m+1) = (1/m) Σ_{k=1..m} s[k]·a(m-k+1)
		total := big.NewInt(0)
		for k := 1; k <= m; k++ {
			term := new(big.Int).Mul(s[k], a[m-k+1])
			total.Add(total, term)
		}
		q, r := new(big.Int).QuoRem(total, big.NewInt(int64(m)), new(big.Int))
		if r.Sign() != 0 {
			panic("lowerbound: A000081 recurrence did not divide evenly")
		}
		a[m+1] = q
	}
	return a[1:]
}

// GrowthReport summarizes log₂|F_k| across k for a counting experiment.
type GrowthReport struct {
	K     []int
	Count []float64 // |F_k| (approximate for big values)
	Log2  []float64
	PerK  []float64 // log₂|F_k| / k       (Θ(k) families converge)
	PerK2 []float64 // log₂|F_k| / k²      (Θ(k²) families converge)
}

// RootedTreeGrowth reports A000081 growth up to n.
func RootedTreeGrowth(n int) *GrowthReport {
	counts := RootedTreeCounts(n)
	rep := &GrowthReport{}
	for i, c := range counts {
		k := i + 1
		f, _ := new(big.Float).SetInt(c).Float64()
		rep.K = append(rep.K, k)
		rep.Count = append(rep.Count, f)
		l := math.Log2(f)
		if f == 1 {
			l = 0
		}
		rep.Log2 = append(rep.Log2, l)
		rep.PerK = append(rep.PerK, l/float64(k))
		rep.PerK2 = append(rep.PerK2, l/float64(k*k))
	}
	return rep
}

// AsymmetricGrowth reports asymmetric connected graph counts up to n
// (exhaustive; keep n ≤ 7).
func AsymmetricGrowth(n int) *GrowthReport {
	rep := &GrowthReport{}
	for k := 1; k <= n; k++ {
		c := float64(CountAsymmetricConnected(k))
		rep.K = append(rep.K, k)
		rep.Count = append(rep.Count, c)
		l := 0.0
		if c > 0 {
			l = math.Log2(c)
		}
		rep.Log2 = append(rep.Log2, l)
		rep.PerK = append(rep.PerK, l/float64(k))
		rep.PerK2 = append(rep.PerK2, l/float64(k*k))
	}
	return rep
}
