package lowerbound

import (
	"fmt"
	"sort"
	"strings"

	"lcp/internal/core"
	"lcp/internal/graphalg"
)

// The §6.3 fooling-set experiment. Build G_{A,Ā} for a collection of sets
// A — all of them non-3-colourable since A ∩ Ā = ∅ — prove each with a
// scheme for "χ > 3", and compare the proof bits on the wire interior W.
// If two sets A ≠ B agree on W (guaranteed by pigeonhole once the per-
// node budget b satisfies 2^{b·|W|} < #sets — the paper's Ω(n²/log n)
// counting), splice G_{A,B̄}: the unprimed half inherits from G_{A,Ā},
// the primed half from G_{B,B̄}, the wires take the common bits. Every
// view of the splice equals a view of a yes-instance, yet A ∩ B̄ ≠ ∅ (or
// Ā ∩ B ≠ ∅, swap), so the splice is 3-colourable: a no-instance of
// "χ > 3" that no verifier consistent with the yes-runs can reject.

// ThreeColFoolingReport documents the experiment.
type ThreeColFoolingReport struct {
	K, R            int
	Nodes           int // nodes per instance
	WireNodes       int // |W|
	Sets            int // number of sets A tried
	BudgetBits      int
	HonestBits      int
	HonestDistinct  bool // wire windows of honest proofs pairwise distinct
	CollisionFound  bool
	PairAB          [2]string // names of the colliding sets
	SwapUsed        bool      // true when Ā ∩ B was the non-empty side
	ViewsIdentical  bool
	FooledColorable bool // the spliced instance is 3-colourable (a no-instance of χ>3)
}

// String renders the report.
func (r *ThreeColFoolingReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "3col fooling: k=%d r=%d n=%d |W|=%d sets=%d budget=%db honest=%db (wire windows distinct: %v)\n",
		r.K, r.R, r.Nodes, r.WireNodes, r.Sets, r.BudgetBits, r.HonestBits, r.HonestDistinct)
	if !r.CollisionFound {
		b.WriteString("  no wire-window collision under the budget")
		return b.String()
	}
	fmt.Fprintf(&b, "  collision %s vs %s (swap=%v): views identical: %v, splice 3-colourable: %v",
		r.PairAB[0], r.PairAB[1], r.SwapUsed, r.ViewsIdentical, r.FooledColorable)
	return b.String()
}

// RunThreeColFooling executes the experiment over all subsets A ⊆ I×I for
// k (16 sets for k = 1), with wire parameter r and per-node proof budget
// budgetBits, against the given "χ > 3" scheme.
func RunThreeColFooling(scheme core.Scheme, k, r, budgetBits int) (*ThreeColFoolingReport, error) {
	size := 1 << uint(k)
	numPairs := size * size
	if numPairs > 8 {
		return nil, fmt.Errorf("lowerbound: 2^{2k} too large to enumerate all subsets (k=%d)", k)
	}
	allPairs := make([]Pair, 0, numPairs)
	for x := 0; x < size; x++ {
		for y := 0; y < size; y++ {
			allPairs = append(allPairs, Pair{x, y})
		}
	}
	type run struct {
		name  string
		set   PairSet
		pair  *ThreeColPair
		in    *core.Instance
		proof core.Proof
	}
	var runs []run
	report := &ThreeColFoolingReport{K: k, R: r, BudgetBits: budgetBits}
	for mask := 0; mask < 1<<uint(numPairs); mask++ {
		set := PairSet{}
		for i, p := range allPairs {
			if mask&(1<<uint(i)) != 0 {
				set[p] = true
			}
		}
		pair := BuildThreeColPair(k, r, set, set.Complement(k))
		in := core.NewInstance(pair.G)
		proof, err := scheme.Prove(in)
		if err != nil {
			return nil, fmt.Errorf("lowerbound: prover failed on G_{A,Ā} mask=%d: %w", mask, err)
		}
		if proof.Size() > report.HonestBits {
			report.HonestBits = proof.Size()
		}
		runs = append(runs, run{
			name: fmt.Sprintf("A%04b", mask), set: set, pair: pair, in: in, proof: proof,
		})
	}
	report.Sets = len(runs)
	report.Nodes = runs[0].pair.G.N()
	report.WireNodes = len(runs[0].pair.WireInterior)

	wireKey := func(p core.Proof, wires []int) string {
		var b strings.Builder
		for _, v := range wires {
			b.WriteString(p[v].Key())
			b.WriteByte('/')
		}
		return b.String()
	}
	honest := map[string]bool{}
	for _, r0 := range runs {
		honest[wireKey(r0.proof, r0.pair.WireInterior)] = true
	}
	report.HonestDistinct = len(honest) == len(runs)

	// Collision under the budget, requiring the §6.3 usable swap:
	// A ∩ B̄ ≠ ∅ or Ā ∩ B ≠ ∅ (always true when A ≠ B).
	var first, second *run
	seen := map[string]int{}
	for i := range runs {
		key := wireKey(runs[i].proof.Truncated(budgetBits), runs[i].pair.WireInterior)
		if j, ok := seen[key]; ok {
			first, second = &runs[j], &runs[i]
			break
		}
		seen[key] = i
	}
	if first == nil {
		return report, nil
	}
	report.CollisionFound = true
	report.PairAB = [2]string{first.name, second.name}

	// Orient the swap so the target intersection is non-empty.
	a, b := first, second
	if !a.set.Intersects(b.set.Complement(k)) {
		a, b = b, a
		report.SwapUsed = true
		if !a.set.Intersects(b.set.Complement(k)) {
			return nil, fmt.Errorf("lowerbound: A ≠ B but both swap intersections empty — impossible")
		}
	}

	// Splice G_{A,B̄}: structure from the two sets, proofs inherited.
	fool := BuildThreeColPair(k, r, a.set, b.set.Complement(k))
	foolIn := core.NewInstance(fool.G)
	pa := a.proof.Truncated(budgetBits)
	pb := b.proof.Truncated(budgetBits)
	leftSide := sideNodes(a.pair, true)
	spliced := core.Proof{}
	for _, v := range fool.G.Nodes() {
		if leftSide[v] {
			spliced[v] = pa[v]
		} else if contains(fool.WireInterior, v) {
			spliced[v] = pa[v] // common by collision
		} else {
			spliced[v] = pb[v]
		}
	}
	radius := scheme.Verifier().Radius()
	report.ViewsIdentical = allViewsCovered(foolIn, spliced,
		[]yesRun{{a.in, pa}, {b.in, pb}}, radius)
	report.FooledColorable = graphalg.KColor(fool.G, 3) != nil
	return report, nil
}

// sideNodes returns the nodes belonging to the unprimed (left=true) or
// primed half of the pair — everything below/above the wire interior,
// determined by the id layout (left half allocated first).
func sideNodes(p *ThreeColPair, left bool) map[int]bool {
	// The left half occupies ids 1..Right.T-1; right half runs from
	// Right.T to the first wire node −1 (wires allocated after halves).
	out := map[int]bool{}
	for _, v := range p.G.Nodes() {
		isLeft := v < p.Right.T
		isWire := contains(p.WireInterior, v)
		if isWire {
			continue
		}
		if isLeft == left {
			out[v] = true
		}
	}
	return out
}

func contains(sorted []int, v int) bool {
	i := sort.SearchInts(sorted, v)
	return i < len(sorted) && sorted[i] == v
}
