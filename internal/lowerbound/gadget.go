package lowerbound

import (
	"fmt"
	"sort"

	"lcp/internal/graph"
	"lcp/internal/graphalg"
)

// §6.3: the explicit gadget graphs G_A. Given A ⊆ I×I with
// I = {0..2^k−1}, G_A is a graph with Θ(2^k) nodes whose proper
// 3-colourings:
//
//	(iii) give T, F, N three distinct colours (they form a triangle);
//	(iv)  force every literal x_i, y_i to be true or false (edge to N),
//	      encoding integers x and y;
//	(v)   exist exactly for (x, y) ∈ A.
//
// Construction (ours; the paper defers to its extended version, any
// gadget with (i)–(v) works):
//
//   - NOT gate: output adjacent to input and N.
//   - OR gate (Garey–Johnson style): internals i₁, i₂ adjacent to the
//     inputs and each other; output adjacent to i₁, i₂ and N. The output
//     is forced F when both inputs are F, and *can* be T whenever some
//     input is T (forced T when both are).
//   - AND(p, q) = NOT(OR(NOT p, NOT q)): forced T when both inputs are T.
//   - Demultiplexer: a trie over bit prefixes, d_ε = T,
//     d_{p·1} = AND(d_p, x_i), d_{p·0} = AND(d_p, ¬x_i); when x extends
//     p, d_p is forced T. Total size Θ(2^k).
//   - Selectors: u_a = NOT(d_a) is forced F exactly when x = a (and can
//     be T otherwise). On the y side, e_b demultiplexes y, and
//     z_b (adjacent to e_b and F) with v_b (adjacent to z_b and T) force
//     v_b = F exactly when y = b, with v_b ∈ {F, N}.
//   - Membership: for every (a, b) ∉ A, an edge u_a–v_b. Since
//     u_a ∈ {T, F} and v_b ∈ {F, N}, the edge conflicts exactly when
//     both are F, i.e. exactly when (x, y) = (a, b) ∉ A.
//
// G_{A,B} joins G_A and an isomorphic copy G'_B with 2k+1 wires of 3r
// levels (triangles chained so colours propagate end to end), tying
// N to N', T to T', and each literal to its primed twin. It is
// 3-colourable iff A ∩ B ≠ ∅.

// Pair is an element of I × I.
type Pair struct{ X, Y int }

// PairSet is a subset of I × I.
type PairSet map[Pair]bool

// Complement returns I×I minus s for the given k.
func (s PairSet) Complement(k int) PairSet {
	out := PairSet{}
	size := 1 << uint(k)
	for x := 0; x < size; x++ {
		for y := 0; y < size; y++ {
			p := Pair{x, y}
			if !s[p] {
				out[p] = true
			}
		}
	}
	return out
}

// Intersects reports whether s ∩ t ≠ ∅.
func (s PairSet) Intersects(t PairSet) bool {
	for p := range s {
		if t[p] {
			return true
		}
	}
	return false
}

// gadgetHalf records the distinguished nodes of one G_A.
type gadgetHalf struct {
	T, F, N int
	X, Y    []int // literal nodes x_0.., y_0..
	U       []int // u_a, indexed by a
	V       []int // v_b, indexed by b
}

// gadgetBuilder allocates identifiers sequentially.
type gadgetBuilder struct {
	b    *graph.Builder
	next int
}

func (gb *gadgetBuilder) fresh() int {
	id := gb.next
	gb.next++
	gb.b.AddNode(id)
	return id
}

func (gb *gadgetBuilder) edge(u, v int) { gb.b.AddEdge(u, v) }

// notGate allocates NOT(p).
func (gb *gadgetBuilder) notGate(p, n int) int {
	o := gb.fresh()
	gb.edge(o, p)
	gb.edge(o, n)
	return o
}

// orGate allocates OR(p, q).
func (gb *gadgetBuilder) orGate(p, q, n int) int {
	i1, i2, o := gb.fresh(), gb.fresh(), gb.fresh()
	gb.edge(p, i1)
	gb.edge(q, i2)
	gb.edge(i1, i2)
	gb.edge(i1, o)
	gb.edge(i2, o)
	gb.edge(o, n)
	return o
}

// andGate allocates AND(p, q) = NOT(OR(NOT p, NOT q)).
func (gb *gadgetBuilder) andGate(p, q, n int) int {
	np := gb.notGate(p, n)
	nq := gb.notGate(q, n)
	o := gb.orGate(np, nq, n)
	return gb.notGate(o, n)
}

// demux builds the prefix trie over the literal nodes lits and returns
// the 2^k leaf outputs d_a, indexed so that lits[i] is bit i of a
// (process the most significant literal first so the standard binary
// expansion falls out).
func (gb *gadgetBuilder) demux(lits []int, root, n int) []int {
	level := []int{root} // d over prefixes of the current length
	for i := len(lits) - 1; i >= 0; i-- {
		lit := lits[i]
		nlit := gb.notGate(lit, n)
		next := make([]int, 0, 2*len(level))
		for _, d := range level {
			next = append(next, gb.andGate(d, nlit, n)) // bit i = 0
			next = append(next, gb.andGate(d, lit, n))  // bit i = 1
		}
		level = next
	}
	return level
}

// buildHalf constructs G_A's nodes and gates (without membership edges)
// inside gb, returning the distinguished nodes.
func buildHalf(gb *gadgetBuilder, k int) *gadgetHalf {
	h := &gadgetHalf{}
	h.T, h.F, h.N = gb.fresh(), gb.fresh(), gb.fresh()
	gb.edge(h.T, h.F)
	gb.edge(h.F, h.N)
	gb.edge(h.N, h.T)
	for i := 0; i < k; i++ {
		x := gb.fresh()
		gb.edge(x, h.N)
		h.X = append(h.X, x)
		y := gb.fresh()
		gb.edge(y, h.N)
		h.Y = append(h.Y, y)
	}
	// x-side: u_a = NOT(d_a).
	dx := gb.demux(h.X, h.T, h.N)
	for _, d := range dx {
		h.U = append(h.U, gb.notGate(d, h.N))
	}
	// y-side: e_b demux, then z_b, v_b.
	ey := gb.demux(h.Y, h.T, h.N)
	for _, e := range ey {
		z := gb.fresh()
		gb.edge(z, e)
		gb.edge(z, h.F)
		v := gb.fresh()
		gb.edge(v, z)
		gb.edge(v, h.T)
		h.V = append(h.V, v)
	}
	return h
}

// addMembership adds the u_a–v_b edges for pairs NOT in A.
func addMembership(gb *gadgetBuilder, h *gadgetHalf, k int, a PairSet) {
	size := 1 << uint(k)
	for x := 0; x < size; x++ {
		for y := 0; y < size; y++ {
			if !a[Pair{x, y}] {
				gb.edge(h.U[x], h.V[y])
			}
		}
	}
}

// ThreeColPair is the assembled G_{A,B}.
type ThreeColPair struct {
	G            *graph.Graph
	K, R         int
	Left, Right  *gadgetHalf
	WireInterior []int // the W of §6.3: nodes on wires, excluding endpoints
}

// BuildThreeColPair assembles G_{A,B} with wire parameter r (each wire
// has 3r levels; §6.3 requires 3r ≥ 2·radius+2 so no view spans both
// halves). The identifier layout depends only on k and r — never on A or
// B — so instances with different sets are splice-compatible.
func BuildThreeColPair(k, r int, a, b PairSet) *ThreeColPair {
	gb := &gadgetBuilder{b: graph.NewBuilder(graph.Undirected), next: 1}
	left := buildHalf(gb, k)
	right := buildHalf(gb, k)
	pair := &ThreeColPair{K: k, R: r, Left: left, Right: right}

	// Wires: slot-1 anchored at N/N'; slot-2 at the listed anchor pairs.
	anchors := [][2]int{{left.T, right.T}}
	for i := 0; i < k; i++ {
		anchors = append(anchors, [2]int{left.X[i], right.X[i]})
		anchors = append(anchors, [2]int{left.Y[i], right.Y[i]})
	}
	levels := 3 * r
	for _, anchor := range anchors {
		pair.WireInterior = append(pair.WireInterior, gb.wire(left.N, right.N, anchor[0], anchor[1], levels)...)
	}
	// Membership edges last: identifiers above stay A-independent.
	addMembership(gb, left, k, a)
	addMembership(gb, right, k, b)
	pair.G = gb.b.Graph()
	sort.Ints(pair.WireInterior)
	return pair
}

// wire lays a 3-track wire of the given number of levels between the
// anchor nodes, returning the freshly created interior nodes.
func (gb *gadgetBuilder) wire(n1, n2, a1, a2 int, levels int) []int {
	if levels < 2 {
		panic("lowerbound: wire needs ≥ 2 levels")
	}
	var interior []int
	level := make([][3]int, levels)
	for i := 0; i < levels; i++ {
		switch i {
		case 0:
			level[i] = [3]int{n1, a1, gb.fresh()}
			interior = append(interior, level[i][2])
		case levels - 1:
			level[i] = [3]int{n2, a2, gb.fresh()}
			interior = append(interior, level[i][2])
		default:
			level[i] = [3]int{gb.fresh(), gb.fresh(), gb.fresh()}
			interior = append(interior, level[i][0], level[i][1], level[i][2])
		}
		// Triangle within the level.
		gb.edge(level[i][0], level[i][1])
		gb.edge(level[i][1], level[i][2])
		gb.edge(level[i][2], level[i][0])
		if i > 0 {
			for j := 0; j < 3; j++ {
				for jp := 0; jp < 3; jp++ {
					if j != jp {
						gb.edge(level[i-1][j], level[i][jp])
					}
				}
			}
		}
	}
	return interior
}

// ThreeColorable reports whether the assembled pair admits a proper
// 3-colouring, optionally seeded (palette colours 0=T's colour etc. are
// symmetric, so the solver seeds the left palette to break symmetry).
func (p *ThreeColPair) ThreeColorable() bool {
	seeds := map[int]int{p.Left.T: 0, p.Left.F: 1, p.Left.N: 2}
	return graphalg.KColorWithSeeds(p.G, 3, seeds) != nil
}

// DecodeXY extracts the encoded (x, y) of the left half from a proper
// 3-colouring.
func (p *ThreeColPair) DecodeXY(col map[int]int) (Pair, error) {
	tCol := col[p.Left.T]
	var out Pair
	for i, xn := range p.Left.X {
		switch col[xn] {
		case tCol:
			out.X |= 1 << uint(i)
		case col[p.Left.F]:
		default:
			return Pair{}, fmt.Errorf("lowerbound: literal x_%d coloured neutral", i)
		}
	}
	for i, yn := range p.Left.Y {
		switch col[yn] {
		case tCol:
			out.Y |= 1 << uint(i)
		case col[p.Left.F]:
		default:
			return Pair{}, fmt.Errorf("lowerbound: literal y_%d coloured neutral", i)
		}
	}
	return out, nil
}

// Solve3Color returns a proper 3-colouring with the left palette seeded,
// or nil.
func (p *ThreeColPair) Solve3Color() map[int]int {
	return graphalg.KColorWithSeeds(p.G, 3, map[int]int{p.Left.T: 0, p.Left.F: 1, p.Left.N: 2})
}
