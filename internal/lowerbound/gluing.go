package lowerbound

import (
	"fmt"
	"sort"
	"strings"

	"lcp/internal/core"
	"lcp/internal/graph"
)

// The §5.3 construction (Figure 1). For a scheme (f, A) on cycles:
//
//  1. build the n-cycles C(a, b) for a ∈ {1..n}, b ∈ {n+1..2n}, with the
//     exact node identifiers of the paper (a, a+4n, a+6n, …, a+2n·n₁,
//     b+2n·n₂, …, b+6n, b+4n, b);
//  2. label each C(a, b) into a yes-instance and run the prover;
//  3. colour the edge {a, b} of K_{n,n} by the signature c(a, b): all
//     auxiliary labels and proof bits within the window around a and b
//     in C(a, b);
//  4. find a monochromatic 2k-cycle a₁,b₁,…,a_k,b_k (guaranteed for
//     sufficiently large n by Bondy–Simonovits once one colour class has
//     more than n^{5/3} edges);
//  5. glue: remove the edges {a_i, b_i}, add {b_{i−1}, a_i}, inherit all
//     labels and proofs;
//  6. confirm that every node's view in the kn-cycle is literally
//     identical to a view of one of the yes-instances, and run the
//     verifier: it must accept the glued no-instance.

// GluingTarget describes one §5.4 instantiation.
type GluingTarget struct {
	// Name of the experiment, e.g. "odd-n".
	Name string
	// Scheme under attack.
	Scheme core.Scheme
	// Prepare converts a bare cycle (with traversal order) into a
	// yes-instance by adding labels; order[0] is the node a and
	// order[len-1] is the node b (the {a, b} edge closes the cycle).
	Prepare func(g *graph.Graph, order []int) *core.Instance
	// IsYes is ground truth for the property/problem, used to confirm
	// that the glued instance is a no-instance.
	IsYes func(in *core.Instance) bool
	// K is the number of cycles glued together (k ≥ 2).
	K int
	// OddLength forces odd cycle lengths (for parity-based targets).
	OddLength bool
}

// GluingReport is the outcome of one adversary run.
type GluingReport struct {
	Target         string
	N              int  // length of the short cycles
	K              int  // number of cycles glued
	Radius         int  // verifier horizon r
	WindowNodes    int  // nodes per side in the signature (2r+1)
	ProofBits      int  // max bits per node over all provers
	Pairs          int  // number of (a, b) pairs built = n²
	Signatures     int  // distinct signatures observed
	Threshold      int  // colour budget under which a C4 is pigeonhole-guaranteed
	FoundCycle     bool // monochromatic 2k-cycle located
	CycleVertices  []int
	GluedN         int
	ViewsIdentical bool // every glued view equals a yes-instance view
	GluedIsYes     bool // ground truth on the glued instance
	Accepted       bool // the scheme's verifier accepted the glued instance
	Fooled         bool // Accepted && !GluedIsYes
}

// String renders a human-readable summary.
func (r *GluingReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "gluing %s: n=%d k=%d r=%d proof≤%db pairs=%d signatures=%d\n",
		r.Target, r.N, r.K, r.Radius, r.ProofBits, r.Pairs, r.Signatures)
	if !r.FoundCycle {
		fmt.Fprintf(&b, "  no monochromatic C_%d: proofs carry too much information at this n (Θ(log n) regime)", 2*r.K)
		return b.String()
	}
	fmt.Fprintf(&b, "  glued %d-cycle via K_{n,n} cycle %v\n", r.GluedN, r.CycleVertices)
	fmt.Fprintf(&b, "  views identical to yes-instances: %v | glued is yes: %v | verifier accepted: %v | FOOLED: %v",
		r.ViewsIdentical, r.GluedIsYes, r.Accepted, r.Fooled)
	return b.String()
}

// provedInstance is one C(a, b) together with its proof and traversal
// order.
type provedInstance struct {
	a, b  int
	order []int
	in    *core.Instance
	proof core.Proof
}

// cycleABOrder returns the paper's node sequence for C(a, b) with
// parameter n: a, a+4n, …, a+2n·n₁, b+2n·n₂, …, b+4n, b. The closing edge
// of the cycle is {b, a}.
func cycleABOrder(a, b, n int) []int {
	n1, n2 := n/2, (n+1)/2
	order := []int{a}
	for j := 2; j <= n1; j++ {
		order = append(order, a+2*n*j)
	}
	for j := n2; j >= 2; j-- {
		order = append(order, b+2*n*j)
	}
	order = append(order, b)
	return order
}

// RunGluing executes the full §5.3 adversary against target with cycle
// length n. It returns an error for malformed parameters or prover
// failures; "no collision found" is reported, not an error.
func RunGluing(target GluingTarget, n int) (*GluingReport, error) {
	if target.K < 2 {
		return nil, fmt.Errorf("lowerbound: k must be ≥ 2")
	}
	if target.OddLength && n%2 == 0 {
		return nil, fmt.Errorf("lowerbound: target %s needs odd n", target.Name)
	}
	r := target.Scheme.Verifier().Radius()
	window := 2*r + 1
	if n/2 < window+2 {
		return nil, fmt.Errorf("lowerbound: n=%d too small for window %d", n, window)
	}

	report := &GluingReport{
		Target: target.Name, N: n, K: target.K, Radius: r, WindowNodes: window,
	}

	// Steps 1–3.
	pairs := make(map[graph.Edge]*provedInstance, n*n)
	signatures := make(map[graph.Edge]string, n*n)
	distinct := map[string]bool{}
	for a := 1; a <= n; a++ {
		for b := n + 1; b <= 2*n; b++ {
			order := cycleABOrder(a, b, n)
			g := graph.CycleOf(order...)
			in := target.Prepare(g, order)
			proof, err := target.Scheme.Prove(in)
			if err != nil {
				return nil, fmt.Errorf("lowerbound: prover failed on C(%d,%d): %w", a, b, err)
			}
			if proof.Size() > report.ProofBits {
				report.ProofBits = proof.Size()
			}
			sig := signatureOf(in, proof, order, window)
			e := graph.Edge{U: a, V: b}
			pairs[e] = &provedInstance{a: a, b: b, order: order, in: in, proof: proof}
			signatures[e] = sig
			distinct[sig] = true
		}
	}
	report.Pairs = n * n
	report.Signatures = len(distinct)
	report.Threshold = cbrtFloor(n)

	// Step 4.
	cyc := findMonochromaticCycle(signatures, n, target.K)
	if cyc == nil {
		return report, nil
	}
	report.FoundCycle = true
	report.CycleVertices = cyc

	// Step 5.
	glued, gluedProof, err := glue(pairs, cyc)
	if err != nil {
		return nil, err
	}
	report.GluedN = glued.G.N()

	// Step 6: the paper's indistinguishability claim is sharp — each view
	// matches C(a_i, b_i), C(a_{i+1}, b_i) or C(a_i, b_{i−1}), i.e. the
	// glued pieces and the donor pairs of the monochromatic cycle.
	k2 := len(cyc)
	var yesRuns []yesRun
	for i := 0; i < k2/2; i++ {
		piece := pairs[graph.Edge{U: cyc[2*i], V: cyc[2*i+1]}]
		donor := pairs[graph.Edge{U: cyc[2*i], V: cyc[(2*i-1+k2)%k2]}]
		yesRuns = append(yesRuns, yesRun{piece.in, piece.proof}, yesRun{donor.in, donor.proof})
	}
	report.ViewsIdentical = allViewsCovered(glued, gluedProof, yesRuns, r)
	report.GluedIsYes = target.IsYes(glued)
	report.Accepted = core.Check(glued, gluedProof, target.Scheme.Verifier()).Accepted()
	report.Fooled = report.Accepted && !report.GluedIsYes
	return report, nil
}

// cbrtFloor returns ⌊n^{1/3}⌋: fewer distinct colours than this
// guarantees some colour class exceeds n^{5/3} edges.
func cbrtFloor(n int) int {
	t := 1
	for (t+1)*(t+1)*(t+1) <= n {
		t++
	}
	return t
}

// signatureOf serializes the §5.3 window: labels and proof bits of the
// window nodes at the start (a side) and end (b side) of the traversal
// order, plus the solution marks of window edges including the closing
// {b, a} edge.
func signatureOf(in *core.Instance, proof core.Proof, order []int, window int) string {
	var b strings.Builder
	record := func(v int) {
		fmt.Fprintf(&b, "[%s|%s]", in.NodeLabel[v], proof[v].Key())
	}
	recordEdge := func(u, v int) {
		fmt.Fprintf(&b, "{%s}", in.EdgeLabel[graph.NormEdge(u, v)])
	}
	for i := window - 1; i >= 0; i-- {
		record(order[i])
		if i > 0 {
			recordEdge(order[i], order[i-1])
		}
	}
	recordEdge(order[0], order[len(order)-1]) // the {a, b} edge
	for i := len(order) - window; i < len(order); i++ {
		record(order[i])
		if i < len(order)-1 {
			recordEdge(order[i], order[i+1])
		}
	}
	return b.String()
}

// findMonochromaticCycle searches the signature-coloured K_{n,n} for a
// vertex cycle a₁,b₁,a₂,b₂,…,a_k,b_k with all 2k edges of one colour,
// returned as the vertex sequence starting at an a-side node. For k = 2
// a quadratic scan is used; for k > 2, DFS per colour class.
func findMonochromaticCycle(sig map[graph.Edge]string, n, k int) []int {
	if k == 2 {
		type key struct {
			b1, b2 int
			c      string
		}
		seen := map[key]int{}
		for a := 1; a <= n; a++ {
			for b1 := n + 1; b1 <= 2*n; b1++ {
				c1 := sig[graph.Edge{U: a, V: b1}]
				for b2 := b1 + 1; b2 <= 2*n; b2++ {
					if sig[graph.Edge{U: a, V: b2}] != c1 {
						continue
					}
					kk := key{b1, b2, c1}
					if a0, ok := seen[kk]; ok {
						return []int{a0, b1, a, b2}
					}
					seen[kk] = a
				}
			}
		}
		return nil
	}
	byColor := map[string][]graph.Edge{}
	for e, c := range sig {
		byColor[c] = append(byColor[c], e)
	}
	var colors []string
	for c := range byColor {
		colors = append(colors, c)
	}
	sort.Slice(colors, func(i, j int) bool {
		if len(byColor[colors[i]]) != len(byColor[colors[j]]) {
			return len(byColor[colors[i]]) > len(byColor[colors[j]])
		}
		return colors[i] < colors[j]
	})
	for _, c := range colors {
		edges := byColor[c]
		if len(edges) < 2*k {
			continue
		}
		adj := map[int][]int{}
		for _, e := range edges {
			adj[e.U] = append(adj[e.U], e.V)
			adj[e.V] = append(adj[e.V], e.U)
		}
		for v := range adj {
			sort.Ints(adj[v])
		}
		if cyc := cycleOfLength(adj, 2*k); cyc != nil {
			// Rotate so an a-side node (id ≤ n) comes first.
			for i, v := range cyc {
				if v <= n {
					return append(append([]int{}, cyc[i:]...), cyc[:i]...)
				}
			}
		}
	}
	return nil
}

// cycleOfLength finds a simple cycle of exactly length L via bounded DFS.
func cycleOfLength(adj map[int][]int, L int) []int {
	var starts []int
	for v := range adj {
		starts = append(starts, v)
	}
	sort.Ints(starts)
	path := make([]int, 0, L)
	onPath := map[int]bool{}
	var dfs func(v, start int) []int
	dfs = func(v, start int) []int {
		path = append(path, v)
		onPath[v] = true
		defer func() {
			path = path[:len(path)-1]
			delete(onPath, v)
		}()
		if len(path) == L {
			for _, u := range adj[v] {
				if u == start {
					return append([]int{}, path...)
				}
			}
			return nil
		}
		for _, u := range adj[v] {
			if onPath[u] || u < start {
				continue
			}
			if res := dfs(u, start); res != nil {
				return res
			}
		}
		return nil
	}
	for _, s := range starts {
		if res := dfs(s, s); res != nil {
			return res
		}
	}
	return nil
}

// glue builds the kn-cycle: pieces C(a_i, b_i) with edges {a_i, b_i}
// removed and {b_{i−1}, a_i} added (b₀ = b_k), inheriting node labels,
// edge labels, weights and proofs. The label of a new edge {b_{i−1}, a_i}
// is inherited from C(a_i, b_{i−1}), where that edge exists; signature
// equality makes this consistent with every window it appears in.
func glue(pairs map[graph.Edge]*provedInstance, cyc []int) (*core.Instance, core.Proof, error) {
	k := len(cyc) / 2
	b := graph.NewBuilder(graph.Undirected)
	in := &core.Instance{
		NodeLabel: map[int]string{},
		EdgeLabel: map[graph.Edge]string{},
		Weights:   map[graph.Edge]int64{},
	}
	proof := core.Proof{}
	pieceOf := func(i int) *provedInstance {
		a, bb := cyc[2*i], cyc[2*i+1]
		return pairs[graph.Edge{U: a, V: bb}]
	}
	for i := 0; i < k; i++ {
		pd := pieceOf(i)
		if pd == nil {
			return nil, nil, fmt.Errorf("lowerbound: missing piece %d", i)
		}
		cut := graph.NormEdge(pd.a, pd.b)
		for _, e := range pd.in.G.Edges() {
			if e == cut {
				continue
			}
			b.AddEdge(e.U, e.V)
			if l, ok := pd.in.EdgeLabel[e]; ok {
				in.EdgeLabel[e] = l
			}
			if w, ok := pd.in.Weights[e]; ok {
				in.Weights[e] = w
			}
		}
		for _, v := range pd.in.G.Nodes() {
			if l, ok := pd.in.NodeLabel[v]; ok {
				in.NodeLabel[v] = l
			}
			if s, ok := pd.proof[v]; ok {
				proof[v] = s
			}
		}
	}
	// Join edges {b_{i−1}, a_i} with labels from C(a_i, b_{i−1}).
	for i := 0; i < k; i++ {
		ai := cyc[2*i]
		bPrev := cyc[(2*i-1+2*k)%(2*k)]
		b.AddEdge(bPrev, ai)
		donor := pairs[graph.Edge{U: ai, V: bPrev}]
		if donor == nil {
			return nil, nil, fmt.Errorf("lowerbound: missing donor C(%d,%d)", ai, bPrev)
		}
		join := graph.NormEdge(bPrev, ai)
		if l, ok := donor.in.EdgeLabel[join]; ok {
			in.EdgeLabel[join] = l
		}
		if w, ok := donor.in.Weights[join]; ok {
			in.Weights[join] = w
		}
	}
	in.G = b.Graph()
	return in, proof, nil
}

// CycleABOrder exposes the paper's C(a, b) node sequence for tools and
// documentation (Figure 1 uses C(3,12) with n = 10).
func CycleABOrder(a, b, n int) []int {
	return cycleABOrder(a, b, n)
}
