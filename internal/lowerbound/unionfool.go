package lowerbound

import (
	"fmt"
	"strings"

	"lcp/internal/core"
	"lcp/internal/graph"
	"lcp/internal/graphalg"
	"lcp/internal/schemes"
)

// The last row of Table 1a: connectivity of general (possibly
// disconnected) graphs admits NO locally checkable proof of any size.
// Proof-by-execution: take two connected yes-instances with disjoint
// identifier sets, prove each, and form the disjoint union with the
// inherited proofs. Every node's view in the union is literally its view
// in its own component, so any verifier that accepts both yes-instances
// accepts the disconnected union.

// UnionFoolingReport documents the run.
type UnionFoolingReport struct {
	SchemeName     string
	N1, N2         int
	ProofBits      int
	ViewsIdentical bool
	Accepted       bool
	UnionConnected bool
	Fooled         bool
}

// String renders the report.
func (r *UnionFoolingReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "disjoint-union fooling of %q: components n=%d, n=%d, proofs ≤ %d bits\n",
		r.SchemeName, r.N1, r.N2, r.ProofBits)
	fmt.Fprintf(&b, "  views identical: %v | union connected: %v | verifier accepted: %v | FOOLED: %v",
		r.ViewsIdentical, r.UnionConnected, r.Accepted, r.Fooled)
	return b.String()
}

// RunUnionFooling executes the experiment against a scheme claiming to
// verify connectivity, using two disjoint connected components. Any
// scheme whatsoever suffers this fate; we ship the natural strawman
// (the universal O(n²) scheme with the predicate "connected", whose
// soundness argument depends on the family promise this experiment
// violates).
func RunUnionFooling(scheme core.Scheme, g1, g2 *graph.Graph) (*UnionFoolingReport, error) {
	for _, id := range g2.Nodes() {
		if g1.Has(id) {
			return nil, fmt.Errorf("lowerbound: component identifier sets overlap at %d", id)
		}
	}
	in1, in2 := core.NewInstance(g1), core.NewInstance(g2)
	p1, err := scheme.Prove(in1)
	if err != nil {
		return nil, fmt.Errorf("lowerbound: prover failed on component 1: %w", err)
	}
	p2, err := scheme.Prove(in2)
	if err != nil {
		return nil, fmt.Errorf("lowerbound: prover failed on component 2: %w", err)
	}
	union := core.NewInstance(graph.DisjointUnion(g1, g2))
	spliced := core.Proof{}
	for v, s := range p1 {
		spliced[v] = s
	}
	for v, s := range p2 {
		spliced[v] = s
	}
	r := scheme.Verifier().Radius()
	rep := &UnionFoolingReport{
		SchemeName: scheme.Name(),
		N1:         g1.N(), N2: g2.N(),
	}
	if p1.Size() > p2.Size() {
		rep.ProofBits = p1.Size()
	} else {
		rep.ProofBits = p2.Size()
	}
	rep.ViewsIdentical = allViewsCovered(union, spliced,
		[]yesRun{{in1, p1}, {in2, p2}}, r)
	rep.UnionConnected = graphalg.Connected(union.G)
	rep.Accepted = core.Check(union, spliced, scheme.Verifier()).Accepted()
	rep.Fooled = rep.Accepted && !rep.UnionConnected
	return rep, nil
}

// ConnectedUniversal is the strawman scheme: the universal O(n²)
// certificate deciding "G is connected". Perfectly sound on the
// connected-graph family — and fooled on the general family, which is
// exactly why Table 1a lists connectivity with no proof size at all.
func ConnectedUniversal() core.Scheme {
	return schemes.Universal{
		PropertyName: "connected",
		Holds:        graphalg.Connected,
	}
}
