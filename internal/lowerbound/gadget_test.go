package lowerbound

import (
	"testing"

	"lcp/internal/graphalg"
)

func allPairSets(k int) []PairSet {
	size := 1 << uint(k)
	var pairs []Pair
	for x := 0; x < size; x++ {
		for y := 0; y < size; y++ {
			pairs = append(pairs, Pair{x, y})
		}
	}
	var sets []PairSet
	for mask := 0; mask < 1<<uint(len(pairs)); mask++ {
		s := PairSet{}
		for i, p := range pairs {
			if mask&(1<<uint(i)) != 0 {
				s[p] = true
			}
		}
		sets = append(sets, s)
	}
	return sets
}

// TestGadgetEncodesMembership is property (v) of §6.3 for a single half
// tied to a fully permissive partner: every 3-colouring encodes a pair in
// A, and every pair in A is realizable.
func TestGadgetEncodesMembership(t *testing.T) {
	k, r := 1, 2
	full := PairSet{}.Complement(k) // I×I
	for _, a := range allPairSets(k) {
		pair := BuildThreeColPair(k, r, a, full)
		col := pair.Solve3Color()
		if len(a) == 0 {
			if col != nil {
				xy, _ := pair.DecodeXY(col)
				t.Fatalf("A=∅: coloured anyway, encodes %v", xy)
			}
			continue
		}
		if col == nil {
			t.Fatalf("A=%v: no colouring found", a)
		}
		xy, err := pair.DecodeXY(col)
		if err != nil {
			t.Fatalf("A=%v: %v", a, err)
		}
		if !a[xy] {
			t.Fatalf("A=%v: colouring encodes %v ∉ A", a, xy)
		}
	}
}

// TestGadgetSeededPairRealizable: property (v) conversely — each
// (x, y) ∈ A admits a colouring encoding exactly it. We steer the solver
// by seeding the literal colours.
func TestGadgetSeededPairRealizable(t *testing.T) {
	k, r := 1, 2
	full := PairSet{}.Complement(k)
	a := PairSet{{0, 1}: true, {1, 0}: true}
	pair := BuildThreeColPair(k, r, a, full)
	for want := range a {
		seeds := map[int]int{pair.Left.T: 0, pair.Left.F: 1, pair.Left.N: 2}
		xc, yc := 1, 1 // colour F
		if want.X == 1 {
			xc = 0 // colour T
		}
		if want.Y == 1 {
			yc = 0
		}
		seeds[pair.Left.X[0]] = xc
		seeds[pair.Left.Y[0]] = yc
		col := graphalg.KColorWithSeeds(pair.G, 3, seeds)
		if col == nil {
			t.Fatalf("pair %v ∈ A not realizable", want)
		}
		got, err := pair.DecodeXY(col)
		if err != nil || got != want {
			t.Fatalf("seeded %v, decoded %v (err %v)", want, got, err)
		}
	}
	// And a pair outside A must not be realizable.
	seeds := map[int]int{pair.Left.T: 0, pair.Left.F: 1, pair.Left.N: 2,
		pair.Left.X[0]: 0, pair.Left.Y[0]: 0} // (1,1) ∉ A
	if graphalg.KColorWithSeeds(pair.G, 3, seeds) != nil {
		t.Fatal("pair (1,1) ∉ A realized")
	}
}

// TestGadgetPairIntersectionTheorem is the §6.3 keystone: G_{A,B} is
// 3-colourable iff A ∩ B ≠ ∅, exhaustively for k = 1 (16×16 set pairs,
// sampled diagonally to keep runtime sane: all A with B = Ā, plus a
// stratified sample of mixed pairs).
func TestGadgetPairIntersectionTheorem(t *testing.T) {
	k, r := 1, 2
	sets := allPairSets(k)
	// All (A, Ā): never 3-colourable.
	for _, a := range sets {
		pair := BuildThreeColPair(k, r, a, a.Complement(k))
		if pair.ThreeColorable() {
			t.Fatalf("G_{A,Ā} 3-colourable for A=%v", a)
		}
	}
	// Mixed sample: every 3rd pair of sets.
	count := 0
	for i, a := range sets {
		for j, b := range sets {
			if (i*len(sets)+j)%3 != 0 {
				continue
			}
			pair := BuildThreeColPair(k, r, a, b)
			want := a.Intersects(b)
			if got := pair.ThreeColorable(); got != want {
				t.Fatalf("A=%v B=%v: colourable=%v want %v", a, b, got, want)
			}
			count++
		}
	}
	if count < 50 {
		t.Fatalf("sample too small: %d", count)
	}
}

// TestGadgetNodeCountTheta2K: property (i) — |V(G_A)| = Θ(2^k).
func TestGadgetNodeCountTheta2K(t *testing.T) {
	full1 := PairSet{}.Complement(1)
	full2 := PairSet{}.Complement(2)
	n1 := BuildThreeColPair(1, 2, full1, full1).G.N()
	n2 := BuildThreeColPair(2, 2, full2, full2).G.N()
	// Doubling k roughly doubles the node count (plus the Θ(k) wires).
	if n2 < n1+(n1/2) || n2 > 4*n1 {
		t.Errorf("node counts n(k=1)=%d, n(k=2)=%d: not Θ(2^k)-ish", n1, n2)
	}
}

// TestGadgetWiresPropagate: N/N', T/T' and the literals always agree
// across the wires.
func TestGadgetWiresPropagate(t *testing.T) {
	k, r := 1, 2
	a := PairSet{{0, 0}: true}
	pair := BuildThreeColPair(k, r, a, a)
	col := pair.Solve3Color()
	if col == nil {
		t.Fatal("no colouring")
	}
	if col[pair.Left.N] != col[pair.Right.N] {
		t.Error("N colour does not propagate")
	}
	if col[pair.Left.T] != col[pair.Right.T] {
		t.Error("T colour does not propagate")
	}
	for i := range pair.Left.X {
		if col[pair.Left.X[i]] != col[pair.Right.X[i]] {
			t.Errorf("x_%d does not propagate", i)
		}
		if col[pair.Left.Y[i]] != col[pair.Right.Y[i]] {
			t.Errorf("y_%d does not propagate", i)
		}
	}
}

// TestGadgetLayoutIsSetIndependent: identifiers must not depend on A/B
// (splice compatibility).
func TestGadgetLayoutIsSetIndependent(t *testing.T) {
	k, r := 1, 2
	a := PairSet{{0, 0}: true}
	b := PairSet{{1, 1}: true, {0, 1}: true}
	p1 := BuildThreeColPair(k, r, a, a.Complement(k))
	p2 := BuildThreeColPair(k, r, b, b.Complement(k))
	if p1.G.N() != p2.G.N() {
		t.Fatalf("node counts differ: %d vs %d", p1.G.N(), p2.G.N())
	}
	if p1.Left.T != p2.Left.T || p1.Right.N != p2.Right.N {
		t.Fatal("distinguished ids differ between sets")
	}
	for i := range p1.WireInterior {
		if p1.WireInterior[i] != p2.WireInterior[i] {
			t.Fatal("wire interiors differ between sets")
		}
	}
}
