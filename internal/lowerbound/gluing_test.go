package lowerbound

import (
	"testing"

	"lcp/internal/core"
	"lcp/internal/dist"
	"lcp/internal/graph"
)

func TestCycleABOrderMatchesPaper(t *testing.T) {
	// Figure 1 example: n = 10 gives C(3,12) = 3, 43, 63, 83, 103, 112,
	// 92, 72, 52, 12.
	got := cycleABOrder(3, 12, 10)
	want := []int{3, 43, 63, 83, 103, 112, 92, 72, 52, 12}
	if len(got) != len(want) {
		t.Fatalf("order length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order[%d] = %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestCycleABDisjointness(t *testing.T) {
	// V(C(a,b)) and V(C(a',b')) disjoint when a ≠ a' and b ≠ b'.
	n := 9
	seen := map[int]string{}
	for _, pair := range [][2]int{{1, n + 1}, {2, n + 2}, {5, n + 7}} {
		for _, v := range cycleABOrder(pair[0], pair[1], n) {
			if prev, ok := seen[v]; ok {
				t.Fatalf("node %d appears in two cycles (%s)", v, prev)
			}
			seen[v] = "x"
		}
	}
	// Sharing a or b shares exactly the respective window segment ids.
	c1 := cycleABOrder(3, n+2, n)
	c2 := cycleABOrder(3, n+5, n)
	if c1[0] != c2[0] {
		t.Fatal("shared a-side start differs")
	}
}

func TestWeakSchemesCompleteness(t *testing.T) {
	// Weak schemes must be genuine schemes on their yes-instances.
	for _, n := range []int{7, 9, 13} {
		g := graph.Cycle(n)
		if _, _, err := core.ProveAndCheck(core.NewInstance(g), WeakOddN{}); err != nil {
			t.Errorf("weak-odd-n on C%d: %v", n, err)
		}
	}
	if _, err := (WeakOddN{}).Prove(core.NewInstance(graph.Cycle(8))); err == nil {
		t.Error("weak-odd-n proved an even cycle")
	}

	lg := core.NewInstance(graph.Cycle(9)).SetNodeLabel(4, core.LabelLeader)
	if _, _, err := core.ProveAndCheck(lg, WeakLeader{}); err != nil {
		t.Errorf("weak-leader: %v", err)
	}

	sp := core.NewInstance(graph.Cycle(8))
	for i := 1; i < 8; i++ {
		sp.MarkEdge(i, i+1)
	}
	if _, _, err := core.ProveAndCheck(sp, WeakSpanningPath{}); err != nil {
		t.Errorf("weak-spanning-path: %v", err)
	}

	mm := core.NewInstance(graph.Cycle(9))
	for i := 1; i+1 <= 9; i += 2 {
		mm.MarkEdge(i, i+1)
	}
	if _, _, err := core.ProveAndCheck(mm, WeakMaxMatchingCycle{}); err != nil {
		t.Errorf("weak-max-matching: %v", err)
	}
}

// TestGluingFoolsWeakSchemes is experiment F1 + LB-* of DESIGN.md: the
// §5.3 adversary must fool every weak O(1)-bit scheme — the glued
// instance is a no-instance whose every view is identical to a
// yes-instance view, and the verifier accepts it.
func TestGluingFoolsWeakSchemes(t *testing.T) {
	for _, target := range WeakTargets() {
		// Minimum n for the signature windows: n/2 ≥ 2r+3.
		r := target.Scheme.Verifier().Radius()
		n := 4*r + 10
		if target.OddLength {
			n++
		}
		rep, err := RunGluing(target, n)
		if err != nil {
			t.Fatalf("%s: %v", target.Name, err)
		}
		t.Logf("%s", rep)
		if !rep.FoundCycle {
			t.Errorf("%s: no monochromatic C4 found (signatures=%d)", target.Name, rep.Signatures)
			continue
		}
		if !rep.ViewsIdentical {
			t.Errorf("%s: glued views are NOT identical to yes-instance views", target.Name)
		}
		if rep.GluedIsYes {
			t.Errorf("%s: glued instance is unexpectedly a yes-instance", target.Name)
		}
		if !rep.Accepted {
			t.Errorf("%s: verifier rejected the glued instance", target.Name)
		}
		if !rep.Fooled {
			t.Errorf("%s: adversary failed to fool the scheme", target.Name)
		}
		if rep.GluedN != rep.N*rep.K {
			t.Errorf("%s: glued cycle has %d nodes, want %d", target.Name, rep.GluedN, rep.N*rep.K)
		}
	}
}

// TestGluingFailsAgainstStrongSchemes: with real Θ(log n) proofs the
// signature space exceeds the colour budget and the adversary cannot even
// find a monochromatic C4 — the observable flip side of §5.1.
func TestGluingFailsAgainstStrongSchemes(t *testing.T) {
	for _, target := range []GluingTarget{StrongOddNTarget(), StrongLeaderTarget()} {
		rep, err := RunGluing(target, 13)
		if err != nil {
			t.Fatalf("%s: %v", target.Name, err)
		}
		t.Logf("%s", rep)
		if rep.Fooled {
			t.Errorf("%s: the Θ(log n) scheme was fooled — soundness bug!", target.Name)
		}
		// The strong schemes separate signatures far beyond the budget.
		if rep.Signatures <= rep.Threshold {
			t.Errorf("%s: only %d signatures (≤ threshold %d); log-size proofs should separate more",
				target.Name, rep.Signatures, rep.Threshold)
		}
	}
}

// TestWeakSignaturesBelowThreshold confirms the pigeonhole side: O(1)-bit
// proofs yield a constant number of signatures, far below n^{1/3} for
// large enough n... here we just confirm it is tiny and that a C4 exists.
func TestWeakSignaturesBelowThreshold(t *testing.T) {
	rep, err := RunGluing(OddNTarget(), 13)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Signatures > 8 {
		t.Errorf("weak scheme produced %d signatures; expected O(1)", rep.Signatures)
	}
	if !rep.FoundCycle {
		t.Error("no monochromatic C4 despite constant signature count")
	}
}

// TestGluingKGreaterThanTwo exercises the general 2k-cycle search. With
// the leader target and k = 3 the glued cycle carries three leaders — a
// no-instance regardless of parity (gluing an odd number of odd cycles
// keeps n odd, so the parity targets need even k; the leader target does
// not).
func TestGluingKGreaterThanTwo(t *testing.T) {
	target := LeaderTarget()
	target.K = 3
	rep, err := RunGluing(target, 13)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", rep)
	if !rep.FoundCycle {
		t.Fatal("no monochromatic C6 found")
	}
	if rep.GluedN != 39 {
		t.Errorf("glued n = %d, want 39", rep.GluedN)
	}
	if rep.GluedIsYes {
		t.Error("39-cycle with 3 leaders reported as yes-instance")
	}
	if !rep.Fooled {
		t.Error("k=3 gluing failed to fool the weak leader scheme")
	}
}

// TestGluingEvenKOddCycles glues four odd cycles: n stays a multiple of
// 4·13 = even, so the parity target is genuinely fooled at k = 4 too.
func TestGluingEvenKOddCycles(t *testing.T) {
	target := OddNTarget()
	target.K = 4
	rep, err := RunGluing(target, 13)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", rep)
	if !rep.FoundCycle {
		t.Fatal("no monochromatic C8 found")
	}
	if rep.GluedIsYes {
		t.Error("52-cycle reported odd")
	}
	if !rep.Fooled {
		t.Error("k=4 gluing failed to fool the weak parity scheme")
	}
}

func TestRunGluingParameterValidation(t *testing.T) {
	target := OddNTarget()
	if _, err := RunGluing(target, 12); err == nil {
		t.Error("even n accepted for odd-length target")
	}
	target.K = 1
	if _, err := RunGluing(target, 13); err == nil {
		t.Error("k=1 accepted")
	}
	small := OddNTarget()
	if _, err := RunGluing(small, 5); err == nil {
		t.Error("n too small for window accepted")
	}
}

func TestWeakOddNMinProofSizeIsTwo(t *testing.T) {
	// The weak seam scheme really is a 2-bit scheme: C3 admits no valid
	// 0- or 1-bit proof under its verifier but has a 2-bit one
	// (exhaustive search).
	in := core.NewInstance(graph.Cycle(3))
	if got := core.MinProofSize(in, WeakOddN{}.Verifier(), 2); got != 2 {
		t.Errorf("weak odd-n min proof size on C3 = %d, want 2", got)
	}
}

// TestGluedInstanceFoolsDistributedRuntime: the fooled verdict is not an
// artifact of the sequential runner — the glued no-instance is accepted
// by every goroutine on the real message-passing runtime too.
func TestGluedInstanceFoolsDistributedRuntime(t *testing.T) {
	target := OddNTarget()
	rep, err := RunGluing(target, 15)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Fooled {
		t.Fatal("sequential run not fooled; nothing to cross-check")
	}
	// Rebuild the glued instance (RunGluing does not retain it); rerun
	// the construction deterministically.
	// Simplest: re-run and capture via the exported pieces — the report
	// has the cycle; rebuild pairs for those four (a, b) combinations.
	pairs := map[graph.Edge]*provedInstance{}
	for i := 0; i < len(rep.CycleVertices); i++ {
		for j := 0; j < len(rep.CycleVertices); j++ {
			a, b := rep.CycleVertices[i], rep.CycleVertices[j]
			if a > 15 || b <= 15 {
				continue
			}
			order := cycleABOrder(a, b, rep.N)
			g := graph.CycleOf(order...)
			in := target.Prepare(g, order)
			proof, err := target.Scheme.Prove(in)
			if err != nil {
				t.Fatal(err)
			}
			pairs[graph.Edge{U: a, V: b}] = &provedInstance{a: a, b: b, order: order, in: in, proof: proof}
		}
	}
	glued, gluedProof, err := glue(pairs, rep.CycleVertices)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dist.Check(glued, gluedProof, target.Scheme.Verifier())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted() {
		t.Errorf("distributed runtime rejected the glued instance at %v — runners disagree", res.Rejectors())
	}
}
