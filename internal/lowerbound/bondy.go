package lowerbound

import (
	"fmt"
	"math/rand"
	"strings"

	"lcp/internal/graph"
)

// Empirical study of the extremal tool behind §5.3: Bondy & Simonovits
// (1974) guarantee that a bipartite graph on n+n vertices with more than
// ~n^{1+1/k} edges contains a C_{2k}. The gluing adversary uses the
// k = 2 case — a colour class of K_{n,n} with more than n^{5/3} edges
// contains a C₄ — via pigeonhole: fewer than n^{1/3} colours force such
// a class. This experiment colours K_{n,n} uniformly at random with c
// colours and records whether a monochromatic C₄ exists, sweeping c to
// locate the practical threshold (which sits far above the worst-case
// n^{1/3} bound — random colourings are much weaker adversaries than
// extremal ones).

// BondyProbe is one (n, colors) measurement.
type BondyProbe struct {
	N        int
	Colors   int
	Trials   int
	FoundC4  int     // trials in which a monochromatic C4 existed
	Fraction float64 // FoundC4 / Trials
}

// BondyReport sweeps the colour count for one n.
type BondyReport struct {
	N         int
	CubeRootN int // the paper's worst-case colour budget ⌊n^{1/3}⌋
	Probes    []BondyProbe
	// Threshold is the largest colour count at which every trial still
	// contained a monochromatic C4 (0 if none).
	Threshold int
}

// String renders the report.
func (r *BondyReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Bondy–Simonovits probe, K_{%d,%d} (n² = %d edges), worst-case budget ⌊n^{1/3}⌋ = %d\n",
		r.N, r.N, r.N*r.N, r.CubeRootN)
	fmt.Fprintf(&b, "  %8s %10s %10s\n", "colours", "trials", "P[mono C4]")
	for _, p := range r.Probes {
		fmt.Fprintf(&b, "  %8d %10d %10.2f\n", p.Colors, p.Trials, p.Fraction)
	}
	fmt.Fprintf(&b, "  random-colouring threshold (all trials contain C4): %d colours", r.Threshold)
	return b.String()
}

// RunBondyProbe sweeps colour counts on K_{n,n} with random colourings.
func RunBondyProbe(n, trials int, seed int64) *BondyReport {
	rep := &BondyReport{N: n, CubeRootN: cbrtFloor(n)}
	rng := rand.New(rand.NewSource(seed))
	sweep := []int{2, 4, 8, 16, 32, 64, 128}
	for _, c := range sweep {
		if c > n*n {
			break
		}
		probe := BondyProbe{N: n, Colors: c, Trials: trials}
		for trial := 0; trial < trials; trial++ {
			colors := make(map[graph.Edge]string, n*n)
			for a := 1; a <= n; a++ {
				for b := n + 1; b <= 2*n; b++ {
					colors[graph.Edge{U: a, V: b}] = fmt.Sprintf("c%d", rng.Intn(c))
				}
			}
			if findMonochromaticCycle(colors, n, 2) != nil {
				probe.FoundC4++
			}
		}
		probe.Fraction = float64(probe.FoundC4) / float64(trials)
		rep.Probes = append(rep.Probes, probe)
		if probe.FoundC4 == trials {
			rep.Threshold = c
		}
	}
	return rep
}

// AdversarialColoringWithoutC4 exhibits the other side of the bound: a
// C4-free colouring of K_{n,n} using roughly n colours (colour edge
// {a, b} by (a + b) mod n — each colour class is a perfect matching,
// and matchings contain no cycles at all). This shows the pigeonhole
// budget cannot be relaxed to Ω(n): with n colours the adversary's
// gluing can always be blocked.
func AdversarialColoringWithoutC4(n int) (map[graph.Edge]string, bool) {
	colors := make(map[graph.Edge]string, n*n)
	for a := 1; a <= n; a++ {
		for b := n + 1; b <= 2*n; b++ {
			colors[graph.Edge{U: a, V: b}] = fmt.Sprintf("m%d", (a+b)%n)
		}
	}
	return colors, findMonochromaticCycle(colors, n, 2) == nil
}
