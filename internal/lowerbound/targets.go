package lowerbound

import (
	"lcp/internal/core"
	"lcp/internal/graph"
	"lcp/internal/graphalg"
	"lcp/internal/schemes"
)

// §5.4 instantiations of the gluing adversary. Each weak target glues to
// a fooled verifier; each strong target (the package's real Θ(log n)
// schemes) resists because its signature space outgrows the n^{1/3}
// colour budget.

// bareCycle wraps the cycle as an unlabelled instance.
func bareCycle(g *graph.Graph, _ []int) *core.Instance { return core.NewInstance(g) }

// OddNTarget glues two odd cycles into an even one against the weak
// seam scheme ("odd n(G)", Table 1a: Θ(log n)).
func OddNTarget() GluingTarget {
	return GluingTarget{
		Name:    "odd-n-weak",
		Scheme:  WeakOddN{},
		Prepare: bareCycle,
		IsYes: func(in *core.Instance) bool {
			return graphalg.IsCycleGraph(in.G) && in.G.N()%2 == 1
		},
		K:         2,
		OddLength: true,
	}
}

// NonBipartiteTarget glues two odd cycles (non-bipartite) into an even
// cycle (bipartite) against the weak seam scheme ("χ > 2", Θ(log n)).
func NonBipartiteTarget() GluingTarget {
	return GluingTarget{
		Name:    "non-bipartite-weak",
		Scheme:  WeakNonBipartite{},
		Prepare: bareCycle,
		IsYes: func(in *core.Instance) bool {
			return graphalg.OddCycle(in.G) != nil
		},
		K:         2,
		OddLength: true,
	}
}

// LeaderTarget glues two one-leader cycles into a two-leader cycle
// against the weak seam-at-leader scheme (leader election, Θ(log n)).
func LeaderTarget() GluingTarget {
	return GluingTarget{
		Name:   "leader-weak",
		Scheme: WeakLeader{},
		Prepare: func(g *graph.Graph, order []int) *core.Instance {
			in := core.NewInstance(g)
			// Put the leader mid-cycle, far from the signature windows.
			in.SetNodeLabel(order[len(order)/2], core.LabelLeader)
			return in
		},
		IsYes: func(in *core.Instance) bool {
			return len(in.FindLabel(core.LabelLeader)) == 1
		},
		K:         2,
		OddLength: true,
	}
}

// SpanningTreeTarget glues two spanning paths into two disjoint paths —
// not a spanning tree — against the 0-bit weak scheme (spanning tree,
// Θ(log n)).
func SpanningTreeTarget() GluingTarget {
	return GluingTarget{
		Name:   "spanning-tree-weak",
		Scheme: WeakSpanningPath{},
		Prepare: func(g *graph.Graph, order []int) *core.Instance {
			in := core.NewInstance(g)
			// Spanning tree of a cycle = every edge except the closing
			// {b, a} edge.
			for i := 1; i < len(order); i++ {
				in.MarkEdge(order[i-1], order[i])
			}
			return in
		},
		IsYes: func(in *core.Instance) bool {
			marked := in.MarkedEdges()
			if len(marked) != in.G.N()-1 {
				return false
			}
			b := graph.NewBuilder(graph.Undirected)
			for _, v := range in.G.Nodes() {
				b.AddNode(v)
			}
			for _, e := range marked {
				b.AddEdge(e.U, e.V)
			}
			return graphalg.IsTree(b.Graph())
		},
		K: 2,
	}
}

// MaxMatchingTarget glues two maximum matchings of odd cycles (one
// defect each) into a k-defect matching of the long cycle — suboptimal —
// against the 0-bit local-optimality scheme (maximum matching on cycles,
// Θ(log n)).
func MaxMatchingTarget() GluingTarget {
	return GluingTarget{
		Name:   "max-matching-weak",
		Scheme: WeakMaxMatchingCycle{},
		Prepare: func(g *graph.Graph, order []int) *core.Instance {
			in := core.NewInstance(g)
			// Pair order[1]–order[2], order[3]–order[4], …; order[0] = a
			// stays unmatched (the defect sits inside the window, where
			// signature equality keeps it consistent).
			for i := 1; i+1 < len(order); i += 2 {
				in.MarkEdge(order[i], order[i+1])
			}
			return in
		},
		IsYes: func(in *core.Instance) bool {
			m := make(graphalg.Matching)
			for _, e := range in.MarkedEdges() {
				m[e] = true
			}
			return graphalg.IsMatching(in.G, m) && len(m) == in.G.N()/2
		},
		K:         2,
		OddLength: true,
	}
}

// StrongOddNTarget runs the adversary against the real Θ(log n) counting
// scheme: the signature space blows past the colour budget and no
// monochromatic cycle exists at feasible n — the observable face of the
// upper bound.
func StrongOddNTarget() GluingTarget {
	return GluingTarget{
		Name:    "odd-n-strong",
		Scheme:  schemes.ParityCount{WantOdd: true},
		Prepare: bareCycle,
		IsYes: func(in *core.Instance) bool {
			return graphalg.IsCycleGraph(in.G) && in.G.N()%2 == 1
		},
		K:         2,
		OddLength: true,
	}
}

// StrongLeaderTarget is the leader-election analogue with the real
// spanning-tree scheme.
func StrongLeaderTarget() GluingTarget {
	return GluingTarget{
		Name:   "leader-strong",
		Scheme: schemes.LeaderElection{},
		Prepare: func(g *graph.Graph, order []int) *core.Instance {
			in := core.NewInstance(g)
			in.SetNodeLabel(order[len(order)/2], core.LabelLeader)
			return in
		},
		IsYes: func(in *core.Instance) bool {
			return len(in.FindLabel(core.LabelLeader)) == 1
		},
		K:         2,
		OddLength: true,
	}
}

// WeakTargets returns all §5.4 weak-scheme targets.
func WeakTargets() []GluingTarget {
	return []GluingTarget{
		OddNTarget(),
		NonBipartiteTarget(),
		LeaderTarget(),
		SpanningTreeTarget(),
		MaxMatchingTarget(),
	}
}
