// Package lowerbound makes the paper's lower-bound constructions
// executable (Göös & Suomela, PODC 2011, §5–§6):
//
//   - §5.3/Figure 1: gluing short cycles into a long cycle through a
//     monochromatic even cycle of the signature-coloured K_{n,n}
//     (Bondy–Simonovits);
//   - §5.4: instantiations fooling odd-n / non-bipartite / leader /
//     spanning-tree / maximum-matching schemes whose proofs are too
//     small;
//   - §6.1/§6.2: the G₁⊙G₂ graph-gluing fooling for symmetric graphs and
//     fixpoint-free tree symmetry, plus the counting experiments
//     (asymmetric graphs, rooted trees / OEIS A000081);
//   - §6.3: the explicit 3-colouring gadget G_A, wires, and the fooling
//     set swap for non-3-colourability;
//   - the disjoint-union fooling showing connectivity of general graphs
//     admits no locally checkable proof of any size (Table 1a, last row).
//
// A lower bound quantifies over all verifiers, so it cannot be "run"
// directly; what can be run is the paper's construction: given a scheme
// whose proofs are too small, produce a no-instance in which every node's
// view is literally identical to a view of some yes-instance, then watch
// the scheme's own verifier accept it. For honest Θ(log n) schemes the
// adversary reports the signature statistics that make the construction
// impossible at that n.
//
// This file defines honest-but-weak schemes with O(1)-bit proofs — the
// strongest schemes possible below the Ω(log n) barrier — which the §5.4
// experiments then demolish.
package lowerbound

import (
	"fmt"

	"lcp/internal/bitstr"
	"lcp/internal/core"
	"lcp/internal/graphalg"
)

// WeakOddN is the best-effort O(1)-bit scheme for "n(G) is odd" on
// cycles: a 2-colouring with exactly one "seam" edge where the colours
// may repeat; an odd cycle needs exactly one seam. Each label is 2 bits:
// (colour, seam-endpoint flag). The verifier checks that every bichromatic
// edge is ordinary and that a monochromatic edge joins two seam-flagged
// nodes; each node sees at most one seam edge. The scheme is complete on
// odd cycles — and unsound exactly as §5 predicts: gluing two odd cycles
// yields an even cycle with two seams that every node accepts, because no
// node sees both seams at once.
type WeakOddN struct{}

// Name implements core.Scheme.
func (WeakOddN) Name() string { return "weak-odd-n" }

// Verifier implements core.Scheme.
func (WeakOddN) Verifier() core.Verifier {
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		me := w.Center
		if w.Degree(me) != 2 {
			return false
		}
		my := w.ProofOf(me)
		if my.Len() != 2 {
			return false
		}
		myColor, mySeam := my.Bit(0), my.Bit(1)
		seamEdges := 0
		for _, u := range w.Neighbors(me) {
			p := w.ProofOf(u)
			if p.Len() != 2 {
				return false
			}
			if p.Bit(0) == myColor {
				// Monochromatic edge: both endpoints must be flagged.
				if !mySeam || !p.Bit(1) {
					return false
				}
				seamEdges++
			}
		}
		if seamEdges > 1 {
			return false
		}
		if mySeam && seamEdges == 0 {
			return false // flag without a seam edge
		}
		return true
	}}
}

// Prove implements core.Scheme.
func (WeakOddN) Prove(in *core.Instance) (core.Proof, error) {
	if !graphalg.IsCycleGraph(in.G) {
		return nil, fmt.Errorf("%w: weak-odd-n requires the cycle family", core.ErrNotInProperty)
	}
	if in.G.N()%2 == 0 {
		return nil, core.ErrNotInProperty
	}
	// Walk the cycle assigning alternating colours; the wrap edge is the
	// seam.
	order := cycleOrder(in)
	p := make(core.Proof, in.G.N())
	for i, v := range order {
		color := i%2 == 1
		seam := i == 0 || i == len(order)-1
		p[v] = bitstr.FromBools(color, seam)
	}
	return p, nil
}

var _ core.Scheme = WeakOddN{}

// WeakNonBipartite reuses the seam scheme for "χ(G) > 2" on cycles: an
// odd cycle is exactly a non-bipartite cycle.
type WeakNonBipartite struct{ WeakOddN }

// Name implements core.Scheme.
func (WeakNonBipartite) Name() string { return "weak-non-bipartite" }

var _ core.Scheme = WeakNonBipartite{}

// WeakLeader is the best-effort O(1)-bit scheme for leader election on
// cycles: a 2-colouring seamed at the leader. Completeness: seam the
// wrap-around edge at the leader. Unsound under gluing: two leaders, two
// seams, all nodes accept.
type WeakLeader struct{}

// Name implements core.Scheme.
func (WeakLeader) Name() string { return "weak-leader" }

// Verifier implements core.Scheme: seam edges must sit at a leader.
func (WeakLeader) Verifier() core.Verifier {
	inner := WeakOddN{}.Verifier()
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		me := w.Center
		my := w.ProofOf(me)
		if my.Len() != 2 {
			return false
		}
		// Colour discipline first: monochromatic edges only between
		// seam-flagged nodes, at most one per view.
		if !inner.Verify(w) {
			return false
		}
		if my.Bit(1) {
			// I am a seam endpoint: one endpoint of my seam edge must be
			// the leader. (On even cycles there is no seam and leader
			// labels are unconstrained — that weakness is inherent to
			// O(1)-bit proofs, which is the point of this scheme.)
			if w.Label(me) == core.LabelLeader {
				return true
			}
			for _, u := range w.Neighbors(me) {
				p := w.ProofOf(u)
				if p.Len() == 2 && p.Bit(0) == my.Bit(0) && w.Label(u) == core.LabelLeader {
					return true
				}
			}
			return false
		}
		return true
	}}
}

// Prove implements core.Scheme.
func (WeakLeader) Prove(in *core.Instance) (core.Proof, error) {
	if !graphalg.IsCycleGraph(in.G) {
		return nil, fmt.Errorf("%w: weak-leader requires the cycle family", core.ErrNotInProperty)
	}
	leaders := in.FindLabel(core.LabelLeader)
	if len(leaders) != 1 {
		return nil, core.ErrNotInProperty
	}
	order := cycleOrderFrom(in, leaders[0])
	p := make(core.Proof, in.G.N())
	needSeam := len(order)%2 == 1 // even cycles 2-colour cleanly, no seam
	for i, v := range order {
		color := i%2 == 1
		seam := needSeam && (i == 0 || i == len(order)-1)
		p[v] = bitstr.FromBools(color, seam)
	}
	return p, nil
}

var _ core.Scheme = WeakLeader{}

// WeakSpanningPath is the 0-bit scheme for "marked edges form a spanning
// tree" on cycles (where a spanning tree is the cycle minus one edge):
// each node checks it has at least one marked incident edge and at most
// one unmarked incident edge. Complete on cycles; fooled by gluing —
// the glued solution misses k edges, but every node still sees at most
// one gap.
type WeakSpanningPath struct{}

// Name implements core.Scheme.
func (WeakSpanningPath) Name() string { return "weak-spanning-path" }

// Verifier implements core.Scheme.
func (WeakSpanningPath) Verifier() core.Verifier {
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		me := w.Center
		if w.Degree(me) != 2 {
			return false
		}
		unmarked := 0
		for _, u := range w.Neighbors(me) {
			if !w.EdgeMarked(me, u) {
				unmarked++
			}
		}
		return unmarked <= 1
	}}
}

// Prove implements core.Scheme.
func (WeakSpanningPath) Prove(in *core.Instance) (core.Proof, error) {
	if !graphalg.IsCycleGraph(in.G) {
		return nil, fmt.Errorf("%w: weak-spanning-path requires the cycle family", core.ErrNotInProperty)
	}
	marked := in.MarkedEdges()
	if len(marked) != in.G.N()-1 {
		return nil, core.ErrNotInProperty
	}
	return core.Proof{}, nil
}

var _ core.Scheme = WeakSpanningPath{}

// WeakMaxMatchingCycle is the 0-bit scheme for "marked edges form a
// maximum matching" on cycles: matching validity plus "no two adjacent
// unmatched nodes" (local optimality). On a single cycle that implies at
// most one unmatched "defect" region per view, which is all a constant
// radius can see; gluing k odd cycles produces k defects that no node can
// count.
type WeakMaxMatchingCycle struct{}

// Name implements core.Scheme.
func (WeakMaxMatchingCycle) Name() string { return "weak-max-matching-cycle" }

// Verifier implements core.Scheme.
func (WeakMaxMatchingCycle) Verifier() core.Verifier {
	return core.VerifierFunc{R: 2, F: func(w *core.View) bool {
		me := w.Center
		if w.Degree(me) != 2 {
			return false
		}
		if countMarkedAt(w, me) > 1 {
			return false
		}
		if countMarkedAt(w, me) == 1 {
			return true
		}
		// Unmatched: both neighbours must be matched.
		for _, u := range w.Neighbors(me) {
			if countMarkedAt(w, u) != 1 {
				return false
			}
		}
		return true
	}}
}

func countMarkedAt(w *core.View, v int) int {
	c := 0
	for _, u := range w.Neighbors(v) {
		if w.EdgeMarked(v, u) {
			c++
		}
	}
	return c
}

// Prove implements core.Scheme.
func (WeakMaxMatchingCycle) Prove(in *core.Instance) (core.Proof, error) {
	if !graphalg.IsCycleGraph(in.G) {
		return nil, fmt.Errorf("%w: weak-max-matching requires the cycle family", core.ErrNotInProperty)
	}
	marked := make(graphalg.Matching)
	for _, e := range in.MarkedEdges() {
		marked[e] = true
	}
	if !graphalg.IsMatching(in.G, marked) || len(marked) != in.G.N()/2 {
		return nil, core.ErrNotInProperty
	}
	return core.Proof{}, nil
}

var _ core.Scheme = WeakMaxMatchingCycle{}

// cycleOrder returns the nodes of a cycle instance in traversal order
// starting from the smallest identifier.
func cycleOrder(in *core.Instance) []int {
	return cycleOrderFrom(in, in.G.Nodes()[0])
}

// cycleOrderFrom walks the cycle starting at start (towards its smaller
// neighbour first, for determinism).
func cycleOrderFrom(in *core.Instance, start int) []int {
	order := []int{start}
	prev, cur := start, in.G.Neighbors(start)[0]
	for cur != start {
		order = append(order, cur)
		nbrs := in.G.Neighbors(cur)
		next := nbrs[0]
		if next == prev {
			next = nbrs[1]
		}
		prev, cur = cur, next
	}
	return order
}
