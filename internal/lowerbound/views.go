package lowerbound

import (
	"lcp/internal/core"
	"lcp/internal/graph"
)

// View-identity checking: the formal core of every fooling argument. A
// no-instance with inherited proofs fools *any* verifier of the scheme if
// each node's radius-r view — graph, identifiers, distances, labels,
// weights and proof bits — is literally identical to that node's view in
// some yes-instance. The checks below assert exactly that, making the
// constructions verifier-independent: acceptance follows for every local
// verifier that accepts the yes-instances, not just the one we happen to
// run.

// yesRun is a proved yes-instance.
type yesRun struct {
	in    *core.Instance
	proof core.Proof
}

// viewsEqual compares two views field by field.
func viewsEqual(a, b *core.View) bool {
	if a.Center != b.Center || !graph.Equal(a.G, b.G) {
		return false
	}
	if len(a.Dist) != len(b.Dist) {
		return false
	}
	for v, d := range a.Dist {
		if b.Dist[v] != d {
			return false
		}
	}
	for _, v := range a.G.Nodes() {
		if !a.Proof[v].Equal(b.Proof[v]) {
			return false
		}
		if a.NodeLabel[v] != b.NodeLabel[v] {
			return false
		}
	}
	for _, e := range a.G.Edges() {
		if a.EdgeLabel[e] != b.EdgeLabel[e] {
			return false
		}
		if a.Weights[e] != b.Weights[e] {
			return false
		}
	}
	return true
}

// allViewsCovered reports whether every node of the fooling instance has
// a view identical to its view in one of the yes-runs.
func allViewsCovered(fooled *core.Instance, proof core.Proof, yes []yesRun, radius int) bool {
	for _, v := range fooled.G.Nodes() {
		fv := core.BuildView(fooled, proof, v, radius)
		matched := false
		for _, yr := range yes {
			if !yr.in.G.Has(v) {
				continue
			}
			if viewsEqual(fv, core.BuildView(yr.in, yr.proof, v, radius)) {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}
