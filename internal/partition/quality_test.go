package partition_test

// Partition quality assertions (the ROADMAP's "cross-shard edge count
// on grids/trees is unnecessarily high" item): after the identifiers
// are scrambled by a random permutation — the realistic case, since the
// paper only promises V ⊆ {1..poly(n)}, not that ids follow topology —
// contiguous id-range sharding degenerates to a near-random partition
// while BFS chunking keeps following the edges. BENCH_partition.json
// records the same counts alongside round throughput.

import (
	"fmt"
	"testing"

	"lcp/internal/graph"
	"lcp/internal/partition"
)

func cutOf(t *testing.T, p partition.Partitioner, g *graph.Graph, shards int) int {
	t.Helper()
	assign := p.Assign(g, shards)
	if err := partition.Validate(assign, g.N(), shards); err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	return partition.CutEdges(g, assign)
}

// TestBFSBeatsContiguousOnScrambledGrid: Grid(16,16) with permuted
// identifiers, across shard counts — BFSChunks must produce strictly
// fewer cross-shard edges than Contiguous.
func TestBFSBeatsContiguousOnScrambledGrid(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := graph.RandomPermutationIDs(graph.Grid(16, 16), seed)
		for _, shards := range []int{2, 4, 8} {
			contig := cutOf(t, partition.Contiguous{}, g, shards)
			bfs := cutOf(t, partition.BFSChunks{}, g, shards)
			if bfs >= contig {
				t.Errorf("grid seed=%d shards=%d: bfs cut %d, contiguous cut %d — want strictly fewer",
					seed, shards, bfs, contig)
			}
		}
	}
}

// TestBFSBeatsContiguousOnScrambledTree: RandomTree(512) with permuted
// identifiers. A tree has n-1 edges total, so a near-random partition
// cuts almost all of them while BFS chunks cut a handful.
func TestBFSBeatsContiguousOnScrambledTree(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := graph.RandomPermutationIDs(graph.RandomTree(512, seed), seed+100)
		for _, shards := range []int{2, 4, 8} {
			contig := cutOf(t, partition.Contiguous{}, g, shards)
			bfs := cutOf(t, partition.BFSChunks{}, g, shards)
			if bfs >= contig {
				t.Errorf("tree seed=%d shards=%d: bfs cut %d, contiguous cut %d — want strictly fewer",
					seed, shards, bfs, contig)
			}
		}
	}
}

// TestAcceptanceGrid32: the PR's acceptance bar — on Grid(32,32) with 8
// shards and scrambled identifiers, BFSChunks cuts at least 30% fewer
// cross-shard edges than Contiguous. The recorded numbers live in
// BENCH_partition.json.
func TestAcceptanceGrid32(t *testing.T) {
	g := graph.RandomPermutationIDs(graph.Grid(32, 32), 1)
	contig := cutOf(t, partition.Contiguous{}, g, 8)
	bfs := cutOf(t, partition.BFSChunks{}, g, 8)
	greedy := cutOf(t, partition.GreedyBalanced{}, g, 8)
	if float64(bfs) > 0.7*float64(contig) {
		t.Errorf("bfs cut %d vs contiguous %d: reduction %.1f%%, want ≥ 30%%",
			bfs, contig, 100*(1-float64(bfs)/float64(contig)))
	}
	if greedy > bfs {
		t.Errorf("greedy cut %d regressed past bfs %d", greedy, bfs)
	}
	t.Logf("Grid(32,32) shards=8 scrambled: contiguous=%d bfs=%d greedy=%d", contig, bfs, greedy)
}

// TestQualityLogTable prints the cut-edge table for the families the
// benchmark records, as a human-readable anchor in -v runs.
func TestQualityLogTable(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"grid-32x32", graph.RandomPermutationIDs(graph.Grid(32, 32), 1)},
		{"tree-1024", graph.RandomPermutationIDs(graph.RandomTree(1024, 2), 3)},
		{"gnp-512", graph.RandomGNP(512, 0.01, 4)},
	} {
		line := tc.name + ":"
		for _, name := range partition.Names() {
			p, _ := partition.ByName(name)
			line += fmt.Sprintf(" %s=%d", name, partition.CutEdges(tc.g, p.Assign(tc.g, 8)))
		}
		t.Log(line)
	}
}
