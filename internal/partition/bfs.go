package partition

import "lcp/internal/graph"

// BFSChunks chunks a breadth-first traversal order into near-equal
// contiguous pieces, one per shard. Consecutive BFS positions are
// topologically close, so each chunk is a low-boundary region of the
// communication graph no matter how identifiers were assigned — the
// locality-aware counterpart to Contiguous.
//
// The order is built per connected component (components visited in
// ascending order of their smallest identifier, so disconnected graphs
// stay deterministic). Each component uses a double-sweep start: a
// first BFS from the smallest identifier finds an eccentric node, and
// the recorded order is the BFS from that node. Starting at the far end
// of the component makes the layers sweep across it in one direction —
// on a grid the chunks become bands from a corner instead of rings
// around an interior start — which is what keeps chunk boundaries
// short. Traversal follows the underlying undirected graph, the LOCAL
// model's communication topology, even on directed instances.
type BFSChunks struct{}

// Name implements Partitioner.
func (BFSChunks) Name() string { return "bfs" }

// Assign implements Partitioner.
func (BFSChunks) Assign(g *graph.Graph, shards int) []int {
	n := g.N()
	ranges := SplitRanges(n, shards)
	if ranges == nil {
		return nil
	}
	order := bfsOrder(g)
	assign := make([]int, n)
	for s, r := range ranges {
		for i := r[0]; i < r[1]; i++ {
			assign[order[i]] = s
		}
	}
	return assign
}

// bfsOrder returns every node index exactly once, in per-component
// double-sweep BFS order.
func bfsOrder(g *graph.Graph) []int {
	n := g.N()
	ids := g.Nodes()
	order := make([]int, 0, n)
	visited := make([]bool, n)
	queue := make([]int, 0, n)
	// bfs appends the traversal from the start index to queue (which it
	// first resets) and marks seen entries; it returns the last index
	// dequeued — an eccentric node of the component. Neighbours enqueue
	// in ascending identifier order, so the order is deterministic.
	bfs := func(start int, seen []bool) int {
		queue = queue[:0]
		queue = append(queue, start)
		seen[start] = true
		last := start
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			last = u
			for _, w := range g.UndirectedNeighbors(ids[u]) {
				wi := g.Index(w)
				if !seen[wi] {
					seen[wi] = true
					queue = append(queue, wi)
				}
			}
		}
		return last
	}
	sweep := make([]bool, n)
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		// First sweep finds the far end; second sweep from there is the
		// recorded order.
		far := bfs(i, sweep)
		bfs(far, visited)
		order = append(order, queue...)
	}
	return order
}
