package partition

import (
	"sort"

	"lcp/internal/graph"
)

// GreedyBalanced refines a BFSChunks assignment by local search: nodes
// on a shard boundary move to the neighbouring shard where most of
// their edges live, highest-degree candidates first, as long as the
// move strictly reduces the cut and keeps shard sizes within a balance
// envelope. Every accepted move decreases CutEdges by at least one, so
// the refinement terminates; maxPasses bounds the sweeps for graphs
// where improvements trickle.
//
// The balance envelope allows each shard to grow to ⌈n/shards⌉ plus a
// 10% slack (at least one node) and shrink to the mirror-image floor
// but never below one node, so a shard cannot dissolve into its
// neighbours even when that would zero the cut — load balance is the
// point of sharding, not an accident of it.
type GreedyBalanced struct{}

// maxPasses bounds refinement sweeps over the node set. Boundary moves
// converge in a handful of passes on every family the benchmarks cover;
// the bound is a safety net, not a tuning knob.
const maxPasses = 8

// Name implements Partitioner.
func (GreedyBalanced) Name() string { return "greedy" }

// Assign implements Partitioner.
func (GreedyBalanced) Assign(g *graph.Graph, shards int) []int {
	assign := BFSChunks{}.Assign(g, shards)
	if assign == nil {
		return nil
	}
	n := g.N()
	shards = clampShards(n, shards)
	if shards < 2 {
		return assign
	}
	ids := g.Nodes()
	sizes := make([]int, shards)
	for _, s := range assign {
		sizes[s]++
	}
	target := (n + shards - 1) / shards
	slack := target / 10
	if slack < 1 {
		slack = 1
	}
	maxSize := target + slack
	minSize := target - slack
	if minSize < 1 {
		minSize = 1
	}

	// Candidates in decreasing degree order (ties by ascending index for
	// determinism): a high-degree node on the wrong side of a boundary
	// drags many edges with it, so fixing it first both saves the most
	// and settles the region its neighbours will be judged against.
	deg := make([]int, n)
	byDegree := make([]int, n)
	for i := range byDegree {
		deg[i] = len(g.UndirectedNeighbors(ids[i]))
		byDegree[i] = i
	}
	sort.Slice(byDegree, func(a, b int) bool {
		if deg[byDegree[a]] != deg[byDegree[b]] {
			return deg[byDegree[a]] > deg[byDegree[b]]
		}
		return byDegree[a] < byDegree[b]
	})

	links := make(map[int]int, 8) // shard -> edges from the candidate into it
	for pass := 0; pass < maxPasses; pass++ {
		moved := false
		for _, i := range byDegree {
			from := assign[i]
			if sizes[from] <= minSize {
				continue
			}
			clear(links)
			for _, w := range g.UndirectedNeighbors(ids[i]) {
				links[assign[g.Index(w)]]++
			}
			// Best destination: largest gain over staying, smallest shard
			// index as the deterministic tie-break.
			best, bestGain := -1, 0
			for to, l := range links {
				if to == from || sizes[to] >= maxSize {
					continue
				}
				if gain := l - links[from]; gain > bestGain || (gain == bestGain && best != -1 && to < best) {
					best, bestGain = to, gain
				}
			}
			if best == -1 || bestGain <= 0 {
				continue
			}
			assign[i] = best
			sizes[from]--
			sizes[best]++
			moved = true
		}
		if !moved {
			break
		}
	}
	return assign
}
