package partition_test

import (
	"fmt"
	"reflect"
	"testing"

	"lcp/internal/graph"
	"lcp/internal/partition"
)

// all returns every registered partitioner, resolved through the
// registry so the names stay wired to the implementations.
func all(t *testing.T) []partition.Partitioner {
	t.Helper()
	var out []partition.Partitioner
	for _, name := range partition.Names() {
		p, err := partition.ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("ByName(%q) returned partitioner named %q", name, p.Name())
		}
		out = append(out, p)
	}
	return out
}

// TestAssignIsValidAcrossFamilies: every partitioner produces a valid,
// balanced assignment on every family and shard count, including
// degenerate ones.
func TestAssignIsValidAcrossFamilies(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"cycle-17":      graph.Cycle(17),
		"path-9":        graph.Path(9),
		"grid-7x5":      graph.Grid(7, 5),
		"tree-40":       graph.RandomTree(40, 3),
		"gnp-30":        graph.RandomGNP(30, 0.2, 5),
		"petersen":      graph.Petersen(),
		"disconnected":  graph.DisjointUnion(graph.Cycle(5), graph.Cycle(6).ShiftIDs(10)),
		"single":        graph.Path(1),
		"scrambled-5x5": graph.RandomPermutationIDs(graph.Grid(5, 5), 11),
	}
	for name, g := range graphs {
		for _, p := range all(t) {
			for _, shards := range []int{1, 2, 3, 7, g.N(), g.N() + 5} {
				ctx := fmt.Sprintf("%s/%s/shards=%d", name, p.Name(), shards)
				assign := p.Assign(g, shards)
				eff := shards
				if eff > g.N() {
					eff = g.N()
				}
				if err := partition.Validate(assign, g.N(), eff); err != nil {
					t.Fatalf("%s: %v", ctx, err)
				}
				// Near-equal balance: Contiguous and BFSChunks are exact
				// (sizes differ by at most one); GreedyBalanced may trade
				// up to its slack, which is 10% of the ceiling target but
				// at least one node.
				sizes := make([]int, eff)
				for _, s := range assign {
					sizes[s]++
				}
				target := (g.N() + eff - 1) / eff
				slack := target / 10
				if slack < 1 {
					slack = 1
				}
				for s, size := range sizes {
					if size > target+slack {
						t.Fatalf("%s: shard %d holds %d nodes, cap %d", ctx, s, size, target+slack)
					}
				}
			}
		}
	}
}

// TestAssignDeterministic: repeated assignments are identical — the
// engine rebuilds them after invalidation and must land on the same
// sharding.
func TestAssignDeterministic(t *testing.T) {
	g := graph.RandomPermutationIDs(graph.Grid(9, 9), 2)
	for _, p := range all(t) {
		a := p.Assign(g, 4)
		for i := 0; i < 3; i++ {
			if b := p.Assign(g, 4); !reflect.DeepEqual(a, b) {
				t.Fatalf("%s: assignment differs between runs", p.Name())
			}
		}
	}
}

// TestAssignDegenerate: empty graphs and non-positive shard counts
// yield nil, exactly one shard yields the all-zero assignment.
func TestAssignDegenerate(t *testing.T) {
	empty := graph.NewBuilder(graph.Undirected).Graph()
	g := graph.Cycle(5)
	for _, p := range all(t) {
		if a := p.Assign(empty, 3); a != nil {
			t.Errorf("%s: empty graph: got %v, want nil", p.Name(), a)
		}
		if a := p.Assign(g, 0); a != nil {
			t.Errorf("%s: zero shards: got %v, want nil", p.Name(), a)
		}
		if a := p.Assign(g, -2); a != nil {
			t.Errorf("%s: negative shards: got %v, want nil", p.Name(), a)
		}
		a := p.Assign(g, 1)
		for i, s := range a {
			if s != 0 {
				t.Errorf("%s: single shard: node index %d on shard %d", p.Name(), i, s)
			}
		}
	}
}

// TestContiguousMatchesSplitRanges: Contiguous is exactly the historic
// id-range sharding — the dist scheduler's behaviour before this
// package existed.
func TestContiguousMatchesSplitRanges(t *testing.T) {
	g := graph.RandomTree(23, 1)
	for _, shards := range []int{1, 2, 5, 23} {
		assign := partition.Contiguous{}.Assign(g, shards)
		for s, r := range partition.SplitRanges(g.N(), shards) {
			for i := r[0]; i < r[1]; i++ {
				if assign[i] != s {
					t.Fatalf("shards=%d: index %d on shard %d, want range shard %d", shards, i, assign[i], s)
				}
			}
		}
	}
}

// TestSplitRanges pins the splitter's contract: a cover of [0, n) by
// ascending, near-equal, non-empty ranges.
func TestSplitRanges(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{10, 3}, {3, 10}, {1, 1}, {7, 7}, {100, 8}, {0, 4}, {5, 0}, {5, -1},
	} {
		ranges := partition.SplitRanges(tc.n, tc.parts)
		if tc.n == 0 || tc.parts <= 0 {
			if ranges != nil {
				t.Errorf("SplitRanges(%d,%d) = %v, want nil", tc.n, tc.parts, ranges)
			}
			continue
		}
		lo := 0
		for _, r := range ranges {
			if r[0] != lo || r[1] <= r[0] {
				t.Fatalf("SplitRanges(%d,%d): bad range %v at lo=%d", tc.n, tc.parts, r, lo)
			}
			lo = r[1]
		}
		if lo != tc.n {
			t.Fatalf("SplitRanges(%d,%d) covers [0,%d), want [0,%d)", tc.n, tc.parts, lo, tc.n)
		}
	}
}

// TestCutEdgesCounts: hand-checked cut on a path split two ways.
func TestCutEdgesCounts(t *testing.T) {
	g := graph.Path(6) // 1-2-3-4-5-6
	if cut := partition.CutEdges(g, []int{0, 0, 0, 1, 1, 1}); cut != 1 {
		t.Errorf("half split: cut = %d, want 1", cut)
	}
	if cut := partition.CutEdges(g, []int{0, 1, 0, 1, 0, 1}); cut != 5 {
		t.Errorf("alternating: cut = %d, want 5", cut)
	}
	if cut := partition.CutEdges(g, []int{0, 0, 0, 0, 0, 0}); cut != 0 {
		t.Errorf("single shard: cut = %d, want 0", cut)
	}
}

// TestGreedyNeverWorseThanBFS: refinement only accepts strictly
// improving moves, so the greedy cut is bounded by the BFS cut on every
// family.
func TestGreedyNeverWorseThanBFS(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"grid":  graph.RandomPermutationIDs(graph.Grid(12, 12), 3),
		"tree":  graph.RandomPermutationIDs(graph.RandomTree(200, 4), 5),
		"gnp":   graph.RandomGNP(120, 0.05, 6),
		"cycle": graph.Cycle(97),
	} {
		for _, shards := range []int{2, 4, 8} {
			bfs := partition.CutEdges(g, partition.BFSChunks{}.Assign(g, shards))
			greedy := partition.CutEdges(g, partition.GreedyBalanced{}.Assign(g, shards))
			if greedy > bfs {
				t.Errorf("%s shards=%d: greedy cut %d > bfs cut %d", name, shards, greedy, bfs)
			}
		}
	}
}

// TestValidateRejects: the schedulers' guard catches truncated and
// out-of-range assignments.
func TestValidateRejects(t *testing.T) {
	if err := partition.Validate([]int{0, 1}, 3, 2); err == nil {
		t.Error("short assignment accepted")
	}
	if err := partition.Validate([]int{0, 2, 1}, 3, 2); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if err := partition.Validate([]int{0, -1, 1}, 3, 2); err == nil {
		t.Error("negative shard accepted")
	}
	if err := partition.Validate([]int{0, 1, 1}, 3, 2); err != nil {
		t.Errorf("valid assignment rejected: %v", err)
	}
}

// TestByNameUnknown: the registry rejects junk with the known names in
// the message.
func TestByNameUnknown(t *testing.T) {
	if _, err := partition.ByName("quantum"); err == nil {
		t.Error("unknown partitioner accepted")
	}
}

// TestGroups: grouping inverts the assignment with ids in ascending
// order, empty shards included.
func TestGroups(t *testing.T) {
	g := graph.Path(5)
	groups := partition.Groups(g, []int{2, 0, 2, 0, 2}, 4)
	want := [][]int{{2, 4}, nil, {1, 3, 5}, nil}
	if !reflect.DeepEqual(groups, want) {
		t.Errorf("Groups = %v, want %v", groups, want)
	}
}
