package partition

import "lcp/internal/graph"

// Contiguous assigns near-equal contiguous ranges of the ascending
// identifier order to each shard — the scheduler behaviour before this
// package existed (dist.SplitRanges over g.Nodes()). It never looks at
// an edge, so it costs O(n) and keeps whatever locality the identifier
// assignment happens to encode: perfect on paths, cycles and freshly
// generated grids, no better than random once identifiers are permuted.
type Contiguous struct{}

// Name implements Partitioner.
func (Contiguous) Name() string { return "contiguous" }

// Assign implements Partitioner.
func (Contiguous) Assign(g *graph.Graph, shards int) []int {
	ranges := SplitRanges(g.N(), shards)
	if ranges == nil {
		return nil
	}
	assign := make([]int, g.N())
	for s, r := range ranges {
		for i := r[0]; i < r[1]; i++ {
			assign[i] = s
		}
	}
	return assign
}
