// Package partition assigns graph nodes to scheduler shards.
//
// Every sharded execution layer in the repository — the dist runtime's
// shard goroutines, the engine's halo sub-instances, and the worker
// pools that split node ranges — ultimately needs a map from nodes to
// shards. The LOCAL model charges only for communication rounds, but
// the simulation's wall-clock cost is dominated by cross-shard message
// traffic: a same-shard edge is a direct merge with no channel, while a
// cross-shard edge costs two ports, two channel operations per round,
// and (in the engine) a duplicated halo carrier. This package therefore
// treats partitioning as a quality problem, not an indexing detail: the
// Partitioner interface produces a node→shard assignment, and the three
// implementations trade assignment cost against cut quality.
//
//   - Contiguous chunks the ascending identifier order into near-equal
//     ranges. It is free to compute and ideal when identifiers happen to
//     follow topology (paths, cycles, freshly generated grids), but on
//     scrambled identifiers it degenerates to a random partition.
//   - BFSChunks chunks a breadth-first order instead, so each shard is a
//     union of adjacent BFS layers — a connected, low-boundary region
//     regardless of how identifiers were assigned.
//   - GreedyBalanced refines BFSChunks by moving boundary nodes to the
//     neighbouring shard where most of their edges live, under a balance
//     constraint, strictly reducing the cut at every move.
//
// CutEdges measures what the schedulers pay for; BenchmarkPartitioners
// and BENCH_partition.json track it alongside round throughput. All
// partitioners are deterministic and verdict-neutral: property tests in
// internal/dist and internal/engine assert that every assignment yields
// results identical to core.Check.
package partition
