package partition_test

// BenchmarkPartitioners measures the two costs a partitioner controls,
// on the families the ROADMAP called out (grids, trees, random graphs,
// identifiers scrambled so contiguous ranges cannot free-ride on id
// order):
//
//   - assign: the one-off cost of computing the node→shard assignment,
//     with the resulting cross-shard edge count attached as the
//     "cut-edges" metric — the number BENCH_partition.json tracks;
//   - rounds: the steady-state cost of a full sharded verification run
//     under that assignment (dist.CheckWith, 8 shards), where every cut
//     edge is two ports paying channel traffic each round.
//
// Assignment cost is paid once per wiring and amortized by the engine
// and dist.Network across arbitrarily many proofs, so a partitioner
// whose assign row is 10× slower but whose cut is 5× smaller wins on
// any long-lived instance.

import (
	"fmt"
	"testing"

	"lcp/internal/core"
	"lcp/internal/dist"
	"lcp/internal/graph"
	"lcp/internal/partition"
)

const benchShards = 8

func benchFamilies() []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"grid-32x32", graph.RandomPermutationIDs(graph.Grid(32, 32), 1)},
		{"tree-1024", graph.RandomPermutationIDs(graph.RandomTree(1024, 2), 3)},
		{"gnp-512-p01", graph.RandomGNP(512, 0.01, 4)},
	}
}

func BenchmarkPartitioners(b *testing.B) {
	for _, fam := range benchFamilies() {
		in := core.NewInstance(fam.g)
		p := core.RandomProof(in, 4, 7)
		v := core.VerifierFunc{R: 2, F: func(w *core.View) bool { return w.G.N() > 0 }}
		for _, name := range partition.Names() {
			pt, err := partition.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			cut := partition.CutEdges(fam.g, pt.Assign(fam.g, benchShards))
			b.Run(fmt.Sprintf("%s/%s/assign", fam.name, name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					pt.Assign(fam.g, benchShards)
				}
				b.ReportMetric(float64(cut), "cut-edges")
			})
			b.Run(fmt.Sprintf("%s/%s/rounds", fam.name, name), func(b *testing.B) {
				b.ReportAllocs()
				opt := dist.Options{Sharded: true, Shards: benchShards, Partitioner: pt}
				for i := 0; i < b.N; i++ {
					if _, err := dist.CheckWith(in, p, v, opt); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(cut), "cut-edges")
			})
		}
	}
}
