package partition

import (
	"fmt"
	"sort"

	"lcp/internal/graph"
)

// Partitioner computes a node→shard assignment for a graph. Assign
// returns a slice aligned with g.Nodes(): entry i is the shard (in
// [0, shards)) owning node g.Nodes()[i]. It returns nil when shards <= 0
// or the graph is empty. Implementations must be deterministic — the
// engine rebuilds assignments after cache invalidation and the property
// tests compare runs — and need not be safe for concurrent mutation,
// but the stateless implementations in this package are safe to share.
type Partitioner interface {
	// Name is the stable registry key ("contiguous", "bfs", "greedy")
	// used by flags and HTTP request options.
	Name() string
	Assign(g *graph.Graph, shards int) []int
}

// clampShards mirrors the schedulers' shard-count rules: at most one
// shard per node, nil assignment when there is nothing to split.
func clampShards(n, shards int) int {
	if shards > n {
		shards = n
	}
	return shards
}

// SplitRanges partitions n items into at most parts contiguous [lo, hi)
// ranges of near-equal size; nil when parts <= 0 or n == 0. It is the
// shared range splitter behind Contiguous and every worker pool that
// shards a node slice (internal/engine's forEachRange and CheckStream).
func SplitRanges(n, parts int) [][2]int {
	parts = clampShards(n, parts)
	if parts <= 0 || n == 0 {
		return nil
	}
	out := make([][2]int, 0, parts)
	lo := 0
	for i := 0; i < parts; i++ {
		hi := lo + (n-lo)/(parts-i)
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

// Validate checks that assign is a plausible node→shard assignment for
// an n-node graph split into shards parts: one entry per node, every
// entry in [0, shards). Schedulers call this before trusting a
// caller-supplied Partitioner with their wiring.
func Validate(assign []int, n, shards int) error {
	if len(assign) != n {
		return fmt.Errorf("partition: assignment covers %d of %d nodes", len(assign), n)
	}
	for i, s := range assign {
		if s < 0 || s >= shards {
			return fmt.Errorf("partition: node index %d assigned to shard %d of %d", i, s, shards)
		}
	}
	return nil
}

// Groups converts an assignment into per-shard node-id lists, aligned
// with the assignment's shard indices. Ids within a group keep the
// ascending g.Nodes() order, so downstream wiring is deterministic.
// Groups may be empty when a shard received no nodes.
func Groups(g *graph.Graph, assign []int, shards int) [][]int {
	groups := make([][]int, shards)
	for i, id := range g.Nodes() {
		s := assign[i]
		groups[s] = append(groups[s], id)
	}
	return groups
}

// CutEdges counts the edges of g whose endpoints are assigned to
// different shards — the edges that cost channels and per-round message
// traffic in the sharded schedulers (each one becomes two directed
// ports). assign is indexed like Assign's result.
func CutEdges(g *graph.Graph, assign []int) int {
	cut := 0
	for _, e := range g.Edges() {
		if assign[g.Index(e.U)] != assign[g.Index(e.V)] {
			cut++
		}
	}
	return cut
}

// ByName resolves a registry key to its partitioner: "contiguous",
// "bfs", or "greedy". The empty string resolves to Contiguous, the
// zero-configuration default of every scheduler.
func ByName(name string) (Partitioner, error) {
	switch name {
	case "", "contiguous":
		return Contiguous{}, nil
	case "bfs":
		return BFSChunks{}, nil
	case "greedy":
		return GreedyBalanced{}, nil
	}
	return nil, fmt.Errorf("partition: unknown partitioner %q (have %v)", name, Names())
}

// Names lists the registry keys ByName accepts, sorted.
func Names() []string {
	names := []string{"bfs", "contiguous", "greedy"}
	sort.Strings(names)
	return names
}
