package remote

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"lcp/internal/core"
	"lcp/internal/engine"
	"lcp/internal/obs"
	"lcp/internal/partition"
	"lcp/internal/textio"
	"lcp/internal/transport"
)

// Coordinator option defaults.
const (
	// DefaultDialTimeout bounds dialing one worker's control connection.
	DefaultDialTimeout = 5 * time.Second
	// DefaultCheckTimeout bounds one whole control-plane round trip
	// (register or check) with one worker.
	DefaultCheckTimeout = 60 * time.Second
)

// Options tune the coordinator's timeouts and partitioning. The zero
// value selects sensible defaults.
type Options struct {
	// DialTimeout bounds dialing and handshaking one control
	// connection (default DefaultDialTimeout).
	DialTimeout time.Duration
	// CheckTimeout bounds one register or check round trip per worker
	// (default DefaultCheckTimeout). A dead worker surfaces as an error
	// within it.
	CheckTimeout time.Duration
	// RoundTimeout bounds each flood round's network wait on the
	// workers (default transport.DefaultRoundTimeout).
	RoundTimeout time.Duration
	// Partitioner assigns nodes to workers (default
	// partition.Contiguous).
	Partitioner partition.Partitioner
}

func (o Options) dialTimeout() time.Duration {
	if o.DialTimeout <= 0 {
		return DefaultDialTimeout
	}
	return o.DialTimeout
}

func (o Options) checkTimeout() time.Duration {
	if o.CheckTimeout <= 0 {
		return DefaultCheckTimeout
	}
	return o.CheckTimeout
}

func (o Options) roundTimeout() time.Duration {
	if o.RoundTimeout <= 0 {
		return transport.DefaultRoundTimeout
	}
	return o.RoundTimeout
}

func (o Options) partitioner() partition.Partitioner {
	if o.Partitioner == nil {
		return partition.Contiguous{}
	}
	return o.Partitioner
}

// Coordinator drives one instance's checks across a fleet of workers:
// Register ships each worker its radius-1 halo shard, Check fans a
// proof out and merges the per-shard verdicts. It holds one persistent
// control connection per worker; the per-check data connections are the
// workers' own business. Methods serialize — a coordinator is one
// checking session, not a pool.
type Coordinator struct {
	instance string
	addrs    []string
	opts     Options

	mu         sync.Mutex
	conns      []*controlConn
	seq        uint64
	registered bool
	n          int     // nodes in the registered instance
	owned      [][]int // node ids per worker, from Register's partition
	closed     bool
}

// controlConn is one worker's persistent control connection with its
// framing state.
type controlConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// DialCoordinator connects to every worker's control plane. The
// instance name must be unique among concurrently-registered instances
// across the fleet — the façade derives it from a process-unique
// counter. At least one worker address is required.
func DialCoordinator(ctx context.Context, instance string, addrs []string, opts Options) (*Coordinator, error) {
	if instance == "" {
		return nil, fmt.Errorf("remote: empty instance name")
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("remote: no worker addresses")
	}
	c := &Coordinator{instance: instance, addrs: addrs, opts: opts}
	for _, addr := range addrs {
		d := net.Dialer{Timeout: opts.dialTimeout()}
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			_ = c.closeConns() // the dial failure is the error worth reporting
			return nil, fmt.Errorf("remote: dial worker %s: %w", addr, err)
		}
		h := transport.Hello{Proto: transport.ProtoVersion, Role: transport.RoleControl, Instance: instance}
		if err := transport.WriteHello(conn, h, opts.dialTimeout()); err != nil {
			_ = conn.Close() // the handshake failure is the error worth reporting
			_ = c.closeConns()
			return nil, fmt.Errorf("remote: handshake with worker %s: %w", addr, err)
		}
		c.conns = append(c.conns, &controlConn{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)})
	}
	return c, nil
}

// Register partitions the instance across the workers and installs each
// worker's shard: its radius-1 halo (serialized through textio), the
// nodes it decides, the assignment that routes its cut edges, and the
// full fleet's addresses. It must be called once before Check; calling
// it again replaces the registration fleet-wide.
func (c *Coordinator) Register(ctx context.Context, in *core.Instance, schemeName string) error {
	if schemeName == "" {
		return fmt.Errorf("remote: empty scheme name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("remote: coordinator closed")
	}
	tl := obs.TimelineFrom(ctx)
	defer tl.Start("remote.register")()
	ids := in.G.Nodes()
	workers := len(c.conns)
	shards := workers
	if shards > len(ids) {
		shards = len(ids)
	}
	if shards < 1 {
		shards = 1
	}
	pt := c.opts.partitioner()
	assign := pt.Assign(in.G, shards)
	if err := partition.Validate(assign, len(ids), shards); err != nil {
		return fmt.Errorf("remote: partitioner %q: %v", pt.Name(), err)
	}
	groups := partition.Groups(in.G, assign, shards)
	assignByID := make(map[int]int, len(ids))
	for i, id := range ids {
		assignByID[id] = assign[i]
	}
	owned := make([][]int, workers)
	copy(owned, groups)
	c.seq++
	seq := c.seq
	reqs := make([]*Request, workers)
	for i := 0; i < workers; i++ {
		halo := in
		if len(owned[i]) < len(ids) {
			halo = engine.HaloInstance(in, owned[i], 1)
		}
		var sb strings.Builder
		if err := textio.Write(&sb, &textio.Document{Instance: halo}); err != nil {
			return fmt.Errorf("remote: serialize shard %d: %w", i, err)
		}
		haloAssign := make(map[int]int)
		for _, id := range halo.G.Nodes() {
			haloAssign[id] = assignByID[id]
		}
		reqs[i] = &Request{
			Op:             OpRegister,
			Seq:            seq,
			Instance:       c.instance,
			Scheme:         schemeName,
			Doc:            sb.String(),
			Me:             i,
			Workers:        c.addrs,
			Owned:          owned[i],
			Assign:         haloAssign,
			HasNodeLabels:  in.NodeLabel != nil,
			HasEdgeLabels:  in.EdgeLabel != nil,
			HasWeights:     in.Weights != nil,
			RoundTimeoutMS: c.opts.roundTimeout().Milliseconds(),
		}
	}
	if err := c.fanOut(ctx, reqs, nil, nil); err != nil {
		return err
	}
	c.registered = true
	c.n = len(ids)
	c.owned = owned
	return nil
}

// Check fans one proof out to the fleet and merges the verdicts into a
// result indistinguishable from core.Check on the full instance. The
// returned stats sum the fleet's data-plane traffic for this check. A
// worker failure — network, process death, shard error — surfaces as an
// error within the configured timeouts; the coordinator stays usable
// for further checks (the data plane is per-check, so nothing durable
// is poisoned).
func (c *Coordinator) Check(ctx context.Context, p core.Proof) (*core.Result, transport.Stats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var stats transport.Stats
	if c.closed {
		return nil, stats, fmt.Errorf("remote: coordinator closed")
	}
	if !c.registered {
		return nil, stats, fmt.Errorf("remote: no instance registered")
	}
	tl := obs.TimelineFrom(ctx)
	defer tl.Start("remote.fanout")()
	c.seq++
	seq := c.seq
	reqs := make([]*Request, len(c.conns))
	for i := range c.conns {
		// Restrict the proof to the worker's owned nodes, preserving
		// entry presence exactly (an explicit ε entry stays an entry).
		// Remote nodes' proofs reach the worker over the data plane,
		// inside flooded records.
		pm := make(map[int]string)
		for _, id := range c.owned[i] {
			if s, ok := p[id]; ok {
				pm[id] = s.String()
			}
		}
		reqs[i] = &Request{Op: OpCheck, Instance: c.instance, Seq: seq, Proof: pm}
	}
	res := &core.Result{Outputs: make(map[int]bool, c.n)}
	var mergeMu sync.Mutex
	if err := c.fanOut(ctx, reqs, &stats, func(i int, resp *Response) error {
		mergeMu.Lock()
		defer mergeMu.Unlock()
		for id, ok := range resp.Outputs {
			res.Outputs[id] = ok
		}
		return nil
	}); err != nil {
		return nil, stats, err
	}
	if len(res.Outputs) != c.n {
		return nil, stats, fmt.Errorf("remote: merged %d verdicts, want %d", len(res.Outputs), c.n)
	}
	return res, stats, nil
}

// fanOut sends one request per worker concurrently and collects the
// responses. The first failure wins; every round trip is bounded by the
// check timeout and the context. onResp, when non-nil, consumes each
// successful response; stats, when non-nil, accumulates response stats.
func (c *Coordinator) fanOut(ctx context.Context, reqs []*Request, stats *transport.Stats, onResp func(int, *Response) error) error {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	report := func(i int, err error) {
		mu.Lock()
		if firstErr == nil && err != nil {
			firstErr = fmt.Errorf("worker %s: %w", c.addrs[i], err)
		}
		mu.Unlock()
	}
	for i, cc := range c.conns {
		wg.Add(1)
		go func(i int, cc *controlConn) {
			defer wg.Done()
			resp, err := c.roundTrip(ctx, cc, reqs[i])
			if err != nil {
				report(i, err)
				return
			}
			if !resp.OK {
				report(i, errors.New(resp.Error))
				return
			}
			mu.Lock()
			if stats != nil {
				stats.Add(resp.Stats)
			}
			mu.Unlock()
			if onResp != nil {
				if err := onResp(i, resp); err != nil {
					report(i, err)
				}
			}
		}(i, cc)
	}
	wg.Wait()
	if firstErr != nil {
		if err := ctx.Err(); err != nil {
			// The deadline yank manufactured the I/O errors; report the
			// cause.
			return err
		}
		return fmt.Errorf("remote: %w", firstErr)
	}
	return nil
}

// roundTrip sends one request on a control connection and reads its
// response, skipping stale responses of earlier, timed-out requests
// (matched by sequence number). Bounded by the check timeout; a
// cancelled context yanks the connection deadline to now.
func (c *Coordinator) roundTrip(ctx context.Context, cc *controlConn, req *Request) (*Response, error) {
	deadline := time.Now().Add(c.opts.checkTimeout())
	stop := context.AfterFunc(ctx, func() {
		_ = cc.conn.SetDeadline(time.Now()) // best effort: the point is to interrupt blocked I/O
	})
	defer stop()
	if err := writeJSONFrame(cc.conn, cc.w, transport.FrameRequest, req, deadline); err != nil {
		return nil, err
	}
	for {
		var resp Response
		if err := readJSONFrame(cc.conn, cc.r, transport.FrameResponse, &resp, deadline); err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return nil, err
		}
		switch {
		case resp.Seq == req.Seq:
			return &resp, nil
		case resp.Seq < req.Seq:
			// A stale response to a request that timed out earlier;
			// drain and keep waiting for ours.
		default:
			return nil, fmt.Errorf("remote: response for future seq %d, want %d", resp.Seq, req.Seq)
		}
	}
}

// Close tells every worker to forget the instance (best effort, short
// deadline) and closes the control connections. The coordinator is
// unusable afterwards.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.registered {
		deadline := time.Now().Add(c.opts.dialTimeout())
		c.seq++
		for _, cc := range c.conns {
			req := &Request{Op: OpClose, Instance: c.instance, Seq: c.seq}
			if err := writeJSONFrame(cc.conn, cc.w, transport.FrameRequest, req, deadline); err != nil {
				continue // best effort: the conn is closing anyway
			}
			var resp Response
			_ = readJSONFrame(cc.conn, cc.r, transport.FrameResponse, &resp, deadline) // best effort
		}
	}
	return c.closeConns()
}

// closeConns closes every control connection.
func (c *Coordinator) closeConns() error {
	var errs []error
	for _, cc := range c.conns {
		if err := cc.conn.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
