package remote_test

// The multi-process contract, exercised over real loopback TCP: a
// coordinator + worker fleet produces verdicts identical to core.Check
// across the whole catalog (honest, tampered, truncated), worker death
// — mid-round and mid-handshake — surfaces as a bounded-time error
// instead of a hang, and a failed check poisons nothing: surviving
// workers serve the next session.

import (
	"context"
	"fmt"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"lcp"
	"lcp/internal/core"
	"lcp/internal/graph"
	"lcp/internal/partition"
	"lcp/internal/remote"
)

// startFleet launches n in-process workers on loopback listeners
// speaking the given scheme registry, torn down with the test.
func startFleet(t testing.TB, n int, schemes map[string]core.Scheme) ([]string, []*remote.Worker) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	addrs := make([]string, n)
	workers := make([]*remote.Worker, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		w := remote.NewWorker(ln, schemes)
		workers[i] = w
		addrs[i] = w.Addr()
		go func() {
			_ = w.Serve(ctx)
		}()
		t.Cleanup(func() { _ = w.Close() })
	}
	return addrs, workers
}

// catalogSchemes is every built-in scheme plus the catalog's extras
// (some experiment rows use derived schemes outside the named
// registry), keyed by Name() — the registry a test fleet serves.
func catalogSchemes() map[string]core.Scheme {
	schemes := lcp.BuiltinSchemes()
	for _, exp := range lcp.Catalog() {
		schemes[exp.Scheme.Name()] = exp.Scheme
	}
	return schemes
}

func TestCoordinatorMatchesCoreOnCatalog(t *testing.T) {
	const n = 12
	schemes := catalogSchemes()
	configs := []struct {
		workers int
		pt      partition.Partitioner
	}{
		{2, partition.Contiguous{}},
		{4, partition.BFSChunks{}},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(fmt.Sprintf("%d-workers-%s", cfg.workers, cfg.pt.Name()), func(t *testing.T) {
			addrs, _ := startFleet(t, cfg.workers, schemes)
			ctx := context.Background()
			for ei, exp := range lcp.Catalog() {
				size := n
				if size < exp.MinN {
					size = exp.MinN
				}
				in := exp.MakeYes(size, 1)
				honest, err := exp.Scheme.Prove(in)
				if err != nil {
					t.Fatalf("%s: prove: %v", exp.ID, err)
				}
				v := exp.Scheme.Verifier()
				coord, err := remote.DialCoordinator(ctx, fmt.Sprintf("eq-%s-%d", exp.ID, ei), addrs,
					remote.Options{Partitioner: cfg.pt})
				if err != nil {
					t.Fatalf("%s: dial: %v", exp.ID, err)
				}
				if err := coord.Register(ctx, in, exp.Scheme.Name()); err != nil {
					coord.Close()
					t.Fatalf("%s: register: %v", exp.ID, err)
				}
				proofs := []core.Proof{honest, core.FlipBit(honest, 0), honest.Truncated(1)}
				labels := []string{"honest", "tampered", "truncated"}
				for pi, p := range proofs {
					want := core.Check(in, p, v)
					got, stats, err := coord.Check(ctx, p)
					if err != nil {
						coord.Close()
						t.Fatalf("%s/%s: check: %v", exp.ID, labels[pi], err)
					}
					if !reflect.DeepEqual(got.Outputs, want.Outputs) {
						coord.Close()
						t.Fatalf("%s/%s: outputs differ:\n got %v\nwant %v", exp.ID, labels[pi], got.Outputs, want.Outputs)
					}
					if v.Radius() > 0 && cfg.workers > 1 && stats.Rounds == 0 {
						t.Errorf("%s/%s: no transport rounds recorded for a radius-%d check", exp.ID, labels[pi], v.Radius())
					}
				}
				if err := coord.Close(); err != nil {
					t.Fatalf("%s: close: %v", exp.ID, err)
				}
			}
		})
	}
}

// TestCoordinatorMoreWorkersThanNodes: extra workers get empty shards
// — an empty halo document, no peers, no verdicts — and the merged
// result still matches core.
func TestCoordinatorMoreWorkersThanNodes(t *testing.T) {
	schemes := map[string]core.Scheme{"test-ping": pingScheme{r: 2}}
	addrs, _ := startFleet(t, 4, schemes)
	in := pathInstance(2)
	ctx := context.Background()
	coord, err := remote.DialCoordinator(ctx, "tiny", addrs, remote.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer coord.Close()
	if err := coord.Register(ctx, in, "test-ping"); err != nil {
		t.Fatalf("register: %v", err)
	}
	want := core.Check(in, core.Proof{}, pingScheme{r: 2}.Verifier())
	got, _, err := coord.Check(ctx, core.Proof{})
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if !reflect.DeepEqual(got.Outputs, want.Outputs) {
		t.Fatalf("outputs differ:\n got %v\nwant %v", got.Outputs, want.Outputs)
	}
}

// TestCoordinatorTinyFleetWideInstance runs the widest-radius catalog
// scheme so the flood spans many rounds over the wire.
func TestCoordinatorTinyFleetWideInstance(t *testing.T) {
	schemes := catalogSchemes()
	addrs, _ := startFleet(t, 3, schemes)
	exp := widestCatalogExperiment(t)
	size := 48
	if size < exp.MinN {
		size = exp.MinN
	}
	runCoordinatorCheck(t, addrs, exp, exp.MakeYes(size, 7))
}

func runCoordinatorCheck(t *testing.T, addrs []string, exp lcp.Experiment, in *lcp.Instance) {
	t.Helper()
	ctx := context.Background()
	honest, err := exp.Scheme.Prove(in)
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	coord, err := remote.DialCoordinator(ctx, "single-"+t.Name(), addrs, remote.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer coord.Close()
	if err := coord.Register(ctx, in, exp.Scheme.Name()); err != nil {
		t.Fatalf("register: %v", err)
	}
	want := core.Check(in, honest, exp.Scheme.Verifier())
	got, _, err := coord.Check(ctx, honest)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if !reflect.DeepEqual(got.Outputs, want.Outputs) {
		t.Fatalf("outputs differ:\n got %v\nwant %v", got.Outputs, want.Outputs)
	}
}

func widestCatalogExperiment(t *testing.T) lcp.Experiment {
	t.Helper()
	var best lcp.Experiment
	bestR := -1
	for _, exp := range lcp.Catalog() {
		if r := exp.Scheme.Verifier().Radius(); r > bestR {
			best, bestR = exp, r
		}
	}
	if bestR < 1 {
		t.Fatal("catalog has no scheme with radius >= 1")
	}
	return best
}

// pingScheme floods for a configurable number of rounds and accepts
// everything — a pure round-trip generator, so fault tests can pin a
// check in its communication phase long enough to kill a worker
// mid-round.
type pingScheme struct{ r int }

func (s pingScheme) Name() string { return "test-ping" }
func (s pingScheme) Verifier() core.Verifier {
	return core.VerifierFunc{R: s.r, F: func(*core.View) bool { return true }}
}
func (s pingScheme) Prove(*core.Instance) (core.Proof, error) { return core.Proof{}, nil }

func pathInstance(n int) *core.Instance {
	nodes := make([]int, n)
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n; i++ {
		nodes[i] = i + 1
		if i > 0 {
			edges = append(edges, graph.NormEdge(i, i+1))
		}
	}
	return &core.Instance{G: graph.FromEdges(graph.Undirected, nodes, edges)}
}

// TestWorkerDeathMidRound kills one worker of three while a
// many-thousand-round check is mid-flood: the coordinator must return a
// transport error well within its timeouts (no hang), and the
// surviving workers must serve a fresh session afterwards — a failed
// check's poison dies with its per-check data plane.
func TestWorkerDeathMidRound(t *testing.T) {
	schemes := map[string]core.Scheme{
		"test-ping":       pingScheme{r: 200000},
		"test-ping-short": pingScheme{r: 4},
	}
	addrs, workers := startFleet(t, 3, schemes)
	in := pathInstance(30)
	ctx := context.Background()
	opts := remote.Options{RoundTimeout: 2 * time.Second, CheckTimeout: 30 * time.Second}
	coord, err := remote.DialCoordinator(ctx, "death-mid-round", addrs, opts)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer coord.Close()
	if err := coord.Register(ctx, in, "test-ping"); err != nil {
		t.Fatalf("register: %v", err)
	}
	errc := make(chan error, 1)
	start := time.Now()
	go func() {
		_, _, err := coord.Check(ctx, core.Proof{})
		errc <- err
	}()
	// 200k rounds of loopback ping-pong take far longer than this, so
	// the kill lands mid-flood.
	time.Sleep(100 * time.Millisecond)
	if err := workers[2].Close(); err != nil {
		t.Fatalf("kill worker: %v", err)
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("check over a killed worker succeeded")
		}
		t.Logf("check failed after %v: %v", time.Since(start), err)
	case <-time.After(40 * time.Second):
		t.Fatal("check over a killed worker hung past every timeout")
	}

	// The survivors are not poisoned: a fresh session over the two
	// remaining workers registers and checks cleanly, because both the
	// data plane (per-check connections) and the failed run's transport
	// state died with the killed session.
	coord2, err := remote.DialCoordinator(ctx, "death-aftermath", []string{addrs[0], addrs[1]}, remote.Options{})
	if err != nil {
		t.Fatalf("dial survivors: %v", err)
	}
	defer coord2.Close()
	if err := coord2.Register(ctx, pathInstance(10), "test-ping-short"); err != nil {
		t.Fatalf("register on survivors: %v", err)
	}
	got, _, err := coord2.Check(ctx, core.Proof{})
	if err != nil {
		t.Fatalf("check on survivors after a killed session: %v", err)
	}
	if len(got.Outputs) != 10 {
		t.Fatalf("survivor check decided %d nodes, want 10", len(got.Outputs))
	}
}

// TestWorkerDeathMidHandshake points the coordinator at a listener that
// accepts and then goes silent: registration must fail within the
// configured timeout, not hang on the half-open control plane.
func TestWorkerDeathMidHandshake(t *testing.T) {
	schemes := lcp.BuiltinSchemes()
	addrs, _ := startFleet(t, 1, schemes)
	stall, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer stall.Close()
	go func() {
		for {
			conn, err := stall.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold it open and silent until the test ends
		}
	}()
	ctx := context.Background()
	opts := remote.Options{DialTimeout: 2 * time.Second, CheckTimeout: 2 * time.Second}
	coord, err := remote.DialCoordinator(ctx, "death-mid-handshake", append(addrs, stall.Addr().String()), opts)
	if err != nil {
		t.Fatalf("dial: %v", err) // dial+hello succeed; the stall is in the reply
	}
	defer coord.Close()
	exp := lcp.Catalog()[0]
	in := exp.MakeYes(exp.MinN, 1)
	start := time.Now()
	err = coord.Register(ctx, in, exp.Scheme.Name())
	if err == nil {
		t.Fatal("register through a stalled worker succeeded")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("register took %v, want bounded by the 2s check timeout", elapsed)
	}
}

// TestRegisterUnknownScheme: the worker rejects a scheme name outside
// its registry with a clear error, not a crash at check time.
func TestRegisterUnknownScheme(t *testing.T) {
	addrs, _ := startFleet(t, 2, lcp.BuiltinSchemes())
	ctx := context.Background()
	coord, err := remote.DialCoordinator(ctx, "bad-scheme", addrs, remote.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer coord.Close()
	exp := lcp.Catalog()[0]
	in := exp.MakeYes(exp.MinN, 1)
	err = coord.Register(ctx, in, "no-such-scheme")
	if err == nil || !strings.Contains(err.Error(), "no-such-scheme") {
		t.Fatalf("register with bogus scheme: err = %v, want mention of the scheme name", err)
	}
}

// TestCheckCancellation: a context cancelled mid-flood aborts the
// coordinator promptly with the context's error.
func TestCheckCancellation(t *testing.T) {
	schemes := map[string]core.Scheme{"test-ping": pingScheme{r: 200000}}
	addrs, _ := startFleet(t, 2, schemes)
	ctx := context.Background()
	coord, err := remote.DialCoordinator(ctx, "cancel-mid-flood", addrs, remote.Options{CheckTimeout: 60 * time.Second})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer coord.Close()
	if err := coord.Register(ctx, pathInstance(16), "test-ping"); err != nil {
		t.Fatalf("register: %v", err)
	}
	cctx, cancel := context.WithCancel(ctx)
	errc := make(chan error, 1)
	go func() {
		_, _, err := coord.Check(cctx, core.Proof{})
		errc <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("cancelled check succeeded")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("cancelled check hung")
	}
}
