package remote

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"lcp/internal/bitstr"
	"lcp/internal/core"
	"lcp/internal/dist"
	"lcp/internal/graph"
	"lcp/internal/textio"
	"lcp/internal/transport"
)

const (
	// helloTimeout bounds the handshake frame on every accepted
	// connection: a dialer that never says hello cannot park a socket
	// forever.
	helloTimeout = 10 * time.Second
	// controlWriteTimeout bounds one control-plane response write.
	controlWriteTimeout = 30 * time.Second
	// dataConnTTL bounds how long an accepted data connection waits to
	// be claimed by its check before the worker reaps it — the check
	// it belongs to either never started or already failed.
	dataConnTTL = 2 * time.Minute
)

// Worker serves one shard of registered instances: it accepts control
// connections from coordinators (register / check / close requests) and
// data connections from peer workers (one per shard pair per check),
// and runs the transport-backed shard runner for every check. One
// worker process can hold shards of many instances at once; checks on
// the same instance serialize, checks on different instances run
// concurrently.
type Worker struct {
	ln      net.Listener
	schemes map[string]core.Scheme

	mu      sync.Mutex
	insts   map[string]*workerInstance
	pending map[dataKey]chan net.Conn
	conns   map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup
}

// workerInstance is one registered shard: the halo instance, the nodes
// this worker decides, and the routing the check phase needs.
type workerInstance struct {
	mu      sync.Mutex // serializes checks on this instance
	plan    dist.ShardPlan
	scheme  core.Scheme
	me      int
	peers   []int // shards sharing a cut edge with this one, ascending
	workers []string
	timeout time.Duration
}

// dataKey routes an accepted data connection to the check it belongs
// to.
type dataKey struct {
	instance string
	seq      uint64
	src      int
}

// NewWorker wraps a listener as a worker speaking the given scheme
// registry. The registry is a parameter — not pulled from the public
// façade — so the worker can be embedded in tests with toy schemes and
// the package stays import-cycle-free.
func NewWorker(ln net.Listener, schemes map[string]core.Scheme) *Worker {
	return &Worker{
		ln:      ln,
		schemes: schemes,
		insts:   make(map[string]*workerInstance),
		pending: make(map[dataKey]chan net.Conn),
		conns:   make(map[net.Conn]struct{}),
	}
}

// Addr is the listener's address, for handing to coordinators.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// Serve accepts and dispatches connections until the context is
// cancelled or the worker is closed. It returns nil on a deliberate
// Close, the context's error on cancellation, and the accept error
// otherwise.
func (w *Worker) Serve(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() { _ = w.Close() })
	defer stop()
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			w.wg.Wait()
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			w.mu.Lock()
			closed := w.closed
			w.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			w.handleConn(ctx, conn)
		}()
	}
}

// Close stops the worker like a process death: the listener closes
// (unblocking Serve), every tracked connection — control, in-flight
// data, parked data — is severed, so peers mid-round fail their reads
// immediately instead of draining a deadline. This is exactly the
// "kill a worker mid-round" failure the fault tests exercise.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	pending := w.pending
	w.pending = make(map[dataKey]chan net.Conn)
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	err := w.ln.Close()
	for _, c := range conns {
		_ = c.Close() // severing a live session; peers see the reset
	}
	for _, ch := range pending {
		select {
		case conn := <-ch:
			_ = conn.Close() // reaping a parked socket; nobody reads the result
		default:
		}
	}
	return err
}

// track registers a live connection for teardown at Close; it reports
// false (and closes the connection) when the worker is already closed.
func (w *Worker) track(conn net.Conn) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		_ = conn.Close() // racing Close: behave as if accepted after death
		return false
	}
	w.conns[conn] = struct{}{}
	return true
}

// untrack forgets a connection whose lifecycle ended on its own.
func (w *Worker) untrack(conn net.Conn) {
	w.mu.Lock()
	delete(w.conns, conn)
	w.mu.Unlock()
}

// release untracks and closes a connection in one step.
func (w *Worker) release(conn net.Conn) {
	w.untrack(conn)
	_ = conn.Close() // the caller is done with it either way
}

// handleConn routes one accepted connection by its hello frame.
func (w *Worker) handleConn(ctx context.Context, conn net.Conn) {
	if !w.track(conn) {
		return
	}
	h, err := transport.ReadHello(conn, helloTimeout)
	if err != nil {
		w.release(conn) // handshake never completed; nothing to report it on
		return
	}
	switch h.Role {
	case transport.RoleControl:
		w.serveControl(ctx, conn)
		w.untrack(conn)
	case transport.RoleData:
		w.parkData(h, conn)
	default:
		w.release(conn) // unknown role: drop, same as a bad handshake
	}
}

// parkData stashes a peer's data connection until the local check
// claims it, bounded by dataConnTTL.
func (w *Worker) parkData(h transport.Hello, conn net.Conn) {
	key := dataKey{instance: h.Instance, seq: h.Seq, src: h.Src}
	ch := w.pendingChan(key)
	if ch == nil {
		w.release(conn) // worker closed; dialer sees the reset
		return
	}
	select {
	case ch <- conn:
	default:
		w.release(conn) // duplicate handshake for the same edge; keep the first
		return
	}
	time.AfterFunc(dataConnTTL, func() { w.expireData(key) })
}

// pendingChan returns the parking channel for key, creating it if
// needed; nil after Close.
func (w *Worker) pendingChan(key dataKey) chan net.Conn {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	ch, ok := w.pending[key]
	if !ok {
		ch = make(chan net.Conn, 1)
		w.pending[key] = ch
	}
	return ch
}

// expireData reaps a parked data connection nobody claimed in time.
func (w *Worker) expireData(key dataKey) {
	w.mu.Lock()
	ch, ok := w.pending[key]
	if ok {
		delete(w.pending, key)
	}
	w.mu.Unlock()
	if !ok {
		return
	}
	select {
	case conn := <-ch:
		w.release(conn) // reaping an expired socket; the check it served is long gone
	default:
	}
}

// claimData waits for the peer's data connection for the given check,
// bounded by the timeout and the context.
func (w *Worker) claimData(ctx context.Context, key dataKey, timeout time.Duration) (net.Conn, error) {
	ch := w.pendingChan(key)
	if ch == nil {
		return nil, fmt.Errorf("remote: worker closed")
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case conn := <-ch:
		w.mu.Lock()
		delete(w.pending, key)
		w.mu.Unlock()
		return conn, nil
	case <-timer.C:
		return nil, fmt.Errorf("remote: no data connection from shard %d within %v", key.src, timeout)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// serveControl runs one coordinator's request loop. The connection
// idles without a read deadline between requests — teardown happens by
// closing it, which the worker's Close and the serve context both do.
func (w *Worker) serveControl(ctx context.Context, conn net.Conn) {
	stop := context.AfterFunc(ctx, func() {
		_ = conn.Close() // teardown: unblock the idle read below
	})
	defer stop()
	defer func() {
		_ = conn.Close() // loop exit: request stream is done either way
	}()
	r := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		if err := conn.SetReadDeadline(time.Time{}); err != nil {
			return
		}
		typ, payload, _, err := transport.ReadFrame(r)
		if err != nil {
			return
		}
		if typ != transport.FrameRequest {
			return
		}
		var req Request
		if err := json.Unmarshal(payload, &req); err != nil {
			return
		}
		resp := w.dispatch(ctx, &req)
		resp.Seq = req.Seq
		if err := writeJSONFrame(conn, bw, transport.FrameResponse, resp, time.Now().Add(controlWriteTimeout)); err != nil {
			return
		}
	}
}

// dispatch executes one control request and shapes its response.
// Failures are responses, not connection teardown: the coordinator
// decides what a failed register or check means for the run.
func (w *Worker) dispatch(ctx context.Context, req *Request) *Response {
	var err error
	resp := &Response{OK: true}
	switch req.Op {
	case OpRegister:
		err = w.register(req)
	case OpCheck:
		resp.Outputs, resp.Stats, err = w.check(ctx, req)
	case OpClose:
		w.mu.Lock()
		delete(w.insts, req.Instance)
		w.mu.Unlock()
	default:
		err = fmt.Errorf("remote: unknown op %q", req.Op)
	}
	if err != nil {
		return &Response{OK: false, Error: err.Error()}
	}
	return resp
}

// register parses and installs one instance shard.
func (w *Worker) register(req *Request) error {
	scheme, ok := w.schemes[req.Scheme]
	if !ok {
		return fmt.Errorf("remote: unknown scheme %q", req.Scheme)
	}
	doc, err := textio.Parse(strings.NewReader(req.Doc))
	if err != nil {
		return fmt.Errorf("remote: bad instance doc: %w", err)
	}
	in := doc.Instance
	// Restore the full instance's nil-map conventions: this worker's
	// halo may have no labelled member, but view assembly keys the
	// label maps' presence off the instance — a nil map here would drop
	// remote labels flooded in over the wire and diverge from
	// core.Check.
	if req.HasNodeLabels && in.NodeLabel == nil {
		in.NodeLabel = map[int]string{}
	}
	if req.HasEdgeLabels && in.EdgeLabel == nil {
		in.EdgeLabel = map[graph.Edge]string{}
	}
	if req.HasWeights && in.Weights == nil {
		in.Weights = map[graph.Edge]int64{}
	}
	peerSet := map[int]bool{}
	for _, id := range req.Owned {
		if !in.G.Has(id) {
			return fmt.Errorf("remote: owned node %d absent from shipped halo", id)
		}
		for _, nb := range in.G.UndirectedNeighbors(id) {
			owner, ok := req.Assign[nb]
			if !ok {
				return fmt.Errorf("remote: neighbor %d of owned node %d has no shard assignment", nb, id)
			}
			if owner != req.Me {
				peerSet[owner] = true
			}
		}
	}
	peers := make([]int, 0, len(peerSet))
	for p := range peerSet {
		if p < 0 || p >= len(req.Workers) {
			return fmt.Errorf("remote: assignment names shard %d but only %d workers", p, len(req.Workers))
		}
		peers = append(peers, p)
	}
	sort.Ints(peers)
	timeout := time.Duration(req.RoundTimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = transport.DefaultRoundTimeout
	}
	inst := &workerInstance{
		plan:    dist.ShardPlan{In: in, Owned: req.Owned, Assign: req.Assign},
		scheme:  scheme,
		me:      req.Me,
		peers:   peers,
		workers: req.Workers,
		timeout: timeout,
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("remote: worker closed")
	}
	w.insts[req.Instance] = inst
	return nil
}

// check runs one proof over a registered shard: establish the data
// edges for this sequence (dial lower peers, claim connections accepted
// from higher ones), run the shard, report verdicts and traffic.
func (w *Worker) check(ctx context.Context, req *Request) (map[int]bool, transport.Stats, error) {
	w.mu.Lock()
	inst := w.insts[req.Instance]
	w.mu.Unlock()
	if inst == nil {
		return nil, transport.Stats{}, fmt.Errorf("remote: instance %q not registered", req.Instance)
	}
	proof, err := parseProof(req.Proof)
	if err != nil {
		return nil, transport.Stats{}, err
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	conns := make(map[int]net.Conn, len(inst.peers))
	releaseAll := func() {
		for _, c := range conns {
			w.release(c) // unwinding a failed or finished session
		}
	}
	for _, p := range inst.peers {
		var conn net.Conn
		var err error
		if p < inst.me {
			conn, err = transport.DialData(ctx, inst.workers[p], transport.Hello{
				Instance: req.Instance, Seq: req.Seq, Src: inst.me,
			}, inst.timeout)
			if err == nil && !w.track(conn) {
				err = fmt.Errorf("worker closed")
			}
		} else {
			conn, err = w.claimData(ctx, dataKey{instance: req.Instance, seq: req.Seq, src: p}, inst.timeout)
		}
		if err != nil {
			releaseAll()
			return nil, transport.Stats{}, fmt.Errorf("remote: shard %d <-> %d: %w", inst.me, p, err)
		}
		conns[p] = conn
	}
	tr := transport.NewTCP(inst.me, req.Seq, conns, inst.timeout)
	defer releaseAll() // session conns are per-check; stats were read before
	outputs, err := dist.RunShard(ctx, inst.plan, tr, proof, inst.scheme.Verifier())
	stats := tr.Stats()
	if err != nil {
		return nil, stats, err
	}
	return outputs, stats, nil
}

// parseProof decodes the request's textual proof map. Entry presence is
// preserved exactly — an explicit empty string is the ε proof, a
// missing entry is no proof — matching core.Proof's conventions.
func parseProof(m map[int]string) (core.Proof, error) {
	p := make(core.Proof, len(m))
	for id, s := range m {
		var bw bitstr.Writer
		for _, r := range s {
			switch r {
			case '0':
				bw.WriteBit(false)
			case '1':
				bw.WriteBit(true)
			default:
				return nil, fmt.Errorf("remote: proof for node %d: invalid bit %q", id, r)
			}
		}
		p[id] = bw.String()
	}
	return p, nil
}
