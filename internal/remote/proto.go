// Package remote implements the multi-process scale-out of the
// verification stack: worker processes each owning one shard of a
// partitioned instance, and a coordinator that registers instances on
// every worker, fans each check out, and merges the per-shard verdicts.
//
// The control plane is JSON request/response frames over one TCP
// connection per coordinator/worker pair (length-prefixed framing from
// internal/transport, which also supplies the binary data plane the
// workers speak among themselves — see transport/wire.go for the frame
// layout). A check proceeds as:
//
//	coordinator                worker i                 worker j
//	  |-- register(halo_i) ---->|                          |
//	  |-- register(halo_j) ---------------------------->   |
//	  |-- check(seq, proof_i) ->|                          |
//	  |-- check(seq, proof_j) ----------------------->     |
//	  |                        |<== data conns (seq) ==>   |
//	  |                        |   flood radius rounds     |
//	  |<-- verdicts_i ---------|                           |
//	  |<-- verdicts_j --------------------------------     |
//	  merge; every node decided exactly once
//
// Failure is bounded everywhere: every request, handshake, and flood
// round runs under a deadline, a worker death surfaces as a transport
// error within it, and a failed check poisons nothing durable — the
// next check opens fresh data connections under a fresh sequence
// number.
package remote

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"lcp/internal/transport"
)

// Request operations.
const (
	// OpRegister installs an instance shard on a worker.
	OpRegister = "register"
	// OpCheck runs one proof over a registered instance shard.
	OpCheck = "check"
	// OpClose forgets a registered instance shard.
	OpClose = "close"
)

// Request is one control-plane request from coordinator to worker.
type Request struct {
	// Op selects the operation (OpRegister, OpCheck, OpClose).
	Op string `json:"op"`
	// Seq numbers the request; the response echoes it, and data-plane
	// frames of a check carry it so traffic of an abandoned check can
	// never be mistaken for the current one.
	Seq uint64 `json:"seq"`
	// Instance names the registered instance the request addresses.
	Instance string `json:"instance"`

	// Scheme names the verification scheme (register). The worker
	// resolves it in its own registry — code does not travel.
	Scheme string `json:"scheme,omitempty"`
	// Doc is the textio-serialized radius-1 halo instance (register).
	Doc string `json:"doc,omitempty"`
	// Me is the shard index this worker owns (register).
	Me int `json:"me,omitempty"`
	// Workers lists every worker's data address, indexed by shard
	// (register).
	Workers []string `json:"workers,omitempty"`
	// Owned lists the node ids this worker decides (register).
	Owned []int `json:"owned,omitempty"`
	// Assign maps node id -> owning shard for every halo node
	// (register).
	Assign map[int]int `json:"assign,omitempty"`
	// HasNodeLabels, HasEdgeLabels, and HasWeights ship the full
	// instance's nil-map conventions (register): a halo that happens to
	// contain no labelled member must still assemble views with the
	// labelling maps present, or flooded remote labels would be
	// dropped and verdicts diverge from core.Check.
	HasNodeLabels bool `json:"has_node_labels,omitempty"`
	// HasEdgeLabels: see HasNodeLabels.
	HasEdgeLabels bool `json:"has_edge_labels,omitempty"`
	// HasWeights: see HasNodeLabels.
	HasWeights bool `json:"has_weights,omitempty"`
	// RoundTimeoutMS bounds each flood round's network wait (register).
	RoundTimeoutMS int64 `json:"round_timeout_ms,omitempty"`

	// Proof carries the proof bits of this worker's owned nodes, as
	// "0101" strings (check). Remote nodes' proofs ride the data plane
	// inside their records.
	Proof map[int]string `json:"proof,omitempty"`
}

// Response is one control-plane response from worker to coordinator.
type Response struct {
	// OK reports success; on false, Error says why.
	OK bool `json:"ok"`
	// Seq echoes the request's sequence number.
	Seq uint64 `json:"seq"`
	// Error is the failure description when OK is false.
	Error string `json:"error,omitempty"`
	// Outputs is the per-owned-node verdict map (check).
	Outputs map[int]bool `json:"outputs,omitempty"`
	// Stats reports the shard's data-plane traffic for the check.
	Stats transport.Stats `json:"stats,omitempty"`
}

// writeJSONFrame marshals v into one frame of the given type under a
// write deadline.
func writeJSONFrame(conn net.Conn, w *bufio.Writer, typ byte, v any, deadline time.Time) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if err := conn.SetWriteDeadline(deadline); err != nil {
		return err
	}
	if _, err := transport.WriteFrame(w, typ, payload); err != nil {
		return err
	}
	return w.Flush()
}

// readJSONFrame reads one frame under a read deadline and unmarshals
// it into v, insisting on the expected frame type.
func readJSONFrame(conn net.Conn, r *bufio.Reader, wantTyp byte, v any, deadline time.Time) error {
	if err := conn.SetReadDeadline(deadline); err != nil {
		return err
	}
	typ, payload, _, err := transport.ReadFrame(r)
	if err != nil {
		return err
	}
	if typ != wantTyp {
		return fmt.Errorf("remote: unexpected frame type %d, want %d", typ, wantTyp)
	}
	return json.Unmarshal(payload, v)
}
