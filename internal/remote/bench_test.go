package remote_test

// Wire-cost benchmark behind BENCH_transport.json: the dist-tcp
// coordinator fanning a bipartiteness check out to a 4-worker loopback
// fleet on a scrambled Grid(32,32), once per partitioner. The
// partitioner is the experiment: Contiguous on scrambled IDs cuts
// almost every edge (the halos ship nearly the whole instance and every
// round floods the full frontier across shards), while BFSChunks
// recovers the grid's locality, so the same check moves a fraction of
// the bytes. The custom columns — wire_bytes/op for the cut cost and
// rounds/s for protocol throughput — come from the transport.Stats the
// coordinator aggregates, not from host-side proxies.

import (
	"context"
	"fmt"
	"testing"

	"lcp"
	"lcp/internal/core"
	"lcp/internal/graph"
	"lcp/internal/partition"
	"lcp/internal/remote"
	"lcp/internal/transport"
)

func BenchmarkTCPFanout(b *testing.B) {
	g := graph.RandomPermutationIDs(graph.Grid(32, 32), 1)
	in := lcp.NewInstance(g)
	scheme := lcp.BipartiteScheme()
	p, err := scheme.Prove(in)
	if err != nil {
		b.Fatal(err)
	}
	want := core.Check(in, p, scheme.Verifier()).Accepted()

	for _, pt := range []partition.Partitioner{partition.Contiguous{}, partition.BFSChunks{}} {
		pt := pt
		b.Run(pt.Name(), func(b *testing.B) {
			addrs, _ := startFleet(b, 4, catalogSchemes())
			ctx := context.Background()
			coord, err := remote.DialCoordinator(ctx, fmt.Sprintf("bench-%s", pt.Name()), addrs, remote.Options{Partitioner: pt})
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = coord.Close() }()
			if err := coord.Register(ctx, in, scheme.Name()); err != nil {
				b.Fatal(err)
			}

			var total transport.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, stats, err := coord.Check(ctx, p)
				if err != nil {
					b.Fatal(err)
				}
				if res.Accepted() != want {
					b.Fatalf("accepted=%v, reference says %v", res.Accepted(), want)
				}
				total.Add(stats)
			}
			b.StopTimer()
			wire := total.BytesIn + total.BytesOut
			b.ReportMetric(float64(wire)/float64(b.N), "wire_bytes/op")
			b.ReportMetric(float64(total.FramesOut)/float64(b.N), "frames/op")
			b.ReportMetric(float64(total.Rounds)/b.Elapsed().Seconds(), "rounds/s")
		})
	}
}
