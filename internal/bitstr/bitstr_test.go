package bitstr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyString(t *testing.T) {
	var s String
	if s.Len() != 0 {
		t.Errorf("zero String has Len %d, want 0", s.Len())
	}
	if !s.IsEmpty() {
		t.Error("zero String is not IsEmpty")
	}
	if !s.Equal(Empty) {
		t.Error("zero String != Empty")
	}
	if s.String() != "" {
		t.Errorf("zero String renders %q, want empty", s.String())
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{"", "0", "1", "01", "10", "0110", "11111111", "101010101", "0000000000000001"}
	for _, c := range cases {
		s := Parse(c)
		if got := s.String(); got != c {
			t.Errorf("Parse(%q).String() = %q", c, got)
		}
		if s.Len() != len(c) {
			t.Errorf("Parse(%q).Len() = %d, want %d", c, s.Len(), len(c))
		}
	}
}

func TestParseIgnoresSpaces(t *testing.T) {
	if got := Parse("10 01 1").String(); got != "10011" {
		t.Errorf("got %q, want 10011", got)
	}
}

func TestParsePanicsOnGarbage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Parse(\"012\") did not panic")
		}
	}()
	Parse("012")
}

func TestFromUint(t *testing.T) {
	cases := []struct {
		v     uint64
		width int
		want  string
	}{
		{0, 1, "0"},
		{1, 1, "1"},
		{5, 3, "101"},
		{5, 8, "00000101"},
		{255, 8, "11111111"},
		{0, 0, ""},
	}
	for _, c := range cases {
		if got := FromUint(c.v, c.width).String(); got != c.want {
			t.Errorf("FromUint(%d,%d) = %q, want %q", c.v, c.width, got, c.want)
		}
	}
}

func TestWriteUintOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WriteUint(4, 2) did not panic")
		}
	}()
	var w Writer
	w.WriteUint(4, 2)
}

func TestWriteReadRoundTrip(t *testing.T) {
	var w Writer
	w.WriteBit(true)
	w.WriteUint(42, 7)
	w.WriteBit(false)
	w.WriteUint(7, 3)
	s := w.String()
	if s.Len() != 12 {
		t.Fatalf("Len = %d, want 12", s.Len())
	}
	r := NewReader(s)
	if !r.ReadBit() {
		t.Error("first bit: got false")
	}
	if v := r.ReadUint(7); v != 42 {
		t.Errorf("ReadUint(7) = %d, want 42", v)
	}
	if r.ReadBit() {
		t.Error("ninth bit: got true")
	}
	if v := r.ReadUint(3); v != 7 {
		t.Errorf("ReadUint(3) = %d, want 7", v)
	}
	if !r.AtEnd() {
		t.Error("reader not AtEnd after exact read")
	}
}

func TestReaderUnderflow(t *testing.T) {
	r := NewReader(Parse("10"))
	r.ReadUint(3)
	if !r.Err() {
		t.Error("underflow did not set Err")
	}
	if r.AtEnd() {
		t.Error("AtEnd true after underflow")
	}
	// Reads after underflow stay harmless.
	if r.ReadBit() {
		t.Error("ReadBit after underflow returned true")
	}
}

func TestConcat(t *testing.T) {
	a, b := Parse("101"), Parse("0011")
	if got := a.Concat(b).String(); got != "1010011" {
		t.Errorf("Concat = %q", got)
	}
	if got := Empty.Concat(b); !got.Equal(b) {
		t.Errorf("ε·b = %q", got.String())
	}
	if got := a.Concat(Empty); !got.Equal(a) {
		t.Errorf("a·ε = %q", got.String())
	}
}

func TestTruncate(t *testing.T) {
	s := Parse("110101")
	cases := []struct {
		n    int
		want string
	}{
		{0, ""}, {-1, ""}, {1, "1"}, {3, "110"}, {6, "110101"}, {100, "110101"},
	}
	for _, c := range cases {
		if got := s.Truncate(c.n).String(); got != c.want {
			t.Errorf("Truncate(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestKeyDistinguishesLengths(t *testing.T) {
	// "0" and "00" pack into identical bytes; Key must still differ.
	a, b := Parse("0"), Parse("00")
	if a.Key() == b.Key() {
		t.Error("Key collision between \"0\" and \"00\"")
	}
	if !Parse("0110").Equal(Parse("0110")) {
		t.Error("Equal failed on identical strings")
	}
	if Parse("0110").Key() != Parse("0110").Key() {
		t.Error("Key differs on identical strings")
	}
}

func TestEqualDifferentLengths(t *testing.T) {
	if Parse("01").Equal(Parse("010")) {
		t.Error("prefix reported Equal")
	}
}

func TestUintWidth(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {255, 8}, {256, 9}}
	for _, c := range cases {
		if got := UintWidth(c.v); got != c.want {
			t.Errorf("UintWidth(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	if WidthFor(0) != 1 {
		t.Errorf("WidthFor(0) = %d, want 1", WidthFor(0))
	}
	if WidthFor(5) != 3 {
		t.Errorf("WidthFor(5) = %d, want 3", WidthFor(5))
	}
}

// Property: writing any uint at its natural width and reading it back is
// the identity.
func TestQuickUintRoundTrip(t *testing.T) {
	f := func(v uint64, extra uint8) bool {
		width := UintWidth(v) + int(extra%8)
		if width > 64 {
			width = 64
		}
		if width == 0 {
			width = 1
		}
		if v>>uint(width) != 0 && width < 64 {
			v &= 1<<uint(width) - 1
		}
		s := FromUint(v, width)
		r := NewReader(s)
		return r.ReadUint(width) == v && r.AtEnd()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FromBits round-trips through Bit().
func TestQuickBitsRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		s := FromBits(raw)
		if s.Len() != len(raw) {
			return false
		}
		for i, b := range raw {
			if s.Bit(i) != (b != 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Concat length adds up and bits are preserved in order.
func TestQuickConcat(t *testing.T) {
	f := func(a, b []byte) bool {
		sa, sb := FromBits(a), FromBits(b)
		c := sa.Concat(sb)
		if c.Len() != sa.Len()+sb.Len() {
			return false
		}
		for i := 0; i < sa.Len(); i++ {
			if c.Bit(i) != sa.Bit(i) {
				return false
			}
		}
		for i := 0; i < sb.Len(); i++ {
			if c.Bit(sa.Len()+i) != sb.Bit(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Key is injective over distinct random strings (no collisions
// in a sample) and Equal agrees with Key equality.
func TestQuickKeyEqualAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		na, nb := rng.Intn(20), rng.Intn(20)
		var wa, wb Writer
		for j := 0; j < na; j++ {
			wa.WriteBit(rng.Intn(2) == 1)
		}
		for j := 0; j < nb; j++ {
			wb.WriteBit(rng.Intn(2) == 1)
		}
		a, b := wa.String(), wb.String()
		if a.Equal(b) != (a.Key() == b.Key()) {
			t.Fatalf("Equal/Key disagree on %q vs %q", a, b)
		}
	}
}

func BenchmarkWriterUint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var w Writer
		for j := 0; j < 64; j++ {
			w.WriteUint(uint64(j), 10)
		}
		_ = w.String()
	}
}
