// Package bitstr implements bit-exact binary strings.
//
// Locally checkable proofs assign a binary string to every node, and the
// size of a proof is measured in bits per node (Göös & Suomela, PODC 2011,
// §2.1). This package provides the proof alphabet: an immutable String
// value type whose length is counted in bits, plus MSB-first Writer and
// Reader types for composing structured proof labels out of fixed-width
// integers, variable-width integers and booleans.
package bitstr

import (
	"fmt"
	"strings"
)

// String is an immutable sequence of bits. The zero value is the empty
// string ε (the "empty proof" of size 0 in the paper).
type String struct {
	data []byte // MSB-first packed bits; len(data) == ceil(n/8)
	n    int    // number of valid bits
}

// Empty is the empty bit string ε.
var Empty = String{}

// FromBits builds a String from a slice of 0/1 values, most significant
// first. Any nonzero byte counts as a 1 bit.
func FromBits(bits []byte) String {
	var w Writer
	for _, b := range bits {
		w.WriteBit(b != 0)
	}
	return w.String()
}

// FromBools builds a String from booleans, most significant first.
func FromBools(bits ...bool) String {
	var w Writer
	for _, b := range bits {
		w.WriteBit(b)
	}
	return w.String()
}

// FromUint builds a width-bit String holding v in MSB-first binary.
func FromUint(v uint64, width int) String {
	var w Writer
	w.WriteUint(v, width)
	return w.String()
}

// Parse builds a String from a textual description such as "0110". Spaces
// are ignored. It panics on any other rune; it is intended for tests.
func Parse(s string) String {
	var w Writer
	for _, r := range s {
		switch r {
		case '0':
			w.WriteBit(false)
		case '1':
			w.WriteBit(true)
		case ' ':
		default:
			panic(fmt.Sprintf("bitstr.Parse: invalid rune %q", r))
		}
	}
	return w.String()
}

// Len returns the number of bits in s.
func (s String) Len() int { return s.n }

// IsEmpty reports whether s is the empty string ε.
func (s String) IsEmpty() bool { return s.n == 0 }

// Bit returns the i-th bit (0-indexed from the most significant end).
func (s String) Bit(i int) bool {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitstr: Bit(%d) out of range [0,%d)", i, s.n))
	}
	return s.data[i>>3]&(1<<(7-uint(i&7))) != 0
}

// Equal reports whether s and t contain the same bits.
func (s String) Equal(t String) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.data {
		if s.data[i] != t.data[i] {
			return false
		}
	}
	return true
}

// String renders the bits as a "0"/"1" text string.
func (s String) String() string {
	var b strings.Builder
	b.Grow(s.n)
	for i := 0; i < s.n; i++ {
		if s.Bit(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Concat returns the concatenation s·t.
func (s String) Concat(t String) String {
	var w Writer
	w.WriteBitString(s)
	w.WriteBitString(t)
	return w.String()
}

// Truncate returns the prefix of s with at most n bits. Truncation is used
// by the lower-bound adversaries to model schemes whose proofs are too
// small.
func (s String) Truncate(n int) String {
	if n >= s.n {
		return s
	}
	if n <= 0 {
		return Empty
	}
	var w Writer
	for i := 0; i < n; i++ {
		w.WriteBit(s.Bit(i))
	}
	return w.String()
}

// Key returns a comparable representation of s, usable as a map key. Two
// strings have equal keys iff they are Equal.
func (s String) Key() string {
	return fmt.Sprintf("%d:%x", s.n, s.data)
}

// Writer builds a String bit by bit. The zero value is ready to use.
type Writer struct {
	data []byte
	n    int
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b bool) {
	if w.n&7 == 0 {
		w.data = append(w.data, 0)
	}
	if b {
		w.data[w.n>>3] |= 1 << (7 - uint(w.n&7))
	}
	w.n++
}

// WriteUint appends v as exactly width bits, most significant first. It
// panics if v does not fit in width bits; proofs must be exact about their
// advertised size.
func (w *Writer) WriteUint(v uint64, width int) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitstr: invalid width %d", width))
	}
	if width < 64 && v>>uint(width) != 0 {
		panic(fmt.Sprintf("bitstr: value %d does not fit in %d bits", v, width))
	}
	for i := width - 1; i >= 0; i-- {
		w.WriteBit(v>>uint(i)&1 == 1)
	}
}

// WriteBitString appends all bits of s.
func (w *Writer) WriteBitString(s String) {
	for i := 0; i < s.n; i++ {
		w.WriteBit(s.Bit(i))
	}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.n }

// String returns the accumulated bits. The Writer may keep being used; the
// returned String is an independent snapshot.
func (w *Writer) String() String {
	data := make([]byte, len(w.data))
	copy(data, w.data)
	return String{data: data, n: w.n}
}

// Reader consumes a String from the most significant end. Reads past the
// end set Err rather than panicking: verifiers must treat malformed
// (adversarial) proofs as invalid, not crash on them.
type Reader struct {
	s   String
	pos int
	err bool
}

// NewReader returns a Reader over s.
func NewReader(s String) *Reader {
	return &Reader{s: s}
}

// ReadBit reads one bit. On underflow it returns false and sets Err.
func (r *Reader) ReadBit() bool {
	if r.pos >= r.s.n {
		r.err = true
		return false
	}
	b := r.s.Bit(r.pos)
	r.pos++
	return b
}

// ReadUint reads a width-bit unsigned integer (MSB first). On underflow it
// returns 0 and sets Err.
func (r *Reader) ReadUint(width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		v <<= 1
		if r.ReadBit() {
			v |= 1
		}
	}
	if r.err {
		return 0
	}
	return v
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.s.n - r.pos }

// Err reports whether any read ran past the end of the string.
func (r *Reader) Err() bool { return r.err }

// AtEnd reports whether the reader consumed the string exactly, with no
// underflow. Verifiers use it to reject proofs with trailing garbage when
// the encoding is meant to be exact.
func (r *Reader) AtEnd() bool { return !r.err && r.pos == r.s.n }

// UintWidth returns the number of bits needed to store v: 0 for v == 0,
// otherwise ⌈log₂(v+1)⌉.
func UintWidth(v uint64) int {
	w := 0
	for v != 0 {
		w++
		v >>= 1
	}
	return w
}

// WidthFor returns the fixed width needed to address values 0..max,
// i.e. UintWidth(max), but at least 1 so that a field is always present.
func WidthFor(max uint64) int {
	if w := UintWidth(max); w > 0 {
		return w
	}
	return 1
}
