package textio_test

// Native fuzz target for the wire format: Parse must never panic on
// arbitrary input (it fronts POST /instances, so "crash" means a remote
// DoS), and printing must be a fixed point — Parse(Write(doc)) yields a
// document that Writes to the same bytes, which is what makes the
// canonical form canonical. The seed corpus under
// testdata/fuzz/FuzzTextioRoundTrip covers every directive and the
// historical panic (edge endpoints fed straight to graph.Builder).

import (
	"bytes"
	"strings"
	"testing"

	"lcp/internal/textio"
)

func FuzzTextioRoundTrip(f *testing.F) {
	f.Add("node 1\n")
	f.Add("graph undirected\nedge 1 2\nedge 2 3 mark\nproof 1 0110\n")
	f.Add("graph directed\nnode 4 label=leader\nedge 4 5 weight=-3\nglobal n 5\nscheme bipartite\nproof 5\n")
	f.Add("# comment\n\nedge 1 2 weight=7\nproof 2 1\nproof 2 0\n")
	f.Add("edge 1 1\n")
	f.Add("edge 0 2\nedge -1 2\n")
	f.Fuzz(func(t *testing.T, input string) {
		doc, err := textio.Parse(strings.NewReader(input))
		if err != nil {
			// Invalid input is fine; crashing on it is what this target
			// exists to rule out.
			return
		}
		var first bytes.Buffer
		if err := textio.Write(&first, doc); err != nil {
			t.Fatalf("Write of parsed document: %v", err)
		}
		doc2, err := textio.Parse(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("reparse of canonical form: %v\ninput: %q\ncanonical: %q", err, input, first.String())
		}
		var second bytes.Buffer
		if err := textio.Write(&second, doc2); err != nil {
			t.Fatalf("Write of reparsed document: %v", err)
		}
		if first.String() != second.String() {
			t.Fatalf("canonical form is not a fixed point\ninput: %q\nfirst:  %q\nsecond: %q", input, first.String(), second.String())
		}
		// The round trip must preserve the semantic content, not just
		// restabilize: same graph shape, scheme, and proof entries.
		if doc2.Instance.G.N() != doc.Instance.G.N() || doc2.Instance.G.M() != doc.Instance.G.M() {
			t.Fatalf("round trip changed the graph: %d/%d nodes, %d/%d edges",
				doc.Instance.G.N(), doc2.Instance.G.N(), doc.Instance.G.M(), doc2.Instance.G.M())
		}
		if doc2.SchemeName != doc.SchemeName {
			t.Fatalf("round trip changed the scheme: %q vs %q", doc.SchemeName, doc2.SchemeName)
		}
		if len(doc2.Proof) != len(doc.Proof) {
			t.Fatalf("round trip changed the proof: %d vs %d entries", len(doc.Proof), len(doc2.Proof))
		}
		for v, s := range doc.Proof {
			if got, ok := doc2.Proof[v]; !ok || !got.Equal(s) {
				t.Fatalf("round trip changed proof entry %d: %v vs %v (present=%v)", v, s, got, ok)
			}
		}
	})
}
