package textio

import (
	"bytes"
	"strings"
	"testing"

	"lcp/internal/core"
	"lcp/internal/graph"
)

const sample = `
# a bipartite instance with a 2-colouring proof
graph undirected
scheme bipartite
edge 1 2
edge 2 3
edge 3 4
edge 4 1
proof 1 0
proof 2 1
proof 3 0
proof 4 1
`

func TestParseBasics(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.SchemeName != "bipartite" {
		t.Errorf("scheme = %q", doc.SchemeName)
	}
	if doc.Instance.G.N() != 4 || doc.Instance.G.M() != 4 {
		t.Errorf("graph = %v", doc.Instance.G)
	}
	if doc.Proof[2].String() != "1" {
		t.Errorf("proof[2] = %q", doc.Proof[2])
	}
}

func TestParseRichDirectives(t *testing.T) {
	src := `
graph directed
node 9 label=s
node 5 label=t
edge 9 5 weight=7
edge 5 9 mark
global k 3
proof 9 10110
proof 5
`
	doc, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	in := doc.Instance
	if !in.G.Directed() {
		t.Error("kind lost")
	}
	if in.NodeLabel[9] != core.LabelS || in.NodeLabel[5] != core.LabelT {
		t.Errorf("labels = %v", in.NodeLabel)
	}
	if in.Weights[graph.Edge{U: 5, V: 9}] != 7 {
		t.Errorf("weights = %v", in.Weights)
	}
	if in.Global["k"] != 3 {
		t.Errorf("global = %v", in.Global)
	}
	if doc.Proof[9].Len() != 5 || doc.Proof[5].Len() != 0 {
		t.Errorf("proofs wrong: %v", doc.Proof)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"graph sideways",
		"node zero",
		"node 0",
		"edge 1",
		"edge 1 2 sparkle",
		"global k",
		"global k x",
		"proof 3 012",
		"wibble 1 2",
		"graph undirected\ngraph directed",
		"proof 7 01", // node 7 never declared
	}
	for _, src := range bad {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, doc); err != nil {
		t.Fatal(err)
	}
	doc2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if !graph.Equal(doc.Instance.G, doc2.Instance.G) {
		t.Error("graph changed in round trip")
	}
	for v, p := range doc.Proof {
		if !doc2.Proof[v].Equal(p) {
			t.Errorf("proof of %d changed", v)
		}
	}
	if doc2.SchemeName != doc.SchemeName {
		t.Error("scheme name lost")
	}
}

func TestRoundTripWeightsAndMarks(t *testing.T) {
	in := core.NewInstance(graph.CompleteBipartite(2, 2)).MarkEdge(1, 3)
	in.Weights = map[graph.Edge]int64{graph.NormEdge(1, 3): 9}
	in.Global = core.Global{"W": 9}
	doc := &Document{Instance: in, Proof: core.Proof{}, SchemeName: "max-weight-matching"}
	var buf bytes.Buffer
	if err := Write(&buf, doc); err != nil {
		t.Fatal(err)
	}
	doc2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if doc2.Instance.EdgeLabel[graph.NormEdge(1, 3)] != core.EdgeInSolution {
		t.Error("mark lost")
	}
	if doc2.Instance.Weights[graph.NormEdge(1, 3)] != 9 {
		t.Error("weight lost")
	}
	if doc2.Instance.Global["W"] != 9 {
		t.Error("global lost")
	}
}

func TestEndToEndVerifyFromText(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	// The sample's proof is a proper 2-colouring of C4.
	res := core.Check(doc.Instance, doc.Proof, bipartiteVerifier())
	if !res.Accepted() {
		t.Errorf("sample rejected: %s", res)
	}
	// Flip one bit in the text and watch it fail.
	broken := strings.Replace(sample, "proof 2 1", "proof 2 0", 1)
	doc2, err := Parse(strings.NewReader(broken))
	if err != nil {
		t.Fatal(err)
	}
	if core.Check(doc2.Instance, doc2.Proof, bipartiteVerifier()).Accepted() {
		t.Error("broken colouring accepted")
	}
}

// bipartiteVerifier is a local copy to avoid importing schemes (which
// would be fine, but keeps this package's dependencies minimal).
func bipartiteVerifier() core.Verifier {
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		my := w.ProofOf(w.Center)
		if my.Len() != 1 {
			return false
		}
		for _, u := range w.Neighbors(w.Center) {
			p := w.ProofOf(u)
			if p.Len() != 1 || p.Bit(0) == my.Bit(0) {
				return false
			}
		}
		return true
	}}
}
