// Package ports implements the §7.1 model translation of Göös & Suomela
// (PODC 2011): the class LogLCP is the same whether the network has
// unique identifiers (model M1) or only a port numbering plus a
// distinguished leader (model M2).
//
// The M1→M2 direction is the interesting one, implemented here as a
// scheme transformer: given any M1 scheme, M2Wrap produces a scheme whose
// proof additionally carries a spanning tree rooted at the leader,
// encoded purely in terms of ports, plus DFS discovery/finishing times.
// The verifier checks that the (x(v), y(v)) intervals are locally
// consistent with a depth-first traversal — nesting and exact tiling of
// child intervals force the numbers to be globally distinct — and then
// simulates the M1 verifier on the virtual identifiers x(v)+1. No real
// node identifier is ever read: the wrapped verifier treats identifiers
// only through the port ordering, so its verdict is invariant under every
// order-preserving re-assignment of identifiers, proof included (a
// property the tests enforce, and which plain M1 schemes fail).
package ports

import (
	"fmt"
	"sort"

	"lcp/internal/bitstr"
	"lcp/internal/core"
	"lcp/internal/graph"
	"lcp/internal/graphalg"
)

// PortOf returns the port index (1-based) of neighbour u at node v: the
// rank of u among v's neighbours in ascending identifier order. This is
// the fixed port assignment our harness gives an M2 network; algorithms
// must treat it as opaque.
func PortOf(g *graph.Graph, v, u int) int {
	nbrs := g.Neighbors(v)
	i := sort.SearchInts(nbrs, u)
	if i >= len(nbrs) || nbrs[i] != u {
		panic(fmt.Sprintf("ports: %d is not a neighbour of %d", u, v))
	}
	return i + 1
}

// NeighborAtPort resolves port p (1-based) of node v.
func NeighborAtPort(g *graph.Graph, v, p int) (int, bool) {
	nbrs := g.Neighbors(v)
	if p < 1 || p > len(nbrs) {
		return 0, false
	}
	return nbrs[p-1], true
}

// m2Label is the per-node §7.1 certificate: the spanning tree in port
// form plus the DFS interval.
type m2Label struct {
	IsRoot     bool
	ParentPort uint64 // port towards the parent (when not root)
	X, Y       uint64 // DFS discovery and finishing times
	Inner      bitstr.String
}

const m2WidthField = 6

func (l m2Label) encode() bitstr.String {
	var w bitstr.Writer
	w.WriteBit(l.IsRoot)
	pw := bitstr.WidthFor(l.ParentPort)
	w.WriteUint(uint64(pw), m2WidthField)
	w.WriteUint(l.ParentPort, pw)
	tw := bitstr.WidthFor(l.Y)
	w.WriteUint(uint64(tw), m2WidthField)
	w.WriteUint(l.X, tw)
	w.WriteUint(l.Y, tw)
	w.WriteUint(uint64(l.Inner.Len()), 32)
	w.WriteBitString(l.Inner)
	return w.String()
}

func decodeM2Label(s bitstr.String) (m2Label, bool) {
	r := bitstr.NewReader(s)
	var l m2Label
	l.IsRoot = r.ReadBit()
	pw := int(r.ReadUint(m2WidthField))
	l.ParentPort = r.ReadUint(pw)
	tw := int(r.ReadUint(m2WidthField))
	l.X = r.ReadUint(tw)
	l.Y = r.ReadUint(tw)
	innerLen := int(r.ReadUint(32))
	if r.Err() || innerLen < 0 || innerLen > r.Remaining() {
		return m2Label{}, false
	}
	var iw bitstr.Writer
	for i := 0; i < innerLen; i++ {
		iw.WriteBit(r.ReadBit())
	}
	l.Inner = iw.String()
	if r.Err() || !r.AtEnd() {
		return m2Label{}, false
	}
	return l, true
}

// M2Scheme wraps an M1 scheme for the port-numbering-plus-leader model.
// Instances must label exactly one node with core.LabelLeader (the M2
// promise).
type M2Scheme struct {
	Inner core.Scheme
	// PrepareVirtual lifts the real instance's auxiliary input onto the
	// virtual identifiers for the inner prover. If nil, node labels,
	// edge labels and weights are carried over unchanged (with edge keys
	// renamed). The leader label is removed unless KeepLeader is set.
	KeepLeader bool
}

// Name implements core.Scheme.
func (m M2Scheme) Name() string { return "m2-" + m.Inner.Name() }

// Verifier implements core.Scheme.
func (m M2Scheme) Verifier() core.Verifier {
	innerV := m.Inner.Verifier()
	r := innerV.Radius()
	if r < 2 {
		r = 2 // resolving a neighbour's parent port needs its full adjacency
	}
	return core.VerifierFunc{R: r, F: func(w *core.View) bool {
		me := w.Center
		l, ok := decodeM2Label(w.ProofOf(me))
		if !ok {
			return false
		}
		// Root iff leader (the M2 promise supplies exactly one leader).
		if l.IsRoot != (w.Label(me) == core.LabelLeader) {
			return false
		}
		if l.IsRoot && l.X != 0 {
			return false
		}
		if l.Y <= l.X {
			return false
		}
		// Resolve my parent and collect my children via ports: u is my
		// child iff u's parent port points back to me. A neighbour's
		// ports are its ascending neighbour list, fully visible because
		// the view radius is ≥ 2.
		var parent int
		if !l.IsRoot {
			p, ok := NeighborAtPort(w.G, me, int(l.ParentPort))
			if !ok {
				return false
			}
			parent = p
			lp, okP := decodeM2Label(w.ProofOf(parent))
			if !okP {
				return false
			}
			// Nesting: parent's interval strictly contains mine.
			if !(lp.X < l.X && l.Y < lp.Y) {
				return false
			}
		}
		type childIv struct{ x, y uint64 }
		var children []childIv
		for _, u := range w.Neighbors(me) {
			lu, okU := decodeM2Label(w.ProofOf(u))
			if !okU {
				return false
			}
			if lu.IsRoot {
				continue
			}
			back, okB := NeighborAtPort(w.G, u, int(lu.ParentPort))
			if !okB {
				return false
			}
			if back == me {
				children = append(children, childIv{lu.X, lu.Y})
			}
		}
		sort.Slice(children, func(i, j int) bool { return children[i].x < children[j].x })
		// Tiling: children intervals partition (X, Y) exactly.
		cursor := l.X
		for _, c := range children {
			if c.x != cursor+1 {
				return false
			}
			if c.y >= l.Y {
				return false
			}
			cursor = c.y
		}
		if cursor+1 != l.Y {
			return false
		}
		// Simulate the M1 verifier on the virtual identifiers x+1.
		vw, ok := virtualView(w, innerV.Radius(), m.KeepLeader)
		if !ok {
			return false
		}
		return innerV.Verify(vw)
	}}
}

// virtualView relabels the (sub-)view with virtual identifiers x(v)+1
// drawn from the proofs, attaching the inner proof parts.
func virtualView(w *core.View, radius int, keepLeader bool) (*core.View, bool) {
	sub := w.Restrict(radius, w.BallProof())
	m := make(map[int]int, sub.G.N())
	inner := core.Proof{}
	for _, v := range sub.G.Nodes() {
		lv, ok := decodeM2Label(sub.ProofOf(v))
		if !ok {
			return nil, false
		}
		vid := int(lv.X) + 1
		m[v] = vid
		inner[vid] = lv.Inner
	}
	// Virtual ids must be locally injective; global injectivity follows
	// from the interval discipline.
	seen := map[int]bool{}
	for _, vid := range m {
		if seen[vid] {
			return nil, false
		}
		seen[vid] = true
	}
	vg := sub.G.Relabel(m)
	out := &core.View{
		Center: m[sub.Center],
		Radius: radius,
		G:      vg,
		Dist:   map[int]int{},
		Proof:  inner,
		Global: sub.Global,
	}
	for v, d := range sub.Dist {
		out.Dist[m[v]] = d
	}
	if sub.NodeLabel != nil {
		out.NodeLabel = map[int]string{}
		for v, lab := range sub.NodeLabel {
			if lab == core.LabelLeader && !keepLeader {
				continue // the leader mark is an M2 artefact
			}
			out.NodeLabel[m[v]] = lab
		}
	}
	if sub.EdgeLabel != nil || sub.Weights != nil {
		out.EdgeLabel = map[graph.Edge]string{}
		out.Weights = map[graph.Edge]int64{}
		for e, lab := range sub.EdgeLabel {
			out.EdgeLabel[graph.NormEdge(m[e.U], m[e.V])] = lab
		}
		for e, wt := range sub.Weights {
			out.Weights[graph.NormEdge(m[e.U], m[e.V])] = wt
		}
	}
	return out, true
}

// Prove implements core.Scheme: construct the DFS tree from the leader,
// derive virtual identifiers, run the inner prover on the virtual
// instance, and bundle everything in port form.
func (m M2Scheme) Prove(in *core.Instance) (core.Proof, error) {
	leaders := in.FindLabel(core.LabelLeader)
	if len(leaders) != 1 {
		return nil, fmt.Errorf("lcp: M2 requires exactly one leader, got %d", len(leaders))
	}
	if !graphalg.Connected(in.G) {
		return nil, fmt.Errorf("%w: M2 translation requires a connected graph", core.ErrNotInProperty)
	}
	root := leaders[0]
	parent, _ := graphalg.SpanningTree(in.G, root)
	disc, fin := graphalg.DFSIntervals(in.G, root, parent)

	// Virtual instance on identifiers disc+1.
	vmap := make(map[int]int, in.G.N())
	for _, v := range in.G.Nodes() {
		vmap[v] = disc[v] + 1
	}
	vin := in.Relabel(vmap)
	if !m.KeepLeader {
		delete(vin.NodeLabel, vmap[root])
	}
	innerProof, err := m.Inner.Prove(vin)
	if err != nil {
		return nil, err
	}

	proof := make(core.Proof, in.G.N())
	for _, v := range in.G.Nodes() {
		l := m2Label{
			IsRoot: v == root,
			X:      uint64(disc[v]),
			Y:      uint64(fin[v]),
			Inner:  innerProof[vmap[v]],
		}
		if v != root {
			l.ParentPort = uint64(PortOf(in.G, v, parent[v]))
		}
		proof[v] = l.encode()
	}
	return proof, nil
}

var _ core.Scheme = M2Scheme{}

// OrderPreservingRelabel returns an identifier mapping that preserves
// relative order (v ↦ a·rank + b pattern), under which the port structure
// — and therefore any genuinely port-based proof — is unchanged. Tests
// use it to certify that M2 schemes never read real identifiers.
func OrderPreservingRelabel(g *graph.Graph, stride, offset int) map[int]int {
	if stride < 1 {
		panic("ports: stride must be positive")
	}
	m := make(map[int]int, g.N())
	for i, v := range g.Nodes() {
		m[v] = offset + (i+1)*stride
	}
	return m
}
