package ports

import (
	"testing"

	"lcp/internal/core"
	"lcp/internal/graph"
	"lcp/internal/schemes"
)

func leaderOn(g *graph.Graph, leader int) *core.Instance {
	return core.NewInstance(g).SetNodeLabel(leader, core.LabelLeader)
}

func TestPortResolution(t *testing.T) {
	g := graph.Star(3) // center 1, leaves 2..4
	if PortOf(g, 1, 3) != 2 {
		t.Errorf("PortOf(1,3) = %d, want 2", PortOf(g, 1, 3))
	}
	if v, ok := NeighborAtPort(g, 1, 3); !ok || v != 4 {
		t.Errorf("NeighborAtPort(1,3) = %d,%v", v, ok)
	}
	if _, ok := NeighborAtPort(g, 1, 5); ok {
		t.Error("out-of-range port resolved")
	}
}

func TestM2WrapCompleteness(t *testing.T) {
	// Wrap the odd-n counting scheme; run on odd connected graphs.
	m2 := M2Scheme{Inner: schemes.ParityCount{WantOdd: true}}
	for _, g := range []*graph.Graph{
		graph.Cycle(9),
		graph.RandomConnected(15, 0.2, 3),
		graph.Petersen().WithEdges(nil, nil), // 10 nodes: even — used below as no-instance
	} {
		in := leaderOn(g, g.Nodes()[0])
		if g.N()%2 == 1 {
			if _, _, err := core.ProveAndCheck(in, m2); err != nil {
				t.Errorf("n=%d: %v", g.N(), err)
			}
		} else {
			if _, err := m2.Prove(in); err == nil {
				t.Errorf("n=%d: prover produced proof for even n", g.N())
			}
		}
	}
}

func TestM2WrapSoundnessRandomProofs(t *testing.T) {
	m2 := M2Scheme{Inner: schemes.ParityCount{WantOdd: true}}
	in := leaderOn(graph.Cycle(8), 1) // even: no-instance
	for seed := int64(0); seed < 5; seed++ {
		p := core.RandomProof(in, 24, seed)
		if core.Check(in, p, m2.Verifier()).Accepted() {
			t.Fatalf("random proof accepted (seed %d)", seed)
		}
	}
}

// TestM2ProofSurvivesOrderPreservingRelabel is the §7.1 point: the
// M2-wrapped proof references identifiers only through ports and virtual
// DFS numbers, so an order-preserving re-assignment of real identifiers
// leaves the SAME proof valid. The raw M1 scheme fails this (its labels
// embed real identifiers).
func TestM2ProofSurvivesOrderPreservingRelabel(t *testing.T) {
	g := graph.RandomConnected(13, 0.25, 5)
	in := leaderOn(g, g.Nodes()[2])
	m2 := M2Scheme{Inner: schemes.ParityCount{WantOdd: true}}
	proof, _, err := core.ProveAndCheck(in, m2)
	if err != nil {
		t.Fatal(err)
	}
	m := OrderPreservingRelabel(g, 7, 100)
	in2 := in.Relabel(m)
	proof2 := proof.Relabel(m)
	if !core.Check(in2, proof2, m2.Verifier()).Accepted() {
		t.Error("M2 proof invalidated by order-preserving relabel")
	}

	// Contrast: the raw M1 scheme's proof embeds identifiers and breaks.
	m1 := schemes.ParityCount{WantOdd: true}
	rawIn := core.NewInstance(g)
	rawProof, _, err := core.ProveAndCheck(rawIn, m1)
	if err != nil {
		t.Fatal(err)
	}
	if core.Check(rawIn.Relabel(m), rawProof.Relabel(m), m1.Verifier()).Accepted() {
		t.Error("M1 proof unexpectedly survived relabeling — it should embed real identifiers")
	}
}

func TestM2WrapLeaderElectionInner(t *testing.T) {
	// Wrap a problem scheme too: the inner leader-election scheme works
	// on the virtual instance when the leader label is kept.
	m2 := M2Scheme{Inner: schemes.LeaderElection{}, KeepLeader: true}
	in := leaderOn(graph.Cycle(9), 4)
	if _, _, err := core.ProveAndCheck(in, m2); err != nil {
		t.Fatal(err)
	}
}

func TestM2RequiresExactlyOneLeader(t *testing.T) {
	m2 := M2Scheme{Inner: schemes.ParityCount{WantOdd: true}}
	if _, err := m2.Prove(core.NewInstance(graph.Cycle(9))); err == nil {
		t.Error("no leader accepted")
	}
	two := leaderOn(graph.Cycle(9), 1).SetNodeLabel(5, core.LabelLeader)
	if _, err := m2.Prove(two); err == nil {
		t.Error("two leaders accepted")
	}
}

func TestM2ProofSizeLogarithmic(t *testing.T) {
	// O(log n) overhead: sizes grow additively-logarithmically in n.
	var sizes []int
	for _, n := range []int{9, 17, 33, 65} {
		in := leaderOn(graph.Cycle(n), 1)
		p, _, err := core.ProveAndCheck(in, M2Scheme{Inner: schemes.ParityCount{WantOdd: true}})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		sizes = append(sizes, p.Size())
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1]+24 {
			t.Errorf("M2 proof sizes grow superlogarithmically: %v", sizes)
		}
	}
}
