package dist_test

// Scheduler benchmarks: how the runtime's tunables (round barrier vs
// free-running α-synchronization, decision fan-out, per-port buffering)
// move the needle on different topologies. The root bench_test.go holds
// the headline three-way comparison (sequential / parallel-shared /
// message-passing); these benches explain *why* the message-passing
// numbers look the way they do.

import (
	"fmt"
	"testing"

	"lcp"
	"lcp/internal/core"
	"lcp/internal/dist"
)

func benchCheckWith(b *testing.B, in *core.Instance, opt dist.Options) {
	b.Helper()
	scheme := lcp.OddNScheme()
	proof, err := scheme.Prove(in)
	if err != nil {
		b.Fatal(err)
	}
	v := scheme.Verifier()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dist.CheckWith(in, proof, v, opt)
		if err != nil || !res.Accepted() {
			b.Fatalf("rejected: %v", err)
		}
	}
}

func BenchmarkSchedulerSynchronization(b *testing.B) {
	in := lcp.NewInstance(lcp.Cycle(255))
	for _, tc := range []struct {
		name string
		opt  dist.Options
	}{
		{"lockstep-barrier", dist.Options{}},
		{"free-running", dist.Options{FreeRunning: true}},
		{"free-running-buf8", dist.Options{FreeRunning: true, PortBuffer: 8}},
	} {
		b.Run(tc.name, func(b *testing.B) { benchCheckWith(b, in, tc.opt) })
	}
}

func BenchmarkSchedulerFanout(b *testing.B) {
	in := lcp.NewInstance(lcp.Cycle(255))
	for _, fanout := range []int{1, 2, 0 /* GOMAXPROCS */, -1 /* unbounded */} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			benchCheckWith(b, in, dist.Options{Fanout: fanout})
		})
	}
}

func BenchmarkSchedulerTopology(b *testing.B) {
	for _, tc := range []struct {
		name string
		g    *lcp.Graph
	}{
		{"cycle-255", lcp.Cycle(255)},
		{"grid-15x17", lcp.Grid(15, 17)}, // 255 nodes: odd, so odd-n proves
		{"tree-255", lcp.RandomTree(255, 7)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			benchCheckWith(b, lcp.NewInstance(tc.g), dist.Options{})
		})
	}
}

// BenchmarkSchedulerSharded is the headline scheduler comparison:
// goroutine-per-node versus the sharded layout on cycles whose node
// count dwarfs GOMAXPROCS (1023 ≥ 4·GOMAXPROCS on any machine this
// repo targets). Sharding batches the automata onto O(GOMAXPROCS)
// goroutines, delivers same-shard messages without channels, and shrinks
// the round barrier from n participants to one per shard — the ns/op gap
// to goroutine-per-node is what BENCH_dist.json tracks (acceptance bar:
// ≥1.3× at n ≥ 4·GOMAXPROCS).
func BenchmarkSchedulerSharded(b *testing.B) {
	for _, n := range []int{255, 1023} {
		in := lcp.NewInstance(lcp.Cycle(n))
		for _, tc := range []struct {
			name string
			opt  dist.Options
		}{
			{"goroutine-per-node", dist.Options{}},
			{"sharded", dist.Options{Sharded: true}},
			{"sharded-free-running", dist.Options{Sharded: true, FreeRunning: true}},
		} {
			b.Run(fmt.Sprintf("cycle-%d/%s", n, tc.name), func(b *testing.B) {
				b.ReportAllocs()
				benchCheckWith(b, in, tc.opt)
			})
		}
	}
}

// BenchmarkNetworkReuse measures what the reusable Network entry point
// amortizes: "one-shot" pays wiring plus flooding per proof (with the
// node/record pool recycling allocations across runs), "reused-network"
// wires once and only floods. The allocs/op gap is the per-run cost of
// channels and node state; BENCH_dist.json tracks both against the
// pre-pooling baseline.
func BenchmarkNetworkReuse(b *testing.B) {
	in := lcp.NewInstance(lcp.Cycle(255))
	scheme := lcp.OddNScheme()
	proof, err := scheme.Prove(in)
	if err != nil {
		b.Fatal(err)
	}
	v := scheme.Verifier()
	b.Run("one-shot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := dist.Check(in, proof, v)
			if err != nil || !res.Accepted() {
				b.Fatalf("rejected: %v", err)
			}
		}
	})
	b.Run("reused-network", func(b *testing.B) {
		nw, err := dist.NewNetwork(in, dist.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer nw.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := nw.Check(proof, v)
			if err != nil || !res.Accepted() {
				b.Fatalf("rejected: %v", err)
			}
		}
	})
}

func BenchmarkParallelViewsWorkers(b *testing.B) {
	in := lcp.NewInstance(lcp.Cycle(255))
	scheme := lcp.OddNScheme()
	proof, err := scheme.Prove(in)
	if err != nil {
		b.Fatal(err)
	}
	v := scheme.Verifier()
	for _, workers := range []int{1, 2, 4, 0 /* GOMAXPROCS */} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !dist.CheckParallelViewsWith(in, proof, v, dist.Options{Workers: workers}).Accepted() {
					b.Fatal("rejected")
				}
			}
		})
	}
}
