package dist

// The transport-backed shard runner: the sharded scheduler's four-phase
// round, executed against a transport.Transport instead of in-process
// channel ports. This is what a worker process runs for its shard of a
// partitioned instance — the same node automata, merge rules, and view
// assembly as the channel scheduler (so verdicts are identical to
// core.Check by the same argument), with the cross-shard edge behind
// the Transport interface: InProc for the single-process fan-out the
// equivalence tests pin, TCP for the multi-process coordinator.
//
// The phase structure maps onto the interface as:
//
//	phase 1 (freeze + send cur)   -> Send per cut edge, then Exchange
//	phase 2 (rewind next)         -> after Exchange returns
//	phase 3 (merge local + recv)  -> direct merges + the deliveries
//	phase 4 (swap + barrier)      -> swap cur/next, then Barrier
//
// Exchange is the delivery synchronization (all round-r traffic handed
// over) and Barrier the reuse synchronization (all round-r merges done,
// so rewinding buffers in round r+1 is safe). The in-process transport
// implements both as group gates; TCP copies at staging time and
// message-counts, so its Barrier is free.

import (
	"context"
	"fmt"

	"lcp/internal/core"
	"lcp/internal/partition"
	"lcp/internal/transport"
)

// ShardPlan describes one shard's slice of a partitioned instance: the
// instance it can see, the nodes it runs automata for, and the
// node→shard assignment that routes its cut edges.
type ShardPlan struct {
	// In is the instance the shard's automata read their round-0
	// knowledge from. It must contain every owned node with all of its
	// incident edges and their endpoints — the radius-1 halo a
	// coordinator ships (engine.HaloInstance), or simply the full
	// instance in process. Model-level conventions (graph kind, Global,
	// the nil-map labelling conventions) must match the full instance,
	// since view assembly consults them.
	In *core.Instance
	// Owned lists the node ids this shard runs automata (and decides)
	// for.
	Owned []int
	// Assign maps node id -> owning shard, covering at least Owned and
	// every neighbor of an owned node.
	Assign map[int]int
}

// remoteLink is one cut edge of the plan: after each round, from's cur
// batch is staged for the neighbor dst on the owning peer shard.
type remoteLink struct {
	from *node
	peer int
	dst  int
}

// RunShard floods one shard's automata over the transport for the
// verifier's radius and decides every owned node. The outputs map has
// exactly one verdict per owned node; a transport failure, context
// cancellation, or verifier panic surfaces as an error (the first one
// wins) with no partial outputs.
//
// The caller owns the transport: RunShard never closes it, so stats
// survive the run. The automata are plain heap nodes, not drawn from
// the scheduler's pool — a transport run's batches cross shard (or
// process) lifetimes the pool's reuse discipline does not cover.
func RunShard(ctx context.Context, plan ShardPlan, tr transport.Transport, p core.Proof, v core.Verifier) (map[int]bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	me := tr.Shard()
	byID := make(map[int]*node, len(plan.Owned))
	nodes := make([]*node, 0, len(plan.Owned))
	for _, id := range plan.Owned {
		if !plan.In.G.Has(id) {
			return nil, fmt.Errorf("dist: shard %d owns node %d, absent from its instance", me, id)
		}
		nd := &node{
			id:    id,
			base:  initialRecord(plan.In, id, nil),
			known: make(map[int]record),
			dist:  make(map[int]int),
		}
		byID[id] = nd
		nodes = append(nodes, nd)
	}
	// Wire after every automaton exists: same-shard neighbours get
	// direct-merge links, cut edges get remote links routed by the
	// assignment.
	var remotes []remoteLink
	for _, nd := range nodes {
		for _, w := range plan.In.G.UndirectedNeighbors(nd.id) {
			owner, ok := plan.Assign[w]
			if !ok {
				return nil, fmt.Errorf("dist: shard %d: neighbor %d of node %d has no shard assignment", me, w, nd.id)
			}
			if owner == me {
				nb := byID[w]
				if nb == nil {
					return nil, fmt.Errorf("dist: shard %d: node %d assigned here but not owned", me, w)
				}
				nd.local = append(nd.local, nb)
			} else {
				remotes = append(remotes, remoteLink{from: nd, peer: owner, dst: w})
			}
		}
	}
	for _, nd := range nodes {
		nd.seed(p)
	}
	radius := v.Radius()
	rounds := radius
	if rounds < 0 {
		rounds = 0
	}
	for r := 1; r <= rounds; r++ {
		// Phase 1: freeze and stage cur on every cut edge, then
		// exchange. cur buffers stay untouched through the delivery.
		for _, rl := range remotes {
			tr.Send(rl.peer, rl.dst, rl.from.cur)
		}
		dels, err := tr.Exchange(ctx, r)
		if err != nil {
			return nil, err
		}
		// Phase 2: rewind the accumulation buffers.
		for _, nd := range nodes {
			nd.next = nd.next[:0]
		}
		// Phase 3: same-shard direct merges, then the transport's
		// deliveries. Merges never touch a cur buffer, so ordering
		// within the phase is irrelevant.
		for _, nd := range nodes {
			for _, nb := range nd.local {
				nb.merge(nd.cur, r)
			}
		}
		for _, d := range dels {
			nd := byID[d.Dst]
			if nd == nil {
				return nil, fmt.Errorf("dist: shard %d: delivery for node %d, which it does not own", me, d.Dst)
			}
			nd.merge(d.Recs, r)
		}
		// Phase 4: swap, then close the round — after Barrier, every
		// shard has merged round r and buffer reuse is licensed.
		for _, nd := range nodes {
			nd.cur, nd.next = nd.next, nd.cur
		}
		if err := tr.Barrier(ctx, r); err != nil {
			return nil, err
		}
	}
	outputs := make(map[int]bool, len(nodes))
	for _, nd := range nodes {
		nv := decide(nd, plan.In, radius, v)
		if nv.err != nil {
			return nil, nv.err
		}
		outputs[nv.id] = nv.ok
	}
	return outputs, nil
}

// CheckTransport verifies one proof by fanning the instance out over an
// in-process transport group: shards partitions by pt (nil =
// contiguous), one shard goroutine per group, cut edges carried by
// transport.InProc. Verdict-identical to Check and core.Check — it is
// the single-process reference for the transport path, and what the
// cross-backend equivalence tests pin the TCP coordinator against.
func CheckTransport(ctx context.Context, in *core.Instance, p core.Proof, v core.Verifier, shards int, pt partition.Partitioner) (*core.Result, error) {
	ids := in.G.Nodes()
	if shards <= 0 {
		shards = 1
	}
	if shards > len(ids) {
		shards = len(ids)
	}
	if len(ids) == 0 {
		return &core.Result{Outputs: map[int]bool{}}, nil
	}
	if pt == nil {
		pt = partition.Contiguous{}
	}
	assign := pt.Assign(in.G, shards)
	if err := partition.Validate(assign, len(ids), shards); err != nil {
		return nil, fmt.Errorf("dist: partitioner %q: %v", pt.Name(), err)
	}
	groups := partition.Groups(in.G, assign, shards)
	assignByID := make(map[int]int, len(ids))
	for i, id := range ids {
		assignByID[id] = assign[i]
	}
	trs := transport.NewInProcGroup(shards)
	type shardResult struct {
		outputs map[int]bool
		err     error
	}
	results := make([]shardResult, shards)
	done := make(chan int, shards)
	for s := 0; s < shards; s++ {
		go func(s int) {
			defer func() { done <- s }()
			// Close on exit: a normal exit is past the final barrier
			// (harmless to peers), an early error poisons the group so
			// nobody waits for a shard that quit.
			defer func() { _ = trs[s].Close() }()
			outputs, err := RunShard(ctx, ShardPlan{In: in, Owned: groups[s], Assign: assignByID}, trs[s], p, v)
			results[s] = shardResult{outputs: outputs, err: err}
		}(s)
	}
	for range trs {
		<-done
	}
	res := &core.Result{Outputs: make(map[int]bool, len(ids))}
	var firstErr error
	errShard := -1
	for s, sr := range results {
		if sr.err != nil && (errShard == -1 || s < errShard) {
			firstErr, errShard = sr.err, s
		}
		for id, ok := range sr.outputs {
			res.Outputs[id] = ok
		}
	}
	if firstErr != nil {
		// A poisoned group reports ErrClosed on every shard but the one
		// that failed first; surface the cancellation cause if that is
		// what started it.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, firstErr
	}
	return res, nil
}
