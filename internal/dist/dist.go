// Package dist is the LOCAL-model runtime for locally checkable proofs
// (Göös & Suomela, PODC 2011): it executes the verifiers of package core
// on a synchronous message-passing network with one goroutine per node
// and one channel per port.
//
// Execution follows the model of §2.1 literally. Every node starts
// knowing only its own identifier, proof string, input labels and
// incident edges. In each communication round it sends what it learned in
// the previous round to all neighbours and merges what arrives; after r
// rounds it has assembled exactly the radius-r view (G[v,r], P[v,r], v)
// and decides locally. Collect is therefore observationally equivalent to
// core.BuildView and Check to core.Check — a property the tests assert —
// but the information only ever travels along edges.
//
// Three execution strategies are exposed, matching the three variants
// benchmarked at the repository root:
//
//   - core.Check: sequential BFS views (the reference runner);
//   - CheckParallelViews: a shared-memory worker pool over BFS views,
//     sized by GOMAXPROCS — the fast path when the whole instance lives
//     in one address space;
//   - Check: the full goroutine-per-node message-passing runtime.
//
// The scheduler is tunable via Options: a bounded fan-out for the local
// decision phase, a reusable round barrier (or free-running
// α-synchronization via per-port message counting), and per-port,
// per-round message buffers.
package dist

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"lcp/internal/core"
)

// Options tunes the runtime's scheduler. The zero value is the default
// configuration used by Check, Collect and CheckParallelViews.
type Options struct {
	// Fanout bounds how many nodes may run their local decision (view
	// assembly + verifier call) concurrently once flooding has finished.
	// The network itself keeps one goroutine per node regardless; the
	// bound only throttles the CPU-heavy phase so n goroutines do not
	// thrash the scheduler. 0 means GOMAXPROCS; negative means
	// unbounded.
	Fanout int
	// PortBuffer is the capacity of each port channel, in round
	// batches. 0 picks the default: 1 in lockstep mode (a batch is
	// always drained before the round barrier trips) and 2 in
	// free-running mode (adjacent nodes skew by at most one round, so
	// two slots make sends wait-free).
	PortBuffer int
	// FreeRunning disables the global round barrier. Rounds are then
	// aligned only by per-port message counting (each node sends and
	// receives exactly one batch per port per round), the classic
	// α-synchronizer. Verdicts are identical; the trade is barrier
	// latency against per-round buffer reuse.
	FreeRunning bool
	// Workers sizes the CheckParallelViews worker pool. 0 means
	// GOMAXPROCS.
	Workers int
}

func (o Options) fanout() int {
	switch {
	case o.Fanout > 0:
		return o.Fanout
	case o.Fanout < 0:
		return 0 // unbounded
	default:
		return runtime.GOMAXPROCS(0)
	}
}

func (o Options) portBuffer() int {
	if o.PortBuffer > 0 {
		return o.PortBuffer
	}
	if o.FreeRunning {
		return 2
	}
	return 1
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// nodeVerdict is one node's contribution to the run result.
type nodeVerdict struct {
	id  int
	ok  bool
	err error
}

// Check runs the verifier on the message-passing runtime: one goroutine
// per node floods for Radius() rounds, assembles its view, and decides.
// The result is verdict-for-verdict identical to core.Check. The error is
// non-nil only if the network could not run (nil arguments) or a verifier
// panicked inside a node goroutine.
func Check(in *core.Instance, p core.Proof, v core.Verifier) (*core.Result, error) {
	return CheckWith(in, p, v, Options{})
}

// CheckWith is Check with an explicit scheduler configuration.
func CheckWith(in *core.Instance, p core.Proof, v core.Verifier, opt Options) (*core.Result, error) {
	if in == nil || in.G == nil {
		return nil, fmt.Errorf("dist: nil instance")
	}
	if v == nil {
		return nil, fmt.Errorf("dist: nil verifier")
	}
	if in.G.N() == 0 {
		return &core.Result{Outputs: map[int]bool{}}, nil
	}
	net := buildNetwork(in, opt)
	res, err := net.run(in, p, v, opt)
	net.release()
	return res, err
}

// Collect assembles the radius-r view of center by running the flooding
// protocol: every node participates in r communication rounds, after
// which center reconstructs (G[v,r], P[v,r], v) from what reached it. The
// result is identical to core.BuildView(in, p, center, radius) — the
// property test in the package asserts this — but is produced without
// any shared-memory traversal of the graph.
func Collect(in *core.Instance, p core.Proof, center, radius int) *core.View {
	return CollectWith(in, p, center, radius, Options{})
}

// CollectWith is Collect with an explicit scheduler configuration.
func CollectWith(in *core.Instance, p core.Proof, center, radius int, opt Options) *core.View {
	if !in.G.Has(center) {
		panic(fmt.Sprintf("dist: unknown node %d", center))
	}
	net := buildNetwork(in, opt)
	for _, nd := range net.nodes {
		nd.seed(p)
	}
	rounds := radius
	if rounds < 0 {
		rounds = 0
	}
	views := make(chan *core.View, 1)
	var wg sync.WaitGroup
	for _, nd := range net.nodes {
		wg.Add(1)
		go func(nd *node) {
			defer wg.Done()
			nd.flood(rounds, net.bar)
			if nd.id == center {
				views <- nd.assemble(in, radius)
			}
		}(nd)
	}
	wg.Wait()
	v := <-views
	net.release()
	return v
}

// CheckParallelViews is the shared-memory fast path: a worker pool sized
// by GOMAXPROCS builds BFS views and verifies them in parallel. It
// returns the same result as core.Check without message passing —
// benchmark foil for the full runtime.
func CheckParallelViews(in *core.Instance, p core.Proof, v core.Verifier) *core.Result {
	return CheckParallelViewsWith(in, p, v, Options{})
}

// CheckParallelViewsWith is CheckParallelViews with an explicit worker
// pool size.
func CheckParallelViewsWith(in *core.Instance, p core.Proof, v core.Verifier, opt Options) *core.Result {
	nodes := in.G.Nodes()
	outs := make([]bool, len(nodes))
	workers := opt.workers()
	if workers > len(nodes) {
		workers = len(nodes)
	}
	radius := v.Radius()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(nodes) {
					return
				}
				outs[i] = v.Verify(core.BuildView(in, p, nodes[i], radius))
			}
		}()
	}
	wg.Wait()
	res := &core.Result{Outputs: make(map[int]bool, len(nodes))}
	for i, id := range nodes {
		res.Outputs[id] = outs[i]
	}
	return res
}
