package dist

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"lcp/internal/core"
	"lcp/internal/partition"
)

// Options tunes the runtime's scheduler. The zero value is the default
// configuration used by Check, Collect and CheckParallelViews: one
// goroutine per node in lockstep.
type Options struct {
	// Sharded batches the node automata onto Shards shared worker
	// goroutines instead of one goroutine per node. Same-shard message
	// delivery is a direct merge into the neighbour's automaton (no
	// channel); only cross-shard edges keep their ports. Verdicts are
	// identical to the goroutine-per-node layout; the trade is model
	// fidelity (n independent processors) against scheduler pressure
	// once n ≫ GOMAXPROCS. See shard.go.
	Sharded bool
	// Shards is the number of shard goroutines in sharded mode, capped
	// at the node count. 0 means GOMAXPROCS. Ignored unless Sharded.
	Shards int
	// Partitioner computes the node→shard assignment in sharded mode.
	// nil means partition.Contiguous{}: near-equal chunks of the
	// ascending identifier order, the layout the scheduler always had.
	// Locality-aware partitioners (partition.BFSChunks,
	// partition.GreedyBalanced) cut fewer edges across shard
	// boundaries, which means fewer ports, fewer channel operations per
	// round, and less cross-shard traffic on graphs whose identifiers
	// do not follow topology. Verdicts are identical under every
	// assignment. Ignored unless Sharded.
	Partitioner partition.Partitioner
	// Fanout bounds how many nodes may run their local decision (view
	// assembly + verifier call) concurrently once flooding has finished.
	// The network itself keeps one goroutine per node regardless; the
	// bound only throttles the CPU-heavy phase so n goroutines do not
	// thrash the scheduler. 0 means GOMAXPROCS; negative means
	// unbounded. In sharded mode the option is moot: decision
	// concurrency is the shard count by construction.
	Fanout int
	// PortBuffer is the capacity of each port channel, in round
	// batches. 0 picks the default: 1 in lockstep mode (a batch is
	// always drained before the round barrier trips) and 2 in
	// free-running mode (adjacent nodes skew by at most one round, so
	// two slots make sends wait-free).
	PortBuffer int
	// FreeRunning disables the global round barrier. Rounds are then
	// aligned only by per-port message counting (each node sends and
	// receives exactly one batch per port per round), the classic
	// α-synchronizer. Verdicts are identical; the trade is barrier
	// latency against per-round buffer reuse. In sharded mode the
	// counting happens at shard granularity: adjacent shards skew by at
	// most one round.
	FreeRunning bool
	// Workers sizes the CheckParallelViews worker pool. 0 means
	// GOMAXPROCS.
	Workers int
	// DecideOnly restricts the decision phase to the listed nodes: every
	// node still floods (carriers are part of the communication graph
	// and must forward records), but only the listed ones assemble views
	// and run the verifier, and only they appear in the Result. nil
	// means every node decides. The engine's halo shards use this so the
	// halo-only carrier nodes — whose views are clipped at the halo
	// boundary and whose verdicts would be discarded anyway — never pay
	// verifier work (and can never fail a run by panicking on a clipped
	// view). Unknown identifiers are ignored.
	DecideOnly []int
}

func (o Options) fanout() int {
	switch {
	case o.Fanout > 0:
		return o.Fanout
	case o.Fanout < 0:
		return 0 // unbounded
	default:
		return runtime.GOMAXPROCS(0)
	}
}

func (o Options) portBuffer() int {
	if o.PortBuffer > 0 {
		return o.PortBuffer
	}
	if o.FreeRunning {
		return 2
	}
	return 1
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// shardCount resolves the shard goroutine count for an n-node network:
// 0 when sharding is off, otherwise at least 1 and at most n.
func (o Options) shardCount(n int) int {
	if !o.Sharded || n == 0 {
		return 0
	}
	s := o.Shards
	if s <= 0 {
		s = runtime.GOMAXPROCS(0)
	}
	if s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	return s
}

// partitioner resolves the shard partitioner: the configured one, or
// the contiguous id-range default.
func (o Options) partitioner() partition.Partitioner {
	if o.Partitioner != nil {
		return o.Partitioner
	}
	return partition.Contiguous{}
}

// nodeVerdict is one node's contribution to the run result.
type nodeVerdict struct {
	id  int
	ok  bool
	err error
}

// Check runs the verifier on the message-passing runtime: one goroutine
// per node floods for Radius() rounds, assembles its view, and decides.
// The result is verdict-for-verdict identical to core.Check. The error is
// non-nil only if the network could not run (nil arguments) or a verifier
// panicked inside a node goroutine.
func Check(in *core.Instance, p core.Proof, v core.Verifier) (*core.Result, error) {
	return CheckWith(in, p, v, Options{})
}

// CheckWith is Check with an explicit scheduler configuration —
// including Options.Sharded, which runs the same protocol on shared
// shard goroutines instead of one goroutine per node.
func CheckWith(in *core.Instance, p core.Proof, v core.Verifier, opt Options) (*core.Result, error) {
	//lint:ignore ctxflow ctx-less CheckWith is the documented uncancellable entry point; CheckWithCtx is the threaded variant
	return CheckWithCtx(context.Background(), in, p, v, opt)
}

// CheckWithCtx is CheckWith with context cancellation: lockstep runs
// abort between communication rounds (the context watcher poisons the
// round barrier and every automaton stops after the same round) and
// return ctx.Err(). Free-running runs have no barrier and honor the
// context only at run boundaries.
func CheckWithCtx(ctx context.Context, in *core.Instance, p core.Proof, v core.Verifier, opt Options) (*core.Result, error) {
	if in == nil || in.G == nil {
		return nil, fmt.Errorf("dist: nil instance")
	}
	if v == nil {
		return nil, fmt.Errorf("dist: nil verifier")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if in.G.N() == 0 {
		return &core.Result{Outputs: map[int]bool{}}, nil
	}
	net, err := buildNetwork(in, opt)
	if err != nil {
		return nil, err
	}
	res, err := net.run(ctx, in, p, v, opt)
	net.release()
	return res, err
}

// Collect assembles the radius-r view of center by running the flooding
// protocol: every node participates in r communication rounds, after
// which center reconstructs (G[v,r], P[v,r], v) from what reached it. The
// result is identical to core.BuildView(in, p, center, radius) — the
// property test in the package asserts this — but is produced without
// any shared-memory traversal of the graph.
func Collect(in *core.Instance, p core.Proof, center, radius int) *core.View {
	return CollectWith(in, p, center, radius, Options{})
}

// CollectWith is Collect with an explicit scheduler configuration. Like
// Collect it panics on impossible inputs — an unknown center, or a
// custom Partitioner returning an invalid assignment.
func CollectWith(in *core.Instance, p core.Proof, center, radius int, opt Options) *core.View {
	if !in.G.Has(center) {
		panic(fmt.Sprintf("dist: unknown node %d", center))
	}
	net, err := buildNetwork(in, opt)
	if err != nil {
		panic(err)
	}
	for _, nd := range net.nodes {
		nd.seed(p)
	}
	v := net.collect(in, center, radius)
	net.release()
	return v
}

// CheckParallelViews is the shared-memory fast path: a worker pool sized
// by GOMAXPROCS builds BFS views and verifies them in parallel. It
// returns the same result as core.Check without message passing —
// benchmark foil for the full runtime.
func CheckParallelViews(in *core.Instance, p core.Proof, v core.Verifier) *core.Result {
	return CheckParallelViewsWith(in, p, v, Options{})
}

// CheckParallelViewsWith is CheckParallelViews with an explicit worker
// pool size.
func CheckParallelViewsWith(in *core.Instance, p core.Proof, v core.Verifier, opt Options) *core.Result {
	nodes := in.G.Nodes()
	outs := make([]bool, len(nodes))
	workers := opt.workers()
	if workers > len(nodes) {
		workers = len(nodes)
	}
	radius := v.Radius()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(nodes) {
					return
				}
				outs[i] = v.Verify(core.BuildView(in, p, nodes[i], radius))
			}
		}()
	}
	wg.Wait()
	res := &core.Result{Outputs: make(map[int]bool, len(nodes))}
	for i, id := range nodes {
		res.Outputs[id] = outs[i]
	}
	return res
}
