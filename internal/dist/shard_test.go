package dist_test

// Edge-case tests for the sharded scheduler. The catalog-wide
// verdict-identity property lives in dist_test.go (checkAllRunners runs
// sharded mode alongside every other strategy); this file pins down the
// degenerate configurations where the shard partition itself could go
// wrong: more shards than nodes, a single shard (no channels at all),
// isolated nodes, empty port sets, and panic recovery inside a shard
// worker.

import (
	"fmt"
	"testing"

	"lcp"
	"lcp/internal/core"
	"lcp/internal/dist"
	"lcp/internal/graph"
	"lcp/internal/partition"
)

// TestShardedMoreShardsThanNodes: the shard count clamps to n, leaving
// some requested shards empty-handed rather than wedging the barrier.
func TestShardedMoreShardsThanNodes(t *testing.T) {
	in := core.NewInstance(lcp.Cycle(5))
	scheme := lcp.OddNScheme()
	p, err := scheme.Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	v := scheme.Verifier()
	want := core.Check(in, p, v)
	for _, shards := range []int{5, 6, 99} {
		got, err := dist.CheckWith(in, p, v, dist.Options{Sharded: true, Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		resultsEqual(t, fmt.Sprintf("shards=%d", shards), got, want)
	}
}

// TestShardedSingleShardDegenerate: one shard means zero channels — the
// whole protocol degenerates to a sequential sweep on one goroutine —
// and the verdicts still match the reference exactly.
func TestShardedSingleShardDegenerate(t *testing.T) {
	in := core.NewInstance(lcp.Grid(4, 4))
	p := core.RandomProof(in, 6, 3)
	v := lcp.OddNScheme().Verifier()
	want := core.Check(in, p, v)
	got, err := dist.CheckWith(in, p, v, dist.Options{Sharded: true, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "single-shard", got, want)
	// Collect in the same degenerate mode.
	center := in.G.Nodes()[5]
	viewsEqual(t, "single-shard collect",
		dist.CollectWith(in, p, center, 2, dist.Options{Sharded: true, Shards: 1}),
		core.BuildView(in, p, center, 2))
}

// TestShardedIsolatedNodes: nodes with no edges have no ports and no
// local neighbours in any partition; they must still decide (and their
// empty radius-r balls must not stall any barrier phase).
func TestShardedIsolatedNodes(t *testing.T) {
	b := lcp.NewBuilder()
	b.AddPath(1, 2, 3, 4)
	b.AddNode(7) // isolated
	b.AddNode(9) // isolated
	in := core.NewInstance(b.Graph())
	p := core.RandomProof(in, 4, 1)
	v := core.VerifierFunc{R: 2, F: func(w *core.View) bool {
		// A degree-0 center must see a singleton ball: any record leaking
		// into an isolated node's view flips its verdict to reject.
		if w.Degree(w.Center) == 0 {
			return w.G.N() == 1
		}
		return w.G.N() >= 2
	}}
	want := core.Check(in, p, v)
	for _, shards := range []int{1, 2, 3, 6, 10} {
		got, err := dist.CheckWith(in, p, v, dist.Options{Sharded: true, Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		resultsEqual(t, fmt.Sprintf("isolated shards=%d", shards), got, want)
	}
	// An all-isolated graph: no edges anywhere.
	b2 := lcp.NewBuilder()
	for i := 1; i <= 6; i++ {
		b2.AddNode(i)
	}
	iso := core.NewInstance(b2.Graph())
	want = core.Check(iso, nil, v)
	got, err := dist.CheckWith(iso, nil, v, dist.Options{Sharded: true, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "all-isolated", got, want)
}

// TestShardedDisconnectedAcrossShardBoundary: components split across
// shard boundaries exchange nothing, and flooding never leaks across
// components even when both live partly in the same shard.
func TestShardedDisconnectedAcrossShardBoundary(t *testing.T) {
	g := lcp.DisjointUnion(lcp.Cycle(6), lcp.Cycle(7).ShiftIDs(10))
	in := core.NewInstance(g)
	p := core.RandomProof(in, 4, 2)
	v := lcp.OddNScheme().Verifier()
	want := core.Check(in, p, v)
	for _, shards := range []int{2, 3, 5} {
		got, err := dist.CheckWith(in, p, v, dist.Options{Sharded: true, Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		resultsEqual(t, fmt.Sprintf("disconnected shards=%d", shards), got, want)
	}
}

// TestShardedRecoversVerifierPanic: a panic while deciding one node of a
// shard surfaces as an error and the remaining nodes still report.
func TestShardedRecoversVerifierPanic(t *testing.T) {
	in := core.NewInstance(lcp.Cycle(12))
	v := core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		if w.Center == 5 {
			panic("node 5 misbehaves")
		}
		return true
	}}
	if _, err := dist.CheckWith(in, core.Proof{}, v, dist.Options{Sharded: true, Shards: 3}); err == nil {
		t.Error("want panic surfaced as error")
	}
}

// TestShardedNetworkReuse: a reusable Network in sharded mode serves
// many proofs, and concurrent checks (which draw extra wirings from the
// pool) all match the reference.
func TestShardedNetworkReuse(t *testing.T) {
	in := core.NewInstance(lcp.Cycle(19))
	scheme := lcp.OddNScheme()
	p, err := scheme.Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	v := scheme.Verifier()
	nw, err := dist.NewNetwork(in, dist.Options{Sharded: true, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	for i := 0; i < 8; i++ {
		proof := p
		if i%2 == 1 {
			proof = core.FlipBit(p, int64(i))
		}
		got, err := nw.Check(proof, v)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		resultsEqual(t, fmt.Sprintf("reuse run %d", i), got, core.Check(in, proof, v))
	}
}

// TestDecideOnlySubset: carriers flood but never decide — the result
// contains exactly the listed nodes, their verdicts match the full
// reference, and a verifier that panics at a carrier never fires. Both
// execution layouts are covered.
func TestDecideOnlySubset(t *testing.T) {
	in := core.NewInstance(lcp.Cycle(11))
	scheme := lcp.OddNScheme()
	p, err := scheme.Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	deciders := []int{2, 5, 6, 9}
	isDecider := func(id int) bool {
		for _, d := range deciders {
			if d == id {
				return true
			}
		}
		return false
	}
	v := core.VerifierFunc{R: scheme.Verifier().Radius(), F: func(w *core.View) bool {
		if !isDecider(w.Center) {
			panic(fmt.Sprintf("carrier %d was asked to decide", w.Center))
		}
		return scheme.Verifier().Verify(w)
	}}
	want := core.Check(in, p, scheme.Verifier())
	for _, opt := range []dist.Options{
		{DecideOnly: deciders},
		{DecideOnly: deciders, Sharded: true, Shards: 3},
		{DecideOnly: deciders, Sharded: true, FreeRunning: true},
	} {
		got, err := dist.CheckWith(in, p, v, opt)
		if err != nil {
			t.Fatalf("opts=%+v: %v", opt, err)
		}
		if len(got.Outputs) != len(deciders) {
			t.Fatalf("opts=%+v: got %d verdicts, want %d", opt, len(got.Outputs), len(deciders))
		}
		for _, id := range deciders {
			out, ok := got.Outputs[id]
			if !ok || out != want.Outputs[id] {
				t.Fatalf("opts=%+v: node %d verdict %v/%v, reference %v", opt, id, out, ok, want.Outputs[id])
			}
		}
	}
}

// badPartitioner returns a fixed (usually invalid) assignment no matter
// the graph.
type badPartitioner struct{ assign []int }

func (badPartitioner) Name() string                     { return "bad" }
func (p badPartitioner) Assign(*graph.Graph, int) []int { return p.assign }

// TestShardedInvalidPartitionerRejected: a custom partitioner returning
// a malformed assignment surfaces as an error from every entry point
// instead of wedging or panicking the scheduler.
func TestShardedInvalidPartitionerRejected(t *testing.T) {
	in := core.NewInstance(lcp.Cycle(6))
	v := lcp.OddNScheme().Verifier()
	for name, bad := range map[string]dist.Options{
		"short":        {Sharded: true, Shards: 3, Partitioner: badPartitioner{assign: []int{0, 1}}},
		"out-of-range": {Sharded: true, Shards: 3, Partitioner: badPartitioner{assign: []int{0, 1, 2, 3, 0, 1}}},
		"negative":     {Sharded: true, Shards: 3, Partitioner: badPartitioner{assign: []int{0, -1, 2, 0, 1, 2}}},
		"nil":          {Sharded: true, Shards: 3, Partitioner: badPartitioner{}},
	} {
		if _, err := dist.CheckWith(in, core.Proof{}, v, bad); err == nil {
			t.Errorf("%s: CheckWith accepted an invalid assignment", name)
		}
		if _, err := dist.NewNetwork(in, bad); err == nil {
			t.Errorf("%s: NewNetwork accepted an invalid assignment", name)
		}
	}
}

// TestShardedArbitraryAssignment: a partitioner may scatter nodes
// across shards in any pattern — interleaved round-robin included —
// and verdicts still match the reference, lockstep and free-running.
func TestShardedArbitraryAssignment(t *testing.T) {
	in := core.NewInstance(lcp.Grid(4, 5))
	scheme := lcp.OddNScheme() // 20 nodes: even, rejects somewhere
	p := core.RandomProof(in, 5, 3)
	v := scheme.Verifier()
	want := core.Check(in, p, v)
	roundRobin := make([]int, in.G.N())
	for i := range roundRobin {
		roundRobin[i] = i % 3
	}
	for _, opt := range []dist.Options{
		{Sharded: true, Shards: 3, Partitioner: badPartitioner{assign: roundRobin}},
		{Sharded: true, Shards: 3, FreeRunning: true, Partitioner: badPartitioner{assign: roundRobin}},
	} {
		got, err := dist.CheckWith(in, p, v, opt)
		if err != nil {
			t.Fatalf("free-running=%v: %v", opt.FreeRunning, err)
		}
		resultsEqual(t, fmt.Sprintf("round-robin free-running=%v", opt.FreeRunning), got, want)
	}
}

// TestShardedEmptyShardAllowed: an assignment that leaves a shard with
// no nodes must not wedge the barrier or the port wiring.
func TestShardedEmptyShardAllowed(t *testing.T) {
	in := core.NewInstance(lcp.Cycle(6))
	v := lcp.OddNScheme().Verifier()
	p := core.RandomProof(in, 3, 1)
	want := core.Check(in, p, v)
	// Shard 1 of 3 owns nothing.
	lopsided := []int{0, 0, 2, 2, 0, 2}
	for _, freeRunning := range []bool{false, true} {
		got, err := dist.CheckWith(in, p, v, dist.Options{
			Sharded: true, Shards: 3, FreeRunning: freeRunning,
			Partitioner: badPartitioner{assign: lopsided},
		})
		if err != nil {
			t.Fatalf("free-running=%v: %v", freeRunning, err)
		}
		resultsEqual(t, fmt.Sprintf("empty-shard free-running=%v", freeRunning), got, want)
	}
}

// TestShardedFreeRunningBatchRing: the free-running sharded layout
// reuses round batches through the epoch ring. Long floods (radius well
// past the ring length) over a reused Network are the case where a
// stale slot would resurface as message corruption; verdicts and views
// must stay exact across many back-to-back runs, at several port
// buffer depths (which set the ring length).
func TestShardedFreeRunningBatchRing(t *testing.T) {
	g := lcp.RandomConnected(24, 0.12, 9)
	in := core.NewInstance(g)
	v := core.VerifierFunc{R: 9, F: func(w *core.View) bool {
		// Radius 9 ≫ ring length; accept iff the ball saw ≥ 12 nodes, so
		// any lost or duplicated record flips a verdict.
		return w.G.N() >= 12
	}}
	for _, portBuf := range []int{0, 1, 4} {
		opt := dist.Options{Sharded: true, Shards: 4, FreeRunning: true, PortBuffer: portBuf}
		nw, err := dist.NewNetwork(in, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			p := core.RandomProof(in, 4, int64(i))
			want := core.Check(in, p, v)
			got, err := nw.Check(p, v)
			if err != nil {
				t.Fatalf("portBuf=%d run %d: %v", portBuf, i, err)
			}
			resultsEqual(t, fmt.Sprintf("ring portBuf=%d run %d", portBuf, i), got, want)
		}
		nw.Close()
		// Views assembled under the ring match the sequential reference.
		p := core.RandomProof(in, 4, 99)
		center := in.G.Nodes()[7]
		viewsEqual(t, fmt.Sprintf("ring collect portBuf=%d", portBuf),
			dist.CollectWith(in, p, center, 6, opt),
			core.BuildView(in, p, center, 6))
	}
}

// TestShardedPartitionersAcrossTopologies: the three partitioners are
// verdict-identical on the topologies where their assignments actually
// differ — scrambled grids and trees, where BFS chunks and greedy
// refinement pick very different shard shapes than contiguous ranges.
func TestShardedPartitionersAcrossTopologies(t *testing.T) {
	for name, g := range map[string]*lcp.Graph{
		"scrambled-grid": graph.RandomPermutationIDs(lcp.Grid(6, 6), 4),
		"scrambled-tree": graph.RandomPermutationIDs(lcp.RandomTree(40, 2), 5),
		"disconnected":   lcp.DisjointUnion(lcp.Cycle(9), lcp.Grid(3, 4).ShiftIDs(100)),
	} {
		in := core.NewInstance(g)
		p := core.RandomProof(in, 6, 7)
		v := core.VerifierFunc{R: 2, F: func(w *core.View) bool {
			return w.G.N()%2 == 0 || w.ProofOf(w.Center).Len() > 3
		}}
		want := core.Check(in, p, v)
		for _, pname := range partition.Names() {
			pt, err := partition.ByName(pname)
			if err != nil {
				t.Fatal(err)
			}
			for _, freeRunning := range []bool{false, true} {
				got, err := dist.CheckWith(in, p, v, dist.Options{
					Sharded: true, Shards: 4, FreeRunning: freeRunning, Partitioner: pt,
				})
				if err != nil {
					t.Fatalf("%s/%s free-running=%v: %v", name, pname, freeRunning, err)
				}
				resultsEqual(t, fmt.Sprintf("%s/%s free-running=%v", name, pname, freeRunning), got, want)
			}
		}
	}
}

// TestShardedRadiusZero: zero communication rounds, shard barrier never
// trips, verdicts still flow.
func TestShardedRadiusZero(t *testing.T) {
	in := core.NewInstance(lcp.Path(7)).SetNodeLabel(3, core.LabelLeader)
	p := core.RandomProof(in, 2, 1)
	v := core.VerifierFunc{R: 0, F: func(w *core.View) bool {
		if w.Label(w.Center) == core.LabelLeader {
			return true
		}
		s := w.ProofOf(w.Center)
		return s.Len() > 0 && s.Bit(0)
	}}
	want := core.Check(in, p, v)
	got, err := dist.CheckWith(in, p, v, dist.Options{Sharded: true, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "sharded radius-0", got, want)
}
