package dist

import (
	"sync"

	"lcp/internal/core"
)

// The sharded execution layout. A goroutine per node is the faithful
// reading of the LOCAL model, but once n ≫ GOMAXPROCS the runtime spends
// its time parking goroutines and tripping an n-participant barrier
// rather than flooding. Sharded mode batches the node automata onto
// O(GOMAXPROCS) shard goroutines: each shard steps all of its nodes
// through one communication round together, delivering same-shard
// messages by a direct merge into the neighbour's automaton (no channel)
// and using ports only across shard boundaries. The barrier shrinks from
// n participants to one per shard.
//
// The round semantics are unchanged, which is what keeps verdicts
// identical to the goroutine-per-node layout (and hence to core.Check):
// within a round every automaton's outgoing batch (cur) is frozen before
// any delivery happens, so a merge can never leak round-r knowledge into
// a round-r send. A round runs in four strict phases per shard —
//
//	1. send cur on every cross-shard port (non-blocking: each port has a
//	   free slot by the time the round starts);
//	2. rewind every owned node's next buffer;
//	3. deliver cur to same-shard neighbours by direct merge, then
//	   receive exactly one batch per cross-shard in-port and merge;
//	4. swap cur/next everywhere and hit the shard barrier.
//
// Phases 1–3 only read cur buffers, and a batch sent over a port is
// drained by the receiving shard before it reaches its own barrier, so
// lockstep mode reuses batch buffers exactly like the per-node layout.
// Free-running mode works too: shards align by per-port message
// counting, adjacent shards skew by at most one round, and the default
// two-slot port buffer keeps sends wait-free.

// runSharded fans the verdict work out by shard: every shard goroutine
// floods its node range and then assembles and verifies each owned node
// in place. The decision fan-out option is moot here — decision
// concurrency is the shard count by construction.
func (net *network) runSharded(in *core.Instance, radius, rounds int, v core.Verifier, verdicts chan<- nodeVerdict, wg *sync.WaitGroup) {
	wg.Add(len(net.shards))
	for _, group := range net.shards {
		go func(group []*node) {
			defer wg.Done()
			floodShard(group, rounds, net.bar)
			for _, nd := range group {
				if nd.carrier {
					continue
				}
				verdicts <- decide(nd, in, radius, v)
			}
		}(group)
	}
}

// floodShard steps every node of one shard through the flooding
// protocol, one communication round at a time. bar is the shard-level
// barrier (nil in free-running mode).
func floodShard(group []*node, rounds int, bar *barrier) {
	for r := 1; r <= rounds; r++ {
		// Phase 1: cross-shard sends. cur buffers are frozen for the
		// whole delivery phase, mirroring "every node sends what it
		// learned last round" of the synchronous model.
		for _, nd := range group {
			for _, port := range nd.out {
				port <- nd.cur
			}
		}
		// Phase 2: rewind the accumulation buffers before any merge of
		// this round can append to them.
		for _, nd := range group {
			if bar != nil {
				nd.next = nd.next[:0]
			} else {
				nd.next = nil
			}
		}
		// Phase 3: same-shard delivery by direct merge, then cross-shard
		// receives. Merges mutate known/dist/next/indEdges only — never
		// a cur buffer — so ordering within the phase is irrelevant.
		for _, nd := range group {
			for _, nb := range nd.local {
				nb.merge(nd.cur, r)
			}
		}
		for _, nd := range group {
			for _, port := range nd.in {
				nd.merge(<-port, r)
			}
		}
		// Phase 4: everything learned this round becomes the next send.
		for _, nd := range group {
			nd.cur, nd.next = nd.next, nd.cur
		}
		if bar != nil {
			bar.await()
		}
	}
}
