package dist

import (
	"sync"
	"sync/atomic"
	"time"

	"lcp/internal/core"
)

// The sharded execution layout. A goroutine per node is the faithful
// reading of the LOCAL model, but once n ≫ GOMAXPROCS the runtime spends
// its time parking goroutines and tripping an n-participant barrier
// rather than flooding. Sharded mode batches the node automata onto
// O(GOMAXPROCS) shard goroutines: each shard steps all of its nodes
// through one communication round together, delivering same-shard
// messages by a direct merge into the neighbour's automaton (no channel)
// and using ports only across shard boundaries. The barrier shrinks from
// n participants to one per shard.
//
// The round semantics are unchanged, which is what keeps verdicts
// identical to the goroutine-per-node layout (and hence to core.Check):
// within a round every automaton's outgoing batch (cur) is frozen before
// any delivery happens, so a merge can never leak round-r knowledge into
// a round-r send. A round runs in four strict phases per shard —
//
//	1. send cur on every cross-shard port (non-blocking: each port has a
//	   free slot by the time the round starts);
//	2. rewind every owned node's next buffer;
//	3. deliver cur to same-shard neighbours by direct merge, then
//	   receive exactly one batch per cross-shard in-port and merge;
//	4. swap cur/next everywhere and hit the shard barrier.
//
// Phases 1–3 only read cur buffers, and a batch sent over a port is
// drained by the receiving shard before it reaches its own barrier, so
// lockstep mode reuses batch buffers exactly like the per-node layout.
// Free-running mode works too: shards align by per-port message
// counting, adjacent shards skew by at most one round, and the default
// two-slot port buffer keeps sends wait-free.

// runSharded fans the verdict work out by shard: every shard goroutine
// floods its node range and then assembles and verifies each owned node
// in place. The decision fan-out option is moot here — decision
// concurrency is the shard count by construction. An aborted flood (a
// cancelled run poisoning the shard barrier) still reports one verdict
// per owned decider, carrying errRunAborted, so run's collection loop
// drains exactly net.deciders entries.
func (net *network) runSharded(in *core.Instance, radius, rounds int, v core.Verifier, verdicts chan<- nodeVerdict, wg *sync.WaitGroup, floodNS *atomic.Int64) {
	wg.Add(len(net.shards))
	for _, group := range net.shards {
		go func(group []*node) {
			defer wg.Done()
			var t0 time.Time
			if floodNS != nil {
				t0 = time.Now()
			}
			aborted := floodShard(group, rounds, net.bar, net.ringLen)
			if floodNS != nil {
				storeMax(floodNS, int64(time.Since(t0)))
			}
			for _, nd := range group {
				if nd.carrier {
					continue
				}
				if aborted {
					verdicts <- nodeVerdict{id: nd.id, err: errRunAborted}
					continue
				}
				verdicts <- decide(nd, in, radius, v)
			}
		}(group)
	}
}

// floodShard steps every node of one shard through the flooding
// protocol, one communication round at a time. bar is the shard-level
// barrier; when nil (free-running mode) the rounds are paced by per-port
// message counting alone and the batch buffers rotate through a ring
// sized by ringLen instead of the lockstep two-buffer swap.
//
// The return value reports a poisoned-barrier abort: every shard gets
// the same per-round decision from the barrier, so all of them stop
// after the same round with every port drained. Free-running shards
// have no barrier and always flood to completion.
func floodShard(group []*node, rounds int, bar *barrier, ringLen int) bool {
	if bar == nil {
		floodShardFreeRunning(group, rounds, ringLen)
		return false
	}
	for r := 1; r <= rounds; r++ {
		// Phase 1: cross-shard sends. cur buffers are frozen for the
		// whole delivery phase, mirroring "every node sends what it
		// learned last round" of the synchronous model.
		for _, nd := range group {
			for _, port := range nd.out {
				port <- nd.cur
			}
		}
		// Phase 2: rewind the accumulation buffers before any merge of
		// this round can append to them.
		for _, nd := range group {
			nd.next = nd.next[:0]
		}
		// Phase 3: same-shard delivery by direct merge, then cross-shard
		// receives. Merges mutate known/dist/next/indEdges only — never
		// a cur buffer — so ordering within the phase is irrelevant.
		for _, nd := range group {
			for _, nb := range nd.local {
				nb.merge(nd.cur, r)
			}
		}
		for _, nd := range group {
			for _, port := range nd.in {
				nd.merge(<-port, r)
			}
		}
		// Phase 4: everything learned this round becomes the next send.
		for _, nd := range group {
			nd.cur, nd.next = nd.next, nd.cur
		}
		if bar.await() {
			return true
		}
	}
	return false
}

// floodShardFreeRunning is floodShard without the barrier. The shard's
// round counter r is the epoch that keeps buffer reuse safe: the batch
// accumulated in round r lives in ring[r%ringLen] with ringLen =
// portBuffer+2, so a slot is rewound exactly ringLen rounds after it
// was filled — and sent one round after filling. Two facts make the
// slot cold by then. First, when every phase-1 send of round r has been
// accepted, each port's channel holds at most portBuffer batches, all
// from rounds > r−portBuffer, so the batch of round r−portBuffer has
// been dequeued. Second, a dequeue only proves the receiver *took* the
// batch, not that it finished merging it — but receives are strictly
// round-ordered per shard, so dequeuing round r−portBuffer means every
// batch of earlier rounds has been fully merged. The slot rewound in
// round r was sent in round r−ringLen+1 = r−portBuffer−1, one round
// earlier still, so no reader can touch it. Free-running mode therefore
// reuses its buffers just like lockstep mode, instead of allocating a
// fresh batch per node per round; the pre-ring cost is visible in
// BENCH_dist.json's sharded-free-running rows.
//
// Round 0 is the seeded cur batch: it is sent in round 1 and only ever
// rewound by node.seed, which runs strictly between runs (run joins
// every shard goroutine and drains every port before returning).
func floodShardFreeRunning(group []*node, rounds, ringLen int) {
	for _, nd := range group {
		if cap(nd.ring) < ringLen {
			nd.ring = make([]batch, ringLen)
		}
		nd.ring = nd.ring[:ringLen]
	}
	sendBuf := func(nd *node, r int) batch {
		if r == 1 {
			return nd.cur
		}
		return nd.ring[(r-1)%ringLen]
	}
	for r := 1; r <= rounds; r++ {
		// Phase 1: cross-shard sends of last round's discoveries.
		for _, nd := range group {
			buf := sendBuf(nd, r)
			for _, port := range nd.out {
				port <- buf
			}
		}
		// Phase 2: rewind this round's ring slot — cold by the epoch
		// argument above — as the accumulation buffer.
		for _, nd := range group {
			nd.next = nd.ring[r%ringLen][:0]
		}
		// Phase 3: same-shard direct merges, then cross-shard receives.
		for _, nd := range group {
			buf := sendBuf(nd, r)
			for _, nb := range nd.local {
				nb.merge(buf, r)
			}
		}
		for _, nd := range group {
			for _, port := range nd.in {
				nd.merge(<-port, r)
			}
		}
		// Phase 4: store the (possibly regrown) accumulation buffer back
		// into its epoch slot; it is sent in round r+1.
		for _, nd := range group {
			nd.ring[r%ringLen] = nd.next
		}
	}
	// Drop the alias between next and the last epoch slot: a later run's
	// seed would otherwise adopt a ring slot as its frozen round-0
	// batch, and the slot's scheduled rewind would corrupt it mid-run.
	// cur needs no such care — this layout never points it into the
	// ring, so it stays the node's dedicated seed buffer across runs.
	for _, nd := range group {
		nd.next = nil
	}
}
