package dist

import (
	"sync/atomic"

	"lcp/internal/obs"
)

// The runtime's observable quantities are exactly the ones the paper's
// model prices: communication rounds and messages exchanged. Both are
// counted analytically at run granularity — the wiring fixes how many
// deliveries one synchronous round performs (every out-port carries
// exactly one batch per round, every same-shard link merges exactly
// once per round), so a completed run contributes ports×rounds without
// the flooding loops ever touching a counter. Aborted runs increment
// only their own counter: how many rounds they completed before the
// poison landed is not observable from outside the barrier, so their
// rounds and deliveries go uncounted.
var (
	distRuns        = obs.Default().Counter("lcp_dist_runs_total", "Completed distributed verification runs.")
	distRunsAborted = obs.Default().Counter("lcp_dist_runs_aborted_total", "Distributed runs aborted by context cancellation.")
	distRounds      = obs.Default().Counter("lcp_dist_rounds_total", "Communication rounds executed by completed runs.")
	distCrossShard  = obs.Default().Counter("lcp_dist_deliveries_total", "Message deliveries by completed runs, split by link kind: cross-shard rides a channel port, same-shard is a direct merge. The goroutine-per-node layout is all ports, hence all cross-shard.", obs.Label{Name: "link", Value: "cross-shard"})
	distSameShard   = obs.Default().Counter("lcp_dist_deliveries_total", "Message deliveries by completed runs, split by link kind: cross-shard rides a channel port, same-shard is a direct merge. The goroutine-per-node layout is all ports, hence all cross-shard.", obs.Label{Name: "link", Value: "same-shard"})
)

// MetricsSnapshot is a point-in-time read of the runtime's counters,
// for tests and tools that want deltas around a run.
type MetricsSnapshot struct {
	Runs                 float64
	RunsAborted          float64
	Rounds               float64
	CrossShardDeliveries float64
	SameShardDeliveries  float64
}

// Metrics reads the current counter values.
func Metrics() MetricsSnapshot {
	return MetricsSnapshot{
		Runs:                 distRuns.Value(),
		RunsAborted:          distRunsAborted.Value(),
		Rounds:               distRounds.Value(),
		CrossShardDeliveries: distCrossShard.Value(),
		SameShardDeliveries:  distSameShard.Value(),
	}
}

// storeMax raises a to at least v. The flood workers use it to publish
// the slowest worker's wall time — the parallel phase's critical path —
// as the run's "dist.flood" stage.
func storeMax(a *atomic.Int64, v int64) {
	for {
		old := a.Load()
		if v <= old || a.CompareAndSwap(old, v) {
			return
		}
	}
}

// countRun records one finished run's contribution to the counters.
func countRun(net *network, rounds int, aborted bool) {
	if aborted {
		distRunsAborted.Inc()
		return
	}
	distRuns.Inc()
	distRounds.Add(float64(rounds))
	distCrossShard.Add(float64(net.crossPorts * rounds))
	distSameShard.Add(float64(net.localLinks * rounds))
}
