package dist

// Cancellation tests for the round loop: a cancelled context poisons
// the round barrier, every automaton aborts after the same round, and —
// critically — the wiring stays reusable: the next run on the same
// network must produce full, correct verdicts.

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"lcp/internal/core"
	"lcp/internal/graph"
)

// slowVerifier gives the flood a few rounds to abort in.
func slowVerifier(radius int) core.Verifier {
	return core.VerifierFunc{R: radius, F: func(w *core.View) bool { return true }}
}

// runAborts drives network.run directly with an already-cancelled
// context: the watcher poisons the barrier before round 1 completes, so
// the run must abort with the context's error — deterministically, on
// every lockstep layout.
func runAborts(t *testing.T, opt Options) {
	t.Helper()
	in := core.NewInstance(graph.Cycle(24))
	v := slowVerifier(4)
	net, err := buildNetwork(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer net.release()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := net.run(ctx, in, core.Proof{}, v, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("aborted run error = %v, want context.Canceled", err)
	}
	// The wiring must be clean after the abort: every port drained,
	// every automaton reseedable. A full re-run must match core.Check.
	res, err := net.run(context.Background(), in, core.Proof{}, v, opt)
	if err != nil {
		t.Fatalf("re-run after abort: %v", err)
	}
	want := core.Check(in, core.Proof{}, v)
	if !reflect.DeepEqual(res.Outputs, want.Outputs) {
		t.Fatalf("re-run after abort diverged:\n got %v\nwant %v", res.Outputs, want.Outputs)
	}
}

func TestRunAbortsOnCancelPerNode(t *testing.T) {
	runAborts(t, Options{})
}

func TestRunAbortsOnCancelSharded(t *testing.T) {
	runAborts(t, Options{Sharded: true, Shards: 3})
}

// TestFreeRunningIgnoresMidRunCancel pins the documented free-running
// trade-off: with no barrier to poison, a cancelled context does not
// abort the flood — the run completes with correct verdicts (the error
// comes only from the pre-run context check in the public API).
func TestFreeRunningIgnoresMidRunCancel(t *testing.T) {
	in := core.NewInstance(graph.Cycle(16))
	v := slowVerifier(3)
	opt := Options{FreeRunning: true, Sharded: true, Shards: 2}
	net, err := buildNetwork(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer net.release()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := net.run(ctx, in, core.Proof{}, v, opt)
	if err != nil {
		t.Fatalf("free-running run returned %v, want completion", err)
	}
	want := core.Check(in, core.Proof{}, v)
	if !reflect.DeepEqual(res.Outputs, want.Outputs) {
		t.Fatalf("free-running run diverged under cancelled context")
	}
}

// TestNetworkCheckCtx covers the public surface: a pre-cancelled
// context is rejected up front, a mid-run cancellation either aborts
// with the context's error or completes with correct verdicts (timing
// decides which), and the network keeps serving afterwards.
func TestNetworkCheckCtx(t *testing.T) {
	in := core.NewInstance(graph.Cycle(64))
	v := slowVerifier(6)
	nw, err := NewNetwork(in, Options{Sharded: true, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	want := core.Check(in, core.Proof{}, v)

	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if _, err := nw.CheckCtx(pre, core.Proof{}, v); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled CheckCtx error = %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Microsecond)
		cancel()
	}()
	res, err := nw.CheckCtx(ctx, core.Proof{}, v)
	switch {
	case err == nil:
		if !reflect.DeepEqual(res.Outputs, want.Outputs) {
			t.Fatalf("completed run diverged under racing cancel")
		}
	case errors.Is(err, context.Canceled):
		// aborted between rounds — the expected fast path
	default:
		t.Fatalf("CheckCtx error = %v", err)
	}

	res, err = nw.Check(core.Proof{}, v)
	if err != nil {
		t.Fatalf("Check after cancelled run: %v", err)
	}
	if !reflect.DeepEqual(res.Outputs, want.Outputs) {
		t.Fatalf("network unusable after cancelled run")
	}
}
