package dist_test

// Property tests for the message-passing runtime. The two contracts
// promised by the package docs (and by core.go:268) are asserted here:
//
//  1. dist.Collect produces views identical to core.BuildView on random
//     trees, cycles, regular graphs and directed graphs, across radii;
//  2. dist.Check and dist.CheckParallelViews agree with core.Check
//     verdict-for-verdict (Outputs and Rejectors) across every scheme in
//     the root catalog, on yes-instances, no-instances with adversarial
//     proofs, and tampered honest proofs.

import (
	"fmt"
	"reflect"
	"testing"

	"lcp"
	"lcp/internal/core"
	"lcp/internal/dist"
	"lcp/internal/graph"
	"lcp/internal/partition"
)

// viewsEqual compares every observable field of two views.
func viewsEqual(t *testing.T, ctx string, got, want *core.View) {
	t.Helper()
	if got.Center != want.Center || got.Radius != want.Radius {
		t.Fatalf("%s: center/radius (%d,%d) != (%d,%d)", ctx, got.Center, got.Radius, want.Center, want.Radius)
	}
	if !graph.Equal(got.G, want.G) {
		t.Fatalf("%s: ball graphs differ: %v vs %v", ctx, got.G, want.G)
	}
	if !reflect.DeepEqual(got.Dist, want.Dist) {
		t.Fatalf("%s: distance maps differ: %v vs %v", ctx, got.Dist, want.Dist)
	}
	if !reflect.DeepEqual(got.Proof, want.Proof) {
		t.Fatalf("%s: proof restrictions differ: %v vs %v", ctx, got.Proof, want.Proof)
	}
	if !reflect.DeepEqual(got.NodeLabel, want.NodeLabel) {
		t.Fatalf("%s: node labels differ: %v vs %v", ctx, got.NodeLabel, want.NodeLabel)
	}
	if !reflect.DeepEqual(got.EdgeLabel, want.EdgeLabel) {
		t.Fatalf("%s: edge labels differ: %v vs %v", ctx, got.EdgeLabel, want.EdgeLabel)
	}
	if !reflect.DeepEqual(got.Weights, want.Weights) {
		t.Fatalf("%s: weights differ: %v vs %v", ctx, got.Weights, want.Weights)
	}
	if !reflect.DeepEqual(got.Global, want.Global) {
		t.Fatalf("%s: globals differ: %v vs %v", ctx, got.Global, want.Global)
	}
}

// collectEqualsBuildViewEverywhere floods each radius once per node and
// cross-checks against the sequential reference.
func collectEqualsBuildViewEverywhere(t *testing.T, name string, in *core.Instance, p core.Proof, radii []int) {
	t.Helper()
	for _, r := range radii {
		for _, v := range in.G.Nodes() {
			got := dist.Collect(in, p, v, r)
			want := core.BuildView(in, p, v, r)
			viewsEqual(t, fmt.Sprintf("%s r=%d v=%d", name, r, v), got, want)
		}
	}
}

func TestCollectEqualsBuildViewOnRandomTrees(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := lcp.RandomTree(14, seed)
		in := core.NewInstance(g)
		p := core.RandomProof(in, 7, seed)
		collectEqualsBuildViewEverywhere(t, fmt.Sprintf("tree-%d", seed), in, p, []int{0, 1, 2, 3, 5})
	}
}

func TestCollectEqualsBuildViewOnCycles(t *testing.T) {
	for _, n := range []int{3, 4, 9, 16} {
		in := core.NewInstance(lcp.Cycle(n))
		p := core.RandomProof(in, 3, int64(n))
		collectEqualsBuildViewEverywhere(t, fmt.Sprintf("cycle-%d", n), in, p, []int{0, 1, 2, n / 2, n})
	}
}

func TestCollectEqualsBuildViewOnRegularGraphs(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *lcp.Graph
	}{
		{"petersen", lcp.Petersen()},
		{"hypercube-3", lcp.Hypercube(3)},
		{"complete-6", lcp.Complete(6)},
		{"k33", lcp.CompleteBipartite(3, 3)},
	} {
		in := core.NewInstance(tc.g)
		p := core.RandomProof(in, 5, 7)
		collectEqualsBuildViewEverywhere(t, tc.name, in, p, []int{0, 1, 2, 4})
	}
}

// TestCollectEqualsBuildViewWithFullLabelling exercises every input
// channel at once: node labels, solution-marked edges, weights, and a
// global constant must all arrive by message passing.
func TestCollectEqualsBuildViewWithFullLabelling(t *testing.T) {
	g := lcp.Grid(3, 4)
	in := core.NewInstance(g).SetNodeLabel(1, core.LabelS).SetNodeLabel(12, core.LabelT)
	in.MarkEdge(1, 2)
	in.MarkEdge(5, 6)
	in.Weights = map[graph.Edge]int64{}
	for i, e := range g.Edges() {
		in.Weights[e] = int64(3*i + 1)
	}
	in.Global = core.Global{"k": 4}
	p := core.RandomProof(in, 9, 3)
	collectEqualsBuildViewEverywhere(t, "grid-labelled", in, p, []int{0, 1, 2, 3})
}

// TestCollectEqualsBuildViewDirected checks that information crosses arcs
// in both directions (the communication graph is the underlying
// undirected graph) while the view keeps its arcs directed.
func TestCollectEqualsBuildViewDirected(t *testing.T) {
	b := lcp.NewDirectedBuilder()
	for i := 1; i < 8; i++ {
		b.AddEdge(i, i+1)
	}
	b.AddEdge(8, 1).AddEdge(3, 1).AddEdge(5, 2)
	in := core.NewInstance(b.Graph()).SetNodeLabel(1, core.LabelS).SetNodeLabel(8, core.LabelT)
	p := core.RandomProof(in, 4, 11)
	collectEqualsBuildViewEverywhere(t, "directed", in, p, []int{0, 1, 2, 4})
}

// TestCollectSchedulerVariants re-runs the same collection under every
// scheduler configuration; the assembled views must not depend on the
// synchronization strategy.
func TestCollectSchedulerVariants(t *testing.T) {
	in := core.NewInstance(lcp.RandomConnected(18, 0.2, 5))
	p := core.RandomProof(in, 6, 5)
	want := core.BuildView(in, p, in.G.Nodes()[3], 2)
	for _, opt := range []dist.Options{
		{},
		{FreeRunning: true},
		{PortBuffer: 8},
		{FreeRunning: true, PortBuffer: 1}, // backpressure: sends may block, must still terminate
		{Fanout: 1},
		{Fanout: -1},
		{Sharded: true},
		{Sharded: true, Shards: 4},
		{Sharded: true, Shards: 4, FreeRunning: true},
		{Sharded: true, Shards: 4, Partitioner: partition.BFSChunks{}},
		{Sharded: true, Shards: 4, FreeRunning: true, Partitioner: partition.GreedyBalanced{}},
	} {
		got := dist.CollectWith(in, p, want.Center, 2, opt)
		viewsEqual(t, fmt.Sprintf("opts=%+v", opt), got, want)
	}
}

// resultsEqual asserts verdict-for-verdict agreement, including the
// derived views of the Result API.
func resultsEqual(t *testing.T, ctx string, got, want *core.Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Outputs, want.Outputs) {
		t.Fatalf("%s: outputs differ:\n got %v\nwant %v", ctx, got.Outputs, want.Outputs)
	}
	if got.Accepted() != want.Accepted() {
		t.Fatalf("%s: acceptance differs", ctx)
	}
	if !reflect.DeepEqual(got.Rejectors(), want.Rejectors()) {
		t.Fatalf("%s: rejectors differ: %v vs %v", ctx, got.Rejectors(), want.Rejectors())
	}
}

// checkAllRunners runs every execution strategy — sequential reference,
// goroutine-per-node message passing, sharded message passing (several
// shard counts, so shard boundaries fall inside the instance; every
// partitioner, lockstep and free-running, so arbitrary node→shard
// assignments are exercised catalog-wide), and the parallel shared-view
// pool — and demands identical results.
func checkAllRunners(t *testing.T, ctx string, in *core.Instance, p core.Proof, v core.Verifier) {
	t.Helper()
	want := core.Check(in, p, v)
	got, err := dist.Check(in, p, v)
	if err != nil {
		t.Fatalf("%s: dist.Check: %v", ctx, err)
	}
	resultsEqual(t, ctx+" [message-passing]", got, want)
	for _, opt := range []dist.Options{
		{Sharded: true},            // GOMAXPROCS shards, contiguous default
		{Sharded: true, Shards: 3}, // cross-shard ports guaranteed for n > 3
		{Sharded: true, Shards: 3, Partitioner: partition.BFSChunks{}},
		{Sharded: true, Shards: 3, Partitioner: partition.GreedyBalanced{}},
		{Sharded: true, Shards: 3, FreeRunning: true},
		{Sharded: true, Shards: 3, FreeRunning: true, Partitioner: partition.BFSChunks{}},
		{Sharded: true, Shards: 3, FreeRunning: true, Partitioner: partition.GreedyBalanced{}},
	} {
		sres, err := dist.CheckWith(in, p, v, opt)
		if err != nil {
			t.Fatalf("%s: sharded opts=%+v: %v", ctx, opt, err)
		}
		resultsEqual(t, fmt.Sprintf("%s [sharded opts=%+v]", ctx, opt), sres, want)
	}
	resultsEqual(t, ctx+" [parallel-views]", dist.CheckParallelViews(in, p, v), want)
}

// TestCheckAgreesWithCoreAcrossCatalog sweeps every scheme in the root
// catalog: honest proofs on yes-instances, tampered honest proofs, and
// random proofs on no-instances.
func TestCheckAgreesWithCoreAcrossCatalog(t *testing.T) {
	const n = 14
	for _, exp := range lcp.Catalog() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			t.Parallel()
			size := n
			if size < exp.MinN {
				size = exp.MinN
			}
			v := exp.Scheme.Verifier()
			in := exp.MakeYes(size, 1)
			p, err := exp.Scheme.Prove(in)
			if err != nil {
				t.Fatalf("prove yes-instance: %v", err)
			}
			checkAllRunners(t, "honest", in, p, v)
			// Tampered honest proofs: verdicts may flip, runners must
			// still agree node-for-node.
			for seed := int64(0); seed < 3; seed++ {
				checkAllRunners(t, fmt.Sprintf("tampered-%d", seed), in, core.FlipBit(p, seed), v)
			}
			// Truncation: the adversarial "too-small proof".
			checkAllRunners(t, "truncated", in, p.Truncated(1), v)
			if exp.MakeNo != nil {
				no := exp.MakeNo(size, 2)
				checkAllRunners(t, "no-empty-proof", no, core.Proof{}, v)
				for _, bits := range []int{1, 16} {
					checkAllRunners(t, fmt.Sprintf("no-random-%d", bits), no, core.RandomProof(no, bits, 9), v)
				}
			}
		})
	}
}

// TestCheckSchedulerVariants: the verdict map is invariant under every
// scheduler configuration, on an instance where some nodes reject.
func TestCheckSchedulerVariants(t *testing.T) {
	in := core.NewInstance(lcp.Cycle(16)) // even cycle
	v := lcp.OddNScheme().Verifier()      // odd-n verifier: must reject somewhere
	p := core.RandomProof(in, 8, 4)
	want := core.Check(in, p, v)
	if want.Accepted() {
		t.Fatal("setup: random odd-n proof unexpectedly accepted on even cycle")
	}
	for _, opt := range []dist.Options{
		{},
		{FreeRunning: true},
		{FreeRunning: true, PortBuffer: 1},
		{Fanout: 1, PortBuffer: 4},
		{Fanout: -1},
		{Workers: 1},
		{Workers: 3},
		{Sharded: true},
		{Sharded: true, Shards: 1},
		{Sharded: true, Shards: 5},
		{Sharded: true, Shards: 5, FreeRunning: true},
		{Sharded: true, Shards: 5, FreeRunning: true, PortBuffer: 1},
		{Sharded: true, Shards: 5, FreeRunning: true, PortBuffer: 8},
		{Sharded: true, Shards: 5, Partitioner: partition.BFSChunks{}},
		{Sharded: true, Shards: 5, Partitioner: partition.GreedyBalanced{}},
		{Sharded: true, Shards: 5, FreeRunning: true, PortBuffer: 1, Partitioner: partition.BFSChunks{}},
		{Sharded: true, Shards: 5, FreeRunning: true, Partitioner: partition.GreedyBalanced{}},
	} {
		got, err := dist.CheckWith(in, p, v, opt)
		if err != nil {
			t.Fatalf("opts=%+v: %v", opt, err)
		}
		resultsEqual(t, fmt.Sprintf("opts=%+v", opt), got, want)
		resultsEqual(t, fmt.Sprintf("pv opts=%+v", opt), dist.CheckParallelViewsWith(in, p, v, opt), want)
	}
}

// TestCheckRadiusZero: a radius-0 verifier needs no communication rounds
// but must still see its own proof, label, and incident edges.
func TestCheckRadiusZero(t *testing.T) {
	in := core.NewInstance(lcp.Path(6)).SetNodeLabel(3, core.LabelLeader)
	p := core.RandomProof(in, 2, 1)
	v := core.VerifierFunc{R: 0, F: func(w *core.View) bool {
		// Accept iff the center is the leader or carries a proof bit 1.
		if w.Label(w.Center) == core.LabelLeader {
			return true
		}
		s := w.ProofOf(w.Center)
		return s.Len() > 0 && s.Bit(0)
	}}
	checkAllRunners(t, "radius-0", in, p, v)
	collectEqualsBuildViewEverywhere(t, "radius-0", in, p, []int{0})
}

// TestCheckNegativeRadius: a (pathological) negative verifier radius
// floods zero rounds but must surface the raw radius in the view, so all
// three runners still agree with core.Check.
func TestCheckNegativeRadius(t *testing.T) {
	in := core.NewInstance(lcp.Cycle(5))
	v := core.VerifierFunc{R: -1, F: func(w *core.View) bool { return w.Radius >= 0 }}
	checkAllRunners(t, "negative-radius", in, core.Proof{}, v)
}

// TestCheckEmptyAndNilInputs: degenerate inputs must not wedge the
// network.
func TestCheckEmptyAndNilInputs(t *testing.T) {
	if _, err := dist.Check(nil, nil, lcp.BipartiteScheme().Verifier()); err == nil {
		t.Error("nil instance: want error")
	}
	in := core.NewInstance(lcp.Cycle(4))
	if _, err := dist.Check(in, nil, nil); err == nil {
		t.Error("nil verifier: want error")
	}
	// Nil proof is the empty proof.
	checkAllRunners(t, "nil-proof", in, nil, lcp.BipartiteScheme().Verifier())
}

// TestCheckRecoversVerifierPanic: a panic inside one node goroutine must
// surface as an error, not crash the process.
func TestCheckRecoversVerifierPanic(t *testing.T) {
	in := core.NewInstance(lcp.Cycle(8))
	v := core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		if w.Center == 5 {
			panic("node 5 misbehaves")
		}
		return true
	}}
	if _, err := dist.Check(in, core.Proof{}, v); err == nil {
		t.Error("want panic surfaced as error")
	}
}

// TestCheckDisconnectedGraph: flooding stops at component boundaries, so
// views never leak across components.
func TestCheckDisconnectedGraph(t *testing.T) {
	g := lcp.DisjointUnion(lcp.Cycle(5), lcp.Cycle(6).ShiftIDs(10))
	in := core.NewInstance(g)
	p := core.RandomProof(in, 4, 2)
	collectEqualsBuildViewEverywhere(t, "disconnected", in, p, []int{1, 3, 7})
	checkAllRunners(t, "disconnected", in, p, lcp.OddNScheme().Verifier())
}

// TestCollectUnknownCenterPanics mirrors core.BuildView's contract.
func TestCollectUnknownCenterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for unknown center")
		}
	}()
	dist.Collect(core.NewInstance(lcp.Cycle(4)), nil, 99, 1)
}
