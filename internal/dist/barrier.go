package dist

import (
	"sync"
	"sync/atomic"
)

// barrier is a reusable round barrier: await blocks until all n
// participants have arrived, then releases them together and resets for
// the next round. The runtime uses one barrier per network, re-awaited
// once per communication round, so the goroutine-per-node automata stay
// in lockstep without allocating per-round synchronization state.
//
// The barrier doubles as the runtime's cancellation point. An outside
// watcher (network.run's context watcher) may poison it at any moment;
// the poison is sampled exactly once per round, by whichever participant
// trips the barrier, and the sampled decision is published to every
// participant of that round. All n automata therefore agree on the round
// at which to abort — the property that keeps a cancelled run from
// deadlocking: a node that stopped flooding while a neighbour still
// expects its round-r batch would block that neighbour forever.
type barrier struct {
	mu    sync.Mutex
	cond  sync.Cond
	n     int
	count int
	phase uint64 // incremented each time the barrier trips (sense reversal)
	// poisoned is the asynchronous stop request; stop is the per-phase
	// consensus decision derived from it, written by the tripping
	// participant before the broadcast and read by every awaiter under
	// the mutex after release.
	poisoned atomic.Bool
	stop     bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond.L = &b.mu
	return b
}

// poison requests a coordinated stop: the next time the barrier trips,
// every participant's await returns true. Safe to call from any
// goroutine at any time.
func (b *barrier) poison() { b.poisoned.Store(true) }

// reset clears a previous run's poison. Callers must guarantee no
// goroutine is at or approaching the barrier (network.run joins every
// worker of the previous run before returning).
func (b *barrier) reset() {
	b.poisoned.Store(false)
	b.stop = false
}

// await blocks until n participants (including the caller) have reached
// the barrier for the current phase, and reports whether the run was
// poisoned: the return value is identical for every participant of the
// phase, so either all of them continue to the next round or all of
// them abort.
func (b *barrier) await() bool {
	b.mu.Lock()
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.stop = b.poisoned.Load()
		b.phase++
		b.cond.Broadcast()
		stop := b.stop
		b.mu.Unlock()
		return stop
	}
	for b.phase == phase {
		b.cond.Wait()
	}
	stop := b.stop
	b.mu.Unlock()
	return stop
}
