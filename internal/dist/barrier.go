package dist

import "sync"

// barrier is a reusable round barrier: await blocks until all n
// participants have arrived, then releases them together and resets for
// the next round. The runtime uses one barrier per network, re-awaited
// once per communication round, so the goroutine-per-node automata stay
// in lockstep without allocating per-round synchronization state.
type barrier struct {
	mu    sync.Mutex
	cond  sync.Cond
	n     int
	count int
	phase uint64 // incremented each time the barrier trips (sense reversal)
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond.L = &b.mu
	return b
}

// await blocks until n participants (including the caller) have reached
// the barrier for the current phase.
func (b *barrier) await() {
	b.mu.Lock()
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for b.phase == phase {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
