package dist_test

// Sanity checks on the runtime's round/message accounting: on a cycle
// the wiring is fully known, so the deltas a run contributes to the
// process-wide counters are exact. The assertions mirror the paper's
// complexity measures — a radius-r verifier costs exactly r rounds, and
// each round delivers one batch per directed communication link.
//
// These tests read global counters, so they must not run in parallel
// with other tests that drive the dist runtime (they don't call
// t.Parallel, and Go runs non-parallel tests of a package sequentially).

import (
	"testing"

	"lcp"
	"lcp/internal/core"
	"lcp/internal/dist"
	"lcp/internal/partition"
)

func TestMetricsPerNodeCycle(t *testing.T) {
	const n, r = 12, 3
	in := core.NewInstance(lcp.Cycle(n))
	v := core.VerifierFunc{R: r, F: func(*core.View) bool { return true }}

	before := dist.Metrics()
	if _, err := dist.Check(in, nil, v); err != nil {
		t.Fatal(err)
	}
	after := dist.Metrics()

	if got := after.Runs - before.Runs; got != 1 {
		t.Errorf("runs delta = %v, want 1", got)
	}
	if got := after.Rounds - before.Rounds; got != r {
		t.Errorf("rounds delta = %v, want %d", got, r)
	}
	// A cycle has n undirected edges = 2n directed ports; every port
	// carries one batch per round, and the per-node layout has no
	// same-shard links at all.
	if got := after.CrossShardDeliveries - before.CrossShardDeliveries; got != 2*n*r {
		t.Errorf("cross-shard deliveries delta = %v, want %d", got, 2*n*r)
	}
	if got := after.SameShardDeliveries - before.SameShardDeliveries; got != 0 {
		t.Errorf("same-shard deliveries delta = %v, want 0", got)
	}
}

func TestMetricsShardedCycle(t *testing.T) {
	const n, r = 12, 2
	in := core.NewInstance(lcp.Cycle(n))
	v := core.VerifierFunc{R: r, F: func(*core.View) bool { return true }}
	opt := dist.Options{Sharded: true, Shards: 2, Partitioner: partition.Contiguous{}}

	before := dist.Metrics()
	if _, err := dist.CheckWith(in, nil, v, opt); err != nil {
		t.Fatal(err)
	}
	after := dist.Metrics()

	if got := after.Runs - before.Runs; got != 1 {
		t.Errorf("runs delta = %v, want 1", got)
	}
	if got := after.Rounds - before.Rounds; got != r {
		t.Errorf("rounds delta = %v, want %d", got, r)
	}
	// A contiguous 2-way split of a cycle cuts exactly 2 undirected
	// edges (4 directed ports); the remaining n-2 edges stay inside a
	// shard (2n-4 directed merge links).
	if got := after.CrossShardDeliveries - before.CrossShardDeliveries; got != 4*r {
		t.Errorf("cross-shard deliveries delta = %v, want %d", got, 4*r)
	}
	if got := after.SameShardDeliveries - before.SameShardDeliveries; got != (2*n-4)*r {
		t.Errorf("same-shard deliveries delta = %v, want %d", got, (2*n-4)*r)
	}
}
