package dist

import (
	"fmt"
	"sync"

	"lcp/internal/core"
)

// Network is a long-lived instance of the message-passing runtime: the
// node automata, port channels and round barrier are wired once per
// instance and then re-checked against many proofs. Construction is the
// expensive part of a run (per-node state, one channel per directed
// port); Check only swaps the proof bits into the round-0 records and
// floods, so repeated verification of the same graph amortizes the
// wiring — the engine's message-passing path and cmd/lcpserve both sit
// on top of this type.
type Network struct {
	in  *core.Instance
	opt Options

	mu  sync.Mutex // one run at a time; the wiring is single-occupancy
	net *network   // nil after Close
}

// NewNetwork wires a reusable network for the instance. The options fix
// the scheduler configuration for every subsequent run.
func NewNetwork(in *core.Instance, opt Options) (*Network, error) {
	if in == nil || in.G == nil {
		return nil, fmt.Errorf("dist: nil instance")
	}
	nw := &Network{in: in, opt: opt}
	if in.G.N() > 0 {
		nw.net = buildNetwork(in, opt)
	}
	return nw, nil
}

// Instance returns the instance the network was wired for.
func (nw *Network) Instance() *core.Instance { return nw.in }

// Check runs the verifier against the proof on the prewired network.
// Verdicts are identical to a fresh dist.Check (and hence to
// core.Check). Concurrent calls serialize: the wiring carries one run
// at a time.
func (nw *Network) Check(p core.Proof, v core.Verifier) (*core.Result, error) {
	if v == nil {
		return nil, fmt.Errorf("dist: nil verifier")
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.in.G.N() == 0 {
		return &core.Result{Outputs: map[int]bool{}}, nil
	}
	if nw.net == nil {
		return nil, fmt.Errorf("dist: network is closed")
	}
	return nw.net.run(nw.in, p, v, nw.opt)
}

// Close releases the node automata back to the runtime's pool. The
// network must not be checked again afterwards.
func (nw *Network) Close() {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.net != nil {
		nw.net.release()
		nw.net = nil
	}
}
