package dist

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"lcp/internal/core"
)

// Network is a long-lived instance of the message-passing runtime: node
// automata, port channels and round barrier are wired once per instance
// and then re-checked against many proofs. Construction is the expensive
// part of a run (per-node state, one channel per cross-shard directed
// port); Check only swaps the proof bits into the round-0 records and
// floods, so repeated verification of the same graph amortizes the
// wiring — the engine's message-passing path and cmd/lcpserve both sit
// on top of this type.
//
// A wiring is single-occupancy (one run at a time), but Check never
// serializes callers on it: when the idle wirings run out, an extra one
// is built on the spot (cheap thanks to the node pool) and up to
// maxIdleWirings are kept for reuse afterwards. Concurrent checks of the
// same instance therefore scale to the caller's concurrency instead of
// queueing on a mutex.
type Network struct {
	in  *core.Instance
	opt Options

	// sem bounds in-flight runs — and with them the wirings built:
	// beyond a small multiple of GOMAXPROCS extra wirings cannot make
	// progress, they only multiply the O(n+m) automaton-and-channel
	// footprint per concurrent caller. Callers over the bound wait for
	// a wiring to come back instead of building another.
	sem chan struct{}

	mu     sync.Mutex
	closed bool
	idle   []*network // wirings ready for the next run
}

// maxIdleWirings bounds how many idle wirings a Network retains between
// checks: GOMAXPROCS, because that is the useful concurrency of CPU-
// bound runs — callers beyond it gain nothing from extra wirings, while
// anything below it would make steady-state concurrent checks rebuild
// wirings every wave on exactly the path the pool amortizes. Surplus
// wirings drain back into the node pool.
func maxIdleWirings() int {
	return runtime.GOMAXPROCS(0)
}

// maxLiveWirings bounds the in-flight runs of one Network (each run
// owns one wiring): twice the useful concurrency leaves headroom for
// runs finishing while new ones start, without letting a request burst
// inflate memory by a wiring per caller.
func maxLiveWirings() int {
	return 2 * runtime.GOMAXPROCS(0)
}

// NewNetwork wires a reusable network for the instance. The options fix
// the scheduler configuration for every subsequent run.
func NewNetwork(in *core.Instance, opt Options) (*Network, error) {
	if in == nil || in.G == nil {
		return nil, fmt.Errorf("dist: nil instance")
	}
	nw := &Network{in: in, opt: opt, sem: make(chan struct{}, maxLiveWirings())}
	if in.G.N() > 0 {
		net, err := buildNetwork(in, opt)
		if err != nil {
			return nil, err
		}
		nw.idle = append(nw.idle, net)
	}
	return nw, nil
}

// Instance returns the instance the network was wired for.
func (nw *Network) Instance() *core.Instance { return nw.in }

// Check runs the verifier against the proof on a prewired network.
// Verdicts are identical to a fresh dist.CheckWith under the same
// options (and hence to core.Check). Concurrent calls do not serialize:
// each run gets its own wiring, built on demand when the idle ones are
// taken.
func (nw *Network) Check(p core.Proof, v core.Verifier) (*core.Result, error) {
	//lint:ignore ctxflow ctx-less Check is the documented uncancellable entry point; CheckCtx is the threaded variant
	return nw.CheckCtx(context.Background(), p, v)
}

// CheckCtx is Check with context cancellation: lockstep runs abort
// between communication rounds (the watcher poisons the round barrier,
// so every automaton stops after the same round and the wiring stays
// reusable) and return ctx.Err(). Free-running runs flood to completion
// and honor the context only at run boundaries.
func (nw *Network) CheckCtx(ctx context.Context, p core.Proof, v core.Verifier) (*core.Result, error) {
	if v == nil {
		return nil, fmt.Errorf("dist: nil verifier")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if nw.in.G.N() == 0 {
		return &core.Result{Outputs: map[int]bool{}}, nil
	}
	select {
	case nw.sem <- struct{}{}: // bound live wirings; waits out a burst
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	net, err := nw.acquire()
	if err != nil {
		<-nw.sem
		return nil, err
	}
	res, err := net.run(ctx, nw.in, p, v, nw.opt)
	nw.put(net)
	<-nw.sem
	return res, err
}

func (nw *Network) acquire() (*network, error) {
	nw.mu.Lock()
	if nw.closed {
		nw.mu.Unlock()
		return nil, fmt.Errorf("dist: network is closed")
	}
	if n := len(nw.idle); n > 0 {
		net := nw.idle[n-1]
		nw.idle = nw.idle[:n-1]
		nw.mu.Unlock()
		return net, nil
	}
	nw.mu.Unlock()
	// Build outside the lock: wiring is the expensive part, and cold
	// concurrent checks must not serialize on it. A Close racing the
	// build is harmless — put() releases the wiring instead of pooling
	// it.
	return buildNetwork(nw.in, nw.opt)
}

func (nw *Network) put(net *network) {
	nw.mu.Lock()
	if !nw.closed && len(nw.idle) < maxIdleWirings() {
		nw.idle = append(nw.idle, net)
		nw.mu.Unlock()
		return
	}
	nw.mu.Unlock()
	net.release()
}

// Close releases the idle wirings back to the runtime's pool; wirings of
// in-flight checks follow as those checks return. The network must not
// be checked again afterwards.
func (nw *Network) Close() {
	nw.mu.Lock()
	idle := nw.idle
	nw.idle = nil
	nw.closed = true
	nw.mu.Unlock()
	for _, net := range idle {
		net.release()
	}
}
