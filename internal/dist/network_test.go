package dist_test

// Tests for the reusable Network entry point: one wiring, many proofs,
// verdicts always identical to core.Check.

import (
	"fmt"
	"sync"
	"testing"

	"lcp"
	"lcp/internal/core"
	"lcp/internal/dist"
)

func TestNetworkReusedAcrossProofs(t *testing.T) {
	in := lcp.NewInstance(lcp.Cycle(15))
	scheme := lcp.OddNScheme()
	honest, err := scheme.Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	v := scheme.Verifier()
	nw, err := dist.NewNetwork(in, dist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	proofs := []core.Proof{honest, nil, core.Proof{}, honest.Truncated(1)}
	for seed := int64(0); seed < 6; seed++ {
		proofs = append(proofs, core.FlipBit(honest, seed), core.RandomProof(in, 5, seed))
	}
	for i, p := range proofs {
		want := core.Check(in, p, v)
		got, err := nw.Check(p, v)
		if err != nil {
			t.Fatalf("proof %d: %v", i, err)
		}
		resultsEqual(t, fmt.Sprintf("reused run %d", i), got, want)
	}
}

func TestNetworkReusedAcrossVerifierRadii(t *testing.T) {
	// The same wiring must serve verifiers of different radii: the round
	// count is a per-run parameter, not part of the network.
	in := lcp.NewInstance(lcp.RandomConnected(14, 0.25, 3))
	p := core.RandomProof(in, 4, 1)
	nw, err := dist.NewNetwork(in, dist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	for _, r := range []int{0, 1, 3, 2, 0, 5} {
		v := core.VerifierFunc{R: r, F: func(w *core.View) bool {
			return w.Radius == r && w.G.N() == len(w.Dist)
		}}
		want := core.Check(in, p, v)
		got, err := nw.Check(p, v)
		if err != nil {
			t.Fatalf("radius %d: %v", r, err)
		}
		resultsEqual(t, fmt.Sprintf("radius %d", r), got, want)
	}
}

func TestNetworkSchedulerVariants(t *testing.T) {
	in := lcp.NewInstance(lcp.Grid(4, 4))
	p := core.RandomProof(in, 6, 2)
	v := lcp.BipartiteScheme().Verifier()
	want := core.Check(in, p, v)
	for _, opt := range []dist.Options{
		{},
		{FreeRunning: true},
		{FreeRunning: true, PortBuffer: 1},
		{Fanout: 1},
	} {
		nw, err := dist.NewNetwork(in, opt)
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 3; run++ {
			got, err := nw.Check(p, v)
			if err != nil {
				t.Fatalf("opts=%+v run %d: %v", opt, run, err)
			}
			resultsEqual(t, fmt.Sprintf("opts=%+v run %d", opt, run), got, want)
		}
		nw.Close()
	}
}

func TestNetworkConcurrentChecks(t *testing.T) {
	// Concurrent callers serialize on the wiring but must each get the
	// verdict for their own proof.
	in := lcp.NewInstance(lcp.Cycle(9))
	scheme := lcp.OddNScheme()
	honest, err := scheme.Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	v := scheme.Verifier()
	nw, err := dist.NewNetwork(in, dist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := honest
			if i%2 == 1 {
				p = core.FlipBit(honest, int64(i))
			}
			want := core.Check(in, p, v)
			got, err := nw.Check(p, v)
			if err != nil {
				errs <- err
				return
			}
			if got.Accepted() != want.Accepted() {
				errs <- fmt.Errorf("goroutine %d: acceptance mismatch", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestNetworkDegenerateInputs(t *testing.T) {
	if _, err := dist.NewNetwork(nil, dist.Options{}); err == nil {
		t.Error("nil instance: want error")
	}
	nw, err := dist.NewNetwork(lcp.NewInstance(lcp.NewBuilder().Graph()), dist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Check(core.Proof{}, lcp.BipartiteScheme().Verifier())
	if err != nil || len(res.Outputs) != 0 {
		t.Errorf("empty graph: got %v, %v", res, err)
	}
	if _, err := nw.Check(nil, nil); err == nil {
		t.Error("nil verifier: want error")
	}
	nw.Close()
	if _, err := nw.Check(core.Proof{}, lcp.BipartiteScheme().Verifier()); err != nil {
		t.Errorf("closed empty network: empty result expected, got error %v", err)
	}
}

func TestNetworkCheckAfterCloseErrors(t *testing.T) {
	nw, err := dist.NewNetwork(lcp.NewInstance(lcp.Cycle(4)), dist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nw.Close()
	if _, err := nw.Check(core.Proof{}, lcp.BipartiteScheme().Verifier()); err == nil {
		t.Error("check after close: want error")
	}
}
