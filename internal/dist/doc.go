// Package dist is the LOCAL-model runtime for locally checkable proofs
// (Göös & Suomela, PODC 2011): it executes the verifiers of package core
// on a synchronous message-passing network.
//
// Execution follows the model of §2.1 literally. Every node starts
// knowing only its own identifier, proof string, input labels and
// incident edges. In each communication round it sends what it learned in
// the previous round to all neighbours and merges what arrives; after r
// rounds it has assembled exactly the radius-r view (G[v,r], P[v,r], v)
// and decides locally. Collect is therefore observationally equivalent to
// core.BuildView and Check to core.Check — a property the tests assert —
// but the information only ever travels along edges.
//
// Two execution layouts run the same protocol:
//
//   - goroutine-per-node (the default): one goroutine per node, one
//     channel per directed port — the faithful reading of "a network of
//     independent processors";
//   - sharded (Options.Sharded): the node automata are batched onto
//     O(GOMAXPROCS) shard goroutines; same-shard delivery is a direct
//     merge with no channel, only cross-shard edges keep ports, and the
//     round barrier shrinks from n participants to one per shard. This
//     is the throughput layout once n ≫ GOMAXPROCS.
//
// Together with the shared-memory foils that sidestep message passing
// entirely, four execution strategies are benchmarked at the repository
// root (BenchmarkAblationViewConstruction):
//
//   - core.Check: sequential BFS views (the reference runner);
//   - CheckParallelViews: a worker pool over BFS views, sized by
//     GOMAXPROCS — the fast path when the whole instance lives in one
//     address space;
//   - Check: the goroutine-per-node message-passing runtime;
//   - CheckWith{Sharded: true}: the sharded message-passing runtime.
//
// The scheduler is tunable via Options: sharding (count and on/off), a
// bounded fan-out for the local decision phase, a reusable round barrier
// (or free-running α-synchronization via per-port message counting), and
// per-port, per-round message buffers. The reusable Network type wires a
// network once per instance and re-checks it against many proofs; it
// keeps a small pool of wirings so concurrent checks do not serialize.
//
// Regardless of layout, each node assembles its view incrementally: the
// induced edges of the ball are collected as records arrive (see
// node.learn) and the ball graph is frozen through graph.FromParts, so
// the per-node induced-subgraph rebuild that used to dominate the
// decision phase is amortized into the flooding rounds.
package dist
