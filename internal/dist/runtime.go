package dist

import (
	"fmt"
	"sort"
	"sync"

	"lcp/internal/bitstr"
	"lcp/internal/core"
	"lcp/internal/graph"
)

// The message-passing machinery: a network of one goroutine per node,
// channels as ports, and round-synchronized flooding that assembles each
// node's radius-r view incrementally. Nothing in this file calls
// core.BuildView — views are reconstructed purely from what arrived over
// the wires (plus the globally known input, which the model hands to
// every node up front).

// record is the unit of knowledge flooded through the network: everything
// a single node knows at round 0 — its identifier, proof string, input
// label, and incident edges with their labels and weights. Records are
// immutable once built, so forwarding shares them freely across ports.
type record struct {
	id       int
	proof    bitstr.String
	hasProof bool
	label    string
	hasLabel bool
	edges    []edgeRec
}

// edgeRec is one incident edge as the owning node sees it: the edge key
// exactly as the frozen graph stores it (normalized for undirected
// graphs, the ordered arc for directed ones) plus its input labelling.
type edgeRec struct {
	e         graph.Edge
	label     string
	hasLabel  bool
	weight    int64
	hasWeight bool
}

// batch is the per-round message payload on one port: the records the
// sender learned in the previous round. An empty batch still gets sent —
// message counting is what keeps the rounds synchronized.
type batch []record

// initialRecord builds node v's round-0 knowledge from the instance,
// except for the proof string, which changes between runs of a reusable
// network and is injected by node.seed. The edges slice is appended onto
// buf so a pooled node reuses its previous backing array.
func initialRecord(in *core.Instance, v int, buf []edgeRec) record {
	rec := record{id: v, edges: buf[:0]}
	if l, ok := in.NodeLabel[v]; ok {
		rec.label, rec.hasLabel = l, true
	}
	addEdge := func(e graph.Edge) {
		er := edgeRec{e: e}
		if l, ok := in.EdgeLabel[e]; ok {
			er.label, er.hasLabel = l, true
		}
		if w, ok := in.Weights[e]; ok {
			er.weight, er.hasWeight = w, true
		}
		rec.edges = append(rec.edges, er)
	}
	if in.G.Directed() {
		for _, w := range in.G.Neighbors(v) {
			addEdge(graph.Edge{U: v, V: w})
		}
		for _, w := range in.G.InNeighbors(v) {
			addEdge(graph.Edge{U: w, V: v})
		}
	} else {
		for _, w := range in.G.Neighbors(v) {
			addEdge(graph.NormEdge(v, w))
		}
	}
	return rec
}

// node is the per-goroutine automaton state.
type node struct {
	id    int
	base  record         // round-0 knowledge minus the proof (constant across runs)
	in    []<-chan batch // one port per communication neighbour
	out   []chan<- batch
	known map[int]record // id -> record, everything learned so far
	dist  map[int]int    // id -> round of first arrival (= BFS distance)
	// cur is the batch to send this round (learned last round); next
	// accumulates this round's discoveries. The two swap every round so
	// message buffers are reused instead of reallocated (safe in
	// lockstep mode: a batch is fully drained before the barrier trips).
	cur, next batch
}

// nodePool recycles node automata — and with them the record edge
// slices, batch buffers, port slices, and knowledge maps — across runs.
// One-shot runners (Check, Collect) return their nodes after the
// verdicts are in; reusable Networks hold on to theirs until Close.
var nodePool = sync.Pool{New: func() any { return new(node) }}

func newNode(in *core.Instance, id int) *node {
	nd := nodePool.Get().(*node)
	nd.id = id
	nd.base = initialRecord(in, id, nd.base.edges)
	if nd.known == nil {
		nd.known = make(map[int]record)
		nd.dist = make(map[int]int)
	}
	return nd
}

// seed resets the automaton for a fresh run with the given proof: the
// knowledge maps shrink back to the node's own record (now carrying its
// proof string) and the message buffers rewind without reallocating.
func (nd *node) seed(p core.Proof) {
	rec := nd.base
	if s, ok := p[nd.id]; ok {
		rec.proof, rec.hasProof = s, true
	}
	clear(nd.known)
	clear(nd.dist)
	nd.known[nd.id] = rec
	nd.dist[nd.id] = 0
	nd.cur = append(nd.cur[:0], rec)
	nd.next = nd.next[:0]
}

// release returns the node to the pool. Callers must guarantee that no
// goroutine of the finished run still touches it (verdicts collected,
// waitgroups drained): pooled nodes are handed to unrelated networks.
func (nd *node) release() {
	clear(nd.known)
	clear(nd.dist)
	clear(nd.cur)
	clear(nd.next)
	nd.cur, nd.next = nd.cur[:0], nd.next[:0]
	clear(nd.in)
	clear(nd.out)
	nd.in, nd.out = nd.in[:0], nd.out[:0]
	nodePool.Put(nd)
}

// flood runs the synchronous flooding protocol for the given number of
// rounds. Each round: send the previous round's discoveries on every
// port, receive exactly one batch per port, merge first-arrivals. When
// bar is non-nil every round ends at the reusable global barrier; when
// nil, per-port message counting alone keeps rounds aligned
// (α-synchronization), and batches are freshly allocated because a slow
// receiver may still hold the previous round's slice.
func (nd *node) flood(rounds int, bar *barrier) {
	for r := 1; r <= rounds; r++ {
		for _, port := range nd.out {
			port <- nd.cur
		}
		if bar != nil {
			// Reuse the already-drained previous buffer.
			nd.next = nd.next[:0]
		} else {
			nd.next = nil
		}
		for _, port := range nd.in {
			for _, rec := range <-port {
				if _, seen := nd.known[rec.id]; !seen {
					nd.known[rec.id] = rec
					nd.dist[rec.id] = r
					nd.next = append(nd.next, rec)
				}
			}
		}
		nd.cur, nd.next = nd.next, nd.cur
		if bar != nil {
			bar.await()
		}
	}
}

// assemble reconstructs the radius-r view from flooded knowledge. The
// instance is consulted only for model-level conventions that every node
// knows a priori: the graph kind, the globally shared input in.Global,
// and whether the instance carries node/edge labellings at all (the
// nil-map conventions BuildView mirrors into the view).
func (nd *node) assemble(in *core.Instance, radius int) *core.View {
	ids := make([]int, 0, len(nd.known))
	for id := range nd.known {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	b := graph.NewBuilder(in.G.Kind())
	for _, id := range ids {
		b.AddNode(id)
	}
	// Collect the induced edges: every incident edge reported by a ball
	// member whose other endpoint is also in the ball. Both endpoints
	// report each edge, so dedupe on the edge key.
	kept := make(map[graph.Edge]edgeRec)
	for _, id := range ids {
		for _, er := range nd.known[id].edges {
			if _, inBallU := nd.known[er.e.U]; !inBallU {
				continue
			}
			if _, inBallV := nd.known[er.e.V]; !inBallV {
				continue
			}
			if _, dup := kept[er.e]; !dup {
				kept[er.e] = er
				b.AddEdge(er.e.U, er.e.V)
			}
		}
	}

	w := &core.View{
		Center: nd.id,
		Radius: radius,
		G:      b.Graph(),
		Dist:   make(map[int]int, len(nd.dist)),
		Proof:  make(core.Proof, len(ids)),
		Global: in.Global,
	}
	for id, d := range nd.dist {
		w.Dist[id] = d
	}
	for _, id := range ids {
		rec := nd.known[id]
		if rec.hasProof {
			w.Proof[id] = rec.proof
		}
	}
	if in.NodeLabel != nil {
		w.NodeLabel = make(map[int]string)
		for _, id := range ids {
			if rec := nd.known[id]; rec.hasLabel {
				w.NodeLabel[id] = rec.label
			}
		}
	}
	if in.EdgeLabel != nil || in.Weights != nil {
		w.EdgeLabel = make(map[graph.Edge]string)
		w.Weights = make(map[graph.Edge]int64)
		for e, er := range kept {
			if er.hasLabel {
				w.EdgeLabel[e] = er.label
			}
			if er.hasWeight {
				w.Weights[e] = er.weight
			}
		}
	}
	return w
}

// network wires one node automaton per graph vertex with a dedicated
// channel per directed port (u → v for every communication edge). The
// wiring is proof-free: each run seeds the nodes with the proof under
// test, so one network serves arbitrarily many proofs.
type network struct {
	nodes []*node
	bar   *barrier // nil in free-running mode
}

func buildNetwork(in *core.Instance, opt Options) *network {
	ids := in.G.Nodes()
	net := &network{nodes: make([]*node, len(ids))}
	byID := make(map[int]*node, len(ids))
	for i, id := range ids {
		net.nodes[i] = newNode(in, id)
		byID[id] = net.nodes[i]
	}
	buf := opt.portBuffer()
	for _, nd := range net.nodes {
		for _, w := range in.G.UndirectedNeighbors(nd.id) {
			ch := make(chan batch, buf)
			nd.out = append(nd.out, ch)
			byID[w].in = append(byID[w].in, ch)
		}
	}
	if !opt.FreeRunning {
		net.bar = newBarrier(len(ids))
	}
	return net
}

// release returns every node automaton to the pool. Only one-shot
// runners call this; a reusable Network keeps its wiring alive.
func (net *network) release() {
	for _, nd := range net.nodes {
		nd.release()
	}
	net.nodes = nil
}

// run executes one complete verification pass: seed every node with the
// proof, flood for the verifier's radius, assemble views, decide. The
// network is reusable immediately afterwards — all ports are drained
// when the verdicts are in.
func (net *network) run(in *core.Instance, p core.Proof, v core.Verifier, opt Options) (*core.Result, error) {
	res := &core.Result{Outputs: make(map[int]bool, len(net.nodes))}
	radius := v.Radius()
	rounds := radius
	if rounds < 0 {
		rounds = 0
	}
	for _, nd := range net.nodes {
		nd.seed(p)
	}
	verdicts := make(chan nodeVerdict, len(net.nodes))
	var sem chan struct{}
	if k := opt.fanout(); k > 0 {
		sem = make(chan struct{}, k)
	}
	for _, nd := range net.nodes {
		go func(nd *node) {
			nd.flood(rounds, net.bar)
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			out := nodeVerdict{id: nd.id}
			defer func() {
				if r := recover(); r != nil {
					out.err = fmt.Errorf("dist: verifier panicked at node %d: %v", nd.id, r)
				}
				verdicts <- out
			}()
			out.ok = v.Verify(nd.assemble(in, radius))
		}(nd)
	}
	var firstErr error
	for range net.nodes {
		nv := <-verdicts
		if nv.err != nil && firstErr == nil {
			firstErr = nv.err
		}
		res.Outputs[nv.id] = nv.ok
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}
