package dist

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lcp/internal/core"
	"lcp/internal/graph"
	"lcp/internal/obs"
	"lcp/internal/partition"
	"lcp/internal/transport"
)

// The message-passing machinery: a network of node automata, channels as
// ports, and round-synchronized flooding that assembles each node's
// radius-r view incrementally. Nothing in this file calls core.BuildView
// — views are reconstructed purely from what arrived over the wires
// (plus the globally known input, which the model hands to every node up
// front).
//
// Two execution layouts share the automata. In goroutine-per-node mode
// every node runs on its own goroutine and every directed port is a
// channel. In sharded mode (Options.Sharded) the nodes are batched onto
// a small number of shard goroutines; delivery between same-shard nodes
// is a direct merge into the neighbour's automaton — no channel — and
// only cross-shard edges keep their ports. See shard.go.

// record is the unit of knowledge flooded through the network: everything
// a single node knows at round 0 — its identifier, proof string, input
// label, and incident edges with their labels and weights. Records are
// immutable once built, so forwarding shares them freely across ports.
//
// The type lives in internal/transport — it is also what the wire
// format of the multi-process transports serializes — and the scheduler
// aliases it, so handing a batch to a Transport is free: no conversion,
// no copy, the exact slices the channel ports carry.
type record = transport.Record

// edgeRec is one incident edge as the owning node sees it: the edge key
// exactly as the frozen graph stores it (normalized for undirected
// graphs, the ordered arc for directed ones) plus its input labelling.
type edgeRec = transport.EdgeRec

// batch is the per-round message payload on one port: the records the
// sender learned in the previous round. An empty batch still gets sent —
// message counting is what keeps the rounds synchronized.
type batch = transport.Batch

// initialRecord builds node v's round-0 knowledge from the instance,
// except for the proof string, which changes between runs of a reusable
// network and is injected by node.seed. The edges slice is appended onto
// buf so a pooled node reuses its previous backing array.
func initialRecord(in *core.Instance, v int, buf []edgeRec) record {
	rec := record{ID: v, Edges: buf[:0]}
	if l, ok := in.NodeLabel[v]; ok {
		rec.Label, rec.HasLabel = l, true
	}
	addEdge := func(e graph.Edge) {
		er := edgeRec{E: e}
		if l, ok := in.EdgeLabel[e]; ok {
			er.Label, er.HasLabel = l, true
		}
		if w, ok := in.Weights[e]; ok {
			er.Weight, er.HasWeight = w, true
		}
		rec.Edges = append(rec.Edges, er)
	}
	if in.G.Directed() {
		for _, w := range in.G.Neighbors(v) {
			addEdge(graph.Edge{U: v, V: w})
		}
		for _, w := range in.G.InNeighbors(v) {
			addEdge(graph.Edge{U: w, V: v})
		}
	} else {
		for _, w := range in.G.Neighbors(v) {
			addEdge(graph.NormEdge(v, w))
		}
	}
	return rec
}

// node is the per-automaton state: the unit of execution in
// goroutine-per-node mode, one entry of a shard's work list in sharded
// mode.
type node struct {
	id      int
	carrier bool           // floods but never decides (Options.DecideOnly)
	base    record         // round-0 knowledge minus the proof (constant across runs)
	in      []<-chan batch // one port per cross-shard communication neighbour
	out     []chan<- batch
	local   []*node        // sharded mode: same-shard neighbours, merged into directly
	known   map[int]record // id -> record, everything learned so far
	dist    map[int]int    // id -> round of first arrival (= BFS distance)
	// indEdges accumulates the ball's induced edges incrementally: an
	// edge is appended exactly once, the moment the record of its second
	// endpoint merges (both endpoints report every incident edge, so the
	// later arrival finds the earlier one in known). assemble therefore
	// never rescans the knowledge map for edges, which used to dominate
	// the per-node view rebuild.
	indEdges []edgeRec
	// cur is the batch to send this round (learned last round); next
	// accumulates this round's discoveries. The two swap every round so
	// message buffers are reused instead of reallocated (safe in
	// lockstep mode: a batch is fully drained before the barrier trips).
	cur, next batch
	// ring holds the per-round batch buffers of the free-running
	// sharded layout, indexed by the shard's round counter modulo the
	// ring length. Without a barrier a two-buffer swap is unsafe (a
	// neighbouring shard may still be reading a batch sent several
	// rounds ago), but a ring of portBuffer+2 buffers is — see the
	// cooling argument at floodShardFreeRunning.
	ring []batch
}

// nodePool recycles node automata — and with them the record edge
// slices, batch buffers, port slices, and knowledge maps — across runs.
// One-shot runners (Check, Collect) return their nodes after the
// verdicts are in; reusable Networks hold on to theirs until Close.
var nodePool = sync.Pool{New: func() any { return new(node) }}

func newNode(in *core.Instance, id int) *node {
	//lint:ignore poolput ownership transfer: the run that wired this node returns it via node.release (one-shot runners after the verdict, Networks on Close)
	nd := nodePool.Get().(*node)
	nd.id = id
	nd.base = initialRecord(in, id, nd.base.Edges)
	if nd.known == nil {
		nd.known = make(map[int]record)
		nd.dist = make(map[int]int)
	}
	return nd
}

// seed resets the automaton for a fresh run with the given proof: the
// knowledge maps shrink back to the node's own record (now carrying its
// proof string) and the message buffers rewind without reallocating.
func (nd *node) seed(p core.Proof) {
	rec := nd.base
	if s, ok := p[nd.id]; ok {
		rec.Proof, rec.HasProof = s, true
	}
	clear(nd.known)
	clear(nd.dist)
	nd.known[nd.id] = rec
	nd.dist[nd.id] = 0
	nd.indEdges = nd.indEdges[:0]
	nd.cur = append(nd.cur[:0], rec)
	nd.next = nd.next[:0]
}

// release returns the node to the pool. Callers must guarantee that no
// goroutine of the finished run still touches it (verdicts collected,
// waitgroups drained): pooled nodes are handed to unrelated networks.
func (nd *node) release() {
	clear(nd.known)
	clear(nd.dist)
	clear(nd.indEdges)
	nd.indEdges = nd.indEdges[:0]
	clear(nd.cur)
	clear(nd.next)
	nd.cur, nd.next = nd.cur[:0], nd.next[:0]
	for i := range nd.ring {
		clear(nd.ring[i])
		nd.ring[i] = nd.ring[i][:0]
	}
	clear(nd.in)
	clear(nd.out)
	nd.in, nd.out = nd.in[:0], nd.out[:0]
	clear(nd.local)
	nd.local = nd.local[:0]
	nd.carrier = false
	nodePool.Put(nd)
}

// merge folds one received batch into the automaton: first arrivals are
// learned, duplicates (the same record racing in over several ports)
// are dropped.
func (nd *node) merge(b batch, round int) {
	for _, rec := range b {
		if _, seen := nd.known[rec.ID]; !seen {
			nd.learn(rec, round)
		}
	}
}

// learn records a first arrival: the record joins the knowledge maps and
// the next outgoing batch, and every incident edge whose other endpoint
// is already known joins the induced edge list. Each induced edge is
// reported by both endpoints and arrivals are sequential per automaton,
// so exactly the second endpoint's merge appends it — no dedupe map.
func (nd *node) learn(rec record, round int) {
	nd.known[rec.ID] = rec
	nd.dist[rec.ID] = round
	nd.next = append(nd.next, rec)
	for _, er := range rec.Edges {
		other := er.E.U + er.E.V - rec.ID
		if _, inBall := nd.known[other]; inBall && other != rec.ID {
			nd.indEdges = append(nd.indEdges, er)
		}
	}
}

// flood runs the synchronous flooding protocol for the given number of
// rounds on a dedicated goroutine. Each round: send the previous round's
// discoveries on every port, receive exactly one batch per port, merge
// first-arrivals. When bar is non-nil every round ends at the reusable
// global barrier; when nil, per-port message counting alone keeps rounds
// aligned (α-synchronization), and batches are freshly allocated because
// a slow receiver may still hold the previous round's slice.
//
// flood reports whether the run was aborted by a poisoned barrier (a
// cancelled context): the barrier publishes the same decision to every
// participant, so all automata stop after the same round with every
// port drained — no goroutine is left blocked on a neighbour that quit.
// Free-running mode has no barrier and always floods to completion.
func (nd *node) flood(rounds int, bar *barrier) bool {
	for r := 1; r <= rounds; r++ {
		for _, port := range nd.out {
			port <- nd.cur
		}
		if bar != nil {
			// Reuse the already-drained previous buffer.
			nd.next = nd.next[:0]
		} else {
			nd.next = nil
		}
		for _, port := range nd.in {
			nd.merge(<-port, r)
		}
		nd.cur, nd.next = nd.next, nd.cur
		if bar != nil && bar.await() {
			return true
		}
	}
	return false
}

// assemble reconstructs the radius-r view from flooded knowledge. The
// instance is consulted only for model-level conventions that every node
// knows a priori: the graph kind, the globally shared input in.Global,
// and whether the instance carries node/edge labellings at all (the
// nil-map conventions BuildView mirrors into the view). The ball graph
// is frozen through graph.FromParts — the sorted id list plus the
// incrementally collected induced edges — instead of a Builder, so the
// per-node rebuild no longer pays for node/edge dedupe maps.
func (nd *node) assemble(in *core.Instance, radius int) *core.View {
	ids := make([]int, 0, len(nd.known))
	for id := range nd.known {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	edges := make([]graph.Edge, len(nd.indEdges))
	for i, er := range nd.indEdges {
		edges[i] = er.E
	}

	w := &core.View{
		Center: nd.id,
		Radius: radius,
		G:      graph.FromParts(in.G.Kind(), ids, edges),
		Dist:   make(map[int]int, len(nd.dist)),
		Proof:  make(core.Proof, len(ids)),
		Global: in.Global,
	}
	for id, d := range nd.dist {
		w.Dist[id] = d
	}
	for _, id := range ids {
		rec := nd.known[id]
		if rec.HasProof {
			w.Proof[id] = rec.Proof
		}
	}
	if in.NodeLabel != nil {
		w.NodeLabel = make(map[int]string)
		for _, id := range ids {
			if rec := nd.known[id]; rec.HasLabel {
				w.NodeLabel[id] = rec.Label
			}
		}
	}
	if in.EdgeLabel != nil || in.Weights != nil {
		w.EdgeLabel = make(map[graph.Edge]string)
		w.Weights = make(map[graph.Edge]int64)
		for _, er := range nd.indEdges {
			if er.HasLabel {
				w.EdgeLabel[er.E] = er.Label
			}
			if er.HasWeight {
				w.Weights[er.E] = er.Weight
			}
		}
	}
	return w
}

// network wires one node automaton per graph vertex. In
// goroutine-per-node mode every directed port (u → v for every
// communication edge) is a dedicated channel; in sharded mode the nodes
// are additionally grouped into shard work lists by the configured
// partitioner's node→shard assignment — any assignment works, same-
// shard delivery stays a direct merge and only cross-shard edges get
// channels — and the wiring pool above sees no difference. The wiring
// is proof-free: each run seeds the nodes with the proof under test, so
// one network serves arbitrarily many proofs.
type network struct {
	nodes    []*node
	deciders int       // nodes that assemble + verify (all unless DecideOnly)
	shards   [][]*node // non-nil iff Options.Sharded; partition of nodes
	bar      *barrier  // nil in free-running mode
	ringLen  int       // free-running sharded batch ring length (portBuffer+2)
	// crossPorts and localLinks fix the per-round delivery counts for
	// this wiring: every port carries one batch per round, every local
	// link merges once per round. countRun multiplies them by the round
	// count, so the flooding loops never touch a counter.
	crossPorts int // directed channel ports
	localLinks int // directed same-shard merge links
}

func buildNetwork(in *core.Instance, opt Options) (*network, error) {
	ids := in.G.Nodes()
	// Resolve the shard assignment before any node is drawn from the
	// pool, so an invalid custom partitioner costs nothing to reject.
	// assign[i] is the shard owning ids[i]; nil when not sharded.
	var assign []int
	if shards := opt.shardCount(len(ids)); shards > 0 {
		assign = opt.partitioner().Assign(in.G, shards)
		if err := partition.Validate(assign, len(ids), shards); err != nil {
			return nil, fmt.Errorf("dist: partitioner %q: %v", opt.partitioner().Name(), err)
		}
	}
	net := &network{nodes: make([]*node, len(ids)), deciders: len(ids)}
	byID := make(map[int]*node, len(ids))
	for i, id := range ids {
		net.nodes[i] = newNode(in, id)
		byID[id] = net.nodes[i]
	}
	if opt.DecideOnly != nil {
		for _, nd := range net.nodes {
			nd.carrier = true
		}
		net.deciders = 0
		for _, id := range opt.DecideOnly {
			if nd := byID[id]; nd != nil && nd.carrier {
				nd.carrier = false
				net.deciders++
			}
		}
	}
	if assign != nil {
		net.shards = make([][]*node, opt.shardCount(len(ids)))
		for i, nd := range net.nodes {
			net.shards[assign[i]] = append(net.shards[assign[i]], nd)
		}
		net.ringLen = opt.portBuffer() + 2
	}
	buf := opt.portBuffer()
	for i, nd := range net.nodes {
		for _, w := range in.G.UndirectedNeighbors(nd.id) {
			if assign != nil && assign[in.G.Index(w)] == assign[i] {
				// Same shard: deliver by direct merge, no channel.
				nd.local = append(nd.local, byID[w])
				net.localLinks++
				continue
			}
			ch := make(chan batch, buf)
			nd.out = append(nd.out, ch)
			byID[w].in = append(byID[w].in, ch)
			net.crossPorts++
		}
	}
	if !opt.FreeRunning {
		participants := len(ids)
		if net.shards != nil {
			participants = len(net.shards)
		}
		net.bar = newBarrier(participants)
	}
	return net, nil
}

// release returns every node automaton to the pool. Only one-shot
// runners call this; a reusable Network keeps its wiring alive.
func (net *network) release() {
	for _, nd := range net.nodes {
		nd.release()
	}
	net.nodes = nil
	net.shards = nil
}

// errRunAborted marks verdicts of a run stopped by a poisoned barrier;
// run translates it into the cancelling context's error.
var errRunAborted = errors.New("dist: run cancelled")

// run executes one complete verification pass: seed every node with the
// proof, flood for the verifier's radius, assemble views, decide. Every
// worker goroutine — including carriers, which report no verdict — is
// joined before returning, so the network is reusable (or releasable)
// immediately afterwards: all ports are drained and no goroutine of
// this run still touches a node automaton.
//
// A cancellable ctx (Done() != nil) is watched by a helper goroutine
// that poisons the round barrier, so lockstep runs abort between
// rounds and return ctx.Err() instead of flooding to completion.
// Free-running runs have no barrier to poison and run to completion —
// cancellation there is honored only at run boundaries.
func (net *network) run(ctx context.Context, in *core.Instance, p core.Proof, v core.Verifier, opt Options) (*core.Result, error) {
	radius := v.Radius()
	rounds := radius
	if rounds < 0 {
		rounds = 0
	}
	tl := obs.TimelineFrom(ctx)
	stopSeed := tl.Start("dist.seed")
	for _, nd := range net.nodes {
		nd.seed(p)
	}
	stopSeed()
	if net.bar != nil {
		net.bar.reset()
		if ctx != nil && ctx.Done() != nil {
			watchDone := make(chan struct{})
			watcherExited := make(chan struct{})
			go func() {
				defer close(watcherExited)
				select {
				case <-ctx.Done():
					net.bar.poison()
				case <-watchDone:
				}
			}()
			// Join the watcher before returning: a cancellation arriving
			// during the decide phase must land its poison before this
			// run ends, not after a pooled reuse of the wiring has reset
			// the barrier — a stale poison would spuriously abort the
			// next, uncancelled run.
			defer func() {
				close(watchDone)
				<-watcherExited
			}()
		}
	}
	// Deciders never block sending: the channel holds every verdict.
	verdicts := make(chan nodeVerdict, net.deciders)
	var wg sync.WaitGroup
	// floodNS, when a timeline is watching, collects the slowest worker's
	// flood time — the critical path of the parallel phase. Workers only
	// read the clock when the pointer is non-nil, so unobserved runs (and
	// every benchmark) skip even that.
	var floodNS *atomic.Int64
	if tl != nil {
		floodNS = new(atomic.Int64)
	}
	stopRun := tl.Start("dist.run")
	if net.shards != nil {
		net.runSharded(in, radius, rounds, v, verdicts, &wg, floodNS)
	} else {
		net.runPerNode(in, radius, rounds, v, opt, verdicts, &wg, floodNS)
	}
	res := &core.Result{Outputs: make(map[int]bool, net.deciders)}
	var firstErr error
	for i := 0; i < net.deciders; i++ {
		nv := <-verdicts
		if nv.err != nil && firstErr == nil {
			firstErr = nv.err
		}
		res.Outputs[nv.id] = nv.ok
	}
	wg.Wait()
	stopRun()
	if tl != nil {
		tl.Observe("dist.flood", time.Duration(floodNS.Load()))
	}
	aborted := errors.Is(firstErr, errRunAborted)
	countRun(net, rounds, aborted)
	if aborted {
		if ctx != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, firstErr
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

// runPerNode is the goroutine-per-node execution layout: every automaton
// floods and decides on its own goroutine, with the decision phase
// throttled by the fan-out semaphore. An aborted flood still reports a
// verdict per decider — carrying errRunAborted instead of a decision —
// so run's collection loop always drains exactly net.deciders entries.
func (net *network) runPerNode(in *core.Instance, radius, rounds int, v core.Verifier, opt Options, verdicts chan<- nodeVerdict, wg *sync.WaitGroup, floodNS *atomic.Int64) {
	var sem chan struct{}
	if k := opt.fanout(); k > 0 {
		sem = make(chan struct{}, k)
	}
	wg.Add(len(net.nodes))
	for _, nd := range net.nodes {
		go func(nd *node) {
			defer wg.Done()
			var t0 time.Time
			if floodNS != nil {
				t0 = time.Now()
			}
			aborted := nd.flood(rounds, net.bar)
			if floodNS != nil {
				storeMax(floodNS, int64(time.Since(t0)))
			}
			if nd.carrier {
				return
			}
			if aborted {
				verdicts <- nodeVerdict{id: nd.id, err: errRunAborted}
				return
			}
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			verdicts <- decide(nd, in, radius, v)
		}(nd)
	}
}

// decide assembles one node's view and runs the verifier, converting a
// verifier panic into a per-node error instead of killing the process.
func decide(nd *node, in *core.Instance, radius int, v core.Verifier) (out nodeVerdict) {
	out.id = nd.id
	defer func() {
		if r := recover(); r != nil {
			out.err = fmt.Errorf("dist: verifier panicked at node %d: %v", nd.id, r)
		}
	}()
	out.ok = v.Verify(nd.assemble(in, radius))
	return out
}

// collect floods the already-seeded network and assembles the view of
// center. It is Collect's engine under both execution layouts.
func (net *network) collect(in *core.Instance, center, radius int) *core.View {
	rounds := radius
	if rounds < 0 {
		rounds = 0
	}
	var view *core.View
	var wg sync.WaitGroup
	if net.shards != nil {
		for _, group := range net.shards {
			wg.Add(1)
			go func(group []*node) {
				defer wg.Done()
				floodShard(group, rounds, net.bar, net.ringLen)
				for _, nd := range group {
					if nd.id == center {
						view = nd.assemble(in, radius)
					}
				}
			}(group)
		}
	} else {
		for _, nd := range net.nodes {
			wg.Add(1)
			go func(nd *node) {
				defer wg.Done()
				nd.flood(rounds, net.bar)
				if nd.id == center {
					view = nd.assemble(in, radius)
				}
			}(nd)
		}
	}
	wg.Wait()
	return view
}
