package dist_test

// The transport-backed runner's contract: CheckTransport (the sharded
// four-phase round executed over transport.InProc) is verdict-identical
// to core.Check across the whole catalog — honest, tampered, and
// truncated proofs, every partitioner, shard counts that force real
// cut-edge traffic — and cancellation unblocks the whole group within
// bounded time instead of deadlocking a gate.

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"lcp"
	"lcp/internal/core"
	"lcp/internal/dist"
	"lcp/internal/partition"
)

func TestCheckTransportMatchesCoreOnCatalog(t *testing.T) {
	const n = 12
	ctx := context.Background()
	partitioners := []partition.Partitioner{partition.Contiguous{}, partition.BFSChunks{}}
	for _, exp := range lcp.Catalog() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			t.Parallel()
			size := n
			if size < exp.MinN {
				size = exp.MinN
			}
			in := exp.MakeYes(size, 1)
			honest, err := exp.Scheme.Prove(in)
			if err != nil {
				t.Fatalf("prove: %v", err)
			}
			v := exp.Scheme.Verifier()
			proofs := []core.Proof{honest, core.FlipBit(honest, 0), honest.Truncated(1)}
			labels := []string{"honest", "tampered", "truncated"}
			for pi, p := range proofs {
				want := core.Check(in, p, v)
				for _, shards := range []int{1, 3, 4} {
					for _, pt := range partitioners {
						got, err := dist.CheckTransport(ctx, in, p, v, shards, pt)
						if err != nil {
							t.Fatalf("%s/%d-shards/%s: %v", labels[pi], shards, pt.Name(), err)
						}
						if !reflect.DeepEqual(got.Outputs, want.Outputs) {
							t.Fatalf("%s/%d-shards/%s: outputs differ:\n got %v\nwant %v",
								labels[pi], shards, pt.Name(), got.Outputs, want.Outputs)
						}
					}
				}
			}
		})
	}
}

// TestCheckTransportCancellation: a cancelled context aborts the group
// between rounds with the context's error, promptly, on every shard.
func TestCheckTransportCancellation(t *testing.T) {
	exp := widestExperiment(t)
	in := exp.MakeYes(64, 1)
	p, err := exp.Scheme.Prove(in)
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() {
		_, err := dist.CheckTransport(ctx, in, p, exp.Scheme.Verifier(), 4, partition.BFSChunks{})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled transport check succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled transport check hung")
	}
}

// widestExperiment picks the catalog experiment with the largest
// verifier radius, so multi-round flooding (and with it mid-run
// cancellation windows) actually happens.
func widestExperiment(t *testing.T) lcp.Experiment {
	t.Helper()
	var best lcp.Experiment
	bestR := -1
	for _, exp := range lcp.Catalog() {
		if r := exp.Scheme.Verifier().Radius(); r > bestR {
			best, bestR = exp, r
		}
	}
	if bestR < 1 {
		t.Fatal("catalog has no scheme with radius >= 1")
	}
	return best
}

// TestCheckTransportPropagatesVerifierPanic: a panicking verifier on
// one shard becomes an error for the whole check, and the poisoned
// group still unwinds every other shard.
func TestCheckTransportPropagatesVerifierPanic(t *testing.T) {
	exp := widestExperiment(t)
	in := exp.MakeYes(24, 1)
	p, err := exp.Scheme.Prove(in)
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	bomb := core.VerifierFunc{
		R: exp.Scheme.Verifier().Radius(),
		F: func(w *core.View) bool { panic(fmt.Sprintf("bomb at %d", w.Center)) },
	}
	if _, err := dist.CheckTransport(context.Background(), in, p, bomb, 3, nil); err == nil {
		t.Fatal("panicking verifier produced no error")
	}
}
