package serve_test

// httptest integration tests for the lcpserve HTTP surface: instance
// registration, one-shot documents, single checks, a 100-proof batch,
// and the streaming NDJSON endpoint with early exit.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"lcp"
	"lcp/internal/config"
	"lcp/internal/core"
	"lcp/internal/dist"
	"lcp/internal/serve"
	"lcp/internal/textio"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(serve.New(lcp.BuiltinSchemes(), config.Config{Runtimes: 2}))
	t.Cleanup(ts.Close)
	return ts
}

func docText(t *testing.T, in *core.Instance, schemeName string, p core.Proof) string {
	t.Helper()
	var buf bytes.Buffer
	if err := textio.Write(&buf, &textio.Document{Instance: in, Proof: p, SchemeName: schemeName}); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func postJSON(t *testing.T, url string, req any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func registerInstance(t *testing.T, ts *httptest.Server, doc string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/instances", "text/plain", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("register: status %d: %s", resp.StatusCode, body)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.ID == "" {
		t.Fatal("register: empty id")
	}
	return info.ID
}

func proofWire(p core.Proof) map[string]string {
	out := make(map[string]string, len(p))
	for id, s := range p {
		out[strconv.Itoa(id)] = s.String()
	}
	return out
}

// TestServeDistributedBatchConcurrentShards is the -race stress test of
// concurrent shard checks inside a single serve request: one
// /check/batch with distributed=true fans its proofs out over the
// engine's sharded dist runtimes concurrently (each proof's shards also
// flood in parallel, on the sharded scheduler), so the whole wiring pool
// and the shard barriers are exercised under contention. Verdicts must
// match the sequential reference proof-for-proof.
func TestServeDistributedBatchConcurrentShards(t *testing.T) {
	ts := httptest.NewServer(serve.New(lcp.BuiltinSchemes(), config.Config{
		Workers:  4,
		Runtimes: 3,
		Dist:     dist.Options{Sharded: true, Shards: 2},
	}))
	t.Cleanup(ts.Close)

	in := lcp.NewInstance(lcp.Cycle(21))
	scheme := lcp.OddNScheme()
	p, err := scheme.Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	id := registerInstance(t, ts, docText(t, in, "odd-n", nil))

	const batch = 24
	proofs := make([]map[string]string, batch)
	want := make([]bool, batch)
	for i := range proofs {
		proof := p
		if i%3 != 0 {
			proof = core.FlipBit(p, int64(i))
		}
		proofs[i] = proofWire(proof)
		want[i] = core.Check(in, proof, scheme.Verifier()).Accepted()
	}

	resp, body := postJSON(t, ts.URL+"/check/batch", map[string]any{
		"instance":    id,
		"proofs":      proofs,
		"distributed": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Results []struct {
			Accepted bool `json:"accepted"`
		} `json:"results"`
		Checked int `json:"checked"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Checked != batch || len(out.Results) != batch {
		t.Fatalf("checked %d of %d", out.Checked, batch)
	}
	for i, res := range out.Results {
		if res.Accepted != want[i] {
			t.Errorf("proofs[%d]: accepted=%v, reference says %v", i, res.Accepted, want[i])
		}
	}
}

func TestServeCheckRegisteredInstance(t *testing.T) {
	ts := newTestServer(t)
	in := lcp.NewInstance(lcp.Cycle(16))
	scheme := lcp.BipartiteScheme()
	p, err := scheme.Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	id := registerInstance(t, ts, docText(t, in, "bipartite", nil))

	for _, distributed := range []bool{false, true} {
		resp, body := postJSON(t, ts.URL+"/check", map[string]any{
			"instance":    id,
			"proof":       proofWire(p),
			"distributed": distributed,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("distributed=%v: status %d: %s", distributed, resp.StatusCode, body)
		}
		var out struct {
			Accepted  bool  `json:"accepted"`
			Nodes     int   `json:"nodes"`
			ProofBits int   `json:"proof_bits"`
			Rejectors []int `json:"rejectors"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if !out.Accepted || out.Nodes != 16 || out.ProofBits != 1 || len(out.Rejectors) != 0 {
			t.Fatalf("distributed=%v: unexpected verdict %+v", distributed, out)
		}
	}

	// A tampered proof must be rejected with the same rejectors the
	// sequential reference reports.
	bad := core.FlipBit(p, 3)
	want := core.Check(in, bad, scheme.Verifier())
	resp, body := postJSON(t, ts.URL+"/check", map[string]any{
		"instance": id, "proof": proofWire(bad),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Accepted  bool  `json:"accepted"`
		Rejectors []int `json:"rejectors"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Accepted {
		t.Fatal("tampered proof accepted")
	}
	if fmt.Sprint(out.Rejectors) != fmt.Sprint(want.Rejectors()) {
		t.Fatalf("rejectors %v, want %v", out.Rejectors, want.Rejectors())
	}
}

func TestServeCheckInlineDocumentAndProve(t *testing.T) {
	ts := newTestServer(t)
	in := lcp.NewInstance(lcp.Cycle(9))
	doc := docText(t, in, "odd-n", nil)

	// Prove over the wire...
	resp, body := postJSON(t, ts.URL+"/prove", map[string]any{"document": doc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prove: status %d: %s", resp.StatusCode, body)
	}
	var proved struct {
		Proof       map[string]string `json:"proof"`
		BitsPerNode int               `json:"bits_per_node"`
	}
	if err := json.Unmarshal(body, &proved); err != nil {
		t.Fatal(err)
	}
	if len(proved.Proof) == 0 {
		t.Fatal("prove returned no proof")
	}
	// ...and check the returned proof against the same inline document.
	resp, body = postJSON(t, ts.URL+"/check", map[string]any{
		"document": doc, "proof": proved.Proof,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check: status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Accepted bool `json:"accepted"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Accepted {
		t.Fatalf("honest odd-n proof rejected: %s", body)
	}
}

// TestServeBatchHundredProofs is the acceptance-criteria test: one
// registered instance, 100 proofs over HTTP in a single batch, verdicts
// matching the sequential reference element-wise.
func TestServeBatchHundredProofs(t *testing.T) {
	ts := newTestServer(t)
	in := lcp.NewInstance(lcp.Cycle(21))
	scheme := lcp.OddNScheme()
	honest, err := scheme.Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	id := registerInstance(t, ts, docText(t, in, "odd-n", nil))

	proofs := make([]core.Proof, 100)
	wire := make([]map[string]string, 100)
	proofs[0] = honest
	for i := 1; i < 100; i++ {
		proofs[i] = core.FlipBit(honest, int64(i))
	}
	for i, p := range proofs {
		wire[i] = proofWire(p)
	}
	resp, body := postJSON(t, ts.URL+"/check/batch", map[string]any{
		"instance": id, "proofs": wire,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Results []struct {
			Accepted  bool  `json:"accepted"`
			Rejectors []int `json:"rejectors"`
		} `json:"results"`
		Accepted int `json:"accepted"`
		Checked  int `json:"checked"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Checked != 100 || len(out.Results) != 100 {
		t.Fatalf("checked %d results %d, want 100", out.Checked, len(out.Results))
	}
	acceptedWant := 0
	for i, p := range proofs {
		want := core.Check(in, p, scheme.Verifier())
		if want.Accepted() {
			acceptedWant++
		}
		if out.Results[i].Accepted != want.Accepted() {
			t.Fatalf("proofs[%d]: accepted=%v, want %v", i, out.Results[i].Accepted, want.Accepted())
		}
		if fmt.Sprint(out.Results[i].Rejectors) != fmt.Sprint(want.Rejectors()) {
			t.Fatalf("proofs[%d]: rejectors %v, want %v", i, out.Results[i].Rejectors, want.Rejectors())
		}
	}
	if !out.Results[0].Accepted {
		t.Fatal("honest proof rejected in batch")
	}
	if out.Accepted != acceptedWant {
		t.Fatalf("accepted %d, want %d", out.Accepted, acceptedWant)
	}
}

func TestServeStreamNDJSON(t *testing.T) {
	ts := newTestServer(t)
	in := lcp.NewInstance(lcp.Cycle(12))
	p, err := lcp.BipartiteScheme().Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	id := registerInstance(t, ts, docText(t, in, "bipartite", nil))

	body, _ := json.Marshal(map[string]any{"instance": id, "proof": proofWire(p)})
	resp, err := http.Post(ts.URL+"/check/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	seen := map[int]bool{}
	var summary struct {
		Done     bool `json:"done"`
		Accepted bool `json:"accepted"`
		Checked  int  `json:"checked"`
		Nodes    int  `json:"nodes"`
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line struct {
			Node   int  `json:"node"`
			Accept bool `json:"accept"`
			Done   bool `json:"done"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Done {
			if err := json.Unmarshal(sc.Bytes(), &summary); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if !line.Accept {
			t.Fatalf("node %d rejected an honest proof", line.Node)
		}
		seen[line.Node] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 12 || !summary.Done || !summary.Accepted || summary.Checked != 12 || summary.Nodes != 12 {
		t.Fatalf("stream: %d verdicts, summary %+v", len(seen), summary)
	}
}

func TestServeStreamStopOnReject(t *testing.T) {
	ts := newTestServer(t)
	in := lcp.NewInstance(lcp.Cycle(64)) // even cycle: odd-n rejects
	id := registerInstance(t, ts, docText(t, in, "odd-n", nil))

	body, _ := json.Marshal(map[string]any{
		"instance": id, "proof": map[string]string{}, "stop_on_reject": true,
	})
	resp, err := http.Post(ts.URL+"/check/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rejects int
	var summary struct {
		Done         bool `json:"done"`
		Accepted     bool `json:"accepted"`
		Checked      int  `json:"checked"`
		StoppedEarly bool `json:"stopped_early"`
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line struct {
			Accept bool `json:"accept"`
			Done   bool `json:"done"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Done {
			if err := json.Unmarshal(sc.Bytes(), &summary); err != nil {
				t.Fatal(err)
			}
		} else if !line.Accept {
			rejects++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if rejects == 0 || !summary.StoppedEarly || summary.Accepted {
		t.Fatalf("expected early-exit rejection, got rejects=%d summary=%+v", rejects, summary)
	}
	if summary.Checked >= in.G.N() {
		t.Fatalf("stop_on_reject still checked all %d nodes", summary.Checked)
	}
}

// TestServeRejectsMisdirectedFields: a field an endpoint would
// silently ignore is a client bug and must 400, never produce a
// verdict for a proof that was not checked.
func TestServeRejectsMisdirectedFields(t *testing.T) {
	ts := newTestServer(t)
	id := registerInstance(t, ts, docText(t, lcp.NewInstance(lcp.Cycle(5)), "odd-n", nil))
	for _, tc := range []struct {
		endpoint string
		req      map[string]any
	}{
		{"/check/stream", map[string]any{"instance": id, "proof": map[string]string{}, "distributed": true}},
		{"/check", map[string]any{"instance": id, "proofs": []map[string]string{{}}}},
		{"/check", map[string]any{"instance": id, "proof": map[string]string{}, "stop_on_reject": true}},
		{"/check/batch", map[string]any{"instance": id, "proof": map[string]string{}, "proofs": []map[string]string{{}}}},
		{"/check/stream", map[string]any{"instance": id, "proofs": []map[string]string{{}}}},
		{"/prove", map[string]any{"instance": id, "proof": map[string]string{}}},
		{"/prove", map[string]any{"instance": id, "distributed": true}},
		{"/check", map[string]any{"instance": id, "proof": map[string]string{}, "batch_columns": "true"}},
		{"/check/stream", map[string]any{"instance": id, "proof": map[string]string{}, "batch_columns": "auto"}},
		{"/prove", map[string]any{"instance": id, "batch_columns": "true"}},
	} {
		resp, body := postJSON(t, ts.URL+tc.endpoint, tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s %v: status %d: %s", tc.endpoint, tc.req, resp.StatusCode, body)
		}
	}
}

// panicScheme's verifier panics at one node: the server must fail
// closed (reject) rather than let the panic kill a worker goroutine.
type panicScheme struct{}

func (panicScheme) Name() string { return "panicky" }
func (panicScheme) Verifier() core.Verifier {
	return core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		if w.Center == 3 {
			panic("verifier bug")
		}
		return true
	}}
}
func (panicScheme) Prove(in *core.Instance) (core.Proof, error) { return core.Proof{}, nil }

func TestServePanickingVerifierFailsClosed(t *testing.T) {
	ts := httptest.NewServer(serve.New(map[string]core.Scheme{"panicky": panicScheme{}}, config.Config{}))
	t.Cleanup(ts.Close)
	id := registerInstance(t, ts, docText(t, lcp.NewInstance(lcp.Cycle(6)), "panicky", nil))
	for _, endpoint := range []string{"/check", "/check/stream"} {
		resp, body := postJSON(t, ts.URL+endpoint, map[string]any{
			"instance": id, "proof": map[string]string{},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", endpoint, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), `"accept":false`) && !strings.Contains(string(body), `"accepted":false`) {
			t.Fatalf("%s: panicking node did not fail closed: %s", endpoint, body)
		}
	}
	// The daemon is still alive.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("daemon died after panicking verifier: %v", err)
	}
	resp.Body.Close()
}

func TestServeInstanceLifecycleAndErrors(t *testing.T) {
	ts := newTestServer(t)
	id := registerInstance(t, ts, docText(t, lcp.NewInstance(lcp.Cycle(5)), "odd-n", nil))

	// List shows it.
	resp, err := http.Get(ts.URL + "/instances")
	if err != nil {
		t.Fatal(err)
	}
	var list []struct {
		ID    string `json:"id"`
		Nodes int    `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != id || list[0].Nodes != 5 {
		t.Fatalf("list: %+v", list)
	}

	// Schemes endpoint lists the registry.
	resp, err = http.Get(ts.URL + "/schemes")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(names) != len(lcp.BuiltinSchemes()) {
		t.Fatalf("schemes: got %d names, want %d", len(names), len(lcp.BuiltinSchemes()))
	}

	// Delete, then the id is gone.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/instances/"+id, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if resp, body := postJSON(t, ts.URL+"/check", map[string]any{"instance": id}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("check of deleted instance: status %d: %s", resp.StatusCode, body)
	}

	// Error surfaces: bad document, unknown scheme, bad proof bits.
	for _, tc := range []map[string]any{
		{"document": "graph sideways"},
		{"document": "graph undirected\nedge 1 2", "scheme": "no-such-scheme"},
		{"document": "graph undirected\nedge 1 2\nscheme bipartite", "proof": map[string]string{"1": "02"}},
		{"document": "graph undirected\nedge 1 2\nscheme bipartite", "proof": map[string]string{"99": "0"}},
		{},
	} {
		if resp, body := postJSON(t, ts.URL+"/check", tc); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%v: status %d: %s", tc, resp.StatusCode, body)
		}
	}

	// Prove on a no-instance reports the soundness error.
	noDoc := docText(t, lcp.NewInstance(lcp.Cycle(7)), "bipartite", nil) // odd cycle: not bipartite
	if resp, body := postJSON(t, ts.URL+"/prove", map[string]any{"document": noDoc}); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("prove no-instance: status %d: %s", resp.StatusCode, body)
	}
}
