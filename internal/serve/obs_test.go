package serve_test

// Tests for the observability surface: trace-ID propagation through
// headers, contexts and error bodies; the Prometheus exposition at
// GET /metrics (well-formedness, coverage, counter monotonicity); and
// the structured request log.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"lcp"
	"lcp/internal/config"
	"lcp/internal/serve"
)

func getWithHeader(t *testing.T, url, traceID string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if traceID != "" {
		req.Header.Set("X-Trace-Id", traceID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

var hexTraceID = regexp.MustCompile(`^[0-9a-f]{32}$`)

func TestServeTraceIDGenerated(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := getWithHeader(t, ts.URL+"/healthz", "")
	got := resp.Header.Get("X-Trace-Id")
	if !hexTraceID.MatchString(got) {
		t.Fatalf("generated trace ID %q, want 32 hex chars", got)
	}
	resp2, _ := getWithHeader(t, ts.URL+"/healthz", "")
	if again := resp2.Header.Get("X-Trace-Id"); again == got {
		t.Fatalf("two requests share trace ID %q", got)
	}
}

func TestServeTraceIDEchoedEndToEnd(t *testing.T) {
	ts := newTestServer(t)
	in := lcp.NewInstance(lcp.Cycle(6))
	id := registerInstance(t, ts, docText(t, in, "bipartite", nil))

	const trace = "client-supplied.trace_01"
	body, err := json.Marshal(map[string]any{"instance": id, "proof": map[string]string{}})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/check", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != trace {
		t.Fatalf("echoed trace ID %q, want %q", got, trace)
	}

	// An invalid client ID (spaces, too long, ...) is replaced, not echoed.
	resp2, _ := getWithHeader(t, ts.URL+"/healthz", "not a valid trace id!")
	if got := resp2.Header.Get("X-Trace-Id"); !hexTraceID.MatchString(got) {
		t.Fatalf("invalid client trace ID handled as %q, want a fresh 32-hex ID", got)
	}
}

func TestServeTraceIDInErrorBody(t *testing.T) {
	ts := newTestServer(t)
	const trace = "err-trace-42"
	body, err := json.Marshal(map[string]any{"instance": "nope"})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/check", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var errBody struct {
		Error   string `json:"error"`
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(raw, &errBody); err != nil {
		t.Fatal(err)
	}
	if errBody.TraceID != trace {
		t.Fatalf("error body trace_id %q, want %q (body: %s)", errBody.TraceID, trace, raw)
	}
	if resp.Header.Get("X-Trace-Id") != trace {
		t.Fatalf("error response header trace %q, want %q", resp.Header.Get("X-Trace-Id"), trace)
	}
}

var promNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// promScrape is one parsed exposition: the family types and every
// sample (keyed by full series identity: name plus label set).
type promScrape struct {
	types   map[string]string
	samples map[string]float64
}

// parseProm validates the text exposition's well-formedness and
// returns the parsed scrape: every sample line must parse as
// `name{labels} value`, belong to a family declared by a preceding
// # TYPE line, and carry a valid metric name.
func parseProm(t *testing.T, text string) promScrape {
	t.Helper()
	sc := promScrape{types: make(map[string]string), samples: make(map[string]float64)}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found || !promNameRE.MatchString(name) {
				t.Fatalf("malformed HELP line: %q", line)
			}
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, found := strings.Cut(rest, " ")
			if !found || !promNameRE.MatchString(name) {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch kind {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown family type in %q", line)
			}
			sc.types[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line: %q", line)
		}
		// Sample: name[{labels}] value
		series, value, found := cutSample(line)
		if !found {
			t.Fatalf("malformed sample line: %q", line)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
		}
		if !promNameRE.MatchString(name) {
			t.Fatalf("bad metric name in sample %q", line)
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if trimmed, ok := strings.CutSuffix(name, suffix); ok && sc.types[trimmed] == "histogram" {
				family = trimmed
				break
			}
		}
		if _, ok := sc.types[family]; !ok {
			t.Fatalf("sample %q has no preceding # TYPE for family %q", line, family)
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			t.Fatalf("sample %q: bad value: %v", line, err)
		}
		sc.samples[series] = v
	}
	return sc
}

// cutSample splits a sample line at the value separator: the last space
// outside braces (label values may contain spaces).
func cutSample(line string) (series, value string, ok bool) {
	depth := 0
	for i := len(line) - 1; i >= 0; i-- {
		switch line[i] {
		case '}':
			depth++
		case '{':
			depth--
		case ' ':
			if depth == 0 {
				return line[:i], line[i+1:], true
			}
		}
	}
	return "", "", false
}

// family returns the counter family's type for the series key.
func (sc promScrape) familyOf(series string) string {
	name := series
	if i := strings.IndexByte(series, '{'); i >= 0 {
		name = series[:i]
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if trimmed, ok := strings.CutSuffix(name, suffix); ok && sc.types[trimmed] == "histogram" {
			return "histogram"
		}
	}
	return sc.types[name]
}

func scrapeMetrics(t *testing.T, ts *httptest.Server) promScrape {
	t.Helper()
	resp, body := getWithHeader(t, ts.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("GET /metrics content type %q", ct)
	}
	return parseProm(t, string(body))
}

func TestServeMetricsExposition(t *testing.T) {
	ts := newTestServer(t)
	in := lcp.NewInstance(lcp.Cycle(8))
	scheme := lcp.BipartiteScheme()
	p, err := scheme.Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	id := registerInstance(t, ts, docText(t, in, "bipartite", nil))
	check := func(backend string) {
		t.Helper()
		resp, body := postJSON(t, ts.URL+"/check", map[string]any{
			"instance": id, "proof": proofWire(p), "backend": backend,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("check %s: status %d: %s", backend, resp.StatusCode, body)
		}
	}
	check(string(config.BackendEngine))
	check(string(config.BackendEngineDist))
	check(string(config.BackendDist))

	first := scrapeMetrics(t, ts)

	// The acceptance surface: request, engine-cache, and dist
	// round/message metrics all present in one scrape.
	wantSeries := []string{
		`lcp_http_requests_total{route="POST /check",code="200"}`,
		`lcp_uptime_seconds`,
	}
	for _, series := range wantSeries {
		if _, ok := first.samples[series]; !ok {
			t.Errorf("series %q missing from /metrics", series)
		}
	}
	wantFamilies := []string{
		"lcp_http_request_seconds", "lcp_build_info", "lcp_instances",
		"lcp_instances_evicted_total", "lcp_engine_cache_hits_total",
		"lcp_engine_cache_misses_total", "lcp_dist_runs_total",
		"lcp_dist_rounds_total", "lcp_dist_deliveries_total",
		"lcp_checker_checks_total", "lcp_checker_stage_seconds_total",
	}
	for _, fam := range wantFamilies {
		if _, ok := first.types[fam]; !ok {
			t.Errorf("family %q missing from /metrics", fam)
		}
	}

	// Counters are monotone across requests: re-check, re-scrape, and
	// every counter/histogram series present in both scrapes must not
	// have decreased.
	check(string(config.BackendEngine))
	second := scrapeMetrics(t, ts)
	compared := 0
	for series, v1 := range first.samples {
		kind := first.familyOf(series)
		if kind != "counter" && kind != "histogram" {
			continue
		}
		v2, ok := second.samples[series]
		if !ok {
			t.Errorf("series %q vanished between scrapes", series)
			continue
		}
		if v2 < v1 {
			t.Errorf("series %q decreased: %v -> %v", series, v1, v2)
		}
		compared++
	}
	if compared == 0 {
		t.Fatal("no counter series compared between scrapes")
	}
	key := `lcp_http_requests_total{route="POST /check",code="200"}`
	if second.samples[key] != first.samples[key]+1 {
		t.Errorf("%s: %v -> %v, want +1", key, first.samples[key], second.samples[key])
	}
}

// syncBuffer serializes writes so the test can read the log buffer
// while the server may still be logging.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestServeRequestLogging(t *testing.T) {
	logBuf := &syncBuffer{}
	ts := httptest.NewServer(serve.NewWith(lcp.BuiltinSchemes(), config.Config{},
		serve.Config{LogRequests: true, LogWriter: logBuf}))
	t.Cleanup(ts.Close)

	in := lcp.NewInstance(lcp.Cycle(6))
	scheme := lcp.BipartiteScheme()
	p, err := scheme.Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	id := registerInstance(t, ts, docText(t, in, "bipartite", nil))

	send := func(trace string, reqBody map[string]any) {
		t.Helper()
		raw, err := json.Marshal(reqBody)
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/check", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Trace-Id", trace)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	send("log-trace-ok", map[string]any{"instance": id, "proof": proofWire(p)})
	send("log-trace-err", map[string]any{"instance": "missing"})
	// A synchronizing request: by the time its log line is visible, the
	// earlier lines are too (the logger serializes).
	getWithHeader(t, ts.URL+"/healthz", "log-trace-sync")
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(logBuf.String(), "log-trace-sync") {
		if time.Now().After(deadline) {
			t.Fatalf("sync log line never appeared; log so far:\n%s", logBuf.String())
		}
		time.Sleep(time.Millisecond)
	}

	logText := logBuf.String()
	okLine := findLine(logText, "log-trace-ok")
	if okLine == "" {
		t.Fatalf("no log line for successful check; log:\n%s", logText)
	}
	for _, want := range []string{`route="POST /check"`, "status=200", "backend=engine", "verdict=accepted", "dur_ms="} {
		if !strings.Contains(okLine, want) {
			t.Errorf("success line missing %q: %s", want, okLine)
		}
	}
	errLine := findLine(logText, "log-trace-err")
	if errLine == "" {
		t.Fatalf("no log line for failed check; log:\n%s", logText)
	}
	for _, want := range []string{"status=400", `err="unknown instance`} {
		if !strings.Contains(errLine, want) {
			t.Errorf("error line missing %q: %s", want, errLine)
		}
	}
	if got := strings.Count(logText, "log-trace-ok"); got != 1 {
		t.Errorf("successful request logged %d lines, want 1", got)
	}
}

func findLine(text, substr string) string {
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			return line
		}
	}
	return ""
}
