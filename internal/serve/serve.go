package serve

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"lcp"
	"lcp/internal/bitstr"
	"lcp/internal/config"
	"lcp/internal/core"
	"lcp/internal/engine"
	"lcp/internal/obs"
	"lcp/internal/textio"
)

// maxBodyBytes bounds request bodies (instances and proof batches).
const maxBodyBytes = 16 << 20

// Config tunes the server itself, as opposed to the engines it wires
// (engine.Options). The zero value keeps every registered instance
// forever — the pre-eviction behaviour.
type Config struct {
	// MaxInstances bounds the in-memory instance store. When a new
	// registration would exceed it, the least-recently-used instance is
	// evicted: its engine (and every cached view skeleton and wiring
	// inside) becomes garbage once in-flight checks drain, and later
	// requests naming it get a 404 with code "evicted" so clients can
	// distinguish "never existed" from "aged out, re-register it".
	// 0 means unbounded.
	MaxInstances int
	// LogRequests turns on structured request logging: one line per
	// request carrying the trace ID, method, route, status, latency,
	// and — where the handler resolved them — backend, verdict and error
	// message. Errors log under the same trace ID the client received.
	LogRequests bool
	// LogWriter receives the request log lines. nil means os.Stderr.
	LogWriter io.Writer
}

// Server is the HTTP verification service. Create with New; it
// implements http.Handler and is safe for concurrent use.
type Server struct {
	schemes map[string]core.Scheme
	base    config.Config
	cfg     Config
	mux     *http.ServeMux
	// reg is the per-server metrics registry (HTTP histograms, build
	// info, instance-store gauges); GET /metrics serves it followed by
	// the process-wide obs.Default() (checker/engine/dist counters). Two
	// registries keep concurrent Server values — the test suite runs
	// many — from colliding on per-route state.
	reg    *obs.Registry
	routes map[string]*obs.Histogram // request pattern -> latency histogram
	start  time.Time
	logger *log.Logger // nil unless Config.LogRequests

	mu           sync.Mutex
	instances    map[string]*instanceEntry
	lru          *list.List          // *instanceEntry, most recently used in front
	evicted      map[string]struct{} // ids dropped by the MaxInstances policy
	evictedQ     []string            // same ids, oldest first, for pruning
	evictedTotal int64               // monotone eviction count, for /stats
	nextID       int
}

// maxEvictedRemembered bounds how many evicted ids keep their distinct
// 404 body. The set exists for client UX, not correctness, so under
// registration churn the oldest evictions age out to a plain "unknown
// instance" error instead of growing the server's memory with every id
// ever evicted.
const maxEvictedRemembered = 1024

type instanceEntry struct {
	ID     string
	Doc    *textio.Document
	Engine *engine.Engine
	elem   *list.Element // LRU position; nil for inline one-shot entries
	// alt holds lazily wired engines for per-request partitioner
	// overrides, keyed by partitioner name and guarded by the server
	// mutex. They share the entry's instance; only the distributed-shard
	// cut differs, so each warms its own runtime caches on first use.
	alt map[string]*engine.Engine
	// remote holds the entry's dist-tcp checkers, keyed by scheme and
	// partitioner and guarded by the server mutex. Each one dialed the
	// worker fleet and registered the instance on first use — the
	// expensive part of the multi-process path — so repeated requests
	// reuse the registration like the engine paths reuse cached views.
	// Evicting or deleting the entry closes them, which tells the fleet
	// to forget the instance.
	remote map[string]lcp.Checker
}

// closeRemote closes the entry's dist-tcp checkers (fleet
// deregistration + control connections). Caller holds the server mutex
// or owns the entry exclusively.
func (entry *instanceEntry) closeRemote() {
	for _, chk := range entry.remote {
		lcp.CloseChecker(chk)
	}
	entry.remote = nil
}

// latencyBoundsMS are the fixed per-endpoint histogram bucket upper
// bounds, in milliseconds — the canonical obs.LatencyBoundsMS table,
// shared with the obs histograms so GET /stats (which reports
// milliseconds, keeping its JSON shape stable) and the Prometheus
// exposition (which records seconds) can never drift. One table for
// every endpoint: cross-endpoint comparability beats per-endpoint
// tuning.
var latencyBoundsMS = obs.LatencyBoundsMS

// latencyBoundsSeconds is latencyBoundsMS in seconds, the unit the obs
// histograms record.
var latencyBoundsSeconds = obs.LatencyBoundsSeconds()

// New builds a server over the given scheme registry (normally
// lcp.BuiltinSchemes()). The base config applies to every instance the
// server wires; per-request options ("backend", "distributed",
// "partitioner") override it through the same config.Set resolver the
// lcpserve flags go through.
func New(schemes map[string]core.Scheme, base config.Config) *Server {
	return NewWith(schemes, base, Config{})
}

// NewWith is New with an explicit server configuration.
func NewWith(schemes map[string]core.Scheme, base config.Config, cfg Config) *Server {
	s := &Server{
		schemes:   schemes,
		base:      base,
		cfg:       cfg,
		mux:       http.NewServeMux(),
		reg:       obs.NewRegistry(),
		routes:    make(map[string]*obs.Histogram),
		start:     time.Now(),
		instances: make(map[string]*instanceEntry),
		lru:       list.New(),
		evicted:   make(map[string]struct{}),
	}
	if cfg.LogRequests {
		out := cfg.LogWriter
		if out == nil {
			out = os.Stderr
		}
		s.logger = log.New(out, "", log.LstdFlags|log.LUTC)
	}
	s.registerServerMetrics()
	s.handle("POST /instances", s.handleCreateInstance)
	s.handle("GET /instances", s.handleListInstances)
	s.handle("DELETE /instances/{id}", s.handleDeleteInstance)
	s.handle("POST /prove", s.handleProve)
	s.handle("POST /check", s.handleCheck)
	s.handle("POST /check/batch", s.handleCheckBatch)
	s.handle("POST /check/stream", s.handleCheckStream)
	s.handle("GET /schemes", s.handleSchemes)
	s.handle("GET /stats", s.handleStats)
	s.handle("GET /metrics", s.handleMetrics)
	s.handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	return s
}

// registerServerMetrics wires the server-level families: build info,
// uptime, and the instance store's occupancy/eviction counters. The
// store metrics read the live values at scrape time under the server
// mutex — the eviction count stays owned by the LRU bookkeeping and is
// simply exposed, not duplicated.
func (s *Server) registerServerMetrics() {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	s.reg.Gauge("lcp_build_info",
		"Constant 1, labelled with the Go toolchain and module version of the running binary.",
		obs.Label{Name: "go_version", Value: runtime.Version()},
		obs.Label{Name: "module_version", Value: version}).Set(1)
	s.reg.GaugeFunc("lcp_uptime_seconds",
		"Seconds since this server was constructed.",
		func() float64 { return time.Since(s.start).Seconds() })
	s.reg.GaugeFunc("lcp_instances",
		"Registered instances currently in the store.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.instances))
		})
	s.reg.Gauge("lcp_instances_max",
		"Configured instance-store bound (-max-instances); 0 means unbounded.").Set(float64(s.cfg.MaxInstances))
	s.reg.CounterFunc("lcp_instances_evicted_total",
		"Instances evicted by the LRU policy since process start.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.evictedTotal)
		})
}

// traceWriter wraps the response writer for one request: it carries the
// request's trace ID (so writeJSON can echo it into error bodies),
// captures the status code for metrics and logging, and lets handlers
// annotate the resolved backend and verdict for the request log line.
// Flush passes through so the streaming endpoint keeps working.
type traceWriter struct {
	http.ResponseWriter
	trace   string
	status  int
	backend string
	verdict string
	errMsg  string
}

func (tw *traceWriter) WriteHeader(code int) {
	if tw.status == 0 {
		tw.status = code
	}
	tw.ResponseWriter.WriteHeader(code)
}

func (tw *traceWriter) Write(b []byte) (int, error) {
	if tw.status == 0 {
		tw.status = http.StatusOK
	}
	return tw.ResponseWriter.Write(b)
}

func (tw *traceWriter) Flush() {
	if f, ok := tw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// note annotates the request's log line with the resolved backend and
// verdict. Handlers call it with whatever they know; empty strings
// leave the previous annotation in place.
func note(w http.ResponseWriter, backend, verdict string) {
	if tw, ok := w.(*traceWriter); ok {
		if backend != "" {
			tw.backend = backend
		}
		if verdict != "" {
			tw.verdict = verdict
		}
	}
}

// handle registers a handler behind the observability middleware: the
// request's trace ID is adopted from a valid X-Trace-Id header or
// minted fresh, echoed on the response up front (so even error bodies
// carry it), and threaded through the request context; the request is
// then timed into the route's latency histogram and counted by status
// code, and — when request logging is on — reported as one structured
// line.
func (s *Server) handle(pattern string, fn http.HandlerFunc) {
	hist := s.reg.Histogram("lcp_http_request_seconds",
		"HTTP request latency by route.",
		latencyBoundsSeconds, obs.Label{Name: "route", Value: pattern})
	s.routes[pattern] = hist
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		trace := r.Header.Get(obs.TraceHeader)
		if !obs.ValidTraceID(trace) {
			trace = obs.NewTraceID()
		}
		tw := &traceWriter{ResponseWriter: w, trace: trace}
		tw.Header().Set(obs.TraceHeader, trace)
		fn(tw, r.WithContext(obs.ContextWithTraceID(r.Context(), trace)))
		if tw.status == 0 {
			// The handler never wrote: net/http will send an implicit 200.
			tw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		hist.Observe(elapsed.Seconds())
		s.reg.Counter("lcp_http_requests_total",
			"HTTP requests by route and status code.",
			obs.Label{Name: "route", Value: pattern},
			obs.Label{Name: "code", Value: strconv.Itoa(tw.status)}).Inc()
		if s.logger != nil {
			line := fmt.Sprintf("trace=%s method=%s route=%q status=%d dur_ms=%.3f",
				trace, r.Method, pattern, tw.status, float64(elapsed)/float64(time.Millisecond))
			if tw.backend != "" {
				line += " backend=" + tw.backend
			}
			if tw.verdict != "" {
				line += " verdict=" + tw.verdict
			}
			if tw.errMsg != "" {
				line += fmt.Sprintf(" err=%q", tw.errMsg)
			}
			s.logger.Print(line)
		}
	})
}

// handleMetrics serves the Prometheus text exposition: the per-server
// registry (HTTP, build info, instance store) followed by the process-
// wide one (checker, engine, dist). The two hold disjoint family names,
// so the concatenation is a single well-formed exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.PromContentType)
	_ = s.reg.WriteProm(w)
	_ = obs.Default().WriteProm(w)
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// ---- wire types ----

type checkRequest struct {
	// Instance is the id of a registered instance; Document is an
	// inline textio document for one-shot checks. Exactly one is set.
	Instance string `json:"instance,omitempty"`
	Document string `json:"document,omitempty"`
	// Scheme overrides the document's scheme directive.
	Scheme string `json:"scheme,omitempty"`
	// Proof maps node id to a bit string ("0110"); empty means the
	// document's proof lines.
	Proof map[string]string `json:"proof,omitempty"`
	// Proofs is the batch variant (POST /check/batch only).
	Proofs []map[string]string `json:"proofs,omitempty"`
	// Backend overrides the execution path for this request: "core",
	// "dist", "engine", or "engine-dist". It resolves through the same
	// config.Set resolver as the lcpserve flags, so the names (and the
	// semantics) are identical on the command line and on the wire.
	// Empty means the server's configured default backend.
	Backend string `json:"backend,omitempty"`
	// Distributed is the legacy alias for Backend: true selects
	// "engine-dist". Set either Distributed or Backend, not both.
	Distributed bool `json:"distributed,omitempty"`
	// Partitioner overrides how the distributed backends assign nodes
	// to shards for this request: "contiguous", "bfs", or "greedy" (see
	// internal/partition). Requires a distributed backend. Empty means
	// the server's configured default. Each named partitioner gets its
	// own long-lived engine per registered instance, so repeated
	// requests amortize exactly like the default one.
	Partitioner string `json:"partitioner,omitempty"`
	// StopOnReject makes /check/stream cancel remaining work as soon
	// as the first rejection streams out.
	StopOnReject bool `json:"stop_on_reject,omitempty"`
	// BatchColumns overrides the engine backend's batch strategy for
	// this request (/check/batch only): "auto", "true" (always take the
	// column-wise path), or "false" (per-proof loop). It resolves
	// through config.Set like every other option, so the spelling
	// matches lcpserve's -batch-columns flag. Requires the engine
	// backend. Empty means the server's configured default.
	BatchColumns string `json:"batch_columns,omitempty"`
}

type checkResponse struct {
	Accepted  bool  `json:"accepted"`
	Nodes     int   `json:"nodes"`
	ProofBits int   `json:"proof_bits"`
	Rejectors []int `json:"rejectors,omitempty"`
	// Backend reports the execution path that produced the verdict —
	// the resolved value of the request's "backend"/"distributed"
	// options over the server default.
	Backend string `json:"backend,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Code distinguishes machine-actionable failures; "evicted" marks
	// an instance dropped by the -max-instances LRU policy (the client
	// should re-register, not fix its id).
	Code string `json:"code,omitempty"`
	// TraceID is the request's trace ID — the same value as the
	// X-Trace-Id response header — repeated in the body so a client
	// that only kept the JSON can still quote it when reporting.
	TraceID string `json:"trace_id,omitempty"`
}

type instanceInfo struct {
	ID     string `json:"id"`
	Nodes  int    `json:"nodes"`
	Edges  int    `json:"edges"`
	Scheme string `json:"scheme,omitempty"`
	Proof  bool   `json:"has_proof"`
}

// ---- helpers ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Error bodies pick up the request's trace ID on the way out, and
	// the message is remembered for the request log line — the handler
	// just writes the error; the middleware owns the correlation.
	if er, ok := v.(errorResponse); ok {
		if tw, ok := w.(*traceWriter); ok {
			er.TraceID = tw.trace
			tw.errMsg = er.Error
			v = er
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// rejectFields enforces per-endpoint strictness on the shared request
// shape: a field that the endpoint would silently ignore is a client
// bug (e.g. a "proofs" array sent to /check would otherwise fall back
// to the document's stored proof and report a verdict for a proof that
// was never checked), so it is rejected outright.
func rejectFields(w http.ResponseWriter, req *checkRequest, endpoint string) bool {
	bad := func(field string) bool {
		writeError(w, http.StatusBadRequest, "%q is not accepted by %s", field, endpoint)
		return false
	}
	if req.Proofs != nil && endpoint != "/check/batch" {
		return bad("proofs")
	}
	if req.Proof != nil && (endpoint == "/check/batch" || endpoint == "/prove") {
		return bad("proof")
	}
	if req.StopOnReject && endpoint != "/check/stream" {
		return bad("stop_on_reject")
	}
	if req.Distributed && (endpoint == "/prove" || endpoint == "/check/stream") {
		return bad("distributed")
	}
	if req.Backend != "" {
		if endpoint == "/prove" {
			return bad("backend")
		}
		// Streaming verdicts is a shared-memory affair: the message-
		// passing backends only have verdicts once the round protocol
		// completes, so "stream" would be a slower spelling of /check.
		if endpoint == "/check/stream" &&
			req.Backend != string(config.BackendCore) && req.Backend != string(config.BackendEngine) {
			return bad("backend")
		}
		if req.Distributed {
			writeError(w, http.StatusBadRequest, "set either %q or %q, not both", "backend", "distributed")
			return false
		}
	}
	if req.Partitioner != "" && (endpoint == "/prove" || endpoint == "/check/stream") {
		return bad("partitioner")
	}
	if req.BatchColumns != "" && endpoint != "/check/batch" {
		return bad("batch_columns")
	}
	// Whether a partitioner override is honored depends on the
	// *resolved* backend (the server default counts, not just the
	// request fields), so that guard lives in requestConfig.
	return true
}

// parseProof decodes the JSON proof map into a core.Proof against the
// instance's node set.
func parseProof(in *core.Instance, m map[string]string) (core.Proof, error) {
	p := make(core.Proof, len(m))
	for key, bits := range m {
		id, err := strconv.Atoi(key)
		if err != nil {
			return nil, fmt.Errorf("bad proof node id %q", key)
		}
		if !in.G.Has(id) {
			return nil, fmt.Errorf("proof references unknown node %d", id)
		}
		var w bitstr.Writer
		for _, r := range bits {
			switch r {
			case '0':
				w.WriteBit(false)
			case '1':
				w.WriteBit(true)
			default:
				return nil, fmt.Errorf("node %d: bad proof bit %q", id, r)
			}
		}
		p[id] = w.String()
	}
	return p, nil
}

// formatProof renders a proof as the JSON wire map.
func formatProof(p core.Proof) map[string]string {
	out := make(map[string]string, len(p))
	for id, s := range p {
		out[strconv.Itoa(id)] = s.String()
	}
	return out
}

// safeVerifier wraps a scheme's verifier so that a panic while
// verifying one node fails closed: the node rejects instead of the
// panic escaping into an engine worker goroutine and taking the daemon
// down. Built-in verifiers do not panic on any input the property
// tests throw at them, but the service must not bet its life on that.
type safeVerifier struct{ v core.Verifier }

func (s safeVerifier) Radius() int { return s.v.Radius() }

func (s safeVerifier) Verify(w *core.View) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return s.v.Verify(w)
}

// httpError carries an explicit status and machine-readable code
// through the resolve path; writeResolveError renders it (and falls
// back to a plain 400 for ordinary validation errors).
type httpError struct {
	status int
	code   string
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func writeResolveError(w http.ResponseWriter, err error) {
	if he, ok := err.(*httpError); ok {
		writeJSON(w, he.status, errorResponse{Error: he.msg, Code: he.code})
		return
	}
	writeError(w, http.StatusBadRequest, "%v", err)
}

// resolve turns a check request into (entry, scheme). For registered
// instances the long-lived entry is returned (and touched in the LRU
// order); for inline documents a one-shot entry is wired on the spot.
func (s *Server) resolve(req *checkRequest) (*instanceEntry, core.Scheme, error) {
	var entry *instanceEntry
	switch {
	case req.Instance != "" && req.Document != "":
		return nil, nil, fmt.Errorf("set either instance or document, not both")
	case req.Instance != "":
		s.mu.Lock()
		entry = s.instances[req.Instance]
		if entry != nil {
			s.lru.MoveToFront(entry.elem)
		}
		_, wasEvicted := s.evicted[req.Instance]
		s.mu.Unlock()
		if entry == nil {
			if wasEvicted {
				return nil, nil, &httpError{
					status: http.StatusNotFound,
					code:   "evicted",
					msg: fmt.Sprintf("instance %q was evicted by the instance store's LRU policy (-max-instances=%d); re-register it",
						req.Instance, s.cfg.MaxInstances),
				}
			}
			return nil, nil, fmt.Errorf("unknown instance %q", req.Instance)
		}
	case req.Document != "":
		doc, err := textio.Parse(strings.NewReader(req.Document))
		if err != nil {
			return nil, nil, fmt.Errorf("parse document: %v", err)
		}
		entry = &instanceEntry{Doc: doc, Engine: engine.New(doc.Instance, s.base.EngineOptions())}
	default:
		return nil, nil, fmt.Errorf("missing instance id or inline document")
	}
	name := req.Scheme
	if name == "" {
		name = entry.Doc.SchemeName
	}
	if name == "" {
		return nil, nil, fmt.Errorf("no scheme: set \"scheme\" in the request or a scheme directive in the document")
	}
	scheme, ok := s.schemes[name]
	if !ok {
		return nil, nil, fmt.Errorf("unknown scheme %q (GET /schemes lists them)", name)
	}
	return entry, scheme, nil
}

// requestConfig resolves one request's execution configuration: the
// server's base config with the request-level overrides applied through
// config.Set — the same resolver the lcpserve flags feed, so "backend",
// "distributed" and "partitioner" mean exactly the same thing on the
// wire as on the command line.
func (s *Server) requestConfig(req *checkRequest) (config.Config, error) {
	cfg := s.base
	if req.Backend != "" {
		if err := cfg.Set("backend", req.Backend); err != nil {
			return cfg, err
		}
	}
	if req.Distributed {
		if err := cfg.Set("distributed", "true"); err != nil {
			return cfg, err
		}
	}
	if req.Partitioner != "" {
		// The partitioner shapes the distributed shard cut; on the
		// cached-view paths it would be silently ignored, which is the
		// exact client bug this guard exists for. The check runs against
		// the resolved backend, so a server whose *default* backend is
		// distributed honors partitioner-only requests.
		if b := cfg.ResolvedBackend(); b != config.BackendDist && b != config.BackendEngineDist && b != config.BackendDistTCP {
			return cfg, fmt.Errorf("%q requires a distributed backend (%q, %q, or %q), resolved backend is %q",
				"partitioner", config.BackendDist, config.BackendEngineDist, config.BackendDistTCP, b)
		}
		if err := cfg.Set("partitioner", req.Partitioner); err != nil {
			return cfg, err
		}
	}
	if req.BatchColumns != "" {
		// The columns path is the engine backend's batch strategy; on
		// every other backend the knob would be silently ignored, the
		// same client bug the partitioner guard catches.
		if b := cfg.ResolvedBackend(); b != config.BackendEngine {
			return cfg, fmt.Errorf("%q requires the %q backend, resolved backend is %q",
				"batch_columns", config.BackendEngine, b)
		}
		if err := cfg.Set("batch-columns", req.BatchColumns); err != nil {
			return cfg, err
		}
	}
	if cfg.ResolvedBackend() == config.BackendDistTCP && len(cfg.WorkerAddrs) == 0 {
		return cfg, fmt.Errorf("backend %q needs a worker fleet, and this server was started without one: run lcpworker processes and restart lcpserve with -worker-addrs host:port,...",
			config.BackendDistTCP)
	}
	return cfg, nil
}

// engineFor picks the entry's engine for the resolved config's
// partitioner. The server's configured default policy is the primary
// engine; any other partitioner gets a lazily wired engine of its own,
// cached on the entry so repeated requests amortize their view and
// runtime caches exactly like the default path.
func (s *Server) engineFor(entry *instanceEntry, cfg config.Config) *engine.Engine {
	name := cfg.PartitionerName()
	if name == s.base.PartitionerName() {
		return entry.Engine
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := entry.alt[name]; ok {
		return e
	}
	// One policy at both levels, mirroring lcpserve's -partitioner
	// flag: the halo cut across dist runtimes and the shard layout
	// inside each runtime — EngineOptions derives both from the one
	// Config.Partitioner.
	e := engine.New(entry.Doc.Instance, cfg.EngineOptions())
	if entry.alt == nil {
		entry.alt = make(map[string]*engine.Engine)
	}
	entry.alt[name] = e
	return e
}

// checkerFor builds the façade checker executing one request: the
// resolved config's backend over the entry's instance, backed by the
// entry's cached engine on the engine backends (so every request
// amortizes the same views and runtimes) and wrapped in the fail-closed
// safeVerifier. Checkers on the engine backends are cheap per-request
// shims over the shared engine; the core and dist reference backends
// carry their own (per-request) state.
func (s *Server) checkerFor(entry *instanceEntry, cfg config.Config, scheme core.Scheme) (lcp.Checker, error) {
	if cfg.ResolvedBackend() == config.BackendDistTCP {
		return s.remoteCheckerFor(entry, cfg, scheme)
	}
	opts := []lcp.CheckerOption{
		lcp.WithBackend(string(cfg.ResolvedBackend())),
		lcp.WithVerifier(safeVerifier{scheme.Verifier()}),
	}
	switch cfg.ResolvedBackend() {
	case config.BackendEngine, config.BackendEngineDist:
		opts = append(opts, lcp.WithEngine(s.engineFor(entry, cfg)))
		// The batch strategy rides the config, not the shared engine:
		// auto is the checker default, so only a forced mode needs an
		// option.
		switch cfg.BatchColumns {
		case config.BatchColumnsOn:
			opts = append(opts, lcp.WithBatchColumns(true))
		case config.BatchColumnsOff:
			opts = append(opts, lcp.WithBatchColumns(false))
		}
	case config.BackendDist:
		d := cfg.DistOptions()
		opts = append(opts,
			lcp.WithSharded(d.Sharded),
			lcp.WithShards(d.Shards),
			lcp.WithFreeRunning(d.FreeRunning),
			lcp.WithPartitioner(d.Partitioner),
		)
	}
	return lcp.NewChecker(entry.Doc.Instance, opts...)
}

// remoteCheckerFor returns the entry's dist-tcp checker for the
// request's scheme and partitioner, building it on first use. The
// checker registers the instance on the worker fleet lazily (at first
// check), so a cached checker amortizes the halo shipping across
// requests; eviction closes it, deregistering fleet-side. The verifier
// is not wrapped in safeVerifier — it runs in the worker process, whose
// shard runner already converts verifier panics to errors.
func (s *Server) remoteCheckerFor(entry *instanceEntry, cfg config.Config, scheme core.Scheme) (lcp.Checker, error) {
	key := scheme.Name() + "\x00" + cfg.PartitionerName()
	s.mu.Lock()
	defer s.mu.Unlock()
	if chk, ok := entry.remote[key]; ok {
		return chk, nil
	}
	chk, err := lcp.NewChecker(entry.Doc.Instance,
		lcp.WithBackend(string(config.BackendDistTCP)),
		lcp.WithScheme(scheme),
		lcp.WithWorkerAddrs(cfg.WorkerAddrs...),
		lcp.WithPartitioner(cfg.Partitioner),
	)
	if err != nil {
		return nil, err
	}
	if entry.remote == nil {
		entry.remote = make(map[string]lcp.Checker)
	}
	entry.remote[key] = chk
	return chk, nil
}

// requestProof picks the proof for a single-proof request: the inline
// JSON proof if present, the document's proof lines otherwise.
func requestProof(in *core.Instance, doc *textio.Document, req *checkRequest) (core.Proof, error) {
	if req.Proof != nil {
		return parseProof(in, req.Proof)
	}
	return doc.Proof, nil
}

// ---- handlers ----

func (s *Server) handleCreateInstance(w http.ResponseWriter, r *http.Request) {
	// The body is already bounded by MaxBytesReader; parse it straight
	// off the wire.
	doc, err := textio.Parse(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse instance: %v", err)
		return
	}
	s.mu.Lock()
	s.nextID++
	entry := &instanceEntry{
		ID:     fmt.Sprintf("i%d", s.nextID),
		Doc:    doc,
		Engine: engine.New(doc.Instance, s.base.EngineOptions()),
	}
	// Evict from the cold end until the newcomer fits. In-flight checks
	// on an evicted engine finish on the caches they resolved; the
	// engine is garbage once they drain.
	var evictedEntries []*instanceEntry
	for s.cfg.MaxInstances > 0 && s.lru.Len() >= s.cfg.MaxInstances {
		old := s.lru.Remove(s.lru.Back()).(*instanceEntry)
		delete(s.instances, old.ID)
		evictedEntries = append(evictedEntries, old)
		s.evicted[old.ID] = struct{}{}
		s.evictedTotal++
		s.evictedQ = append(s.evictedQ, old.ID)
		if len(s.evictedQ) > maxEvictedRemembered {
			delete(s.evicted, s.evictedQ[0])
			s.evictedQ = append(s.evictedQ[:0], s.evictedQ[1:]...)
		}
	}
	entry.elem = s.lru.PushFront(entry)
	s.instances[entry.ID] = entry
	s.mu.Unlock()
	// Deregister evicted entries' dist-tcp instances from the worker
	// fleet off the request path: an in-flight remote check holds its
	// coordinator's lock, so closing waits for it to drain.
	for _, old := range evictedEntries {
		go old.closeRemote()
	}
	writeJSON(w, http.StatusCreated, s.info(entry))
}

func (s *Server) info(entry *instanceEntry) instanceInfo {
	return instanceInfo{
		ID:     entry.ID,
		Nodes:  entry.Doc.Instance.G.N(),
		Edges:  entry.Doc.Instance.G.M(),
		Scheme: entry.Doc.SchemeName,
		Proof:  len(entry.Doc.Proof) > 0,
	}
}

func (s *Server) handleListInstances(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]instanceInfo, 0, len(s.instances))
	for _, entry := range s.instances {
		out = append(out, s.info(entry))
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDeleteInstance(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	entry := s.instances[id]
	delete(s.instances, id)
	if entry != nil {
		s.lru.Remove(entry.elem)
	}
	_, wasEvicted := s.evicted[id]
	s.mu.Unlock()
	if entry == nil {
		if wasEvicted {
			writeJSON(w, http.StatusNotFound, errorResponse{
				Error: fmt.Sprintf("instance %q was already evicted", id),
				Code:  "evicted",
			})
			return
		}
		writeError(w, http.StatusNotFound, "unknown instance %q", id)
		return
	}
	// Checks already in flight finish on the engine they resolved; the
	// engine and its caches are garbage collected once they drain. The
	// dist-tcp checkers hold fleet registrations, so those are closed
	// explicitly — off the response path, since close waits for any
	// in-flight remote check to drain.
	go entry.closeRemote()
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (s *Server) handleProve(w http.ResponseWriter, r *http.Request) {
	var req checkRequest
	if !decodeJSON(w, r, &req) || !rejectFields(w, &req, "/prove") {
		return
	}
	entry, scheme, err := s.resolve(&req)
	if err != nil {
		writeResolveError(w, err)
		return
	}
	proof, err := scheme.Prove(entry.Doc.Instance)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "prove: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"scheme":        scheme.Name(),
		"proof":         formatProof(proof),
		"bits_per_node": proof.Size(),
	})
}

func toResponse(nodes int, p core.Proof, rep *lcp.Report) checkResponse {
	return checkResponse{
		Accepted:  rep.Accepted(),
		Nodes:     nodes,
		ProofBits: p.Size(),
		Rejectors: rep.Rejectors(),
		Backend:   rep.Backend,
	}
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req checkRequest
	if !decodeJSON(w, r, &req) || !rejectFields(w, &req, "/check") {
		return
	}
	entry, scheme, err := s.resolve(&req)
	if err != nil {
		writeResolveError(w, err)
		return
	}
	cfg, err := s.requestConfig(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	chk, err := s.checkerFor(entry, cfg, scheme)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if entry.elem == nil {
		// Inline one-shot entry: nothing caches it, so a dist-tcp
		// checker must deregister from the fleet when the request ends
		// (a no-op on the in-process backends).
		defer entry.closeRemote()
	}
	p, err := requestProof(entry.Doc.Instance, entry.Doc, &req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The request context rides into the checker: a client that hangs
	// up mid-check stops the work at the backend's next cancellation
	// point (between rounds, nodes, or proofs) instead of burning
	// goroutines on an answer nobody reads.
	rep, err := chk.Check(r.Context(), p)
	if err != nil {
		note(w, string(cfg.ResolvedBackend()), "")
		writeError(w, http.StatusInternalServerError, "check: %v", err)
		return
	}
	note(w, rep.Backend, verdictWord(rep.Accepted()))
	writeJSON(w, http.StatusOK, toResponse(entry.Doc.Instance.G.N(), p, rep))
}

// verdictWord renders a check's outcome for log lines.
func verdictWord(accepted bool) string {
	if accepted {
		return "accepted"
	}
	return "rejected"
}

func (s *Server) handleCheckBatch(w http.ResponseWriter, r *http.Request) {
	var req checkRequest
	if !decodeJSON(w, r, &req) || !rejectFields(w, &req, "/check/batch") {
		return
	}
	entry, scheme, err := s.resolve(&req)
	if err != nil {
		writeResolveError(w, err)
		return
	}
	cfg, err := s.requestConfig(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	chk, err := s.checkerFor(entry, cfg, scheme)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if entry.elem == nil {
		// Inline one-shot entry: nothing caches it, so a dist-tcp
		// checker must deregister from the fleet when the request ends
		// (a no-op on the in-process backends).
		defer entry.closeRemote()
	}
	if len(req.Proofs) == 0 {
		writeError(w, http.StatusBadRequest, "batch request needs a \"proofs\" array")
		return
	}
	proofs := make([]core.Proof, len(req.Proofs))
	for i, m := range req.Proofs {
		p, err := parseProof(entry.Doc.Instance, m)
		if err != nil {
			writeError(w, http.StatusBadRequest, "proofs[%d]: %v", i, err)
			return
		}
		proofs[i] = p
	}
	// The façade owns the batch strategy: sequential over the cached
	// views on the shared-memory backends, a bounded concurrent pool on
	// the message-passing ones (each proof draws its own wiring, so the
	// batch saturates the machine instead of flooding one proof at a
	// time). The request context cancels between proofs and between
	// communication rounds, so a client hang-up stops burning shard
	// goroutines mid-batch.
	reports, err := chk.CheckBatch(r.Context(), proofs)
	if err != nil {
		var be *lcp.BatchError
		if errors.As(err, &be) {
			writeError(w, http.StatusInternalServerError, "proofs[%d]: %v", be.Index, be.Err)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	out := make([]checkResponse, len(reports))
	accepted := 0
	nodes := entry.Doc.Instance.G.N()
	for i, rep := range reports {
		out[i] = toResponse(nodes, proofs[i], rep)
		if rep.Accepted() {
			accepted++
		}
	}
	note(w, string(cfg.ResolvedBackend()), fmt.Sprintf("accepted=%d/%d", accepted, len(out)))
	writeJSON(w, http.StatusOK, map[string]any{
		"results":  out,
		"accepted": accepted,
		"checked":  len(out),
	})
}

// verdictLine is one NDJSON verdict of /check/stream; summaryLine is
// the trailing line that closes every stream.
type verdictLine struct {
	Node   int  `json:"node"`
	Accept bool `json:"accept"`
}

type summaryLine struct {
	Done         bool `json:"done"`
	Accepted     bool `json:"accepted"`
	Checked      int  `json:"checked"`
	Nodes        int  `json:"nodes"`
	StoppedEarly bool `json:"stopped_early"`
}

func (s *Server) handleCheckStream(w http.ResponseWriter, r *http.Request) {
	var req checkRequest
	if !decodeJSON(w, r, &req) || !rejectFields(w, &req, "/check/stream") {
		return
	}
	entry, scheme, err := s.resolve(&req)
	if err != nil {
		writeResolveError(w, err)
		return
	}
	cfg, err := s.requestConfig(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// A server whose default backend is distributed still streams on
	// the engine: streaming exists for early verdicts, which only the
	// shared-memory backends can deliver (rejectFields guards the
	// explicit request-level override the same way).
	if b := cfg.ResolvedBackend(); b != config.BackendCore && b != config.BackendEngine {
		if err := cfg.Set("backend", string(config.BackendEngine)); err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
	}
	chk, err := s.checkerFor(entry, cfg, scheme)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if entry.elem == nil {
		// Inline one-shot entry: nothing caches it, so a dist-tcp
		// checker must deregister from the fleet when the request ends
		// (a no-op on the in-process backends).
		defer entry.closeRemote()
	}
	p, err := requestProof(entry.Doc.Instance, entry.Doc, &req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The request context cancels the stream when the client hangs up;
	// stop_on_reject additionally cancels it on the first rejection.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stream, err := chk.CheckStream(ctx, p)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "stream: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	checked := 0
	accepted := true
	stopped := false
	for verdict := range stream {
		checked++
		if !verdict.Accept {
			accepted = false
		}
		_ = enc.Encode(verdictLine{Node: verdict.Node, Accept: verdict.Accept})
		if flusher != nil {
			flusher.Flush()
		}
		if !verdict.Accept && req.StopOnReject {
			stopped = true
			cancel()
			break
		}
	}
	// Drain: the stream's workers exit on the cancelled context.
	nodes := entry.Doc.Instance.G.N()
	note(w, string(cfg.ResolvedBackend()), verdictWord(accepted && checked == nodes))
	_ = enc.Encode(summaryLine{
		Done:         true,
		Accepted:     accepted && checked == nodes,
		Checked:      checked,
		Nodes:        nodes,
		StoppedEarly: stopped,
	})
	if flusher != nil {
		flusher.Flush()
	}
}

func (s *Server) handleSchemes(w http.ResponseWriter, r *http.Request) {
	names := make([]string, 0, len(s.schemes))
	for name := range s.schemes {
		names = append(names, name)
	}
	sort.Strings(names)
	writeJSON(w, http.StatusOK, names)
}

// statsEntry is one endpoint's row in the GET /stats response. The
// counters are monotone since process start; the derived average is a
// convenience, the sums and buckets are what a scraper should rate().
// LatencyBucketCounts[i] counts requests whose latency fell at or under
// LatencyBucketLEMS[i] milliseconds (and over the previous bound); the
// final entry, one past the bounds, is the overflow bucket. The bounds
// are fixed per process, so two scrapes subtract cleanly into a tail-
// latency estimate — the thing a bare sum can never give.
type statsEntry struct {
	Requests            int64     `json:"requests"`
	LatencyNSTotal      int64     `json:"latency_ns_total"`
	LatencyMSAvg        float64   `json:"latency_ms_avg"`
	LatencyBucketLEMS   []float64 `json:"latency_bucket_le_ms"`
	LatencyBucketCounts []int64   `json:"latency_bucket_counts"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// The rows derive from the same obs histograms /metrics exposes —
	// one source of truth, two renderings — converted back to this
	// endpoint's historical units (milliseconds bounds, nanosecond sum).
	endpoints := make(map[string]statsEntry, len(s.routes))
	for pattern, hist := range s.routes {
		n := int64(hist.Count())
		row := statsEntry{
			Requests:          n,
			LatencyNSTotal:    int64(hist.Sum() * float64(time.Second)),
			LatencyBucketLEMS: latencyBoundsMS,
		}
		if n > 0 {
			row.LatencyMSAvg = float64(row.LatencyNSTotal) / float64(n) / 1e6
		}
		hcounts := hist.Counts()
		counts := make([]int64, len(hcounts))
		for i, c := range hcounts {
			counts[i] = int64(c)
		}
		row.LatencyBucketCounts = counts
		endpoints[pattern] = row
	}
	s.mu.Lock()
	instances, evicted := len(s.instances), s.evictedTotal
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"endpoints":         endpoints,
		"instances":         instances,
		"instances_evicted": evicted,
		"max_instances":     s.cfg.MaxInstances,
	})
}
