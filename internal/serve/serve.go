package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"lcp/internal/bitstr"
	"lcp/internal/core"
	"lcp/internal/engine"
	"lcp/internal/textio"
)

// maxBodyBytes bounds request bodies (instances and proof batches).
const maxBodyBytes = 16 << 20

// Server is the HTTP verification service. Create with New; it
// implements http.Handler and is safe for concurrent use.
type Server struct {
	schemes map[string]core.Scheme
	opt     engine.Options
	mux     *http.ServeMux

	mu        sync.Mutex
	instances map[string]*instanceEntry
	nextID    int
}

type instanceEntry struct {
	ID     string
	Doc    *textio.Document
	Engine *engine.Engine
}

// New builds a server over the given scheme registry (normally
// lcp.BuiltinSchemes()). The engine options apply to every instance the
// server wires.
func New(schemes map[string]core.Scheme, opt engine.Options) *Server {
	s := &Server{
		schemes:   schemes,
		opt:       opt,
		mux:       http.NewServeMux(),
		instances: make(map[string]*instanceEntry),
	}
	s.mux.HandleFunc("POST /instances", s.handleCreateInstance)
	s.mux.HandleFunc("GET /instances", s.handleListInstances)
	s.mux.HandleFunc("DELETE /instances/{id}", s.handleDeleteInstance)
	s.mux.HandleFunc("POST /prove", s.handleProve)
	s.mux.HandleFunc("POST /check", s.handleCheck)
	s.mux.HandleFunc("POST /check/batch", s.handleCheckBatch)
	s.mux.HandleFunc("POST /check/stream", s.handleCheckStream)
	s.mux.HandleFunc("GET /schemes", s.handleSchemes)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// ---- wire types ----

type checkRequest struct {
	// Instance is the id of a registered instance; Document is an
	// inline textio document for one-shot checks. Exactly one is set.
	Instance string `json:"instance,omitempty"`
	Document string `json:"document,omitempty"`
	// Scheme overrides the document's scheme directive.
	Scheme string `json:"scheme,omitempty"`
	// Proof maps node id to a bit string ("0110"); empty means the
	// document's proof lines.
	Proof map[string]string `json:"proof,omitempty"`
	// Proofs is the batch variant (POST /check/batch only).
	Proofs []map[string]string `json:"proofs,omitempty"`
	// Distributed selects the sharded message-passing path.
	Distributed bool `json:"distributed,omitempty"`
	// StopOnReject makes /check/stream cancel remaining work as soon
	// as the first rejection streams out.
	StopOnReject bool `json:"stop_on_reject,omitempty"`
}

type checkResponse struct {
	Accepted  bool  `json:"accepted"`
	Nodes     int   `json:"nodes"`
	ProofBits int   `json:"proof_bits"`
	Rejectors []int `json:"rejectors,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

type instanceInfo struct {
	ID     string `json:"id"`
	Nodes  int    `json:"nodes"`
	Edges  int    `json:"edges"`
	Scheme string `json:"scheme,omitempty"`
	Proof  bool   `json:"has_proof"`
}

// ---- helpers ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// rejectFields enforces per-endpoint strictness on the shared request
// shape: a field that the endpoint would silently ignore is a client
// bug (e.g. a "proofs" array sent to /check would otherwise fall back
// to the document's stored proof and report a verdict for a proof that
// was never checked), so it is rejected outright.
func rejectFields(w http.ResponseWriter, req *checkRequest, endpoint string) bool {
	bad := func(field string) bool {
		writeError(w, http.StatusBadRequest, "%q is not accepted by %s", field, endpoint)
		return false
	}
	if req.Proofs != nil && endpoint != "/check/batch" {
		return bad("proofs")
	}
	if req.Proof != nil && (endpoint == "/check/batch" || endpoint == "/prove") {
		return bad("proof")
	}
	if req.StopOnReject && endpoint != "/check/stream" {
		return bad("stop_on_reject")
	}
	if req.Distributed && (endpoint == "/prove" || endpoint == "/check/stream") {
		return bad("distributed")
	}
	return true
}

// parseProof decodes the JSON proof map into a core.Proof against the
// instance's node set.
func parseProof(in *core.Instance, m map[string]string) (core.Proof, error) {
	p := make(core.Proof, len(m))
	for key, bits := range m {
		id, err := strconv.Atoi(key)
		if err != nil {
			return nil, fmt.Errorf("bad proof node id %q", key)
		}
		if !in.G.Has(id) {
			return nil, fmt.Errorf("proof references unknown node %d", id)
		}
		var w bitstr.Writer
		for _, r := range bits {
			switch r {
			case '0':
				w.WriteBit(false)
			case '1':
				w.WriteBit(true)
			default:
				return nil, fmt.Errorf("node %d: bad proof bit %q", id, r)
			}
		}
		p[id] = w.String()
	}
	return p, nil
}

// formatProof renders a proof as the JSON wire map.
func formatProof(p core.Proof) map[string]string {
	out := make(map[string]string, len(p))
	for id, s := range p {
		out[strconv.Itoa(id)] = s.String()
	}
	return out
}

// safeVerifier wraps a scheme's verifier so that a panic while
// verifying one node fails closed: the node rejects instead of the
// panic escaping into an engine worker goroutine and taking the daemon
// down. Built-in verifiers do not panic on any input the property
// tests throw at them, but the service must not bet its life on that.
type safeVerifier struct{ v core.Verifier }

func (s safeVerifier) Radius() int { return s.v.Radius() }

func (s safeVerifier) Verify(w *core.View) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return s.v.Verify(w)
}

// resolve turns a check request into (engine, verifier, proof). For
// registered instances the long-lived engine is returned; for inline
// documents a one-shot engine is wired on the spot.
func (s *Server) resolve(req *checkRequest) (*engine.Engine, *textio.Document, core.Scheme, error) {
	var entry *instanceEntry
	switch {
	case req.Instance != "" && req.Document != "":
		return nil, nil, nil, fmt.Errorf("set either instance or document, not both")
	case req.Instance != "":
		s.mu.Lock()
		entry = s.instances[req.Instance]
		s.mu.Unlock()
		if entry == nil {
			return nil, nil, nil, fmt.Errorf("unknown instance %q", req.Instance)
		}
	case req.Document != "":
		doc, err := textio.Parse(strings.NewReader(req.Document))
		if err != nil {
			return nil, nil, nil, fmt.Errorf("parse document: %v", err)
		}
		entry = &instanceEntry{Doc: doc, Engine: engine.New(doc.Instance, s.opt)}
	default:
		return nil, nil, nil, fmt.Errorf("missing instance id or inline document")
	}
	name := req.Scheme
	if name == "" {
		name = entry.Doc.SchemeName
	}
	if name == "" {
		return nil, nil, nil, fmt.Errorf("no scheme: set \"scheme\" in the request or a scheme directive in the document")
	}
	scheme, ok := s.schemes[name]
	if !ok {
		return nil, nil, nil, fmt.Errorf("unknown scheme %q (GET /schemes lists them)", name)
	}
	return entry.Engine, entry.Doc, scheme, nil
}

// requestProof picks the proof for a single-proof request: the inline
// JSON proof if present, the document's proof lines otherwise.
func requestProof(e *engine.Engine, doc *textio.Document, req *checkRequest) (core.Proof, error) {
	if req.Proof != nil {
		return parseProof(e.Instance(), req.Proof)
	}
	return doc.Proof, nil
}

// ---- handlers ----

func (s *Server) handleCreateInstance(w http.ResponseWriter, r *http.Request) {
	// The body is already bounded by MaxBytesReader; parse it straight
	// off the wire.
	doc, err := textio.Parse(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse instance: %v", err)
		return
	}
	s.mu.Lock()
	s.nextID++
	entry := &instanceEntry{
		ID:     fmt.Sprintf("i%d", s.nextID),
		Doc:    doc,
		Engine: engine.New(doc.Instance, s.opt),
	}
	s.instances[entry.ID] = entry
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, s.info(entry))
}

func (s *Server) info(entry *instanceEntry) instanceInfo {
	return instanceInfo{
		ID:     entry.ID,
		Nodes:  entry.Doc.Instance.G.N(),
		Edges:  entry.Doc.Instance.G.M(),
		Scheme: entry.Doc.SchemeName,
		Proof:  len(entry.Doc.Proof) > 0,
	}
}

func (s *Server) handleListInstances(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]instanceInfo, 0, len(s.instances))
	for _, entry := range s.instances {
		out = append(out, s.info(entry))
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDeleteInstance(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	entry := s.instances[id]
	delete(s.instances, id)
	s.mu.Unlock()
	if entry == nil {
		writeError(w, http.StatusNotFound, "unknown instance %q", id)
		return
	}
	// Checks already in flight finish on the engine they resolved; the
	// engine and its caches are garbage collected once they drain.
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (s *Server) handleProve(w http.ResponseWriter, r *http.Request) {
	var req checkRequest
	if !decodeJSON(w, r, &req) || !rejectFields(w, &req, "/prove") {
		return
	}
	e, _, scheme, err := s.resolve(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	proof, err := scheme.Prove(e.Instance())
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "prove: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"scheme":        scheme.Name(),
		"proof":         formatProof(proof),
		"bits_per_node": proof.Size(),
	})
}

func (s *Server) checkOne(e *engine.Engine, scheme core.Scheme, p core.Proof, distributed bool) (*core.Result, error) {
	if distributed {
		return e.CheckDistributed(p, safeVerifier{scheme.Verifier()})
	}
	return e.CheckProof(p, safeVerifier{scheme.Verifier()}), nil
}

func toResponse(e *engine.Engine, p core.Proof, res *core.Result) checkResponse {
	return checkResponse{
		Accepted:  res.Accepted(),
		Nodes:     e.Instance().G.N(),
		ProofBits: p.Size(),
		Rejectors: res.Rejectors(),
	}
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req checkRequest
	if !decodeJSON(w, r, &req) || !rejectFields(w, &req, "/check") {
		return
	}
	e, doc, scheme, err := s.resolve(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	p, err := requestProof(e, doc, &req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := s.checkOne(e, scheme, p, req.Distributed)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "check: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, toResponse(e, p, res))
}

func (s *Server) handleCheckBatch(w http.ResponseWriter, r *http.Request) {
	var req checkRequest
	if !decodeJSON(w, r, &req) || !rejectFields(w, &req, "/check/batch") {
		return
	}
	e, _, scheme, err := s.resolve(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Proofs) == 0 {
		writeError(w, http.StatusBadRequest, "batch request needs a \"proofs\" array")
		return
	}
	proofs := make([]core.Proof, len(req.Proofs))
	for i, m := range req.Proofs {
		p, err := parseProof(e.Instance(), m)
		if err != nil {
			writeError(w, http.StatusBadRequest, "proofs[%d]: %v", i, err)
			return
		}
		proofs[i] = p
	}
	var results []*core.Result
	if req.Distributed {
		// The proofs of one batch run concurrently on a bounded worker
		// pool: each draws its own wirings from the engine's sharded
		// runtimes (dist.Network no longer serializes runs), so a
		// distributed batch saturates the machine instead of flooding
		// one proof at a time — without spawning a goroutine per proof.
		// After the first error, idle workers stop picking up proofs;
		// in-flight ones finish, and the smallest failing index wins.
		results = make([]*core.Result, len(proofs))
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			errIdx   = -1
			batchErr error
			next     atomic.Int64
		)
		workers := runtime.GOMAXPROCS(0)
		if workers > len(proofs) {
			workers = len(proofs)
		}
		wg.Add(workers)
		for range workers {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(proofs) {
						return
					}
					mu.Lock()
					failed := errIdx != -1
					mu.Unlock()
					if failed {
						return
					}
					res, err := e.CheckDistributed(proofs[i], safeVerifier{scheme.Verifier()})
					if err != nil {
						mu.Lock()
						if errIdx == -1 || i < errIdx {
							errIdx, batchErr = i, err
						}
						mu.Unlock()
						return
					}
					results[i] = res
				}
			}()
		}
		wg.Wait()
		if batchErr != nil {
			writeError(w, http.StatusInternalServerError, "proofs[%d]: %v", errIdx, batchErr)
			return
		}
	} else {
		results = e.CheckBatch(proofs, safeVerifier{scheme.Verifier()})
	}
	out := make([]checkResponse, len(results))
	accepted := 0
	for i, res := range results {
		out[i] = toResponse(e, proofs[i], res)
		if res.Accepted() {
			accepted++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"results":  out,
		"accepted": accepted,
		"checked":  len(out),
	})
}

// verdictLine is one NDJSON verdict of /check/stream; summaryLine is
// the trailing line that closes every stream.
type verdictLine struct {
	Node   int  `json:"node"`
	Accept bool `json:"accept"`
}

type summaryLine struct {
	Done         bool `json:"done"`
	Accepted     bool `json:"accepted"`
	Checked      int  `json:"checked"`
	Nodes        int  `json:"nodes"`
	StoppedEarly bool `json:"stopped_early"`
}

func (s *Server) handleCheckStream(w http.ResponseWriter, r *http.Request) {
	var req checkRequest
	if !decodeJSON(w, r, &req) || !rejectFields(w, &req, "/check/stream") {
		return
	}
	e, doc, scheme, err := s.resolve(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	p, err := requestProof(e, doc, &req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// The request context cancels the stream when the client hangs up;
	// stop_on_reject additionally cancels it on the first rejection.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	checked := 0
	accepted := true
	stopped := false
	for verdict := range e.CheckStream(ctx, p, safeVerifier{scheme.Verifier()}) {
		checked++
		if !verdict.Accept {
			accepted = false
		}
		_ = enc.Encode(verdictLine{Node: verdict.Node, Accept: verdict.Accept})
		if flusher != nil {
			flusher.Flush()
		}
		if !verdict.Accept && req.StopOnReject {
			stopped = true
			cancel()
			break
		}
	}
	// Drain: CheckStream's workers exit on the cancelled context.
	_ = enc.Encode(summaryLine{
		Done:         true,
		Accepted:     accepted && checked == e.Instance().G.N(),
		Checked:      checked,
		Nodes:        e.Instance().G.N(),
		StoppedEarly: stopped,
	})
	if flusher != nil {
		flusher.Flush()
	}
}

func (s *Server) handleSchemes(w http.ResponseWriter, r *http.Request) {
	names := make([]string, 0, len(s.schemes))
	for name := range s.schemes {
		names = append(names, name)
	}
	sort.Strings(names)
	writeJSON(w, http.StatusOK, names)
}
