package serve

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lcp/internal/bitstr"
	"lcp/internal/core"
	"lcp/internal/engine"
	"lcp/internal/partition"
	"lcp/internal/textio"
)

// maxBodyBytes bounds request bodies (instances and proof batches).
const maxBodyBytes = 16 << 20

// Config tunes the server itself, as opposed to the engines it wires
// (engine.Options). The zero value keeps every registered instance
// forever — the pre-eviction behaviour.
type Config struct {
	// MaxInstances bounds the in-memory instance store. When a new
	// registration would exceed it, the least-recently-used instance is
	// evicted: its engine (and every cached view skeleton and wiring
	// inside) becomes garbage once in-flight checks drain, and later
	// requests naming it get a 404 with code "evicted" so clients can
	// distinguish "never existed" from "aged out, re-register it".
	// 0 means unbounded.
	MaxInstances int
}

// Server is the HTTP verification service. Create with New; it
// implements http.Handler and is safe for concurrent use.
type Server struct {
	schemes map[string]core.Scheme
	opt     engine.Options
	cfg     Config
	mux     *http.ServeMux
	stats   map[string]*endpointStats

	mu           sync.Mutex
	instances    map[string]*instanceEntry
	lru          *list.List          // *instanceEntry, most recently used in front
	evicted      map[string]struct{} // ids dropped by the MaxInstances policy
	evictedQ     []string            // same ids, oldest first, for pruning
	evictedTotal int64               // monotone eviction count, for /stats
	nextID       int
}

// maxEvictedRemembered bounds how many evicted ids keep their distinct
// 404 body. The set exists for client UX, not correctness, so under
// registration churn the oldest evictions age out to a plain "unknown
// instance" error instead of growing the server's memory with every id
// ever evicted.
const maxEvictedRemembered = 1024

type instanceEntry struct {
	ID     string
	Doc    *textio.Document
	Engine *engine.Engine
	elem   *list.Element // LRU position; nil for inline one-shot entries
	// alt holds lazily wired engines for per-request partitioner
	// overrides, keyed by partitioner name and guarded by the server
	// mutex. They share the entry's instance; only the distributed-shard
	// cut differs, so each warms its own runtime caches on first use.
	alt map[string]*engine.Engine
}

// endpointStats is one endpoint's request counter and latency sum,
// updated lock-free on every call and reported by GET /stats.
type endpointStats struct {
	requests  atomic.Int64
	latencyNS atomic.Int64
}

// New builds a server over the given scheme registry (normally
// lcp.BuiltinSchemes()). The engine options apply to every instance the
// server wires.
func New(schemes map[string]core.Scheme, opt engine.Options) *Server {
	return NewWith(schemes, opt, Config{})
}

// NewWith is New with an explicit server configuration.
func NewWith(schemes map[string]core.Scheme, opt engine.Options, cfg Config) *Server {
	s := &Server{
		schemes:   schemes,
		opt:       opt,
		cfg:       cfg,
		mux:       http.NewServeMux(),
		stats:     make(map[string]*endpointStats),
		instances: make(map[string]*instanceEntry),
		lru:       list.New(),
		evicted:   make(map[string]struct{}),
	}
	s.handle("POST /instances", s.handleCreateInstance)
	s.handle("GET /instances", s.handleListInstances)
	s.handle("DELETE /instances/{id}", s.handleDeleteInstance)
	s.handle("POST /prove", s.handleProve)
	s.handle("POST /check", s.handleCheck)
	s.handle("POST /check/batch", s.handleCheckBatch)
	s.handle("POST /check/stream", s.handleCheckStream)
	s.handle("GET /schemes", s.handleSchemes)
	s.handle("GET /stats", s.handleStats)
	s.handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	return s
}

// handle registers a handler wrapped with per-endpoint metrics: a
// request count and a latency sum, cheap enough to sit on every call.
func (s *Server) handle(pattern string, fn http.HandlerFunc) {
	st := &endpointStats{}
	s.stats[pattern] = st
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		fn(w, r)
		st.requests.Add(1)
		st.latencyNS.Add(int64(time.Since(start)))
	})
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// ---- wire types ----

type checkRequest struct {
	// Instance is the id of a registered instance; Document is an
	// inline textio document for one-shot checks. Exactly one is set.
	Instance string `json:"instance,omitempty"`
	Document string `json:"document,omitempty"`
	// Scheme overrides the document's scheme directive.
	Scheme string `json:"scheme,omitempty"`
	// Proof maps node id to a bit string ("0110"); empty means the
	// document's proof lines.
	Proof map[string]string `json:"proof,omitempty"`
	// Proofs is the batch variant (POST /check/batch only).
	Proofs []map[string]string `json:"proofs,omitempty"`
	// Distributed selects the sharded message-passing path.
	Distributed bool `json:"distributed,omitempty"`
	// Partitioner overrides how the distributed path assigns nodes to
	// shards for this request: "contiguous", "bfs", or "greedy" (see
	// internal/partition). Requires Distributed. Empty means the
	// server's configured default. Each named partitioner gets its own
	// long-lived engine per registered instance, so repeated requests
	// amortize exactly like the default one.
	Partitioner string `json:"partitioner,omitempty"`
	// StopOnReject makes /check/stream cancel remaining work as soon
	// as the first rejection streams out.
	StopOnReject bool `json:"stop_on_reject,omitempty"`
}

type checkResponse struct {
	Accepted  bool  `json:"accepted"`
	Nodes     int   `json:"nodes"`
	ProofBits int   `json:"proof_bits"`
	Rejectors []int `json:"rejectors,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Code distinguishes machine-actionable failures; "evicted" marks
	// an instance dropped by the -max-instances LRU policy (the client
	// should re-register, not fix its id).
	Code string `json:"code,omitempty"`
}

type instanceInfo struct {
	ID     string `json:"id"`
	Nodes  int    `json:"nodes"`
	Edges  int    `json:"edges"`
	Scheme string `json:"scheme,omitempty"`
	Proof  bool   `json:"has_proof"`
}

// ---- helpers ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// rejectFields enforces per-endpoint strictness on the shared request
// shape: a field that the endpoint would silently ignore is a client
// bug (e.g. a "proofs" array sent to /check would otherwise fall back
// to the document's stored proof and report a verdict for a proof that
// was never checked), so it is rejected outright.
func rejectFields(w http.ResponseWriter, req *checkRequest, endpoint string) bool {
	bad := func(field string) bool {
		writeError(w, http.StatusBadRequest, "%q is not accepted by %s", field, endpoint)
		return false
	}
	if req.Proofs != nil && endpoint != "/check/batch" {
		return bad("proofs")
	}
	if req.Proof != nil && (endpoint == "/check/batch" || endpoint == "/prove") {
		return bad("proof")
	}
	if req.StopOnReject && endpoint != "/check/stream" {
		return bad("stop_on_reject")
	}
	if req.Distributed && (endpoint == "/prove" || endpoint == "/check/stream") {
		return bad("distributed")
	}
	if req.Partitioner != "" {
		if endpoint == "/prove" || endpoint == "/check/stream" {
			return bad("partitioner")
		}
		// The partitioner shapes the distributed shard cut; on the
		// cached-view path it would be silently ignored, which is the
		// exact client bug this guard exists for.
		if !req.Distributed {
			writeError(w, http.StatusBadRequest, "%q requires %q", "partitioner", "distributed")
			return false
		}
	}
	return true
}

// parseProof decodes the JSON proof map into a core.Proof against the
// instance's node set.
func parseProof(in *core.Instance, m map[string]string) (core.Proof, error) {
	p := make(core.Proof, len(m))
	for key, bits := range m {
		id, err := strconv.Atoi(key)
		if err != nil {
			return nil, fmt.Errorf("bad proof node id %q", key)
		}
		if !in.G.Has(id) {
			return nil, fmt.Errorf("proof references unknown node %d", id)
		}
		var w bitstr.Writer
		for _, r := range bits {
			switch r {
			case '0':
				w.WriteBit(false)
			case '1':
				w.WriteBit(true)
			default:
				return nil, fmt.Errorf("node %d: bad proof bit %q", id, r)
			}
		}
		p[id] = w.String()
	}
	return p, nil
}

// formatProof renders a proof as the JSON wire map.
func formatProof(p core.Proof) map[string]string {
	out := make(map[string]string, len(p))
	for id, s := range p {
		out[strconv.Itoa(id)] = s.String()
	}
	return out
}

// safeVerifier wraps a scheme's verifier so that a panic while
// verifying one node fails closed: the node rejects instead of the
// panic escaping into an engine worker goroutine and taking the daemon
// down. Built-in verifiers do not panic on any input the property
// tests throw at them, but the service must not bet its life on that.
type safeVerifier struct{ v core.Verifier }

func (s safeVerifier) Radius() int { return s.v.Radius() }

func (s safeVerifier) Verify(w *core.View) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return s.v.Verify(w)
}

// httpError carries an explicit status and machine-readable code
// through the resolve path; writeResolveError renders it (and falls
// back to a plain 400 for ordinary validation errors).
type httpError struct {
	status int
	code   string
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func writeResolveError(w http.ResponseWriter, err error) {
	if he, ok := err.(*httpError); ok {
		writeJSON(w, he.status, errorResponse{Error: he.msg, Code: he.code})
		return
	}
	writeError(w, http.StatusBadRequest, "%v", err)
}

// resolve turns a check request into (entry, scheme). For registered
// instances the long-lived entry is returned (and touched in the LRU
// order); for inline documents a one-shot entry is wired on the spot.
func (s *Server) resolve(req *checkRequest) (*instanceEntry, core.Scheme, error) {
	var entry *instanceEntry
	switch {
	case req.Instance != "" && req.Document != "":
		return nil, nil, fmt.Errorf("set either instance or document, not both")
	case req.Instance != "":
		s.mu.Lock()
		entry = s.instances[req.Instance]
		if entry != nil {
			s.lru.MoveToFront(entry.elem)
		}
		_, wasEvicted := s.evicted[req.Instance]
		s.mu.Unlock()
		if entry == nil {
			if wasEvicted {
				return nil, nil, &httpError{
					status: http.StatusNotFound,
					code:   "evicted",
					msg: fmt.Sprintf("instance %q was evicted by the instance store's LRU policy (-max-instances=%d); re-register it",
						req.Instance, s.cfg.MaxInstances),
				}
			}
			return nil, nil, fmt.Errorf("unknown instance %q", req.Instance)
		}
	case req.Document != "":
		doc, err := textio.Parse(strings.NewReader(req.Document))
		if err != nil {
			return nil, nil, fmt.Errorf("parse document: %v", err)
		}
		entry = &instanceEntry{Doc: doc, Engine: engine.New(doc.Instance, s.opt)}
	default:
		return nil, nil, fmt.Errorf("missing instance id or inline document")
	}
	name := req.Scheme
	if name == "" {
		name = entry.Doc.SchemeName
	}
	if name == "" {
		return nil, nil, fmt.Errorf("no scheme: set \"scheme\" in the request or a scheme directive in the document")
	}
	scheme, ok := s.schemes[name]
	if !ok {
		return nil, nil, fmt.Errorf("unknown scheme %q (GET /schemes lists them)", name)
	}
	return entry, scheme, nil
}

// engineFor picks the entry's engine for the request's partitioner
// override. The empty override — and an override naming the server's
// configured default — is the primary engine; any other name gets a
// lazily wired engine of its own, cached on the entry so repeated
// requests amortize their view and runtime caches exactly like the
// default path.
func (s *Server) engineFor(entry *instanceEntry, name string) (*engine.Engine, error) {
	def := "contiguous"
	if s.opt.Partitioner != nil {
		def = s.opt.Partitioner.Name()
	}
	if name == "" || name == def {
		return entry.Engine, nil
	}
	p, err := partition.ByName(name)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := entry.alt[name]; ok {
		return e, nil
	}
	opt := s.opt
	// One policy at both levels, mirroring lcpserve's -partitioner
	// flag: the halo cut across dist runtimes and the shard layout
	// inside each runtime.
	opt.Partitioner = p
	opt.Dist.Partitioner = p
	e := engine.New(entry.Doc.Instance, opt)
	if entry.alt == nil {
		entry.alt = make(map[string]*engine.Engine)
	}
	entry.alt[name] = e
	return e, nil
}

// requestProof picks the proof for a single-proof request: the inline
// JSON proof if present, the document's proof lines otherwise.
func requestProof(e *engine.Engine, doc *textio.Document, req *checkRequest) (core.Proof, error) {
	if req.Proof != nil {
		return parseProof(e.Instance(), req.Proof)
	}
	return doc.Proof, nil
}

// ---- handlers ----

func (s *Server) handleCreateInstance(w http.ResponseWriter, r *http.Request) {
	// The body is already bounded by MaxBytesReader; parse it straight
	// off the wire.
	doc, err := textio.Parse(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse instance: %v", err)
		return
	}
	s.mu.Lock()
	s.nextID++
	entry := &instanceEntry{
		ID:     fmt.Sprintf("i%d", s.nextID),
		Doc:    doc,
		Engine: engine.New(doc.Instance, s.opt),
	}
	// Evict from the cold end until the newcomer fits. In-flight checks
	// on an evicted engine finish on the caches they resolved; the
	// engine is garbage once they drain.
	for s.cfg.MaxInstances > 0 && s.lru.Len() >= s.cfg.MaxInstances {
		old := s.lru.Remove(s.lru.Back()).(*instanceEntry)
		delete(s.instances, old.ID)
		s.evicted[old.ID] = struct{}{}
		s.evictedTotal++
		s.evictedQ = append(s.evictedQ, old.ID)
		if len(s.evictedQ) > maxEvictedRemembered {
			delete(s.evicted, s.evictedQ[0])
			s.evictedQ = append(s.evictedQ[:0], s.evictedQ[1:]...)
		}
	}
	entry.elem = s.lru.PushFront(entry)
	s.instances[entry.ID] = entry
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, s.info(entry))
}

func (s *Server) info(entry *instanceEntry) instanceInfo {
	return instanceInfo{
		ID:     entry.ID,
		Nodes:  entry.Doc.Instance.G.N(),
		Edges:  entry.Doc.Instance.G.M(),
		Scheme: entry.Doc.SchemeName,
		Proof:  len(entry.Doc.Proof) > 0,
	}
}

func (s *Server) handleListInstances(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]instanceInfo, 0, len(s.instances))
	for _, entry := range s.instances {
		out = append(out, s.info(entry))
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDeleteInstance(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	entry := s.instances[id]
	delete(s.instances, id)
	if entry != nil {
		s.lru.Remove(entry.elem)
	}
	_, wasEvicted := s.evicted[id]
	s.mu.Unlock()
	if entry == nil {
		if wasEvicted {
			writeJSON(w, http.StatusNotFound, errorResponse{
				Error: fmt.Sprintf("instance %q was already evicted", id),
				Code:  "evicted",
			})
			return
		}
		writeError(w, http.StatusNotFound, "unknown instance %q", id)
		return
	}
	// Checks already in flight finish on the engine they resolved; the
	// engine and its caches are garbage collected once they drain.
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (s *Server) handleProve(w http.ResponseWriter, r *http.Request) {
	var req checkRequest
	if !decodeJSON(w, r, &req) || !rejectFields(w, &req, "/prove") {
		return
	}
	entry, scheme, err := s.resolve(&req)
	if err != nil {
		writeResolveError(w, err)
		return
	}
	proof, err := scheme.Prove(entry.Engine.Instance())
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "prove: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"scheme":        scheme.Name(),
		"proof":         formatProof(proof),
		"bits_per_node": proof.Size(),
	})
}

func (s *Server) checkOne(e *engine.Engine, scheme core.Scheme, p core.Proof, distributed bool) (*core.Result, error) {
	if distributed {
		return e.CheckDistributed(p, safeVerifier{scheme.Verifier()})
	}
	return e.CheckProof(p, safeVerifier{scheme.Verifier()}), nil
}

func toResponse(e *engine.Engine, p core.Proof, res *core.Result) checkResponse {
	return checkResponse{
		Accepted:  res.Accepted(),
		Nodes:     e.Instance().G.N(),
		ProofBits: p.Size(),
		Rejectors: res.Rejectors(),
	}
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req checkRequest
	if !decodeJSON(w, r, &req) || !rejectFields(w, &req, "/check") {
		return
	}
	entry, scheme, err := s.resolve(&req)
	if err != nil {
		writeResolveError(w, err)
		return
	}
	e, err := s.engineFor(entry, req.Partitioner)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	p, err := requestProof(e, entry.Doc, &req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := s.checkOne(e, scheme, p, req.Distributed)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "check: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, toResponse(e, p, res))
}

func (s *Server) handleCheckBatch(w http.ResponseWriter, r *http.Request) {
	var req checkRequest
	if !decodeJSON(w, r, &req) || !rejectFields(w, &req, "/check/batch") {
		return
	}
	entry, scheme, err := s.resolve(&req)
	if err != nil {
		writeResolveError(w, err)
		return
	}
	e, err := s.engineFor(entry, req.Partitioner)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Proofs) == 0 {
		writeError(w, http.StatusBadRequest, "batch request needs a \"proofs\" array")
		return
	}
	proofs := make([]core.Proof, len(req.Proofs))
	for i, m := range req.Proofs {
		p, err := parseProof(e.Instance(), m)
		if err != nil {
			writeError(w, http.StatusBadRequest, "proofs[%d]: %v", i, err)
			return
		}
		proofs[i] = p
	}
	var results []*core.Result
	if req.Distributed {
		// The proofs of one batch run concurrently on a bounded worker
		// pool: each draws its own wirings from the engine's sharded
		// runtimes (dist.Network no longer serializes runs), so a
		// distributed batch saturates the machine instead of flooding
		// one proof at a time — without spawning a goroutine per proof.
		// After the first error, idle workers stop picking up proofs;
		// in-flight ones finish, and the smallest failing index wins.
		results = make([]*core.Result, len(proofs))
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			errIdx   = -1
			batchErr error
			next     atomic.Int64
		)
		workers := runtime.GOMAXPROCS(0)
		if workers > len(proofs) {
			workers = len(proofs)
		}
		wg.Add(workers)
		for range workers {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(proofs) {
						return
					}
					mu.Lock()
					failed := errIdx != -1
					mu.Unlock()
					if failed {
						return
					}
					res, err := e.CheckDistributed(proofs[i], safeVerifier{scheme.Verifier()})
					if err != nil {
						mu.Lock()
						if errIdx == -1 || i < errIdx {
							errIdx, batchErr = i, err
						}
						mu.Unlock()
						return
					}
					results[i] = res
				}
			}()
		}
		wg.Wait()
		if batchErr != nil {
			writeError(w, http.StatusInternalServerError, "proofs[%d]: %v", errIdx, batchErr)
			return
		}
	} else {
		results = e.CheckBatch(proofs, safeVerifier{scheme.Verifier()})
	}
	out := make([]checkResponse, len(results))
	accepted := 0
	for i, res := range results {
		out[i] = toResponse(e, proofs[i], res)
		if res.Accepted() {
			accepted++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"results":  out,
		"accepted": accepted,
		"checked":  len(out),
	})
}

// verdictLine is one NDJSON verdict of /check/stream; summaryLine is
// the trailing line that closes every stream.
type verdictLine struct {
	Node   int  `json:"node"`
	Accept bool `json:"accept"`
}

type summaryLine struct {
	Done         bool `json:"done"`
	Accepted     bool `json:"accepted"`
	Checked      int  `json:"checked"`
	Nodes        int  `json:"nodes"`
	StoppedEarly bool `json:"stopped_early"`
}

func (s *Server) handleCheckStream(w http.ResponseWriter, r *http.Request) {
	var req checkRequest
	if !decodeJSON(w, r, &req) || !rejectFields(w, &req, "/check/stream") {
		return
	}
	entry, scheme, err := s.resolve(&req)
	if err != nil {
		writeResolveError(w, err)
		return
	}
	e := entry.Engine
	p, err := requestProof(e, entry.Doc, &req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// The request context cancels the stream when the client hangs up;
	// stop_on_reject additionally cancels it on the first rejection.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	checked := 0
	accepted := true
	stopped := false
	for verdict := range e.CheckStream(ctx, p, safeVerifier{scheme.Verifier()}) {
		checked++
		if !verdict.Accept {
			accepted = false
		}
		_ = enc.Encode(verdictLine{Node: verdict.Node, Accept: verdict.Accept})
		if flusher != nil {
			flusher.Flush()
		}
		if !verdict.Accept && req.StopOnReject {
			stopped = true
			cancel()
			break
		}
	}
	// Drain: CheckStream's workers exit on the cancelled context.
	_ = enc.Encode(summaryLine{
		Done:         true,
		Accepted:     accepted && checked == e.Instance().G.N(),
		Checked:      checked,
		Nodes:        e.Instance().G.N(),
		StoppedEarly: stopped,
	})
	if flusher != nil {
		flusher.Flush()
	}
}

func (s *Server) handleSchemes(w http.ResponseWriter, r *http.Request) {
	names := make([]string, 0, len(s.schemes))
	for name := range s.schemes {
		names = append(names, name)
	}
	sort.Strings(names)
	writeJSON(w, http.StatusOK, names)
}

// statsEntry is one endpoint's row in the GET /stats response. The
// counters are monotone since process start; the derived average is a
// convenience, the sums are what a scraper should rate().
type statsEntry struct {
	Requests       int64   `json:"requests"`
	LatencyNSTotal int64   `json:"latency_ns_total"`
	LatencyMSAvg   float64 `json:"latency_ms_avg"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	endpoints := make(map[string]statsEntry, len(s.stats))
	for pattern, st := range s.stats {
		n := st.requests.Load()
		row := statsEntry{Requests: n, LatencyNSTotal: st.latencyNS.Load()}
		if n > 0 {
			row.LatencyMSAvg = float64(row.LatencyNSTotal) / float64(n) / 1e6
		}
		endpoints[pattern] = row
	}
	s.mu.Lock()
	instances, evicted := len(s.instances), s.evictedTotal
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"endpoints":         endpoints,
		"instances":         instances,
		"instances_evicted": evicted,
		"max_instances":     s.cfg.MaxInstances,
	})
}
