package serve_test

// Tests for the unified-façade surface of the server: the "backend"
// request option resolving through the shared config resolver, and the
// fixed-bound latency histograms on GET /stats.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"lcp"
	"lcp/internal/config"
	"lcp/internal/core"
	"lcp/internal/serve"
)

// TestServeBackendOption: every façade backend is selectable per
// request, answers identically on the honest and tampered proof, and
// echoes the backend it ran on.
func TestServeBackendOption(t *testing.T) {
	ts := newTestServer(t)
	in := lcp.NewInstance(lcp.Cycle(12))
	scheme := lcp.BipartiteScheme()
	p, err := scheme.Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	id := registerInstance(t, ts, docText(t, in, "bipartite", nil))
	tampered := core.FlipBit(p, 2)
	wantTampered := core.Check(in, tampered, scheme.Verifier())
	for _, backend := range []string{"core", "dist", "engine", "engine-dist"} {
		var verdict struct {
			Accepted bool   `json:"accepted"`
			Backend  string `json:"backend"`
		}
		resp, body := postJSON(t, ts.URL+"/check", map[string]any{
			"instance": id, "proof": proofWire(p), "backend": backend,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("backend %q: status %d: %s", backend, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &verdict); err != nil {
			t.Fatal(err)
		}
		if !verdict.Accepted {
			t.Fatalf("backend %q rejected the honest proof", backend)
		}
		if verdict.Backend != backend {
			t.Fatalf("backend %q: response says %q", backend, verdict.Backend)
		}

		var rej struct {
			Accepted  bool  `json:"accepted"`
			Rejectors []int `json:"rejectors"`
		}
		resp, body = postJSON(t, ts.URL+"/check", map[string]any{
			"instance": id, "proof": proofWire(tampered), "backend": backend,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("backend %q tampered: status %d: %s", backend, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &rej); err != nil {
			t.Fatal(err)
		}
		if rej.Accepted {
			t.Fatalf("backend %q accepted the tampered proof", backend)
		}
		if len(rej.Rejectors) != len(wantTampered.Rejectors()) {
			t.Fatalf("backend %q: rejectors %v, want %v", backend, rej.Rejectors, wantTampered.Rejectors())
		}

		// Batch through the same backend.
		resp, body = postJSON(t, ts.URL+"/check/batch", map[string]any{
			"instance": id, "proofs": []map[string]string{proofWire(p), proofWire(tampered)}, "backend": backend,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("backend %q batch: status %d: %s", backend, resp.StatusCode, body)
		}
		var batch struct {
			Accepted int `json:"accepted"`
			Checked  int `json:"checked"`
		}
		if err := json.Unmarshal(body, &batch); err != nil {
			t.Fatal(err)
		}
		if batch.Checked != 2 || batch.Accepted != 1 {
			t.Fatalf("backend %q batch: %d/%d accepted, want 1/2", backend, batch.Accepted, batch.Checked)
		}
	}
}

// TestServeBackendGuards: conflicting or misdirected backend options
// are rejected with 400, through the same resolver errors the flags
// produce.
func TestServeBackendGuards(t *testing.T) {
	ts := newTestServer(t)
	in := lcp.NewInstance(lcp.Cycle(8))
	id := registerInstance(t, ts, docText(t, in, "bipartite", nil))
	for name, req := range map[string]map[string]any{
		"unknown backend":          {"instance": id, "backend": "quantum"},
		"backend plus distributed": {"instance": id, "backend": "engine", "distributed": true},
		"partitioner on engine":    {"instance": id, "backend": "engine", "partitioner": "bfs"},
	} {
		resp, body := postJSON(t, ts.URL+"/check", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, body)
		}
	}
	// Distributed backends cannot stream.
	resp, body := postJSON(t, ts.URL+"/check/stream", map[string]any{
		"instance": id, "backend": "engine-dist",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("stream on engine-dist: status %d: %s", resp.StatusCode, body)
	}
	// But the shared-memory backends can.
	resp, _ = postJSON(t, ts.URL+"/check/stream", map[string]any{
		"instance": id, "backend": "core",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream on core backend: status %d", resp.StatusCode)
	}
	// Partitioner with a distributed backend passes the guard.
	resp, body = postJSON(t, ts.URL+"/check", map[string]any{
		"instance": id, "backend": "dist", "partitioner": "bfs",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dist+bfs: status %d: %s", resp.StatusCode, body)
	}
}

// TestServeBatchColumnsOption: the "batch_columns" batch-strategy
// option forces (or forbids) the column-wise engine path per request,
// yields the same per-proof verdicts either way, and is guarded the
// same way the partitioner is — it only makes sense on the engine
// backend.
func TestServeBatchColumnsOption(t *testing.T) {
	ts := newTestServer(t)
	in := lcp.NewInstance(lcp.Cycle(12))
	scheme := lcp.BipartiteScheme()
	p, err := scheme.Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	id := registerInstance(t, ts, docText(t, in, "bipartite", nil))
	proofs := []map[string]string{proofWire(p), proofWire(core.FlipBit(p, 2)), proofWire(p)}
	for _, mode := range []string{"auto", "true", "false"} {
		resp, body := postJSON(t, ts.URL+"/check/batch", map[string]any{
			"instance": id, "proofs": proofs, "backend": "engine", "batch_columns": mode,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch_columns=%q: status %d: %s", mode, resp.StatusCode, body)
		}
		var out struct {
			Results []struct {
				Accepted bool `json:"accepted"`
			} `json:"results"`
			Accepted int `json:"accepted"`
			Checked  int `json:"checked"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Checked != 3 || out.Accepted != 2 {
			t.Fatalf("batch_columns=%q: %d/%d accepted, want 2/3", mode, out.Accepted, out.Checked)
		}
		if !out.Results[0].Accepted || out.Results[1].Accepted || !out.Results[2].Accepted {
			t.Fatalf("batch_columns=%q: per-proof verdicts %v wrong", mode, out.Results)
		}
	}
	// Misdirected or malformed strategy options fail the request.
	for name, req := range map[string]map[string]any{
		"non-engine backend": {"instance": id, "proofs": proofs, "backend": "dist", "batch_columns": "true"},
		"distributed engine": {"instance": id, "proofs": proofs, "backend": "engine-dist", "batch_columns": "true"},
		"bogus value":        {"instance": id, "proofs": proofs, "backend": "engine", "batch_columns": "sideways"},
	} {
		resp, body := postJSON(t, ts.URL+"/check/batch", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, body)
		}
	}
}

// TestServeDefaultBackendFlag: a server whose configured default
// backend is distributed runs plain /check requests distributed — and
// honors a partitioner-only override without the client repeating the
// server's own default backend.
func TestServeDefaultBackendFlag(t *testing.T) {
	var base config.Config
	if err := base.Set("backend", "engine-dist"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(lcp.BuiltinSchemes(), base))
	t.Cleanup(ts.Close)
	in := lcp.NewInstance(lcp.Cycle(10))
	scheme := lcp.BipartiteScheme()
	p, err := scheme.Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	id := registerInstance(t, ts, docText(t, in, "bipartite", nil))
	for _, req := range []map[string]any{
		{"instance": id, "proof": proofWire(p)},
		{"instance": id, "proof": proofWire(p), "partitioner": "bfs"},
	} {
		resp, body := postJSON(t, ts.URL+"/check", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%v: status %d: %s", req, resp.StatusCode, body)
		}
		var out struct {
			Accepted bool   `json:"accepted"`
			Backend  string `json:"backend"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if !out.Accepted || out.Backend != "engine-dist" {
			t.Fatalf("%v: accepted=%v backend=%q, want accepted on engine-dist", req, out.Accepted, out.Backend)
		}
	}
	// The explicit per-request override back to a shared-memory backend
	// makes the partitioner meaningless again: still a 400.
	resp, body := postJSON(t, ts.URL+"/check", map[string]any{
		"instance": id, "proof": proofWire(p), "backend": "engine", "partitioner": "bfs",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("engine+partitioner on distributed-default server: status %d: %s", resp.StatusCode, body)
	}
}

// TestServeStatsLatencyHistograms: every /stats row carries the fixed
// bucket bounds and counts whose sum equals the request counter.
func TestServeStatsLatencyHistograms(t *testing.T) {
	ts := newTestServer(t)
	in := lcp.NewInstance(lcp.Cycle(8))
	id := registerInstance(t, ts, docText(t, in, "bipartite", nil))
	const checks = 5
	for range checks {
		resp, body := postJSON(t, ts.URL+"/check", map[string]any{"instance": id, "proof": map[string]string{}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("check: status %d: %s", resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Endpoints map[string]struct {
			Requests            int64     `json:"requests"`
			LatencyBucketLEMS   []float64 `json:"latency_bucket_le_ms"`
			LatencyBucketCounts []int64   `json:"latency_bucket_counts"`
		} `json:"endpoints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	row, ok := stats.Endpoints["POST /check"]
	if !ok {
		t.Fatalf("no POST /check row in %v", stats.Endpoints)
	}
	if row.Requests != checks {
		t.Fatalf("POST /check requests = %d, want %d", row.Requests, checks)
	}
	if len(row.LatencyBucketLEMS) == 0 ||
		len(row.LatencyBucketCounts) != len(row.LatencyBucketLEMS)+1 {
		t.Fatalf("bucket shape wrong: %d bounds, %d counts",
			len(row.LatencyBucketLEMS), len(row.LatencyBucketCounts))
	}
	for i := 1; i < len(row.LatencyBucketLEMS); i++ {
		if row.LatencyBucketLEMS[i] <= row.LatencyBucketLEMS[i-1] {
			t.Fatalf("bucket bounds not increasing: %v", row.LatencyBucketLEMS)
		}
	}
	var sum int64
	for _, c := range row.LatencyBucketCounts {
		if c < 0 {
			t.Fatalf("negative bucket count in %v", row.LatencyBucketCounts)
		}
		sum += c
	}
	if sum != row.Requests {
		t.Fatalf("bucket counts sum to %d, requests %d", sum, row.Requests)
	}
	// Endpoints never hit report all-zero histograms with the same
	// bounds (the fixed-bound contract).
	idle, ok := stats.Endpoints["DELETE /instances/{id}"]
	if !ok {
		t.Fatal("no DELETE row")
	}
	var idleSum int64
	for _, c := range idle.LatencyBucketCounts {
		idleSum += c
	}
	if idleSum != 0 || len(idle.LatencyBucketLEMS) != len(row.LatencyBucketLEMS) {
		t.Fatalf("idle endpoint histogram wrong: sum %d, %d bounds", idleSum, len(idle.LatencyBucketLEMS))
	}
}
