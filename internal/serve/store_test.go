package serve_test

// Tests for the server-level features around the engines: the bounded
// LRU instance store, the /stats counters, and the per-request
// partitioner override of the distributed path.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"lcp"
	"lcp/internal/config"
	"lcp/internal/core"
	"lcp/internal/serve"
)

// TestServeInstanceLRUEviction: with -max-instances=2, registering a
// third instance evicts the least recently used one; requests naming it
// get a 404 with the distinct "evicted" error body, while a truly
// unknown id stays a plain error without that code.
func TestServeInstanceLRUEviction(t *testing.T) {
	ts := httptest.NewServer(serve.NewWith(lcp.BuiltinSchemes(), config.Config{}, serve.Config{MaxInstances: 2}))
	t.Cleanup(ts.Close)

	doc := func(n int) string {
		in := lcp.NewInstance(lcp.Cycle(n))
		return docText(t, in, "bipartite", nil)
	}
	id1 := registerInstance(t, ts, doc(4))
	id2 := registerInstance(t, ts, doc(6))

	// Touch id1 so id2 becomes the LRU victim.
	resp, body := postJSON(t, ts.URL+"/check", map[string]any{"instance": id1, "proof": map[string]string{}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("touch check: status %d: %s", resp.StatusCode, body)
	}

	id3 := registerInstance(t, ts, doc(8))
	if id3 == id1 || id3 == id2 {
		t.Fatalf("id reuse: %s", id3)
	}

	// id2 was evicted: distinct 404 body with code "evicted".
	resp, body = postJSON(t, ts.URL+"/check", map[string]any{"instance": id2, "proof": map[string]string{}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted check: status %d: %s", resp.StatusCode, body)
	}
	var errBody struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(body, &errBody); err != nil {
		t.Fatal(err)
	}
	if errBody.Code != "evicted" || errBody.Error == "" {
		t.Fatalf("evicted check body: %s", body)
	}

	// id1 survived because the check touched it.
	resp, body = postJSON(t, ts.URL+"/check", map[string]any{"instance": id1, "proof": map[string]string{}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("survivor check: status %d: %s", resp.StatusCode, body)
	}

	// DELETE of the evicted id also reports the distinct body.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/instances/"+id2, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted delete: status %d", dresp.StatusCode)
	}
	if err := json.NewDecoder(dresp.Body).Decode(&errBody); err != nil {
		t.Fatal(err)
	}
	if errBody.Code != "evicted" {
		t.Fatalf("evicted delete body code %q", errBody.Code)
	}

	// A never-registered id has no "evicted" code.
	_, body = postJSON(t, ts.URL+"/check", map[string]any{"instance": "i999", "proof": map[string]string{}})
	var unknownBody struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(body, &unknownBody); err != nil {
		t.Fatal(err)
	}
	if unknownBody.Code == "evicted" {
		t.Fatalf("unknown id mislabelled evicted: %s", body)
	}
}

// TestServeStats: the /stats endpoint reports per-endpoint request
// counts and latency sums that move with traffic.
func TestServeStats(t *testing.T) {
	ts := httptest.NewServer(serve.NewWith(lcp.BuiltinSchemes(), config.Config{}, serve.Config{MaxInstances: 8}))
	t.Cleanup(ts.Close)

	in := lcp.NewInstance(lcp.Cycle(8))
	id := registerInstance(t, ts, docText(t, in, "bipartite", nil))
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/check", map[string]any{"instance": id, "proof": map[string]string{}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("check %d: status %d: %s", i, resp.StatusCode, body)
		}
	}

	read := func() map[string]struct {
		Requests       int64   `json:"requests"`
		LatencyNSTotal int64   `json:"latency_ns_total"`
		LatencyMSAvg   float64 `json:"latency_ms_avg"`
	} {
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/stats status %d", resp.StatusCode)
		}
		var out struct {
			Endpoints map[string]struct {
				Requests       int64   `json:"requests"`
				LatencyNSTotal int64   `json:"latency_ns_total"`
				LatencyMSAvg   float64 `json:"latency_ms_avg"`
			} `json:"endpoints"`
			Instances    int `json:"instances"`
			MaxInstances int `json:"max_instances"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if out.Instances != 1 || out.MaxInstances != 8 {
			t.Fatalf("instances=%d max=%d", out.Instances, out.MaxInstances)
		}
		return out.Endpoints
	}

	stats := read()
	check := stats["POST /check"]
	if check.Requests != 3 {
		t.Errorf("POST /check requests = %d, want 3", check.Requests)
	}
	if check.LatencyNSTotal <= 0 || check.LatencyMSAvg <= 0 {
		t.Errorf("POST /check latency not recorded: %+v", check)
	}
	if stats["POST /instances"].Requests != 1 {
		t.Errorf("POST /instances requests = %d, want 1", stats["POST /instances"].Requests)
	}
	// The first /stats read counts itself on the second read.
	if got := read()["GET /stats"].Requests; got < 1 {
		t.Errorf("GET /stats requests = %d, want >= 1", got)
	}
	// Untouched endpoints report zero rows, not absent ones.
	if row, ok := stats["POST /check/stream"]; !ok || row.Requests != 0 {
		t.Errorf("untouched endpoint row: %+v ok=%v", row, ok)
	}
}

// TestServePartitionerOption: distributed checks accept a per-request
// partitioner override, verdicts agree across all of them, junk names
// are rejected, and the option without distributed=true is a client
// error.
func TestServePartitionerOption(t *testing.T) {
	ts := newTestServer(t)
	in := lcp.NewInstance(lcp.Grid(5, 5))
	scheme := lcp.BipartiteScheme()
	p, err := scheme.Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	id := registerInstance(t, ts, docText(t, in, "bipartite", nil))

	want := core.Check(in, p, scheme.Verifier()).Accepted()
	for _, name := range []string{"", "contiguous", "bfs", "greedy"} {
		reqBody := map[string]any{"instance": id, "proof": proofWire(p), "distributed": true}
		if name != "" {
			reqBody["partitioner"] = name
		}
		resp, body := postJSON(t, ts.URL+"/check", reqBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("partitioner=%q: status %d: %s", name, resp.StatusCode, body)
		}
		var out struct {
			Accepted bool `json:"accepted"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Accepted != want {
			t.Errorf("partitioner=%q: accepted=%v, want %v", name, out.Accepted, want)
		}
	}

	// Batch path takes the override too.
	resp, body := postJSON(t, ts.URL+"/check/batch", map[string]any{
		"instance": id, "distributed": true, "partitioner": "bfs",
		"proofs": []map[string]string{proofWire(p), proofWire(core.FlipBit(p, 1))},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch bfs: status %d: %s", resp.StatusCode, body)
	}

	for name, reqBody := range map[string]map[string]any{
		"junk-name":       {"instance": id, "proof": proofWire(p), "distributed": true, "partitioner": "quantum"},
		"not-distributed": {"instance": id, "proof": proofWire(p), "partitioner": "bfs"},
		"on-prove":        {"instance": id, "distributed": true, "partitioner": "bfs"},
	} {
		url := ts.URL + "/check"
		if name == "on-prove" {
			url = ts.URL + "/prove"
		}
		resp, body := postJSON(t, url, reqBody)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, resp.StatusCode, body)
		}
	}
}

// TestServePartitionerEnginesAmortize: repeated overridden requests hit
// the same cached alternate engine — observable as stable verdicts over
// many proofs without re-registering (and exercised for races by -race
// CI runs).
func TestServePartitionerEnginesAmortize(t *testing.T) {
	ts := newTestServer(t)
	in := lcp.NewInstance(lcp.Cycle(15))
	scheme := lcp.OddNScheme()
	p, err := scheme.Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	id := registerInstance(t, ts, docText(t, in, "odd-n", nil))
	for i := 0; i < 6; i++ {
		proof := p
		wantAccept := true
		if i%2 == 1 {
			proof = core.FlipBit(p, int64(i))
			wantAccept = core.Check(in, proof, scheme.Verifier()).Accepted()
		}
		resp, body := postJSON(t, ts.URL+"/check", map[string]any{
			"instance": id, "proof": proofWire(proof), "distributed": true, "partitioner": "greedy",
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d: %s", i, resp.StatusCode, body)
		}
		var out struct {
			Accepted bool `json:"accepted"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Accepted != wantAccept {
			t.Errorf("run %d: accepted=%v, want %v", i, out.Accepted, wantAccept)
		}
	}
}
