package serve_test

// HTTP-surface tests for the dist-tcp backend: the 400 a server with no
// worker fleet returns (satellite: the escape hatch must fail with a
// clear message, not a hang), and a live check fanned out over an
// in-process worker fleet with verdicts matching the sequential
// reference.

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lcp"
	"lcp/internal/config"
	"lcp/internal/core"
	"lcp/internal/remote"
	"lcp/internal/serve"
)

// checkResponseWire is the subset of the /check response body these
// tests assert on.
type checkResponseWire struct {
	Accepted bool   `json:"accepted"`
	Backend  string `json:"backend"`
}

func decodeBody(t *testing.T, body []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("decode %q: %v", body, err)
	}
}

// startServeFleet boots n in-process workers serving the built-in
// scheme registry on loopback listeners, torn down with the test.
func startServeFleet(t *testing.T, n int) []string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		w := remote.NewWorker(ln, lcp.BuiltinSchemes())
		go func() {
			_ = w.Serve(ctx)
		}()
		t.Cleanup(func() { _ = w.Close() })
		addrs[i] = w.Addr()
	}
	return addrs
}

func TestServeDistTCPWithoutFleetIs400(t *testing.T) {
	ts := newTestServer(t) // no WorkerAddrs configured
	in := lcp.NewInstance(lcp.Cycle(9))
	scheme := lcp.OddNScheme()
	p, err := scheme.Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	id := registerInstance(t, ts, docText(t, in, "odd-n", nil))

	resp, body := postJSON(t, ts.URL+"/check", map[string]any{
		"instance": id,
		"proof":    proofWire(p),
		"backend":  "dist-tcp",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	for _, needle := range []string{"worker", "lcpworker", "-worker-addrs"} {
		if !strings.Contains(string(body), needle) {
			t.Errorf("400 body should mention %q (the fix): %s", needle, body)
		}
	}
}

func TestServeDistTCPCheckMatchesReference(t *testing.T) {
	addrs := startServeFleet(t, 2)
	ts := httptest.NewServer(serve.New(lcp.BuiltinSchemes(), config.Config{WorkerAddrs: addrs}))
	t.Cleanup(ts.Close)

	in := lcp.NewInstance(lcp.Cycle(15))
	scheme := lcp.OddNScheme()
	good, err := scheme.Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	bad := core.FlipBit(good, 7)
	id := registerInstance(t, ts, docText(t, in, "odd-n", nil))

	for _, tc := range []struct {
		name  string
		proof core.Proof
	}{
		{"honest", good},
		{"flipped", bad},
	} {
		want := core.Check(in, tc.proof, scheme.Verifier()).Accepted()
		// Two requests per proof: the second exercises the cached
		// remote checker (same scheme+partitioner key) on the entry.
		for round := 0; round < 2; round++ {
			resp, body := postJSON(t, ts.URL+"/check", map[string]any{
				"instance": id,
				"proof":    proofWire(tc.proof),
				"backend":  "dist-tcp",
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s[%d]: status %d: %s", tc.name, round, resp.StatusCode, body)
			}
			var out checkResponseWire
			decodeBody(t, body, &out)
			if out.Accepted != want {
				t.Errorf("%s[%d]: accepted=%v, reference says %v", tc.name, round, out.Accepted, want)
			}
			if out.Backend != "dist-tcp" {
				t.Errorf("%s[%d]: backend label %q, want dist-tcp", tc.name, round, out.Backend)
			}
		}
	}
}

// TestServeDistTCPDeleteReleasesFleet deletes the instance after a
// dist-tcp check and then reuses the same fleet from a fresh server:
// deletion must deregister (asynchronously) rather than leave the
// workers' per-instance state poisoned or the conns wedged.
func TestServeDistTCPDeleteReleasesFleet(t *testing.T) {
	addrs := startServeFleet(t, 2)
	ts := httptest.NewServer(serve.New(lcp.BuiltinSchemes(), config.Config{WorkerAddrs: addrs}))
	t.Cleanup(ts.Close)

	in := lcp.NewInstance(lcp.Cycle(11))
	scheme := lcp.OddNScheme()
	p, err := scheme.Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	id := registerInstance(t, ts, docText(t, in, "odd-n", nil))
	resp, body := postJSON(t, ts.URL+"/check", map[string]any{
		"instance": id, "proof": proofWire(p), "backend": "dist-tcp",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check: status %d: %s", resp.StatusCode, body)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/instances/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
	if del.StatusCode != http.StatusNoContent && del.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", del.StatusCode)
	}

	// Fresh server, same fleet: a new instance must register and check
	// cleanly through the same worker processes.
	ts2 := httptest.NewServer(serve.New(lcp.BuiltinSchemes(), config.Config{WorkerAddrs: addrs}))
	t.Cleanup(ts2.Close)
	id2 := registerInstance(t, ts2, docText(t, in, "odd-n", nil))
	resp2, body2 := postJSON(t, ts2.URL+"/check", map[string]any{
		"instance": id2, "proof": proofWire(p), "backend": "dist-tcp",
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-delete check: status %d: %s", resp2.StatusCode, body2)
	}
	var out checkResponseWire
	decodeBody(t, body2, &out)
	if !out.Accepted {
		t.Error("post-delete check: honest proof rejected")
	}
}
