// Package serve implements the HTTP/JSON verification service behind
// cmd/lcpserve: the repo's traffic-serving surface.
//
// The service is built for the amortized workload the engine package
// targets — the same graph verified against many proofs, the "many
// provers, one verifier network" reading of a proof labelling scheme.
// Clients register an instance once (POST /instances, body in the
// textio text format) and the server wires a long-lived engine for it;
// every subsequent check against that instance reuses the cached
// radius-r views, the pooled flat proof tables, and the sharded
// message-passing runtimes, and only pays for the proof under test.
//
// Endpoints:
//
//	POST   /instances      register a textio document; returns {"id": ...}
//	GET    /instances      list registered instances
//	DELETE /instances/{id} evict an instance and its caches
//	POST   /prove          run a scheme's prover; returns the proof
//	POST   /check          verify one proof; returns the verdict
//	POST   /check/batch    verify many proofs in one request
//	POST   /check/stream   NDJSON: one verdict line per node as decided,
//	                       optional early exit on the first rejection
//	GET    /schemes        list the scheme registry
//	GET    /healthz        liveness probe
//
// Check requests address a registered instance by id, or carry a
// one-shot textio document inline; the scheme defaults to the
// document's "scheme" directive and the proof to its "proof" lines.
// Setting "distributed": true routes a check through the engine's
// message-passing path. The proofs of a distributed batch run
// concurrently — each draws its own wirings from the instance's
// reusable dist networks — so one /check/batch request saturates the
// machine instead of flooding one proof at a time; docs/ARCHITECTURE.md
// traces the full request lifecycle.
package serve
