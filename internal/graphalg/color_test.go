package graphalg

import (
	"math/rand"
	"testing"

	"lcp/internal/graph"
)

func TestKColorKnownChromaticNumbers(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		chi  int
	}{
		{"P5", graph.Path(5), 2},
		{"C6", graph.Cycle(6), 2},
		{"C7", graph.Cycle(7), 3},
		{"K4", graph.Complete(4), 4},
		{"K33", graph.CompleteBipartite(3, 3), 2},
		{"Petersen", graph.Petersen(), 3},
		{"Wheel5", graph.Wheel(5), 4}, // odd wheel
		{"Wheel6", graph.Wheel(6), 3}, // even wheel
		{"Q4", graph.Hypercube(4), 2},
		{"K1", graph.Path(1), 1},
	}
	for _, c := range cases {
		if got := ChromaticNumber(c.g); got != c.chi {
			t.Errorf("χ(%s) = %d, want %d", c.name, got, c.chi)
		}
		// KColor at χ succeeds and is proper; at χ−1 it fails.
		col := KColor(c.g, c.chi)
		if col == nil {
			t.Errorf("%s: no %d-colouring found", c.name, c.chi)
		} else if !IsProperColoring(c.g, c.chi, col) {
			t.Errorf("%s: improper colouring", c.name)
		}
		if c.chi > 1 && KColor(c.g, c.chi-1) != nil {
			t.Errorf("%s: coloured with %d < χ", c.name, c.chi-1)
		}
	}
}

func TestKColorWithSeeds(t *testing.T) {
	g := graph.Cycle(6)
	col := KColorWithSeeds(g, 2, map[int]int{1: 1})
	if col == nil {
		t.Fatal("seeded colouring failed")
	}
	if col[1] != 1 {
		t.Fatalf("seed ignored: col[1] = %d", col[1])
	}
	if !IsProperColoring(g, 2, col) {
		t.Fatal("improper seeded colouring")
	}
	// Conflicting seeds on adjacent nodes are infeasible.
	if KColorWithSeeds(g, 2, map[int]int{1: 0, 2: 0}) != nil {
		t.Error("conflicting seeds satisfied")
	}
	// Out-of-range seed.
	if KColorWithSeeds(g, 2, map[int]int{1: 5}) != nil {
		t.Error("out-of-range seed satisfied")
	}
}

func TestIsProperColoringRejects(t *testing.T) {
	g := graph.Path(3)
	if IsProperColoring(g, 2, map[int]int{1: 0, 2: 1}) {
		t.Error("partial colouring accepted")
	}
	if IsProperColoring(g, 2, map[int]int{1: 0, 2: 0, 3: 1}) {
		t.Error("monochromatic edge accepted")
	}
	if IsProperColoring(g, 2, map[int]int{1: 0, 2: 3, 3: 0}) {
		t.Error("colour ≥ k accepted")
	}
}

func TestGreedyColoringProper(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 15; i++ {
		g := graph.RandomGNP(30, 0.2, rng.Int63())
		col, k := GreedyColoring(g)
		if !IsProperColoring(g, k, col) {
			t.Fatalf("greedy colouring improper on trial %d", i)
		}
		// Greedy never exceeds Δ+1.
		maxDeg := 0
		for _, v := range g.Nodes() {
			if g.Degree(v) > maxDeg {
				maxDeg = g.Degree(v)
			}
		}
		if k > maxDeg+1 {
			t.Fatalf("greedy used %d > Δ+1 = %d colours", k, maxDeg+1)
		}
	}
}

func TestChromaticAgreesWithBipartition(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 15; i++ {
		g := graph.RandomConnected(12, 0.2, rng.Int63())
		_, _, bip := Bipartition(g)
		chi := ChromaticNumber(g)
		if bip != (chi <= 2) {
			t.Fatalf("trial %d: bipartite=%v but χ=%d", i, bip, chi)
		}
	}
}

func TestKColorLargeSparse(t *testing.T) {
	// A moderately large forced instance: 3-colouring a 200-node odd
	// cycle with chords removed is easy; this guards against pathological
	// slowdowns in propagation.
	g := graph.Cycle(201)
	col := KColor(g, 3)
	if col == nil || !IsProperColoring(g, 3, col) {
		t.Fatal("failed to 3-colour C201")
	}
}
