package graphalg

import (
	"sort"

	"lcp/internal/graph"
)

// Hamiltonian cycle search — the prover behind the Θ(log n) Hamiltonian
// cycle scheme (§5.1: "Hamiltonian cycles and Hamiltonian paths can be
// verified by using the same technique"). Exact backtracking with basic
// pruning; provers may be exponential, verifiers must be local.

// HamiltonianCycle returns a Hamiltonian cycle of g as a node sequence of
// length n (the closing edge back to the first node is implicit), or nil
// if none exists. For n < 3 there is no cycle in a simple graph.
func HamiltonianCycle(g *graph.Graph) []int {
	n := g.N()
	if n < 3 {
		return nil
	}
	for _, v := range g.Nodes() {
		if g.Degree(v) < 2 {
			return nil
		}
	}
	if !Connected(g) {
		return nil
	}
	nodes := g.Nodes()
	start := nodes[0]
	path := []int{start}
	inPath := map[int]bool{start: true}
	var rec func() []int
	rec = func() []int {
		last := path[len(path)-1]
		if len(path) == n {
			if g.HasEdge(last, start) {
				return append([]int{}, path...)
			}
			return nil
		}
		// Prune: if any unvisited node (other than the potential next
		// hops) has fewer than 2 unvisited-or-endpoint neighbours, the
		// partial path cannot extend to a cycle. A cheap version: sort
		// candidates by remaining degree (Warnsdorff-style).
		cands := append([]int{}, g.Neighbors(last)...)
		sort.Slice(cands, func(i, j int) bool {
			return remainingDegree(g, inPath, cands[i]) < remainingDegree(g, inPath, cands[j])
		})
		for _, u := range cands {
			if inPath[u] {
				continue
			}
			path = append(path, u)
			inPath[u] = true
			if res := rec(); res != nil {
				return res
			}
			inPath[u] = false
			path = path[:len(path)-1]
		}
		return nil
	}
	return rec()
}

func remainingDegree(g *graph.Graph, inPath map[int]bool, v int) int {
	d := 0
	for _, u := range g.Neighbors(v) {
		if !inPath[u] {
			d++
		}
	}
	return d
}

// IsHamiltonianCycleEdges reports whether the edge set forms a
// Hamiltonian cycle of g: every node has exactly two incident edges from
// the set, the set's edges all exist, and the set is connected.
func IsHamiltonianCycleEdges(g *graph.Graph, edges map[graph.Edge]bool) bool {
	deg := make(map[int]int, g.N())
	b := graph.NewBuilder(graph.Undirected)
	for _, v := range g.Nodes() {
		b.AddNode(v)
	}
	for e := range edges {
		if !g.HasEdge(e.U, e.V) {
			return false
		}
		deg[e.U]++
		deg[e.V]++
		b.AddEdge(e.U, e.V)
	}
	for _, v := range g.Nodes() {
		if deg[v] != 2 {
			return false
		}
	}
	return Connected(b.Graph())
}

// CycleEdges converts a Hamiltonian cycle node sequence into its edge set.
func CycleEdges(cycle []int) map[graph.Edge]bool {
	edges := make(map[graph.Edge]bool, len(cycle))
	for i := range cycle {
		edges[graph.NormEdge(cycle[i], cycle[(i+1)%len(cycle)])] = true
	}
	return edges
}
