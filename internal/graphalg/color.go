package graphalg

import (
	"sort"

	"lcp/internal/graph"
)

// Graph colouring provers. The chromatic-number schemes (§2.2, §5, §6.3)
// need: a proper k-colouring finder (certificate for χ ≤ k), the exact
// chromatic number on small graphs (ground truth for χ > k properties),
// and a 3-colouring solver fast enough for the §6.3 gadget graphs, which
// are large but heavily constraint-propagated. KColor therefore runs a
// DSATUR-ordered backtracking search with forward checking.

// IsProperColoring reports whether color assigns every node of g one of
// the values 0..k−1 with no monochromatic edge.
func IsProperColoring(g *graph.Graph, k int, color map[int]int) bool {
	for _, v := range g.Nodes() {
		c, ok := color[v]
		if !ok || c < 0 || c >= k {
			return false
		}
	}
	for _, e := range g.Edges() {
		if color[e.U] == color[e.V] {
			return false
		}
	}
	return true
}

// KColor finds a proper k-colouring of g, or returns nil if none exists.
// The search is exact (exponential in the worst case); the gadget graphs
// of §6.3 are essentially forced, so propagation does almost all the work
// there.
func KColor(g *graph.Graph, k int) map[int]int {
	return KColorWithSeeds(g, k, nil)
}

// KColorWithSeeds is KColor with some colours fixed in advance. Seeds let
// the §6.3 experiments steer which (x, y) ∈ A a gadget colouring encodes.
// It returns nil if no proper completion exists (or a seed is out of
// range).
func KColorWithSeeds(g *graph.Graph, k int, seeds map[int]int) map[int]int {
	if k <= 0 {
		if g.N() == 0 {
			return map[int]int{}
		}
		return nil
	}
	nodes := g.Nodes()
	n := len(nodes)
	idx := make(map[int]int, n)
	for i, v := range nodes {
		idx[v] = i
	}
	// domain[i] is a bitmask of allowed colours for node i.
	full := uint64(1)<<uint(k) - 1
	domain := make([]uint64, n)
	for i := range domain {
		domain[i] = full
	}
	for v, c := range seeds {
		if !g.Has(v) {
			continue
		}
		if c < 0 || c >= k {
			return nil
		}
		domain[idx[v]] = 1 << uint(c)
	}
	color := make([]int, n)
	for i := range color {
		color[i] = -1
	}
	assigned := 0

	type change struct {
		node int
		old  uint64
	}
	var trail []change
	prune := func(i int, allowed uint64) bool {
		if domain[i]&allowed == domain[i] {
			return true
		}
		trail = append(trail, change{i, domain[i]})
		domain[i] &= allowed
		return domain[i] != 0
	}

	popcount := func(x uint64) int {
		c := 0
		for x != 0 {
			x &= x - 1
			c++
		}
		return c
	}

	var solve func() bool
	solve = func() bool {
		if assigned == n {
			return true
		}
		// DSATUR-ish: pick the unassigned node with the smallest domain,
		// tie-broken by degree.
		best, bestSize := -1, k+1
		for i := range domain {
			if color[i] >= 0 {
				continue
			}
			s := popcount(domain[i])
			if s < bestSize || (s == bestSize && best >= 0 && g.Degree(nodes[i]) > g.Degree(nodes[best])) {
				best, bestSize = i, s
			}
		}
		for c := 0; c < k; c++ {
			if domain[best]&(1<<uint(c)) == 0 {
				continue
			}
			mark := len(trail)
			color[best] = c
			assigned++
			ok := prune(best, 1<<uint(c))
			if ok {
				for _, u := range g.Neighbors(nodes[best]) {
					j := idx[u]
					if color[j] == -1 && !prune(j, ^uint64(1<<uint(c))) {
						ok = false
						break
					}
				}
			}
			if ok && solve() {
				return true
			}
			for len(trail) > mark {
				ch := trail[len(trail)-1]
				trail = trail[:len(trail)-1]
				domain[ch.node] = ch.old
			}
			color[best] = -1
			assigned--
		}
		return false
	}
	// Unit-propagate the seeds before searching.
	for i := range domain {
		if popcount(domain[i]) == 1 && color[i] == -1 {
			c := 0
			for domain[i]&(1<<uint(c)) == 0 {
				c++
			}
			color[i] = c
			assigned++
			for _, u := range g.Neighbors(nodes[i]) {
				j := idx[u]
				if color[j] == -1 && !prune(j, ^uint64(1<<uint(c))) {
					return nil
				}
			}
		}
	}
	if !solve() {
		return nil
	}
	out := make(map[int]int, n)
	for i, v := range nodes {
		out[v] = color[i]
	}
	return out
}

// ChromaticNumber returns χ(g) by trying k = 1, 2, … (exact; small graphs
// only). The empty graph has χ = 0.
func ChromaticNumber(g *graph.Graph) int {
	if g.N() == 0 {
		return 0
	}
	for k := 1; ; k++ {
		if KColor(g, k) != nil {
			return k
		}
	}
}

// GreedyColoring colours g greedily in descending-degree order and
// returns the colouring plus the number of colours used. It is the cheap
// prover for χ ≤ k when k is generous (e.g. k = Δ+1).
func GreedyColoring(g *graph.Graph) (map[int]int, int) {
	nodes := append([]int{}, g.Nodes()...)
	sort.Slice(nodes, func(i, j int) bool {
		di, dj := g.Degree(nodes[i]), g.Degree(nodes[j])
		if di != dj {
			return di > dj
		}
		return nodes[i] < nodes[j]
	})
	color := make(map[int]int, len(nodes))
	used := 0
	for _, v := range nodes {
		taken := make(map[int]bool)
		for _, u := range g.Neighbors(v) {
			if c, ok := color[u]; ok {
				taken[c] = true
			}
		}
		c := 0
		for taken[c] {
			c++
		}
		color[v] = c
		if c+1 > used {
			used = c + 1
		}
	}
	return color, used
}
