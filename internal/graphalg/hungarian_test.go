package graphalg

import (
	"math/rand"
	"testing"

	"lcp/internal/graph"
)

// bruteMaxWeight computes the maximum matching weight exhaustively.
func bruteMaxWeight(g *graph.Graph, w Weights) int64 {
	edges := g.Edges()
	var rec func(i int, used map[int]bool) int64
	rec = func(i int, used map[int]bool) int64 {
		if i == len(edges) {
			return 0
		}
		best := rec(i+1, used)
		e := edges[i]
		if !used[e.U] && !used[e.V] {
			used[e.U], used[e.V] = true, true
			if v := w[e] + rec(i+1, used); v > best {
				best = v
			}
			delete(used, e.U)
			delete(used, e.V)
		}
		return best
	}
	return rec(0, map[int]bool{})
}

func randomWeights(g *graph.Graph, maxW int64, rng *rand.Rand) Weights {
	w := make(Weights)
	for _, e := range g.Edges() {
		w[e] = rng.Int63n(maxW + 1)
	}
	return w
}

func TestMaxWeightMatchingAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 30; i++ {
		a, b := 1+rng.Intn(5), 1+rng.Intn(5)
		g := graph.RandomBipartite(a, b, 0.6, rng.Int63())
		w := randomWeights(g, 20, rng)
		m := MaxWeightMatching(g, leftOf(a), w)
		if !IsMatching(g, m) {
			t.Fatalf("invalid matching on trial %d", i)
		}
		got := MatchingWeight(m, w)
		want := bruteMaxWeight(g, w)
		if got != want {
			t.Fatalf("trial %d: weight %d, want %d", i, got, want)
		}
	}
}

func TestOptimalDualsCertifyRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 30; i++ {
		a, b := 1+rng.Intn(6), 1+rng.Intn(6)
		g := graph.RandomBipartite(a, b, 0.5, rng.Int63())
		w := randomWeights(g, 15, rng)
		m := MaxWeightMatching(g, leftOf(a), w)
		y, err := OptimalDuals(g, leftOf(a), m, w)
		if err != nil {
			t.Fatalf("trial %d: OptimalDuals: %v", i, err)
		}
		if err := CheckComplementarySlackness(g, m, w, y); err != nil {
			t.Fatalf("trial %d: slackness: %v", i, err)
		}
		// Strong duality: Σy == matching weight.
		var sum int64
		for _, v := range y {
			sum += v
		}
		if sum != MatchingWeight(m, w) {
			t.Fatalf("trial %d: Σy = %d ≠ weight %d", i, sum, MatchingWeight(m, w))
		}
		// Duals bounded by W (§2.3: y_v ∈ {0..W}).
		W := w.MaxWeight()
		for v, yv := range y {
			if yv < 0 || yv > W {
				t.Fatalf("trial %d: y[%d] = %d outside [0, %d]", i, v, yv, W)
			}
		}
	}
}

func TestOptimalDualsRejectSuboptimalMatching(t *testing.T) {
	// K_{2,2} with one heavy edge; the empty matching is not maximum.
	g := graph.CompleteBipartite(2, 2)
	w := Weights{graph.NormEdge(1, 3): 5, graph.NormEdge(2, 4): 5, graph.NormEdge(1, 4): 1, graph.NormEdge(2, 3): 1}
	sub := Matching{graph.NormEdge(1, 4): true, graph.NormEdge(2, 3): true} // weight 2 < 10
	if _, err := OptimalDuals(g, leftOf(2), sub, w); err == nil {
		t.Error("duals found for suboptimal matching")
	}
	empty := Matching{}
	if _, err := OptimalDuals(g, leftOf(2), empty, w); err == nil {
		t.Error("duals found for empty matching with positive weights")
	}
}

func TestMaxWeightMatchingZeroWeightsEmpty(t *testing.T) {
	g := graph.CompleteBipartite(3, 3)
	m := MaxWeightMatching(g, leftOf(3), Weights{})
	if len(m) != 0 {
		t.Errorf("zero-weight instance matched %d edges", len(m))
	}
	y, err := OptimalDuals(g, leftOf(3), m, Weights{})
	if err != nil {
		t.Fatalf("OptimalDuals: %v", err)
	}
	for v, yv := range y {
		if yv != 0 {
			t.Errorf("y[%d] = %d, want 0", v, yv)
		}
	}
}

func TestKonigAsZeroOneSpecialCase(t *testing.T) {
	// With unit weights, max-weight == max-cardinality; duals become a
	// fractional-free vertex cover indicator (0/1 by integrality).
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 15; i++ {
		a, b := 2+rng.Intn(4), 2+rng.Intn(4)
		g := graph.RandomBipartite(a, b, 0.5, rng.Int63())
		w := make(Weights)
		for _, e := range g.Edges() {
			w[e] = 1
		}
		m := MaxWeightMatching(g, leftOf(a), w)
		if int64(len(m)) != MatchingWeight(m, w) {
			t.Fatal("unit weights miscounted")
		}
		y, err := OptimalDuals(g, leftOf(a), m, w)
		if err != nil {
			t.Fatalf("duals: %v", err)
		}
		cover := make(map[int]bool)
		for v, yv := range y {
			if yv > 0 {
				if yv != 1 {
					t.Fatalf("non-0/1 dual %d with unit weights", yv)
				}
				cover[v] = true
			}
		}
		if !IsVertexCover(g, cover) {
			t.Fatal("positive-dual nodes do not cover")
		}
		if len(cover) != len(m) {
			t.Fatalf("|cover|=%d ≠ |M|=%d", len(cover), len(m))
		}
	}
}
