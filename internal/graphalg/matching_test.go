package graphalg

import (
	"math/rand"
	"testing"

	"lcp/internal/graph"
)

func leftOf(a int) []int {
	l := make([]int, a)
	for i := range l {
		l[i] = i + 1
	}
	return l
}

func TestIsMatching(t *testing.T) {
	g := graph.Cycle(6)
	ok := Matching{graph.NormEdge(1, 2): true, graph.NormEdge(4, 5): true}
	if !IsMatching(g, ok) {
		t.Error("valid matching rejected")
	}
	shared := Matching{graph.NormEdge(1, 2): true, graph.NormEdge(2, 3): true}
	if IsMatching(g, shared) {
		t.Error("shared endpoint accepted")
	}
	phantom := Matching{graph.NormEdge(1, 3): true}
	if IsMatching(g, phantom) {
		t.Error("non-edge accepted")
	}
}

func TestGreedyMaximalMatching(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := graph.RandomGNP(25, 0.2, seed)
		m := GreedyMaximalMatching(g)
		if !IsMaximalMatching(g, m) {
			t.Fatalf("seed %d: greedy matching not maximal", seed)
		}
	}
}

func TestIsMaximalMatchingDetectsExtensible(t *testing.T) {
	g := graph.Path(4) // 1-2-3-4; {2,3} alone is maximal... no: 1 and 4 free but 1-4 not an edge
	m := Matching{graph.NormEdge(2, 3): true}
	if !IsMaximalMatching(g, m) {
		t.Error("{2-3} should be maximal in P4")
	}
	empty := Matching{}
	if IsMaximalMatching(g, empty) {
		t.Error("empty matching maximal in P4")
	}
}

func TestHopcroftKarpOnCompleteBipartite(t *testing.T) {
	g := graph.CompleteBipartite(4, 6)
	m, matchL := HopcroftKarp(g, leftOf(4))
	if len(m) != 4 {
		t.Fatalf("|M| = %d, want 4", len(m))
	}
	if !IsMatching(g, m) {
		t.Fatal("invalid matching")
	}
	for _, v := range leftOf(4) {
		if matchL[v] == 0 {
			t.Errorf("left node %d unmatched", v)
		}
	}
}

func TestHopcroftKarpMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20; i++ {
		a, b := 2+rng.Intn(5), 2+rng.Intn(5)
		g := graph.RandomBipartite(a, b, 0.4, rng.Int63())
		m, _ := HopcroftKarp(g, leftOf(a))
		want := MaximumMatchingSize(g)
		if len(m) != want {
			t.Fatalf("HK found %d, brute force %d on %v", len(m), want, g)
		}
	}
}

func TestHopcroftKarpPanicsOnBadSides(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for non-independent left side")
		}
	}()
	HopcroftKarp(graph.Cycle(3), []int{1, 2})
}

func TestKonigCover(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 25; i++ {
		a, b := 2+rng.Intn(6), 2+rng.Intn(6)
		g := graph.RandomBipartite(a, b, 0.5, rng.Int63())
		m, matchL := HopcroftKarp(g, leftOf(a))
		cover := KonigCover(g, leftOf(a), matchL)
		if !IsVertexCover(g, cover) {
			t.Fatalf("König set is not a cover (a=%d b=%d)", a, b)
		}
		if len(cover) != len(m) {
			t.Fatalf("|cover| = %d ≠ |matching| = %d", len(cover), len(m))
		}
		// Each matched edge has exactly one endpoint in the cover, each
		// cover node is matched — the two local conditions of §2.3.
		for e := range m {
			cu, cv := cover[e.U], cover[e.V]
			if cu == cv {
				t.Fatalf("matched edge %v has %d cover endpoints", e, b2i(cu)+b2i(cv))
			}
		}
		for v := range cover {
			if m.MatchedWith(v) == 0 {
				t.Fatalf("cover node %d unmatched", v)
			}
		}
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestMaximumMatchingSizeKnown(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int
	}{
		{graph.Path(2), 1},
		{graph.Path(5), 2},
		{graph.Cycle(6), 3},
		{graph.Cycle(7), 3},
		{graph.Complete(4), 2},
		{graph.Star(5), 1},
		{graph.Petersen(), 5},
	}
	for _, c := range cases {
		if got := MaximumMatchingSize(c.g); got != c.want {
			t.Errorf("MaximumMatchingSize(%v) = %d, want %d", c.g, got, c.want)
		}
	}
}

func TestMatchedWith(t *testing.T) {
	m := Matching{graph.NormEdge(3, 8): true}
	if m.MatchedWith(3) != 8 || m.MatchedWith(8) != 3 {
		t.Error("MatchedWith wrong partner")
	}
	if m.MatchedWith(5) != 0 {
		t.Error("unmatched node has partner")
	}
}
