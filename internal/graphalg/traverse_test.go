package graphalg

import (
	"reflect"
	"testing"

	"lcp/internal/graph"
)

func TestBFSOnPath(t *testing.T) {
	g := graph.Path(5)
	dist := BFS(g, 1)
	for i := 1; i <= 5; i++ {
		if dist[i] != i-1 {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], i-1)
		}
	}
}

func TestComponents(t *testing.T) {
	g := graph.DisjointUnion(graph.Cycle(3), graph.Path(2).ShiftIDs(10))
	comps := Components(g)
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if !reflect.DeepEqual(comps[0], []int{1, 2, 3}) {
		t.Errorf("comp[0] = %v", comps[0])
	}
	if !reflect.DeepEqual(comps[1], []int{11, 12}) {
		t.Errorf("comp[1] = %v", comps[1])
	}
	if Connected(g) {
		t.Error("disjoint union reported connected")
	}
	if !Connected(graph.Cycle(5)) {
		t.Error("cycle reported disconnected")
	}
}

func TestComponentsDirectedUsesUnderlying(t *testing.T) {
	g := graph.NewBuilder(graph.Directed).AddEdge(1, 2).AddEdge(3, 2).Graph()
	if !Connected(g) {
		t.Error("weakly connected digraph reported disconnected")
	}
}

func TestTreeAndForestPredicates(t *testing.T) {
	if !IsTree(graph.Path(6)) {
		t.Error("path not a tree")
	}
	if IsTree(graph.Cycle(6)) {
		t.Error("cycle is a tree")
	}
	if !IsForest(graph.DisjointUnion(graph.Path(3), graph.Path(4).ShiftIDs(10))) {
		t.Error("two paths not a forest")
	}
	if IsForest(graph.DisjointUnion(graph.Cycle(3), graph.Path(4).ShiftIDs(10))) {
		t.Error("cycle+path reported forest")
	}
	if !IsTree(graph.RandomTree(25, 7)) {
		t.Error("random tree not a tree")
	}
}

func TestIsCycleGraph(t *testing.T) {
	if !IsCycleGraph(graph.Cycle(7)) {
		t.Error("C7 not recognized")
	}
	if IsCycleGraph(graph.Path(7)) {
		t.Error("path recognized as cycle")
	}
	two := graph.DisjointUnion(graph.Cycle(3), graph.Cycle(3).ShiftIDs(10))
	if IsCycleGraph(two) {
		t.Error("two disjoint triangles recognized as one cycle")
	}
}

func TestIsEulerian(t *testing.T) {
	if !IsEulerian(graph.Cycle(6)) {
		t.Error("cycle not Eulerian")
	}
	if IsEulerian(graph.Path(4)) {
		t.Error("path Eulerian")
	}
	if !IsEulerian(graph.Complete(5)) { // K5: all degrees 4
		t.Error("K5 not Eulerian")
	}
	if IsEulerian(graph.Complete(4)) { // K4: all degrees 3
		t.Error("K4 Eulerian")
	}
}

func TestBipartition(t *testing.T) {
	side, _, ok := Bipartition(graph.Cycle(8))
	if !ok {
		t.Fatal("even cycle not bipartite")
	}
	g := graph.Cycle(8)
	for _, e := range g.Edges() {
		if side[e.U] == side[e.V] {
			t.Errorf("edge %v monochromatic", e)
		}
	}
	_, walk, ok := Bipartition(graph.Cycle(9))
	if ok {
		t.Fatal("odd cycle bipartite")
	}
	checkOddClosedWalk(t, graph.Cycle(9), walk)
}

func TestOddCycleOnPetersen(t *testing.T) {
	walk := OddCycle(graph.Petersen())
	if walk == nil {
		t.Fatal("Petersen reported bipartite")
	}
	checkOddClosedWalk(t, graph.Petersen(), walk)
}

func TestOddCycleNilOnBipartite(t *testing.T) {
	if OddCycle(graph.CompleteBipartite(3, 4)) != nil {
		t.Error("K34 has an odd cycle?")
	}
	if OddCycle(graph.Hypercube(4)) != nil {
		t.Error("Q4 has an odd cycle?")
	}
}

// checkOddClosedWalk asserts walk is a closed walk in g (consecutive nodes
// adjacent, first == last) of odd length.
func checkOddClosedWalk(t *testing.T, g *graph.Graph, walk []int) {
	t.Helper()
	if len(walk) < 4 {
		t.Fatalf("walk too short: %v", walk)
	}
	if walk[0] != walk[len(walk)-1] {
		t.Fatalf("walk not closed: %v", walk)
	}
	if (len(walk)-1)%2 == 0 {
		t.Fatalf("walk has even length %d", len(walk)-1)
	}
	for i := 1; i < len(walk); i++ {
		if !g.HasEdge(walk[i-1], walk[i]) {
			t.Fatalf("walk step %d-%d not an edge", walk[i-1], walk[i])
		}
	}
}

func TestBipartitionRandomOddCycles(t *testing.T) {
	// Random connected graphs with an odd cycle forced in.
	for seed := int64(0); seed < 10; seed++ {
		g := graph.RandomConnected(20, 0.15, seed)
		_, walk, ok := Bipartition(g)
		if ok {
			continue // genuinely bipartite; fine
		}
		checkOddClosedWalk(t, g, walk)
	}
}

func TestSpanningTree(t *testing.T) {
	g := graph.RandomConnected(40, 0.1, 3)
	parent, depth := SpanningTree(g, 7)
	if parent[7] != 7 || depth[7] != 0 {
		t.Fatal("root not fixed")
	}
	if len(parent) != 40 {
		t.Fatalf("tree covers %d nodes", len(parent))
	}
	for v, p := range parent {
		if v == 7 {
			continue
		}
		if !g.HasEdge(v, p) {
			t.Errorf("parent edge (%d,%d) not in graph", v, p)
		}
		if depth[v] != depth[p]+1 {
			t.Errorf("depth[%d]=%d but parent depth %d", v, depth[v], depth[p])
		}
	}
}

func TestDFSIntervalsNesting(t *testing.T) {
	g := graph.RandomTree(30, 11)
	parent, _ := SpanningTree(g, 1)
	disc, fin := DFSIntervals(g, 1, parent)
	if len(disc) != 30 || len(fin) != 30 {
		t.Fatalf("interval maps incomplete: %d/%d", len(disc), len(fin))
	}
	seen := make(map[int]bool)
	for _, v := range g.Nodes() {
		if disc[v] >= fin[v] {
			t.Errorf("node %d: disc %d ≥ fin %d", v, disc[v], fin[v])
		}
		if seen[disc[v]] || seen[fin[v]] {
			t.Errorf("node %d: reused timestamp", v)
		}
		seen[disc[v]] = true
		seen[fin[v]] = true
	}
	// Parent intervals strictly contain child intervals.
	for v, p := range parent {
		if v == p {
			continue
		}
		if !(disc[p] < disc[v] && fin[v] < fin[p]) {
			t.Errorf("child %d interval [%d,%d] not nested in parent %d [%d,%d]",
				v, disc[v], fin[v], p, disc[p], fin[p])
		}
	}
}

func TestDiameter(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int
	}{
		{graph.Path(5), 4},
		{graph.Cycle(8), 4},
		{graph.Complete(6), 1},
		{graph.Petersen(), 2},
		{graph.Path(1), 0},
	}
	for _, c := range cases {
		if got := Diameter(c.g); got != c.want {
			t.Errorf("Diameter(%v) = %d, want %d", c.g, got, c.want)
		}
	}
}
