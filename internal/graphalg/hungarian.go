package graphalg

import (
	"fmt"

	"lcp/internal/graph"
)

// Max-weight bipartite matching and its LP-duality certificate (§2.3 of
// the paper). The primal maximizes Σ w_e·x_e over matchings; the dual
// minimizes Σ y_v subject to y_u + y_v ≥ w_e and y ≥ 0. Total
// unimodularity gives integral optima on both sides, and complementary
// slackness is exactly what a radius-1 verifier can check. The prover
// below computes a maximum-weight matching (Hungarian algorithm on a
// padded assignment matrix) and then integral optimal duals (difference-
// constraint system solved by Bellman–Ford).

// Weights assigns a natural-number weight to each edge; missing edges
// weigh 0.
type Weights map[graph.Edge]int64

// Weight returns the weight of edge (u, v).
func (w Weights) Weight(u, v int) int64 { return w[graph.NormEdge(u, v)] }

// MaxWeight returns the largest weight W (at least 0).
func (w Weights) MaxWeight() int64 {
	var mx int64
	for _, x := range w {
		if x > mx {
			mx = x
		}
	}
	return mx
}

// MatchingWeight returns Σ_{e∈m} w_e.
func MatchingWeight(m Matching, w Weights) int64 {
	var total int64
	for e := range m {
		total += w[e]
	}
	return total
}

// MaxWeightMatching computes a maximum-weight matching of the bipartite
// graph g with the given left part and weights. Edges of weight 0
// contribute nothing and are never included in the result.
func MaxWeightMatching(g *graph.Graph, left []int, w Weights) Matching {
	right := rightSide(g, left)
	if len(left) == 0 || len(right) == 0 {
		return Matching{}
	}
	// Pad to a square assignment matrix; absent pairs cost 0, so an
	// optimal assignment restricted to positive-weight real edges is a
	// maximum-weight matching.
	n := len(left)
	if len(right) > n {
		n = len(right)
	}
	cost := make([][]int64, n)
	for i := range cost {
		cost[i] = make([]int64, n)
		for j := range cost[i] {
			if i < len(left) && j < len(right) && g.HasEdge(left[i], right[j]) {
				cost[i][j] = -w.Weight(left[i], right[j]) // negate: maximize
			}
		}
	}
	assign := hungarianMin(cost)
	m := make(Matching)
	for i, j := range assign {
		if i < len(left) && j < len(right) {
			u, v := left[i], right[j]
			if g.HasEdge(u, v) && w.Weight(u, v) > 0 {
				m[graph.NormEdge(u, v)] = true
			}
		}
	}
	return m
}

// rightSide returns the nodes of g not in left, sorted.
func rightSide(g *graph.Graph, left []int) []int {
	isLeft := make(map[int]bool, len(left))
	for _, v := range left {
		isLeft[v] = true
	}
	var right []int
	for _, v := range g.Nodes() {
		if !isLeft[v] {
			right = append(right, v)
		}
	}
	return right
}

// hungarianMin solves the square assignment problem (minimization) and
// returns assign[row] = column. Classic O(n³) potentials formulation.
func hungarianMin(a [][]int64) []int {
	n := len(a)
	const inf = int64(1) << 60
	u := make([]int64, n+1)
	v := make([]int64, n+1)
	p := make([]int, n+1)   // p[j] = row assigned to column j (1-based; 0 = none)
	way := make([]int, n+1) // alternating-tree back pointers
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]int64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := a[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	assign := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] != 0 {
			assign[p[j]-1] = j - 1
		}
	}
	return assign
}

// OptimalDuals computes integral optimal duals y for a maximum-weight
// matching m of the bipartite graph g (with the given left part): y ≥ 0,
// y_u + y_v ≥ w_e on every edge, y_u + y_v = w_e on matched edges, and
// y_v = 0 on unmatched nodes. This is the O(log W)-bit certificate of
// §2.3.
//
// The system reduces to difference constraints on one variable t_e per
// matched edge (t_e = y of the matched edge's left endpoint; the right
// endpoint then carries w_e − t_e) and is solved by Bellman–Ford. LP
// duality guarantees feasibility exactly when m is maximum-weight, so an
// error here means m was not optimal (or the sides were wrong).
func OptimalDuals(g *graph.Graph, left []int, m Matching, w Weights) (map[int]int64, error) {
	isLeft := make(map[int]bool, len(left))
	for _, v := range left {
		isLeft[v] = true
	}
	matchedEdges := m.Edges()
	idx := make(map[int]int, 2*len(matchedEdges)) // node -> matched edge index
	for i, e := range matchedEdges {
		idx[e.U] = i
		idx[e.V] = i
	}
	// Variables x_0 (fixed 0) and t_1..t_k, with t_i = y of matched edge
	// i's left endpoint. Every constraint has the form x_b − x_a ≤ c,
	// i.e. an arc a→b of length c; shortest distances from x_0 solve the
	// system.
	k := len(matchedEdges)
	type arc struct {
		from, to int
		c        int64
	}
	var arcs []arc
	// Bounds 0 ≤ t_i ≤ w_i.
	for i, e := range matchedEdges {
		arcs = append(arcs, arc{0, i + 1, w[e]}) // t_i ≤ w_i
		arcs = append(arcs, arc{i + 1, 0, 0})    // t_i ≥ 0
	}
	for _, e := range g.Edges() {
		if m[e] {
			continue
		}
		if isLeft[e.U] == isLeft[e.V] {
			return nil, fmt.Errorf("graphalg: edge %v does not cross the given bipartition", e)
		}
		l, r := e.U, e.V
		if !isLeft[l] {
			l, r = r, l
		}
		we := w[e]
		li, lMatched := idx[l]
		ri, rMatched := idx[r]
		switch {
		case !lMatched && !rMatched:
			// y_l = y_r = 0, so we must have w_e ≤ 0.
			if we > 0 {
				return nil, fmt.Errorf("graphalg: matching not maximum: free edge %v has weight %d", e, we)
			}
		case lMatched && !rMatched:
			// t_l ≥ w_e ⇔ x_0 − t_l ≤ −w_e.
			arcs = append(arcs, arc{li + 1, 0, -we})
		case !lMatched && rMatched:
			// (w_r − t_r) ≥ w_e ⇔ t_r ≤ w_r − w_e.
			arcs = append(arcs, arc{0, ri + 1, w[matchedEdges[ri]] - we})
		default:
			// t_l + (w_r − t_r) ≥ w_e ⇔ t_r − t_l ≤ w_r − w_e.
			arcs = append(arcs, arc{li + 1, ri + 1, w[matchedEdges[ri]] - we})
		}
	}
	// Bellman–Ford from x_0.
	const inf = int64(1) << 60
	dist := make([]int64, k+1)
	for i := 1; i <= k; i++ {
		dist[i] = inf
	}
	for round := 0; ; round++ {
		changed := false
		for _, a := range arcs {
			if dist[a.from] < inf && dist[a.from]+a.c < dist[a.to] {
				dist[a.to] = dist[a.from] + a.c
				changed = true
			}
		}
		if !changed {
			break
		}
		if round > k+1 {
			return nil, fmt.Errorf("graphalg: dual system infeasible; matching is not maximum-weight")
		}
	}
	if dist[0] < 0 {
		return nil, fmt.Errorf("graphalg: dual system infeasible (negative cycle through origin)")
	}
	y := make(map[int]int64, g.N())
	for _, v := range g.Nodes() {
		y[v] = 0
	}
	for i, e := range matchedEdges {
		t := dist[i+1]
		l, r := e.U, e.V
		if !isLeft[l] {
			l, r = r, l
		}
		y[l] = t
		y[r] = w[e] - t
	}
	return y, nil
}

// CheckComplementarySlackness verifies the §2.3 certificate conditions
// globally (the local verifier re-checks them per node): dual feasibility,
// tightness on matched edges, and y = 0 off the matching. It returns nil
// iff the certificate proves m is a maximum-weight matching.
func CheckComplementarySlackness(g *graph.Graph, m Matching, w Weights, y map[int]int64) error {
	for _, v := range g.Nodes() {
		if y[v] < 0 {
			return fmt.Errorf("dual y[%d] = %d < 0", v, y[v])
		}
		if y[v] > 0 && m.MatchedWith(v) == 0 {
			return fmt.Errorf("node %d has positive dual %d but is unmatched", v, y[v])
		}
	}
	for _, e := range g.Edges() {
		s := y[e.U] + y[e.V]
		if s < w[e] {
			return fmt.Errorf("edge %v: y sum %d < weight %d", e, s, w[e])
		}
		if m[e] && s != w[e] {
			return fmt.Errorf("matched edge %v: y sum %d ≠ weight %d", e, s, w[e])
		}
	}
	return nil
}
