package graphalg

import (
	"fmt"
	"sort"

	"lcp/internal/graph"
)

// Menger machinery for the s–t vertex-connectivity scheme (§4.2): compute
// a maximum set of internally vertex-disjoint s–t paths together with a
// matching minimum vertex cut, then make each path locally minimal
// (no shortcuts within a path), which is what lets a radius-1 verifier
// orient the paths with distances mod 3.

// DisjointPathsResult packages the §4.2 prover output.
type DisjointPathsResult struct {
	// Paths are internally vertex-disjoint s–t paths, each starting with s
	// and ending with t, shortcut to local minimality.
	Paths [][]int
	// Cut is a minimum s–t vertex cut; |Cut| == len(Paths) and each path
	// crosses the cut exactly once.
	Cut []int
	// S is the set of nodes reachable from s in G − Cut (including s);
	// T is the remainder V − S − Cut (including t).
	S, T map[int]bool
}

// Connectivity returns k = |Paths|, the s–t vertex connectivity.
func (r *DisjointPathsResult) Connectivity() int { return len(r.Paths) }

// DisjointPaths computes the result above for non-adjacent s, t in an
// undirected graph. It errors if s and t are adjacent or equal (vertex
// connectivity is then undefined/unbounded, and the paper's scheme
// requires the S∪C∪T partition which cannot exist).
func DisjointPaths(g *graph.Graph, s, t int) (*DisjointPathsResult, error) {
	if s == t {
		return nil, fmt.Errorf("graphalg: s = t = %d", s)
	}
	if g.HasEdge(s, t) {
		return nil, fmt.Errorf("graphalg: s and t are adjacent; vertex connectivity undefined")
	}
	// Unit-capacity max-flow with node splitting: node v becomes v_in →
	// v_out with capacity 1 (except s, t). Undirected edge {u, v} becomes
	// u_out → v_in and v_out → u_in.
	nodes := g.Nodes()
	index := make(map[int]int, len(nodes))
	for i, v := range nodes {
		index[v] = i
	}
	inOf := func(v int) int { return 2 * index[v] }
	outOf := func(v int) int { return 2*index[v] + 1 }
	nv := 2 * len(nodes)

	type edge struct {
		to, rev int
		cap     int
		flow    int
	}
	adj := make([][]edge, nv)
	addEdge := func(u, v, c int) {
		adj[u] = append(adj[u], edge{to: v, rev: len(adj[v]), cap: c})
		adj[v] = append(adj[v], edge{to: u, rev: len(adj[u]) - 1, cap: 0})
	}
	// Vertex capacities carry the unit bound; transit (edge) arcs are
	// effectively infinite so that every min cut consists of splitter
	// arcs only, i.e. is a vertex cut.
	const bigCap = 1 << 30
	for _, v := range nodes {
		c := 1
		if v == s || v == t {
			c = bigCap
		}
		addEdge(inOf(v), outOf(v), c)
	}
	for _, e := range g.Edges() {
		addEdge(outOf(e.U), inOf(e.V), bigCap)
		addEdge(outOf(e.V), inOf(e.U), bigCap)
	}
	src, sink := outOf(s), inOf(t)

	// Edmonds–Karp: k ≤ n augmentations of unit value.
	parentEdge := make([]int, nv)
	parentNode := make([]int, nv)
	bfsAugment := func() bool {
		for i := range parentNode {
			parentNode[i] = -1
		}
		parentNode[src] = src
		queue := []int{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for i, e := range adj[u] {
				if e.cap > 0 && parentNode[e.to] == -1 {
					parentNode[e.to] = u
					parentEdge[e.to] = i
					if e.to == sink {
						return true
					}
					queue = append(queue, e.to)
				}
			}
		}
		return false
	}
	flow := 0
	for bfsAugment() {
		v := sink
		for v != src {
			u := parentNode[v]
			e := &adj[u][parentEdge[v]]
			e.cap--
			e.flow++
			rev := &adj[v][e.rev]
			rev.cap++
			rev.flow--
			v = u
		}
		flow++
		if flow > g.N() {
			return nil, fmt.Errorf("graphalg: flow exceeded n; internal error")
		}
	}

	// Min vertex cut: v is cut iff v_in is residual-reachable from src but
	// v_out is not (the saturated splitter edge crosses the residual cut).
	reach := make([]bool, nv)
	reach[src] = true
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range adj[u] {
			if e.cap > 0 && !reach[e.to] {
				reach[e.to] = true
				queue = append(queue, e.to)
			}
		}
	}
	var cut []int
	for _, v := range nodes {
		if v != s && v != t && reach[inOf(v)] && !reach[outOf(v)] {
			cut = append(cut, v)
		}
	}
	sort.Ints(cut)
	if len(cut) != flow {
		return nil, fmt.Errorf("graphalg: cut size %d ≠ flow %d; internal error", len(cut), flow)
	}

	// Path extraction: follow transit arcs carrying positive flow from s.
	// Each transit arc carries at most one unit (interior splitters have
	// capacity 1, and s, t are non-adjacent).
	usedNext := make(map[int][]int, flow) // u -> list of successors with flow
	for _, u := range nodes {
		for _, e := range adj[outOf(u)] {
			if e.flow > 0 && e.to != inOf(u) {
				usedNext[u] = append(usedNext[u], nodes[e.to/2])
			}
		}
	}
	// Cancel opposite unit flows on the same undirected edge (possible
	// when augmenting paths crossed): if u→v and v→u both appear, they
	// cancel.
	for u, outs := range usedNext {
		filtered := outs[:0]
		for _, v := range outs {
			cancelled := false
			backs := usedNext[v]
			for i, w := range backs {
				if w == u {
					usedNext[v] = append(backs[:i], backs[i+1:]...)
					cancelled = true
					break
				}
			}
			if !cancelled {
				filtered = append(filtered, v)
			}
		}
		usedNext[u] = filtered
	}
	var paths [][]int
	for i := 0; i < flow; i++ {
		path := []int{s}
		cur := s
		for cur != t {
			outs := usedNext[cur]
			if len(outs) == 0 {
				return nil, fmt.Errorf("graphalg: path extraction stuck at %d; internal error", cur)
			}
			next := outs[0]
			usedNext[cur] = outs[1:]
			path = append(path, next)
			cur = next
			if len(path) > g.N()+1 {
				return nil, fmt.Errorf("graphalg: path extraction cycled; internal error")
			}
		}
		paths = append(paths, path)
	}

	// Shortcut each path to local minimality: while some path has an edge
	// between positions i and j ≥ i+2, splice out the interior. (§4.2:
	// "each p_i is locally minimal".) The splice never removes the cut
	// vertex, because that would require an S–T edge, which cannot exist.
	for pi, path := range paths {
		paths[pi] = shortcutPath(g, path)
	}

	// S = reachable from s in G − cut.
	inCut := make(map[int]bool, len(cut))
	for _, v := range cut {
		inCut[v] = true
	}
	S := map[int]bool{s: true}
	q := []int{s}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		for _, v := range g.Neighbors(u) {
			if !inCut[v] && !S[v] {
				S[v] = true
				q = append(q, v)
			}
		}
	}
	if S[t] {
		return nil, fmt.Errorf("graphalg: t reachable from s avoiding the cut; internal error")
	}
	T := make(map[int]bool, g.N())
	for _, v := range nodes {
		if !S[v] && !inCut[v] {
			T[v] = true
		}
	}
	return &DisjointPathsResult{Paths: paths, Cut: cut, S: S, T: T}, nil
}

// shortcutPath repeatedly splices out path interiors across chords until
// no chord between path positions remains.
func shortcutPath(g *graph.Graph, path []int) []int {
	for {
		pos := make(map[int]int, len(path))
		for i, v := range path {
			pos[v] = i
		}
		best := -1
		bestFrom, bestTo := 0, 0
		for i, v := range path {
			for _, u := range g.Neighbors(v) {
				if j, ok := pos[u]; ok && j > i+1 {
					if j-i > best {
						best = j - i
						bestFrom, bestTo = i, j
					}
				}
			}
		}
		if best < 0 {
			return path
		}
		path = append(append([]int{}, path[:bestFrom+1]...), path[bestTo:]...)
	}
}

// VertexConnectivity returns the s–t vertex connectivity for non-adjacent
// s, t (a thin wrapper over DisjointPaths).
func VertexConnectivity(g *graph.Graph, s, t int) (int, error) {
	r, err := DisjointPaths(g, s, t)
	if err != nil {
		return 0, err
	}
	return r.Connectivity(), nil
}
