// Package graphalg implements the classical graph algorithms that the
// paper's provers rely on: traversal, bipartition, matchings (including
// LP-duality certificates), Menger-style disjoint paths, colourings,
// Hamiltonian cycles, and isomorphism/automorphism machinery.
//
// Provers are centralized algorithms — the paper's model gives the prover
// unbounded power; only the verifier is local. These routines therefore
// favour clarity over asymptotic heroics, at the scales used by the
// experiments (n up to a few thousand for the cheap schemes, a few dozen
// for the NP-hard provers).
package graphalg

import (
	"sort"

	"lcp/internal/graph"
)

// BFS returns distances from src to every reachable node (undirected
// reachability; for directed graphs it follows out-edges only).
func BFS(g *graph.Graph, src int) map[int]int {
	dist := map[int]int{src: 0}
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if _, ok := dist[v]; !ok {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Components returns the connected components of the underlying undirected
// graph, each sorted ascending, ordered by smallest member.
func Components(g *graph.Graph) [][]int {
	seen := make(map[int]bool, g.N())
	var comps [][]int
	for _, start := range g.Nodes() {
		if seen[start] {
			continue
		}
		var comp []int
		queue := []int{start}
		seen[start] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			nbrs := g.Neighbors(u)
			if g.Directed() {
				nbrs = append(append([]int{}, nbrs...), g.InNeighbors(u)...)
			}
			for _, v := range nbrs {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Connected reports whether g is connected (underlying undirected graph).
// The empty graph is vacuously connected.
func Connected(g *graph.Graph) bool {
	return g.N() == 0 || len(Components(g)) == 1
}

// IsTree reports whether g is a tree: connected with m = n − 1.
func IsTree(g *graph.Graph) bool {
	return g.N() >= 1 && g.M() == g.N()-1 && Connected(g)
}

// IsForest reports whether g is acyclic.
func IsForest(g *graph.Graph) bool {
	n := 0
	for _, comp := range Components(g) {
		n += len(comp)
	}
	return g.M() == n-len(Components(g))
}

// IsCycleGraph reports whether g is a single cycle: connected and
// 2-regular.
func IsCycleGraph(g *graph.Graph) bool {
	if g.N() < 3 || g.M() != g.N() {
		return false
	}
	for _, v := range g.Nodes() {
		if g.Degree(v) != 2 {
			return false
		}
	}
	return Connected(g)
}

// IsEulerian reports whether a connected graph has an Eulerian circuit:
// every degree is even (§1.1 of the paper; connectivity is the family
// promise there).
func IsEulerian(g *graph.Graph) bool {
	for _, v := range g.Nodes() {
		if g.Degree(v)%2 != 0 {
			return false
		}
	}
	return true
}

// Bipartition attempts to 2-colour g. On success it returns the side map
// (false/true per node) and ok=true. On failure it returns an odd closed
// walk as evidence: a cycle through an offending same-colour edge, found
// via the BFS forest. The walk starts and ends at the same node and has
// odd length.
func Bipartition(g *graph.Graph) (side map[int]bool, oddWalk []int, ok bool) {
	side = make(map[int]bool, g.N())
	parent := make(map[int]int, g.N())
	seen := make(map[int]bool, g.N())
	for _, start := range g.Nodes() {
		if seen[start] {
			continue
		}
		seen[start] = true
		side[start] = false
		parent[start] = 0
		queue := []int{start}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Neighbors(u) {
				if !seen[v] {
					seen[v] = true
					side[v] = !side[u]
					parent[v] = u
					queue = append(queue, v)
					continue
				}
				if side[v] != side[u] {
					continue
				}
				// Same-side edge (u, v): assemble the odd closed walk
				// u→…→root→…→v→u through BFS tree paths.
				pu := pathToRoot(parent, u)
				pv := pathToRoot(parent, v)
				walk := joinAtLCA(pu, pv)
				walk = append(walk, walk[0])
				return nil, walk, false
			}
		}
	}
	return side, nil, true
}

func pathToRoot(parent map[int]int, v int) []int {
	var p []int
	for v != 0 {
		p = append(p, v)
		v = parent[v]
	}
	return p
}

// joinAtLCA takes two root-paths pu = u…root and pv = v…root and returns
// the simple cycle u…lca…v (excluding the closing edge v–u).
func joinAtLCA(pu, pv []int) []int {
	onPu := make(map[int]int, len(pu))
	for i, x := range pu {
		onPu[x] = i
	}
	lcaIdxU, lcaIdxV := -1, -1
	for j, x := range pv {
		if i, ok := onPu[x]; ok {
			lcaIdxU, lcaIdxV = i, j
			break
		}
	}
	// u … lca (inclusive), then lca-1 … v reversed.
	walk := append([]int{}, pu[:lcaIdxU+1]...)
	for j := lcaIdxV - 1; j >= 0; j-- {
		walk = append(walk, pv[j])
	}
	return walk
}

// OddCycle returns an odd cycle in g as a closed walk (first node repeated
// at the end), or nil if g is bipartite.
func OddCycle(g *graph.Graph) []int {
	_, walk, ok := Bipartition(g)
	if ok {
		return nil
	}
	return walk
}

// SpanningTree returns the BFS spanning tree of the component of root as a
// parent map (root maps to itself) plus depth map. It panics if root is
// unknown.
func SpanningTree(g *graph.Graph, root int) (parent map[int]int, depth map[int]int) {
	parent = map[int]int{root: root}
	depth = map[int]int{root: 0}
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if _, ok := parent[v]; !ok {
				parent[v] = u
				depth[v] = depth[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return parent, depth
}

// DFSIntervals performs a depth-first traversal of the tree defined by the
// given parent map (rooted spanning tree) and returns discovery and finish
// times. This is the ancestor labelling used by the M2→M1 translation of
// §7.1: (x(v), y(v)) pairs are locally consistent iff they come from a
// genuine DFS, which forces global uniqueness.
func DFSIntervals(g *graph.Graph, root int, parent map[int]int) (disc, fin map[int]int) {
	children := make(map[int][]int, len(parent))
	for v, p := range parent {
		if v != p {
			children[p] = append(children[p], v)
		}
	}
	for _, c := range children {
		sort.Ints(c)
	}
	disc = make(map[int]int, len(parent))
	fin = make(map[int]int, len(parent))
	t := 0
	type frame struct {
		v    int
		next int
	}
	stack := []frame{{root, 0}}
	disc[root] = t
	t++
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(children[f.v]) {
			c := children[f.v][f.next]
			f.next++
			disc[c] = t
			t++
			stack = append(stack, frame{c, 0})
			continue
		}
		fin[f.v] = t
		t++
		stack = stack[:len(stack)-1]
	}
	return disc, fin
}

// Diameter returns the largest eccentricity over all nodes of a connected
// graph (0 for a single node). It panics on an empty graph.
func Diameter(g *graph.Graph) int {
	d := 0
	for _, v := range g.Nodes() {
		dist := BFS(g, v)
		for _, x := range dist {
			if x > d {
				d = x
			}
		}
	}
	return d
}
