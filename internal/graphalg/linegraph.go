package graphalg

import (
	"sort"
	"sync"

	"lcp/internal/graph"
)

// Line-graph recognition (§1.1). By Beineke's characterisation, G is a
// line graph iff G contains none of nine forbidden induced subgraphs,
// each connected with at most 6 vertices. Equivalently: every connected
// induced subgraph of G on ≤ 6 vertices is itself a line graph. That
// reformulation is what a radius-5 verifier checks (a connected 6-vertex
// subgraph containing v lies within distance 5 of v), and it lets us
// avoid hard-coding the nine graphs: a small graph H is a line graph iff
// some root graph R with |E(R)| = |V(H)| satisfies L(R) ≅ H, which we
// decide by exhaustive root search with memoisation. A test reproduces
// Beineke's "exactly nine" as an experiment.

// BeinekeBound is the number of vertices below which the forbidden
// subgraphs live: every minimal non-line-graph has at most 6 vertices.
const BeinekeBound = 6

// smallLineGraphCache memoises IsSmallLineGraph by canonical key.
var smallLineGraphCache sync.Map // string -> bool

// IsSmallLineGraph decides whether the connected graph h on at most
// BeinekeBound vertices is a line graph, by searching for a root graph.
func IsSmallLineGraph(h *graph.Graph) bool {
	n := h.N()
	if n == 0 {
		return true
	}
	if n > BeinekeBound {
		panic("graphalg: IsSmallLineGraph beyond Beineke bound")
	}
	key := canonicalKeyOf(h)
	if v, ok := smallLineGraphCache.Load(key); ok {
		return v.(bool)
	}
	res := hasRootGraph(h)
	smallLineGraphCache.Store(key, res)
	return res
}

func canonicalKeyOf(g *graph.Graph) string {
	order := CanonicalOrder(g)
	pos := make(map[int]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	key := make([]byte, 0, g.N()*g.N()/8+2)
	key = append(key, byte(g.N()))
	var cur byte
	bits := 0
	for i, u := range order {
		for _, v := range order[i+1:] {
			cur <<= 1
			if g.HasEdge(u, v) {
				cur |= 1
			}
			bits++
			if bits == 8 {
				key = append(key, cur)
				cur, bits = 0, 0
			}
		}
	}
	if bits > 0 {
		key = append(key, cur<<(8-uint(bits)))
	}
	return string(key)
}

// hasRootGraph searches for a connected root R with exactly n(h) edges on
// up to n(h)+1 vertices such that L(R) ≅ h.
func hasRootGraph(h *graph.Graph) bool {
	m := h.N() // edges of the root
	if m == 1 {
		return true // K1 = L(K2)
	}
	maxV := m + 1
	for t := 2; t <= maxV; t++ {
		// All possible edges of K_t.
		var pool []graph.Edge
		for i := 1; i <= t; i++ {
			for j := i + 1; j <= t; j++ {
				pool = append(pool, graph.Edge{U: i, V: j})
			}
		}
		if len(pool) < m {
			continue
		}
		sel := make([]int, m)
		var choose func(start, k int) bool
		choose = func(start, k int) bool {
			if k == m {
				b := graph.NewBuilder(graph.Undirected)
				for _, ei := range sel {
					b.AddEdge(pool[ei].U, pool[ei].V)
				}
				r := b.Graph()
				if r.N() != t || !Connected(r) {
					return false
				}
				lg := graph.LineGraphOf(r)
				return IsIsomorphic(lg, h)
			}
			for i := start; i <= len(pool)-(m-k); i++ {
				sel[k] = i
				if choose(i+1, k+1) {
					return true
				}
			}
			return false
		}
		if choose(0, 0) {
			return true
		}
	}
	return false
}

// IsLineGraph decides whether g (any size) is a line graph by the Beineke
// reformulation: every connected induced subgraph on ≤ 6 vertices must be
// a line graph. This doubles as the ground truth for the LCP(0) scheme's
// experiments.
func IsLineGraph(g *graph.Graph) bool {
	for _, v := range g.Nodes() {
		if !LineGraphLocalCheck(g, v) {
			return false
		}
	}
	return true
}

// LineGraphLocalCheck performs the per-node check of the LCP(0) verifier:
// every connected induced subgraph with at most 6 vertices containing v is
// a line graph. All such subgraphs live inside the radius-5 ball of v.
func LineGraphLocalCheck(g *graph.Graph, v int) bool {
	ball, _, _ := g.InducedBall(v, BeinekeBound-1)
	ok := true
	connectedSubsetsThrough(ball, v, BeinekeBound, func(subset []int) bool {
		h := ball.Induced(subset)
		if !IsSmallLineGraph(h) {
			ok = false
			return true // stop
		}
		return false
	})
	return ok
}

// connectedSubsetsThrough enumerates the vertex sets of connected induced
// subgraphs of g that contain v, with at most maxSize vertices. stop is
// invoked for each; returning true aborts the enumeration. The standard
// enumeration grows the set by one neighbour at a time, with an exclusion
// set to avoid duplicates.
func connectedSubsetsThrough(g *graph.Graph, v int, maxSize int, stop func([]int) bool) {
	subset := []int{v}
	excluded := map[int]bool{v: true}
	var rec func() bool
	rec = func() bool {
		cp := append([]int{}, subset...)
		sort.Ints(cp)
		if stop(cp) {
			return true
		}
		if len(subset) == maxSize {
			return false
		}
		// Candidate extensions: neighbours of the subset not excluded.
		cand := make(map[int]bool)
		for _, x := range subset {
			for _, u := range g.Neighbors(x) {
				if !excluded[u] {
					cand[u] = true
				}
			}
		}
		var cands []int
		for u := range cand {
			cands = append(cands, u)
		}
		sort.Ints(cands)
		// Standard connected-subgraph enumeration: each candidate is
		// either taken now or excluded from this whole subtree.
		var undo []int
		for _, u := range cands {
			subset = append(subset, u)
			excluded[u] = true
			if rec() {
				return true
			}
			subset = subset[:len(subset)-1]
			undo = append(undo, u)
		}
		for _, u := range undo {
			delete(excluded, u)
		}
		return false
	}
	rec()
}

// MinimalForbiddenLineSubgraphs enumerates all connected graphs with at
// most maxN vertices (up to isomorphism) that are not line graphs but all
// of whose proper connected induced subgraphs are. With maxN = 6 this is
// Beineke's list of nine. Exponential in maxN; used by tests and the
// experiment harness.
func MinimalForbiddenLineSubgraphs(maxN int) []*graph.Graph {
	var out []*graph.Graph
	seen := make(map[string]bool)
	for n := 1; n <= maxN; n++ {
		enumerateConnectedGraphs(n, func(g *graph.Graph) {
			key := canonicalKeyOf(g)
			if seen[key] {
				return
			}
			seen[key] = true
			if IsSmallLineGraph(g) {
				return
			}
			// Minimality: removing any single vertex leaves (components
			// of) line graphs.
			for _, v := range g.Nodes() {
				var rest []int
				for _, u := range g.Nodes() {
					if u != v {
						rest = append(rest, u)
					}
				}
				sub := g.Induced(rest)
				for _, comp := range Components(sub) {
					if !IsSmallLineGraph(sub.Induced(comp)) {
						return // a proper induced subgraph already fails
					}
				}
			}
			out = append(out, g)
		})
	}
	return out
}

// enumerateConnectedGraphs calls fn on every connected labelled graph on
// vertices 1..n (callers deduplicate up to isomorphism).
func enumerateConnectedGraphs(n int, fn func(*graph.Graph)) {
	var pool []graph.Edge
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			pool = append(pool, graph.Edge{U: i, V: j})
		}
	}
	total := 1 << uint(len(pool))
	for mask := 0; mask < total; mask++ {
		b := graph.NewBuilder(graph.Undirected)
		for i := 1; i <= n; i++ {
			b.AddNode(i)
		}
		for i, e := range pool {
			if mask&(1<<uint(i)) != 0 {
				b.AddEdge(e.U, e.V)
			}
		}
		g := b.Graph()
		if Connected(g) {
			fn(g)
		}
	}
}
