package graphalg

import (
	"testing"

	"lcp/internal/graph"
)

func TestIsSmallLineGraphPositives(t *testing.T) {
	positives := []*graph.Graph{
		graph.Path(1),                        // L(P2)
		graph.Path(2),                        // L(P3)
		graph.Cycle(3),                       // L(C3) and L(K_{1,3})
		graph.Cycle(5),                       // L(C5)
		graph.Cycle(6),                       // L(C6)
		graph.Complete(3),                    // triangle again
		graph.LineGraphOf(graph.Path(5)),     // P4
		graph.LineGraphOf(graph.Star(4)),     // K4
		graph.LineGraphOf(graph.Complete(4)), // octahedron = L(K4), 6 nodes
	}
	for _, g := range positives {
		if g.N() > BeinekeBound {
			t.Fatalf("test graph too big: %v", g)
		}
		if !IsSmallLineGraph(g) {
			t.Errorf("%v should be a line graph", g)
		}
	}
}

func TestIsSmallLineGraphNegatives(t *testing.T) {
	negatives := []*graph.Graph{
		graph.Star(3),  // K_{1,3}, the claw — Beineke G1
		graph.Wheel(5), // W5 is among the forbidden graphs
		graph.CompleteBipartite(2, 3),
	}
	for _, g := range negatives {
		if IsSmallLineGraph(g) {
			t.Errorf("%v should not be a line graph", g)
		}
	}
}

func TestIsLineGraphGlobal(t *testing.T) {
	if !IsLineGraph(graph.LineGraphOf(graph.Petersen())) {
		t.Error("L(Petersen) rejected")
	}
	if !IsLineGraph(graph.Cycle(12)) {
		t.Error("C12 rejected")
	}
	if IsLineGraph(graph.Star(3)) {
		t.Error("claw accepted")
	}
	// A big graph with a single buried claw.
	g := graph.Path(12)
	claw := g.WithEdges([]graph.Edge{{U: 6, V: 13}, {U: 6, V: 14}}, nil)
	if IsLineGraph(claw) {
		t.Error("buried claw accepted")
	}
	if !IsLineGraph(graph.LineGraphOf(graph.RandomTree(9, 4))) {
		t.Error("line graph of tree rejected")
	}
}

func TestLineGraphLocalCheckFindsOnlyLocalViolation(t *testing.T) {
	// Path with a claw at node 6: nodes near the claw must fail the local
	// check; distant nodes must pass (radius-5 locality).
	g := graph.Path(20).WithEdges([]graph.Edge{{U: 6, V: 21}, {U: 6, V: 22}}, nil)
	if LineGraphLocalCheck(g, 6) {
		t.Error("claw center passed")
	}
	if !LineGraphLocalCheck(g, 20) {
		t.Error("node 14 hops away failed; locality broken")
	}
}

// TestBeinekeNine reproduces Beineke's theorem as an experiment: there are
// exactly nine minimal forbidden induced subgraphs for line graphs, each
// with at most 6 vertices (experiment X-beineke in DESIGN.md).
func TestBeinekeNine(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive 6-vertex enumeration; skipped with -short")
	}
	forb := MinimalForbiddenLineSubgraphs(6)
	if len(forb) != 9 {
		for _, g := range forb {
			t.Logf("forbidden: %v edges %v", g, g.Edges())
		}
		t.Fatalf("found %d minimal forbidden subgraphs, want 9 (Beineke)", len(forb))
	}
	// The claw must be among them, as the unique 4-vertex one.
	clawCount := 0
	for _, g := range forb {
		if g.N() == 4 {
			clawCount++
			if !IsIsomorphic(g, graph.Star(3)) {
				t.Error("4-vertex forbidden graph is not the claw")
			}
		}
	}
	if clawCount != 1 {
		t.Errorf("%d forbidden graphs on 4 vertices, want exactly 1 (claw)", clawCount)
	}
}
