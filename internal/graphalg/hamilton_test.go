package graphalg

import (
	"testing"

	"lcp/internal/graph"
)

func TestHamiltonianCyclePositive(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Cycle(8),
		graph.Complete(6),
		graph.CompleteBipartite(4, 4),
		graph.Hypercube(3),
		graph.Grid(4, 4), // even grid is Hamiltonian
		graph.Wheel(6),
	}
	for _, g := range graphs {
		cyc := HamiltonianCycle(g)
		if cyc == nil {
			t.Errorf("%v: no Hamiltonian cycle found", g)
			continue
		}
		if len(cyc) != g.N() {
			t.Errorf("%v: cycle length %d", g, len(cyc))
		}
		if !IsHamiltonianCycleEdges(g, CycleEdges(cyc)) {
			t.Errorf("%v: returned sequence is not a Hamiltonian cycle", g)
		}
	}
}

func TestHamiltonianCycleNegative(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Path(6),                 // path: endpoints degree 1
		graph.Star(5),                 // star
		graph.CompleteBipartite(3, 4), // unbalanced bipartite
		graph.Petersen(),              // famously non-Hamiltonian
		graph.Grid(3, 3),              // odd bipartite grid
		graph.DisjointUnion(graph.Cycle(3), graph.Cycle(3).ShiftIDs(10)),
	}
	for _, g := range graphs {
		if cyc := HamiltonianCycle(g); cyc != nil {
			t.Errorf("%v: found bogus Hamiltonian cycle %v", g, cyc)
		}
	}
}

func TestIsHamiltonianCycleEdgesRejects(t *testing.T) {
	g := graph.Complete(5)
	// Two disjoint cycles covering... K5 has 5 nodes; a 3-cycle + 2 nodes
	// unmatched: degree check fails.
	bad := map[graph.Edge]bool{
		graph.NormEdge(1, 2): true, graph.NormEdge(2, 3): true, graph.NormEdge(3, 1): true,
	}
	if IsHamiltonianCycleEdges(g, bad) {
		t.Error("partial cycle accepted")
	}
	// C6 in a 6-node graph vs two triangles.
	h := graph.Complete(6)
	twoTri := map[graph.Edge]bool{
		graph.NormEdge(1, 2): true, graph.NormEdge(2, 3): true, graph.NormEdge(3, 1): true,
		graph.NormEdge(4, 5): true, graph.NormEdge(5, 6): true, graph.NormEdge(6, 4): true,
	}
	if IsHamiltonianCycleEdges(h, twoTri) {
		t.Error("two disjoint triangles accepted as Hamiltonian cycle")
	}
	good := CycleEdges([]int{1, 2, 3, 4, 5, 6})
	if !IsHamiltonianCycleEdges(h, good) {
		t.Error("genuine Hamiltonian cycle rejected")
	}
}
