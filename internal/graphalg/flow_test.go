package graphalg

import (
	"math/rand"
	"testing"

	"lcp/internal/graph"
)

// validateDisjointPaths checks all structural promises of the §4.2 prover
// output.
func validateDisjointPaths(t *testing.T, g *graph.Graph, s, tt int, r *DisjointPathsResult) {
	t.Helper()
	seen := make(map[int]int)
	for pi, path := range r.Paths {
		if path[0] != s || path[len(path)-1] != tt {
			t.Fatalf("path %d endpoints %d..%d", pi, path[0], path[len(path)-1])
		}
		for i := 1; i < len(path); i++ {
			if !g.HasEdge(path[i-1], path[i]) {
				t.Fatalf("path %d: non-edge %d-%d", pi, path[i-1], path[i])
			}
		}
		for _, v := range path[1 : len(path)-1] {
			if prev, dup := seen[v]; dup {
				t.Fatalf("node %d on paths %d and %d", v, prev, pi)
			}
			seen[v] = pi
		}
		// Local minimality: no chord between non-consecutive positions.
		pos := make(map[int]int)
		for i, v := range path {
			pos[v] = i
		}
		for i, v := range path {
			for _, u := range g.Neighbors(v) {
				if j, ok := pos[u]; ok && j > i+1 {
					t.Fatalf("path %d has chord %d(-pos %d)-%d(pos %d)", pi, v, i, u, j)
				}
			}
		}
	}
	// Cut properties.
	inCut := make(map[int]bool)
	for _, c := range r.Cut {
		inCut[c] = true
	}
	if len(r.Cut) != len(r.Paths) {
		t.Fatalf("|cut| = %d ≠ k = %d", len(r.Cut), len(r.Paths))
	}
	for pi, path := range r.Paths {
		crossings := 0
		for _, v := range path[1 : len(path)-1] {
			if inCut[v] {
				crossings++
			}
		}
		if crossings != 1 {
			t.Fatalf("path %d crosses cut %d times", pi, crossings)
		}
	}
	// Partition and no S–T edges.
	if !r.S[s] || !r.T[tt] {
		t.Fatal("s or t on wrong side")
	}
	for _, v := range g.Nodes() {
		sides := b2i(r.S[v]) + b2i(r.T[v]) + b2i(inCut[v])
		if sides != 1 {
			t.Fatalf("node %d is on %d sides", v, sides)
		}
	}
	for _, e := range g.Edges() {
		if (r.S[e.U] && r.T[e.V]) || (r.T[e.U] && r.S[e.V]) {
			t.Fatalf("S–T edge %v", e)
		}
	}
}

func TestDisjointPathsOnGrid(t *testing.T) {
	g := graph.Grid(4, 5)
	s, tt := 1, 20 // opposite corners
	r, err := DisjointPaths(g, s, tt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Connectivity() != 2 {
		t.Fatalf("grid corner connectivity = %d, want 2", r.Connectivity())
	}
	validateDisjointPaths(t, g, s, tt, r)
}

func TestDisjointPathsOnCompleteBipartite(t *testing.T) {
	// K_{3,3}: connectivity between two nodes on the same side is 3.
	g := graph.CompleteBipartite(3, 3)
	r, err := DisjointPaths(g, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Connectivity() != 3 {
		t.Fatalf("connectivity = %d, want 3", r.Connectivity())
	}
	validateDisjointPaths(t, g, 1, 2, r)
}

func TestDisjointPathsDisconnected(t *testing.T) {
	g := graph.DisjointUnion(graph.Cycle(4), graph.Cycle(4).ShiftIDs(10))
	r, err := DisjointPaths(g, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	if r.Connectivity() != 0 {
		t.Fatalf("cross-component connectivity = %d", r.Connectivity())
	}
	if len(r.Cut) != 0 {
		t.Fatalf("cut = %v", r.Cut)
	}
}

func TestDisjointPathsAdjacentRejected(t *testing.T) {
	if _, err := DisjointPaths(graph.Cycle(5), 1, 2); err == nil {
		t.Error("adjacent s,t accepted")
	}
	if _, err := DisjointPaths(graph.Cycle(5), 3, 3); err == nil {
		t.Error("s = t accepted")
	}
}

func TestDisjointPathsPetersen(t *testing.T) {
	// Petersen is 3-connected; any non-adjacent pair has connectivity 3.
	g := graph.Petersen()
	r, err := DisjointPaths(g, 1, 3) // non-adjacent on outer cycle
	if err != nil {
		t.Fatal(err)
	}
	if r.Connectivity() != 3 {
		t.Fatalf("Petersen connectivity = %d, want 3", r.Connectivity())
	}
	validateDisjointPaths(t, g, 1, 3, r)
}

func TestDisjointPathsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		g := graph.RandomConnected(18, 0.15, rng.Int63())
		// Pick a non-adjacent pair.
		var s, tt int
		found := false
		for _, u := range g.Nodes() {
			for _, v := range g.Nodes() {
				if u < v && !g.HasEdge(u, v) {
					s, tt, found = u, v, true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			continue
		}
		r, err := DisjointPaths(g, s, tt)
		if err != nil {
			t.Fatal(err)
		}
		validateDisjointPaths(t, g, s, tt, r)
	}
}

func TestVertexConnectivityHypercube(t *testing.T) {
	// Q3 is 3-connected; antipodal nodes 1 and 8 are non-adjacent.
	k, err := VertexConnectivity(graph.Hypercube(3), 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 {
		t.Errorf("Q3 connectivity = %d, want 3", k)
	}
}

// bruteVertexConnectivity computes κ(s,t) by enumerating all vertex
// subsets as candidate separators — exponential ground truth for the
// max-flow implementation.
func bruteVertexConnectivity(g *graph.Graph, s, t int) int {
	var interior []int
	for _, v := range g.Nodes() {
		if v != s && v != t {
			interior = append(interior, v)
		}
	}
	best := len(interior) + 1 // "no cut needed" sentinel; overwritten below
	for mask := 0; mask < 1<<uint(len(interior)); mask++ {
		var cut []int
		for i, v := range interior {
			if mask&(1<<uint(i)) != 0 {
				cut = append(cut, v)
			}
		}
		if len(cut) >= best {
			continue
		}
		// Is t unreachable from s in G − cut?
		inCut := map[int]bool{}
		for _, v := range cut {
			inCut[v] = true
		}
		seen := map[int]bool{s: true}
		queue := []int{s}
		sep := true
		for len(queue) > 0 && sep {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Neighbors(u) {
				if inCut[v] || seen[v] {
					continue
				}
				if v == t {
					sep = false
					break
				}
				seen[v] = true
				queue = append(queue, v)
			}
		}
		if sep {
			best = len(cut)
		}
	}
	return best
}

// TestDisjointPathsAgainstBruteForceCut: Menger duality, cross-checked —
// the flow-based κ equals the exhaustive minimum separator size.
func TestDisjointPathsAgainstBruteForceCut(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		g := graph.RandomGNP(9, 0.35, rng.Int63())
		var s, tt int
		found := false
		for _, u := range g.Nodes() {
			for _, v := range g.Nodes() {
				if u < v && !g.HasEdge(u, v) {
					s, tt, found = u, v, true
				}
			}
		}
		if !found {
			continue
		}
		got, err := VertexConnectivity(g, s, tt)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteVertexConnectivity(g, s, tt)
		if got != want {
			t.Fatalf("trial %d: flow κ=%d, brute κ=%d (s=%d t=%d, %v)", trial, got, want, s, tt, g.Edges())
		}
	}
}
