package graphalg

import (
	"math/rand"
	"testing"

	"lcp/internal/graph"
)

func TestIsIsomorphicBasics(t *testing.T) {
	if !IsIsomorphic(graph.Cycle(5), graph.Cycle(5).ShiftIDs(100)) {
		t.Error("shifted cycle not isomorphic")
	}
	if IsIsomorphic(graph.Cycle(6), graph.Path(6)) {
		t.Error("C6 ≅ P6?")
	}
	if IsIsomorphic(graph.Cycle(6), graph.Cycle(7)) {
		t.Error("C6 ≅ C7?")
	}
	// Same degree sequence, non-isomorphic: C6 vs 2×C3.
	twoTriangles := graph.DisjointUnion(graph.Cycle(3), graph.Cycle(3).ShiftIDs(10))
	if IsIsomorphic(graph.Cycle(6), twoTriangles) {
		t.Error("C6 ≅ C3+C3?")
	}
}

func TestIsIsomorphicRandomRelabels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 15; i++ {
		g := graph.RandomGNP(9, 0.4, rng.Int63())
		h := graph.RandomPermutationIDs(g, rng.Int63())
		if !IsIsomorphic(g, h) {
			t.Fatalf("trial %d: relabelled copy not isomorphic", i)
		}
	}
}

func TestNontrivialAutomorphism(t *testing.T) {
	symmetric := []*graph.Graph{
		graph.Cycle(6),
		graph.Complete(4),
		graph.Petersen(),
		graph.Star(3),
		graph.Path(2),
		graph.CompleteBipartite(2, 3),
	}
	for _, g := range symmetric {
		m := NontrivialAutomorphism(g)
		if m == nil {
			t.Errorf("%v: no automorphism found", g)
			continue
		}
		if !IsAutomorphism(g, m) {
			t.Errorf("%v: returned map is not an automorphism", g)
		}
		trivial := true
		for v, u := range m {
			if v != u {
				trivial = false
			}
		}
		if trivial {
			t.Errorf("%v: identity returned", g)
		}
	}
}

// smallestAsymmetricTree is the 7-node asymmetric tree: a path 1-2-3-4-5
// with a leaf 6 on node 2 and a 2-path 4-7... constructed explicitly
// below; verified asymmetric by the test.
func smallestAsymmetricTree() *graph.Graph {
	// The unique smallest asymmetric tree has 7 nodes: center path with
	// branches of lengths 1, 2, 3.
	return graph.NewBuilder(graph.Undirected).
		AddPath(1, 2).       // branch of length 1
		AddPath(3, 4, 2).    // branch of length 2
		AddPath(5, 6, 7, 2). // branch of length 3
		Graph()
}

func TestIsAsymmetric(t *testing.T) {
	if !IsAsymmetric(graph.Path(1)) {
		t.Error("K1 should be asymmetric")
	}
	if IsAsymmetric(graph.Path(3)) {
		t.Error("P3 asymmetric?")
	}
	if !IsAsymmetric(smallestAsymmetricTree()) {
		t.Error("7-node spider tree (1,2,3) not asymmetric")
	}
}

func TestFixpointFreeAutomorphism(t *testing.T) {
	// C6 has one (rotation); P3 does not (center is fixed by the flip).
	if m := FixpointFreeAutomorphism(graph.Cycle(6)); m == nil {
		t.Error("C6 has no fixpoint-free automorphism?")
	} else {
		if !IsAutomorphism(graph.Cycle(6), m) {
			t.Error("returned map not an automorphism")
		}
		for v, u := range m {
			if v == u {
				t.Errorf("fixpoint at %d", v)
			}
		}
	}
	if FixpointFreeAutomorphism(graph.Path(3)) != nil {
		t.Error("P3 has a fixpoint-free automorphism?")
	}
	if FixpointFreeAutomorphism(graph.Star(3)) != nil {
		t.Error("K_{1,3} has a fixpoint-free automorphism?")
	}
	// Two copies of an asymmetric tree glued as one forest... use the ⊙
	// shape: path between two copies of the same asymmetric graph has a
	// fixpoint-free automorphism only with even path; here simply check
	// two disjoint copies.
	a := smallestAsymmetricTree()
	b := a.ShiftIDs(100)
	if FixpointFreeAutomorphism(graph.DisjointUnion(a, b)) == nil {
		t.Error("two copies of asymmetric tree: swap is fixpoint-free")
	}
}

func TestCanonicalFormInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 20; i++ {
		g := graph.RandomGNP(8, 0.5, rng.Int63())
		h := graph.RandomPermutationIDs(g, rng.Int63())
		cg, ch := CanonicalForm(g), CanonicalForm(h)
		if !graph.Equal(cg, ch) {
			t.Fatalf("trial %d: canonical forms differ for isomorphic graphs", i)
		}
		if !IsIsomorphic(g, cg) {
			t.Fatalf("trial %d: canonical form not isomorphic to original", i)
		}
	}
}

func TestCanonicalFormSeparatesNonIsomorphic(t *testing.T) {
	// All 11 graphs on 4 nodes, pairwise non-isomorphic, must get 11
	// distinct canonical forms.
	seen := make(map[string]bool)
	count := 0
	enumerateConnectedGraphs(4, func(g *graph.Graph) {
		key := canonicalKeyOf(g)
		if !seen[key] {
			seen[key] = true
			count++
		}
	})
	// Connected graphs on 4 nodes up to isomorphism: 6.
	if count != 6 {
		t.Errorf("distinct connected 4-node graphs = %d, want 6", count)
	}
}

func TestCanonicalFormStructured(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Cycle(9), graph.Petersen(), graph.Grid(3, 3)} {
		c := CanonicalForm(g)
		if c.N() != g.N() || c.M() != g.M() {
			t.Errorf("canonical form changed size for %v", g)
		}
		if c.MaxID() != g.N() {
			t.Errorf("canonical ids not 1..n for %v", g)
		}
		if !IsIsomorphic(g, c) {
			t.Errorf("canonical form not isomorphic for %v", g)
		}
	}
}

func TestIsAutomorphismRejects(t *testing.T) {
	g := graph.Path(3)
	if IsAutomorphism(g, map[int]int{1: 1, 2: 2}) {
		t.Error("partial map accepted")
	}
	if IsAutomorphism(g, map[int]int{1: 1, 2: 2, 3: 2}) {
		t.Error("non-injective map accepted")
	}
	if IsAutomorphism(g, map[int]int{1: 2, 2: 1, 3: 3}) {
		t.Error("non-adjacency-preserving map accepted")
	}
}
