package graphalg

import (
	"sort"

	"lcp/internal/graph"
)

// Isomorphism, automorphism and canonical-form machinery for §6:
// symmetric graphs (non-trivial automorphisms), fixpoint-free symmetries
// on trees, and the canonical forms C(G) / shifted copies C(G, i) used by
// the G₁⊙G₂ gluing construction.
//
// The provers and fooling constructions only invoke these on small graphs
// (the gluing arguments need |F_k| to exceed a proof-bit budget, which
// happens for modest k), so exact backtracking with partition-refinement
// pruning is the right tool.

// Isomorphisms enumerates isomorphisms g → h, invoking accept for each;
// enumeration stops (returning true) when accept returns true. It returns
// false if no accepted isomorphism exists. The search maps nodes of g in
// a fixed order with adjacency-consistency pruning (VF2-style).
func Isomorphisms(g, h *graph.Graph, accept func(map[int]int) bool) bool {
	if g.N() != h.N() || g.M() != h.M() || g.Directed() != h.Directed() {
		return false
	}
	gn := append([]int{}, g.Nodes()...)
	// Order g's nodes to keep the frontier connected: BFS from a
	// max-degree node, component by component.
	gn = searchOrder(g, gn)
	hn := h.Nodes()

	// Degree histograms must agree.
	if !sameDegreeHistogram(g, h) {
		return false
	}

	mapped := make(map[int]int, g.N()) // g node -> h node
	used := make(map[int]bool, h.N())  // h nodes already used
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(gn) {
			m := make(map[int]int, len(mapped))
			for k, v := range mapped {
				m[k] = v
			}
			return accept(m)
		}
		v := gn[i]
		for _, u := range hn {
			if used[u] || g.Degree(v) != h.Degree(u) {
				continue
			}
			if !consistent(g, h, mapped, v, u) {
				continue
			}
			mapped[v] = u
			used[u] = true
			if rec(i + 1) {
				return true
			}
			delete(mapped, v)
			used[u] = false
		}
		return false
	}
	return rec(0)
}

func searchOrder(g *graph.Graph, nodes []int) []int {
	seen := make(map[int]bool, len(nodes))
	var order []int
	remaining := append([]int{}, nodes...)
	sort.Slice(remaining, func(i, j int) bool {
		di, dj := g.Degree(remaining[i]), g.Degree(remaining[j])
		if di != dj {
			return di > dj
		}
		return remaining[i] < remaining[j]
	})
	for _, start := range remaining {
		if seen[start] {
			continue
		}
		queue := []int{start}
		seen[start] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, u := range g.Neighbors(v) {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	return order
}

func sameDegreeHistogram(g, h *graph.Graph) bool {
	hist := func(x *graph.Graph) map[int]int {
		m := make(map[int]int)
		for _, v := range x.Nodes() {
			m[x.Degree(v)]++
		}
		return m
	}
	hg, hh := hist(g), hist(h)
	if len(hg) != len(hh) {
		return false
	}
	for d, c := range hg {
		if hh[d] != c {
			return false
		}
	}
	return true
}

// consistent checks that mapping v→u preserves adjacency with all
// already-mapped nodes (both edge presence and absence).
func consistent(g, h *graph.Graph, mapped map[int]int, v, u int) bool {
	for x, y := range mapped {
		if g.HasEdge(v, x) != h.HasEdge(u, y) {
			return false
		}
		if g.Directed() && g.HasEdge(x, v) != h.HasEdge(y, u) {
			return false
		}
	}
	return true
}

// IsIsomorphic reports whether g and h are isomorphic.
func IsIsomorphic(g, h *graph.Graph) bool {
	return Isomorphisms(g, h, func(map[int]int) bool { return true })
}

// NontrivialAutomorphism returns a non-identity automorphism of g, or nil
// if g is asymmetric. This decides the §6.1 property "G is symmetric".
func NontrivialAutomorphism(g *graph.Graph) map[int]int {
	var found map[int]int
	Isomorphisms(g, g, func(m map[int]int) bool {
		for v, u := range m {
			if v != u {
				found = m
				return true
			}
		}
		return false // identity; keep searching
	})
	return found
}

// IsAsymmetric reports whether g has no non-trivial automorphism.
func IsAsymmetric(g *graph.Graph) bool {
	return NontrivialAutomorphism(g) == nil
}

// FixpointFreeAutomorphism returns an automorphism with g(v) ≠ v for all
// v, or nil if none exists (§6.2).
func FixpointFreeAutomorphism(g *graph.Graph) map[int]int {
	var found map[int]int
	// Prune inside accept only; the searcher does not support per-pair
	// filters, but fixpoint-freeness fails fast in accept and graphs here
	// are small.
	Isomorphisms(g, g, func(m map[int]int) bool {
		for v, u := range m {
			if v == u {
				return false
			}
		}
		found = m
		return true
	})
	return found
}

// IsAutomorphism reports whether m is an automorphism of g: a bijection
// V→V preserving adjacency both ways.
func IsAutomorphism(g *graph.Graph, m map[int]int) bool {
	if len(m) != g.N() {
		return false
	}
	img := make(map[int]bool, len(m))
	for v, u := range m {
		if !g.Has(v) || !g.Has(u) || img[u] {
			return false
		}
		img[u] = true
	}
	for _, e := range g.Edges() {
		if !g.HasEdge(m[e.U], m[e.V]) {
			return false
		}
	}
	return true
}

// CanonicalForm returns C(g): a graph isomorphic to g whose node
// identifiers are 1..n, such that isomorphic graphs yield Equal canonical
// forms. It uses colour refinement plus backtracking individualization,
// selecting the lexicographically largest adjacency encoding.
func CanonicalForm(g *graph.Graph) *graph.Graph {
	order := CanonicalOrder(g)
	m := make(map[int]int, len(order))
	for pos, id := range order {
		m[id] = pos + 1
	}
	return g.Relabel(m)
}

// CanonicalOrder returns the node ids of g in canonical order: position i
// of the result is the node that becomes identifier i+1 in CanonicalForm.
func CanonicalOrder(g *graph.Graph) []int {
	n := g.N()
	if n == 0 {
		return nil
	}
	nodes := g.Nodes()
	idx := make(map[int]int, n)
	for i, v := range nodes {
		idx[v] = i
	}
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for _, e := range g.Edges() {
		adj[idx[e.U]][idx[e.V]] = true
		adj[idx[e.V]][idx[e.U]] = true
	}

	var bestKey string
	var bestOrder []int
	var rec func(part [][]int)
	rec = func(part [][]int) {
		part = refine(adj, part)
		// Find first non-singleton cell.
		target := -1
		for i, cell := range part {
			if len(cell) > 1 {
				target = i
				break
			}
		}
		if target == -1 {
			// Discrete: evaluate the ordering.
			order := make([]int, n)
			for i, cell := range part {
				order[i] = cell[0]
			}
			key := adjacencyKey(adj, order)
			if bestOrder == nil || key > bestKey {
				bestKey = key
				bestOrder = order
			}
			return
		}
		cell := part[target]
		for _, pick := range cell {
			next := make([][]int, 0, len(part)+1)
			next = append(next, part[:target]...)
			next = append(next, []int{pick})
			rest := make([]int, 0, len(cell)-1)
			for _, x := range cell {
				if x != pick {
					rest = append(rest, x)
				}
			}
			next = append(next, rest)
			next = append(next, part[target+1:]...)
			rec(next)
		}
	}
	rec([][]int{indices(n)})

	order := make([]int, n)
	for pos, i := range bestOrder {
		order[pos] = nodes[i]
	}
	return order
}

func indices(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// refine performs equitable colour refinement: repeatedly split cells by
// the multiset of neighbour counts into each cell, until stable. Cells
// are kept in a deterministic order (split products ordered by count
// signature), which is what makes the final ordering canonical.
func refine(adj [][]bool, part [][]int) [][]int {
	for {
		changed := false
		var next [][]int
		for _, cell := range part {
			if len(cell) == 1 {
				next = append(next, cell)
				continue
			}
			// Signature of v: number of neighbours in each current cell.
			sig := make(map[int]string, len(cell))
			for _, v := range cell {
				key := make([]byte, 0, 2*len(part))
				for _, other := range part {
					c := 0
					for _, u := range other {
						if adj[v][u] {
							c++
						}
					}
					key = append(key, byte(c>>8), byte(c))
				}
				sig[v] = string(key)
			}
			groups := make(map[string][]int)
			var keys []string
			for _, v := range cell {
				s := sig[v]
				if _, ok := groups[s]; !ok {
					keys = append(keys, s)
				}
				groups[s] = append(groups[s], v)
			}
			if len(groups) == 1 {
				next = append(next, cell)
				continue
			}
			changed = true
			sort.Strings(keys)
			for _, s := range keys {
				grp := groups[s]
				sort.Ints(grp)
				next = append(next, grp)
			}
		}
		part = next
		if !changed {
			return part
		}
	}
}

// adjacencyKey renders the adjacency matrix under the given ordering as a
// comparable string.
func adjacencyKey(adj [][]bool, order []int) string {
	n := len(order)
	buf := make([]byte, 0, n*n/8+1)
	var cur byte
	bits := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			cur <<= 1
			if adj[order[i]][order[j]] {
				cur |= 1
			}
			bits++
			if bits == 8 {
				buf = append(buf, cur)
				cur, bits = 0, 0
			}
		}
	}
	if bits > 0 {
		buf = append(buf, cur<<(8-uint(bits)))
	}
	return string(buf)
}
