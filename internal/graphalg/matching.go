package graphalg

import (
	"sort"

	"lcp/internal/graph"
)

// Matching utilities: validity and maximality checks (the LCP(0) verifier
// of §2.3), Hopcroft–Karp maximum bipartite matching, and the König
// minimum vertex cover construction that yields the 1-bit certificate for
// maximum matchings in bipartite graphs.

// Matching is a set of edges, keyed by normalized edge.
type Matching map[graph.Edge]bool

// MatchedWith returns the partner of v in m, or 0 if v is unmatched.
func (m Matching) MatchedWith(v int) int {
	for e := range m {
		if e.U == v {
			return e.V
		}
		if e.V == v {
			return e.U
		}
	}
	return 0
}

// Edges returns the matching as a sorted edge slice.
func (m Matching) Edges() []graph.Edge {
	es := make([]graph.Edge, 0, len(m))
	for e := range m {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

// IsMatching reports whether edges form a matching in g: all edges exist
// and no two share an endpoint.
func IsMatching(g *graph.Graph, m Matching) bool {
	used := make(map[int]bool, 2*len(m))
	for e := range m {
		if !g.HasEdge(e.U, e.V) {
			return false
		}
		if used[e.U] || used[e.V] {
			return false
		}
		used[e.U] = true
		used[e.V] = true
	}
	return true
}

// IsMaximalMatching reports whether m is a maximal matching of g: a valid
// matching that cannot be extended by any single edge.
func IsMaximalMatching(g *graph.Graph, m Matching) bool {
	if !IsMatching(g, m) {
		return false
	}
	matched := make(map[int]bool, 2*len(m))
	for e := range m {
		matched[e.U] = true
		matched[e.V] = true
	}
	for _, e := range g.Edges() {
		if !matched[e.U] && !matched[e.V] {
			return false
		}
	}
	return true
}

// GreedyMaximalMatching returns a deterministic maximal matching (scan
// edges in sorted order).
func GreedyMaximalMatching(g *graph.Graph) Matching {
	m := make(Matching)
	matched := make(map[int]bool, g.N())
	for _, e := range g.Edges() {
		if !matched[e.U] && !matched[e.V] {
			m[e] = true
			matched[e.U] = true
			matched[e.V] = true
		}
	}
	return m
}

// HopcroftKarp computes a maximum matching of a bipartite graph given the
// left part. It returns the matching and the matchL map (left node →
// partner, 0 if unmatched). It panics if left is not an independent-set
// side of g (callers establish bipartiteness first).
func HopcroftKarp(g *graph.Graph, left []int) (Matching, map[int]int) {
	isLeft := make(map[int]bool, len(left))
	for _, v := range left {
		isLeft[v] = true
	}
	for _, v := range left {
		for _, u := range g.Neighbors(v) {
			if isLeft[u] {
				panic("graphalg: HopcroftKarp: left side is not independent")
			}
		}
	}
	matchL := make(map[int]int, len(left)) // left -> right (0 = free)
	matchR := make(map[int]int)            // right -> left (0 = free)

	// Standard BFS/DFS phases.
	const inf = int(^uint(0) >> 1)
	distance := make(map[int]int, len(left))
	bfs := func() bool {
		queue := make([]int, 0, len(left))
		for _, v := range left {
			if matchL[v] == 0 {
				distance[v] = 0
				queue = append(queue, v)
			} else {
				distance[v] = inf
			}
		}
		found := false
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(v) {
				w := matchR[u]
				if w == 0 {
					found = true
				} else if distance[w] == inf {
					distance[w] = distance[v] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}
	var dfs func(v int) bool
	dfs = func(v int) bool {
		for _, u := range g.Neighbors(v) {
			w := matchR[u]
			if w == 0 || (distance[w] == distance[v]+1 && dfs(w)) {
				matchL[v] = u
				matchR[u] = v
				return true
			}
		}
		distance[v] = inf
		return false
	}
	for bfs() {
		for _, v := range left {
			if matchL[v] == 0 {
				dfs(v)
			}
		}
	}
	m := make(Matching)
	for v, u := range matchL {
		if u != 0 {
			m[graph.NormEdge(v, u)] = true
		}
	}
	return m, matchL
}

// KonigCover returns a minimum vertex cover of a bipartite graph from a
// maximum matching, via König's theorem: with Z the set of nodes reachable
// by alternating paths from free left nodes, the cover is (L \ Z) ∪ (R ∩ Z).
// |cover| = |matching|, which is exactly the certificate used by the Θ(1)
// maximum-matching scheme of §2.3.
func KonigCover(g *graph.Graph, left []int, matchL map[int]int) map[int]bool {
	isLeft := make(map[int]bool, len(left))
	for _, v := range left {
		isLeft[v] = true
	}
	matchR := make(map[int]int)
	for v, u := range matchL {
		if u != 0 {
			matchR[u] = v
		}
	}
	inZ := make(map[int]bool)
	var queue []int
	for _, v := range left {
		if matchL[v] == 0 {
			inZ[v] = true
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0] // v is always a left node here
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if inZ[u] || matchL[v] == u {
				continue // only non-matching edges leave the left side
			}
			inZ[u] = true
			if w := matchR[u]; w != 0 && !inZ[w] {
				inZ[w] = true
				queue = append(queue, w)
			}
		}
	}
	cover := make(map[int]bool)
	for _, v := range left {
		if !inZ[v] {
			cover[v] = true
		}
	}
	for _, v := range g.Nodes() {
		if !isLeft[v] && inZ[v] {
			cover[v] = true
		}
	}
	return cover
}

// IsVertexCover reports whether cover touches every edge of g.
func IsVertexCover(g *graph.Graph, cover map[int]bool) bool {
	for _, e := range g.Edges() {
		if !cover[e.U] && !cover[e.V] {
			return false
		}
	}
	return true
}

// MaximumMatchingSize computes the maximum matching size of an arbitrary
// graph by branching on the lowest-id node (include one incident edge or
// exclude the node). Exponential; used as ground truth on small graphs.
func MaximumMatchingSize(g *graph.Graph) int {
	adj := make(map[int][]int, g.N())
	for _, v := range g.Nodes() {
		adj[v] = append([]int{}, g.Neighbors(v)...)
	}
	alive := make(map[int]bool, g.N())
	for _, v := range g.Nodes() {
		alive[v] = true
	}
	var rec func() int
	rec = func() int {
		// Pick the lowest alive node with a neighbour.
		var pick int
		for _, v := range g.Nodes() {
			if !alive[v] {
				continue
			}
			hasNbr := false
			for _, u := range adj[v] {
				if alive[u] {
					hasNbr = true
					break
				}
			}
			if hasNbr {
				pick = v
				break
			}
		}
		if pick == 0 {
			return 0
		}
		// Option 1: leave pick unmatched.
		alive[pick] = false
		best := rec()
		// Option 2: match pick with each alive neighbour.
		for _, u := range adj[pick] {
			if !alive[u] {
				continue
			}
			alive[u] = false
			if r := 1 + rec(); r > best {
				best = r
			}
			alive[u] = true
		}
		alive[pick] = true
		return best
	}
	return rec()
}
