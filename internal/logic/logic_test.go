package logic

import (
	"strings"
	"testing"

	"lcp/internal/core"
	"lcp/internal/graph"
)

func modelOn(g *graph.Graph, center, radius int, rel []map[int]bool, witness int) *Model {
	return &Model{
		View:    core.BuildView(core.NewInstance(g), core.Proof{}, center, radius),
		Rel:     rel,
		Witness: witness,
	}
}

func TestAtoms(t *testing.T) {
	g := graph.Path(3)
	m := modelOn(g, 2, 1, []map[int]bool{{1: true}}, 3)
	env := Env{Y: 2, "a": 1, "b": 2, "c": 3}
	cases := []struct {
		f    Formula
		want bool
	}{
		{Adj("a", "b"), true},
		{Adj("a", "c"), false}, // 1 and 3 not adjacent in P3
		{Eq("a", "a"), true},
		{Eq("a", "b"), false},
		{X(0, "a"), true},
		{X(0, "b"), false},
		{X(1, "a"), false}, // relation out of range
		{Witness("c"), true},
		{Witness("a"), false},
		{WitnessWithin(1), true}, // witness 3 at distance 1 from center 2
		{WitnessWithin(0), false},
	}
	for _, c := range cases {
		if got := c.f.Eval(m, env); got != c.want {
			t.Errorf("%s = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestAtomsUnboundVariables(t *testing.T) {
	m := modelOn(graph.Path(3), 2, 1, nil, 1)
	if Adj("p", "q").Eval(m, Env{}) {
		t.Error("unbound Adj evaluated true")
	}
	if Eq("p", "p").Eval(m, Env{}) {
		t.Error("unbound Eq evaluated true")
	}
}

func TestConnectives(t *testing.T) {
	m := modelOn(graph.Path(2), 1, 1, nil, 1)
	tr := Eq(Y, Y)
	fa := Not(tr)
	if !And(tr, tr).Eval(m, Env{Y: 1}) || And(tr, fa).Eval(m, Env{Y: 1}) {
		t.Error("And wrong")
	}
	if !Or(fa, tr).Eval(m, Env{Y: 1}) || Or(fa, fa).Eval(m, Env{Y: 1}) {
		t.Error("Or wrong")
	}
	if !Implies(fa, fa).Eval(m, Env{Y: 1}) || Implies(tr, fa).Eval(m, Env{Y: 1}) {
		t.Error("Implies wrong")
	}
	if !And().Eval(m, Env{}) {
		t.Error("empty And should be true")
	}
	if Or().Eval(m, Env{}) {
		t.Error("empty Or should be false")
	}
}

func TestLocalQuantifiers(t *testing.T) {
	g := graph.Star(4) // center 1, leaves 2..5
	m := modelOn(g, 1, 1, []map[int]bool{{3: true}}, 1)
	env := Env{Y: 1}
	// ∃z ≤ 1: X0(z)
	if !ExistsNear("z", 1, X(0, "z")).Eval(m, env) {
		t.Error("exists failed to find the marked leaf")
	}
	// ∀z ≤ 1: X0(z) — false.
	if ForallNear("z", 1, X(0, "z")).Eval(m, env) {
		t.Error("forall accepted unmarked nodes")
	}
	// ∀z ≤ 0 ranges only over the center.
	if !ForallNear("z", 0, Eq("z", Y)).Eval(m, env) {
		t.Error("radius-0 forall saw non-center nodes")
	}
}

func TestRadiusComputation(t *testing.T) {
	f := And(
		ExistsNear("a", 2, Adj("a", Y)),
		ForallNear("b", 3, Or(Eq("b", Y), WitnessWithin(1))),
	)
	if got := f.Radius(); got != 3 {
		t.Errorf("Radius = %d, want 3", got)
	}
	s := Sentence{K: 2, Phi: f}
	if s.Radius() != 3 {
		t.Errorf("sentence radius = %d", s.Radius())
	}
}

func TestSentenceString(t *testing.T) {
	s := Sentence{K: 2, Phi: ForallNear("z", 1, Implies(Adj(Y, "z"), Not(X(0, "z"))))}
	str := s.String()
	for _, want := range []string{"∃X0", "∃X1", "∃x ∀y", "∀z≤1"} {
		if !strings.Contains(str, want) {
			t.Errorf("sentence rendering %q missing %q", str, want)
		}
	}
}

func TestEvalAtBindsCenter(t *testing.T) {
	// φ = "y is the witness" is true exactly at the witness node.
	g := graph.Path(3)
	s := Sentence{K: 0, Phi: Witness(Y)}
	for _, v := range g.Nodes() {
		m := modelOn(g, v, 1, nil, 2)
		if got := s.EvalAt(m); got != (v == 2) {
			t.Errorf("node %d: EvalAt = %v", v, got)
		}
	}
}

// TestThreeColorabilityFormulaSemantics: the Σ¹₁ matrix used by the
// schemes package must hold at every node exactly for proper colourings.
func TestThreeColorabilityFormulaSemantics(t *testing.T) {
	exactlyOne := Or(
		And(X(0, Y), Not(X(1, Y)), Not(X(2, Y))),
		And(Not(X(0, Y)), X(1, Y), Not(X(2, Y))),
		And(Not(X(0, Y)), Not(X(1, Y)), X(2, Y)),
	)
	proper := ForallNear("z", 1, Implies(Adj(Y, "z"), And(
		Not(And(X(0, Y), X(0, "z"))),
		Not(And(X(1, Y), X(1, "z"))),
		Not(And(X(2, Y), X(2, "z"))),
	)))
	phi := And(exactlyOne, proper)

	g := graph.Cycle(5) // χ = 3
	good := []map[int]bool{
		{1: true, 3: true}, {2: true, 4: true}, {5: true},
	}
	for _, v := range g.Nodes() {
		m := modelOn(g, v, 1, good, 1)
		if !phi.Eval(m, Env{Y: v}) {
			t.Errorf("proper colouring rejected at node %d", v)
		}
	}
	// A monochromatic edge (1 and 2 both in X0) must fail at 1 and 2.
	bad := []map[int]bool{
		{1: true, 2: true, 3: true}, {4: true}, {5: true},
	}
	m := modelOn(g, 1, 1, bad, 1)
	if phi.Eval(m, Env{Y: 1}) {
		t.Error("monochromatic edge accepted")
	}
}
