// Package logic implements the monadic Σ¹₁ formulas of §7.5: sentences
//
//	∃X₁ … ∃X_k ∃x ∀y φ(X₁, …, X_k, x, y)
//
// in the Schwentick–Barthelmann local normal form, where φ is first-order
// and local around y — every quantifier inside φ is bounded to a
// constant-radius ball around y. On connected graphs every monadic Σ¹₁
// property is equivalent to such a sentence, and §7.5 shows all of them
// admit O(log n) locally checkable proofs: encode the relations with one
// bit each per node, pin the witness x with a spanning tree, and evaluate
// φ at every node.
package logic

import (
	"fmt"
	"strings"

	"lcp/internal/core"
)

// Env is a first-order variable assignment: variable name → node id.
type Env map[string]int

// Model is what φ is evaluated against at one node y: a radius-R view,
// the monadic relations (decoded from proof labels), and the identity of
// the existential witness x (the tree root).
type Model struct {
	View    *core.View
	Rel     []map[int]bool // Rel[i][v] ⇔ X_i(v)
	Witness int            // node id of x (may lie outside the view)
}

// Formula is a first-order formula, local around the node y = View.Center.
type Formula interface {
	// Eval evaluates the formula under the environment.
	Eval(m *Model, env Env) bool
	// Radius returns the distance from y that evaluation may inspect.
	Radius() int
	String() string
}

// Y is the reserved variable name bound to the view's center.
const Y = "y"

// ---- Atoms ----

// adj is the adjacency atom.
type adj struct{ a, b string }

// Adj returns the atom "a and b are adjacent".
func Adj(a, b string) Formula { return adj{a, b} }

func (f adj) Eval(m *Model, env Env) bool {
	u, okU := env[f.a]
	v, okV := env[f.b]
	return okU && okV && m.View.G.HasEdge(u, v)
}
func (f adj) Radius() int    { return 0 }
func (f adj) String() string { return fmt.Sprintf("%s~%s", f.a, f.b) }

// eq is the equality atom.
type eq struct{ a, b string }

// Eq returns the atom "a = b".
func Eq(a, b string) Formula { return eq{a, b} }

func (f eq) Eval(m *Model, env Env) bool {
	u, okU := env[f.a]
	v, okV := env[f.b]
	return okU && okV && u == v
}
func (f eq) Radius() int    { return 0 }
func (f eq) String() string { return fmt.Sprintf("%s=%s", f.a, f.b) }

// inRel is the monadic relation atom X_i(a).
type inRel struct {
	i int
	a string
}

// X returns the atom "X_i(a)" (0-indexed relation).
func X(i int, a string) Formula { return inRel{i, a} }

func (f inRel) Eval(m *Model, env Env) bool {
	v, ok := env[f.a]
	if !ok || f.i >= len(m.Rel) {
		return false
	}
	return m.Rel[f.i][v]
}
func (f inRel) Radius() int    { return 0 }
func (f inRel) String() string { return fmt.Sprintf("X%d(%s)", f.i, f.a) }

// isWitness is the atom "a = x" (the Σ¹₁ existential node witness).
type isWitness struct{ a string }

// Witness returns the atom "a is the existential witness x".
func Witness(a string) Formula { return isWitness{a} }

func (f isWitness) Eval(m *Model, env Env) bool {
	v, ok := env[f.a]
	return ok && v == m.Witness
}
func (f isWitness) Radius() int    { return 0 }
func (f isWitness) String() string { return fmt.Sprintf("%s=x", f.a) }

// witnessWithin is the atom "dist(y, x) ≤ r".
type witnessWithin struct{ r int }

// WitnessWithin returns the atom "the witness x lies within distance r of
// y". This is how local formulas talk about x at all: if x is farther
// away, the atom is false.
func WitnessWithin(r int) Formula { return witnessWithin{r} }

func (f witnessWithin) Eval(m *Model, env Env) bool {
	d, ok := m.View.Dist[m.Witness]
	return ok && d <= f.r
}
func (f witnessWithin) Radius() int    { return f.r }
func (f witnessWithin) String() string { return fmt.Sprintf("dist(y,x)≤%d", f.r) }

// ---- Connectives ----

type not struct{ f Formula }

// Not negates a formula.
func Not(f Formula) Formula { return not{f} }

func (f not) Eval(m *Model, env Env) bool { return !f.f.Eval(m, env) }
func (f not) Radius() int                 { return f.f.Radius() }
func (f not) String() string              { return "¬(" + f.f.String() + ")" }

type and struct{ fs []Formula }

// And conjoins formulas (true when empty).
func And(fs ...Formula) Formula { return and{fs} }

func (f and) Eval(m *Model, env Env) bool {
	for _, g := range f.fs {
		if !g.Eval(m, env) {
			return false
		}
	}
	return true
}
func (f and) Radius() int    { return maxRadius(f.fs) }
func (f and) String() string { return join(f.fs, " ∧ ") }

type or struct{ fs []Formula }

// Or disjoins formulas (false when empty).
func Or(fs ...Formula) Formula { return or{fs} }

func (f or) Eval(m *Model, env Env) bool {
	for _, g := range f.fs {
		if g.Eval(m, env) {
			return true
		}
	}
	return false
}
func (f or) Radius() int    { return maxRadius(f.fs) }
func (f or) String() string { return join(f.fs, " ∨ ") }

// Implies returns a → b.
func Implies(a, b Formula) Formula { return Or(Not(a), b) }

// ---- Local quantifiers (Schwentick–Barthelmann form) ----

// exists is ∃v: dist(v, y) ≤ r ∧ body.
type exists struct {
	v    string
	r    int
	body Formula
}

// ExistsNear returns ∃v (dist(v, y) ≤ r ∧ body).
func ExistsNear(v string, r int, body Formula) Formula { return exists{v, r, body} }

func (f exists) Eval(m *Model, env Env) bool {
	for _, node := range m.View.G.Nodes() {
		if m.View.Dist[node] > f.r {
			continue
		}
		env2 := cloneEnv(env)
		env2[f.v] = node
		if f.body.Eval(m, env2) {
			return true
		}
	}
	return false
}
func (f exists) Radius() int { return maxInt(f.r, f.body.Radius()) }
func (f exists) String() string {
	return fmt.Sprintf("∃%s≤%d(%s)", f.v, f.r, f.body.String())
}

// forall is ∀v: dist(v, y) ≤ r → body.
type forall struct {
	v    string
	r    int
	body Formula
}

// ForallNear returns ∀v (dist(v, y) ≤ r → body).
func ForallNear(v string, r int, body Formula) Formula { return forall{v, r, body} }

func (f forall) Eval(m *Model, env Env) bool {
	for _, node := range m.View.G.Nodes() {
		if m.View.Dist[node] > f.r {
			continue
		}
		env2 := cloneEnv(env)
		env2[f.v] = node
		if !f.body.Eval(m, env2) {
			return false
		}
	}
	return true
}
func (f forall) Radius() int { return maxInt(f.r, f.body.Radius()) }
func (f forall) String() string {
	return fmt.Sprintf("∀%s≤%d(%s)", f.v, f.r, f.body.String())
}

// ---- Sentences ----

// Sentence is a full monadic Σ¹₁ sentence in local normal form.
type Sentence struct {
	// K is the number of monadic relations X_0..X_{K-1}.
	K int
	// Phi is the matrix φ(X, x, y); y is bound to each node in turn.
	Phi Formula
}

// Radius returns the locality radius of the matrix.
func (s Sentence) Radius() int {
	if r := s.Phi.Radius(); r > 0 {
		return r
	}
	return 0
}

// EvalAt evaluates φ at one node (the view's center).
func (s Sentence) EvalAt(m *Model) bool {
	return s.Phi.Eval(m, Env{Y: m.View.Center})
}

// String renders the sentence.
func (s Sentence) String() string {
	var b strings.Builder
	for i := 0; i < s.K; i++ {
		fmt.Fprintf(&b, "∃X%d ", i)
	}
	b.WriteString("∃x ∀y: ")
	b.WriteString(s.Phi.String())
	return b.String()
}

func maxRadius(fs []Formula) int {
	r := 0
	for _, f := range fs {
		if f.Radius() > r {
			r = f.Radius()
		}
	}
	return r
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func cloneEnv(env Env) Env {
	out := make(Env, len(env)+1)
	for k, v := range env {
		out[k] = v
	}
	return out
}

func join(fs []Formula, sep string) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}
