// Package errignored is the fixture for the errignored analyzer: seeded
// violations drop error results on the floor in expression statements;
// fixed versions handle the error, discard it explicitly with _, or call
// allowlisted never-fails writers.
package errignored

import (
	"errors"
	"fmt"
	"strings"
)

func fails() error { return errors.New("boom") }

func failsWithValue() (int, error) { return 0, nil }

func dropsErrors() {
	fails()          // want "error result of fails is silently discarded"
	failsWithValue() // want "error result of failsWithValue is silently discarded"
}

func dropsMethodError() {
	var sb strings.Builder
	errors.Join(fails()) // want "error result of errors.Join is silently discarded"
	_ = sb
}

// Fixed versions: no diagnostics below this line.

func handles() error {
	if err := fails(); err != nil {
		return err
	}
	_ = fails() // explicit discard is deliberate
	n, err := failsWithValue()
	_, _ = n, err
	return nil
}

func allowlistedWriters() {
	fmt.Println("stdout errors are unactionable")
	var sb strings.Builder
	sb.WriteString("never fails by contract")
	fmt.Fprintf(&sb, "%d", 1)
}

func deferAndGoAreOutOfScope() {
	defer fails()
	go fails()
}

func noErrorResult() int {
	n, _ := failsWithValue()
	return n
}
