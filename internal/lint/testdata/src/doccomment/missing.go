package doccomment // want "package doccomment has no package comment"

// A trailing comment on the package clause is not a doc comment, and a
// documented identifier does not document the package.
var Documented = 1
