package doccomment_clean

var documented = 1
