// Package doccomment_clean is the fixed counterpart of the doccomment
// fixture: one file carries a package doc comment, so the analyzer stays
// silent even though the second file has none.
package doccomment_clean
