// Package directives exercises the directive audit that runs with the full
// analyzer set: a directive with no analyzer name, one with no reason, one
// naming an unknown analyzer, and one that no longer suppresses anything
// each become a diagnostic of the pseudo-analyzer "lint".
package directives

//lint:ignore
var missingName = 1

//lint:ignore lockheld
var missingReason = 2

//lint:ignore nosuch this analyzer does not exist
var unknownAnalyzer = 3

//lint:ignore errignored stale: the discarded call below was fixed long ago
var unused = 4
