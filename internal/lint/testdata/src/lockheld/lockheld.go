// Package lockheld is the fixture for the lockheld analyzer: each seeded
// violation blocks on a channel (or a WaitGroup) while a mutex is held, and
// each fixed version releases the lock first or moves the channel work into
// a goroutine that holds no lock.
package lockheld

import "sync"

type s struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	wg sync.WaitGroup
}

func (x *s) sendWhileHeld() {
	x.mu.Lock()
	x.ch <- 1 // want "channel send in sendWhileHeld while x.mu is held"
	x.mu.Unlock()
}

func (x *s) recvWhileDeferHeld() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return <-x.ch // want "channel receive in recvWhileDeferHeld while x.mu is held"
}

func (x *s) selectWhileReadLocked() {
	x.rw.RLock()
	defer x.rw.RUnlock()
	select { // want "select in selectWhileReadLocked while x.rw is held"
	case v := <-x.ch:
		_ = v
	default:
	}
}

func (x *s) waitWhileHeld() {
	x.mu.Lock()
	x.wg.Wait() // want "sync.WaitGroup.Wait in waitWhileHeld while x.mu is held"
	x.mu.Unlock()
}

func (x *s) rangeWhileHeld() {
	x.mu.Lock()
	for v := range x.ch { // want "range over channel in rangeWhileHeld while x.mu is held"
		_ = v
	}
	x.mu.Unlock()
}

type embedded struct {
	sync.Mutex
	ch chan int
}

func (e *embedded) promotedLock() {
	e.Lock()
	e.ch <- 1 // want "channel send in promotedLock while e is held"
	e.Unlock()
}

// Fixed versions: no diagnostics below this line.

func (x *s) sendAfterUnlock() {
	x.mu.Lock()
	x.mu.Unlock()
	x.ch <- 1
}

func (x *s) goroutineHoldsNoLock() {
	x.mu.Lock()
	defer x.mu.Unlock()
	go func() {
		x.ch <- 1 // runs without the spawner's lock
	}()
}

func (x *s) readLockReleasedBeforeRecv() int {
	x.rw.RLock()
	x.rw.RUnlock()
	return <-x.ch
}

func (x *s) waitAfterUnlock() {
	x.mu.Lock()
	x.mu.Unlock()
	x.wg.Wait()
}
