// Package poolput is the fixture for the poolput analyzer: each seeded
// violation lets a sync.Pool object leave the function without a Put, and
// each fixed version brackets the Get with a defer or covers every return.
package poolput

import "sync"

var pool = sync.Pool{New: func() any { return new([]byte) }}

type owner struct {
	bufs sync.Pool
}

func neverReturned() {
	buf := pool.Get().(*[]byte) // want "pool.Get in neverReturned has no matching Put"
	_ = buf
}

func leakOnEarlyReturn(cond bool) {
	buf := pool.Get().(*[]byte)
	if cond {
		return // want "return in leakOnEarlyReturn leaks the pool.Get object"
	}
	pool.Put(buf)
}

func (o *owner) fieldPoolLeak() {
	buf := o.bufs.Get() // want "o.bufs.Get in fieldPoolLeak has no matching Put"
	_ = buf
}

// Fixed versions: no diagnostics below this line.

func deferredPut() {
	buf := pool.Get().(*[]byte)
	defer pool.Put(buf)
	_ = buf
}

func deferredClosurePut() {
	buf := pool.Get().(*[]byte)
	defer func() {
		pool.Put(buf)
	}()
	_ = buf
}

func putOnEveryPath(cond bool) {
	buf := pool.Get().(*[]byte)
	if cond {
		pool.Put(buf)
		return
	}
	pool.Put(buf)
}

func (o *owner) fieldPoolBracketed() {
	buf := o.bufs.Get()
	defer o.bufs.Put(buf)
	_ = buf
}

func putWithoutGetIsFine(v any) {
	pool.Put(v)
}
