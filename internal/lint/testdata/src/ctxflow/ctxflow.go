// Package ctxflow is the fixture for the ctxflow analyzer: seeded
// violations mint root contexts in library code or accept a ctx they never
// use; fixed versions thread the caller's ctx down or spell the unused
// parameter _.
package ctxflow

import "context"

func mintsBackground() {
	ctx := context.Background() // want "context.Background\(\) in library code"
	_ = ctx
}

func mintsTODO() error {
	return work(context.TODO()) // want "context.TODO\(\) in library code"
}

func dropsCtx(ctx context.Context, n int) int { // want "dropsCtx takes ctx \"ctx\" but never uses it"
	return n + 1
}

func literalDropsCtx() func(context.Context) int {
	return func(ctx context.Context) int { // want "function literal takes ctx \"ctx\" but never uses it"
		return 0
	}
}

// Fixed versions: no diagnostics below this line.

func threads(ctx context.Context) error {
	return work(ctx)
}

func work(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

func explicitlyUnused(_ context.Context, n int) int {
	return n
}

func emptyBodyIsFine(ctx context.Context) {
}
