// Package suppressed exercises //lint:ignore directives: every seeded
// violation below is covered by one — both placements, the flagged line
// itself and the line directly above — so running the full analyzer set
// over this fixture must produce zero diagnostics.
package suppressed

import (
	"context"
	"errors"
	"sync"
)

type s struct {
	mu sync.Mutex
	ch chan int
}

var pool = sync.Pool{New: func() any { return new([]byte) }}

func fails() error { return errors.New("boom") }

func suppressedSend(x *s) {
	x.mu.Lock()
	//lint:ignore lockheld fixture: hand-over-hand design justified here
	x.ch <- 1
	x.mu.Unlock()
}

func suppressedGet() *[]byte {
	//lint:ignore poolput fixture: ownership transfers to the caller
	buf := pool.Get().(*[]byte)
	return buf
}

func suppressedRoot() context.Context {
	//lint:ignore ctxflow fixture: deliberate detached root
	return context.Background()
}

func suppressedDrop() {
	fails() //lint:ignore errignored fixture: same-line placement
}
