package lint

import (
	"go/ast"
)

// CtxFlow pins the invariant PR 5 established by hand: cancellation flows
// down from the caller, through every layer, and is never re-rooted in the
// middle of the stack. Two rules:
//
//  1. context.Background() and context.TODO() are flagged in every non-main
//     package. Library code (internal/..., the lcp root package) must accept
//     a ctx and thread it down; only entry points — package main, tests —
//     may mint a root context. Deliberate roots (a detached janitor, a
//     deprecated wrapper kept for compatibility) carry a //lint:ignore
//     ctxflow with the reason.
//
//  2. A declared function or method (or function literal) that takes a named
//     context.Context parameter must actually use it somewhere in its body.
//     An ignored ctx parameter is how cancellation silently stops
//     propagating — the exact bug class the Checker façade's uniform
//     cancellation closed. Interface implementations that genuinely have
//     nothing to cancel spell it `_ context.Context` or carry an ignore.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flag context.Background/TODO in library code and ctx parameters that are never used",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) error {
	libraryCode := p.Pkg.Name() != "main"
	for _, f := range p.Files {
		if libraryCode {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p.TypesInfo, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
					return true
				}
				if name := fn.Name(); name == "Background" || name == "TODO" {
					p.Reportf(call.Pos(), "context.%s() in library code: accept a ctx parameter and thread it down", name)
				}
				return true
			})
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			var where string
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftype, body, where = fn.Type, fn.Body, fn.Name.Name
			case *ast.FuncLit:
				ftype, body, where = fn.Type, fn.Body, "function literal"
			default:
				return true
			}
			if body == nil || len(body.List) == 0 {
				return true
			}
			checkCtxParamUsed(p, ftype, body, where)
			return true
		})
	}
	return nil
}

// checkCtxParamUsed reports each named context.Context parameter of the
// function that is never referenced in its body.
func checkCtxParamUsed(p *Pass, ftype *ast.FuncType, body *ast.BlockStmt, where string) {
	for _, field := range ftype.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := p.TypesInfo.Defs[name]
			if obj == nil || !isContextType(obj.Type()) {
				continue
			}
			used := false
			ast.Inspect(body, func(n ast.Node) bool {
				if used {
					return false
				}
				if id, ok := n.(*ast.Ident); ok && p.TypesInfo.Uses[id] == obj {
					used = true
				}
				return true
			})
			if !used {
				p.Reportf(name.Pos(), "%s takes ctx %q but never uses it: thread it to callees or rename it _", where, name.Name)
			}
		}
	}
}
