package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"lcp/internal/lint"
	"lcp/internal/lint/linttest"
)

// sharedLoader gives every fixture test one Loader, so the stdlib is
// type-checked once per test binary.
var sharedLoader *lint.Loader

func loader(t *testing.T) *lint.Loader {
	t.Helper()
	if sharedLoader == nil {
		l, err := lint.NewLoader(".")
		if err != nil {
			t.Fatalf("loader: %v", err)
		}
		sharedLoader = l
	}
	return sharedLoader
}

// TestAnalyzerFixtures proves each analyzer catches its seeded violations
// and stays silent on the fixed versions living in the same fixture.
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		dir       string
		analyzers []*lint.Analyzer
	}{
		{"lockheld", []*lint.Analyzer{lint.LockHeld}},
		{"poolput", []*lint.Analyzer{lint.PoolPut}},
		{"ctxflow", []*lint.Analyzer{lint.CtxFlow}},
		{"errignored", []*lint.Analyzer{lint.ErrIgnored}},
		{"doccomment", []*lint.Analyzer{lint.DocComment}},
		{"doccomment_clean", []*lint.Analyzer{lint.DocComment}},
	}
	for _, c := range cases {
		t.Run(c.dir, func(t *testing.T) {
			linttest.RunWith(t, loader(t), filepath.Join("testdata", "src", c.dir), c.analyzers...)
		})
	}
}

// TestSuppression proves //lint:ignore silences every analyzer in both
// placements (same line and line above): the suppressed fixture seeds one
// violation per analyzer and must come back clean.
func TestSuppression(t *testing.T) {
	linttest.RunWith(t, loader(t), filepath.Join("testdata", "src", "suppressed"), lint.All()...)
}

// TestDirectiveAudit proves the full-set run reports malformed, unknown,
// and stale ignore directives as diagnostics of the pseudo-analyzer lint.
func TestDirectiveAudit(t *testing.T) {
	pkg, err := loader(t).Load(filepath.Join("testdata", "src", "directives"))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := lint.Run(pkg, lint.All(), lint.RunOptions{CheckDirectives: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	wantFragments := []string{
		"needs an analyzer name and a reason",
		"lint:ignore lockheld needs a written reason",
		`unknown analyzer "nosuch"`,
		"unused lint:ignore errignored directive",
	}
	if len(diags) != len(wantFragments) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(wantFragments), diags)
	}
	for i, d := range diags {
		if d.Analyzer != "lint" {
			t.Errorf("diagnostic %d: analyzer %q, want lint", i, d.Analyzer)
		}
		if !strings.Contains(d.Message, wantFragments[i]) {
			t.Errorf("diagnostic %d: message %q does not contain %q", i, d.Message, wantFragments[i])
		}
	}
	// The same package without the audit has no diagnostics at all: the
	// directives only matter to the full-set run.
	diags, err = lint.Run(pkg, lint.All(), lint.RunOptions{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("without CheckDirectives, got %v, want none", diags)
	}
}

func TestByName(t *testing.T) {
	as, err := lint.ByName("lockheld, doccomment")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if len(as) != 2 || as[0].Name != "lockheld" || as[1].Name != "doccomment" {
		t.Fatalf("ByName selection wrong: %v", as)
	}
	if _, err := lint.ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) should fail")
	}
	if _, err := lint.ByName(" , "); err == nil {
		t.Fatal("ByName(empty) should fail")
	}
}

// TestAllHaveDocs keeps the analyzer set self-describing: every analyzer
// carries a name and a one-line Doc, and names are unique.
func TestAllHaveDocs(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range lint.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) < 5 {
		t.Errorf("expected at least 5 analyzers, have %d", len(seen))
	}
}
