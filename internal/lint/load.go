package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one directory of non-test Go files, parsed and fully
// type-checked, together with its parsed //lint:ignore directives.
type Package struct {
	Path  string // import path ("lcp/internal/dist", or a synthetic path for fixtures)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	ignores map[string][]*ignoreDirective // filename -> directives
}

// A Loader parses and type-checks package directories. It resolves stdlib
// imports through the go/types source importer (compiling declarations from
// GOROOT source, so it works offline with no export data) and module-internal
// imports by mapping "lcp/..." paths onto directories under the module root.
// One Loader shares its importer caches across every Load call, so the
// stdlib is type-checked at most once per process.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset  *token.FileSet
	std   types.ImporterFrom
	info  *types.Info        // shared across every module-internal typecheck
	cache map[string]*loaded // module-internal import path -> result
}

// loaded is one cached module-internal package: a package must be
// type-checked exactly once per Loader, whether it is reached as an
// analysis target or as a dependency — two copies of the same package are
// distinct types to go/types, and mixing them breaks every cross-package
// assignment.
type loaded struct {
	files []*ast.File
	types *types.Package
}

// NewLoader returns a Loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	// The source importer reads build.Default. Typechecking cgo-using
	// stdlib packages (net, os/user) would need a working C toolchain;
	// with cgo off, go/build selects their pure-Go variants instead, which
	// is all the type information the analyzers need.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("source importer does not implement ImporterFrom")
	}
	return &Loader{
		ModuleRoot: root,
		ModulePath: path,
		fset:       fset,
		std:        std,
		info:       newInfo(),
		cache:      make(map[string]*loaded),
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

// Load parses and type-checks the non-test Go files of one directory.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	importPath := l.importPathFor(abs)
	ld, err := l.loadPath(importPath, abs)
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		Path:    importPath,
		Dir:     abs,
		Fset:    l.fset,
		Files:   ld.files,
		Types:   ld.types,
		Info:    l.info,
		ignores: make(map[string][]*ignoreDirective),
	}
	for _, f := range ld.files {
		name := l.fset.Position(f.Pos()).Filename
		if ds := parseIgnores(l.fset, f); len(ds) > 0 {
			pkg.ignores[name] = ds
		}
	}
	return pkg, nil
}

// loadPath parses and type-checks one module-internal package, at most once
// per Loader. Every check records into the shared types.Info, so a package
// loaded first as a dependency still has full info when analysed later.
func (l *Loader) loadPath(importPath, dir string) (*loaded, error) {
	if ld, ok := l.cache[importPath]; ok {
		return ld, nil
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.fset, files, l.info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	ld := &loaded{files: files, types: tpkg}
	l.cache[importPath] = ld
	return ld, nil
}

// importPathFor maps a directory onto its module import path; directories
// outside the module (fixture trees) get a synthetic path from the base name.
func (l *Loader) importPathFor(abs string) string {
	if rel, err := filepath.Rel(l.ModuleRoot, abs); err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		if rel == "." {
			return l.ModulePath
		}
		return l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return filepath.Base(abs)
}

// parseDir parses every non-test .go file of dir in lexical order.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no non-test Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths resolve to
// directories under the module root and are type-checked from source here
// (cached per Loader); everything else — the stdlib — goes to the source
// importer, which maintains its own cache.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")))
		ld, err := l.loadPath(path, dir)
		if err != nil {
			return nil, err
		}
		return ld.types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// ModulePackageDirs walks the module tree and returns every directory that
// holds at least one non-test Go file, skipping testdata and hidden
// directories. It is what TestLintCleanRepo and the doclint wrapper use in
// place of `go list -f '{{.Dir}}' ./...`.
func ModulePackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}
