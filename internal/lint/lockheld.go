package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockHeld flags blocking channel operations performed while a sync.Mutex or
// sync.RWMutex is held. This is the shape of the PR 3 cold-wiring bug: a
// mutex guarding shared state was held across goroutine spawns and channel
// work, serialising every concurrent check (and one refactor away from a
// deadlock). The analysis is intra-procedural and lexical: within one
// function body, a receiver is considered held from its Lock/RLock call
// until a non-deferred Unlock/RUnlock on the same receiver expression (a
// deferred unlock keeps it held to the end of the function). While any lock
// is held it flags channel sends, receives, selects, ranges over channels,
// and sync.WaitGroup.Wait. Function literals are separate functions: a
// goroutine body does not inherit its spawner's locks. Lexical order is an
// approximation of control flow — an early-return branch that unlocks stops
// the tracking — so the analyzer under-reports rather than over-reports;
// genuine hand-over-hand designs get a //lint:ignore lockheld with a reason.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "flag channel operations and WaitGroup.Wait while a sync (RW)Mutex is held",
	Run:  runLockHeld,
}

func runLockHeld(p *Pass) error {
	for _, unit := range funcUnits(p.Files) {
		checkLockHeld(p, unit)
	}
	return nil
}

func checkLockHeld(p *Pass, unit funcUnit) {
	held := make(map[string]bool) // receiver key -> currently held
	heldList := func() string {
		keys := make([]string, 0, len(held))
		for k := range held {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return strings.Join(keys, ", ")
	}
	var stack []ast.Node
	parentIs := func(want func(ast.Node) bool) bool {
		return len(stack) > 0 && want(stack[len(stack)-1])
	}
	inSelect := 0
	ast.Inspect(unit.body, func(n ast.Node) bool {
		if n == nil {
			// Inspect only emits the nil pop for nodes whose children were
			// visited, which is exactly the set we pushed below.
			if _, ok := stack[len(stack)-1].(*ast.SelectStmt); ok && inSelect > 0 {
				inSelect--
			}
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // analysed as its own unit with no inherited locks
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				break
			}
			fn := calleeFunc(p.TypesInfo, n)
			deferred := parentIs(func(pn ast.Node) bool { _, ok := pn.(*ast.DeferStmt); return ok })
			switch {
			case isMethodOn(fn, "sync", "Mutex", "Lock"),
				isMethodOn(fn, "sync", "RWMutex", "Lock"),
				isMethodOn(fn, "sync", "RWMutex", "RLock"):
				if !deferred {
					held[receiverKey(sel.X)] = true
				}
			case isMethodOn(fn, "sync", "Mutex", "Unlock"),
				isMethodOn(fn, "sync", "RWMutex", "Unlock"),
				isMethodOn(fn, "sync", "RWMutex", "RUnlock"):
				if !deferred {
					delete(held, receiverKey(sel.X))
				}
			case isMethodOn(fn, "sync", "WaitGroup", "Wait"):
				if len(held) > 0 && !deferred {
					p.Reportf(n.Pos(), "sync.WaitGroup.Wait in %s while %s is held", unit.name, heldList())
				}
			}
		case *ast.SendStmt:
			if len(held) > 0 && inSelect == 0 {
				p.Reportf(n.Pos(), "channel send in %s while %s is held", unit.name, heldList())
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(held) > 0 && inSelect == 0 {
				p.Reportf(n.Pos(), "channel receive in %s while %s is held", unit.name, heldList())
			}
		case *ast.SelectStmt:
			if len(held) > 0 {
				p.Reportf(n.Pos(), "select in %s while %s is held", unit.name, heldList())
				inSelect++ // the comm clauses are part of the already-reported select
			}
		case *ast.RangeStmt:
			if len(held) > 0 {
				if t, ok := p.TypesInfo.Types[n.X]; ok {
					if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
						p.Reportf(n.Pos(), "range over channel in %s while %s is held", unit.name, heldList())
					}
				}
			}
		}
		stack = append(stack, n)
		return true
	})
}
