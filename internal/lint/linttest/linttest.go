// Package linttest is the analysistest-style harness for internal/lint: it
// loads a fixture package, runs analyzers over it, and checks the resulting
// diagnostics against `// want "regexp"` comments embedded in the fixture
// source. It lives in its own package so that cmd/lcplint does not link the
// testing package.
package linttest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"lcp/internal/lint"
)

// wantRE matches the expectation comments understood by Run:
// `// want "regexp"` with one or more quoted regexps.
var wantRE = regexp.MustCompile(`//\s*want\s+(.+)$`)

var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads the fixture package in dir, runs the analyzers over it, and
// compares the diagnostics against the fixture's `// want "regexp"`
// comments, analysistest-style: every want must be matched by a diagnostic
// of one of the analyzers on the same line, and every diagnostic must be
// claimed by a want. //lint:ignore directives apply inside fixtures too, so
// suppression is testable the same way.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	loader, err := lint.NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	RunWith(t, loader, dir, analyzers...)
}

// RunWith is Run with a caller-provided Loader, so a test running many
// fixtures can share one stdlib typecheck across all of them.
func RunWith(t *testing.T, loader *lint.Loader, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkg, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	diags, err := lint.Run(pkg, analyzers, lint.RunOptions{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	wants, err := parseWants(pkg)
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}
	claimed := make([]bool, len(diags))
	for _, w := range wants {
		for i, d := range diags {
			if claimed[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Message) {
				claimed[i] = true
				w.hit = true
				break
			}
		}
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
	for i, d := range diags {
		if !claimed[i] {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
}

// parseWants extracts the expectations from every fixture file.
func parseWants(pkg *lint.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Pos()).Filename
		for _, group := range f.Comments {
			for _, c := range group.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				args := wantArgRE.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					return nil, fmt.Errorf("%s: want comment with no quoted regexp: %s", filename, c.Text)
				}
				line := pkg.Fset.Position(c.Pos()).Line
				for _, a := range args {
					raw := strings.ReplaceAll(a[1], `\"`, `"`)
					re, err := regexp.Compile(raw)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", filename, line, raw, err)
					}
					wants = append(wants, &expectation{file: filename, line: line, re: re, raw: raw})
				}
			}
		}
	}
	return wants, nil
}
