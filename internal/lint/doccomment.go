package lint

import (
	"strings"
)

// DocComment absorbs cmd/doclint: every package (commands included) must
// carry a package doc comment on at least one of its non-test files. The
// package comments are the paper-to-code map (docs/ARCHITECTURE.md) — each
// states which definitions of Göös & Suomela (PODC 2011) the package
// implements — so a missing one is a documentation regression, not a style
// nit.
var DocComment = &Analyzer{
	Name: "doccomment",
	Doc:  "flag packages without a package doc comment",
	Run:  runDocComment,
}

func runDocComment(p *Pass) error {
	for _, f := range p.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return nil
		}
	}
	// Report at the package clause of the first file (files are loaded in
	// lexical order, so the anchor is deterministic).
	p.Reportf(p.Files[0].Package, "package %s has no package comment", p.Pkg.Name())
	return nil
}
