package lint_test

import (
	"testing"

	"lcp/internal/lint"
)

// TestLintCleanRepo is the repo-wide zero-diagnostics guarantee: every
// package of the module passes every analyzer, with the directive audit on,
// forever. It is the same run `make lint` (and through it `make check` and
// CI) performs via cmd/lcplint, pinned as a plain unit test so a plain
// `go test ./...` catches regressions too.
func TestLintCleanRepo(t *testing.T) {
	l := loader(t)
	dirs, err := lint.ModulePackageDirs(l.ModuleRoot)
	if err != nil {
		t.Fatalf("package dirs: %v", err)
	}
	if len(dirs) < 20 {
		t.Fatalf("suspiciously few package dirs (%d): module walk broken?", len(dirs))
	}
	for _, dir := range dirs {
		pkg, err := l.Load(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		diags, err := lint.Run(pkg, lint.All(), lint.RunOptions{CheckDirectives: true})
		if err != nil {
			t.Fatalf("run %s: %v", dir, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
