package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the *types.Func a call invokes, unwrapping parens.
// It returns nil for calls through plain function values, conversions, and
// builtins, where no named callee exists.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isMethodOn reports whether fn is the method pkgPath.(recvName).name —
// e.g. isMethodOn(fn, "sync", "Mutex", "Lock"). Pointer receivers match.
func isMethodOn(fn *types.Func, pkgPath, recvName, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedTypeIs(sig.Recv().Type(), pkgPath, recvName)
}

// namedTypeIs reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func namedTypeIs(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// receiverKey renders the receiver expression of a method call as a stable
// string key, so "c.mu" in Lock and Unlock calls land on the same entry.
func receiverKey(e ast.Expr) string {
	return types.ExprString(ast.Unparen(e))
}

// funcUnits yields every function body in the files: declared functions and
// methods plus every function literal, each as an independent unit. The
// analyzers that reason about control flow treat a closure as its own
// function — a goroutine body does not inherit the locks its spawner holds.
type funcUnit struct {
	name string
	body *ast.BlockStmt
}

func funcUnits(files []*ast.File) []funcUnit {
	var units []funcUnit
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					units = append(units, funcUnit{name: fn.Name.Name, body: fn.Body})
				}
			case *ast.FuncLit:
				units = append(units, funcUnit{name: "func literal", body: fn.Body})
			}
			return true
		})
	}
	return units
}
